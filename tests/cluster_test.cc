#include "src/cluster/node.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/cluster/coordinator.h"
#include "src/cluster/region_allocator.h"

namespace drtmr::cluster {
namespace {

TEST(RegionAllocator, AlignmentAndExhaustion) {
  RegionAllocator a(64, 64 + 3 * 64);
  const uint64_t o1 = a.Alloc(10);  // rounds to 64
  const uint64_t o2 = a.Alloc(65);  // rounds to 128
  EXPECT_EQ(o1 % 64, 0u);
  EXPECT_EQ(o2 % 64, 0u);
  EXPECT_NE(o1, o2);
  EXPECT_EQ(a.Alloc(64), RegionAllocator::kInvalidOffset);
  a.Free(o2, 65);
  EXPECT_EQ(a.Alloc(70), o2);  // same size class reuses the freed block
}

TEST(RegionAllocator, DeterministicAcrossInstances) {
  RegionAllocator a(64, 1 << 20);
  RegionAllocator b(64, 1 << 20);
  for (int i = 0; i < 100; ++i) {
    const uint64_t sz = 64 + (i % 7) * 64;
    EXPECT_EQ(a.Alloc(sz), b.Alloc(sz));
  }
}

TEST(Cluster, BuildsNodesWithSymmetricLayout) {
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.workers_per_node = 2;
  cfg.memory_bytes = 4 << 20;
  cfg.log_bytes = 1 << 20;
  Cluster c(cfg);
  ASSERT_EQ(c.num_nodes(), 3u);
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(c.node(i)->id(), i);
    EXPECT_EQ(c.node(i)->log_begin(), (4u << 20) - (1u << 20));
    EXPECT_EQ(c.node(i)->num_slots(), cfg.workers_per_node + cfg.aux_threads + 1);
    EXPECT_NE(c.node(i)->nic(), nullptr);
  }
  // Symmetric allocation: same sequence of allocs yields same offsets.
  EXPECT_EQ(c.node(0)->allocator()->Alloc(128), c.node(1)->allocator()->Alloc(128));
}

TEST(Cluster, KillMakesNodeUnreachable) {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.memory_bytes = 2 << 20;
  cfg.log_bytes = 1 << 19;
  Cluster c(cfg);
  sim::ThreadContext* ctx = c.node(0)->context(0);
  uint64_t v;
  EXPECT_EQ(c.node(0)->nic()->Read(ctx, 1, 0, &v, sizeof(v)), Status::kOk);
  c.Kill(1);
  EXPECT_TRUE(c.node(1)->killed());
  EXPECT_EQ(c.node(0)->nic()->Read(ctx, 1, 0, &v, sizeof(v)), Status::kUnavailable);
  c.Revive(1);
  EXPECT_EQ(c.node(0)->nic()->Read(ctx, 1, 0, &v, sizeof(v)), Status::kOk);
}

TEST(Cluster, BackupPlacementWrapsAround)
{
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.memory_bytes = 2 << 20;
  cfg.log_bytes = 1 << 19;
  Cluster c(cfg);
  EXPECT_EQ(c.BackupOf(2, 1), 0u);
  EXPECT_EQ(c.BackupOf(2, 2), 1u);
  EXPECT_EQ(c.BackupOf(0, 1), 1u);
}

TEST(Node, ServiceThreadHandlesMessages) {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.memory_bytes = 2 << 20;
  cfg.log_bytes = 1 << 19;
  Cluster c(cfg);
  std::atomic<int> handled{0};
  std::atomic<int> idles{0};
  c.node(1)->StartService(
      [&](sim::ThreadContext*, const sim::Message& m) {
        EXPECT_EQ(m.src_node, 0u);
        handled.fetch_add(1);
      },
      [&](sim::ThreadContext*) { idles.fetch_add(1); });

  sim::ThreadContext* ctx = c.node(0)->context(0);
  for (int i = 0; i < 5; ++i) {
    std::vector<std::byte> payload(8, std::byte{0x7});
    ASSERT_EQ(c.node(0)->nic()->Send(ctx, 1, std::move(payload)), Status::kOk);
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (handled.load() < 5 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  c.node(1)->StopService();
  EXPECT_EQ(handled.load(), 5);
  EXPECT_GT(idles.load(), 0);
}

TEST(Coordinator, JoinRenewReconfigure) {
  Coordinator coord;
  coord.Join(0, /*now_ms=*/0, /*lease_ms=*/10);
  coord.Join(1, 0, 10);
  coord.Join(2, 0, 10);
  const uint64_t e0 = coord.epoch();
  ClusterView v = coord.view();
  EXPECT_EQ(v.members.size(), 3u);
  EXPECT_TRUE(v.Contains(1));

  // Nodes 0 and 2 renew; node 1 goes silent.
  coord.Renew(0, 8, 10);
  coord.Renew(2, 8, 10);
  std::vector<uint32_t> suspected;
  EXPECT_FALSE(coord.Reconfigure(9, &suspected));
  EXPECT_TRUE(coord.Reconfigure(12, &suspected));
  ASSERT_EQ(suspected.size(), 1u);
  EXPECT_EQ(suspected[0], 1u);
  v = coord.view();
  EXPECT_GT(v.epoch, e0);
  EXPECT_FALSE(v.Contains(1));
  EXPECT_TRUE(v.Contains(0));
  EXPECT_TRUE(v.Contains(2));
}

TEST(Coordinator, ExplicitRemoveBumpsEpoch) {
  Coordinator coord;
  coord.Join(0, 0, 100);
  coord.Join(1, 0, 100);
  const uint64_t e = coord.epoch();
  coord.Remove(0);
  EXPECT_EQ(coord.epoch(), e + 1);
  EXPECT_FALSE(coord.view().Contains(0));
}

TEST(Coordinator, RejoinAfterSuspicion) {
  Coordinator coord;
  coord.Join(0, 0, 10);
  coord.Reconfigure(20, nullptr);
  EXPECT_FALSE(coord.view().Contains(0));
  coord.Join(0, 30, 10);
  EXPECT_TRUE(coord.view().Contains(0));
}

}  // namespace
}  // namespace drtmr::cluster
