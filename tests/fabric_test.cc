#include "src/sim/fabric.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/cost_model.h"
#include "src/sim/htm.h"
#include "src/sim/memory_bus.h"
#include "src/util/cacheline.h"

namespace drtmr::sim {
namespace {

class FabricTest : public ::testing::Test {
 protected:
  FabricTest() : fabric_(&cost_) {
    for (int i = 0; i < 3; ++i) {
      buses_.push_back(std::make_unique<MemoryBus>(1 << 20, &cost_, 8, 128, 32));
      engines_.push_back(std::make_unique<HtmEngine>(buses_.back().get(), &cost_));
      fabric_.AddNode(buses_.back().get());
    }
  }

  CostModel cost_;
  Fabric fabric_;
  std::vector<std::unique_ptr<MemoryBus>> buses_;
  std::vector<std::unique_ptr<HtmEngine>> engines_;
};

TEST_F(FabricTest, RemoteReadSeesRemoteMemory) {
  ThreadContext ctx(0, 0, 1);
  ThreadContext remote_ctx(1, 0, 2);
  buses_[1]->WriteU64(&remote_ctx, 512, 0xabcd);
  uint64_t v = 0;
  ASSERT_EQ(fabric_.nic(0)->Read(&ctx, 1, 512, &v, sizeof(v)), Status::kOk);
  EXPECT_EQ(v, 0xabcdu);
}

TEST_F(FabricTest, RemoteWriteLandsInRemoteMemory) {
  ThreadContext ctx(0, 0, 1);
  const char msg[] = "over the wire";
  ASSERT_EQ(fabric_.nic(0)->Write(&ctx, 2, 1024, msg, sizeof(msg)), Status::kOk);
  char out[sizeof(msg)] = {};
  buses_[2]->Read(nullptr, 1024, out, sizeof(msg));
  EXPECT_STREQ(out, msg);
}

TEST_F(FabricTest, RemoteCas) {
  ThreadContext ctx(0, 0, 1);
  buses_[1]->WriteU64(nullptr, 64, 10);
  uint64_t obs = 0;
  EXPECT_EQ(fabric_.nic(0)->CompareSwap(&ctx, 1, 64, 10, 20, &obs), Status::kOk);
  EXPECT_EQ(obs, 10u);
  EXPECT_EQ(fabric_.nic(0)->CompareSwap(&ctx, 1, 64, 10, 30, &obs), Status::kConflict);
  EXPECT_EQ(obs, 20u);
  EXPECT_EQ(buses_[1]->ReadU64(nullptr, 64), 20u);
}

TEST_F(FabricTest, RemoteFetchAdd) {
  ThreadContext ctx(0, 0, 1);
  buses_[1]->WriteU64(nullptr, 128, 5);
  uint64_t old = 0;
  ASSERT_EQ(fabric_.nic(0)->FetchAdd(&ctx, 1, 128, 3, &old), Status::kOk);
  EXPECT_EQ(old, 5u);
  EXPECT_EQ(buses_[1]->ReadU64(nullptr, 128), 8u);
}

TEST_F(FabricTest, RdmaWriteAbortsConflictingHtmTxn) {
  // The paper's key composition: an RDMA op is cache-coherent with target
  // memory, so it unconditionally aborts a conflicting HTM txn (§2.1).
  ThreadContext local(1, 0, 1);
  HtmTxn* txn = engines_[1]->Begin(&local);
  uint64_t v;
  ASSERT_EQ(txn->ReadU64(2048, &v), Status::kOk);

  ThreadContext remote(0, 0, 2);
  uint64_t payload = 99;
  ASSERT_EQ(fabric_.nic(0)->Write(&remote, 1, 2048, &payload, sizeof(payload)), Status::kOk);

  EXPECT_EQ(txn->ReadU64(2048, &v), Status::kAborted);
  EXPECT_EQ(txn->abort_code(), HtmTxn::AbortCode::kConflict);
}

TEST_F(FabricTest, RdmaInsideHtmAbortsTheRegion) {
  // RTM forbids I/O: issuing a verb inside an HTM region aborts it (§2.1).
  ThreadContext ctx(0, 0, 1);
  HtmTxn* txn = engines_[0]->Begin(&ctx);
  uint64_t v;
  ASSERT_EQ(txn->ReadU64(0, &v), Status::kOk);
  EXPECT_EQ(fabric_.nic(0)->Read(&ctx, 1, 0, &v, sizeof(v)), Status::kAborted);
  EXPECT_EQ(txn->abort_code(), HtmTxn::AbortCode::kIo);
  EXPECT_EQ(ctx.current_htm, nullptr);
}

TEST_F(FabricTest, MultiLineWriteCanBeObservedTorn) {
  // RDMA WRITE is atomic per cache line only. Verify the simulator applies a
  // 3-line write line-by-line by observing the memory between stripe epochs:
  // here we simply verify the full write lands and spans lines.
  ThreadContext ctx(0, 0, 1);
  std::vector<char> data(3 * kCacheLineSize, 'X');
  ASSERT_EQ(fabric_.nic(0)->Write(&ctx, 1, 4096, data.data(), data.size()), Status::kOk);
  std::vector<char> out(data.size());
  buses_[1]->Read(nullptr, 4096, out.data(), out.size());
  EXPECT_EQ(std::string(out.begin(), out.end()), std::string(data.begin(), data.end()));
}

TEST_F(FabricTest, DeadNodeUnavailable) {
  ThreadContext ctx(0, 0, 1);
  fabric_.Kill(1);
  uint64_t v;
  EXPECT_EQ(fabric_.nic(0)->Read(&ctx, 1, 0, &v, sizeof(v)), Status::kUnavailable);
  EXPECT_EQ(fabric_.nic(0)->Write(&ctx, 1, 0, &v, sizeof(v)), Status::kUnavailable);
  EXPECT_EQ(fabric_.nic(0)->CompareSwap(&ctx, 1, 0, 0, 1, nullptr), Status::kUnavailable);
  fabric_.Revive(1);
  EXPECT_EQ(fabric_.nic(0)->Read(&ctx, 1, 0, &v, sizeof(v)), Status::kOk);
}

TEST_F(FabricTest, SendRecvDelivery) {
  ThreadContext src(0, 0, 1);
  ThreadContext dst(1, 0, 2);
  const std::string text = "insert request";
  std::vector<std::byte> payload(text.size());
  std::memcpy(payload.data(), text.data(), text.size());
  ASSERT_EQ(fabric_.nic(0)->Send(&src, 1, std::move(payload)), Status::kOk);

  Message m;
  ASSERT_TRUE(fabric_.nic(1)->TryRecv(&dst, &m));
  EXPECT_EQ(m.src_node, 0u);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(m.payload.data()), m.payload.size()), text);
  EXPECT_FALSE(fabric_.nic(1)->TryRecv(&dst, &m));
}

TEST_F(FabricTest, VerbsChargeLatencyAndOccupancy) {
  ThreadContext ctx(0, 0, 1);
  uint64_t v;
  ASSERT_EQ(fabric_.nic(0)->Read(&ctx, 1, 0, &v, sizeof(v)), Status::kOk);
  EXPECT_GE(ctx.clock.now_ns(), cost_.rdma_read_ns);
  const uint64_t t1 = ctx.clock.now_ns();
  ASSERT_EQ(fabric_.nic(0)->Read(&ctx, 1, 0, &v, sizeof(v)), Status::kOk);
  EXPECT_GE(ctx.clock.now_ns(), t1 + cost_.rdma_read_ns);
}

TEST_F(FabricTest, NicSaturationDelaysConcurrentVerbs) {
  // Two "threads" with independent clocks hammer the same target NIC; the
  // occupancy resource must serialize them so their completion times spread
  // rather than overlap — this is the mechanism behind the replication
  // bottleneck in Figs. 15/16.
  ThreadContext a(0, 0, 1);
  ThreadContext b(2, 0, 2);
  std::vector<std::byte> big(64 * 1024);
  ASSERT_EQ(fabric_.nic(0)->Write(&a, 1, 0, big.data(), big.size()), Status::kOk);
  ASSERT_EQ(fabric_.nic(2)->Write(&b, 1, 8 * 64 * 1024, big.data(), big.size()), Status::kOk);
  const uint64_t busy = cost_.nic_verb_busy_ns + cost_.TransferNs(big.size());
  // The second writer must have been pushed behind the first on node 1's NIC.
  EXPECT_GE(std::max(a.clock.now_ns(), b.clock.now_ns()), 2 * busy);
}

TEST_F(FabricTest, LoopbackVerbUsesSingleNic) {
  // The fallback handler CASes *local* records through the NIC (§6.2).
  ThreadContext ctx(0, 0, 1);
  buses_[0]->WriteU64(nullptr, 64, 1);
  uint64_t obs;
  EXPECT_EQ(fabric_.nic(0)->CompareSwap(&ctx, 0, 64, 1, 2, &obs), Status::kOk);
  EXPECT_EQ(buses_[0]->ReadU64(nullptr, 64), 2u);
}

TEST_F(FabricTest, SharedOccupancyForLogicalNodes) {
  // Fig. 12: logical nodes on one machine share the physical NIC.
  RdmaNic::Occupancy shared;
  fabric_.nic(0)->ShareOccupancy(&shared);
  fabric_.nic(1)->ShareOccupancy(&shared);
  ThreadContext a(0, 0, 1);
  ThreadContext b(1, 0, 2);
  uint64_t v;
  ASSERT_EQ(fabric_.nic(0)->Read(&a, 2, 0, &v, sizeof(v)), Status::kOk);
  ASSERT_EQ(fabric_.nic(1)->Read(&b, 2, 64, &v, sizeof(v)), Status::kOk);
  EXPECT_GT(shared.tx.free_at_ns(), 0u);
}

}  // namespace
}  // namespace drtmr::sim
