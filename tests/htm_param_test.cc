// Parameterized HTM semantics: capacity aborts fire at exactly the
// configured read/write-set line budgets; records spanning different line
// counts track exactly that many lines; conflict policy is stable across
// configurations.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "src/sim/cost_model.h"
#include "src/sim/htm.h"
#include "src/sim/memory_bus.h"

namespace drtmr::sim {
namespace {

// (read_cap_lines, write_cap_lines)
class HtmCapacitySweep : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(HtmCapacitySweep, ReadCapacityIsExact) {
  const auto [read_cap, write_cap] = GetParam();
  CostModel cost;
  MemoryBus bus(4 << 20, &cost, 2, read_cap, write_cap);
  HtmEngine engine(&bus, &cost);
  ThreadContext ctx(0, 0, 1);

  HtmTxn* txn = engine.Begin(&ctx);
  uint64_t v;
  // Exactly read_cap distinct lines fit...
  for (uint32_t i = 0; i < read_cap; ++i) {
    ASSERT_EQ(txn->ReadU64(static_cast<uint64_t>(i) * kCacheLineSize, &v), Status::kOk) << i;
  }
  // ...re-reading a tracked line is free...
  ASSERT_EQ(txn->ReadU64(0, &v), Status::kOk);
  // ...and one more line aborts with a capacity code.
  EXPECT_EQ(txn->ReadU64(static_cast<uint64_t>(read_cap) * kCacheLineSize, &v),
            Status::kAborted);
  EXPECT_EQ(txn->abort_code(), HtmTxn::AbortCode::kCapacity);
}

TEST_P(HtmCapacitySweep, WriteCapacityIsExact) {
  const auto [read_cap, write_cap] = GetParam();
  CostModel cost;
  MemoryBus bus(4 << 20, &cost, 2, read_cap, write_cap);
  HtmEngine engine(&bus, &cost);
  ThreadContext ctx(0, 0, 1);

  HtmTxn* txn = engine.Begin(&ctx);
  for (uint32_t i = 0; i < write_cap; ++i) {
    ASSERT_EQ(txn->WriteU64(static_cast<uint64_t>(i) * kCacheLineSize, i), Status::kOk) << i;
  }
  ASSERT_EQ(txn->WriteU64(0, 99), Status::kOk);  // tracked line: free
  EXPECT_EQ(txn->WriteU64(static_cast<uint64_t>(write_cap) * kCacheLineSize, 1),
            Status::kAborted);
  EXPECT_EQ(txn->abort_code(), HtmTxn::AbortCode::kCapacity);
}

TEST_P(HtmCapacitySweep, MultiLineAccessCountsEveryLine) {
  const auto [read_cap, write_cap] = GetParam();
  CostModel cost;
  MemoryBus bus(4 << 20, &cost, 2, read_cap, write_cap);
  HtmEngine engine(&bus, &cost);
  ThreadContext ctx(0, 0, 1);

  // One read spanning `read_cap` lines fills the read set exactly.
  std::vector<std::byte> buf(static_cast<size_t>(read_cap) * kCacheLineSize);
  HtmTxn* txn = engine.Begin(&ctx);
  ASSERT_EQ(txn->Read(0, buf.data(), buf.size()), Status::kOk);
  uint64_t v;
  EXPECT_EQ(txn->ReadU64(buf.size(), &v), Status::kAborted);
  EXPECT_EQ(txn->abort_code(), HtmTxn::AbortCode::kCapacity);
}

INSTANTIATE_TEST_SUITE_P(Caps, HtmCapacitySweep,
                         ::testing::Values(std::tuple<uint32_t, uint32_t>{8, 4},
                                           std::tuple<uint32_t, uint32_t>{64, 16},
                                           std::tuple<uint32_t, uint32_t>{512, 512},
                                           std::tuple<uint32_t, uint32_t>{1024, 512}));

TEST(HtmCrossSocket, EvictionModelOnlyFiresAcrossSockets) {
  CostModel cost;
  cost.cross_socket_htm_abort_ppm_per_line = 1000000;  // abort every access
  MemoryBus bus(1 << 20, &cost, 2, 64, 32);
  HtmEngine engine(&bus, &cost);
  ThreadContext ctx(0, 0, 1);

  // Within one socket (scale 100): never fires.
  HtmTxn* txn = engine.Begin(&ctx);
  uint64_t v;
  EXPECT_EQ(txn->ReadU64(0, &v), Status::kOk);
  txn->Abort();

  // Across sockets (scale > 100): fires deterministically at ppm=100%.
  bus.set_cost_scale_pct(135);
  txn = engine.Begin(&ctx);
  EXPECT_EQ(txn->ReadU64(0, &v), Status::kAborted);
  EXPECT_EQ(txn->abort_code(), HtmTxn::AbortCode::kCapacity);
  bus.set_cost_scale_pct(100);
}

}  // namespace
}  // namespace drtmr::sim
