// Tests of the §4.4 IBV_ATOMIC_GLOB optimization: lock+validate fused into a
// single RDMA CAS on the seqnum, write-backs acting as implicit unlocks.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "src/rep/primary_backup.h"
#include "src/store/record.h"
#include "src/txn/transaction.h"
#include "src/txn/txn_engine.h"

namespace drtmr::txn {
namespace {

using store::RecordLayout;
using store::SeqWord;

TEST(SeqWord, LockBitEncoding) {
  EXPECT_FALSE(SeqWord::Locked(4));
  const uint64_t locked = SeqWord::WithLock(4);
  EXPECT_TRUE(SeqWord::Locked(locked));
  EXPECT_EQ(SeqWord::Value(locked), 4u);
  EXPECT_EQ(SeqWord::Value(4), 4u);
  // The low 16 bits (per-line version) are unaffected by the lock bit.
  EXPECT_EQ(static_cast<uint16_t>(SeqWord::WithLock(0x1234)), 0x1234);
}

struct Cell {
  int64_t value;
  uint64_t pad[6];
};

class FusedLockTest : public ::testing::TestWithParam<bool> {  // param: replication
 protected:
  FusedLockTest() {
    cfg_.num_nodes = 3;
    cfg_.workers_per_node = 4;
    cfg_.memory_bytes = 16 << 20;
    cfg_.log_bytes = 2 << 20;
    cfg_.atomicity = sim::AtomicityLevel::kGlob;  // required for fusing
    cluster_ = std::make_unique<cluster::Cluster>(cfg_);
    catalog_ = std::make_unique<store::Catalog>(cluster_.get());
    store::TableOptions opt;
    opt.value_size = sizeof(Cell);
    opt.hash_buckets = 256;
    table_ = catalog_->CreateTable(1, opt);
    if (GetParam()) {
      rep::RepConfig rcfg;
      rcfg.replicas = 3;
      replicator_ = std::make_unique<rep::PrimaryBackupReplicator>(cluster_.get(), rcfg);
    }
    TxnConfig tcfg;
    tcfg.fused_seq_lock = true;
    tcfg.replication = GetParam();
    engine_ = std::make_unique<TxnEngine>(cluster_.get(), catalog_.get(), tcfg, nullptr,
                                          replicator_.get());
    engine_->StartServices();
    for (uint64_t k = 1; k <= 24; ++k) {
      Cell c{500, {}};
      const uint32_t node = HomeOf(k);
      EXPECT_EQ(table_->hash(node)->Insert(cluster_->node(node)->context(0), k, &c, nullptr),
                Status::kOk);
    }
  }

  ~FusedLockTest() override { engine_->StopServices(); }

  uint32_t HomeOf(uint64_t k) const { return static_cast<uint32_t>(k % 3); }

  uint64_t RawSeq(uint64_t key) {
    const uint32_t node = HomeOf(key);
    const uint64_t off = table_->hash(node)->Lookup(nullptr, key);
    return cluster_->node(node)->bus()->ReadU64(nullptr, off + RecordLayout::kSeqOff);
  }

  cluster::ClusterConfig cfg_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<store::Catalog> catalog_;
  store::Table* table_ = nullptr;
  std::unique_ptr<rep::PrimaryBackupReplicator> replicator_;
  std::unique_ptr<TxnEngine> engine_;
};

TEST_P(FusedLockTest, DistributedCommitLeavesRecordsClean) {
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  Transaction txn(engine_.get(), ctx);
  while (true) {
    txn.Begin();
    Cell a{}, b{};
    ASSERT_EQ(txn.Read(table_, HomeOf(1), 1, &a), Status::kOk);   // remote
    ASSERT_EQ(txn.Read(table_, HomeOf(3), 3, &b), Status::kOk);   // local
    a.value -= 50;
    b.value += 50;
    ASSERT_EQ(txn.Write(table_, HomeOf(1), 1, &a), Status::kOk);
    ASSERT_EQ(txn.Write(table_, HomeOf(3), 3, &b), Status::kOk);
    if (txn.Commit() == Status::kOk) {
      break;
    }
  }
  EXPECT_FALSE(SeqWord::Locked(RawSeq(1)));
  EXPECT_FALSE(SeqWord::Locked(RawSeq(3)));
  if (GetParam()) {
    EXPECT_EQ(SeqWord::Value(RawSeq(1)) % 2, 0u);
  }
}

TEST_P(FusedLockTest, ReadOnlyRemoteLockViaSeqBitIsRespected) {
  // Manually set the seq lock bit on a remote record; read-only readers must
  // wait, and stale read-write validation must fail.
  const uint32_t node = HomeOf(2);
  const uint64_t off = table_->hash(node)->Lookup(nullptr, 2);
  sim::MemoryBus* bus = cluster_->node(node)->bus();
  const uint64_t seq = bus->ReadU64(nullptr, off + RecordLayout::kSeqOff);
  bus->WriteU64(nullptr, off + RecordLayout::kSeqOff, SeqWord::WithLock(seq));

  std::atomic<bool> done{false};
  std::thread reader([&] {
    sim::ThreadContext* ctx = cluster_->node(0)->context(1);
    Transaction ro(engine_.get(), ctx);
    while (true) {
      ro.Begin(true);
      Cell c{};
      if (ro.Read(table_, node, 2, &c) != Status::kOk) {
        ro.UserAbort();
        continue;
      }
      if (ro.Commit() == Status::kOk) {
        break;
      }
    }
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(done.load());
  bus->WriteU64(nullptr, off + RecordLayout::kSeqOff, seq);
  reader.join();
}

TEST_P(FusedLockTest, FusedSavesVerbsVersusSplitLocking) {
  // The same distributed update must issue fewer verbs in fused mode than
  // with split lock + validate + unlock (one CAS instead of CAS+READ, and no
  // unlock CAS for written records).
  auto run_once = [&](TxnEngine* engine, uint64_t key) {
    sim::ThreadContext* ctx = cluster_->node(0)->context(2);
    Transaction txn(engine, ctx);
    const uint64_t before = cluster_->node(0)->nic()->verbs_issued();
    while (true) {
      txn.Begin();
      Cell c{};
      EXPECT_EQ(txn.Read(table_, HomeOf(key), key, &c), Status::kOk);
      c.value += 1;
      EXPECT_EQ(txn.Write(table_, HomeOf(key), key, &c), Status::kOk);
      if (txn.Commit() == Status::kOk) {
        break;
      }
    }
    return cluster_->node(0)->nic()->verbs_issued() - before;
  };
  TxnConfig split_cfg;
  split_cfg.replication = GetParam();
  TxnEngine split_engine(cluster_.get(), catalog_.get(), split_cfg, nullptr, replicator_.get());
  const uint64_t split_verbs = run_once(&split_engine, 7);   // key 7: remote
  const uint64_t fused_verbs = run_once(engine_.get(), 7);
  EXPECT_LT(fused_verbs, split_verbs);
}

TEST_P(FusedLockTest, ConcurrentFusedTransfersConserveMoney) {
  std::vector<std::thread> threads;
  for (uint32_t n = 0; n < 3; ++n) {
    for (uint32_t w = 0; w < 2; ++w) {
      threads.emplace_back([&, n, w] {
        sim::ThreadContext* ctx = cluster_->node(n)->context(w);
        Transaction txn(engine_.get(), ctx);
        FastRand rng(n * 13 + w + 2);
        for (int i = 0; i < 150; ++i) {
          const uint64_t from = rng.Range(1, 24);
          uint64_t to = rng.Range(1, 24);
          if (to == from) {
            to = from % 24 + 1;
          }
          while (true) {
            txn.Begin();
            Cell a{}, b{};
            if (txn.Read(table_, HomeOf(from), from, &a) != Status::kOk ||
                txn.Read(table_, HomeOf(to), to, &b) != Status::kOk) {
              txn.UserAbort();
              std::this_thread::yield();
              continue;
            }
            a.value -= 2;
            b.value += 2;
            if (txn.Write(table_, HomeOf(from), from, &a) != Status::kOk ||
                txn.Write(table_, HomeOf(to), to, &b) != Status::kOk) {
              txn.UserAbort();
              std::this_thread::yield();
              continue;
            }
            if (txn.Commit() == Status::kOk) {
              break;
            }
            // Real-time fairness: the abort-retry loop charges only virtual
            // time, so on a loaded single-core host a retrying thread can
            // starve the peer that holds the conflicting lock. Yield the
            // physical CPU between retries (no virtual-time effect).
            std::this_thread::yield();
          }
        }
      });
    }
  }
  for (auto& t : threads) {
    t.join();
  }
  int64_t total = 0;
  for (uint64_t k = 1; k <= 24; ++k) {
    const uint32_t node = HomeOf(k);
    const uint64_t off = table_->hash(node)->Lookup(nullptr, k);
    std::vector<std::byte> rec(table_->record_bytes());
    cluster_->node(node)->bus()->Read(nullptr, off, rec.data(), rec.size());
    Cell c{};
    RecordLayout::GatherValue(rec.data(), &c, sizeof(c));
    total += c.value;
    EXPECT_FALSE(SeqWord::Locked(RecordLayout::GetSeq(rec.data()))) << "seq lock leaked, key "
                                                                    << k;
    EXPECT_EQ(RecordLayout::GetLock(rec.data()), 0u);
  }
  EXPECT_EQ(total, 24 * 500);
}

INSTANTIATE_TEST_SUITE_P(WithAndWithoutReplication, FusedLockTest, ::testing::Bool());

}  // namespace
}  // namespace drtmr::txn
