// Parameterized property tests: randomized store operations checked against
// model containers, record layout round-trips over a size sweep, and
// serializability (money conservation + consistent read-only snapshots)
// swept across cluster shapes, distribution probabilities, and replication.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "src/rep/primary_backup.h"
#include "src/store/btree_store.h"
#include "src/store/hash_store.h"
#include "src/store/record.h"
#include "src/txn/transaction.h"
#include "src/txn/txn_engine.h"
#include "src/util/rand.h"
#include "src/util/test_seed.h"

namespace drtmr {
namespace {

// ---------- RecordLayout round-trip over a payload-size sweep ----------

class RecordSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(RecordSizeSweep, ScatterGatherAndVersions) {
  SCOPED_TRACE(::testing::Message() << "DRTMR_TEST_SEED=" << util::TestSeed());
  const size_t n = GetParam();
  std::vector<std::byte> rec(store::RecordLayout::BytesFor(n));
  std::vector<char> payload(n);
  FastRand rng(util::DeriveSeed(n + 1));
  for (size_t i = 0; i < n; ++i) {
    payload[i] = static_cast<char>(rng.Next());
  }
  const uint64_t seq = rng.Next() & ~1ull;
  store::RecordLayout::Init(rec.data(), /*key=*/n + 1, /*inc=*/2, seq,
                            payload.empty() ? nullptr : payload.data(), n);
  std::vector<char> out(n);
  store::RecordLayout::GatherValue(rec.data(), out.data(), n);
  EXPECT_EQ(out, payload);
  EXPECT_TRUE(store::RecordLayout::VersionsConsistent(rec.data(), n));
  EXPECT_EQ(store::RecordLayout::GetSeq(rec.data()), seq);
  EXPECT_EQ(store::RecordLayout::GetKey(rec.data()), n + 1);
  // Stamping a different version must be detected on multi-line records.
  if (store::RecordLayout::LinesFor(n) > 1) {
    store::RecordLayout::SetSeq(rec.data(), seq + 2);
    EXPECT_FALSE(store::RecordLayout::VersionsConsistent(rec.data(), n));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RecordSizeSweep,
                         ::testing::Values(0, 1, 8, 31, 32, 33, 64, 93, 94, 95, 128, 156, 200,
                                           256, 400));

// ---------- HashStore vs model over randomized operation streams ----------

class HashModelSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HashModelSweep, MatchesUnorderedMapModel) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 1;
  cfg.workers_per_node = 1;
  cfg.memory_bytes = 8 << 20;
  cfg.log_bytes = 1 << 19;
  cluster::Cluster cluster(cfg);
  store::HashStore hs(cluster.node(0), /*nbuckets=*/64, /*value_size=*/24);
  sim::ThreadContext* ctx = cluster.node(0)->context(0);

  SCOPED_TRACE(::testing::Message() << "DRTMR_TEST_SEED=" << util::TestSeed());
  FastRand rng(util::DeriveSeed(GetParam()));
  std::unordered_map<uint64_t, uint64_t> model;  // key -> first 8 payload bytes
  for (int i = 0; i < 3000; ++i) {
    const uint64_t key = rng.Range(1, 200);
    const uint64_t op = rng.Uniform(3);
    if (op == 0) {  // insert
      uint64_t v[3] = {rng.Next(), 0, 0};
      const Status s = hs.Insert(ctx, key, v, nullptr);
      if (model.count(key)) {
        EXPECT_EQ(s, Status::kExists);
      } else {
        EXPECT_EQ(s, Status::kOk);
        model[key] = v[0];
      }
    } else if (op == 1) {  // remove
      const Status s = hs.Remove(ctx, key);
      EXPECT_EQ(s, model.erase(key) ? Status::kOk : Status::kNotFound);
    } else {  // lookup
      const uint64_t off = hs.Lookup(ctx, key);
      if (model.count(key)) {
        ASSERT_NE(off, store::HashStore::kNoRecord);
        std::vector<std::byte> rec(hs.record_bytes());
        cluster.node(0)->bus()->Read(ctx, off, rec.data(), rec.size());
        uint64_t v[3];
        store::RecordLayout::GatherValue(rec.data(), v, 24);
        EXPECT_EQ(v[0], model[key]);
        EXPECT_EQ(store::RecordLayout::GetKey(rec.data()), key);
      } else {
        EXPECT_EQ(off, store::HashStore::kNoRecord);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HashModelSweep, ::testing::Values(1, 2, 3, 4, 5));

// ---------- BTree vs model ----------

class BTreeModelSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeModelSweep, MatchesMapModel) {
  store::BTreeStore bt;
  std::map<uint64_t, uint64_t> model;
  SCOPED_TRACE(::testing::Message() << "DRTMR_TEST_SEED=" << util::TestSeed());
  FastRand rng(util::DeriveSeed(GetParam() * 97));
  for (int i = 0; i < 5000; ++i) {
    const uint64_t key = rng.Range(1, 800);
    switch (rng.Uniform(4)) {
      case 0:
      case 1: {
        const Status s = bt.Insert(nullptr, key, key * 3);
        EXPECT_EQ(s, model.emplace(key, key * 3).second ? Status::kOk : Status::kExists);
        break;
      }
      case 2: {
        const Status s = bt.Remove(nullptr, key);
        EXPECT_EQ(s, model.erase(key) ? Status::kOk : Status::kNotFound);
        break;
      }
      default: {
        EXPECT_EQ(bt.Lookup(nullptr, key),
                  model.count(key) ? model[key] : store::BTreeStore::kNoRecord);
        break;
      }
    }
  }
  EXPECT_EQ(bt.size(), model.size());
  // Full scan must equal the model, in order.
  std::vector<std::pair<uint64_t, uint64_t>> scanned;
  bt.Scan(nullptr, 0, ~0ull, [&](uint64_t k, uint64_t v) {
    scanned.emplace_back(k, v);
    return true;
  });
  std::vector<std::pair<uint64_t, uint64_t>> expect(model.begin(), model.end());
  EXPECT_EQ(scanned, expect);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeModelSweep, ::testing::Values(7, 8, 9, 10));

// ---------- Serializability sweep across cluster shapes ----------

struct Cell {
  int64_t value;
  uint64_t pad[6];
};

// (nodes, threads_per_node, cross_pct via key selection, replication)
using SweepParam = std::tuple<uint32_t, uint32_t, bool>;

class SerializabilitySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SerializabilitySweep, TransfersConserveAndSnapshotsConsistent) {
  SCOPED_TRACE(::testing::Message() << "DRTMR_TEST_SEED=" << util::TestSeed());
  const auto [nodes, threads, replication] = GetParam();
  cluster::ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.workers_per_node = threads + 1;
  cfg.memory_bytes = 16 << 20;
  cfg.log_bytes = 2 << 20;
  cluster::Cluster cluster(cfg);
  store::Catalog catalog(&cluster);
  store::TableOptions opt;
  opt.value_size = sizeof(Cell);
  opt.hash_buckets = 256;
  store::Table* table = catalog.CreateTable(1, opt);

  std::unique_ptr<rep::PrimaryBackupReplicator> replicator;
  cluster::Coordinator coordinator;
  for (uint32_t i = 0; i < nodes; ++i) {
    coordinator.Join(i, 0, ~0ull >> 2);
  }
  if (replication) {
    rep::RepConfig rcfg;
    rcfg.replicas = std::min<uint32_t>(3, nodes);
    replicator = std::make_unique<rep::PrimaryBackupReplicator>(&cluster, rcfg);
  }
  txn::TxnConfig tcfg;
  tcfg.replication = replication;
  txn::TxnEngine engine(&cluster, &catalog, tcfg, &coordinator, replicator.get());
  engine.StartServices();

  const uint64_t keys_per_node = 8;
  auto key_of = [&](uint32_t n, uint64_t i) { return (static_cast<uint64_t>(n) << 16) | (i + 1); };
  for (uint32_t n = 0; n < nodes; ++n) {
    for (uint64_t i = 0; i < keys_per_node; ++i) {
      Cell c{1000, {}};
      ASSERT_EQ(table->hash(n)->Insert(cluster.node(n)->context(0), key_of(n, i), &c, nullptr),
                Status::kOk);
      if (replicator != nullptr) {
        const uint64_t off = table->hash(n)->Lookup(nullptr, key_of(n, i));
        std::vector<std::byte> img(table->record_bytes());
        cluster.node(n)->bus()->Read(nullptr, off, img.data(), img.size());
        for (uint32_t r = 1; r < std::min<uint32_t>(3, nodes); ++r) {
          replicator->SeedBackup(cluster.BackupOf(n, r), 1, n, key_of(n, i), img.data(),
                                 img.size());
        }
      }
    }
  }
  const int64_t total = static_cast<int64_t>(nodes) * keys_per_node * 1000;

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> workers;
  for (uint32_t n = 0; n < nodes; ++n) {
    for (uint32_t w = 0; w < threads; ++w) {
      workers.emplace_back([&, n, w] {
        sim::ThreadContext* ctx = cluster.node(n)->context(w);
        txn::Transaction txn(&engine, ctx);
        FastRand rng(util::DeriveSeed(n * 31 + w + 5));
        for (int i = 0; i < 120; ++i) {
          const uint32_t fn = static_cast<uint32_t>(rng.Uniform(nodes));
          const uint32_t tn = static_cast<uint32_t>(rng.Uniform(nodes));
          const uint64_t from = key_of(fn, rng.Uniform(keys_per_node));
          const uint64_t to = key_of(tn, rng.Uniform(keys_per_node));
          if (from == to) {
            continue;
          }
          while (true) {
            txn.Begin();
            Cell a{}, b{};
            if (txn.Read(table, fn, from, &a) != Status::kOk ||
                txn.Read(table, tn, to, &b) != Status::kOk) {
              txn.UserAbort();
              continue;
            }
            a.value -= 5;
            b.value += 5;
            if (txn.Write(table, fn, from, &a) != Status::kOk ||
                txn.Write(table, tn, to, &b) != Status::kOk) {
              txn.UserAbort();
              continue;
            }
            if (txn.Commit() == Status::kOk) {
              break;
            }
          }
        }
      });
    }
  }
  // Read-only auditor on the extra worker slot of node 0.
  std::thread auditor([&] {
    sim::ThreadContext* ctx = cluster.node(0)->context(threads);
    txn::Transaction ro(&engine, ctx);
    while (!stop.load()) {
      ro.Begin(true);
      int64_t sum = 0;
      bool ok = true;
      for (uint32_t n = 0; n < nodes && ok; ++n) {
        for (uint64_t i = 0; i < keys_per_node && ok; ++i) {
          Cell c{};
          ok = ro.Read(table, n, key_of(n, i), &c) == Status::kOk;
          sum += c.value;
        }
      }
      if (!ok) {
        ro.UserAbort();
        continue;
      }
      if (ro.Commit() == Status::kOk && sum != total) {
        violations.fetch_add(1);
      }
    }
  });
  for (auto& t : workers) {
    t.join();
  }
  stop.store(true);
  auditor.join();
  EXPECT_EQ(violations.load(), 0);

  int64_t final_total = 0;
  for (uint32_t n = 0; n < nodes; ++n) {
    for (uint64_t i = 0; i < keys_per_node; ++i) {
      const uint64_t off = table->hash(n)->Lookup(nullptr, key_of(n, i));
      std::vector<std::byte> rec(table->record_bytes());
      cluster.node(n)->bus()->Read(nullptr, off, rec.data(), rec.size());
      Cell c{};
      store::RecordLayout::GatherValue(rec.data(), &c, sizeof(c));
      final_total += c.value;
      // Under replication all records must end committable (even seq).
      if (replication) {
        EXPECT_EQ(store::RecordLayout::GetSeq(rec.data()) % 2, 0u);
      }
      EXPECT_EQ(store::RecordLayout::GetLock(rec.data()), 0u) << "leaked lock";
    }
  }
  EXPECT_EQ(final_total, total);
  engine.StopServices();
}

INSTANTIATE_TEST_SUITE_P(Shapes, SerializabilitySweep,
                         ::testing::Values(SweepParam{2, 2, false}, SweepParam{3, 2, false},
                                           SweepParam{4, 1, false}, SweepParam{3, 2, true},
                                           SweepParam{4, 2, true}, SweepParam{2, 3, false}));

}  // namespace
}  // namespace drtmr
