// Epoch-fenced failover (DESIGN.md §10): a writer removed from the
// configuration must not be able to mutate survivor state (zombie fencing),
// and the full suspect → recover → rejoin → commit round-trip must run with
// no scripted help when the failure is a transient network freeze.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/cluster/membership.h"
#include "src/cluster/partition_map.h"
#include "src/rep/primary_backup.h"
#include "src/rep/recovery.h"
#include "src/sim/fault.h"
#include "src/store/record.h"
#include "src/txn/transaction.h"
#include "src/txn/txn_engine.h"
#include "src/util/time_gate.h"

namespace drtmr::cluster {
namespace {

using store::RecordLayout;

struct Cell {
  int64_t value;
  uint64_t pad[6];
};

constexpr uint32_t kTableId = 1;
constexpr int64_t kInitialBalance = 1000;

class FailoverTest : public ::testing::Test {
 protected:
  void Build(uint32_t nodes, uint64_t keys_per_node, const MembershipConfig& mcfg,
             uint64_t join_lease_ns) {
    nodes_ = nodes;
    keys_per_node_ = keys_per_node;
    cfg_.num_nodes = nodes;
    cfg_.workers_per_node = 2;
    cfg_.memory_bytes = 16 << 20;
    cfg_.log_bytes = 4 << 20;
    cluster_ = std::make_unique<Cluster>(cfg_);
    catalog_ = std::make_unique<store::Catalog>(cluster_.get());
    store::TableOptions topt;
    topt.value_size = sizeof(Cell);
    topt.hash_buckets = 256;
    table_ = catalog_->CreateTable(kTableId, topt);
    coordinator_ = std::make_unique<Coordinator>();
    for (uint32_t i = 0; i < nodes; ++i) {
      coordinator_->Join(i, 0, join_lease_ns);
    }
    rep::RepConfig rcfg;
    rcfg.replicas = 3;
    replicator_ = std::make_unique<rep::PrimaryBackupReplicator>(cluster_.get(), rcfg);
    txn::TxnConfig tcfg;
    tcfg.replication = true;
    engine_ = std::make_unique<txn::TxnEngine>(cluster_.get(), catalog_.get(), tcfg,
                                               coordinator_.get(), replicator_.get());
    engine_->StartServices();
    pmap_ = std::make_unique<PartitionMap>(nodes);
    for (uint32_t n = 0; n < nodes; ++n) {
      for (uint64_t i = 0; i < keys_per_node; ++i) {
        Cell c{kInitialBalance, {}};
        ASSERT_EQ(
            table_->hash(n)->Insert(cluster_->node(n)->context(0), KeyOf(n, i), &c, nullptr),
            Status::kOk);
        const uint64_t off = table_->hash(n)->Lookup(nullptr, KeyOf(n, i));
        std::vector<std::byte> img(table_->record_bytes());
        cluster_->node(n)->bus()->Read(nullptr, off, img.data(), img.size());
        for (uint32_t r = 1; r < rcfg.replicas; ++r) {
          replicator_->SeedBackup(cluster_->BackupOf(n, r), kTableId, n, KeyOf(n, i),
                                  img.data(), img.size());
        }
      }
    }
    recovery_ = std::make_unique<rep::RecoveryManager>(engine_.get(), replicator_.get(),
                                                       coordinator_.get());
    membership_ = std::make_unique<MembershipService>(cluster_.get(), coordinator_.get(),
                                                      pmap_.get(), mcfg);
    membership_->set_recovery_fn([this](uint32_t dead, uint32_t host) {
      recovery_->RecoverAfterFailure(cluster_->node(host)->tool_context(), dead, host,
                                     /*pmap=*/nullptr);
    });
    engine_->set_membership(membership_.get());
  }

  ~FailoverTest() override {
    if (membership_ != nullptr) {
      membership_->Stop();
    }
    if (engine_ != nullptr) {
      engine_->StopServices();
    }
  }

  static uint64_t KeyOf(uint32_t part, uint64_t i) {
    return (static_cast<uint64_t>(part) << 16) | (i + 1);
  }

  // Reads partition `part`, key index `i` through the current partition map.
  int64_t ReadValue(uint32_t part, uint64_t i) {
    const uint32_t n = pmap_->node_of(part);
    const uint64_t off = table_->hash(n)->Lookup(nullptr, KeyOf(part, i));
    EXPECT_NE(off, store::HashStore::kNoRecord) << "partition " << part << " key " << i;
    if (off == store::HashStore::kNoRecord) {
      return -1;
    }
    std::vector<std::byte> rec(table_->record_bytes());
    cluster_->node(n)->bus()->Read(nullptr, off, rec.data(), rec.size());
    Cell c{};
    RecordLayout::GatherValue(rec.data(), &c, sizeof(c));
    return c.value;
  }

  // One read-modify-write transfer attempt from `ctx`; returns Commit status
  // (or the first failing step's status).
  Status TryDeposit(sim::ThreadContext* ctx, uint32_t part, uint64_t i, int64_t delta) {
    txn::Transaction txn(engine_.get(), ctx);
    txn.Begin();
    Cell v{};
    const uint32_t n = pmap_->node_of(part);
    if (Status s = txn.Read(table_, n, KeyOf(part, i), &v); s != Status::kOk) {
      txn.UserAbort();
      return s;
    }
    v.value += delta;
    if (Status s = txn.Write(table_, n, KeyOf(part, i), &v); s != Status::kOk) {
      txn.UserAbort();
      return s;
    }
    return txn.Commit();
  }

  uint32_t nodes_ = 0;
  uint64_t keys_per_node_ = 0;
  ClusterConfig cfg_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<store::Catalog> catalog_;
  store::Table* table_ = nullptr;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<rep::PrimaryBackupReplicator> replicator_;
  std::unique_ptr<txn::TxnEngine> engine_;
  std::unique_ptr<PartitionMap> pmap_;
  std::unique_ptr<rep::RecoveryManager> recovery_;
  std::unique_ptr<MembershipService> membership_;
};

// A transaction that began before its node was removed from the view must not
// be able to mutate survivor state afterwards: its begin epoch is the old
// stamp, so the survivor's fabric refuses the C.1 lock CAS (issuer stamp lags
// the target's) and the commit comes back kStaleEpoch with the target record
// untouched. Leases are effectively infinite here so epoch fencing is the
// only mechanism under test; the view change is driven deterministically by
// single-stepping the driver — no threads, no timing.
TEST_F(FailoverTest, ZombieWriterIsFencedAfterRemoval) {
  MembershipConfig mcfg;
  mcfg.lease_ns = 1'000'000'000;  // lease checks always pass; fencing is the fence
  Build(/*nodes=*/3, /*keys_per_node=*/4, mcfg, /*join_lease_ns=*/~0ull >> 2);
  membership_->Arm();
  const uint64_t old_epoch = coordinator_->view().epoch;

  // The zombie (node 1) opens a transaction against a record on node 0 and
  // stages a write, then the configuration removes it.
  sim::ThreadContext* zombie = cluster_->node(1)->context(0);
  txn::Transaction txn(engine_.get(), zombie);
  txn.Begin();
  Cell v{};
  ASSERT_EQ(txn.Read(table_, 0, KeyOf(0, 0), &v), Status::kOk);
  v.value += 500;
  ASSERT_EQ(txn.Write(table_, 0, KeyOf(0, 0), &v), Status::kOk);

  coordinator_->Remove(1);
  membership_->TickDriver();  // flip pmap, stamp survivors, recover node 1's data

  EXPECT_EQ(membership_->suspicions(), 1u);
  EXPECT_EQ(membership_->recoveries(), 1u);
  EXPECT_TRUE(membership_->was_suspected(1));
  EXPECT_EQ(pmap_->node_of(1), 2u);  // next ring member hosts the partition
  // Survivors carry the new stamp; the removed node's word was left behind.
  EXPECT_GT(membership_->NodeEpoch(0), old_epoch);
  EXPECT_EQ(membership_->NodeEpoch(1), old_epoch);

  // The staged commit bounces: the survivor's NIC refuses the lock CAS.
  EXPECT_EQ(txn.Commit(), Status::kStaleEpoch);
  EXPECT_EQ(ReadValue(0, 0), kInitialBalance);

  // A brand-new transaction from the zombie is fenced too — its begin epoch
  // re-reads its own (stale) word, and every mutating verb still bounces.
  EXPECT_EQ(TryDeposit(zombie, 0, 0, 500), Status::kStaleEpoch);
  EXPECT_EQ(ReadValue(0, 0), kInitialBalance);

  // Survivors are unaffected: the same deposit from node 2 commits, including
  // against the partition recovery just re-hosted.
  EXPECT_EQ(TryDeposit(cluster_->node(2)->context(0), 0, 0, 500), Status::kOk);
  EXPECT_EQ(ReadValue(0, 0), kInitialBalance + 500);
  EXPECT_EQ(TryDeposit(cluster_->node(2)->context(0), 1, 0, 77), Status::kOk);
  EXPECT_EQ(ReadValue(1, 0), kInitialBalance + 77);
}

// Full autonomous round-trip under a transient freeze: the victim's heartbeat
// verbs stall past the fault window, its lease expires, the driver removes
// it, re-hosts its partition, and stamps the new epoch — then the thaw lets
// its heartbeat through again and it rejoins in a later epoch, after which it
// can commit transactions against its re-hosted (now remote) partition. The
// harness never tells anyone about the fault.
TEST_F(FailoverTest, FreezeSuspectRecoverRejoinCommitRoundTrip) {
  MembershipConfig mcfg;  // torture-harness defaults: 25us lease, 5us heartbeat
  mcfg.seed = 42;
  Build(/*nodes=*/3, /*keys_per_node=*/4, mcfg, /*join_lease_ns=*/mcfg.lease_ns);
  const uint64_t initial_epoch = coordinator_->view().epoch;

  // Freeze node 1 for far longer than the lease; the window is in virtual
  // time, which the gate keeps roughly common across membership threads.
  sim::FaultPlan plan(mcfg.seed);
  plan.Freeze(1, {40'000, 140'000});
  cluster_->SetFaultPlan(&plan);
  TimeGate gate(/*window_ns=*/8'000);
  membership_->set_time_gate(&gate);
  membership_->Start();

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (std::chrono::steady_clock::now() < deadline) {
    if (membership_->rejoins() >= 1 && membership_->recoveries() >= 1 &&
        coordinator_->view().Contains(1)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  membership_->Stop();
  cluster_->SetFaultPlan(nullptr);

  EXPECT_GE(membership_->suspicions(), 1u) << "freeze was never detected";
  EXPECT_GE(membership_->recoveries(), 1u);
  EXPECT_GE(membership_->rejoins(), 1u) << "victim never rejoined after the thaw";
  const ClusterView v = coordinator_->view();
  EXPECT_TRUE(v.Contains(1));
  EXPECT_EQ(v.members.size(), nodes_);
  // Remove + rejoin each bump the committed epoch at least once.
  EXPECT_GE(v.epoch, initial_epoch + 2);
  // The victim's partition moved to the next ring member and survived intact.
  EXPECT_EQ(pmap_->node_of(1), 2u);
  for (uint64_t i = 0; i < keys_per_node_; ++i) {
    EXPECT_EQ(ReadValue(1, i), kInitialBalance) << "re-hosted key " << i;
  }

  // The rejoined node is a first-class member again: it commits against its
  // re-hosted partition (remote now) and against an untouched one.
  sim::ThreadContext* rejoined = cluster_->node(1)->context(0);
  EXPECT_EQ(TryDeposit(rejoined, 1, 0, 250), Status::kOk);
  EXPECT_EQ(ReadValue(1, 0), kInitialBalance + 250);
  EXPECT_EQ(TryDeposit(rejoined, 0, 1, -30), Status::kOk);
  EXPECT_EQ(ReadValue(0, 1), kInitialBalance - 30);
}

}  // namespace
}  // namespace drtmr::cluster
