// Per-transaction-type semantics of the TPC-C implementation: new-order
// allocates order ids densely and moves stock; payment moves money into
// warehouse/district/customer YTD consistently; delivery consumes each
// NEW_ORDER exactly once; order-status sees the customer's latest order;
// stock-level observes a consistent district snapshot.
#include "src/workload/tpcc.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <thread>

#include "src/txn/transaction.h"
#include "src/workload/driver.h"

namespace drtmr::workload {
namespace {

class TpccTxnTest : public ::testing::Test {
 protected:
  TpccTxnTest() {
    cfg_.num_nodes = 2;
    cfg_.workers_per_node = 4;
    cfg_.memory_bytes = 32 << 20;
    cfg_.log_bytes = 2 << 20;
    cluster_ = std::make_unique<cluster::Cluster>(cfg_);
    catalog_ = std::make_unique<store::Catalog>(cluster_.get());
    pmap_ = std::make_unique<cluster::PartitionMap>(2);
    txn::TxnConfig tcfg;
    engine_ = std::make_unique<txn::TxnEngine>(cluster_.get(), catalog_.get(), tcfg);
    tc_.warehouses_per_node = 1;
    tc_.customers_per_district = 40;
    tc_.items = 200;
    tpcc_ = std::make_unique<TpccWorkload>(engine_.get(), pmap_.get(), tc_);
    tpcc_->CreateTables();
    tpcc_->Load(nullptr);
    engine_->StartServices();
  }

  ~TpccTxnTest() override { engine_->StopServices(); }

  // Runs `count` transactions of one forced type on node 0's warehouse.
  void RunType(uint32_t type, int count, uint32_t worker = 0) {
    sim::ThreadContext* ctx = cluster_->node(0)->context(worker);
    txn::Transaction txn(engine_.get(), ctx);
    FastRand rng(worker + 17);
    for (int i = 0; i < count; ++i) {
      while (!tpcc_->RunType(type, ctx, &txn, &rng, /*w=*/1)) {
      }
    }
  }

  template <typename Row>
  Row ReadRow(TpccWorkload::TableId tab, uint32_t node, uint64_t key) {
    store::Table* t = tpcc_->table(tab);
    const uint64_t off = t->kind() == store::StoreKind::kHash
                             ? t->hash(node)->Lookup(nullptr, key)
                             : t->btree(node)->Lookup(nullptr, key);
    EXPECT_NE(off, 0u) << "missing key " << key;
    std::vector<std::byte> rec(t->record_bytes());
    cluster_->node(node)->bus()->Read(nullptr, off, rec.data(), rec.size());
    Row row;
    store::RecordLayout::GatherValue(rec.data(), &row, sizeof(row));
    return row;
  }

  cluster::ClusterConfig cfg_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<store::Catalog> catalog_;
  std::unique_ptr<cluster::PartitionMap> pmap_;
  std::unique_ptr<txn::TxnEngine> engine_;
  TpccConfig tc_;
  std::unique_ptr<TpccWorkload> tpcc_;
};

TEST_F(TpccTxnTest, NewOrderAllocatesDenseOrderIdsAndLines) {
  RunType(kNewOrder, 50);
  uint64_t orders_total = 0;
  for (uint64_t d = 1; d <= 10; ++d) {
    const uint64_t next = tpcc_->DistrictNextOrderId(0, 1, d);
    // Every order id below next_o_id must exist with 5..15 order lines.
    for (uint64_t o = 1; o < next; ++o) {
      const OrderRow orow = ReadRow<OrderRow>(TpccWorkload::kOrderTab, 0,
                                              TpccWorkload::OKey(1, d, o));
      EXPECT_GE(orow.ol_cnt, 5u);
      EXPECT_LE(orow.ol_cnt, 15u);
      EXPECT_GE(orow.c_id, 1u);
      uint32_t lines = 0;
      tpcc_->table(TpccWorkload::kOrderLineTab)
          ->btree(0)
          ->Scan(nullptr, TpccWorkload::OLKey(1, d, o, 0), TpccWorkload::OLKey(1, d, o, 15),
                 [&](uint64_t, uint64_t) {
                   lines++;
                   return true;
                 });
      EXPECT_EQ(lines, orow.ol_cnt);
      // A matching NEW_ORDER entry exists (no deliveries ran).
      EXPECT_NE(tpcc_->table(TpccWorkload::kNewOrderTab)
                    ->btree(0)
                    ->Lookup(nullptr, TpccWorkload::OKey(1, d, o)),
                0u);
      orders_total++;
    }
  }
  EXPECT_EQ(orders_total, 50u);
}

TEST_F(TpccTxnTest, PaymentMovesMoneyConsistently) {
  RunType(kPayment, 60);
  // warehouse.ytd == sum(district.ytd) == total customer ytd_payment over
  // home-warehouse payments (all local here since 2 nodes, 15% remote may
  // target warehouse 2 customers — count both warehouses).
  uint64_t w_ytd = 0, d_ytd = 0, c_ytd = 0;
  for (uint64_t w = 1; w <= 2; ++w) {
    const uint32_t node = tpcc_->NodeOfWarehouse(w);
    w_ytd += ReadRow<WarehouseRow>(TpccWorkload::kWarehouseTab, node, TpccWorkload::WKey(w)).ytd;
    for (uint64_t d = 1; d <= 10; ++d) {
      d_ytd += ReadRow<DistrictRow>(TpccWorkload::kDistrictTab, node, TpccWorkload::DKey(w, d))
                   .ytd;
      for (uint64_t c = 1; c <= tc_.customers_per_district; ++c) {
        c_ytd += ReadRow<CustomerRow>(TpccWorkload::kCustomerTab, node,
                                      TpccWorkload::CKey(w, d, c))
                     .ytd_payment;
      }
    }
  }
  EXPECT_GT(w_ytd, 0u);
  EXPECT_EQ(w_ytd, d_ytd);
  EXPECT_EQ(w_ytd, c_ytd);
}

TEST_F(TpccTxnTest, DeliveryConsumesEachNewOrderOnce) {
  RunType(kNewOrder, 40);
  uint64_t pending_before = tpcc_->table(TpccWorkload::kNewOrderTab)->btree(0)->size();
  ASSERT_EQ(pending_before, 40u);

  // Two concurrent deliverers must never double-deliver.
  std::thread t1([&] { RunType(kDelivery, 3, 0); });
  std::thread t2([&] { RunType(kDelivery, 3, 1); });
  t1.join();
  t2.join();

  // Every delivered order got a carrier and its customer's delivery_cnt rose;
  // total deliveries == orders removed from NEW_ORDER.
  uint64_t delivered = 0;
  uint64_t delivery_cnt_total = 0;
  for (uint64_t d = 1; d <= 10; ++d) {
    const uint64_t next = tpcc_->DistrictNextOrderId(0, 1, d);
    for (uint64_t o = 1; o < next; ++o) {
      const OrderRow orow =
          ReadRow<OrderRow>(TpccWorkload::kOrderTab, 0, TpccWorkload::OKey(1, d, o));
      const bool pending = tpcc_->table(TpccWorkload::kNewOrderTab)
                               ->btree(0)
                               ->Lookup(nullptr, TpccWorkload::OKey(1, d, o)) != 0;
      if (orow.carrier_id != 0) {
        EXPECT_FALSE(pending) << "delivered order still in NEW_ORDER";
        delivered++;
      } else {
        EXPECT_TRUE(pending) << "undelivered order missing from NEW_ORDER";
      }
    }
    for (uint64_t c = 1; c <= tc_.customers_per_district; ++c) {
      delivery_cnt_total +=
          ReadRow<CustomerRow>(TpccWorkload::kCustomerTab, 0, TpccWorkload::CKey(1, d, c))
              .delivery_cnt;
    }
  }
  const uint64_t pending_after = tpcc_->table(TpccWorkload::kNewOrderTab)->btree(0)->size();
  EXPECT_EQ(pending_before - pending_after, delivered);
  EXPECT_EQ(delivery_cnt_total, delivered);
  EXPECT_GT(delivered, 0u);
}

TEST_F(TpccTxnTest, OrderStatusSeesLatestOrder) {
  RunType(kNewOrder, 30);
  // For every customer with a recorded last order, that order must exist and
  // belong to them.
  for (uint64_t d = 1; d <= 10; ++d) {
    for (uint64_t c = 1; c <= tc_.customers_per_district; ++c) {
      const CustLastOrderRow lo = ReadRow<CustLastOrderRow>(TpccWorkload::kCustLastOrderTab, 0,
                                                            TpccWorkload::CKey(1, d, c));
      if (lo.o_id == 0) {
        continue;
      }
      const OrderRow orow =
          ReadRow<OrderRow>(TpccWorkload::kOrderTab, 0, TpccWorkload::OKey(1, d, lo.o_id));
      EXPECT_EQ(orow.c_id, c);
    }
  }
  // And the read-only transaction itself commits.
  RunType(kOrderStatus, 20);
}

TEST_F(TpccTxnTest, StockLevelCommitsReadOnly) {
  RunType(kNewOrder, 30);
  const uint64_t commits_before = engine_->stats().commits.load();
  RunType(kStockLevel, 10);
  EXPECT_GE(engine_->stats().commits.load(), commits_before + 10);
}

TEST_F(TpccTxnTest, LastNameIndexResolvesCustomers) {
  // Every customer is reachable through the (w, d, last-name) index, and the
  // index entry points back at a real customer row.
  store::Table* name_index = tpcc_->table(TpccWorkload::kCustNameTab);
  uint64_t indexed = 0;
  for (uint32_t n = 0; n < 2; ++n) {
    name_index->btree(n)->Scan(nullptr, 0, ~0ull, [&](uint64_t key, uint64_t off) {
      const uint64_t c = key & 0xfff;
      const uint64_t d = (key >> 36) & 0xf;
      const uint64_t w = key >> 40;
      EXPECT_GE(c, 1u);
      EXPECT_LE(c, tc_.customers_per_district);
      std::vector<std::byte> rec(name_index->record_bytes());
      cluster_->node(n)->bus()->Read(nullptr, off, rec.data(), rec.size());
      CustNameRow row;
      store::RecordLayout::GatherValue(rec.data(), &row, sizeof(row));
      EXPECT_EQ(row.c_id, c);
      EXPECT_NE(tpcc_->table(TpccWorkload::kCustomerTab)
                    ->hash(n)
                    ->Lookup(nullptr, TpccWorkload::CKey(w, d, c)),
                0u);
      indexed++;
      return true;
    });
  }
  EXPECT_EQ(indexed, 2u * 10 * tc_.customers_per_district);
  // Payments (60% by last name) run against the index without errors.
  RunType(kPayment, 40);
}

TEST_F(TpccTxnTest, StockYtdMatchesOrderLines) {
  RunType(kNewOrder, 50);
  uint64_t stock_ytd = 0;
  for (uint64_t w = 1; w <= 2; ++w) {
    const uint32_t node = tpcc_->NodeOfWarehouse(w);
    for (uint64_t i = 1; i <= tc_.items; ++i) {
      stock_ytd += ReadRow<StockRow>(TpccWorkload::kStockTab, node, TpccWorkload::SKey(w, i)).ytd;
    }
  }
  uint64_t line_qty = 0;
  for (uint32_t n = 0; n < 2; ++n) {
    tpcc_->table(TpccWorkload::kOrderLineTab)->btree(n)->Scan(nullptr, 0, ~0ull, [&](uint64_t,
                                                                                     uint64_t off) {
      std::vector<std::byte> rec(tpcc_->table(TpccWorkload::kOrderLineTab)->record_bytes());
      cluster_->node(n)->bus()->Read(nullptr, off, rec.data(), rec.size());
      OrderLineRow row;
      store::RecordLayout::GatherValue(rec.data(), &row, sizeof(row));
      line_qty += row.qty;
      return true;
    });
  }
  EXPECT_EQ(stock_ytd, line_qty);
  EXPECT_GT(stock_ytd, 0u);
}

}  // namespace
}  // namespace drtmr::workload
