#include "src/sim/htm.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/sim/cost_model.h"
#include "src/sim/memory_bus.h"

namespace drtmr::sim {
namespace {

class HtmTest : public ::testing::Test {
 protected:
  HtmTest()
      : bus_(1 << 20, &cost_, /*slots=*/8, /*read_cap=*/128, /*write_cap=*/32),
        engine_(&bus_, &cost_) {}

  CostModel cost_;
  MemoryBus bus_;
  HtmEngine engine_;
};

TEST_F(HtmTest, CommitMakesWritesVisible) {
  ThreadContext ctx(0, 0, 1);
  HtmTxn* txn = engine_.Begin(&ctx);
  ASSERT_NE(txn, nullptr);
  ASSERT_EQ(txn->WriteU64(100, 42), Status::kOk);
  // Before commit the write is speculative: non-transactional read sees 0
  // (and, per strong atomicity, dooms the transaction — so snapshot through
  // a different region of memory instead).
  ASSERT_EQ(txn->Commit(), Status::kOk);
  EXPECT_EQ(bus_.ReadU64(&ctx, 100), 42u);
  EXPECT_EQ(engine_.stats().commits.load(), 1u);
}

TEST_F(HtmTest, ReadYourOwnWrites) {
  ThreadContext ctx(0, 0, 1);
  bus_.WriteU64(&ctx, 200, 7);
  HtmTxn* txn = engine_.Begin(&ctx);
  uint64_t v = 0;
  ASSERT_EQ(txn->ReadU64(200, &v), Status::kOk);
  EXPECT_EQ(v, 7u);
  ASSERT_EQ(txn->WriteU64(200, 8), Status::kOk);
  ASSERT_EQ(txn->ReadU64(200, &v), Status::kOk);
  EXPECT_EQ(v, 8u) << "transactional read must observe buffered write";
  ASSERT_EQ(txn->Commit(), Status::kOk);
  EXPECT_EQ(bus_.ReadU64(&ctx, 200), 8u);
}

TEST_F(HtmTest, PartialOverlayOfBufferedWrite) {
  ThreadContext ctx(0, 0, 1);
  char base[16] = "AAAAAAAAAAAAAAA";
  bus_.Write(&ctx, 300, base, sizeof(base));
  HtmTxn* txn = engine_.Begin(&ctx);
  ASSERT_EQ(txn->Write(304, "BBBB", 4), Status::kOk);
  char out[16] = {};
  ASSERT_EQ(txn->Read(300, out, 15), Status::kOk);
  EXPECT_EQ(std::string(out, 15), "AAAABBBBAAAAAAA");
  txn->Abort();
  // Aborted: memory unchanged.
  bus_.Read(&ctx, 300, out, 15);
  EXPECT_EQ(std::string(out, 15), "AAAAAAAAAAAAAAA");
}

TEST_F(HtmTest, ExplicitAbortDiscardsWrites) {
  ThreadContext ctx(0, 0, 1);
  HtmTxn* txn = engine_.Begin(&ctx);
  ASSERT_EQ(txn->WriteU64(400, 1), Status::kOk);
  txn->Abort();
  EXPECT_EQ(txn->abort_code(), HtmTxn::AbortCode::kExplicit);
  EXPECT_EQ(bus_.ReadU64(&ctx, 400), 0u);
  EXPECT_EQ(engine_.stats().aborts_explicit.load(), 1u);
  EXPECT_EQ(ctx.current_htm, nullptr);
}

TEST_F(HtmTest, ConflictingNonTxWriteAbortsTxn) {
  ThreadContext ctx0(0, 0, 1);
  ThreadContext ctx1(0, 1, 2);
  HtmTxn* txn = engine_.Begin(&ctx0);
  uint64_t v;
  ASSERT_EQ(txn->ReadU64(500, &v), Status::kOk);
  bus_.WriteU64(&ctx1, 500, 9);  // strong atomicity: dooms the region
  EXPECT_EQ(txn->ReadU64(500, &v), Status::kAborted);
  EXPECT_EQ(txn->abort_code(), HtmTxn::AbortCode::kConflict);
  EXPECT_EQ(engine_.stats().aborts_conflict.load(), 1u);
}

TEST_F(HtmTest, DoomedAtCommitTime) {
  ThreadContext ctx0(0, 0, 1);
  ThreadContext ctx1(0, 1, 2);
  HtmTxn* txn = engine_.Begin(&ctx0);
  uint64_t v;
  ASSERT_EQ(txn->ReadU64(600, &v), Status::kOk);
  ASSERT_EQ(txn->WriteU64(600, v + 1), Status::kOk);
  bus_.WriteU64(&ctx1, 600, 100);
  EXPECT_EQ(txn->Commit(), Status::kAborted);
  EXPECT_EQ(bus_.ReadU64(&ctx0, 600), 100u) << "doomed txn must not clobber";
}

TEST_F(HtmTest, CapacityAbort) {
  ThreadContext ctx(0, 0, 1);
  HtmTxn* txn = engine_.Begin(&ctx);
  Status s = Status::kOk;
  for (uint64_t i = 0; i < 64 && s == Status::kOk; ++i) {  // write cap is 32 lines
    s = txn->WriteU64(i * kCacheLineSize, i);
  }
  EXPECT_EQ(s, Status::kAborted);
  EXPECT_EQ(txn->abort_code(), HtmTxn::AbortCode::kCapacity);
  EXPECT_EQ(engine_.stats().aborts_capacity.load(), 1u);
}

TEST_F(HtmTest, NestedBeginRejected) {
  ThreadContext ctx(0, 0, 1);
  HtmTxn* txn = engine_.Begin(&ctx);
  ASSERT_NE(txn, nullptr);
  EXPECT_EQ(engine_.Begin(&ctx), nullptr);
  txn->Abort();
  EXPECT_NE(engine_.Begin(&ctx), nullptr);
  ctx.current_htm->Abort();
}

TEST_F(HtmTest, OperationsAfterEndReturnAborted) {
  ThreadContext ctx(0, 0, 1);
  HtmTxn* txn = engine_.Begin(&ctx);
  txn->Abort();
  uint64_t v;
  EXPECT_EQ(txn->ReadU64(0, &v), Status::kAborted);
  EXPECT_EQ(txn->WriteU64(0, 1), Status::kAborted);
  EXPECT_EQ(txn->Commit(), Status::kInvalid);
}

TEST_F(HtmTest, TwoTxnsDisjointLinesBothCommit) {
  ThreadContext ctx0(0, 0, 1);
  ThreadContext ctx1(0, 1, 2);
  HtmTxn* a = engine_.Begin(&ctx0);
  HtmTxn* b = engine_.Begin(&ctx1);
  ASSERT_EQ(a->WriteU64(0, 1), Status::kOk);
  ASSERT_EQ(b->WriteU64(kCacheLineSize, 2), Status::kOk);
  EXPECT_EQ(a->Commit(), Status::kOk);
  EXPECT_EQ(b->Commit(), Status::kOk);
  EXPECT_EQ(bus_.ReadU64(&ctx0, 0), 1u);
  EXPECT_EQ(bus_.ReadU64(&ctx0, kCacheLineSize), 2u);
}

TEST_F(HtmTest, WriteWriteConflictAbortsOne) {
  ThreadContext ctx0(0, 0, 1);
  ThreadContext ctx1(0, 1, 2);
  HtmTxn* a = engine_.Begin(&ctx0);
  HtmTxn* b = engine_.Begin(&ctx1);
  ASSERT_EQ(a->WriteU64(700, 1), Status::kOk);
  // b's write to the same line dooms a (requester wins).
  ASSERT_EQ(b->WriteU64(700, 2), Status::kOk);
  EXPECT_EQ(a->Commit(), Status::kAborted);
  EXPECT_EQ(b->Commit(), Status::kOk);
  EXPECT_EQ(bus_.ReadU64(&ctx0, 700), 2u);
}

// The canonical HTM correctness stress: N threads, each performing atomic
// increments of a shared counter inside HTM regions with retry. The final
// count must be exact despite conflicts.
TEST_F(HtmTest, ConcurrentIncrementsAreAtomic) {
  constexpr int kThreads = 4;
  constexpr int kIncr = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t] {
      ThreadContext ctx(0, static_cast<uint32_t>(t), t + 1);
      for (int i = 0; i < kIncr; ++i) {
        while (true) {
          HtmTxn* txn = engine_.Begin(&ctx);
          uint64_t v;
          if (txn->ReadU64(800, &v) != Status::kOk) {
            continue;
          }
          if (txn->WriteU64(800, v + 1) != Status::kOk) {
            continue;
          }
          if (txn->Commit() == Status::kOk) {
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  ThreadContext ctx(0, 0, 1);
  EXPECT_EQ(bus_.ReadU64(&ctx, 800), static_cast<uint64_t>(kThreads * kIncr));
  EXPECT_GT(engine_.stats().commits.load(), 0u);
}

// Two counters must move together: readers inside HTM must never observe a
// half-applied update (isolation + atomic commit).
TEST_F(HtmTest, InvariantNeverTornAcrossLines) {
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  const uint64_t addr_a = 0;
  const uint64_t addr_b = 64 * 10;  // different line
  std::thread writer([this, &stop, addr_a, addr_b] {
    ThreadContext ctx(0, 0, 1);
    for (int i = 0; i < 3000; ++i) {
      while (true) {
        HtmTxn* txn = engine_.Begin(&ctx);
        uint64_t a, b;
        if (txn->ReadU64(addr_a, &a) != Status::kOk) continue;
        if (txn->ReadU64(addr_b, &b) != Status::kOk) continue;
        if (txn->WriteU64(addr_a, a + 1) != Status::kOk) continue;
        if (txn->WriteU64(addr_b, b + 1) != Status::kOk) continue;
        if (txn->Commit() == Status::kOk) break;
      }
    }
    stop.store(true);
  });
  std::thread reader([this, &stop, &violations, addr_a, addr_b] {
    ThreadContext ctx(0, 1, 2);
    while (!stop.load()) {
      HtmTxn* txn = engine_.Begin(&ctx);
      uint64_t a, b;
      if (txn->ReadU64(addr_a, &a) != Status::kOk) continue;
      if (txn->ReadU64(addr_b, &b) != Status::kOk) continue;
      if (txn->Commit() != Status::kOk) continue;
      if (a != b) {
        violations.fetch_add(1);
      }
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(violations.load(), 0);
  ThreadContext ctx(0, 0, 1);
  EXPECT_EQ(bus_.ReadU64(&ctx, addr_a), 3000u);
  EXPECT_EQ(bus_.ReadU64(&ctx, addr_b), 3000u);
}

TEST_F(HtmTest, ChargesVirtualTime) {
  ThreadContext ctx(0, 0, 1);
  HtmTxn* txn = engine_.Begin(&ctx);
  const uint64_t after_begin = ctx.clock.now_ns();
  EXPECT_GE(after_begin, cost_.htm_begin_ns);
  ASSERT_EQ(txn->WriteU64(0, 1), Status::kOk);
  ASSERT_EQ(txn->Commit(), Status::kOk);
  EXPECT_GE(ctx.clock.now_ns(), after_begin + cost_.htm_commit_ns);
}

}  // namespace
}  // namespace drtmr::sim
