// Live shard migration (DESIGN.md §14): the catch-up pump, the dual-home
// property, cutover fencing, and the mid-flight fault battery — source
// killed, destination killed, coordinator driver frozen, and a racing
// reconfiguration winning the cutover CAS. Every failure must either
// complete the migration or roll it back cleanly: write admission restored,
// routing flag cleared, the old placement intact, and no decided update
// lost. Plus the torture-harness integration (migrate mode) and unit tests
// for the packed epoch-routing partition map and the rebalance planner.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/chk/torture.h"
#include "src/cluster/membership.h"
#include "src/cluster/partition_map.h"
#include "src/rep/migration.h"
#include "src/rep/primary_backup.h"
#include "src/rep/recovery.h"
#include "src/store/record.h"
#include "src/txn/transaction.h"
#include "src/txn/txn_engine.h"

namespace drtmr::rep {
namespace {

using store::RecordLayout;

struct Cell {
  int64_t value;
  uint64_t pad[6];
};

constexpr uint32_t kTableId = 1;
constexpr int64_t kInitialBalance = 1000;

uint64_t KeyOf(uint32_t part, uint64_t i) {
  return (static_cast<uint64_t>(part) << 16) | (i + 1);
}

uint32_t PartitionOf(uint64_t key) { return static_cast<uint32_t>(key >> 16); }

class MigrationTest : public ::testing::Test {
 protected:
  void Build(uint32_t nodes, uint64_t keys_per_node) {
    nodes_ = nodes;
    keys_per_node_ = keys_per_node;
    cfg_.num_nodes = nodes;
    cfg_.workers_per_node = 2;
    cfg_.memory_bytes = 16 << 20;
    cfg_.log_bytes = 4 << 20;
    cluster_ = std::make_unique<cluster::Cluster>(cfg_);
    catalog_ = std::make_unique<store::Catalog>(cluster_.get());
    store::TableOptions topt;
    topt.value_size = sizeof(Cell);
    topt.hash_buckets = 256;
    table_ = catalog_->CreateTable(kTableId, topt);
    coordinator_ = std::make_unique<cluster::Coordinator>();
    for (uint32_t i = 0; i < nodes; ++i) {
      coordinator_->Join(i, 0, /*lease_ns=*/~0ull >> 2);
    }
    rep::RepConfig rcfg;
    rcfg.replicas = 3;
    replicator_ = std::make_unique<PrimaryBackupReplicator>(cluster_.get(), rcfg);
    txn::TxnConfig tcfg;
    tcfg.replication = true;
    engine_ = std::make_unique<txn::TxnEngine>(cluster_.get(), catalog_.get(), tcfg,
                                               coordinator_.get(), replicator_.get());
    engine_->StartServices();
    pmap_ = std::make_unique<cluster::PartitionMap>(nodes);
    for (uint32_t n = 0; n < nodes; ++n) {
      for (uint64_t i = 0; i < keys_per_node; ++i) {
        Cell c{kInitialBalance, {}};
        ASSERT_EQ(
            table_->hash(n)->Insert(cluster_->node(n)->context(0), KeyOf(n, i), &c, nullptr),
            Status::kOk);
        const uint64_t off = table_->hash(n)->Lookup(nullptr, KeyOf(n, i));
        std::vector<std::byte> img(table_->record_bytes());
        cluster_->node(n)->bus()->Read(nullptr, off, img.data(), img.size());
        for (uint32_t r = 1; r < rcfg.replicas; ++r) {
          replicator_->SeedBackup(cluster_->BackupOf(n, r), kTableId, n, KeyOf(n, i),
                                  img.data(), img.size());
        }
      }
    }
    recovery_ = std::make_unique<RecoveryManager>(engine_.get(), replicator_.get(),
                                                  coordinator_.get());
    cluster::MembershipConfig mcfg;
    mcfg.lease_ns = 1'000'000'000;  // commit admission never lease-bounces
    membership_ = std::make_unique<cluster::MembershipService>(cluster_.get(),
                                                               coordinator_.get(), pmap_.get(),
                                                               mcfg);
    membership_->set_recovery_fn([this](uint32_t dead, uint32_t host) {
      recovery_->RecoverAfterFailure(cluster_->node(host)->tool_context(), dead, host,
                                     /*pmap=*/nullptr);
    });
    engine_->set_membership(membership_.get());
    // Armed, never started: epoch fencing is live but no driver thread runs —
    // exactly the "frozen coordinator driver" regime. The migration manager
    // must make progress on its own (it stamps epochs itself).
    membership_->Arm();

    MigrationSpec spec;
    spec.tables = {table_};
    spec.partition_of = PartitionOf;
    spec.seed = 7;
    migrator_ = std::make_unique<MigrationManager>(engine_.get(), replicator_.get(),
                                                   coordinator_.get(), pmap_.get(), spec);
  }

  ~MigrationTest() override {
    if (membership_ != nullptr) {
      membership_->Stop();
    }
    if (engine_ != nullptr) {
      engine_->StopServices();
    }
  }

  // Direct (non-transactional) read of `part`/`i` from node `home`'s store.
  // Returns false if the home holds no copy.
  bool ReadCopy(uint32_t home, uint32_t part, uint64_t i, Cell* out, uint64_t* seq) {
    const uint64_t off = table_->hash(home)->Lookup(nullptr, KeyOf(part, i));
    if (off == store::HashStore::kNoRecord) {
      return false;
    }
    std::vector<std::byte> rec(table_->record_bytes());
    cluster_->node(home)->bus()->Read(nullptr, off, rec.data(), rec.size());
    RecordLayout::GatherValue(rec.data(), out, sizeof(*out));
    *seq = store::SeqWord::Value(RecordLayout::GetSeq(rec.data()));
    return true;
  }

  int64_t ReadValue(uint32_t part, uint64_t i) {
    Cell c{};
    uint64_t seq = 0;
    EXPECT_TRUE(ReadCopy(pmap_->node_of(part), part, i, &c, &seq));
    return c.value;
  }

  // One deposit attempt routed through the partition map; returns the first
  // failing step's status or the Commit status.
  Status TryDeposit(sim::ThreadContext* ctx, uint32_t part, uint64_t i, int64_t delta) {
    txn::Transaction txn(engine_.get(), ctx);
    txn.Begin();
    uint32_t home = 0;
    if (Status s = pmap_->Route(part, txn.begin_epoch(), /*for_write=*/true, &home);
        s != Status::kOk) {
      txn.UserAbort();
      return s;
    }
    Cell v{};
    if (Status s = txn.Read(table_, home, KeyOf(part, i), &v); s != Status::kOk) {
      txn.UserAbort();
      return s;
    }
    v.value += delta;
    if (Status s = txn.Write(table_, home, KeyOf(part, i), &v); s != Status::kOk) {
      txn.UserAbort();
      return s;
    }
    return txn.Commit();
  }

  // Deposit with retry-until-commit; returns the number of committed deposits
  // (0 or 1). Used by the load threads, which must survive kMigrating and
  // kStaleEpoch aborts across the cutover.
  uint64_t DepositRetry(sim::ThreadContext* ctx, uint32_t part, uint64_t i, int64_t delta,
                        uint32_t max_attempts = 400) {
    for (uint32_t a = 0; a < max_attempts; ++a) {
      const Status s = TryDeposit(ctx, part, i, delta);
      if (s == Status::kOk) {
        return 1;
      }
      ctx->Charge(200 + 100 * a);
    }
    return 0;
  }

  uint32_t nodes_ = 0;
  uint64_t keys_per_node_ = 0;
  cluster::ClusterConfig cfg_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<store::Catalog> catalog_;
  store::Table* table_ = nullptr;
  std::unique_ptr<cluster::Coordinator> coordinator_;
  std::unique_ptr<PrimaryBackupReplicator> replicator_;
  std::unique_ptr<txn::TxnEngine> engine_;
  std::unique_ptr<cluster::PartitionMap> pmap_;
  std::unique_ptr<RecoveryManager> recovery_;
  std::unique_ptr<cluster::MembershipService> membership_;
  std::unique_ptr<MigrationManager> migrator_;
};

// The packed (epoch, migrating, owner) word and its routing contract
// (satellite of DESIGN.md §14): stale routers bounce, writers bounce off a
// draining partition, and the cutover CAS is monotone in the epoch.
TEST(PartitionMapRoutingTest, EpochRoutingAndMonotoneRehost) {
  cluster::PartitionMap pmap(4);
  uint32_t owner = ~0u;
  EXPECT_EQ(pmap.Route(1, /*begin_epoch=*/0, /*for_write=*/true, &owner), Status::kOk);
  EXPECT_EQ(owner, 1u);

  // Flip partition 1 to node 3 under epoch 5: routers that began before the
  // flip are stale (reads and writes both — their placement snapshot is gone).
  EXPECT_TRUE(pmap.Rehost(1, 3, 5));
  EXPECT_EQ(pmap.node_of(1), 3u);
  EXPECT_EQ(pmap.entry_epoch(1), 5u);
  EXPECT_EQ(pmap.Route(1, 0, true, &owner), Status::kStaleEpoch);
  EXPECT_EQ(pmap.Route(1, 0, false, &owner), Status::kStaleEpoch);
  EXPECT_EQ(pmap.Route(1, 5, true, &owner), Status::kOk);
  EXPECT_EQ(owner, 3u);
  // Legacy non-fenced callers accept any entry.
  EXPECT_EQ(pmap.Route(1, ~0ull, true, &owner), Status::kOk);

  // A draining partition refuses writers but keeps serving readers.
  pmap.SetMigrating(1, true);
  EXPECT_TRUE(pmap.migrating(1));
  EXPECT_EQ(pmap.Route(1, 5, true, &owner), Status::kMigrating);
  EXPECT_EQ(pmap.Route(1, 5, false, &owner), Status::kOk);

  // The cutover CAS is monotone: an older epoch loses and changes nothing; a
  // newer epoch wins and clears the migrating flag with the same CAS.
  EXPECT_FALSE(pmap.Rehost(1, 0, 4));
  EXPECT_EQ(pmap.node_of(1), 3u);
  EXPECT_TRUE(pmap.migrating(1));
  EXPECT_TRUE(pmap.Rehost(1, 0, 6));
  EXPECT_EQ(pmap.node_of(1), 0u);
  EXPECT_FALSE(pmap.migrating(1));
}

TEST(PartitionMapRoutingTest, PlanRebalanceRoundRobin) {
  cluster::PartitionMap pmap(6);
  // Scale-in placement: all six partitions packed onto nodes 0-2.
  for (uint32_t p = 3; p < 6; ++p) {
    ASSERT_TRUE(pmap.Rehost(p, p % 3, 1));
  }
  EXPECT_TRUE(MigrationManager::PlanRebalance(pmap, 3).empty());
  const auto out = MigrationManager::PlanRebalance(pmap, 6);
  ASSERT_EQ(out.size(), 3u);
  for (const auto& [part, dst] : out) {
    EXPECT_GE(part, 3u);
    EXPECT_EQ(dst, part);
  }
}

// Full pump under live write load: two deposit threads keep committing into
// the moving partition (and a control partition) while it migrates. The
// cutover must commit, route writes to the new home, and lose none of the
// decided deposits.
TEST_F(MigrationTest, LiveMigrationUnderLoadLosesNothing) {
  Build(/*nodes=*/3, /*keys_per_node=*/8);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> committed[2] = {{0}, {0}};
  std::vector<std::thread> load;
  for (uint32_t t = 0; t < 2; ++t) {
    load.emplace_back([&, t] {
      sim::ThreadContext* ctx = cluster_->node(t)->context(0);
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Alternate between the moving partition (1) and a control (0).
        const uint32_t part = (i & 1) != 0 ? 1u : 0u;
        committed[t] += DepositRetry(ctx, part, (i / 2) % keys_per_node_, 1);
        ++i;
      }
    });
  }

  const MigrationReport r = migrator_->MigratePartition(1, 2);
  stop.store(true);
  for (auto& th : load) {
    th.join();
  }

  EXPECT_EQ(r.status, Status::kOk) << StatusString(r.status);
  EXPECT_FALSE(r.rolled_back);
  EXPECT_EQ(r.source, 1u);
  EXPECT_EQ(r.destination, 2u);
  EXPECT_GE(r.records_copied, keys_per_node_);
  EXPECT_EQ(r.backups_seeded, keys_per_node_ * 2);  // replicas=3 → 2 ring copies
  EXPECT_EQ(pmap_->node_of(1), 2u);
  EXPECT_FALSE(pmap_->migrating(1));
  EXPECT_GT(pmap_->entry_epoch(1), 0u);
  EXPECT_FALSE(migrator_->block()->active());

  // Post-cutover writes land on the new home and commit.
  EXPECT_EQ(TryDeposit(cluster_->node(0)->context(1), 1, 0, 5), Status::kOk);

  // No decided deposit lost: the primaries' totals account for every commit
  // the load threads (and the probe) got an OK for.
  int64_t total = 0;
  for (uint32_t p = 0; p < nodes_; ++p) {
    for (uint64_t i = 0; i < keys_per_node_; ++i) {
      total += ReadValue(p, i);
    }
  }
  const int64_t expected = static_cast<int64_t>(nodes_ * keys_per_node_) * kInitialBalance +
                           static_cast<int64_t>(committed[0] + committed[1]) + 5;
  EXPECT_EQ(total, expected);
}

// The dual-home property (seeded): inside the window — final copy done,
// cutover not yet published — a read from either home returns the newest
// committed version of every record: identical seq, identical value.
TEST_F(MigrationTest, DualHomeWindowServesNewestFromEitherHome) {
  Build(/*nodes=*/3, /*keys_per_node=*/8);
  // Commit a few deposits first so the copied images carry post-load seqs.
  for (uint64_t i = 0; i < keys_per_node_; ++i) {
    ASSERT_EQ(DepositRetry(cluster_->node(0)->context(0), 1, i, 3), 1u);
  }

  bool hook_ran = false;
  MigrationHooks hooks;
  hooks.on_dual_home = [&] {
    hook_ran = true;
    for (uint64_t i = 0; i < keys_per_node_; ++i) {
      Cell src_c{}, dst_c{};
      uint64_t src_seq = 0, dst_seq = 0;
      ASSERT_TRUE(ReadCopy(1, 1, i, &src_c, &src_seq)) << "source copy of key " << i;
      ASSERT_TRUE(ReadCopy(2, 1, i, &dst_c, &dst_seq)) << "destination copy of key " << i;
      EXPECT_EQ(src_seq, dst_seq) << "key " << i;
      EXPECT_EQ(src_c.value, dst_c.value) << "key " << i;
      EXPECT_EQ(src_c.value, kInitialBalance + 3) << "key " << i;
    }
    // Writers are drained (read-only degradation on the moving shard)…
    EXPECT_EQ(TryDeposit(cluster_->node(0)->context(1), 1, 0, 1), Status::kMigrating);
    // …but reads keep committing through the transaction layer.
    txn::Transaction ro(engine_.get(), cluster_->node(0)->context(1));
    ro.Begin(/*read_only=*/true);
    Cell v{};
    ASSERT_EQ(ro.Read(table_, pmap_->node_of(1), KeyOf(1, 0), &v), Status::kOk);
    EXPECT_EQ(ro.Commit(), Status::kOk);
    EXPECT_EQ(v.value, kInitialBalance + 3);
  };
  migrator_->set_hooks(hooks);

  const MigrationReport r = migrator_->MigratePartition(1, 2);
  EXPECT_TRUE(hook_ran);
  EXPECT_EQ(r.status, Status::kOk) << StatusString(r.status);
  EXPECT_EQ(pmap_->node_of(1), 2u);
}

// Source dies inside the dual-home window: the migration must roll back
// cleanly — write admission restored, routing flag cleared, old placement
// standing — and the survivors' partitions keep serving.
TEST_F(MigrationTest, SourceKilledMidFlightRollsBack) {
  Build(/*nodes=*/3, /*keys_per_node=*/6);
  MigrationHooks hooks;
  hooks.on_dual_home = [&] { cluster_->Kill(1); };
  migrator_->set_hooks(hooks);

  const MigrationReport r = migrator_->MigratePartition(1, 2);
  EXPECT_EQ(r.status, Status::kUnavailable);
  EXPECT_TRUE(r.rolled_back);
  EXPECT_EQ(pmap_->node_of(1), 1u);  // old placement stands
  EXPECT_FALSE(pmap_->migrating(1));
  EXPECT_FALSE(migrator_->block()->active());
  EXPECT_EQ(migrator_->migrations_rolled_back(), 1u);

  // Formalize the failure the way the membership layer would, then prove no
  // decided update was lost: recovery re-hosts the dead source's partition
  // from its backups and the survivors commit against it.
  coordinator_->Remove(1);
  membership_->TickDriver();
  EXPECT_NE(pmap_->node_of(1), 1u);
  EXPECT_EQ(TryDeposit(cluster_->node(0)->context(0), 1, 0, 7), Status::kOk);
  EXPECT_EQ(ReadValue(1, 0), kInitialBalance + 7);
  EXPECT_EQ(TryDeposit(cluster_->node(0)->context(0), 0, 0, 7), Status::kOk);
}

// Destination dies inside the dual-home window: same clean rollback, and the
// SOURCE keeps full read-write service — the moving shard was only ever
// write-drained, never lost.
TEST_F(MigrationTest, DestinationKilledMidFlightRollsBack) {
  Build(/*nodes=*/3, /*keys_per_node=*/6);
  MigrationHooks hooks;
  hooks.on_dual_home = [&] { cluster_->Kill(2); };
  migrator_->set_hooks(hooks);

  const MigrationReport r = migrator_->MigratePartition(1, 2);
  EXPECT_EQ(r.status, Status::kUnavailable);
  EXPECT_TRUE(r.rolled_back);
  EXPECT_EQ(pmap_->node_of(1), 1u);
  EXPECT_FALSE(pmap_->migrating(1));
  EXPECT_FALSE(migrator_->block()->active());

  coordinator_->Remove(2);
  membership_->TickDriver();
  EXPECT_EQ(pmap_->node_of(1), 1u);  // untouched by the dead destination
  EXPECT_EQ(TryDeposit(cluster_->node(0)->context(0), 1, 0, 9), Status::kOk);
  EXPECT_EQ(ReadValue(1, 0), kInitialBalance + 9);
}

// A concurrent reconfiguration (e.g. failure recovery) winning the cutover
// CAS with a newer epoch supersedes the migration: it must notice the lost
// flip and roll back rather than publish a stale placement.
TEST_F(MigrationTest, LostCutoverRaceRollsBack) {
  Build(/*nodes=*/3, /*keys_per_node=*/4);
  MigrationHooks hooks;
  hooks.on_dual_home = [&] {
    // Simulate a racing view change that re-hosted the partition under a
    // far-newer epoch before our flip.
    ASSERT_TRUE(pmap_->Rehost(1, 0, coordinator_->epoch() + 100));
  };
  migrator_->set_hooks(hooks);

  const MigrationReport r = migrator_->MigratePartition(1, 2);
  EXPECT_EQ(r.status, Status::kConflict);
  EXPECT_TRUE(r.rolled_back);
  EXPECT_EQ(pmap_->node_of(1), 0u);  // the racing winner's placement stands
  EXPECT_FALSE(migrator_->block()->active());
}

// Refusal guards: no epoch fencing, self-moves, already-migrating, and dead
// endpoints are rejected up front (kInvalid) without opening a drain window.
TEST_F(MigrationTest, RefusesUnsafeOrNonsensicalMoves) {
  Build(/*nodes=*/3, /*keys_per_node=*/2);
  EXPECT_EQ(migrator_->MigratePartition(1, 1).status, Status::kInvalid);  // self-move
  pmap_->SetMigrating(2, true);
  EXPECT_EQ(migrator_->MigratePartition(2, 0).status, Status::kInvalid);  // already moving
  pmap_->SetMigrating(2, false);
  cluster_->Kill(0);
  EXPECT_EQ(migrator_->MigratePartition(2, 0).status, Status::kInvalid);  // dead destination
  EXPECT_EQ(migrator_->MigratePartition(0, 2).status, Status::kInvalid);  // dead source
  EXPECT_EQ(migrator_->migrations_started(), 0u);
  EXPECT_FALSE(migrator_->block()->active());
}

// Torture-harness integration: migrate mode drives at least one live
// migration per seed under the full no-oracle substrate, and the run still
// passes the serializability checker and every quiescence oracle. Odd seeds
// migrate the partition back, so both directions get coverage.
TEST(MigrationTortureTest, MigrateModeSeedsCommitAndStayClean) {
  for (const uint64_t seed : {2ull, 3ull}) {
    chk::TortureOptions opt;
    opt.shape.nodes = 3;
    opt.shape.workers = 2;
    opt.shape.replicas = 3;
    opt.shape.keys_per_node = 8;
    opt.shape.txns_per_worker = 80;
    opt.seed = seed;
    opt.plan_kind = chk::TorturePlanKind::kClean;
    opt.no_oracle = true;
    opt.migrate = true;
    const chk::TortureResult r = chk::RunTorture(opt);
    EXPECT_TRUE(r.ok) << "seed " << seed << "\n" << r.Summary();
    EXPECT_GE(r.migrations, 1u) << "seed " << seed;
    EXPECT_GE(r.migrations_committed, 1u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace drtmr::rep
