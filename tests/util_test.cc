#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "src/util/cacheline.h"
#include "src/util/histogram.h"
#include "src/util/rand.h"
#include "src/util/sim_clock.h"
#include "src/util/spinlock.h"

namespace drtmr {
namespace {

TEST(CacheLine, LineOfBoundaries) {
  EXPECT_EQ(LineOf(0), 0u);
  EXPECT_EQ(LineOf(63), 0u);
  EXPECT_EQ(LineOf(64), 1u);
  EXPECT_EQ(LineOf(128), 2u);
}

TEST(CacheLine, LineEndCoversRange) {
  EXPECT_EQ(LineEnd(0, 1), 1u);
  EXPECT_EQ(LineEnd(0, 64), 1u);
  EXPECT_EQ(LineEnd(0, 65), 2u);
  EXPECT_EQ(LineEnd(60, 8), 2u);  // straddles a boundary
  EXPECT_EQ(LineEnd(0, 0), 0u);   // empty range covers nothing
}

TEST(CacheLine, AlignUp) {
  EXPECT_EQ(AlignUpToLine(0), 0u);
  EXPECT_EQ(AlignUpToLine(1), 64u);
  EXPECT_EQ(AlignUpToLine(64), 64u);
  EXPECT_EQ(AlignUpToLine(65), 128u);
  EXPECT_TRUE(IsLineAligned(128));
  EXPECT_FALSE(IsLineAligned(130));
}

TEST(FastRand, UniformWithinBounds) {
  FastRand r(42);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.Uniform(17), 17u);
    const uint64_t v = r.Range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(FastRand, DeterministicPerSeed) {
  FastRand a(7);
  FastRand b(7);
  FastRand c(8);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    if (va != c.Next()) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(FastRand, NuRandStaysInRange) {
  FastRand r(1);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = r.NuRand(1023, 1, 3000);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 3000u);
  }
}

TEST(FastRand, NuRandIsSkewed) {
  // NURand(255, 0, 999) concentrates mass; verify it is visibly non-uniform.
  FastRand r(3);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) {
    counts[r.NuRand(255, 0, 999)]++;
  }
  int maxc = 0;
  for (int c : counts) {
    maxc = std::max(maxc, c);
  }
  EXPECT_GT(maxc, 200);  // uniform would give ~100 per slot
}

TEST(Histogram, PercentilesOrdered) {
  Histogram h;
  for (uint64_t i = 1; i <= 1000; ++i) {
    h.Record(i * 100);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_LE(h.Percentile(50), h.Percentile(90));
  EXPECT_LE(h.Percentile(90), h.Percentile(99));
  EXPECT_LE(h.Percentile(99), h.max());
  // The median bucket should be near 50us.
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 50000.0, 5000.0);
}

TEST(Histogram, MergeAggregates) {
  Histogram a;
  Histogram b;
  a.Record(10);
  a.Record(20);
  b.Record(30);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), 30u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_DOUBLE_EQ(a.Mean(), 20.0);
}

TEST(SimClock, AdvanceMonotonic) {
  SimClock c;
  c.Advance(100);
  EXPECT_EQ(c.now_ns(), 100u);
  c.AdvanceTo(50);  // never backwards
  EXPECT_EQ(c.now_ns(), 100u);
  c.AdvanceTo(250);
  EXPECT_EQ(c.now_ns(), 250u);
}

TEST(SimResource, SerializesOverlappingReservations) {
  SimResource r;
  const uint64_t s1 = r.Reserve(0, 100);
  const uint64_t s2 = r.Reserve(0, 100);
  const uint64_t s3 = r.Reserve(0, 100);
  EXPECT_EQ(s1, 0u);
  EXPECT_EQ(s2, 100u);
  EXPECT_EQ(s3, 200u);
  // A late caller starts at its own time if the resource is already free.
  EXPECT_EQ(r.Reserve(10000, 100), 10000u);
}

TEST(SimResource, ConcurrentReservationsNeverOverlap) {
  SimResource r;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::vector<uint64_t>> starts(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r, &starts, t] {
      for (int i = 0; i < kPerThread; ++i) {
        starts[t].push_back(r.Reserve(0, 10));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::set<uint64_t> all;
  for (const auto& v : starts) {
    for (uint64_t s : v) {
      EXPECT_TRUE(all.insert(s).second) << "duplicate slot " << s;
      EXPECT_EQ(s % 10, 0u);
    }
  }
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads * kPerThread));
}

TEST(Spinlock, MutualExclusion) {
  Spinlock mu;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        mu.lock();
        counter++;
        mu.unlock();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, 40000);
}

TEST(Spinlock, TryLock) {
  Spinlock mu;
  EXPECT_TRUE(mu.try_lock());
  EXPECT_FALSE(mu.try_lock());
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

}  // namespace
}  // namespace drtmr
