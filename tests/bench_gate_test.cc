// Teeth tests for the perf regression gate (scripts/bench_gate.py): a 6%
// throughput regression must turn the gate red, a 4% one must stay green
// (tolerance is 5%), and a red gate must name the regressed phase from the
// per-phase histograms. The gate is a python script, so these tests shell
// out to it against synthetic BENCH_*.json fixtures; they skip (not fail)
// when python3 is absent.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#ifndef DRTMR_SOURCE_DIR
#error "DRTMR_SOURCE_DIR must point at the repo root (tests/CMakeLists.txt)"
#endif

namespace drtmr {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool PythonAvailable() {
  const int rc = std::system("python3 --version >/dev/null 2>&1");
  return rc != -1 && WIFEXITED(rc) && WEXITSTATUS(rc) == 0;
}

class BenchGateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!PythonAvailable()) {
      GTEST_SKIP() << "python3 not on PATH";
    }
    base_dir_ = testing::TempDir() + "gate_base_" + testing::UnitTest::GetInstance()->current_test_info()->name();
    cur_dir_ = base_dir_ + "_cur";
    std::system(("rm -rf " + base_dir_ + " " + cur_dir_ + " && mkdir -p " + base_dir_ + " " + cur_dir_).c_str());
    out_path_ = base_dir_ + "/gate.out";
    report_path_ = base_dir_ + "/report.json";
  }

  // Minimal but schema-complete BENCH envelope: run header, gated results,
  // one phase histogram, one flight-recorder entry.
  void WriteDoc(const std::string& dir, double tps, double p99,
                double commit_phase_p99, int schema = 2,
                const std::string& tolerances = "") {
    std::ofstream f(dir + "/BENCH_fake.smoke.json");
    f << "{\n\"schema_version\": " << schema << ",\n"
      << "\"run\": {\"bench\": \"fake\", \"profile\": \"smoke\"},\n"
      << "\"results\": {\"total_tps\": " << tps << ", \"p99_ns\": " << p99
      << ", \"torture_ok\": 1},\n";
    if (!tolerances.empty()) {
      f << "\"tolerances\": {" << tolerances << "},\n";
    }
    f << "\"metrics\": {\"phases\": {"
      << "\"commit\": {\"count\": 100, \"sum_ns\": " << 100 * commit_phase_p99
      << ", \"p99_ns\": " << commit_phase_p99 << "},"
      << "\"execute\": {\"count\": 100, \"sum_ns\": 50000, \"p99_ns\": 700}"
      << "}},\n"
      << "\"flight_recorder\": [{\"rank\": 0, \"total_ns\": 9000, "
      << "\"dominant_phase\": \"commit\", \"attempts\": 3, \"aborts\": 2}]\n}\n";
  }

  int RunGate() {
    const std::string cmd = std::string("python3 ") + DRTMR_SOURCE_DIR +
                            "/scripts/bench_gate.py --baseline-dir=" + base_dir_ +
                            " --current-dir=" + cur_dir_ +
                            " --profile=smoke --report=" + report_path_ + " > " +
                            out_path_ + " 2>&1";
    const int rc = std::system(cmd.c_str());
    EXPECT_NE(rc, -1);
    EXPECT_TRUE(WIFEXITED(rc)) << Slurp(out_path_);
    return WEXITSTATUS(rc);
  }

  std::string base_dir_, cur_dir_, out_path_, report_path_;
};

TEST_F(BenchGateTest, SixPercentThroughputRegressionFails) {
  WriteDoc(base_dir_, 1000.0, 500.0, 800.0);
  WriteDoc(cur_dir_, 940.0, 500.0, 800.0);  // -6% tps
  EXPECT_EQ(RunGate(), 1) << Slurp(out_path_);
  EXPECT_NE(Slurp(out_path_).find("total_tps fell 6.0%"), std::string::npos)
      << Slurp(out_path_);
}

TEST_F(BenchGateTest, FourPercentThroughputDipPasses) {
  WriteDoc(base_dir_, 1000.0, 500.0, 800.0);
  WriteDoc(cur_dir_, 960.0, 500.0, 800.0);  // -4% tps: inside tolerance
  EXPECT_EQ(RunGate(), 0) << Slurp(out_path_);
}

TEST_F(BenchGateTest, SixPercentP99RiseFailsFourPasses) {
  WriteDoc(base_dir_, 1000.0, 1000.0, 800.0);
  WriteDoc(cur_dir_, 1000.0, 1060.0, 800.0);  // +6% p99
  EXPECT_EQ(RunGate(), 1) << Slurp(out_path_);
  WriteDoc(cur_dir_, 1000.0, 1040.0, 800.0);  // +4% p99
  EXPECT_EQ(RunGate(), 0) << Slurp(out_path_);
}

TEST_F(BenchGateTest, BaselineToleranceOverrideWidensOneKeyOnly) {
  // The baseline declares a 40% per-key tolerance for its bimodal p99; a 30%
  // p99 rise must pass, but the override must not loosen the other keys —
  // the same run with a 6% tps dip must still fail.
  WriteDoc(base_dir_, 1000.0, 1000.0, 800.0, 2, "\"p99_ns\": 0.40");
  WriteDoc(cur_dir_, 1000.0, 1300.0, 800.0);  // +30% p99: inside the override
  EXPECT_EQ(RunGate(), 0) << Slurp(out_path_);
  WriteDoc(cur_dir_, 940.0, 1300.0, 800.0);  // -6% tps still gates at 5%
  EXPECT_EQ(RunGate(), 1) << Slurp(out_path_);
  EXPECT_NE(Slurp(out_path_).find("total_tps fell 6.0%"), std::string::npos)
      << Slurp(out_path_);
  // An override in the *current* file must not weaken the gate.
  WriteDoc(base_dir_, 1000.0, 1000.0, 800.0);
  WriteDoc(cur_dir_, 1000.0, 1300.0, 800.0, 2, "\"p99_ns\": 0.40");
  EXPECT_EQ(RunGate(), 1) << Slurp(out_path_);
}

TEST_F(BenchGateTest, RedGateNamesTheRegressedPhase) {
  WriteDoc(base_dir_, 1000.0, 1000.0, /*commit p99=*/800.0);
  // Throughput regresses and the commit phase's histogram blew up while
  // execute stayed flat — the gate must finger commit, with the slow-txn
  // flight data alongside.
  WriteDoc(cur_dir_, 900.0, 1000.0, /*commit p99=*/2400.0);
  EXPECT_EQ(RunGate(), 1);
  const std::string out = Slurp(out_path_);
  EXPECT_NE(out.find("regressed phase: commit"), std::string::npos) << out;
  EXPECT_NE(out.find("dominant phase commit"), std::string::npos) << out;
  const std::string report = Slurp(report_path_);
  EXPECT_NE(report.find("\"regressed_phases\""), std::string::npos);
  EXPECT_NE(report.find("\"slowest_txns\""), std::string::npos);
}

TEST_F(BenchGateTest, TortureOkDropFails) {
  WriteDoc(base_dir_, 1000.0, 500.0, 800.0);
  {
    std::ofstream f(cur_dir_ + "/BENCH_fake.smoke.json");
    f << "{\"schema_version\": 2, \"run\": {\"bench\": \"fake\"},"
      << "\"results\": {\"total_tps\": 1000, \"p99_ns\": 500, \"torture_ok\": 0},"
      << "\"metrics\": {\"phases\": {}}, \"flight_recorder\": []}\n";
  }
  EXPECT_EQ(RunGate(), 1) << Slurp(out_path_);
}

TEST_F(BenchGateTest, MissingCurrentFileFails) {
  WriteDoc(base_dir_, 1000.0, 500.0, 800.0);
  EXPECT_EQ(RunGate(), 1);
  EXPECT_NE(Slurp(out_path_).find("not produced"), std::string::npos);
}

TEST_F(BenchGateTest, MissingGatedKeyFails) {
  WriteDoc(base_dir_, 1000.0, 500.0, 800.0);
  {
    std::ofstream f(cur_dir_ + "/BENCH_fake.smoke.json");
    f << "{\"schema_version\": 2, \"run\": {\"bench\": \"fake\"},"
      << "\"results\": {\"total_tps\": 1000},"  // p99_ns vanished
      << "\"metrics\": {\"phases\": {}}, \"flight_recorder\": []}\n";
  }
  EXPECT_EQ(RunGate(), 1);
  EXPECT_NE(Slurp(out_path_).find("missing from current run"), std::string::npos);
}

TEST_F(BenchGateTest, SchemaVersionMismatchFails) {
  WriteDoc(base_dir_, 1000.0, 500.0, 800.0, /*schema=*/2);
  WriteDoc(cur_dir_, 1000.0, 500.0, 800.0, /*schema=*/3);
  EXPECT_EQ(RunGate(), 1);
  EXPECT_NE(Slurp(out_path_).find("schema_version"), std::string::npos);
}

TEST_F(BenchGateTest, CorruptCurrentFileFails) {
  WriteDoc(base_dir_, 1000.0, 500.0, 800.0);
  {
    std::ofstream f(cur_dir_ + "/BENCH_fake.smoke.json");
    f << "{\"schema_version\": 2, truncated";
  }
  EXPECT_EQ(RunGate(), 1);
}

TEST_F(BenchGateTest, IdenticalRunPassesAndWritesReport) {
  WriteDoc(base_dir_, 1000.0, 500.0, 800.0);
  WriteDoc(cur_dir_, 1000.0, 500.0, 800.0);
  EXPECT_EQ(RunGate(), 0) << Slurp(out_path_);
  const std::string report = Slurp(report_path_);
  EXPECT_NE(report.find("\"ok\": true"), std::string::npos) << report;
  EXPECT_NE(report.find("\"tolerance\": 0.05"), std::string::npos) << report;
}

}  // namespace
}  // namespace drtmr
