// Tests of the fallback handler (§6.1-6.2): with the HTM retry threshold
// forced to zero, every read-write commit takes the fallback path — lock all
// records (local ones via loopback RDMA CAS), validate, apply without HTM,
// unlock. The entire protocol must still be serializable.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "src/rep/primary_backup.h"
#include "src/sim/fault.h"
#include "src/store/record.h"
#include "src/txn/transaction.h"
#include "src/txn/txn_engine.h"
#include "src/util/test_seed.h"

namespace drtmr::txn {
namespace {

struct Cell {
  int64_t value;
  uint64_t pad[6];
};

class FallbackTest : public ::testing::TestWithParam<bool> {
 protected:
  FallbackTest() {
    cfg_.num_nodes = 3;
    cfg_.workers_per_node = 4;
    cfg_.memory_bytes = 16 << 20;
    cfg_.log_bytes = 2 << 20;
    cluster_ = std::make_unique<cluster::Cluster>(cfg_);
    catalog_ = std::make_unique<store::Catalog>(cluster_.get());
    store::TableOptions opt;
    opt.value_size = sizeof(Cell);
    opt.hash_buckets = 256;
    table_ = catalog_->CreateTable(1, opt);
    coordinator_ = std::make_unique<cluster::Coordinator>();
    for (uint32_t i = 0; i < 3; ++i) {
      coordinator_->Join(i, 0, ~0ull >> 2);
    }
    const bool replication = GetParam();
    if (replication) {
      rep::RepConfig rcfg;
      rcfg.replicas = 3;
      replicator_ = std::make_unique<rep::PrimaryBackupReplicator>(cluster_.get(), rcfg);
    }
    TxnConfig tcfg;
    tcfg.htm_retry_threshold = 0;  // force the fallback handler on every commit
    tcfg.replication = replication;
    engine_ = std::make_unique<TxnEngine>(cluster_.get(), catalog_.get(), tcfg,
                                          coordinator_.get(), replicator_.get());
    engine_->StartServices();
    for (uint64_t k = 1; k <= 24; ++k) {
      Cell c{100, {}};
      const uint32_t node = HomeOf(k);
      EXPECT_EQ(table_->hash(node)->Insert(cluster_->node(node)->context(0), k, &c, nullptr),
                Status::kOk);
      if (replicator_ != nullptr) {
        const uint64_t off = table_->hash(node)->Lookup(nullptr, k);
        std::vector<std::byte> img(table_->record_bytes());
        cluster_->node(node)->bus()->Read(nullptr, off, img.data(), img.size());
        for (uint32_t r = 1; r < 3; ++r) {
          replicator_->SeedBackup(cluster_->BackupOf(node, r), 1, node, k, img.data(),
                                  img.size());
        }
      }
    }
  }

  ~FallbackTest() override { engine_->StopServices(); }

  uint32_t HomeOf(uint64_t k) const { return static_cast<uint32_t>(k % 3); }

  cluster::ClusterConfig cfg_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<store::Catalog> catalog_;
  store::Table* table_ = nullptr;
  std::unique_ptr<cluster::Coordinator> coordinator_;
  std::unique_ptr<rep::PrimaryBackupReplicator> replicator_;
  std::unique_ptr<TxnEngine> engine_;
};

TEST_P(FallbackTest, SingleCommitTakesFallbackAndApplies) {
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  Transaction txn(engine_.get(), ctx);
  while (true) {
    txn.Begin();
    Cell a{};
    ASSERT_EQ(txn.Read(table_, 0, 3, &a), Status::kOk);
    a.value = 777;
    ASSERT_EQ(txn.Write(table_, 0, 3, &a), Status::kOk);
    if (txn.Commit() == Status::kOk) {
      break;
    }
  }
  EXPECT_GE(engine_->stats().fallbacks.load(), 1u);

  // The record is unlocked and committable afterwards.
  const uint64_t off = table_->hash(0)->Lookup(nullptr, 3);
  EXPECT_EQ(cluster_->node(0)->bus()->ReadU64(nullptr, off + store::RecordLayout::kLockOff), 0u);
  if (GetParam()) {
    // Seq parity (even = committable) only exists under optimistic replication.
    EXPECT_EQ(cluster_->node(0)->bus()->ReadU64(nullptr, off + store::RecordLayout::kSeqOff) % 2,
              0u);
  }
  Cell out{};
  std::vector<std::byte> rec(table_->record_bytes());
  cluster_->node(0)->bus()->Read(nullptr, off, rec.data(), rec.size());
  store::RecordLayout::GatherValue(rec.data(), &out, sizeof(out));
  EXPECT_EQ(out.value, 777);
}

TEST_P(FallbackTest, ConcurrentFallbackTransfersConserveMoney) {
  SCOPED_TRACE(::testing::Message() << "DRTMR_TEST_SEED=" << util::TestSeed());
  std::vector<std::thread> threads;
  for (uint32_t n = 0; n < 3; ++n) {
    for (uint32_t w = 0; w < 2; ++w) {
      threads.emplace_back([&, n, w] {
        sim::ThreadContext* ctx = cluster_->node(n)->context(w);
        Transaction txn(engine_.get(), ctx);
        FastRand rng(util::DeriveSeed(n * 7 + w + 1));
        for (int i = 0; i < 100; ++i) {
          const uint64_t from = rng.Range(1, 24);
          uint64_t to = rng.Range(1, 24);
          if (to == from) {
            to = from % 24 + 1;
          }
          while (true) {
            txn.Begin();
            Cell a{}, b{};
            if (txn.Read(table_, HomeOf(from), from, &a) != Status::kOk ||
                txn.Read(table_, HomeOf(to), to, &b) != Status::kOk) {
              txn.UserAbort();
              continue;
            }
            a.value -= 1;
            b.value += 1;
            if (txn.Write(table_, HomeOf(from), from, &a) != Status::kOk ||
                txn.Write(table_, HomeOf(to), to, &b) != Status::kOk) {
              txn.UserAbort();
              continue;
            }
            if (txn.Commit() == Status::kOk) {
              break;
            }
          }
        }
      });
    }
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_GT(engine_->stats().fallbacks.load(), 0u);

  int64_t total = 0;
  for (uint64_t k = 1; k <= 24; ++k) {
    const uint32_t node = HomeOf(k);
    const uint64_t off = table_->hash(node)->Lookup(nullptr, k);
    std::vector<std::byte> rec(table_->record_bytes());
    cluster_->node(node)->bus()->Read(nullptr, off, rec.data(), rec.size());
    Cell c{};
    store::RecordLayout::GatherValue(rec.data(), &c, sizeof(c));
    total += c.value;
    EXPECT_EQ(store::RecordLayout::GetLock(rec.data()), 0u) << "leaked lock on key " << k;
    if (GetParam()) {
      EXPECT_EQ(store::RecordLayout::GetSeq(rec.data()) % 2, 0u) << "uncommittable key " << k;
    }
  }
  EXPECT_EQ(total, 24 * 100);
}

TEST_P(FallbackTest, FallbackAndFastPathInterleave) {
  SCOPED_TRACE(::testing::Message() << "DRTMR_TEST_SEED=" << util::TestSeed());
  // A second engine over the same tables uses the normal threshold: fallback
  // committers (locking) and HTM committers must cooperate via the Fig. 5
  // lock check.
  TxnConfig fast_cfg;
  fast_cfg.replication = GetParam();
  TxnEngine fast_engine(cluster_.get(), catalog_.get(), fast_cfg, coordinator_.get(),
                        replicator_.get());
  std::atomic<bool> stop{false};
  std::thread fallback_thread([&] {
    sim::ThreadContext* ctx = cluster_->node(0)->context(0);
    Transaction txn(engine_.get(), ctx);
    FastRand rng(util::DeriveSeed(3));
    while (!stop.load()) {
      const uint64_t k = rng.Range(1, 24);
      txn.Begin();
      Cell c{};
      if (txn.Read(table_, HomeOf(k), k, &c) != Status::kOk) {
        txn.UserAbort();
        continue;
      }
      (void)txn.Write(table_, HomeOf(k), k, &c);
      (void)txn.Commit();  // contended mix: aborts are expected
    }
  });
  sim::ThreadContext* ctx = cluster_->node(0)->context(1);
  Transaction txn(&fast_engine, ctx);
  FastRand rng(util::DeriveSeed(4));
  for (int i = 0; i < 200; ++i) {
    const uint64_t k = rng.Range(1, 24);
    txn.Begin();
    Cell c{};
    if (txn.Read(table_, HomeOf(k), k, &c) != Status::kOk) {
      txn.UserAbort();
      continue;
    }
    (void)txn.Write(table_, HomeOf(k), k, &c);
    (void)txn.Commit();  // contended mix: aborts are expected
  }
  stop.store(true);
  fallback_thread.join();
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(WithAndWithoutReplication, FallbackTest, ::testing::Bool());

// Fused-lock transactions conflicting with HTM transactions on the same cache
// line (§4.4 meets §6.1): under fused seq locking the fallback committer's
// lock IS the seq word's top bit, i.e. it lives on the very line the HTM fast
// path reads for validation and writes for the seq bump. A FaultPlan forces
// every HTM commit inside a virtual-time window to abort, so early commits
// take the fused fallback while workers whose clocks have left the window
// commit via HTM — and because virtual clocks are per-thread, both kinds run
// against the same records at the same real time.
class FusedInterleaveTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kKeys = 8;  // high contention: every txn collides
  static constexpr int64_t kInitial = 500;

  FusedInterleaveTest() {
    cfg_.num_nodes = 3;
    cfg_.workers_per_node = 4;
    cfg_.memory_bytes = 16 << 20;
    cfg_.log_bytes = 2 << 20;
    cfg_.atomicity = sim::AtomicityLevel::kGlob;  // required for fusing
    cluster_ = std::make_unique<cluster::Cluster>(cfg_);
    catalog_ = std::make_unique<store::Catalog>(cluster_.get());
    store::TableOptions opt;
    opt.value_size = sizeof(Cell);
    opt.hash_buckets = 256;
    table_ = catalog_->CreateTable(1, opt);
    coordinator_ = std::make_unique<cluster::Coordinator>();
    for (uint32_t i = 0; i < 3; ++i) {
      coordinator_->Join(i, 0, ~0ull >> 2);
    }
    TxnConfig tcfg;
    tcfg.fused_seq_lock = true;
    engine_ = std::make_unique<TxnEngine>(cluster_.get(), catalog_.get(), tcfg,
                                          coordinator_.get(), nullptr);
    engine_->StartServices();
    for (uint64_t k = 1; k <= kKeys; ++k) {
      Cell c{kInitial, {}};
      const uint32_t node = HomeOf(k);
      EXPECT_EQ(table_->hash(node)->Insert(cluster_->node(node)->context(0), k, &c, nullptr),
                Status::kOk);
    }
  }

  ~FusedInterleaveTest() override { engine_->StopServices(); }

  uint32_t HomeOf(uint64_t k) const { return static_cast<uint32_t>(k % 3); }

  cluster::ClusterConfig cfg_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<store::Catalog> catalog_;
  store::Table* table_ = nullptr;
  std::unique_ptr<cluster::Coordinator> coordinator_;
  std::unique_ptr<TxnEngine> engine_;
};

TEST_F(FusedInterleaveTest, FusedFallbackAndHtmCommitsShareCacheLines) {
  // Every HTM commit region entered before 60us of virtual time aborts with a
  // conflict code; after that the fast path works again. Each worker crosses
  // the boundary at its own pace.
  sim::FaultPlan plan(util::DeriveSeed(9));
  plan.ForceHtmAbort(obs::HtmSite::kCommit,
                     static_cast<uint32_t>(sim::HtmTxn::AbortCode::kConflict),
                     sim::FaultPlan::kPpmAlways, {0, 60'000});
  cluster_->SetFaultPlan(&plan);

  constexpr int kTxnsPerWorker = 150;
  std::vector<std::thread> threads;
  for (uint32_t n = 0; n < 3; ++n) {
    for (uint32_t w = 0; w < 2; ++w) {
      threads.emplace_back([&, n, w] {
        sim::ThreadContext* ctx = cluster_->node(n)->context(w);
        Transaction txn(engine_.get(), ctx);
        FastRand rng(util::DeriveSeed(9 * 31 + n * 7 + w + 1));
        for (int i = 0; i < kTxnsPerWorker; ++i) {
          const uint64_t from = rng.Range(1, kKeys);
          uint64_t to = rng.Range(1, kKeys);
          if (to == from) {
            to = from % kKeys + 1;
          }
          while (true) {
            txn.Begin();
            Cell a{}, b{};
            if (txn.Read(table_, HomeOf(from), from, &a) != Status::kOk ||
                txn.Read(table_, HomeOf(to), to, &b) != Status::kOk) {
              txn.UserAbort();
              continue;
            }
            a.value -= 1;
            b.value += 1;
            if (txn.Write(table_, HomeOf(from), from, &a) != Status::kOk ||
                txn.Write(table_, HomeOf(to), to, &b) != Status::kOk) {
              txn.UserAbort();
              continue;
            }
            if (txn.Commit() == Status::kOk) {
              break;
            }
          }
        }
      });
    }
  }
  for (auto& t : threads) {
    t.join();
  }
  cluster_->SetFaultPlan(nullptr);  // plan leaves scope before the engine does

  // Both commit flavors ran: the window forces the early commits through the
  // fused fallback, and it is short enough that most commits use HTM.
  const uint64_t fallbacks = engine_->stats().fallbacks.load();
  const uint64_t commits = engine_->stats().commits.load();
  EXPECT_EQ(commits, 6u * kTxnsPerWorker);
  EXPECT_GT(fallbacks, 0u) << "the forced-abort window never drove the fused fallback";
  EXPECT_LT(fallbacks, commits) << "no commit ever took the HTM fast path";

  // Conservation plus clean lock state: no fused lock bit left set, no lock
  // word leaked, and every seq is even (committable).
  int64_t total = 0;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    const uint32_t node = HomeOf(k);
    const uint64_t off = table_->hash(node)->Lookup(nullptr, k);
    std::vector<std::byte> rec(table_->record_bytes());
    cluster_->node(node)->bus()->Read(nullptr, off, rec.data(), rec.size());
    Cell c{};
    store::RecordLayout::GatherValue(rec.data(), &c, sizeof(c));
    total += c.value;
    const uint64_t seq = store::RecordLayout::GetSeq(rec.data());
    EXPECT_FALSE(store::SeqWord::Locked(seq)) << "fused lock bit leaked on key " << k;
    EXPECT_EQ(store::RecordLayout::GetLock(rec.data()), 0u) << "leaked lock on key " << k;
    EXPECT_TRUE(store::RecordLayout::VersionsConsistent(rec.data(), sizeof(Cell)))
        << "torn record on key " << k;
  }
  EXPECT_EQ(total, static_cast<int64_t>(kKeys) * kInitial)
      << "money leaked across fused/HTM interleavings (DRTMR_TEST_SEED=" << util::TestSeed()
      << ")";
}

}  // namespace
}  // namespace drtmr::txn
