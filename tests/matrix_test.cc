// Explicit verification of the paper's mechanism matrices:
//
// Table 2 (consistency of reads): a local/remote read racing a local/remote
// commit must either see a consistent snapshot or retry — never a torn value.
//
// Table 3 (isolation of commits): local/local via HTM, local/remote and
// remote/local via HTM & locking, remote/remote via locking — concurrent
// commits on every pairing must serialize.
//
// Each test pins one cell: a multi-line record whose two halves must always
// match, hammered by the relevant reader/committer pairing.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/store/record.h"
#include "src/txn/transaction.h"
#include "src/txn/txn_engine.h"

namespace drtmr::txn {
namespace {

// Two mirrored halves placed far apart so the record spans 3+ cache lines:
// any torn read shows a != b.
struct Mirror {
  uint64_t a;
  uint64_t pad[14];
  uint64_t b;
};
static_assert(sizeof(Mirror) == 128);

class MatrixTest : public ::testing::Test {
 protected:
  MatrixTest() {
    cfg_.num_nodes = 2;
    cfg_.workers_per_node = 4;
    cfg_.memory_bytes = 8 << 20;
    cfg_.log_bytes = 1 << 20;
    cluster_ = std::make_unique<cluster::Cluster>(cfg_);
    catalog_ = std::make_unique<store::Catalog>(cluster_.get());
    store::TableOptions opt;
    opt.value_size = sizeof(Mirror);
    opt.hash_buckets = 64;
    table_ = catalog_->CreateTable(1, opt);
    TxnConfig tcfg;
    engine_ = std::make_unique<TxnEngine>(cluster_.get(), catalog_.get(), tcfg);
    engine_->StartServices();
    Mirror m{0, {}, 0};
    EXPECT_EQ(table_->hash(0)->Insert(cluster_->node(0)->context(0), 1, &m, nullptr),
              Status::kOk);
  }

  ~MatrixTest() override { engine_->StopServices(); }

  // Committer loop: increments both halves via the given (node-of-worker,
  // access-node) pairing. access node 0 holds the record.
  void CommitterLoop(uint32_t worker_node, uint32_t worker_slot, int iters) {
    sim::ThreadContext* ctx = cluster_->node(worker_node)->context(worker_slot);
    Transaction txn(engine_.get(), ctx);
    for (int i = 0; i < iters; ++i) {
      while (true) {
        txn.Begin();
        Mirror m{};
        if (txn.Read(table_, 0, 1, &m) != Status::kOk) {
          txn.UserAbort();
          continue;
        }
        m.a++;
        m.b++;
        if (txn.Write(table_, 0, 1, &m) != Status::kOk) {
          txn.UserAbort();
          continue;
        }
        if (txn.Commit() == Status::kOk) {
          break;
        }
      }
    }
  }

  // Reader loop (read-write txns so reads take the Fig. 5 / Fig. 6 paths):
  // counts mirror violations among committed snapshots.
  void ReaderLoop(uint32_t worker_node, uint32_t worker_slot, std::atomic<bool>* stop,
                  std::atomic<int>* violations, bool read_only) {
    sim::ThreadContext* ctx = cluster_->node(worker_node)->context(worker_slot);
    Transaction txn(engine_.get(), ctx);
    while (!stop->load(std::memory_order_relaxed)) {
      txn.Begin(read_only);
      Mirror m{};
      if (txn.Read(table_, 0, 1, &m) != Status::kOk) {
        txn.UserAbort();
        continue;
      }
      // The execution-phase read itself must already be consistent — this is
      // Table 2's claim — regardless of whether validation later succeeds.
      if (m.a != m.b) {
        violations->fetch_add(1);
      }
      if (read_only) {
        (void)txn.Commit();  // invariant already checked from the snapshot
      } else {
        txn.UserAbort();
      }
    }
  }

  void RunCell(uint32_t reader_node, uint32_t committer_node, bool read_only) {
    std::atomic<bool> stop{false};
    std::atomic<int> violations{0};
    std::thread reader([&] { ReaderLoop(reader_node, 1, &stop, &violations, read_only); });
    CommitterLoop(committer_node, 0, 400);
    stop.store(true);
    reader.join();
    EXPECT_EQ(violations.load(), 0);
    // Committer finished: final value is 400/400.
    Mirror m = FinalValue();
    EXPECT_EQ(m.a, 400u);
    EXPECT_EQ(m.b, 400u);
  }

  Mirror FinalValue() {
    const uint64_t off = table_->hash(0)->Lookup(nullptr, 1);
    std::vector<std::byte> rec(table_->record_bytes());
    cluster_->node(0)->bus()->Read(nullptr, off, rec.data(), rec.size());
    Mirror m{};
    store::RecordLayout::GatherValue(rec.data(), &m, sizeof(m));
    return m;
  }

  cluster::ClusterConfig cfg_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<store::Catalog> catalog_;
  store::Table* table_ = nullptr;
  std::unique_ptr<TxnEngine> engine_;
};

// ---- Table 2: consistency of reads vs commits ----

TEST_F(MatrixTest, LocalReadVsLocalCommit) { RunCell(0, 0, false); }      // HTM / HTM
TEST_F(MatrixTest, LocalReadVsRemoteCommit) { RunCell(0, 1, false); }     // HTM + lock check
TEST_F(MatrixTest, RemoteReadVsLocalCommit) { RunCell(1, 0, false); }     // versioning
TEST_F(MatrixTest, RemoteReadVsRemoteCommit) { RunCell(1, 1, false); }    // versioning
TEST_F(MatrixTest, ReadOnlyLocalVsRemoteCommit) { RunCell(0, 1, true); }  // Fig. 8
TEST_F(MatrixTest, ReadOnlyRemoteVsLocalCommit) { RunCell(1, 0, true); }  // Fig. 8 lock check

// ---- Table 3: isolation of concurrent commits ----

class CommitMatrixTest : public MatrixTest,
                         public ::testing::WithParamInterface<std::pair<uint32_t, uint32_t>> {};

TEST_P(CommitMatrixTest, ConcurrentCommitsSerialize) {
  const auto [n1, n2] = GetParam();
  std::thread t1([&] { CommitterLoop(n1, 0, 300); });
  std::thread t2([&] { CommitterLoop(n2, 1, 300); });
  t1.join();
  t2.join();
  const Mirror m = FinalValue();
  EXPECT_EQ(m.a, 600u) << "lost update";
  EXPECT_EQ(m.b, 600u);
}

INSTANTIATE_TEST_SUITE_P(Pairings, CommitMatrixTest,
                         ::testing::Values(std::pair<uint32_t, uint32_t>{0, 0},   // HTM / HTM
                                           std::pair<uint32_t, uint32_t>{0, 1},   // HTM&lock
                                           std::pair<uint32_t, uint32_t>{1, 1})); // lock / lock

}  // namespace
}  // namespace drtmr::txn
