// Baseline engines (Silo, Calvin, DrTM) executing the shared TPC-C /
// account-transfer logic with the same invariants as DrTM+R.
#include "src/baseline/calvin.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "src/baseline/drtm.h"
#include "src/baseline/silo.h"
#include "src/workload/driver.h"
#include "src/workload/tpcc.h"

namespace drtmr::baseline {
namespace {

struct Cell {
  int64_t value;
  uint64_t pad[4];
};

class BaselineTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kTable = 1;

  BaselineTest() {
    cfg_.num_nodes = 3;
    cfg_.workers_per_node = 4;
    cfg_.memory_bytes = 32 << 20;
    cfg_.log_bytes = 2 << 20;
    cluster_ = std::make_unique<cluster::Cluster>(cfg_);
    catalog_ = std::make_unique<store::Catalog>(cluster_.get());
    store::TableOptions opt;
    opt.value_size = sizeof(Cell);
    opt.hash_buckets = 512;
    table_ = catalog_->CreateTable(kTable, opt);
    txn::TxnConfig tcfg;
    base_ = std::make_unique<txn::TxnEngine>(cluster_.get(), catalog_.get(), tcfg);
    base_->StartServices();
    for (uint64_t k = 1; k <= 30; ++k) {
      Cell c{1000, {}};
      const uint32_t node = HomeOf(k);
      EXPECT_EQ(table_->hash(node)->Insert(cluster_->node(node)->context(0), k, &c, nullptr),
                Status::kOk);
    }
  }

  ~BaselineTest() override { base_->StopServices(); }

  uint32_t HomeOf(uint64_t k) const { return static_cast<uint32_t>(k % 3); }

  int64_t Total() {
    int64_t total = 0;
    for (uint64_t k = 1; k <= 30; ++k) {
      const uint32_t node = HomeOf(k);
      const uint64_t off = table_->hash(node)->Lookup(nullptr, k);
      std::vector<std::byte> rec(table_->record_bytes());
      cluster_->node(node)->bus()->Read(nullptr, off, rec.data(), rec.size());
      Cell c;
      store::RecordLayout::GatherValue(rec.data(), &c, sizeof(c));
      total += c.value;
    }
    return total;
  }

  cluster::ClusterConfig cfg_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<store::Catalog> catalog_;
  store::Table* table_ = nullptr;
  std::unique_ptr<txn::TxnEngine> base_;
};

TEST_F(BaselineTest, SiloLocalTransfersConserveMoney) {
  SiloEngine silo(base_.get());
  // Silo is single-machine: use node 0's keys only (3, 6, 9, ...).
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      sim::ThreadContext* ctx = cluster_->node(0)->context(static_cast<uint32_t>(t));
      SiloTxn txn(&silo, ctx);
      FastRand rng(t + 5);
      for (int i = 0; i < 400; ++i) {
        const uint64_t from = rng.Range(1, 10) * 3;
        uint64_t to = rng.Range(1, 10) * 3;
        if (to == from) {
          to = from == 3 ? 6 : 3;
        }
        while (true) {
          txn.Begin();
          Cell a{}, b{};
          if (txn.Read(table_, 0, from, &a) != Status::kOk ||
              txn.Read(table_, 0, to, &b) != Status::kOk) {
            txn.UserAbort();
            continue;
          }
          a.value -= 5;
          b.value += 5;
          if (txn.Write(table_, 0, from, &a) != Status::kOk ||
              txn.Write(table_, 0, to, &b) != Status::kOk) {
            txn.UserAbort();
            continue;
          }
          if (txn.Commit() == Status::kOk) {
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(Total(), 30 * 1000);
  EXPECT_GT(silo.stats().commits.load(), 0u);
}

TEST_F(BaselineTest, SiloInsertRemove) {
  SiloEngine silo(base_.get());
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  SiloTxn txn(&silo, ctx);
  txn.Begin();
  Cell c{42, {}};
  ASSERT_EQ(txn.Insert(table_, 0, 900, &c), Status::kOk);
  ASSERT_EQ(txn.Commit(), Status::kOk);
  txn.Begin();
  Cell out{};
  ASSERT_EQ(txn.Read(table_, 0, 900, &out), Status::kOk);
  EXPECT_EQ(out.value, 42);
  ASSERT_EQ(txn.Remove(table_, 0, 900), Status::kOk);
  ASSERT_EQ(txn.Commit(), Status::kOk);
  txn.Begin();
  EXPECT_EQ(txn.Read(table_, 0, 900, &out), Status::kNotFound);
  txn.UserAbort();
}

TEST_F(BaselineTest, CalvinDistributedTransfersConserveMoney) {
  CalvinConfig ccfg;
  ccfg.sequencing_ns = 1000;  // keep the test's virtual time small
  ccfg.remote_partition_ns = 1000;
  CalvinEngine calvin(base_.get(), ccfg);
  std::vector<std::thread> threads;
  for (uint32_t n = 0; n < 3; ++n) {
    threads.emplace_back([&, n] {
      sim::ThreadContext* ctx = cluster_->node(n)->context(0);
      CalvinTxn txn(&calvin, ctx);
      FastRand rng(n + 17);
      for (int i = 0; i < 300; ++i) {
        const uint64_t from = rng.Range(1, 30);
        uint64_t to = rng.Range(1, 30);
        if (to == from) {
          to = from % 30 + 1;
        }
        while (true) {
          txn.Begin();
          Cell a{}, b{};
          if (txn.Read(table_, HomeOf(from), from, &a) != Status::kOk ||
              txn.Read(table_, HomeOf(to), to, &b) != Status::kOk) {
            txn.UserAbort();
            continue;
          }
          a.value -= 7;
          b.value += 7;
          if (txn.Write(table_, HomeOf(from), from, &a) != Status::kOk ||
              txn.Write(table_, HomeOf(to), to, &b) != Status::kOk) {
            txn.UserAbort();
            continue;
          }
          if (txn.Commit() == Status::kOk) {
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(Total(), 30 * 1000);
  EXPECT_EQ(calvin.stats().commits.load(), 900u);
}

TEST_F(BaselineTest, CalvinChargesSequencingAndRpc) {
  CalvinConfig ccfg;
  CalvinEngine calvin(base_.get(), ccfg);
  sim::ThreadContext* ctx = cluster_->node(0)->context(1);
  ctx->clock.Reset();
  CalvinTxn txn(&calvin, ctx);
  txn.Begin();
  Cell a{};
  ASSERT_EQ(txn.Read(table_, 1, 1, &a), Status::kOk);  // remote partition
  ASSERT_EQ(txn.Commit(), Status::kOk);
  EXPECT_GE(ctx->clock.now_ns(), ccfg.sequencing_ns + ccfg.remote_partition_ns);
}

TEST_F(BaselineTest, DrTmDistributedTransfersConserveMoney) {
  DrTmConfig dcfg;
  DrTmEngine drtm(base_.get(), dcfg);
  std::vector<std::thread> threads;
  for (uint32_t n = 0; n < 3; ++n) {
    for (uint32_t w = 0; w < 2; ++w) {
      threads.emplace_back([&, n, w] {
        sim::ThreadContext* ctx = cluster_->node(n)->context(w);
        FastRand rng(n * 10 + w + 3);
        for (int i = 0; i < 200; ++i) {
          const uint64_t from = rng.Range(1, 30);
          uint64_t to = rng.Range(1, 30);
          if (to == from) {
            to = from % 30 + 1;
          }
          const bool done = drtm.Execute(ctx, [&](txn::TxnApi* txn) {
            txn->Begin();
            Cell a{}, b{};
            if (txn->Read(table_, HomeOf(from), from, &a) != Status::kOk ||
                txn->Read(table_, HomeOf(to), to, &b) != Status::kOk) {
              txn->UserAbort();
              return false;
            }
            a.value -= 3;
            b.value += 3;
            if (txn->Write(table_, HomeOf(from), from, &a) != Status::kOk ||
                txn->Write(table_, HomeOf(to), to, &b) != Status::kOk) {
              txn->UserAbort();
              return false;
            }
            return txn->Commit() == Status::kOk;
          });
          EXPECT_TRUE(done);
        }
      });
    }
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(Total(), 30 * 1000);
  EXPECT_EQ(drtm.stats().commits.load(), 6u * 200);
}

TEST_F(BaselineTest, CalvinRunsTpccMix) {
  cluster::PartitionMap pmap(3);
  workload::TpccConfig tc;
  tc.warehouses_per_node = 1;
  tc.customers_per_district = 30;
  tc.items = 100;
  workload::TpccWorkload tpcc(base_.get(), &pmap, tc);
  tpcc.CreateTables();
  tpcc.Load(nullptr);
  CalvinConfig ccfg;
  ccfg.sequencing_ns = 1000;
  ccfg.remote_partition_ns = 1000;
  CalvinEngine calvin(base_.get(), ccfg);
  std::vector<std::thread> threads;
  for (uint32_t n = 0; n < 3; ++n) {
    threads.emplace_back([&, n] {
      sim::ThreadContext* ctx = cluster_->node(n)->context(0);
      CalvinTxn txn(&calvin, ctx);
      FastRand rng(n + 41);
      for (int i = 0; i < 60; ++i) {
        tpcc.RunOne(ctx, &txn, &rng);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  // District order counters match the ORDER trees (2PL kept things serial).
  uint64_t orders_expected = 0;
  for (uint64_t w = 1; w <= 3; ++w) {
    for (uint64_t d = 1; d <= tc.districts; ++d) {
      orders_expected += tpcc.DistrictNextOrderId(tpcc.NodeOfWarehouse(w), w, d) - 1;
    }
  }
  uint64_t orders_found = 0;
  for (uint32_t n = 0; n < 3; ++n) {
    orders_found += tpcc.table(workload::TpccWorkload::kOrderTab)->btree(n)->size();
  }
  EXPECT_EQ(orders_found, orders_expected);
  EXPECT_GT(calvin.stats().commits.load(), 0u);
}

TEST_F(BaselineTest, SiloRunsTpccMixSingleMachine) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 1;
  cfg.workers_per_node = 3;
  cfg.memory_bytes = 32 << 20;
  cfg.log_bytes = 1 << 20;
  cluster::Cluster cluster(cfg);
  store::Catalog catalog(&cluster);
  cluster::PartitionMap pmap(1);
  txn::TxnConfig tcfg;
  txn::TxnEngine base(&cluster, &catalog, tcfg);
  base.StartServices();
  workload::TpccConfig tc;
  tc.warehouses_per_node = 2;
  tc.customers_per_district = 30;
  tc.items = 100;
  tc.cross_warehouse_new_order_pct = 0;
  tc.cross_warehouse_payment_pct = 0;
  workload::TpccWorkload tpcc(&base, &pmap, tc);
  tpcc.CreateTables();
  tpcc.Load(nullptr);
  SiloEngine silo(&base);
  std::vector<std::thread> threads;
  for (uint32_t w = 0; w < 3; ++w) {
    threads.emplace_back([&, w] {
      sim::ThreadContext* ctx = cluster.node(0)->context(w);
      SiloTxn txn(&silo, ctx);
      FastRand rng(w + 3);
      for (int i = 0; i < 80; ++i) {
        tpcc.RunOne(ctx, &txn, &rng);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  uint64_t orders_expected = 0;
  for (uint64_t w = 1; w <= 2; ++w) {
    for (uint64_t d = 1; d <= tc.districts; ++d) {
      orders_expected += tpcc.DistrictNextOrderId(0, w, d) - 1;
    }
  }
  EXPECT_EQ(tpcc.table(workload::TpccWorkload::kOrderTab)->btree(0)->size(), orders_expected);
  EXPECT_GT(silo.stats().commits.load(), 0u);
  base.StopServices();
}

TEST_F(BaselineTest, DrTmRunsTpccMix) {
  cluster::PartitionMap pmap(3);
  workload::TpccConfig tc;
  tc.warehouses_per_node = 1;
  tc.customers_per_district = 30;
  tc.items = 100;
  workload::TpccWorkload tpcc(base_.get(), &pmap, tc);
  tpcc.CreateTables();
  tpcc.Load(nullptr);

  DrTmConfig dcfg;
  DrTmEngine drtm(base_.get(), dcfg);
  std::vector<std::thread> threads;
  for (uint32_t n = 0; n < 3; ++n) {
    threads.emplace_back([&, n] {
      sim::ThreadContext* ctx = cluster_->node(n)->context(0);
      FastRand rng(n + 31);
      for (int i = 0; i < 60; ++i) {
        const uint64_t w = tpcc.PickWarehouse(ctx, &rng);
        const uint32_t type = tpcc.PickType(&rng);
        const FastRand snapshot = rng;
        int guard = 0;
        while (true) {
          FastRand pass_rng = snapshot;
          if (drtm.Execute(ctx, [&](txn::TxnApi* api) {
                FastRand body_rng = pass_rng;
                return tpcc.RunType(type, ctx, api, &body_rng, w);
              })) {
            break;
          }
          if (++guard > 200) {
            ADD_FAILURE() << "DrTM TPC-C txn type " << type << " never committed";
            break;
          }
        }
        rng = snapshot;
        // Advance the real rng identically to one body execution.
        FastRand throwaway = snapshot;
        (void)throwaway;
        rng.Next();  // decorrelate subsequent picks
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_GT(drtm.stats().commits.load(), 0u);

  // District next_o_id must match the number of orders recorded.
  uint64_t orders_expected = 0;
  for (uint64_t w = 1; w <= 3; ++w) {
    for (uint64_t d = 1; d <= tc.districts; ++d) {
      orders_expected += tpcc.DistrictNextOrderId(tpcc.NodeOfWarehouse(w), w, d) - 1;
    }
  }
  uint64_t orders_found = 0;
  for (uint32_t n = 0; n < 3; ++n) {
    orders_found += tpcc.table(workload::TpccWorkload::kOrderTab)->btree(n)->size();
  }
  EXPECT_EQ(orders_found, orders_expected);
}

}  // namespace
}  // namespace drtmr::baseline
