// Protocol-level tests of the DrTM+R hybrid OCC: execution-phase reads,
// 6-step commit, read-only transactions, conflicts, fallback, mutations.
#include "src/txn/transaction.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "src/store/record.h"
#include "src/txn/txn_engine.h"

namespace drtmr::txn {
namespace {

using store::LockWord;
using store::RecordLayout;

struct Account {
  uint64_t balance;
  uint64_t pad[5];
};

class TxnTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kAccounts = 1;  // table id

  TxnTest() {
    cfg_.num_nodes = 3;
    cfg_.workers_per_node = 4;
    cfg_.memory_bytes = 16 << 20;
    cfg_.log_bytes = 1 << 20;
    cluster_ = std::make_unique<cluster::Cluster>(cfg_);
    catalog_ = std::make_unique<store::Catalog>(cluster_.get());
    store::TableOptions opt;
    opt.value_size = sizeof(Account);
    opt.kind = store::StoreKind::kHash;
    opt.hash_buckets = 1024;
    accounts_ = catalog_->CreateTable(kAccounts, opt);

    TxnConfig tcfg;
    engine_ = std::make_unique<TxnEngine>(cluster_.get(), catalog_.get(), tcfg);
    engine_->StartServices();

    // Load: accounts k=1..30, balance 1000, spread over nodes (k % 3).
    for (uint64_t k = 1; k <= 30; ++k) {
      Account a{1000, {}};
      const uint32_t node = static_cast<uint32_t>(k % 3);
      EXPECT_EQ(accounts_->hash(node)->Insert(cluster_->node(node)->context(0), k, &a, nullptr),
                Status::kOk);
    }
  }

  ~TxnTest() override { engine_->StopServices(); }

  uint32_t HomeOf(uint64_t key) const { return static_cast<uint32_t>(key % 3); }

  uint64_t Balance(uint64_t key) {
    sim::ThreadContext* ctx = cluster_->node(0)->context(0);
    Transaction txn(engine_.get(), ctx);
    while (true) {
      txn.Begin(/*read_only=*/true);
      Account a{};
      if (txn.Read(accounts_, HomeOf(key), key, &a) != Status::kOk) {
        txn.UserAbort();
        continue;
      }
      if (txn.Commit() == Status::kOk) {
        return a.balance;
      }
    }
  }

  cluster::ClusterConfig cfg_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<store::Catalog> catalog_;
  store::Table* accounts_ = nullptr;
  std::unique_ptr<TxnEngine> engine_;
};

TEST_F(TxnTest, LocalReadWriteCommit) {
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  Transaction txn(engine_.get(), ctx);
  txn.Begin();
  Account a{};
  ASSERT_EQ(txn.Read(accounts_, 0, 3, &a), Status::kOk);  // key 3 lives on node 0
  EXPECT_EQ(a.balance, 1000u);
  a.balance = 1100;
  ASSERT_EQ(txn.Write(accounts_, 0, 3, &a), Status::kOk);
  ASSERT_EQ(txn.Commit(), Status::kOk);
  EXPECT_EQ(Balance(3), 1100u);
  EXPECT_EQ(engine_->stats().commits.load(), 2u);  // txn + Balance()
}

TEST_F(TxnTest, RemoteReadWriteCommit) {
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  Transaction txn(engine_.get(), ctx);
  txn.Begin();
  Account a{};
  ASSERT_EQ(txn.Read(accounts_, 1, 1, &a), Status::kOk);  // key 1 on node 1: remote
  EXPECT_EQ(a.balance, 1000u);
  a.balance = 900;
  ASSERT_EQ(txn.Write(accounts_, 1, 1, &a), Status::kOk);
  ASSERT_EQ(txn.Commit(), Status::kOk);
  EXPECT_EQ(Balance(1), 900u);

  // After C.6 the remote record must be unlocked and its seq bumped.
  uint64_t lock = cluster_->node(1)->bus()->ReadU64(nullptr,
      accounts_->hash(1)->Lookup(cluster_->node(1)->context(0), 1) + RecordLayout::kLockOff);
  EXPECT_EQ(lock, LockWord::kUnlocked);
}

TEST_F(TxnTest, ReadYourOwnWrite) {
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  Transaction txn(engine_.get(), ctx);
  txn.Begin();
  Account a{};
  ASSERT_EQ(txn.Read(accounts_, 0, 3, &a), Status::kOk);
  a.balance = 42;
  ASSERT_EQ(txn.Write(accounts_, 0, 3, &a), Status::kOk);
  Account b{};
  ASSERT_EQ(txn.Read(accounts_, 0, 3, &b), Status::kOk);
  EXPECT_EQ(b.balance, 42u);
  txn.UserAbort();
  EXPECT_EQ(Balance(3), 1000u) << "aborted write must not be visible";
}

TEST_F(TxnTest, NotFoundKeys) {
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  Transaction txn(engine_.get(), ctx);
  txn.Begin();
  Account a{};
  EXPECT_EQ(txn.Read(accounts_, 0, 999, &a), Status::kNotFound);   // local miss
  EXPECT_EQ(txn.Read(accounts_, 1, 1000, &a), Status::kNotFound);  // remote miss
  txn.UserAbort();
}

TEST_F(TxnTest, CrossPartitionTransfer) {
  // Distributed transaction touching all three nodes.
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  Transaction txn(engine_.get(), ctx);
  txn.Begin();
  Account a{}, b{}, c{};
  ASSERT_EQ(txn.Read(accounts_, 0, 3, &a), Status::kOk);
  ASSERT_EQ(txn.Read(accounts_, 1, 4, &b), Status::kOk);
  ASSERT_EQ(txn.Read(accounts_, 2, 5, &c), Status::kOk);
  a.balance -= 100;
  b.balance += 60;
  c.balance += 40;
  ASSERT_EQ(txn.Write(accounts_, 0, 3, &a), Status::kOk);
  ASSERT_EQ(txn.Write(accounts_, 1, 4, &b), Status::kOk);
  ASSERT_EQ(txn.Write(accounts_, 2, 5, &c), Status::kOk);
  ASSERT_EQ(txn.Commit(), Status::kOk);
  EXPECT_EQ(Balance(3), 900u);
  EXPECT_EQ(Balance(4), 1060u);
  EXPECT_EQ(Balance(5), 1040u);
}

TEST_F(TxnTest, WriteWriteConflictAbortsLoser) {
  // txn1 reads+writes key 6; before it commits, txn2 commits an update to 6.
  sim::ThreadContext* ctx1 = cluster_->node(0)->context(0);
  sim::ThreadContext* ctx2 = cluster_->node(0)->context(1);
  Transaction t1(engine_.get(), ctx1);
  Transaction t2(engine_.get(), ctx2);
  t1.Begin();
  Account a{};
  ASSERT_EQ(t1.Read(accounts_, 0, 6, &a), Status::kOk);
  a.balance = 1;
  ASSERT_EQ(t1.Write(accounts_, 0, 6, &a), Status::kOk);

  t2.Begin();
  Account b{};
  ASSERT_EQ(t2.Read(accounts_, 0, 6, &b), Status::kOk);
  b.balance = 2;
  ASSERT_EQ(t2.Write(accounts_, 0, 6, &b), Status::kOk);
  ASSERT_EQ(t2.Commit(), Status::kOk);

  EXPECT_EQ(t1.Commit(), Status::kAborted) << "stale read set must fail validation";
  EXPECT_EQ(Balance(6), 2u);
}

TEST_F(TxnTest, RemoteValidationConflict) {
  sim::ThreadContext* ctx1 = cluster_->node(0)->context(0);
  sim::ThreadContext* ctx2 = cluster_->node(1)->context(0);
  Transaction t1(engine_.get(), ctx1);
  Transaction t2(engine_.get(), ctx2);
  t1.Begin();
  Account a{};
  ASSERT_EQ(t1.Read(accounts_, 1, 7, &a), Status::kOk);  // remote read from node 0

  t2.Begin();  // local update on node 1
  Account b{};
  ASSERT_EQ(t2.Read(accounts_, 1, 7, &b), Status::kOk);
  b.balance = 777;
  ASSERT_EQ(t2.Write(accounts_, 1, 7, &b), Status::kOk);
  ASSERT_EQ(t2.Commit(), Status::kOk);

  a.balance = 111;
  ASSERT_EQ(t1.Write(accounts_, 1, 7, &a), Status::kOk);
  EXPECT_EQ(t1.Commit(), Status::kAborted);
  EXPECT_EQ(Balance(7), 777u);
}

TEST_F(TxnTest, ReadOnlySnapshotValidation) {
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  Transaction ro(engine_.get(), ctx);
  ro.Begin(/*read_only=*/true);
  Account a{};
  ASSERT_EQ(ro.Read(accounts_, 0, 9, &a), Status::kOk);
  ASSERT_EQ(ro.Read(accounts_, 1, 10, &a), Status::kOk);

  // A concurrent writer invalidates the snapshot.
  sim::ThreadContext* ctx2 = cluster_->node(0)->context(1);
  Transaction w(engine_.get(), ctx2);
  w.Begin();
  Account b{};
  ASSERT_EQ(w.Read(accounts_, 0, 9, &b), Status::kOk);
  b.balance = 5;
  ASSERT_EQ(w.Write(accounts_, 0, 9, &b), Status::kOk);
  ASSERT_EQ(w.Commit(), Status::kOk);

  EXPECT_EQ(ro.Commit(), Status::kAborted);
}

TEST_F(TxnTest, ReadOnlyRefusesLockedRemoteRecord) {
  // Manually lock a record on node 1 as if a committer held it; a read-only
  // remote read must not return until it is unlocked (Fig. 8).
  const uint64_t off = accounts_->hash(1)->Lookup(cluster_->node(1)->context(0), 13);
  ASSERT_NE(off, 0u);
  const uint64_t owner = LockWord::Make(2, 0);
  uint64_t obs;
  ASSERT_TRUE(cluster_->node(1)->bus()->CasU64(nullptr, off + RecordLayout::kLockOff, 0, owner,
                                               &obs));

  std::atomic<bool> done{false};
  std::thread reader([&] {
    sim::ThreadContext* ctx = cluster_->node(0)->context(0);
    Transaction ro(engine_.get(), ctx);
    while (true) {
      ro.Begin(true);
      Account a{};
      if (ro.Read(accounts_, 1, 13, &a) != Status::kOk) {
        ro.UserAbort();
        continue;
      }
      if (ro.Commit() == Status::kOk) {
        break;
      }
    }
    done.store(true);
  });
  // Give the reader time to spin on the locked record.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(done.load());
  ASSERT_TRUE(cluster_->node(1)->bus()->CasU64(nullptr, off + RecordLayout::kLockOff, owner, 0,
                                               &obs));
  reader.join();
  EXPECT_TRUE(done.load());
}

TEST_F(TxnTest, LockConflictOnRemoteCommit) {
  // Hold the lock of a remote record; a commit needing it must abort (C.1).
  const uint64_t off = accounts_->hash(1)->Lookup(cluster_->node(1)->context(0), 16);
  const uint64_t owner = LockWord::Make(2, 3);
  uint64_t obs;
  ASSERT_TRUE(cluster_->node(1)->bus()->CasU64(nullptr, off + RecordLayout::kLockOff, 0, owner,
                                               &obs));
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  Transaction txn(engine_.get(), ctx);
  txn.Begin();
  Account a{};
  ASSERT_EQ(txn.Read(accounts_, 1, 16, &a), Status::kOk);
  a.balance = 1;
  ASSERT_EQ(txn.Write(accounts_, 1, 16, &a), Status::kOk);
  EXPECT_EQ(txn.Commit(), Status::kAborted);
  EXPECT_GE(engine_->stats().aborts_lock.load(), 1u);
  cluster_->node(1)->bus()->CasU64(nullptr, off + RecordLayout::kLockOff, owner, 0, &obs);
}

TEST_F(TxnTest, DanglingLockReleasedWhenOwnerAbsent) {
  // With a coordinator, a lock owned by a machine outside the configuration
  // is released passively and the commit proceeds (§5.2).
  cluster::Coordinator coord;
  coord.Join(0, 0, 1000000);
  coord.Join(1, 0, 1000000);
  coord.Join(2, 0, 1000000);
  TxnConfig tcfg;
  TxnEngine engine(cluster_.get(), catalog_.get(), tcfg, &coord);

  const uint64_t off = accounts_->hash(1)->Lookup(cluster_->node(1)->context(0), 19);
  const uint64_t dead_owner = LockWord::Make(7, 0);  // machine 7 never existed
  uint64_t obs;
  ASSERT_TRUE(cluster_->node(1)->bus()->CasU64(nullptr, off + RecordLayout::kLockOff, 0,
                                               dead_owner, &obs));
  sim::ThreadContext* ctx = cluster_->node(0)->context(2);
  Transaction txn(&engine, ctx);
  txn.Begin();
  Account a{};
  ASSERT_EQ(txn.Read(accounts_, 1, 19, &a), Status::kOk);
  a.balance = 3;
  ASSERT_EQ(txn.Write(accounts_, 1, 19, &a), Status::kOk);
  EXPECT_EQ(txn.Commit(), Status::kOk);
  EXPECT_GE(engine.stats().dangling_locks_released.load(), 1u);
  EXPECT_EQ(cluster_->node(1)->bus()->ReadU64(nullptr, off + RecordLayout::kLockOff),
            LockWord::kUnlocked);
}

TEST_F(TxnTest, InsertAndRemoveLocal) {
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  Transaction txn(engine_.get(), ctx);
  txn.Begin();
  Account a{555, {}};
  ASSERT_EQ(txn.Insert(accounts_, 0, 300, &a), Status::kOk);
  ASSERT_EQ(txn.Commit(), Status::kOk);
  EXPECT_EQ(Balance(300), 555u);

  Transaction txn2(engine_.get(), ctx);
  txn2.Begin();
  ASSERT_EQ(txn2.Remove(accounts_, 0, 300), Status::kOk);
  ASSERT_EQ(txn2.Commit(), Status::kOk);
  Transaction txn3(engine_.get(), ctx);
  txn3.Begin();
  EXPECT_EQ(txn3.Read(accounts_, 0, 300, &a), Status::kNotFound);
  txn3.UserAbort();
}

TEST_F(TxnTest, InsertRemoteViaRpc) {
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  Transaction txn(engine_.get(), ctx);
  txn.Begin();
  Account a{777, {}};
  ASSERT_EQ(txn.Insert(accounts_, 2, 301, &a), Status::kOk);  // node 2: remote (301 % 3 != 2, but host is explicit)
  ASSERT_EQ(txn.Commit(), Status::kOk);
  // Visible via remote read from node 1.
  Transaction r(engine_.get(), cluster_->node(1)->context(0));
  r.Begin(true);
  Account out{};
  ASSERT_EQ(r.Read(accounts_, 2, 301, &out), Status::kOk);
  EXPECT_EQ(r.Commit(), Status::kOk);
  EXPECT_EQ(out.balance, 777u);
}

TEST_F(TxnTest, IncarnationChangeAbortsReader) {
  // Reader tracks key 21; the record is removed and reinserted before commit.
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  Transaction t(engine_.get(), ctx);
  t.Begin();
  Account a{};
  ASSERT_EQ(t.Read(accounts_, 0, 21, &a), Status::kOk);

  sim::ThreadContext* ctx2 = cluster_->node(0)->context(1);
  ASSERT_EQ(accounts_->hash(0)->Remove(ctx2, 21), Status::kOk);
  Account fresh{1, {}};
  ASSERT_EQ(accounts_->hash(0)->Insert(ctx2, 21, &fresh, nullptr), Status::kOk);

  a.balance = 9;
  // The write may fail (kNotFound during relookup) or the commit must abort.
  if (t.Write(accounts_, 0, 21, &a) == Status::kOk) {
    EXPECT_EQ(t.Commit(), Status::kAborted);
  } else {
    t.UserAbort();
  }
  EXPECT_EQ(Balance(21), 1u);
}

TEST_F(TxnTest, BTreeTableScanWithinTxn) {
  store::TableOptions opt;
  opt.value_size = 16;
  opt.kind = store::StoreKind::kBTree;
  store::Table* orders = catalog_->CreateTable(2, opt);
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  // Insert via transactions.
  for (uint64_t k = 10; k <= 50; k += 10) {
    Transaction t(engine_.get(), ctx);
    t.Begin();
    uint64_t v[2] = {k, k * 2};
    ASSERT_EQ(t.Insert(orders, 0, k, v), Status::kOk);
    ASSERT_EQ(t.Commit(), Status::kOk);
  }
  Transaction t(engine_.get(), ctx);
  t.Begin(true);
  std::vector<uint64_t> keys;
  ASSERT_EQ(t.ScanLocal(orders, 15, 45, [&](uint64_t k, const void* v) {
    keys.push_back(k);
    uint64_t vv[2];
    std::memcpy(vv, v, 16);
    EXPECT_EQ(vv[1], k * 2);
    return true;
  }), Status::kOk);
  EXPECT_EQ(t.Commit(), Status::kOk);
  EXPECT_EQ(keys, (std::vector<uint64_t>{20, 30, 40}));
}

// The canonical serializability stress: concurrent transfers between random
// accounts, all nodes, all workers. Total balance must be conserved and no
// read-only sweep may observe an inconsistent total.
TEST_F(TxnTest, MoneyConservationUnderConcurrency) {
  constexpr int kThreadsPerNode = 3;
  constexpr int kTransfers = 300;
  const uint64_t kTotal = 30 * 1000;

  std::atomic<bool> stop{false};
  std::atomic<int> ro_failures{0};
  std::vector<std::thread> threads;
  for (uint32_t n = 0; n < 3; ++n) {
    for (int w = 0; w < kThreadsPerNode; ++w) {
      threads.emplace_back([&, n, w] {
        sim::ThreadContext* ctx = cluster_->node(n)->context(static_cast<uint32_t>(w));
        Transaction txn(engine_.get(), ctx);
        FastRand rng(n * 100 + w + 1);
        for (int i = 0; i < kTransfers; ++i) {
          const uint64_t from = rng.Range(1, 30);
          uint64_t to = rng.Range(1, 30);
          if (to == from) {
            to = from % 30 + 1;
          }
          while (true) {
            txn.Begin();
            Account a{}, b{};
            if (txn.Read(accounts_, HomeOf(from), from, &a) != Status::kOk ||
                txn.Read(accounts_, HomeOf(to), to, &b) != Status::kOk) {
              txn.UserAbort();
              continue;
            }
            const uint64_t amount = rng.Range(1, 10);
            if (a.balance < amount) {
              txn.UserAbort();
              break;
            }
            a.balance -= amount;
            b.balance += amount;
            if (txn.Write(accounts_, HomeOf(from), from, &a) != Status::kOk ||
                txn.Write(accounts_, HomeOf(to), to, &b) != Status::kOk) {
              txn.UserAbort();
              continue;
            }
            if (txn.Commit() == Status::kOk) {
              break;
            }
          }
        }
      });
    }
  }
  // Read-only auditor: sweeps all accounts, total must always be kTotal.
  std::thread auditor([&] {
    sim::ThreadContext* ctx = cluster_->node(0)->context(3);
    Transaction ro(engine_.get(), ctx);
    while (!stop.load()) {
      ro.Begin(true);
      uint64_t total = 0;
      bool ok = true;
      for (uint64_t k = 1; k <= 30 && ok; ++k) {
        Account a{};
        ok = ro.Read(accounts_, HomeOf(k), k, &a) == Status::kOk;
        total += a.balance;
      }
      if (!ok) {
        ro.UserAbort();
        continue;
      }
      if (ro.Commit() != Status::kOk) {
        continue;  // snapshot invalidated: fine, retry
      }
      if (total != kTotal) {
        ro_failures.fetch_add(1);
      }
    }
  });
  for (auto& th : threads) {
    th.join();
  }
  stop.store(true);
  auditor.join();
  EXPECT_EQ(ro_failures.load(), 0) << "read-only transaction observed a torn total";

  uint64_t total = 0;
  for (uint64_t k = 1; k <= 30; ++k) {
    total += Balance(k);
  }
  EXPECT_EQ(total, kTotal);
  EXPECT_GT(engine_->stats().commits.load(), 0u);
}

}  // namespace
}  // namespace drtmr::txn
