#include "src/store/record.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace drtmr::store {
namespace {

TEST(RecordLayout, SizesForValueLengths) {
  EXPECT_EQ(RecordLayout::LinesFor(0), 1u);
  EXPECT_EQ(RecordLayout::LinesFor(32), 1u);   // fits in line 0
  EXPECT_EQ(RecordLayout::LinesFor(33), 2u);
  EXPECT_EQ(RecordLayout::LinesFor(32 + 62), 2u);
  EXPECT_EQ(RecordLayout::LinesFor(32 + 62 + 1), 3u);
  EXPECT_EQ(RecordLayout::BytesFor(94), 2 * kCacheLineSize);
  EXPECT_EQ(RecordLayout::BytesFor(100), 3 * kCacheLineSize);
  EXPECT_EQ(RecordLayout::BytesFor(8), kCacheLineSize);
}

TEST(RecordLayout, MetadataAccessors) {
  std::vector<std::byte> rec(RecordLayout::BytesFor(40));
  RecordLayout::Init(rec.data(), /*key=*/77, /*incarnation=*/2, /*seq=*/4, nullptr, 40);
  EXPECT_EQ(RecordLayout::GetLock(rec.data()), 0u);
  EXPECT_EQ(RecordLayout::GetIncarnation(rec.data()), 2u);
  EXPECT_EQ(RecordLayout::GetSeq(rec.data()), 4u);
  EXPECT_EQ(RecordLayout::GetKey(rec.data()), 77u);
  RecordLayout::SetSeq(rec.data(), 6);
  EXPECT_EQ(RecordLayout::GetSeq(rec.data()), 6u);
}

TEST(RecordLayout, ScatterGatherRoundTrip) {
  for (const size_t n : {1ul, 31ul, 32ul, 33ul, 94ul, 95ul, 200ul}) {
    std::vector<std::byte> rec(RecordLayout::BytesFor(n));
    std::string payload;
    for (size_t i = 0; i < n; ++i) {
      payload.push_back(static_cast<char>('a' + i % 26));
    }
    RecordLayout::Init(rec.data(), 1, 2, 2, payload.data(), n);
    std::string out(n, '\0');
    RecordLayout::GatherValue(rec.data(), out.data(), n);
    EXPECT_EQ(out, payload) << "value_size=" << n;
  }
}

TEST(RecordLayout, ScatterDoesNotClobberVersionSlots) {
  const size_t n = 200;  // 4 lines
  std::vector<std::byte> rec(RecordLayout::BytesFor(n));
  std::vector<char> payload(n, 'Z');
  RecordLayout::Init(rec.data(), 1, 2, 0x1234567890ull, payload.data(), n);
  // Each line > 0 must start with the low 16 bits of seq, not payload bytes.
  const uint16_t expect = static_cast<uint16_t>(0x1234567890ull);
  for (uint32_t line = 1; line < RecordLayout::LinesFor(n); ++line) {
    uint16_t v;
    std::memcpy(&v, rec.data() + line * kCacheLineSize, 2);
    EXPECT_EQ(v, expect);
  }
}

TEST(RecordLayout, VersionConsistencyDetectsTornSnapshot) {
  const size_t n = 150;  // 3 lines
  std::vector<std::byte> rec(RecordLayout::BytesFor(n));
  std::vector<char> payload(n, 'A');
  RecordLayout::Init(rec.data(), 1, 2, 10, payload.data(), n);
  EXPECT_TRUE(RecordLayout::VersionsConsistent(rec.data(), n));

  // Simulate a torn remote READ: line 2 still carries the old version.
  const uint16_t stale = 8;
  std::memcpy(rec.data() + 2 * kCacheLineSize, &stale, 2);
  EXPECT_FALSE(RecordLayout::VersionsConsistent(rec.data(), n));

  // Once the writer finishes stamping, the snapshot is consistent again.
  RecordLayout::SetVersions(rec.data(), n, 10);
  EXPECT_TRUE(RecordLayout::VersionsConsistent(rec.data(), n));
}

TEST(RecordLayout, SingleLineRecordAlwaysConsistent) {
  std::vector<std::byte> rec(RecordLayout::BytesFor(16));
  RecordLayout::Init(rec.data(), 1, 2, 99, nullptr, 16);
  EXPECT_TRUE(RecordLayout::VersionsConsistent(rec.data(), 16));
}

TEST(LockWord, EncodesOwnerMachine) {
  EXPECT_FALSE(LockWord::IsLocked(LockWord::kUnlocked));
  const uint64_t w = LockWord::Make(/*node=*/3, /*worker=*/7);
  EXPECT_TRUE(LockWord::IsLocked(w));
  EXPECT_EQ(LockWord::OwnerNode(w), 3u);
  // Node 0, worker 0 must still be distinguishable from unlocked.
  EXPECT_TRUE(LockWord::IsLocked(LockWord::Make(0, 0)));
  EXPECT_EQ(LockWord::OwnerNode(LockWord::Make(0, 0)), 0u);
}

}  // namespace
}  // namespace drtmr::store
