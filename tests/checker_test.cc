// Unit tests for the offline serializability checker over hand-built
// histories: the version-chain rules, each edge type (WR/WW/RW), cycle
// detection, and the expect_complete relaxation used for kill runs.
#include <gtest/gtest.h>

#include "src/chk/checker.h"

namespace drtmr::chk {
namespace {

constexpr uint32_t kTab = 1;
constexpr uint64_t kX = 100;
constexpr uint64_t kY = 200;

TxnRec Txn(uint64_t id, std::vector<AccessRec> reads, std::vector<AccessRec> writes,
           bool read_only = false) {
  TxnRec t;
  t.txn_id = id;
  t.commit_ns = id * 10;  // commit order == id order, for readable tests
  t.read_only = read_only;
  t.reads = std::move(reads);
  t.writes = std::move(writes);
  return t;
}

TEST(CheckerTest, EmptyHistoryIsSerializable) {
  const CheckResult r = CheckSerializability({});
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.num_txns, 0u);
}

TEST(CheckerTest, CleanChainIsSerializable) {
  // Seed (version 2) -> T1 installs 4 -> T2 installs 6; T3 reads the head.
  const std::vector<TxnRec> h = {
      Txn(1, {{kTab, kX, 2}}, {{kTab, kX, 4}}),
      Txn(2, {{kTab, kX, 4}}, {{kTab, kX, 6}}),
      Txn(3, {{kTab, kX, 6}}, {}, /*read_only=*/true),
  };
  const CheckResult r = CheckSerializability(h);
  EXPECT_TRUE(r.ok) << r.Summary();
  EXPECT_EQ(r.num_txns, 3u);
  EXPECT_EQ(r.num_keys, 1u);
  EXPECT_GT(r.num_edges, 0u);
}

TEST(CheckerTest, SeedReadsAreNotDirty) {
  // Versions at or below the store's install seq (2) are pre-history state.
  const std::vector<TxnRec> h = {
      Txn(1, {{kTab, kX, 2}, {kTab, kY, 2}}, {}, true),
      Txn(2, {{kTab, kY, 2}}, {{kTab, kY, 4}}),
  };
  EXPECT_TRUE(CheckSerializability(h).ok);
}

TEST(CheckerTest, DuplicateInstalledVersionIsLostUpdate) {
  const std::vector<TxnRec> h = {
      Txn(1, {{kTab, kX, 2}}, {{kTab, kX, 4}}),
      Txn(2, {{kTab, kX, 2}}, {{kTab, kX, 4}}),
  };
  const CheckResult r = CheckSerializability(h);
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.violations.empty());
  // A lost update is structural: it fails even when the history may be
  // incomplete.
  CheckOptions lax;
  lax.expect_complete = false;
  EXPECT_FALSE(CheckSerializability(h, lax).ok);
}

TEST(CheckerTest, StaleReadMakesRwWwCycle) {
  // T2 read version 2 of x but installed 6 over T1's 4: T2 must precede T1
  // (it missed T1's write) and follow it (its write came later) — a cycle.
  const std::vector<TxnRec> h = {
      Txn(1, {}, {{kTab, kX, 4}}),
      Txn(2, {{kTab, kX, 2}}, {{kTab, kX, 6}}),
  };
  const CheckResult r = CheckSerializability(h);
  EXPECT_FALSE(r.ok) << r.Summary();
  EXPECT_FALSE(r.cycle.empty());
}

TEST(CheckerTest, WriteSkewIsPureRwCycle) {
  // Classic write skew: disjoint write sets, crossing stale reads. Balance
  // conservation oracles cannot see this; the dependency graph can.
  const std::vector<TxnRec> h = {
      Txn(1, {{kTab, kX, 2}}, {{kTab, kY, 4}}),
      Txn(2, {{kTab, kY, 2}}, {{kTab, kX, 4}}),
  };
  const CheckResult r = CheckSerializability(h);
  EXPECT_FALSE(r.ok) << r.Summary();
  EXPECT_EQ(r.cycle.size(), 2u);
}

TEST(CheckerTest, WriteChainGapOnlyFailsCompleteHistories) {
  // 4 -> 8 skips a version: a lost write in a complete history, but expected
  // noise when a kill plan may have swallowed the 6-writer's record.
  const std::vector<TxnRec> h = {
      Txn(1, {}, {{kTab, kX, 4}}),
      Txn(2, {{kTab, kX, 8}}, {{kTab, kX, 10}}),
      Txn(3, {}, {{kTab, kX, 8}}),
  };
  EXPECT_FALSE(CheckSerializability(h).ok);
  CheckOptions lax;
  lax.expect_complete = false;
  EXPECT_TRUE(CheckSerializability(h, lax).ok);
}

TEST(CheckerTest, UnknownReadVersionOnlyFailsCompleteHistories) {
  const std::vector<TxnRec> h = {
      Txn(1, {{kTab, kX, 8}}, {}, true),
  };
  EXPECT_FALSE(CheckSerializability(h).ok);
  CheckOptions lax;
  lax.expect_complete = false;
  EXPECT_TRUE(CheckSerializability(h, lax).ok);
}

TEST(CheckerTest, ReadOnlySnapshotOrdersBetweenWriters) {
  // RO saw x after T1 but y before T2: WR T1->RO, RW RO->T2 — acyclic.
  const std::vector<TxnRec> h = {
      Txn(1, {}, {{kTab, kX, 4}}),
      Txn(2, {}, {{kTab, kY, 4}}),
      Txn(3, {{kTab, kX, 4}, {kTab, kY, 2}}, {}, true),
  };
  const CheckResult r = CheckSerializability(h);
  EXPECT_TRUE(r.ok) << r.Summary();
}

TEST(CheckerTest, UnreplicatedStepOneChains) {
  // Without replication commits bump seq by 1: 2 -> 3 -> 4.
  CheckOptions opts;
  opts.version_step = 1;
  const std::vector<TxnRec> h = {
      Txn(1, {{kTab, kX, 2}}, {{kTab, kX, 3}}),
      Txn(2, {{kTab, kX, 3}}, {{kTab, kX, 4}}),
  };
  EXPECT_TRUE(CheckSerializability(h, opts).ok);
  // A same-size gap is still a gap.
  const std::vector<TxnRec> gap = {
      Txn(1, {{kTab, kX, 2}}, {{kTab, kX, 3}}),
      Txn(2, {}, {{kTab, kX, 5}}),
  };
  EXPECT_FALSE(CheckSerializability(gap, opts).ok);
}

TEST(CheckerTest, SameKeyDifferentTablesAreIndependent) {
  const std::vector<TxnRec> h = {
      Txn(1, {}, {{1, kX, 4}}),
      Txn(2, {}, {{2, kX, 4}}),
  };
  const CheckResult r = CheckSerializability(h);
  EXPECT_TRUE(r.ok) << r.Summary();
  EXPECT_EQ(r.num_keys, 2u);
}

}  // namespace
}  // namespace drtmr::chk
