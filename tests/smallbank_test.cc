// Per-type semantics of the SmallBank workload: amalgamate empties both
// source accounts, send-payment respects funds, deposits/withdrawals tally
// into the external-delta invariant, and the hot-set skew is visible.
#include "src/workload/smallbank.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/txn/transaction.h"
#include "src/workload/driver.h"

namespace drtmr::workload {
namespace {

class SmallBankTest : public ::testing::Test {
 protected:
  SmallBankTest() {
    cfg_.num_nodes = 2;
    cfg_.workers_per_node = 3;
    cfg_.memory_bytes = 16 << 20;
    cfg_.log_bytes = 1 << 20;
    cluster_ = std::make_unique<cluster::Cluster>(cfg_);
    catalog_ = std::make_unique<store::Catalog>(cluster_.get());
    pmap_ = std::make_unique<cluster::PartitionMap>(2);
    txn::TxnConfig tcfg;
    engine_ = std::make_unique<txn::TxnEngine>(cluster_.get(), catalog_.get(), tcfg);
    sc_.accounts_per_node = 100;
    sc_.hot_accounts = 10;
    sc_.cross_machine_pct = 20;
    bank_ = std::make_unique<SmallBankWorkload>(engine_.get(), pmap_.get(), sc_);
    bank_->CreateTables();
    bank_->Load(nullptr);
    engine_->StartServices();
  }

  ~SmallBankTest() override { engine_->StopServices(); }

  int64_t Balance(uint32_t table_id, uint64_t key) {
    store::Table* t = catalog_->table(table_id);
    const uint32_t node = bank_->NodeOfAccount(key);
    const uint64_t off = t->hash(node)->Lookup(nullptr, key);
    EXPECT_NE(off, 0u);
    std::vector<std::byte> rec(t->record_bytes());
    cluster_->node(node)->bus()->Read(nullptr, off, rec.data(), rec.size());
    BankAccountRow row;
    store::RecordLayout::GatherValue(rec.data(), &row, sizeof(row));
    return row.balance;
  }

  cluster::ClusterConfig cfg_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<store::Catalog> catalog_;
  std::unique_ptr<cluster::PartitionMap> pmap_;
  std::unique_ptr<txn::TxnEngine> engine_;
  SmallBankConfig sc_;
  std::unique_ptr<SmallBankWorkload> bank_;
};

TEST_F(SmallBankTest, LoadEstablishesInvariant) {
  EXPECT_EQ(bank_->TotalBalance(), bank_->initial_total());
  EXPECT_EQ(bank_->initial_total(), 2 * 100 * 20000);
  EXPECT_EQ(bank_->external_delta(), 0);
}

TEST_F(SmallBankTest, MixRunPreservesInvariantWithExternalDelta) {
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  txn::Transaction txn(engine_.get(), ctx);
  FastRand rng(11);
  uint64_t by_type[kSmallBankTxnTypes] = {};
  for (int i = 0; i < 1500; ++i) {
    by_type[bank_->RunOne(ctx, &txn, &rng)]++;
  }
  EXPECT_EQ(bank_->TotalBalance(), bank_->initial_total() + bank_->external_delta());
  for (uint32_t t = 0; t < kSmallBankTxnTypes; ++t) {
    EXPECT_GT(by_type[t], 0u) << "type " << t << " never ran";
  }
  // The money-moving types must have actually moved the external tally.
  EXPECT_NE(bank_->external_delta(), 0);
}

TEST_F(SmallBankTest, AmalgamateZeroesSource) {
  // Drive one distributed amalgamate through the public API and verify it
  // empties both source accounts into the destination atomically.
  sim::ThreadContext* ctx = cluster_->node(0)->context(1);
  txn::Transaction txn(engine_.get(), ctx);
  store::Table* checking = catalog_->table(SmallBankWorkload::kCheckingTab);
  store::Table* savings = catalog_->table(SmallBankWorkload::kSavingsTab);
  const uint64_t a1 = bank_->AccountKey(0, 3);
  const uint64_t a2 = bank_->AccountKey(1, 4);
  const int64_t before = Balance(SmallBankWorkload::kCheckingTab, a1) +
                         Balance(SmallBankWorkload::kSavingsTab, a1) +
                         Balance(SmallBankWorkload::kCheckingTab, a2);
  while (true) {
    txn.Begin();
    BankAccountRow s1{}, c1{}, c2{};
    ASSERT_EQ(txn.Read(savings, 0, a1, &s1), Status::kOk);
    ASSERT_EQ(txn.Read(checking, 0, a1, &c1), Status::kOk);
    ASSERT_EQ(txn.Read(checking, 1, a2, &c2), Status::kOk);
    c2.balance += s1.balance + c1.balance;
    s1.balance = 0;
    c1.balance = 0;
    ASSERT_EQ(txn.Write(savings, 0, a1, &s1), Status::kOk);
    ASSERT_EQ(txn.Write(checking, 0, a1, &c1), Status::kOk);
    ASSERT_EQ(txn.Write(checking, 1, a2, &c2), Status::kOk);
    if (txn.Commit() == Status::kOk) {
      break;
    }
  }
  EXPECT_EQ(Balance(SmallBankWorkload::kCheckingTab, a1), 0);
  EXPECT_EQ(Balance(SmallBankWorkload::kSavingsTab, a1), 0);
  EXPECT_EQ(Balance(SmallBankWorkload::kCheckingTab, a2), before);
}

TEST_F(SmallBankTest, HotSetSkewIsVisible) {
  // With hot_pct=90 and 10 hot accounts of 100, hot accounts must attract far
  // more activity than cold ones. Run deposits only and compare balances.
  sim::ThreadContext* ctx = cluster_->node(0)->context(2);
  txn::Transaction txn(engine_.get(), ctx);
  store::Table* checking = catalog_->table(SmallBankWorkload::kCheckingTab);
  FastRand rng(7);
  int64_t hot_delta = 0, cold_delta = 0;
  for (int i = 0; i < 800; ++i) {
    const uint64_t idx = rng.Percent(90) ? rng.Uniform(10) : rng.Uniform(100);
    const uint64_t key = bank_->AccountKey(0, idx);
    while (true) {
      txn.Begin();
      BankAccountRow c{};
      if (txn.Read(checking, 0, key, &c) != Status::kOk) {
        txn.UserAbort();
        continue;
      }
      c.balance += 1;
      if (txn.Write(checking, 0, key, &c) != Status::kOk) {
        txn.UserAbort();
        continue;
      }
      if (txn.Commit() == Status::kOk) {
        break;
      }
    }
    if (idx < 10) {
      hot_delta++;
    } else {
      cold_delta++;
    }
  }
  EXPECT_GT(hot_delta, cold_delta * 3);
}

}  // namespace
}  // namespace drtmr::workload
