// Full-cluster-failure durability (§5.2): every committed record and every
// NVM log slot survives a snapshot/restore cycle (battery-backed DRAM
// model). After restarting the whole cluster, data is transactionally
// readable, pending log entries drain into fresh backup stores, and new
// transactions run against the restored state.
#include "src/cluster/snapshot.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "src/rep/primary_backup.h"
#include "src/store/record.h"
#include "src/txn/transaction.h"
#include "src/txn/txn_engine.h"

namespace drtmr::cluster {
namespace {

struct Cell {
  int64_t value;
  uint64_t pad[6];
};

constexpr uint32_t kNodes = 3;
constexpr uint32_t kTable = 1;

ClusterConfig MakeConfig() {
  ClusterConfig cfg;
  cfg.num_nodes = kNodes;
  cfg.workers_per_node = 2;
  cfg.memory_bytes = 8 << 20;
  cfg.log_bytes = 2 << 20;
  return cfg;
}

store::Table* MakeTable(store::Catalog* catalog) {
  store::TableOptions opt;
  opt.value_size = sizeof(Cell);
  opt.hash_buckets = 128;
  return catalog->CreateTable(kTable, opt);
}

// Parameterized over the commit path (false = classic two-verb, true =
// GLOB-fused lock+validate): durability must hold however the data was
// committed, and a snapshot written by either path restores under the same.
class DurabilityModes : public ::testing::TestWithParam<bool> {};

TEST_P(DurabilityModes, FullClusterRestartPreservesCommittedData) {
  const bool fused = GetParam();
  // Param-specific directory: ctest runs both instances concurrently.
  const std::string dir =
      std::filesystem::temp_directory_path() /
      (fused ? "drtmr_snapshot_test_fused" : "drtmr_snapshot_test_twoverb");
  std::filesystem::remove_all(dir);
  ClusterConfig cfg = MakeConfig();
  if (fused) {
    cfg.atomicity = sim::AtomicityLevel::kGlob;
  }

  // --- life before the power failure ---
  {
    Cluster cluster(cfg);
    store::Catalog catalog(&cluster);
    store::Table* table = MakeTable(&catalog);
    rep::RepConfig rcfg;
    rcfg.replicas = 3;
    rep::PrimaryBackupReplicator replicator(&cluster, rcfg);
    txn::TxnConfig tcfg;
    tcfg.replication = true;
    tcfg.fused_seq_lock = fused;
    txn::TxnEngine engine(&cluster, &catalog, tcfg, nullptr, &replicator);
    engine.StartServices();
    for (uint64_t k = 1; k <= 12; ++k) {
      Cell c{100, {}};
      ASSERT_EQ(table->hash(k % kNodes)
                    ->Insert(cluster.node(k % kNodes)->context(0), k, &c, nullptr),
                Status::kOk);
    }
    // Committed, replicated updates (log slots land in remote NVM rings).
    sim::ThreadContext* ctx = cluster.node(0)->context(0);
    txn::Transaction txn(&engine, ctx);
    for (uint64_t k = 1; k <= 12; ++k) {
      while (true) {
        txn.Begin();
        Cell c{};
        ASSERT_EQ(txn.Read(table, k % kNodes, k, &c), Status::kOk);
        c.value = 100 + static_cast<int64_t>(k);
        ASSERT_EQ(txn.Write(table, k % kNodes, k, &c), Status::kOk);
        if (txn.Commit() == Status::kOk) {
          break;
        }
      }
    }
    engine.StopServices();
    ASSERT_EQ(SaveClusterSnapshot(&cluster, dir), Status::kOk);
    // Cluster destructs here: the "power failure".
  }

  // --- restart: same configuration, same deterministic table creation ---
  {
    Cluster cluster(cfg);
    store::Catalog catalog(&cluster);
    store::Table* table = MakeTable(&catalog);
    ASSERT_EQ(LoadClusterSnapshot(&cluster, dir), Status::kOk);

    rep::RepConfig rcfg;
    rcfg.replicas = 3;
    rep::PrimaryBackupReplicator replicator(&cluster, rcfg);
    txn::TxnConfig tcfg;
    tcfg.replication = true;
    tcfg.fused_seq_lock = fused;
    txn::TxnEngine engine(&cluster, &catalog, tcfg, nullptr, &replicator);
    engine.StartServices();

    // Every committed value is transactionally readable.
    sim::ThreadContext* ctx = cluster.node(1)->context(0);
    txn::Transaction ro(&engine, ctx);
    for (uint64_t k = 1; k <= 12; ++k) {
      while (true) {
        ro.Begin(/*read_only=*/true);
        Cell c{};
        ASSERT_EQ(ro.Read(table, k % kNodes, k, &c), Status::kOk) << "key " << k;
        if (ro.Commit() == Status::kOk) {
          EXPECT_EQ(c.value, 100 + static_cast<int64_t>(k)) << "key " << k;
          break;
        }
      }
    }

    // The restored NVM log rings drain into the fresh backup stores.
    for (uint32_t n = 0; n < kNodes; ++n) {
      replicator.DrainNode(cluster.node(n)->tool_context(), n);
    }
    uint64_t backed_up = 0;
    for (uint32_t n = 0; n < kNodes; ++n) {
      backed_up += replicator.backup_store(n)->size();
    }
    EXPECT_GT(backed_up, 0u) << "restored logs must reconstruct backup copies";

    // And the allocator watermark was restored: new inserts do not clobber
    // restored records.
    txn::Transaction txn(&engine, cluster.node(0)->context(1));
    txn.Begin();
    Cell fresh{777, {}};
    ASSERT_EQ(txn.Insert(table, 0, 500, &fresh), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
    for (uint64_t k = 1; k <= 12; ++k) {
      while (true) {
        ro.Begin(true);
        Cell c{};
        ASSERT_EQ(ro.Read(table, k % kNodes, k, &c), Status::kOk);
        if (ro.Commit() == Status::kOk) {
          EXPECT_EQ(c.value, 100 + static_cast<int64_t>(k));
          break;
        }
      }
    }
    engine.StopServices();
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(CommitPath, DurabilityModes, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "fused" : "twoverb";
                         });

TEST(DurabilityTest, LoadRejectsMismatchedConfiguration) {
  const std::string dir = std::filesystem::temp_directory_path() / "drtmr_snapshot_bad";
  std::filesystem::remove_all(dir);
  {
    Cluster cluster(MakeConfig());
    ASSERT_EQ(SaveClusterSnapshot(&cluster, dir), Status::kOk);
  }
  {
    ClusterConfig cfg = MakeConfig();
    cfg.memory_bytes = 4 << 20;  // different region size
    Cluster cluster(cfg);
    EXPECT_EQ(LoadClusterSnapshot(&cluster, dir), Status::kInvalid);
  }
  {
    Cluster cluster(MakeConfig());
    EXPECT_EQ(LoadClusterSnapshot(&cluster, "/nonexistent-dir"), Status::kNotFound);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace drtmr::cluster
