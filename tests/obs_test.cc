// Unit tests for the observability layer: Histogram edge cases (including the
// zero-sample sentinel fix), sharded-registry merge correctness under
// concurrent writers, keyed counters, trace-ring bounds, and JSON output.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/phase_timer.h"
#include "src/sim/thread_context.h"
#include "src/util/histogram.h"

namespace drtmr {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// ---------------- Histogram ----------------

TEST(HistogramTest, EmptyHistogramReportsZeroes) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Percentile(0), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Percentile(100), 0u);
}

TEST(HistogramTest, SingleSamplePercentiles) {
  Histogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  // Every percentile of a single sample is that sample (clamped to
  // [min, max], so bucket granularity cannot leak through).
  EXPECT_EQ(h.Percentile(0), 1000u);
  EXPECT_EQ(h.Percentile(50), 1000u);
  EXPECT_EQ(h.Percentile(100), 1000u);
}

TEST(HistogramTest, GenuineZeroSampleIsNotConfusedWithEmpty) {
  Histogram h;
  h.Record(0);
  EXPECT_FALSE(h.empty());
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.Percentile(100), 0u);

  // A 0 ns sample recorded after larger ones must pull min down to 0.
  Histogram h2;
  h2.Record(500);
  h2.Record(0);
  EXPECT_EQ(h2.min(), 0u);
  EXPECT_EQ(h2.Percentile(0), 0u);
}

TEST(HistogramTest, MergePreservesZeroMin) {
  // The historical bug: Merge() took min(other.min_, min_) without regard to
  // emptiness, so merging h{0ns} into an empty histogram (whose min_ sentinel
  // is 0) "worked" by accident, but merging an *empty* histogram into h{10ns}
  // dragged min to the 0 sentinel — and a genuine 0 ns min could not be told
  // apart from "no samples".
  Histogram ten;
  ten.Record(10);
  Histogram empty;
  ten.Merge(empty);
  EXPECT_EQ(ten.count(), 1u);
  EXPECT_EQ(ten.min(), 10u);  // empty histogram must not clobber the min

  Histogram zero;
  zero.Record(0);
  ten.Merge(zero);
  EXPECT_EQ(ten.count(), 2u);
  EXPECT_EQ(ten.min(), 0u);  // genuine 0 ns min survives the merge

  Histogram other;
  other.Record(7);
  other.Merge(ten);
  EXPECT_EQ(other.min(), 0u);
  EXPECT_EQ(other.max(), 10u);
  EXPECT_EQ(other.count(), 3u);
}

TEST(HistogramTest, MergeOfTwoEmptiesStaysEmpty) {
  Histogram a, b;
  a.Merge(b);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.min(), 0u);
}

TEST(HistogramTest, PercentilesBracketedByMinAndMax) {
  Histogram h;
  for (uint64_t v = 100; v <= 100000; v += 77) {
    h.Record(v);
  }
  EXPECT_EQ(h.Percentile(0), h.min());
  EXPECT_EQ(h.Percentile(100), h.max());
  const uint64_t p50 = h.Percentile(50);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p50, h.max());
  EXPECT_LE(h.Percentile(50), h.Percentile(90));
  EXPECT_LE(h.Percentile(90), h.Percentile(99));
}

TEST(HistogramTest, BucketRoundTrip) {
  for (uint64_t ns : {0ull, 1ull, 15ull, 16ull, 17ull, 1000ull, 123456789ull, 1ull << 40}) {
    const size_t b = Histogram::BucketFor(ns);
    ASSERT_LT(b, Histogram::kNumBuckets);
    EXPECT_GE(Histogram::BucketUpperBound(b), ns);
  }
}

// ---------------- Registry ----------------

class ObsRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::Global().Reset();
    obs::Registry::Global().Enable(true);
  }
  void TearDown() override {
    obs::Registry::Global().Enable(false);
    obs::Registry::Global().EnableTrace(0);
    obs::Registry::Global().Reset();
  }
};

TEST_F(ObsRegistryTest, ConcurrentWritersMergeExactly) {
  constexpr uint32_t kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      obs::Registry& reg = obs::Registry::Global();
      for (uint64_t i = 0; i < kPerThread; ++i) {
        reg.AddCount(obs::Counter::kTxnCommit);
        reg.AddPhase(obs::Phase::kLock, i % 100);
        reg.AddVerb(obs::Verb::kRead, t, (t + 1) % kThreads, 64);
        reg.AddHtmAbort(/*code=*/1, obs::HtmSite::kCommit);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  const obs::Snapshot snap = obs::Registry::Global().Collect();
  EXPECT_EQ(snap.counter(obs::Counter::kTxnCommit), kThreads * kPerThread);

  const Histogram& lock = snap.phase(obs::Phase::kLock);
  EXPECT_EQ(lock.count(), kThreads * kPerThread);
  // Each thread contributes sum(0..99) * (kPerThread / 100).
  EXPECT_EQ(lock.sum(), kThreads * (kPerThread / 100) * 4950);
  EXPECT_EQ(lock.min(), 0u);
  EXPECT_EQ(lock.max(), 99u);

  // One fabric key per thread (distinct src), each with exact ops/bytes.
  ASSERT_EQ(snap.fabric.size(), kThreads);
  for (const auto& k : snap.fabric) {
    EXPECT_EQ(k.ops, kPerThread);
    EXPECT_EQ(k.bytes, kPerThread * 64);
  }
  EXPECT_EQ(snap.FabricOps(), kThreads * kPerThread);
  EXPECT_EQ(snap.FabricBytes(), kThreads * kPerThread * 64);

  // All HTM aborts collapse onto one (code, site) key.
  ASSERT_EQ(snap.htm_aborts.size(), 1u);
  EXPECT_EQ(snap.htm_aborts[0].ops, kThreads * kPerThread);
  EXPECT_EQ(snap.HtmAborts(), kThreads * kPerThread);
}

TEST_F(ObsRegistryTest, ShardsAreReusedAcrossShortLivedThreads) {
  const size_t before = obs::Registry::Global().num_shards();
  for (int i = 0; i < 16; ++i) {
    std::thread([] { obs::Count(obs::Counter::kTxnCommit); }).join();
  }
  // Sequential threads release their shard on exit, so the pool must not grow
  // by one per thread.
  EXPECT_LE(obs::Registry::Global().num_shards(), before + 1);
  const obs::Snapshot snap = obs::Registry::Global().Collect();
  EXPECT_EQ(snap.counter(obs::Counter::kTxnCommit), 16u);
}

TEST_F(ObsRegistryTest, DisabledHooksRecordNothing) {
  obs::Registry::Global().Enable(false);
  obs::Count(obs::Counter::kTxnCommit);
  obs::PhaseSample(obs::Phase::kLock, 123);
  obs::CountVerb(obs::Verb::kWrite, 0, 1, 64);
  obs::CountHtmAbort(1, obs::HtmSite::kCommit);
  sim::ThreadContext ctx(0, 0, /*seed=*/1);
  {
    obs::PhaseTimer timer(&ctx, obs::Phase::kValidation);
    ctx.Charge(500);
  }
  const obs::Snapshot snap = obs::Registry::Global().Collect();
  EXPECT_EQ(snap.counter(obs::Counter::kTxnCommit), 0u);
  EXPECT_TRUE(snap.phase(obs::Phase::kLock).empty());
  EXPECT_TRUE(snap.phase(obs::Phase::kValidation).empty());
  EXPECT_TRUE(snap.fabric.empty());
  EXPECT_TRUE(snap.htm_aborts.empty());
}

TEST_F(ObsRegistryTest, PhaseTimerChargesVirtualTime) {
  sim::ThreadContext ctx(2, 3, /*seed=*/7);
  ctx.Charge(1000);
  {
    obs::PhaseTimer timer(&ctx, obs::Phase::kHtmCommit);
    ctx.Charge(250);
  }
  {
    obs::PhaseTimer timer(&ctx, obs::Phase::kHtmCommit);
    ctx.Charge(750);
    timer.Stop();
    ctx.Charge(10000);  // after Stop(): not attributed
  }
  const obs::Snapshot snap = obs::Registry::Global().Collect();
  const Histogram& h = snap.phase(obs::Phase::kHtmCommit);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.sum(), 1000u);
  EXPECT_EQ(h.min(), 250u);
  EXPECT_EQ(h.max(), 750u);
}

TEST_F(ObsRegistryTest, TraceRingIsBoundedAndCountsDrops) {
  constexpr uint32_t kCap = 16;
  constexpr uint32_t kEvents = 40;
  obs::Registry& reg = obs::Registry::Global();
  reg.EnableTrace(kCap);
  for (uint32_t i = 0; i < kEvents; ++i) {
    reg.AddTrace(obs::TraceName::kTxn, /*node=*/0, /*worker=*/0, /*ts_ns=*/i * 100,
                 /*dur_ns=*/50, /*arg=*/1);
  }
  const obs::Snapshot snap = reg.Collect();
  EXPECT_EQ(snap.counter(obs::Counter::kTraceDropped), kEvents - kCap);

  const std::string path = TempPath("obs_trace_ring.json");
  ASSERT_TRUE(reg.WriteChromeTrace(path));
  const std::string body = Slurp(path);
  ASSERT_FALSE(body.empty());
  EXPECT_EQ(body.front(), '[');
  EXPECT_EQ(body.substr(body.size() - 2), "]\n");
  // Only the newest kCap events survive, and the ring is emitted oldest-first
  // after the wrap.
  size_t n = 0;
  for (size_t pos = body.find("\"ph\""); pos != std::string::npos;
       pos = body.find("\"ph\"", pos + 1)) {
    ++n;
  }
  EXPECT_EQ(n, kCap);
  EXPECT_EQ(body.find("\"ts\":0.000"), std::string::npos);    // oldest events dropped
  EXPECT_NE(body.find("\"ts\":3.900"), std::string::npos);    // newest retained (39 * 100ns)
  EXPECT_NE(body.find("\"ts\":2.400"), std::string::npos);    // oldest retained (24 * 100ns)
}

TEST_F(ObsRegistryTest, ChromeTraceMixesSpansAndInstants) {
  obs::Registry& reg = obs::Registry::Global();
  reg.EnableTrace(64);
  reg.AddTrace(obs::TraceName::kTxn, 1, 2, 5000, 2000, 1);
  reg.AddTrace(obs::TraceName::kHtmAbort, 1, 2, 6000, 0, 3, /*instant=*/true);
  const std::string path = TempPath("obs_trace_mixed.json");
  ASSERT_TRUE(reg.WriteChromeTrace(path));
  const std::string body = Slurp(path);
  EXPECT_NE(body.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(body.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"txn\""), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"htm_abort\""), std::string::npos);
  EXPECT_NE(body.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(body.find("\"tid\":2"), std::string::npos);
}

TEST_F(ObsRegistryTest, SnapshotJsonContainsAllSections) {
  obs::Registry& reg = obs::Registry::Global();
  reg.AddCount(obs::Counter::kTxnCommit, 5);
  reg.AddPhase(obs::Phase::kExecution, 1234);
  reg.AddVerb(obs::Verb::kCas, 0, 1, 8);
  reg.AddHtmAbort(/*code=*/2, obs::HtmSite::kStore);
  const obs::Snapshot snap = reg.Collect();
  const std::string path = TempPath("obs_metrics.json");
  ASSERT_TRUE(snap.WriteJson(path));
  const std::string body = Slurp(path);
  EXPECT_NE(body.find("\"counters\""), std::string::npos);
  EXPECT_NE(body.find("\"txn_commit\": 5"), std::string::npos);
  EXPECT_NE(body.find("\"phases\""), std::string::npos);
  EXPECT_NE(body.find("\"execution\""), std::string::npos);
  EXPECT_NE(body.find("\"sum_ns\":1234"), std::string::npos);
  EXPECT_NE(body.find("\"htm_aborts\""), std::string::npos);
  EXPECT_NE(body.find("\"code\": \"capacity\""), std::string::npos);
  EXPECT_NE(body.find("\"site\": \"store\""), std::string::npos);
  EXPECT_NE(body.find("\"fabric\""), std::string::npos);
  EXPECT_NE(body.find("\"verb\": \"cas\""), std::string::npos);
}

TEST_F(ObsRegistryTest, ResetClearsEverything) {
  obs::Registry& reg = obs::Registry::Global();
  reg.EnableTrace(8);
  reg.AddCount(obs::Counter::kTxnCommit);
  reg.AddPhase(obs::Phase::kLock, 10);
  reg.AddVerb(obs::Verb::kRead, 0, 1, 64);
  reg.AddTrace(obs::TraceName::kTxn, 0, 0, 100, 50, 1);
  reg.Reset();
  const obs::Snapshot snap = reg.Collect();
  EXPECT_EQ(snap.counter(obs::Counter::kTxnCommit), 0u);
  EXPECT_TRUE(snap.phase(obs::Phase::kLock).empty());
  EXPECT_TRUE(snap.fabric.empty());
  const std::string path = TempPath("obs_trace_reset.json");
  ASSERT_TRUE(reg.WriteChromeTrace(path));
  const std::string body = Slurp(path);
  EXPECT_EQ(body.find("\"ph\""), std::string::npos);
}

}  // namespace
}  // namespace drtmr
