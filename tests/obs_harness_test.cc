// End-to-end observability test: runs a small SmallBank benchmark with
// metrics and tracing enabled and checks that the snapshot is coherent with
// the driver's own result — nonzero commits, per-phase virtual time summing
// to ~ the end-to-end latency sum, fabric traffic present, and both JSON
// artifacts well-formed.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "bench/harness.h"
#include "src/chk/protocol_analyzer.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"

namespace drtmr {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class ObsHarnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::Global().Reset();
    obs::Registry::Global().Enable(true);
    obs::Registry::Global().EnableTrace(1u << 12);
  }
  void TearDown() override {
    obs::Registry::Global().Enable(false);
    obs::Registry::Global().EnableTrace(0);
    obs::Registry::Global().Reset();
  }
};

TEST_F(ObsHarnessTest, SmallBankMetricsMatchDriverResult) {
  bench::SmallBankBenchConfig cfg;
  cfg.machines = 3;
  cfg.threads = 2;
  cfg.cross_pct = 10;
  cfg.accounts_per_node = 2000;
  cfg.hot_accounts = 100;
  cfg.txns_per_thread = 200;
  // No warmup: warmup transactions would record phases without contributing
  // to the driver's latency histogram, breaking the phase-sum comparison.
  cfg.warmup_per_thread = 0;
  const workload::DriverResult r = bench::RunSmallBankDrtmR(cfg);

  const uint64_t expected_txns = uint64_t{3} * 2 * 200;
  EXPECT_EQ(r.committed, expected_txns);

  const obs::Snapshot snap = obs::Registry::Global().Collect();

  // Every driver iteration ends in an engine commit or a business
  // (user) abort, e.g. an insufficient-funds send-payment; protocol aborts
  // retry within the iteration and add on top.
  EXPECT_GE(snap.counter(obs::Counter::kTxnCommit) + snap.counter(obs::Counter::kTxnAbortUser),
            expected_txns);
  EXPECT_GT(snap.counter(obs::Counter::kTxnCommit), 0u);

  // Every attempt (committed or aborted) passed through the execution phase.
  const Histogram& exec = snap.phase(obs::Phase::kExecution);
  EXPECT_GE(exec.count(), expected_txns);
  EXPECT_GT(exec.sum(), 0u);

  // Phases partition each transaction's virtual time: summed across the run
  // they must account for ~ the whole end-to-end latency sum. (Slack covers
  // per-iteration work outside Begin()..Commit(), e.g. parameter generation.)
  const uint64_t phase_sum = snap.PhaseSumNs();
  const uint64_t latency_sum = r.latency.sum();
  ASSERT_GT(latency_sum, 0u);
  EXPECT_LE(phase_sum, latency_sum);
  EXPECT_GE(static_cast<double>(phase_sum), 0.85 * static_cast<double>(latency_sum))
      << "phase sum " << phase_sum << " vs latency sum " << latency_sum;

  // Cross-machine SmallBank traffic must show up in the fabric matrix.
  EXPECT_GT(snap.FabricOps(), 0u);
  EXPECT_GT(snap.FabricBytes(), 0u);
  bool has_cas = false;
  for (const auto& k : snap.fabric) {
    if (static_cast<obs::Verb>((k.key >> 32) & 0xff) == obs::Verb::kCas) {
      has_cas = true;  // C.1 locking uses RDMA CAS
    }
  }
  EXPECT_TRUE(has_cas);
}

TEST_F(ObsHarnessTest, SmallBankJsonArtifactsAreWellFormed) {
  bench::SmallBankBenchConfig cfg;
  cfg.machines = 2;
  cfg.threads = 2;
  cfg.cross_pct = 10;
  cfg.accounts_per_node = 1000;
  cfg.hot_accounts = 100;
  cfg.txns_per_thread = 50;
  cfg.warmup_per_thread = 0;
  (void)bench::RunSmallBankDrtmR(cfg);

  const obs::Snapshot snap = obs::Registry::Global().Collect();
  const std::string metrics_path = std::string(::testing::TempDir()) + "/obs_hm_metrics.json";
  ASSERT_TRUE(snap.WriteJson(metrics_path));
  const std::string metrics = Slurp(metrics_path);
  EXPECT_NE(metrics.find("\"counters\""), std::string::npos);
  EXPECT_NE(metrics.find("\"txn_commit\""), std::string::npos);
  EXPECT_NE(metrics.find("\"phases\""), std::string::npos);
  EXPECT_NE(metrics.find("\"p99_ns\""), std::string::npos);
  EXPECT_NE(metrics.find("\"fabric\""), std::string::npos);
  EXPECT_EQ(metrics.front(), '{');

  const std::string trace_path = std::string(::testing::TempDir()) + "/obs_hm_trace.json";
  ASSERT_TRUE(obs::Registry::Global().WriteChromeTrace(trace_path));
  const std::string trace = Slurp(trace_path);
  ASSERT_GE(trace.size(), 2u);
  EXPECT_EQ(trace.front(), '[');
  EXPECT_EQ(trace.substr(trace.size() - 2), "]\n");
  // Transaction spans in the Chrome trace_event "complete" form.
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"txn\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"drtmr\""), std::string::npos);
}

TEST_F(ObsHarnessTest, DisabledObservabilityRecordsNothing) {
  // With the registry disabled every hook is a relaxed load and a branch: a
  // full benchmark run must leave the registry completely empty. (Individual
  // run timings are not compared: virtual-time results depend on real thread
  // interleavings through simulated HTM conflicts, so two runs are not
  // bit-identical — and recording charges no virtual time either way.)
  obs::Registry::Global().Enable(false);
  obs::Registry::Global().EnableTrace(0);
  obs::Registry::Global().Reset();
  bench::SmallBankBenchConfig cfg;
  cfg.machines = 2;
  cfg.threads = 2;
  cfg.accounts_per_node = 1000;
  cfg.hot_accounts = 100;
  cfg.txns_per_thread = 100;
  const workload::DriverResult r = bench::RunSmallBankDrtmR(cfg);
  EXPECT_EQ(r.committed, uint64_t{2} * 2 * 100);
  const obs::Snapshot snap = obs::Registry::Global().Collect();
  for (size_t i = 0; i < obs::kNumCounters; ++i) {
    EXPECT_EQ(snap.counters[i], 0u) << obs::CounterName(static_cast<obs::Counter>(i));
  }
  for (size_t i = 0; i < obs::kNumPhases; ++i) {
    EXPECT_TRUE(snap.phases[i].empty()) << obs::PhaseName(static_cast<obs::Phase>(i));
  }
  EXPECT_TRUE(snap.fabric.empty());
  EXPECT_TRUE(snap.htm_aborts.empty());
}

// ParseObsArgs edge cases: flag parsing must be order-stable (last repeat
// wins), leave unrecognized arguments for the bench's own parser, and keep a
// flagless run cost-free (registry stays disabled).
TEST(ParseObsArgsTest, NoFlagsLeavesObservabilityDisabled) {
  const char* argv[] = {"bench"};
  const bench::ObsOptions opt = bench::ParseObsArgs(1, const_cast<char**>(argv));
  EXPECT_FALSE(opt.enabled());
  EXPECT_FALSE(obs::Enabled());
  EXPECT_EQ(opt.slow_txns, 8u);  // default depth, armed only when enabled
}

TEST(ParseObsArgsTest, RepeatedFlagsLastOneWins) {
  const char* argv[] = {"bench", "--metrics-json=/tmp/a.json", "--slow-txns=4",
                        "--metrics-json=/tmp/b.json", "--slow-txns=16"};
  const bench::ObsOptions opt = bench::ParseObsArgs(5, const_cast<char**>(argv));
  EXPECT_EQ(opt.metrics_json, "/tmp/b.json");
  EXPECT_EQ(opt.slow_txns, 16u);
  EXPECT_TRUE(opt.enabled());
  obs::Registry::Global().Enable(false);
  obs::FlightRecorder::Global().Enable(0);
}

TEST(ParseObsArgsTest, UnrecognizedAndMalformedFlagsAreLeftAlone) {
  // Positional args, a bench-owned flag, and a near-miss spelling: none of
  // them may enable observability or perturb the defaults.
  const char* argv[] = {"bench", "6", "8", "--machines=4", "--metrics-json", "--slow-txns"};
  const bench::ObsOptions opt = bench::ParseObsArgs(6, const_cast<char**>(argv));
  EXPECT_FALSE(opt.enabled());
  EXPECT_TRUE(opt.metrics_json.empty());
  EXPECT_EQ(opt.slow_txns, 8u);
}

TEST(ParseObsArgsTest, ViolationsJsonImpliesAnalyze) {
  const char* argv[] = {"bench", "--violations-json=/tmp/v.json"};
  const bench::ObsOptions opt = bench::ParseObsArgs(2, const_cast<char**>(argv));
  EXPECT_TRUE(opt.analyze);
  EXPECT_EQ(opt.violations_json, "/tmp/v.json");
  chk::ProtocolAnalyzer::Global().Enable(false);
  obs::Registry::Global().Enable(false);
  obs::FlightRecorder::Global().Enable(0);
}

TEST(ParseObsArgsTest, SlowTxnsZeroDisablesTheFlightRecorder) {
  const char* argv[] = {"bench", "--print-stats", "--slow-txns=0"};
  const bench::ObsOptions opt = bench::ParseObsArgs(3, const_cast<char**>(argv));
  EXPECT_TRUE(opt.enabled());
  EXPECT_EQ(opt.slow_txns, 0u);
  EXPECT_FALSE(obs::FlightEnabled());
  obs::Registry::Global().Enable(false);
}

TEST(ParseObsArgsTest, WriteBenchJsonRejectsUnwritablePath) {
  const obs::Snapshot snap = obs::Registry::Global().Collect();
  EXPECT_FALSE(bench::WriteBenchJson("/nonexistent-dir/out.json", snap));
}

}  // namespace
}  // namespace drtmr
