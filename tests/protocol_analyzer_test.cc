// Teeth tests for the protocol conformance analyzer (DESIGN.md §11): each
// violation class is seeded deliberately through the real sim primitives
// (bus stores, lock CASes, HTM regions, epoch stamps) and must be detected;
// conforming runs — including analyzer-enabled torture seeds across fault
// plans — must report zero violations.
#include "src/chk/protocol_analyzer.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <memory>
#include <vector>

#include "src/chk/torture.h"
#include "src/cluster/node.h"
#include "src/sim/fabric.h"
#include "src/sim/htm.h"
#include "src/store/hash_store.h"
#include "src/store/record.h"

namespace drtmr::chk {
namespace {

using store::LockWord;
using store::RecordLayout;

// A value spanning two cache lines so the record carries a line-1 version
// word (seqlock torn-read checking is only meaningful for multi-line values).
constexpr size_t kValueSize = 80;

class ProtocolAnalyzerTest : public ::testing::Test {
 protected:
  ProtocolAnalyzerTest() {
    ProtocolAnalyzer::Global().Reset();
    ProtocolAnalyzer::Global().set_seq_parity(true);
    ProtocolAnalyzer::Global().Enable(true);
    cluster::ClusterConfig cfg;
    cfg.num_nodes = 2;
    cfg.workers_per_node = 4;
    cfg.memory_bytes = 16 << 20;
    cfg.log_bytes = 1 << 20;
    cluster_ = std::make_unique<cluster::Cluster>(cfg);
    store_ = std::make_unique<store::HashStore>(cluster_->node(0), 256, kValueSize);
    std::vector<std::byte> value(kValueSize, std::byte{7});
    EXPECT_EQ(store_->Insert(Ctx(0), 42, value.data(), &off_), Status::kOk);
    EXPECT_NE(off_, 0u);
  }

  ~ProtocolAnalyzerTest() override {
    ProtocolAnalyzer::Global().Enable(false);
    ProtocolAnalyzer::Global().Reset();
  }

  sim::ThreadContext* Ctx(uint32_t worker) { return cluster_->node(0)->context(worker); }
  sim::MemoryBus* Bus() { return cluster_->node(0)->bus(); }
  static ProtocolAnalyzer& A() { return ProtocolAnalyzer::Global(); }

  uint64_t ReadSeq() { return Bus()->ReadU64(nullptr, off_ + RecordLayout::kSeqOff); }

  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<store::HashStore> store_;
  uint64_t off_ = 0;
};

TEST_F(ProtocolAnalyzerTest, CleanCommittedStoreReportsNothing) {
  // Registration, lookups, and reads alone must not trip anything.
  std::vector<std::byte> rec(store_->record_bytes());
  Bus()->Read(Ctx(0), off_, rec.data(), rec.size());
  EXPECT_EQ(RecordLayout::GetKey(rec.data()), 42u);
  EXPECT_EQ(A().total_violations(), 0u);
}

TEST_F(ProtocolAnalyzerTest, DetectsUnlockedWrite) {
  // A plain store into the payload without the record lock, an HTM region,
  // or a seqlock window is exactly the race Eraser-style checking exists for.
  const uint64_t payload = off_ + RecordLayout::kKeyOff + 8;
  const uint64_t junk = 0xdeadbeef;
  Bus()->Write(Ctx(0), payload, &junk, sizeof(junk));
  EXPECT_GE(A().violations(ViolationClass::kUnlockedWrite), 1u);
}

TEST_F(ProtocolAnalyzerTest, LockedWriteIsSanctioned) {
  const uint64_t word = LockWord::Make(0, 1);
  uint64_t obs = 0;
  ASSERT_TRUE(Bus()->CasU64(Ctx(1), off_ + RecordLayout::kLockOff, 0, word, &obs));
  // Under the lock the owner may mutate payload and versions freely...
  const uint64_t seq = ReadSeq();
  std::vector<std::byte> image(store_->record_bytes());
  Bus()->Read(nullptr, off_, image.data(), image.size());
  RecordLayout::SetSeq(image.data(), seq + 2);
  RecordLayout::SetVersions(image.data(), kValueSize, seq + 2);
  Bus()->Write(Ctx(1), off_ + RecordLayout::kSeqOff,
               image.data() + RecordLayout::kSeqOff,
               image.size() - RecordLayout::kSeqOff);
  // ...and a consistent unlock closes the window without complaint.
  ASSERT_TRUE(Bus()->CasU64(Ctx(1), off_ + RecordLayout::kLockOff, word, 0, &obs));
  EXPECT_EQ(A().total_violations(), 0u);
}

TEST_F(ProtocolAnalyzerTest, DetectsSeqlockWindowClosedTorn) {
  // Take the lock, bump the seqnum WITHOUT restamping the line-1 version
  // word, and release: a one-sided READ can no longer detect the torn state,
  // which is precisely the §4.2 discipline breach.
  const uint64_t word = LockWord::Make(0, 1);
  uint64_t obs = 0;
  ASSERT_TRUE(Bus()->CasU64(Ctx(1), off_ + RecordLayout::kLockOff, 0, word, &obs));
  const uint64_t new_seq = ReadSeq() + 2;
  Bus()->WriteU64(Ctx(1), off_ + RecordLayout::kSeqOff, new_seq);
  ASSERT_TRUE(Bus()->CasU64(Ctx(1), off_ + RecordLayout::kLockOff, word, 0, &obs));
  EXPECT_GE(A().violations(ViolationClass::kSeqlockDiscipline), 1u);
}

TEST_F(ProtocolAnalyzerTest, DetectsTornSnapshotAccepted) {
  // A reader that accepts a snapshot whose line versions disagree with the
  // seqnum (instead of retrying per Fig. 6) is flagged at the acceptance hook.
  A().OnSnapshotAccepted(Bus(), off_, /*seq=*/6, /*lock_word=*/0,
                         /*versions_ok=*/false, /*lock_checked=*/true);
  EXPECT_GE(A().violations(ViolationClass::kSeqlockDiscipline), 1u);
}

TEST_F(ProtocolAnalyzerTest, DetectsLockedSnapshotAccepted) {
  A().OnSnapshotAccepted(Bus(), off_, /*seq=*/6, LockWord::Make(1, 2),
                         /*versions_ok=*/true, /*lock_checked=*/true);
  EXPECT_GE(A().violations(ViolationClass::kSeqlockDiscipline), 1u);
}

TEST_F(ProtocolAnalyzerTest, DetectsStrongAtomicityBreach) {
  // An active HTM region has the payload line in its write set; a conflicting
  // plain access that fails to doom it would break strong atomicity. The sim
  // bus always dooms before this check runs, so seed the breach by invoking
  // the check directly against the still-active region.
  sim::HtmTxn* htm = cluster_->node(0)->htm()->Begin(Ctx(0));
  ASSERT_NE(htm, nullptr);
  ASSERT_EQ(htm->WriteU64(off_ + RecordLayout::kKeyOff, 99), Status::kOk);
  A().CheckStrongAtomicity(Bus(), (off_ + RecordLayout::kKeyOff) / kCacheLineSize,
                           /*is_write=*/true, /*self=*/nullptr);
  EXPECT_GE(A().violations(ViolationClass::kStrongAtomicity), 1u);
  htm->Abort();
}

TEST_F(ProtocolAnalyzerTest, DetectsVerbInsideRegionNotAborting) {
  A().OnVerbInRegion(Ctx(0), /*aborted=*/false);
  EXPECT_GE(A().violations(ViolationClass::kStrongAtomicity), 1u);
  // The conforming outcome — region aborted by the no-I/O rule — is silent.
  const uint64_t before = A().total_violations();
  A().OnVerbInRegion(Ctx(0), /*aborted=*/true);
  EXPECT_EQ(A().total_violations(), before);
}

TEST_F(ProtocolAnalyzerTest, DetectsCrossThreadRelease) {
  const uint64_t owner = LockWord::Make(0, 1);
  uint64_t obs = 0;
  ASSERT_TRUE(Bus()->CasU64(Ctx(1), off_ + RecordLayout::kLockOff, 0, owner, &obs));
  // Worker 2 releases worker 1's lock without an announced steal.
  ASSERT_TRUE(Bus()->CasU64(Ctx(2), off_ + RecordLayout::kLockOff, owner, 0, &obs));
  EXPECT_GE(A().violations(ViolationClass::kLockHygiene), 1u);
}

TEST_F(ProtocolAnalyzerTest, AnnouncedStealIsSanctioned) {
  const uint64_t owner = LockWord::Make(0, 1);
  uint64_t obs = 0;
  ASSERT_TRUE(Bus()->CasU64(Ctx(1), off_ + RecordLayout::kLockOff, 0, owner, &obs));
  // §5.2 passive recovery: the steal is announced first, so it is not a
  // hygiene violation even though the releaser does not own the word.
  A().NoteDanglingSteal(Bus(), off_, owner);
  ASSERT_TRUE(Bus()->CasU64(Ctx(2), off_ + RecordLayout::kLockOff, owner, 0, &obs));
  EXPECT_EQ(A().violations(ViolationClass::kLockHygiene), 0u);
}

TEST_F(ProtocolAnalyzerTest, DetectsDoubleRelease) {
  const uint64_t owner = LockWord::Make(0, 1);
  uint64_t obs = 0;
  ASSERT_TRUE(Bus()->CasU64(Ctx(1), off_ + RecordLayout::kLockOff, 0, owner, &obs));
  ASSERT_TRUE(Bus()->CasU64(Ctx(1), off_ + RecordLayout::kLockOff, owner, 0, &obs));
  EXPECT_EQ(A().total_violations(), 0u);
  // The second unlock CAS finds the word already free: double release.
  EXPECT_FALSE(Bus()->CasU64(Ctx(1), off_ + RecordLayout::kLockOff, owner, 0, &obs));
  EXPECT_GE(A().violations(ViolationClass::kLockHygiene), 1u);
}

TEST_F(ProtocolAnalyzerTest, SweepFlagsLeakedLockAndHonorsExemption) {
  const uint64_t owner = LockWord::Make(1, 0);
  uint64_t obs = 0;
  ASSERT_TRUE(Bus()->CasU64(Ctx(1), off_ + RecordLayout::kLockOff, 0, owner, &obs));
  // An exempt owner (dead / ever-suspected) is expected debris...
  EXPECT_EQ(A().SweepLocks([](uint32_t node) { return node == 1; }), 0u);
  EXPECT_EQ(A().violations(ViolationClass::kLockHygiene), 0u);
  // ...a live owner's held lock at quiescence is a leak.
  EXPECT_EQ(A().SweepLocks([](uint32_t) { return false; }), 1u);
  EXPECT_GE(A().violations(ViolationClass::kLockHygiene), 1u);
  // The rule itself is shared with the torture oracle's real-memory sweep.
  EXPECT_TRUE(ProtocolAnalyzer::QuiescentLockLeaked(owner, [](uint32_t) { return false; }));
  EXPECT_FALSE(ProtocolAnalyzer::QuiescentLockLeaked(owner, [](uint32_t n) { return n == 1; }));
  EXPECT_FALSE(ProtocolAnalyzer::QuiescentLockLeaked(0, [](uint32_t) { return false; }));
}

TEST_F(ProtocolAnalyzerTest, DetectsStaleEpochVerbAdmission) {
  // Stamp epoch 5 into node 1's registered memory the same way membership
  // does (a CAS on the fabric epoch word); node 0 stays at epoch 0. A
  // mutating verb admitted from node 0 to node 1 should have been fenced.
  sim::MemoryBus* dst = cluster_->node(1)->bus();
  uint64_t obs = 0;
  ASSERT_TRUE(dst->CasU64(nullptr, sim::Fabric::kEpochWordOff, 0, 5, &obs));
  A().OnVerbAdmitted(Bus(), dst, /*src_node=*/0, /*dst_node=*/1, /*fencing_enabled=*/true);
  EXPECT_GE(A().violations(ViolationClass::kEpochFencing), 1u);
  // Same-epoch (or fencing-disabled) admission is conforming.
  const uint64_t before = A().total_violations();
  A().OnVerbAdmitted(Bus(), dst, 0, 1, /*fencing_enabled=*/false);
  A().OnVerbAdmitted(dst, Bus(), 1, 0, /*fencing_enabled=*/true);
  EXPECT_EQ(A().total_violations(), before);
}

TEST_F(ProtocolAnalyzerTest, ViolationsJsonRoundTrip) {
  A().OnSnapshotAccepted(Bus(), off_, 6, 0, /*versions_ok=*/false, true);
  ASSERT_GE(A().total_violations(), 1u);
  const std::vector<Violation> vs = A().CollectViolations();
  ASSERT_FALSE(vs.empty());
  EXPECT_EQ(vs[0].cls, ViolationClass::kSeqlockDiscipline);
  const std::string path = ::testing::TempDir() + "/violations.json";
  ASSERT_TRUE(A().WriteViolationsJson(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[4096] = {};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  ASSERT_GT(n, 0u);
  EXPECT_NE(std::strstr(buf, "seqlock-discipline"), nullptr);
  EXPECT_NE(std::strstr(buf, "torn snapshot"), nullptr);
}

// Conforming end-to-end runs: the full engine under the analyzer, across
// fault-plan families, must be violation-free. (The 64-seed sweep lives in
// scripts/check.sh; this keeps a representative slice in the test tier.)
struct TortureAnalyzeCase {
  TorturePlanKind kind;
  uint32_t replicas;
};

class ProtocolAnalyzerTortureTest
    : public ::testing::TestWithParam<TortureAnalyzeCase> {};

TEST_P(ProtocolAnalyzerTortureTest, ConformingRunHasNoViolations) {
  TortureOptions opt;
  opt.shape.nodes = 3;
  opt.shape.workers = 2;
  opt.shape.replicas = GetParam().replicas;
  opt.shape.txns_per_worker = 60;
  opt.seed = 7;
  opt.plan_kind = GetParam().kind;
  opt.analyze = true;
  const TortureResult r = RunTorture(opt);
  EXPECT_TRUE(r.ok) << r.Summary();
  EXPECT_EQ(r.violations, 0u) << r.Summary();
}

INSTANTIATE_TEST_SUITE_P(
    Plans, ProtocolAnalyzerTortureTest,
    ::testing::Values(TortureAnalyzeCase{TorturePlanKind::kClean, 3},
                      TortureAnalyzeCase{TorturePlanKind::kClean, 1},
                      TortureAnalyzeCase{TorturePlanKind::kDelay, 3},
                      TortureAnalyzeCase{TorturePlanKind::kHtmAbort, 3},
                      TortureAnalyzeCase{TorturePlanKind::kKill, 3}),
    [](const ::testing::TestParamInfo<TortureAnalyzeCase>& info) {
      std::string name = TorturePlanKindName(info.param.kind);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_r" + std::to_string(info.param.replicas);
    });

}  // namespace
}  // namespace drtmr::chk
