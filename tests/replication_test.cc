// Tests of the optimistic replication scheme (§5, Table 4) and failure
// recovery (§5.2).
#include "src/rep/primary_backup.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "src/rep/recovery.h"
#include "src/store/record.h"
#include "src/txn/transaction.h"
#include "src/txn/txn_engine.h"

namespace drtmr::rep {
namespace {

using store::RecordLayout;
using txn::SeqRules;

TEST(SeqRules, Table4Conditions) {
  // Plain OCC: exact match; updates +1.
  SeqRules occ{false};
  EXPECT_TRUE(occ.ReadValid(4, 4));
  EXPECT_FALSE(occ.ReadValid(4, 5));
  EXPECT_TRUE(occ.WriteValid(3));  // no parity rule
  EXPECT_EQ(occ.RemoteCommitSeq(4), 5u);

  // OCC + optimistic replication.
  SeqRules orr{true};
  // Read observed a committable record: current must be unchanged.
  EXPECT_TRUE(orr.ReadValid(4, 4));
  EXPECT_FALSE(orr.ReadValid(4, 5));  // writer committed locally, not replicated
  EXPECT_FALSE(orr.ReadValid(4, 6));
  // Read observed an uncommittable (odd) record: valid only once the writer
  // finished replication (seq moved to the next even value).
  EXPECT_FALSE(orr.ReadValid(5, 5));
  EXPECT_TRUE(orr.ReadValid(5, 6));
  EXPECT_FALSE(orr.ReadValid(5, 8));
  // Writes require committable records.
  EXPECT_TRUE(orr.WriteValid(6));
  EXPECT_FALSE(orr.WriteValid(7));
  // Increments: local commit makes it odd, makeup/remote make it even.
  EXPECT_EQ(orr.LocalCommitSeq(4), 5u);
  EXPECT_EQ(orr.MakeupSeq(4), 6u);
  EXPECT_EQ(orr.RemoteCommitSeq(4), 6u);
}

TEST(RingGeometryTest, HeaderWordNeverStraddlesACacheLine) {
  // The 8-byte consumed counter at header_offset() must stay within one cache
  // line: RDMA (and the simulated bus) is atomic only within a line, and a
  // straddling counter can be read torn against the consumer's publication —
  // yielding a phantom value larger than ever written, which writer flow
  // control latches and over-admits until the ring jams. Regression: 8 MiB
  // log over 6 writers gave per_writer % 64 == 21, putting writer 3's header
  // at line offset 63.
  const uint64_t sizes[] = {1u << 20, 4u << 20, 8u << 20, 8u << 20 | 4096};
  const uint64_t begins[] = {0, 1u << 20, (1u << 20) + 8};
  for (uint64_t log_size : sizes) {
    for (uint64_t log_begin : begins) {
      for (uint32_t num = 2; num <= 8; ++num) {
        for (uint32_t w = 0; w < num; ++w) {
          const RingGeometry g = RingGeometry::For(log_begin, log_size, num, w, 128);
          ASSERT_EQ(g.header_offset() % kCacheLineSize, 0u)
              << "log_size=" << log_size << " begin=" << log_begin << " num=" << num
              << " writer=" << w;
          ASSERT_EQ(g.slot_offset(0) % kCacheLineSize, 0u);
          // The ring must stay inside the writer's share of the log area.
          ASSERT_GE(g.header_offset(), log_begin);
          ASSERT_LE(g.slot_offset(g.nslots - 1) + g.slot_bytes, log_begin + log_size);
          ASSERT_GE(g.nslots, 16u);
        }
      }
    }
  }
}

struct Cell {
  uint64_t value;
  uint64_t pad[9];  // 80 bytes: record spans 2 cache lines
};

// Parameterized over the commit path: false = classic two-verb lock+validate,
// true = GLOB-fused single-verb lock+validate (§4.4) — the replication
// contract must be identical under both.
class ReplicationTest : public ::testing::TestWithParam<bool> {
 protected:
  static constexpr uint32_t kTable = 1;

  void SetUp() override {
    const bool fused = GetParam();
    cfg_.num_nodes = 3;
    cfg_.workers_per_node = 4;
    cfg_.memory_bytes = 16 << 20;
    cfg_.log_bytes = 4 << 20;
    if (fused) {
      cfg_.atomicity = sim::AtomicityLevel::kGlob;
    }
    cluster_ = std::make_unique<cluster::Cluster>(cfg_);
    catalog_ = std::make_unique<store::Catalog>(cluster_.get());
    store::TableOptions opt;
    opt.value_size = sizeof(Cell);
    opt.hash_buckets = 512;
    table_ = catalog_->CreateTable(kTable, opt);

    RepConfig rcfg;
    rcfg.replicas = 3;
    replicator_ = std::make_unique<PrimaryBackupReplicator>(cluster_.get(), rcfg);

    coordinator_ = std::make_unique<cluster::Coordinator>();
    for (uint32_t i = 0; i < 3; ++i) {
      coordinator_->Join(i, 0, 1000000);
    }

    txn::TxnConfig tcfg;
    tcfg.replication = true;
    tcfg.replicas = 3;
    tcfg.fused_seq_lock = fused;
    engine_ = std::make_unique<txn::TxnEngine>(cluster_.get(), catalog_.get(), tcfg,
                                               coordinator_.get(), replicator_.get());
    engine_->StartServices();

    // Load keys 1..12 (home = key % 3) with value 100, seeding backups.
    for (uint64_t k = 1; k <= 12; ++k) {
      LoadKey(k, 100);
    }
  }

  ~ReplicationTest() override {
    if (engine_ != nullptr) {
      engine_->StopServices();
    }
  }

  uint32_t HomeOf(uint64_t k) const { return static_cast<uint32_t>(k % 3); }

  void LoadKey(uint64_t k, uint64_t value) {
    Cell c{value, {}};
    const uint32_t node = HomeOf(k);
    uint64_t off = 0;
    ASSERT_EQ(table_->hash(node)->Insert(cluster_->node(node)->context(0), k, &c, &off),
              Status::kOk);
    std::vector<std::byte> image(table_->record_bytes());
    cluster_->node(node)->bus()->Read(nullptr, off, image.data(), image.size());
    for (uint32_t r = 1; r < 3; ++r) {
      replicator_->SeedBackup(cluster_->BackupOf(node, r), kTable, node, k, image.data(),
                              image.size());
    }
  }

  uint64_t CommitUpdate(uint32_t from_node, uint64_t key, uint64_t value) {
    sim::ThreadContext* ctx = cluster_->node(from_node)->context(0);
    txn::Transaction t(engine_.get(), ctx);
    while (true) {
      t.Begin();
      Cell c{};
      EXPECT_EQ(t.Read(table_, HomeOf(key), key, &c), Status::kOk);
      c.value = value;
      EXPECT_EQ(t.Write(table_, HomeOf(key), key, &c), Status::kOk);
      if (t.Commit() == Status::kOk) {
        return c.value;
      }
    }
  }

  uint64_t ReadCommitted(uint32_t from_node, uint32_t home, uint64_t key) {
    sim::ThreadContext* ctx = cluster_->node(from_node)->context(1);
    txn::Transaction t(engine_.get(), ctx);
    while (true) {
      t.Begin(true);
      Cell c{};
      if (t.Read(table_, home, key, &c) != Status::kOk) {
        t.UserAbort();
        std::this_thread::yield();
        continue;
      }
      if (t.Commit() == Status::kOk) {
        return c.value;
      }
    }
  }

  uint64_t RecordSeq(uint64_t key) {
    const uint32_t node = HomeOf(key);
    const uint64_t off = table_->hash(node)->Lookup(nullptr, key);
    return cluster_->node(node)->bus()->ReadU64(nullptr, off + RecordLayout::kSeqOff);
  }

  cluster::ClusterConfig cfg_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<store::Catalog> catalog_;
  store::Table* table_ = nullptr;
  std::unique_ptr<PrimaryBackupReplicator> replicator_;
  std::unique_ptr<cluster::Coordinator> coordinator_;
  std::unique_ptr<txn::TxnEngine> engine_;
};

TEST_P(ReplicationTest, CommitLeavesRecordCommittable) {
  const uint64_t seq_before = RecordSeq(3);
  EXPECT_EQ(seq_before % 2, 0u);
  CommitUpdate(0, 3, 500);
  const uint64_t seq_after = RecordSeq(3);
  EXPECT_EQ(seq_after, seq_before + 2) << "OR moves seq by 2 per update (odd transient)";
  EXPECT_EQ(ReadCommitted(1, HomeOf(3), 3), 500u);
}

TEST_P(ReplicationTest, LogWrittenToBothBackups) {
  const uint64_t before = replicator_->log_writes() + replicator_->entries_applied();
  CommitUpdate(0, 3, 700);  // key 3 is local to node 0
  // Two backup copies must receive the update (via RDMA log or local apply).
  // Drain and check both backup stores hold the new image.
  for (uint32_t n = 0; n < 3; ++n) {
    replicator_->DrainNode(cluster_->node(n)->context(0), n);
  }
  (void)before;
  std::vector<std::byte> img;
  const uint32_t primary = HomeOf(3);
  for (uint32_t r = 1; r < 3; ++r) {
    const uint32_t b = cluster_->BackupOf(primary, r);
    ASSERT_TRUE(replicator_->backup_store(b)->Get(kTable, primary, 3, &img)) << "backup " << b;
    Cell c{};
    RecordLayout::GatherValue(img.data(), &c, sizeof(c));
    EXPECT_EQ(c.value, 700u);
    EXPECT_EQ(RecordLayout::GetSeq(img.data()) % 2, 0u);
  }
}

TEST_P(ReplicationTest, UncommittableRecordBlocksWriters) {
  // Force key 6 (node 0) into the odd (committed-but-unreplicated) state.
  const uint64_t off = table_->hash(0)->Lookup(nullptr, 6);
  const uint64_t seq = cluster_->node(0)->bus()->ReadU64(nullptr, off + RecordLayout::kSeqOff);
  cluster_->node(0)->bus()->WriteU64(nullptr, off + RecordLayout::kSeqOff, seq + 1);

  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  txn::Transaction t(engine_.get(), ctx);
  t.Begin();
  Cell c{};
  ASSERT_EQ(t.Read(table_, 0, 6, &c), Status::kOk);  // optimistic read allowed
  c.value = 1;
  ASSERT_EQ(t.Write(table_, 0, 6, &c), Status::kOk);
  EXPECT_EQ(t.Commit(), Status::kAborted) << "cannot update an uncommittable record";

  // Once "replication finishes" (seq becomes even), the update goes through.
  cluster_->node(0)->bus()->WriteU64(nullptr, off + RecordLayout::kSeqOff, seq + 2);
  t.Begin();
  ASSERT_EQ(t.Read(table_, 0, 6, &c), Status::kOk);
  c.value = 2;
  ASSERT_EQ(t.Write(table_, 0, 6, &c), Status::kOk);
  EXPECT_EQ(t.Commit(), Status::kOk);
}

TEST_P(ReplicationTest, OptimisticReadOfOddRecordCommitsAfterMakeup) {
  const uint64_t off = table_->hash(0)->Lookup(nullptr, 9);
  const uint64_t seq = cluster_->node(0)->bus()->ReadU64(nullptr, off + RecordLayout::kSeqOff);
  cluster_->node(0)->bus()->WriteU64(nullptr, off + RecordLayout::kSeqOff, seq + 1);

  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  txn::Transaction t(engine_.get(), ctx);
  t.Begin(true);
  Cell c{};
  ASSERT_EQ(t.Read(table_, 0, 9, &c), Status::kOk);
  // Validation fails while the record is uncommittable...
  EXPECT_EQ(t.Commit(), Status::kAborted);

  t.Begin(true);
  ASSERT_EQ(t.Read(table_, 0, 9, &c), Status::kOk);
  cluster_->node(0)->bus()->WriteU64(nullptr, off + RecordLayout::kSeqOff, seq + 2);
  // ...and succeeds once the writer finished replication.
  EXPECT_EQ(t.Commit(), Status::kOk);
}

TEST_P(ReplicationTest, RemoteUpdateReplicates) {
  CommitUpdate(/*from_node=*/1, /*key=*/3, 900);  // key 3 lives on node 0: remote commit
  EXPECT_EQ(ReadCommitted(2, HomeOf(3), 3), 900u);
  for (uint32_t n = 0; n < 3; ++n) {
    replicator_->DrainNode(cluster_->node(n)->context(0), n);
  }
  std::vector<std::byte> img;
  ASSERT_TRUE(replicator_->backup_store(1)->Get(kTable, 0, 3, &img));
  Cell c{};
  RecordLayout::GatherValue(img.data(), &c, sizeof(c));
  EXPECT_EQ(c.value, 900u);
}

TEST_P(ReplicationTest, RingWrapAroundManyUpdates) {
  // Push enough updates through one ring to wrap it several times; the
  // consumer (service threads) must keep up via flow control.
  for (int i = 0; i < 400; ++i) {
    CommitUpdate(1, 3, 1000 + i);  // writer node 1 -> backups of node 0
  }
  EXPECT_EQ(ReadCommitted(0, HomeOf(3), 3), 1399u);
  for (uint32_t n = 0; n < 3; ++n) {
    replicator_->DrainNode(cluster_->node(n)->context(0), n);
  }
  std::vector<std::byte> img;
  ASSERT_TRUE(replicator_->backup_store(1)->Get(kTable, 0, 3, &img));
  Cell c{};
  RecordLayout::GatherValue(img.data(), &c, sizeof(c));
  EXPECT_EQ(c.value, 1399u);
}

TEST_P(ReplicationTest, RecoveryRevivesDeadNodesData) {
  // Update a few records, then kill node 1 and recover onto node 2.
  CommitUpdate(0, 1, 111);   // key 1 on node 1
  CommitUpdate(0, 4, 444);   // key 4 on node 1
  CommitUpdate(0, 3, 333);   // key 3 on node 0 (unaffected)

  cluster_->Kill(1);
  coordinator_->Remove(1);

  cluster::PartitionMap pmap(3);
  RecoveryManager rm(engine_.get(), replicator_.get(), coordinator_.get());
  const RecoveryReport report =
      rm.RecoverAfterFailure(cluster_->node(0)->context(2), /*dead=*/1, /*host=*/2, &pmap);
  EXPECT_GE(report.records_rehosted, 4u);  // keys 1,4,7,10 lived on node 1
  EXPECT_EQ(pmap.node_of(1), 2u);
  EXPECT_EQ(pmap.node_of(0), 0u);

  // The revived records are readable on the host with committed values.
  EXPECT_EQ(ReadCommitted(0, /*home=*/2, 1), 111u);
  EXPECT_EQ(ReadCommitted(0, /*home=*/2, 4), 444u);
  EXPECT_EQ(ReadCommitted(0, /*home=*/2, 7), 100u);
  // Unaffected primaries still serve.
  EXPECT_EQ(ReadCommitted(2, HomeOf(3), 3), 333u);

  // New transactions can update the revived records on the new host.
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  txn::Transaction t(engine_.get(), ctx);
  while (true) {
    t.Begin();
    Cell c{};
    ASSERT_EQ(t.Read(table_, 2, 1, &c), Status::kOk);
    c.value = 112;
    ASSERT_EQ(t.Write(table_, 2, 1, &c), Status::kOk);
    if (t.Commit() == Status::kOk) {
      break;
    }
  }
  EXPECT_EQ(ReadCommitted(0, 2, 1), 112u);
}

TEST_P(ReplicationTest, RecoveryPatchesPartialWriteBack) {
  // Simulate a writer (node 1) dying between R.1 (logs durable) and C.5
  // (remote write-back): the log holds seq+2 while the primary still has the
  // old value, locked by the dead writer.
  const uint64_t off = table_->hash(0)->Lookup(nullptr, 3);
  sim::MemoryBus* bus = cluster_->node(0)->bus();
  const uint64_t seq = bus->ReadU64(nullptr, off + RecordLayout::kSeqOff);

  // Dead writer's lock on the record.
  uint64_t obs;
  ASSERT_TRUE(bus->CasU64(nullptr, off + RecordLayout::kLockOff, 0,
                          store::LockWord::Make(1, 0), &obs));
  // The "logged" image with the new value and seq+2.
  std::vector<std::byte> image(table_->record_bytes());
  Cell c{31337, {}};
  RecordLayout::Init(image.data(), 3, 2, seq + 2, &c, sizeof(c));
  replicator_->SeedBackup(1, kTable, 0, 3, image.data(), image.size());
  replicator_->SeedBackup(2, kTable, 0, 3, image.data(), image.size());

  cluster_->Kill(1);
  coordinator_->Remove(1);
  cluster::PartitionMap pmap(3);
  RecoveryManager rm(engine_.get(), replicator_.get(), coordinator_.get());
  const RecoveryReport report =
      rm.RecoverAfterFailure(cluster_->node(0)->context(2), 1, 2, &pmap);
  EXPECT_GE(report.primaries_patched, 1u);

  EXPECT_EQ(bus->ReadU64(nullptr, off + RecordLayout::kSeqOff), seq + 2);
  EXPECT_EQ(bus->ReadU64(nullptr, off + RecordLayout::kLockOff), store::LockWord::kUnlocked);
  EXPECT_EQ(ReadCommitted(0, 0, 3), 31337u);
}

TEST_P(ReplicationTest, ConcurrentReplicatedTransfersConserveMoney) {
  constexpr uint64_t kTotal = 12 * 100;
  std::vector<std::thread> threads;
  for (uint32_t n = 0; n < 3; ++n) {
    threads.emplace_back([this, n] {
      sim::ThreadContext* ctx = cluster_->node(n)->context(2);
      txn::Transaction t(engine_.get(), ctx);
      FastRand rng(n + 77);
      for (int i = 0; i < 150; ++i) {
        const uint64_t from = rng.Range(1, 12);
        uint64_t to = rng.Range(1, 12);
        if (to == from) {
          to = from % 12 + 1;
        }
        while (true) {
          t.Begin();
          Cell a{}, b{};
          if (t.Read(table_, HomeOf(from), from, &a) != Status::kOk ||
              t.Read(table_, HomeOf(to), to, &b) != Status::kOk) {
            t.UserAbort();
            continue;
          }
          if (a.value == 0) {
            t.UserAbort();
            break;
          }
          a.value -= 1;
          b.value += 1;
          if (t.Write(table_, HomeOf(from), from, &a) != Status::kOk ||
              t.Write(table_, HomeOf(to), to, &b) != Status::kOk) {
            t.UserAbort();
            continue;
          }
          if (t.Commit() == Status::kOk) {
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  uint64_t total = 0;
  for (uint64_t k = 1; k <= 12; ++k) {
    total += ReadCommitted(0, HomeOf(k), k);
  }
  EXPECT_EQ(total, kTotal);

  // Backups converge to the same totals after draining.
  for (uint32_t n = 0; n < 3; ++n) {
    replicator_->DrainNode(cluster_->node(n)->context(3), n);
  }
  uint64_t backup_total = 0;
  for (uint64_t k = 1; k <= 12; ++k) {
    const uint32_t primary = HomeOf(k);
    std::vector<std::byte> img;
    ASSERT_TRUE(
        replicator_->backup_store(cluster_->BackupOf(primary, 1))->Get(kTable, primary, k, &img));
    Cell c{};
    RecordLayout::GatherValue(img.data(), &c, sizeof(c));
    backup_total += c.value;
  }
  EXPECT_EQ(backup_total, kTotal);
}

INSTANTIATE_TEST_SUITE_P(CommitPath, ReplicationTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "fused" : "twoverb";
                         });

}  // namespace
}  // namespace drtmr::rep
