// Integration tests: TPC-C and SmallBank running on the full DrTM+R stack,
// with invariants checked after concurrent execution.
#include "src/workload/tpcc.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/workload/driver.h"
#include "src/workload/smallbank.h"

namespace drtmr::workload {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() {
    cfg_.num_nodes = 3;
    cfg_.workers_per_node = 4;
    cfg_.memory_bytes = 48 << 20;
    cfg_.log_bytes = 4 << 20;
    cluster_ = std::make_unique<cluster::Cluster>(cfg_);
    catalog_ = std::make_unique<store::Catalog>(cluster_.get());
    pmap_ = std::make_unique<cluster::PartitionMap>(3);
    txn::TxnConfig tcfg;
    engine_ = std::make_unique<txn::TxnEngine>(cluster_.get(), catalog_.get(), tcfg);
    engine_->StartServices();
  }

  ~WorkloadTest() override { engine_->StopServices(); }

  cluster::ClusterConfig cfg_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<store::Catalog> catalog_;
  std::unique_ptr<cluster::PartitionMap> pmap_;
  std::unique_ptr<txn::TxnEngine> engine_;
};

TEST_F(WorkloadTest, TpccKeyEncodingsDisjoint) {
  // Order and order-line keys must be strictly ordered by (w, d, o, ol).
  EXPECT_LT(TpccWorkload::OKey(1, 1, 5), TpccWorkload::OKey(1, 1, 6));
  EXPECT_LT(TpccWorkload::OKey(1, 1, 500), TpccWorkload::OKey(1, 2, 1));
  EXPECT_LT(TpccWorkload::OKey(1, 10, 1u << 20), TpccWorkload::OKey(2, 1, 1));
  EXPECT_LT(TpccWorkload::OLKey(1, 1, 5, 15), TpccWorkload::OLKey(1, 1, 6, 1));
  EXPECT_NE(TpccWorkload::CKey(1, 1, 1), TpccWorkload::CKey(1, 2, 1));
  EXPECT_NE(TpccWorkload::SKey(1, 7), TpccWorkload::SKey(2, 7));
}

TEST_F(WorkloadTest, TpccRunsStandardMix) {
  TpccConfig tc;
  tc.warehouses_per_node = 1;
  tc.customers_per_district = 60;
  tc.items = 200;
  TpccWorkload tpcc(engine_.get(), pmap_.get(), tc);
  tpcc.CreateTables();
  tpcc.Load(nullptr);

  DriverOptions opt;
  opt.threads_per_node = 2;
  opt.txns_per_thread = 150;
  opt.warmup_per_thread = 10;
  txn::Transaction* txns[3][4];
  std::vector<std::unique_ptr<txn::Transaction>> owned;
  for (uint32_t n = 0; n < 3; ++n) {
    for (uint32_t w = 0; w < 4; ++w) {
      owned.push_back(
          std::make_unique<txn::Transaction>(engine_.get(), cluster_->node(n)->context(w)));
      txns[n][w] = owned.back().get();
    }
  }
  const DriverResult r = RunWorkload(cluster_.get(), opt, [&](sim::ThreadContext* ctx, uint32_t n,
                                                              uint32_t w, FastRand* rng) {
    return tpcc.RunOne(ctx, txns[n][w], rng);
  });
  EXPECT_EQ(r.committed, 3u * 2 * 150);
  EXPECT_GT(r.elapsed_ns, 0u);
  EXPECT_GT(r.ThroughputTps(), 0.0);
  // The mix should roughly follow Table 5 (45/43/4/4/4).
  EXPECT_GT(r.committed_by_type[kNewOrder], r.committed / 3);
  EXPECT_GT(r.committed_by_type[kPayment], r.committed / 3);
  EXPECT_GT(r.committed_by_type[kOrderStatus] + r.committed_by_type[kDelivery] +
                r.committed_by_type[kStockLevel],
            0u);

  // Consistency: every district's next_o_id - 1 equals the number of orders
  // inserted for it; the ORDER B-tree sizes must add up.
  uint64_t orders_expected = 0;
  for (uint64_t w = 1; w <= tpcc.total_warehouses(); ++w) {
    for (uint64_t d = 1; d <= tc.districts; ++d) {
      orders_expected += tpcc.DistrictNextOrderId(tpcc.NodeOfWarehouse(w), w, d) - 1;
    }
  }
  uint64_t orders_found = 0;
  for (uint32_t n = 0; n < 3; ++n) {
    orders_found += tpcc.table(TpccWorkload::kOrderTab)->btree(n)->size();
  }
  EXPECT_EQ(orders_found, orders_expected);
  EXPECT_GT(orders_found, 0u);
}

TEST_F(WorkloadTest, TpccCrossWarehouseSweepKeepsStockConsistent) {
  TpccConfig tc;
  tc.warehouses_per_node = 1;
  tc.customers_per_district = 30;
  tc.items = 100;
  tc.cross_warehouse_new_order_pct = 50;  // heavy distributed load
  tc.mix[kNewOrder] = 100;
  tc.mix[kPayment] = tc.mix[kOrderStatus] = tc.mix[kDelivery] = tc.mix[kStockLevel] = 0;
  TpccWorkload tpcc(engine_.get(), pmap_.get(), tc);
  tpcc.CreateTables();
  tpcc.Load(nullptr);

  DriverOptions opt;
  opt.threads_per_node = 2;
  opt.txns_per_thread = 100;
  opt.warmup_per_thread = 0;
  std::vector<std::unique_ptr<txn::Transaction>> owned;
  txn::Transaction* txns[3][4];
  for (uint32_t n = 0; n < 3; ++n) {
    for (uint32_t w = 0; w < 4; ++w) {
      owned.push_back(
          std::make_unique<txn::Transaction>(engine_.get(), cluster_->node(n)->context(w)));
      txns[n][w] = owned.back().get();
    }
  }
  const DriverResult r = RunWorkload(cluster_.get(), opt,
                                     [&](sim::ThreadContext* ctx, uint32_t n, uint32_t w,
                                         FastRand* rng) { return tpcc.RunOne(ctx, txns[n][w], rng); });
  EXPECT_EQ(r.committed, 600u);

  // Stock consistency: sum over stock rows of ytd equals the total quantity
  // ordered across all order lines (every order line decrements stock once).
  uint64_t stock_ytd = 0;
  store::Table* stock = tpcc.table(TpccWorkload::kStockTab);
  for (uint64_t w = 1; w <= 3; ++w) {
    const uint32_t node = tpcc.NodeOfWarehouse(w);
    for (uint64_t i = 1; i <= tc.items; ++i) {
      const uint64_t off = stock->hash(node)->Lookup(nullptr, TpccWorkload::SKey(w, i));
      ASSERT_NE(off, 0u);
      std::vector<std::byte> rec(stock->record_bytes());
      cluster_->node(node)->bus()->Read(nullptr, off, rec.data(), rec.size());
      StockRow row;
      store::RecordLayout::GatherValue(rec.data(), &row, sizeof(row));
      stock_ytd += row.ytd;
    }
  }
  uint64_t ordered_qty = 0;
  store::Table* ol = tpcc.table(TpccWorkload::kOrderLineTab);
  for (uint32_t n = 0; n < 3; ++n) {
    ol->btree(n)->Scan(nullptr, 0, ~0ull, [&](uint64_t, uint64_t off) {
      std::vector<std::byte> rec(ol->record_bytes());
      cluster_->node(n)->bus()->Read(nullptr, off, rec.data(), rec.size());
      OrderLineRow row;
      store::RecordLayout::GatherValue(rec.data(), &row, sizeof(row));
      ordered_qty += row.qty;
      return true;
    });
  }
  EXPECT_EQ(stock_ytd, ordered_qty);
  EXPECT_GT(stock_ytd, 0u);
}

TEST_F(WorkloadTest, SmallBankConservesMoney) {
  SmallBankConfig sc;
  sc.accounts_per_node = 200;
  sc.hot_accounts = 20;
  sc.cross_machine_pct = 10;
  SmallBankWorkload bank(engine_.get(), pmap_.get(), sc);
  bank.CreateTables();
  bank.Load(nullptr);
  EXPECT_EQ(bank.TotalBalance(), bank.initial_total());

  DriverOptions opt;
  opt.threads_per_node = 3;
  opt.txns_per_thread = 300;
  opt.warmup_per_thread = 0;
  std::vector<std::unique_ptr<txn::Transaction>> owned;
  txn::Transaction* txns[3][4];
  for (uint32_t n = 0; n < 3; ++n) {
    for (uint32_t w = 0; w < 4; ++w) {
      owned.push_back(
          std::make_unique<txn::Transaction>(engine_.get(), cluster_->node(n)->context(w)));
      txns[n][w] = owned.back().get();
    }
  }
  const DriverResult r = RunWorkload(cluster_.get(), opt,
                                     [&](sim::ThreadContext* ctx, uint32_t n, uint32_t w,
                                         FastRand* rng) { return bank.RunOne(ctx, txns[n][w], rng); });
  EXPECT_EQ(r.committed, 3u * 3 * 300);
  EXPECT_EQ(bank.TotalBalance(), bank.initial_total() + bank.external_delta());
  // All six types were exercised.
  for (uint32_t t = 0; t < kSmallBankTxnTypes; ++t) {
    EXPECT_GT(r.committed_by_type[t], 0u) << "type " << t;
  }
}

TEST_F(WorkloadTest, DriverThroughputScalesWithThreads) {
  // More worker threads -> more committed txns per unit of virtual time
  // (workload is uncontended enough to scale).
  SmallBankConfig sc;
  sc.accounts_per_node = 1000;
  sc.hot_accounts = 500;
  sc.cross_machine_pct = 0;
  SmallBankWorkload bank(engine_.get(), pmap_.get(), sc);
  bank.CreateTables();
  bank.Load(nullptr);
  std::vector<std::unique_ptr<txn::Transaction>> owned;
  txn::Transaction* txns[3][4];
  for (uint32_t n = 0; n < 3; ++n) {
    for (uint32_t w = 0; w < 4; ++w) {
      owned.push_back(
          std::make_unique<txn::Transaction>(engine_.get(), cluster_->node(n)->context(w)));
      txns[n][w] = owned.back().get();
    }
  }
  auto run = [&](uint32_t threads) {
    DriverOptions opt;
    opt.threads_per_node = threads;
    opt.txns_per_thread = 400;
    opt.warmup_per_thread = 20;
    return RunWorkload(cluster_.get(), opt,
                       [&](sim::ThreadContext* ctx, uint32_t n, uint32_t w, FastRand* rng) {
                         return bank.RunOne(ctx, txns[n][w], rng);
                       });
  };
  const double t1 = run(1).ThroughputTps();
  const double t4 = run(4).ThroughputTps();
  EXPECT_GT(t4, t1 * 2.0) << "t1=" << t1 << " t4=" << t4;
}

}  // namespace
}  // namespace drtmr::workload
