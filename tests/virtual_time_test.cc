// Tests of the virtual-time machinery added for benchmarking: interval-booked
// SimResource (backfill, saturation), TimeGate skew bounding, and posted
// (pipelined) RDMA verbs.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/sim/cost_model.h"
#include "src/sim/fabric.h"
#include "src/sim/htm.h"
#include "src/sim/memory_bus.h"
#include "src/util/sim_clock.h"
#include "src/util/time_gate.h"

namespace drtmr {
namespace {

TEST(SimResourceBackfill, SlowCallerIsNotPushedToFastCallerTime) {
  SimResource r;
  // A fast-clocked caller books far in the future...
  EXPECT_EQ(r.Reserve(1000000, 100), 1000000u);
  // ...a slow-clocked caller must be backfilled into the idle past, not
  // queued behind the future booking.
  EXPECT_EQ(r.Reserve(500, 100), 500u);
  // And a caller that conflicts with an existing interval packs around it.
  EXPECT_EQ(r.Reserve(550, 100), 600u);
}

TEST(SimResourceBackfill, SaturationStillQueues) {
  SimResource r;
  // Offered load at one point in time packs densely: starts never overlap.
  uint64_t last_start = 0;
  for (int i = 0; i < 100; ++i) {
    const uint64_t s = r.Reserve(0, 50);
    if (i > 0) {
      EXPECT_GE(s, last_start + 50);
    }
    last_start = s;
  }
  EXPECT_EQ(last_start, 99u * 50);
}

TEST(SimResourceBackfill, GapFitting) {
  SimResource r;
  EXPECT_EQ(r.Reserve(0, 100), 0u);     // [0,100)
  EXPECT_EQ(r.Reserve(300, 100), 300u); // [300,400)
  EXPECT_EQ(r.Reserve(0, 100), 100u);   // fits the gap [100,200)
  EXPECT_EQ(r.Reserve(0, 150), 400u);   // gap [200,300) too small -> after 400
}

TEST(SimResourceBackfill, ResetClears) {
  SimResource r;
  r.Reserve(0, 1000);
  r.Reset();
  EXPECT_EQ(r.Reserve(0, 10), 0u);
  EXPECT_EQ(r.free_at_ns(), 10u);
}

TEST(TimeGateTest, BoundsClockSkew) {
  TimeGate gate(/*window_ns=*/1000);
  SimClock fast, slow;
  const uint32_t fast_id = gate.AddClock(&fast);
  const uint32_t slow_id = gate.AddClock(&slow);
  (void)fast_id;

  fast.Advance(5000);
  std::atomic<bool> passed{false};
  std::thread t([&] {
    gate.Sync(&fast);  // must block: fast is 5000 ahead of slow (window 1000)
    passed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(passed.load());
  slow.Advance(4500);  // now skew is 500 <= window
  t.join();
  EXPECT_TRUE(passed.load());
  gate.Done(slow_id);
  // With the slow clock retired, the fast one is unconstrained.
  fast.Advance(1000000);
  gate.Sync(&fast);
  SUCCEED();
}

TEST(TimeGateTest, SoleClockNeverBlocks) {
  TimeGate gate(10);
  SimClock c;
  gate.AddClock(&c);
  c.Advance(1 << 30);
  gate.Sync(&c);
  SUCCEED();
}

class PostedVerbTest : public ::testing::Test {
 protected:
  PostedVerbTest() : fabric_(&cost_) {
    for (int i = 0; i < 2; ++i) {
      buses_.push_back(std::make_unique<sim::MemoryBus>(1 << 20, &cost_, 4, 64, 32));
      fabric_.AddNode(buses_.back().get());
    }
  }
  sim::CostModel cost_;
  sim::Fabric fabric_;
  std::vector<std::unique_ptr<sim::MemoryBus>> buses_;
};

TEST_F(PostedVerbTest, BatchedWritesOverlapLatency) {
  // N posted writes + one fence must cost far less than N synchronous writes.
  sim::ThreadContext posted_ctx(0, 0, 1);
  uint64_t completion = 0;
  uint64_t v = 7;
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(fabric_.nic(0)->WritePosted(&posted_ctx, 1, 64 * i, &v, sizeof(v), &completion),
              Status::kOk);
  }
  fabric_.nic(0)->Fence(&posted_ctx, completion, cost_.rdma_write_ns);

  sim::ThreadContext sync_ctx(0, 1, 2);
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(fabric_.nic(0)->Write(&sync_ctx, 1, 4096 + 64 * i, &v, sizeof(v)), Status::kOk);
  }
  EXPECT_LT(posted_ctx.clock.now_ns(), sync_ctx.clock.now_ns() / 3)
      << "posted batch should overlap round-trip latencies";
  // Data still landed.
  EXPECT_EQ(buses_[1]->ReadU64(nullptr, 0), 7u);
  EXPECT_EQ(buses_[1]->ReadU64(nullptr, 64 * 9), 7u);
}

TEST_F(PostedVerbTest, FenceCoversSlowestCompletion) {
  sim::ThreadContext ctx(0, 0, 1);
  uint64_t completion = 0;
  std::vector<std::byte> big(32 * 1024);
  ASSERT_EQ(fabric_.nic(0)->WritePosted(&ctx, 1, 0, big.data(), big.size(), &completion),
            Status::kOk);
  EXPECT_GT(completion, cost_.TransferNs(big.size()) / 2);
  const uint64_t before = ctx.clock.now_ns();
  EXPECT_LT(before, completion) << "posting must not wait for the transfer";
  fabric_.nic(0)->Fence(&ctx, completion, cost_.rdma_write_ns);
  EXPECT_GE(ctx.clock.now_ns(), completion + cost_.rdma_write_ns);
}

TEST_F(PostedVerbTest, PostedCasPerformsSwap) {
  sim::ThreadContext ctx(0, 0, 1);
  buses_[1]->WriteU64(nullptr, 128, 5);
  uint64_t completion = 0;
  uint64_t obs = 0;
  EXPECT_EQ(fabric_.nic(0)->CompareSwapPosted(&ctx, 1, 128, 5, 9, &obs, &completion),
            Status::kOk);
  EXPECT_EQ(obs, 5u);
  EXPECT_EQ(buses_[1]->ReadU64(nullptr, 128), 9u);
  EXPECT_EQ(fabric_.nic(0)->CompareSwapPosted(&ctx, 1, 128, 5, 11, &obs, &completion),
            Status::kConflict);
}

TEST_F(PostedVerbTest, PostedVerbInsideHtmStillAborts) {
  sim::HtmEngine engine(buses_[0].get(), &cost_);
  sim::ThreadContext ctx(0, 0, 1);
  sim::HtmTxn* txn = engine.Begin(&ctx);
  uint64_t v;
  ASSERT_EQ(txn->ReadU64(0, &v), Status::kOk);
  uint64_t completion = 0;
  EXPECT_EQ(fabric_.nic(0)->WritePosted(&ctx, 1, 0, &v, sizeof(v), &completion),
            Status::kAborted);
  EXPECT_EQ(ctx.current_htm, nullptr);
}

}  // namespace
}  // namespace drtmr
