#include "src/store/table.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/store/btree_store.h"
#include "src/store/hash_store.h"
#include "src/store/record.h"
#include "src/util/rand.h"

namespace drtmr::store {
namespace {

class StoreTest : public ::testing::Test {
 protected:
  StoreTest() {
    cfg_.num_nodes = 2;
    cfg_.workers_per_node = 4;
    cfg_.memory_bytes = 16 << 20;
    cfg_.log_bytes = 1 << 20;
    cluster_ = std::make_unique<cluster::Cluster>(cfg_);
  }

  cluster::ClusterConfig cfg_;
  std::unique_ptr<cluster::Cluster> cluster_;
};

TEST_F(StoreTest, HashInsertLookupRoundTrip) {
  HashStore hs(cluster_->node(0), 1024, 40);
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  char value[40] = "persistent value";
  uint64_t off = 0;
  ASSERT_EQ(hs.Insert(ctx, 42, value, &off), Status::kOk);
  EXPECT_NE(off, 0u);
  EXPECT_EQ(hs.Lookup(ctx, 42), off);
  EXPECT_EQ(hs.Lookup(ctx, 43), HashStore::kNoRecord);

  // The record is well-formed: correct key, even incarnation/seq, unlocked.
  std::vector<std::byte> rec(hs.record_bytes());
  cluster_->node(0)->bus()->Read(ctx, off, rec.data(), rec.size());
  EXPECT_EQ(RecordLayout::GetKey(rec.data()), 42u);
  EXPECT_EQ(RecordLayout::GetLock(rec.data()), 0u);
  EXPECT_EQ(RecordLayout::GetSeq(rec.data()) % 2, 0u);
  char out[40];
  RecordLayout::GatherValue(rec.data(), out, sizeof(out));
  EXPECT_STREQ(out, value);
}

TEST_F(StoreTest, HashDuplicateInsertRejected) {
  HashStore hs(cluster_->node(0), 64, 16);
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  char v[16] = "x";
  ASSERT_EQ(hs.Insert(ctx, 7, v, nullptr), Status::kOk);
  EXPECT_EQ(hs.Insert(ctx, 7, v, nullptr), Status::kExists);
}

TEST_F(StoreTest, HashRemoveBumpsIncarnation) {
  HashStore hs(cluster_->node(0), 64, 16);
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  char v[16] = "x";
  uint64_t off = 0;
  ASSERT_EQ(hs.Insert(ctx, 9, v, &off), Status::kOk);
  uint64_t inc_before = 0;
  cluster_->node(0)->bus()->Read(ctx, off + RecordLayout::kIncOff, &inc_before, 8);
  ASSERT_EQ(hs.Remove(ctx, 9), Status::kOk);
  EXPECT_EQ(hs.Lookup(ctx, 9), HashStore::kNoRecord);
  uint64_t inc_after = 0;
  cluster_->node(0)->bus()->Read(ctx, off + RecordLayout::kIncOff, &inc_after, 8);
  EXPECT_EQ(inc_after, inc_before + 1);
  EXPECT_EQ(hs.Remove(ctx, 9), Status::kNotFound);
}

TEST_F(StoreTest, HashReinsertKeepsIncarnationMonotonic) {
  HashStore hs(cluster_->node(0), 64, 16);
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  char v[16] = "x";
  uint64_t off1 = 0;
  ASSERT_EQ(hs.Insert(ctx, 11, v, &off1), Status::kOk);
  uint64_t inc1 = 0;
  cluster_->node(0)->bus()->Read(ctx, off1 + RecordLayout::kIncOff, &inc1, 8);
  ASSERT_EQ(hs.Remove(ctx, 11), Status::kOk);
  uint64_t off2 = 0;
  ASSERT_EQ(hs.Insert(ctx, 11, v, &off2), Status::kOk);
  EXPECT_EQ(off2, off1) << "same size class should recycle the slot";
  uint64_t inc2 = 0;
  cluster_->node(0)->bus()->Read(ctx, off2 + RecordLayout::kIncOff, &inc2, 8);
  EXPECT_GT(inc2, inc1) << "reincarnated record must not reuse the old incarnation";
  EXPECT_EQ(inc2 % 2, 0u);
}

TEST_F(StoreTest, HashChainOverflow) {
  // 1 bucket forces chaining after 3 slots.
  HashStore hs(cluster_->node(0), 1, 16);
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  char v[16] = "x";
  for (uint64_t k = 1; k <= 20; ++k) {
    ASSERT_EQ(hs.Insert(ctx, k, v, nullptr), Status::kOk) << k;
  }
  for (uint64_t k = 1; k <= 20; ++k) {
    EXPECT_NE(hs.Lookup(ctx, k), HashStore::kNoRecord) << k;
  }
  EXPECT_EQ(hs.Lookup(ctx, 21), HashStore::kNoRecord);
  // Removal from an overflow bucket works too.
  ASSERT_EQ(hs.Remove(ctx, 17), Status::kOk);
  EXPECT_EQ(hs.Lookup(ctx, 17), HashStore::kNoRecord);
  EXPECT_NE(hs.Lookup(ctx, 18), HashStore::kNoRecord);
}

TEST_F(StoreTest, RemoteLookupViaOneSidedReads) {
  // Create symmetric tables on both nodes (identical offsets).
  HashStore hs0(cluster_->node(0), 256, 24);
  HashStore hs1(cluster_->node(1), 256, 24);
  ASSERT_EQ(hs0.buckets_offset(), hs1.buckets_offset());

  sim::ThreadContext* remote_ctx = cluster_->node(1)->context(0);
  char v[24] = "remote me";
  uint64_t off = 0;
  ASSERT_EQ(hs1.Insert(remote_ctx, 1234, v, &off), Status::kOk);

  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  uint32_t reads = 0;
  const uint64_t found =
      hs0.RemoteLookup(ctx, cluster_->node(0)->nic(), /*target_node=*/1, 1234, &reads);
  EXPECT_EQ(found, off);
  EXPECT_GE(reads, 1u);
  EXPECT_EQ(hs0.RemoteLookup(ctx, cluster_->node(0)->nic(), 1, 999, nullptr),
            HashStore::kNoRecord);
}

TEST_F(StoreTest, ConcurrentInsertsAndLookups) {
  HashStore hs(cluster_->node(0), 512, 16);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      sim::ThreadContext* ctx = cluster_->node(0)->context(static_cast<uint32_t>(t));
      char v[16];
      for (int i = 0; i < kPerThread; ++i) {
        const uint64_t key = static_cast<uint64_t>(t) * 100000 + i + 1;
        std::memcpy(v, &key, 8);
        ASSERT_EQ(hs.Insert(ctx, key, v, nullptr), Status::kOk);
        ASSERT_NE(hs.Lookup(ctx, key), HashStore::kNoRecord);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const uint64_t key = static_cast<uint64_t>(t) * 100000 + i + 1;
      ASSERT_NE(hs.Lookup(ctx, key), HashStore::kNoRecord) << key;
    }
  }
}

// ---------------- B+-tree ----------------

TEST(BTree, InsertLookupSorted) {
  BTreeStore bt;
  FastRand r(5);
  std::map<uint64_t, uint64_t> model;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t k = r.Range(1, 1u << 20);
    const uint64_t v = k * 10;
    if (model.emplace(k, v).second) {
      ASSERT_EQ(bt.Insert(nullptr, k, v), Status::kOk);
    } else {
      ASSERT_EQ(bt.Insert(nullptr, k, v), Status::kExists);
    }
  }
  EXPECT_EQ(bt.size(), model.size());
  for (const auto& [k, v] : model) {
    ASSERT_EQ(bt.Lookup(nullptr, k), v) << k;
  }
  EXPECT_EQ(bt.Lookup(nullptr, 0xdeadbeefull << 30), BTreeStore::kNoRecord);
}

TEST(BTree, ScanMatchesModel) {
  BTreeStore bt;
  std::map<uint64_t, uint64_t> model;
  for (uint64_t k = 2; k <= 2000; k += 2) {
    model[k] = k + 1;
    ASSERT_EQ(bt.Insert(nullptr, k, k + 1), Status::kOk);
  }
  std::vector<uint64_t> seen;
  bt.Scan(nullptr, 100, 221, [&](uint64_t k, uint64_t v) {
    EXPECT_EQ(v, k + 1);
    seen.push_back(k);
    return true;
  });
  std::vector<uint64_t> expect;
  for (uint64_t k = 100; k <= 221; k += 2) {
    expect.push_back(k);
  }
  EXPECT_EQ(seen, expect);
}

TEST(BTree, ScanEarlyStop) {
  BTreeStore bt;
  for (uint64_t k = 1; k <= 100; ++k) {
    ASSERT_EQ(bt.Insert(nullptr, k, k), Status::kOk);
  }
  int count = 0;
  bt.Scan(nullptr, 1, 100, [&](uint64_t, uint64_t) { return ++count < 5; });
  EXPECT_EQ(count, 5);
}

TEST(BTree, FirstGreaterEqualAndLastLessEqual) {
  BTreeStore bt;
  for (uint64_t k = 10; k <= 100; k += 10) {
    ASSERT_EQ(bt.Insert(nullptr, k, k * 2), Status::kOk);
  }
  uint64_t k, v;
  ASSERT_TRUE(bt.FirstGreaterEqual(nullptr, 25, 1000, &k, &v));
  EXPECT_EQ(k, 30u);
  EXPECT_EQ(v, 60u);
  ASSERT_TRUE(bt.FirstGreaterEqual(nullptr, 30, 1000, &k, &v));
  EXPECT_EQ(k, 30u);
  EXPECT_FALSE(bt.FirstGreaterEqual(nullptr, 101, 1000, &k, &v));
  EXPECT_FALSE(bt.FirstGreaterEqual(nullptr, 25, 28, &k, &v));

  ASSERT_TRUE(bt.LastLessEqual(nullptr, 0, 95, &k, &v));
  EXPECT_EQ(k, 90u);
  ASSERT_TRUE(bt.LastLessEqual(nullptr, 0, 90, &k, &v));
  EXPECT_EQ(k, 90u);
  EXPECT_FALSE(bt.LastLessEqual(nullptr, 0, 5, &k, &v));
  EXPECT_FALSE(bt.LastLessEqual(nullptr, 95, 99, &k, &v));
}

TEST(BTree, RemoveThenScanSkipsDeleted) {
  BTreeStore bt;
  for (uint64_t k = 1; k <= 200; ++k) {
    ASSERT_EQ(bt.Insert(nullptr, k, k), Status::kOk);
  }
  for (uint64_t k = 1; k <= 200; k += 2) {
    ASSERT_EQ(bt.Remove(nullptr, k), Status::kOk);
  }
  EXPECT_EQ(bt.Remove(nullptr, 1), Status::kNotFound);
  EXPECT_EQ(bt.size(), 100u);
  int count = 0;
  bt.Scan(nullptr, 1, 200, [&](uint64_t k, uint64_t) {
    EXPECT_EQ(k % 2, 0u);
    count++;
    return true;
  });
  EXPECT_EQ(count, 100);
}

TEST(BTree, SequentialAscendingAndDescendingInserts) {
  BTreeStore asc;
  BTreeStore desc;
  for (uint64_t k = 1; k <= 3000; ++k) {
    ASSERT_EQ(asc.Insert(nullptr, k, k), Status::kOk);
    ASSERT_EQ(desc.Insert(nullptr, 3001 - k, k), Status::kOk);
  }
  for (uint64_t k = 1; k <= 3000; ++k) {
    ASSERT_EQ(asc.Lookup(nullptr, k), k);
    ASSERT_EQ(desc.Lookup(nullptr, k), 3001 - k);
  }
}

TEST(BTree, ConcurrentReadersDuringWrites) {
  BTreeStore bt;
  for (uint64_t k = 1; k <= 1000; ++k) {
    ASSERT_EQ(bt.Insert(nullptr, k * 2, k), Status::kOk);
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (uint64_t k = 1001; k <= 3000; ++k) {
      ASSERT_EQ(bt.Insert(nullptr, k * 2, k), Status::kOk);
    }
    stop.store(true);
  });
  std::thread reader([&] {
    FastRand r(9);
    while (!stop.load()) {
      const uint64_t k = r.Range(1, 1000) * 2;
      ASSERT_NE(bt.Lookup(nullptr, k), BTreeStore::kNoRecord);
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(bt.size(), 3000u);
}

// ---------------- Table / Catalog / LocationCache ----------------

TEST_F(StoreTest, CatalogCreatesSymmetricTables) {
  Catalog catalog(cluster_.get());
  TableOptions opt;
  opt.value_size = 48;
  opt.kind = StoreKind::kHash;
  opt.hash_buckets = 128;
  Table* t = catalog.CreateTable(1, opt);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(catalog.table(1), t);
  EXPECT_EQ(catalog.table(99), nullptr);
  EXPECT_EQ(t->hash(0)->buckets_offset(), t->hash(1)->buckets_offset());
  EXPECT_TRUE(t->remote_accessible());

  TableOptions bopt;
  bopt.kind = StoreKind::kBTree;
  Table* bt = catalog.CreateTable(2, bopt);
  EXPECT_FALSE(bt->remote_accessible());
  ASSERT_EQ(bt->btree(0)->Insert(nullptr, 5, 500), Status::kOk);
  EXPECT_EQ(bt->Lookup(nullptr, 0, 5), 500u);
  EXPECT_EQ(bt->Lookup(nullptr, 1, 5), BTreeStore::kNoRecord);
}

TEST(LocationCache, PutGetInvalidate) {
  LocationCache cache;
  EXPECT_EQ(cache.Get(1, 0, 42), 0u);
  cache.Put(1, 0, 42, 4096);
  EXPECT_EQ(cache.Get(1, 0, 42), 4096u);
  EXPECT_EQ(cache.Get(1, 1, 42), 0u);  // different node
  EXPECT_EQ(cache.Get(2, 0, 42), 0u);  // different table
  cache.Invalidate(1, 0, 42);
  EXPECT_EQ(cache.Get(1, 0, 42), 0u);
}

}  // namespace
}  // namespace drtmr::store
