// Torture harness sweeps (DESIGN.md §9): seeded runs of the transfer workload
// under every fault-plan family, checked by the serializability oracle and
// the conservation/invariant oracles. The tier-1 sweep keeps a small seed
// budget; scale it with DRTMR_TORTURE_SEEDS (and shift the base seed with
// DRTMR_TEST_SEED) for stress runs — every failure message carries the
// (seed, plan, shape) triple that reproduces it.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

#include "src/chk/torture.h"
#include "src/util/test_seed.h"

namespace drtmr::chk {
namespace {

// (nodes, workers per node, replicas, plan kind)
using SweepParam = std::tuple<uint32_t, uint32_t, uint32_t, TorturePlanKind>;

class TortureSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(TortureSweep, SerializableUnderFaults) {
  const auto [nodes, workers, replicas, kind] = GetParam();
  const uint64_t base = util::TestSeed();
  const uint64_t num_seeds = util::EnvCount("DRTMR_TORTURE_SEEDS", 2);
  for (uint64_t s = 0; s < num_seeds; ++s) {
    TortureOptions opt;
    opt.shape.nodes = nodes;
    opt.shape.workers = workers;
    opt.shape.replicas = replicas;
    opt.seed = base + s * 7919 + nodes * 131 + workers * 17;
    opt.plan_kind = kind;
    const TortureResult r = RunTorture(opt);
    EXPECT_TRUE(r.ok) << "repro: seed=" << opt.seed << " plan=" << TorturePlanKindName(kind)
                      << " shape=" << nodes << "x" << workers << "x" << replicas << "\n"
                      << MakeTorturePlan(kind, opt.seed, nodes).Describe() << "\n"
                      << r.Summary();
    EXPECT_GT(r.committed, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Plans, TortureSweep,
    ::testing::Values(SweepParam{3, 2, 3, TorturePlanKind::kClean},
                      SweepParam{3, 2, 3, TorturePlanKind::kDelay},
                      SweepParam{3, 2, 3, TorturePlanKind::kHtmAbort},
                      SweepParam{3, 2, 3, TorturePlanKind::kFreeze},
                      SweepParam{3, 2, 3, TorturePlanKind::kPartition},
                      SweepParam{3, 2, 3, TorturePlanKind::kKill},
                      SweepParam{4, 2, 3, TorturePlanKind::kPartition},
                      SweepParam{4, 2, 3, TorturePlanKind::kKill},
                      SweepParam{2, 2, 2, TorturePlanKind::kKill},
                      SweepParam{3, 2, 1, TorturePlanKind::kDelay},
                      SweepParam{3, 2, 1, TorturePlanKind::kHtmAbort}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      std::string name = TorturePlanKindName(std::get<3>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_" + std::to_string(std::get<0>(info.param)) + "x" +
             std::to_string(std::get<1>(info.param)) + "x" +
             std::to_string(std::get<2>(info.param));
    });

// ---- no-oracle failover: the membership layer handles faults itself ----

// Same sweeps, but the harness never tells anyone about the fault: lease
// heartbeats must suspect the victim off virtual time, the driver must fence
// the old epoch, re-host, and (for transient faults) readmit the victim —
// before the quiescence oracles run.
class NoOracleSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(NoOracleSweep, AutomaticFailover) {
  const auto [nodes, workers, replicas, kind] = GetParam();
  const uint64_t base = util::TestSeed();
  const uint64_t num_seeds = util::EnvCount("DRTMR_TORTURE_SEEDS", 2);
  for (uint64_t s = 0; s < num_seeds; ++s) {
    TortureOptions opt;
    opt.shape.nodes = nodes;
    opt.shape.workers = workers;
    opt.shape.replicas = replicas;
    opt.seed = base + s * 7919 + nodes * 131 + workers * 17;
    opt.plan_kind = kind;
    opt.no_oracle = true;
    const TortureResult r = RunTorture(opt);
    EXPECT_TRUE(r.ok) << "repro: seed=" << opt.seed << " plan=" << TorturePlanKindName(kind)
                      << " shape=" << nodes << "x" << workers << "x" << replicas
                      << " (no-oracle)\n"
                      << MakeTorturePlan(kind, opt.seed, nodes).Describe() << "\n"
                      << r.Summary();
    EXPECT_GT(r.committed, 0u);
    if (kind == TorturePlanKind::kKill) {
      // A kill must have been genuinely detected and recovered from.
      EXPECT_GE(r.suspicions, 1u) << "seed=" << opt.seed;
      EXPECT_GE(r.recoveries, 1u) << "seed=" << opt.seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    NoOracle, NoOracleSweep,
    ::testing::Values(SweepParam{3, 2, 3, TorturePlanKind::kFreeze},
                      SweepParam{3, 2, 3, TorturePlanKind::kPartition},
                      SweepParam{3, 2, 3, TorturePlanKind::kKill},
                      SweepParam{4, 2, 3, TorturePlanKind::kFreeze},
                      SweepParam{4, 2, 3, TorturePlanKind::kKill}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      std::string name = TorturePlanKindName(std::get<3>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_" + std::to_string(std::get<0>(info.param)) + "x" +
             std::to_string(std::get<1>(info.param)) + "x" +
             std::to_string(std::get<2>(info.param));
    });

// ---- group commit: decisions outlive their durability fence ----

// With a group-commit window open (several decisions per fence), a kill can
// land mid-window: decided-but-unfenced slots must survive via the watermark
// (zero lost updates) while speculative slots of in-flight transactions are
// truncated. The no-oracle variant makes the membership layer drive that
// recovery itself.
class GroupCommitSweep : public ::testing::TestWithParam<TorturePlanKind> {};

TEST_P(GroupCommitSweep, WatermarkContractHoldsMidWindow) {
  const TorturePlanKind kind = GetParam();
  const uint64_t base = util::TestSeed();
  const uint64_t num_seeds = util::EnvCount("DRTMR_TORTURE_SEEDS", 2);
  for (uint64_t s = 0; s < num_seeds; ++s) {
    TortureOptions opt;
    opt.shape.nodes = 3;
    opt.shape.workers = 2;
    opt.shape.replicas = 3;
    opt.shape.group_commit_window = 8;
    opt.seed = base + s * 7919 + 23;
    opt.plan_kind = kind;
    const TortureResult r = RunTorture(opt);
    EXPECT_TRUE(r.ok) << "repro: seed=" << opt.seed << " plan=" << TorturePlanKindName(kind)
                      << " shape=3x2x3 window=8\n"
                      << MakeTorturePlan(kind, opt.seed, 3).Describe() << "\n"
                      << r.Summary();
    EXPECT_GT(r.committed, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Window8, GroupCommitSweep,
                         ::testing::Values(TorturePlanKind::kClean, TorturePlanKind::kDelay,
                                           TorturePlanKind::kKill),
                         [](const ::testing::TestParamInfo<TorturePlanKind>& info) {
                           std::string name = TorturePlanKindName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(GroupCommitNoOracle, MidWindowKillFailsOverAutomatically) {
  const uint64_t num_seeds = util::EnvCount("DRTMR_TORTURE_SEEDS", 2);
  for (uint64_t s = 0; s < num_seeds; ++s) {
    TortureOptions opt;
    opt.shape.nodes = 3;
    opt.shape.workers = 2;
    opt.shape.replicas = 3;
    opt.shape.group_commit_window = 8;
    opt.seed = util::TestSeed() + s * 7919 + 29;
    opt.plan_kind = TorturePlanKind::kKill;
    opt.no_oracle = true;
    const TortureResult r = RunTorture(opt);
    EXPECT_TRUE(r.ok) << "repro: seed=" << opt.seed
                      << " plan=kill shape=3x2x3 window=8 (no-oracle)\n"
                      << r.Summary();
    EXPECT_GE(r.suspicions, 1u) << "seed=" << opt.seed;
    EXPECT_GE(r.recoveries, 1u) << "seed=" << opt.seed;
  }
}

// ---- teeth: a deliberately broken engine must FAIL the checker ----

// Skipping commit-time read validation admits stale reads; the dependency
// graph then contains RW/WW cycles the checker must find. If this test fails,
// the torture harness is toothless.
TEST(TortureTeeth, SkipReadValidationIsCaught) {
  TortureOptions opt;
  opt.shape.nodes = 3;
  opt.shape.workers = 2;
  opt.shape.replicas = 3;
  opt.shape.keys_per_node = 2;  // hot keys: races on every transfer
  opt.shape.txns_per_worker = 300;
  opt.seed = util::TestSeed(7);
  opt.plan_kind = TorturePlanKind::kClean;
  opt.unsafe_skip_read_validation = true;
  const TortureResult r = RunTorture(opt);
  EXPECT_FALSE(r.check.ok) << "checker passed a run with read validation disabled "
                           << "(seed=" << opt.seed << ")\n"
                           << r.Summary();
  EXPECT_FALSE(r.ok);
}

// Losing verbs (which a lossless RDMA fabric never does) silently swallows
// write-backs and unlocks; the oracles must notice the damage.
TEST(TortureTeeth, DroppedVerbsAreCaught) {
  TortureOptions opt;
  opt.shape.nodes = 3;
  opt.shape.workers = 2;
  opt.shape.replicas = 3;
  opt.shape.keys_per_node = 4;
  opt.shape.txns_per_worker = 80;
  opt.seed = util::TestSeed(11);
  opt.plan_kind = TorturePlanKind::kClean;
  sim::FaultPlan lossy(opt.seed);
  lossy.DropVerbs(sim::FaultPlan::kAnyNode, sim::FaultPlan::kAnyNode, {0, 0},
                  /*ppm=*/200'000);
  opt.plan_override = &lossy;
  const TortureResult r = RunTorture(opt);
  EXPECT_FALSE(r.ok) << "oracles passed a run on a lossy fabric (seed=" << opt.seed << ")\n"
                     << r.Summary();
}

// Slot-lifecycle teeth (RepConfig::TestOverrides — pump ignoring the
// watermark, pump applying tombstones, watermark published at stage time)
// live in tests/rep_batching_test.cc, where each override's damage is
// provoked and caught deterministically. A sweep-level EXPECT_FALSE here
// would be flaky by construction: a stage-then-abort needs a validation
// failure *after* lock acquisition (rare — most aborts happen at the lock
// CAS, before staging), and any later commit on the same key overwrites
// the poisoned image at a higher seq (BackupStore::Apply is freshest-wins),
// so workers retrying until success launder almost every poisoned slot
// before quiescence. The backup-convergence audit the sweeps DO run
// (src/chk/torture.cc) still catches surviving divergence: a backup ahead
// of its primary or disagreeing at equal seq fails the run.

}  // namespace
}  // namespace drtmr::chk
