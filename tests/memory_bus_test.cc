#include "src/sim/memory_bus.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "src/sim/cost_model.h"

namespace drtmr::sim {
namespace {

class MemoryBusTest : public ::testing::Test {
 protected:
  MemoryBusTest() : bus_(1 << 20, &cost_, /*slots=*/8, /*read_cap=*/64, /*write_cap=*/16) {}

  ThreadContext MakeCtx(uint32_t worker) { return ThreadContext(0, worker, worker + 1); }

  CostModel cost_;
  MemoryBus bus_;
};

TEST_F(MemoryBusTest, ReadWriteRoundTrip) {
  ThreadContext ctx = MakeCtx(0);
  const char msg[] = "hello, coherent world";
  bus_.Write(&ctx, 1000, msg, sizeof(msg));
  char out[sizeof(msg)] = {};
  bus_.Read(&ctx, 1000, out, sizeof(msg));
  EXPECT_STREQ(out, msg);
}

TEST_F(MemoryBusTest, U64Helpers) {
  ThreadContext ctx = MakeCtx(0);
  bus_.WriteU64(&ctx, 64, 0xdeadbeefcafef00dull);
  EXPECT_EQ(bus_.ReadU64(&ctx, 64), 0xdeadbeefcafef00dull);
}

TEST_F(MemoryBusTest, CasSuccessAndFailure) {
  ThreadContext ctx = MakeCtx(0);
  bus_.WriteU64(&ctx, 128, 5);
  uint64_t observed = 0;
  EXPECT_TRUE(bus_.CasU64(&ctx, 128, 5, 9, &observed));
  EXPECT_EQ(observed, 5u);
  EXPECT_FALSE(bus_.CasU64(&ctx, 128, 5, 11, &observed));
  EXPECT_EQ(observed, 9u);
  EXPECT_EQ(bus_.ReadU64(&ctx, 128), 9u);
}

TEST_F(MemoryBusTest, FetchAddReturnsOld) {
  ThreadContext ctx = MakeCtx(0);
  bus_.WriteU64(&ctx, 192, 100);
  EXPECT_EQ(bus_.FetchAddU64(&ctx, 192, 7), 100u);
  EXPECT_EQ(bus_.ReadU64(&ctx, 192), 107u);
}

TEST_F(MemoryBusTest, AccessChargesVirtualTime) {
  ThreadContext ctx = MakeCtx(0);
  const uint64_t before = ctx.clock.now_ns();
  uint64_t v;
  bus_.Read(&ctx, 0, &v, sizeof(v));
  EXPECT_GT(ctx.clock.now_ns(), before);
  // A 3-line read charges three line accesses.
  ThreadContext ctx2 = MakeCtx(1);
  std::byte buf[192];
  bus_.Read(&ctx2, 0, buf, sizeof(buf));
  EXPECT_EQ(ctx2.clock.now_ns(), 3 * cost_.line_access_ns);
}

TEST_F(MemoryBusTest, CostScaleAppliesMultiplier) {
  bus_.set_cost_scale_pct(200);
  ThreadContext ctx = MakeCtx(0);
  std::byte buf[64];
  bus_.Read(&ctx, 0, buf, sizeof(buf));
  EXPECT_EQ(ctx.clock.now_ns(), 2 * cost_.line_access_ns);
  bus_.set_cost_scale_pct(100);
}

// --- Strong-atomicity conflict semantics ---

TEST_F(MemoryBusTest, NonTxWriteDoomsReader) {
  ThreadContext t0 = MakeCtx(0);
  ThreadContext t1 = MakeCtx(1);
  HtmDesc* reader = bus_.desc(0);
  reader->state.store(HtmDesc::kActive);
  uint64_t v;
  ASSERT_TRUE(bus_.TxRead(&t0, reader, 256, &v, sizeof(v)));
  EXPECT_EQ(reader->state.load(), HtmDesc::kActive);

  bus_.WriteU64(&t1, 256, 1);  // conflicting non-transactional write
  EXPECT_EQ(reader->state.load(), HtmDesc::kDoomed);
  EXPECT_EQ(reader->doom_code.load(), HtmDesc::kConflict);
  reader->state.store(HtmDesc::kFree);
  reader->reads.Clear();
}

TEST_F(MemoryBusTest, NonTxReadDoomsWriterButNotReader) {
  ThreadContext t0 = MakeCtx(0);
  ThreadContext t1 = MakeCtx(1);
  ThreadContext t2 = MakeCtx(2);
  HtmDesc* writer = bus_.desc(0);
  HtmDesc* reader = bus_.desc(1);
  writer->state.store(HtmDesc::kActive);
  reader->state.store(HtmDesc::kActive);
  ASSERT_TRUE(bus_.TxRegisterWrite(&t0, writer, 320, 8));
  uint64_t v;
  ASSERT_TRUE(bus_.TxRead(&t1, reader, 384, &v, sizeof(v)));

  bus_.ReadU64(&t2, 320);  // reads the writer's speculative line
  bus_.ReadU64(&t2, 384);  // reads the reader's line — no write conflict
  EXPECT_EQ(writer->state.load(), HtmDesc::kDoomed);
  EXPECT_EQ(reader->state.load(), HtmDesc::kActive);
  writer->state.store(HtmDesc::kFree);
  reader->state.store(HtmDesc::kFree);
  writer->writes.Clear();
  reader->reads.Clear();
}

TEST_F(MemoryBusTest, FalseSharingWithinLineConflicts) {
  // Two disjoint byte ranges in the same cache line still conflict — HTM
  // tracks whole lines, which is why records are line-aligned (§4.2).
  ThreadContext t0 = MakeCtx(0);
  ThreadContext t1 = MakeCtx(1);
  HtmDesc* reader = bus_.desc(0);
  reader->state.store(HtmDesc::kActive);
  uint64_t v;
  ASSERT_TRUE(bus_.TxRead(&t0, reader, 512, &v, sizeof(v)));
  bus_.WriteU64(&t1, 512 + 48, 1);  // same line, different bytes
  EXPECT_EQ(reader->state.load(), HtmDesc::kDoomed);
  reader->state.store(HtmDesc::kFree);
  reader->reads.Clear();
}

TEST_F(MemoryBusTest, TxReadDoomsSpeculativeWriter) {
  ThreadContext t0 = MakeCtx(0);
  ThreadContext t1 = MakeCtx(1);
  HtmDesc* writer = bus_.desc(0);
  HtmDesc* reader = bus_.desc(1);
  writer->state.store(HtmDesc::kActive);
  reader->state.store(HtmDesc::kActive);
  ASSERT_TRUE(bus_.TxRegisterWrite(&t0, writer, 576, 8));
  uint64_t v;
  ASSERT_TRUE(bus_.TxRead(&t1, reader, 576, &v, sizeof(v)));
  EXPECT_EQ(writer->state.load(), HtmDesc::kDoomed);
  EXPECT_EQ(reader->state.load(), HtmDesc::kActive);
  writer->state.store(HtmDesc::kFree);
  reader->state.store(HtmDesc::kFree);
  writer->writes.Clear();
  reader->reads.Clear();
}

TEST_F(MemoryBusTest, CapacityAbortOnReadSetOverflow) {
  ThreadContext t0 = MakeCtx(0);
  HtmDesc* txn = bus_.desc(0);
  txn->state.store(HtmDesc::kActive);
  uint64_t v;
  bool ok = true;
  for (uint64_t i = 0; i < 128 && ok; ++i) {  // read cap is 64 lines
    ok = bus_.TxRead(&t0, txn, i * 64, &v, sizeof(v));
  }
  EXPECT_FALSE(ok);
  EXPECT_EQ(txn->doom_code.load(), HtmDesc::kCapacity);
  txn->state.store(HtmDesc::kFree);
  txn->reads.Clear();
}

TEST_F(MemoryBusTest, CommitAppliesRedoAtomically) {
  ThreadContext t0 = MakeCtx(0);
  HtmDesc* txn = bus_.desc(0);
  txn->state.store(HtmDesc::kActive);
  ASSERT_TRUE(bus_.TxRegisterWrite(&t0, txn, 640, 8));
  std::vector<RedoEntry> redo;
  uint64_t val = 77;
  RedoEntry e;
  e.offset = 640;
  e.data.resize(8);
  std::memcpy(e.data.data(), &val, 8);
  redo.push_back(std::move(e));
  EXPECT_TRUE(bus_.TxCommitApply(&t0, txn, redo));
  EXPECT_EQ(bus_.ReadU64(&t0, 640), 77u);
  EXPECT_EQ(txn->state.load(), HtmDesc::kFree);
  txn->writes.Clear();
}

TEST_F(MemoryBusTest, CommitFailsIfDoomed) {
  ThreadContext t0 = MakeCtx(0);
  ThreadContext t1 = MakeCtx(1);
  HtmDesc* txn = bus_.desc(0);
  txn->state.store(HtmDesc::kActive);
  ASSERT_TRUE(bus_.TxRegisterWrite(&t0, txn, 704, 8));
  bus_.WriteU64(&t1, 704, 999);  // dooms the writer
  std::vector<RedoEntry> redo;
  RedoEntry e;
  e.offset = 704;
  e.data.resize(8, std::byte{0x42});
  redo.push_back(std::move(e));
  EXPECT_FALSE(bus_.TxCommitApply(&t0, txn, redo));
  EXPECT_EQ(bus_.ReadU64(&t0, 704), 999u);  // speculative write discarded
  txn->state.store(HtmDesc::kFree);
  txn->writes.Clear();
}

TEST(LineSet, AddContainsClear) {
  LineSet s(8);
  EXPECT_FALSE(s.Contains(5));
  EXPECT_TRUE(s.Add(5));
  EXPECT_TRUE(s.Add(5));  // duplicate is a no-op
  EXPECT_TRUE(s.Contains(5));
  EXPECT_EQ(s.size(), 1u);
  for (uint64_t i = 0; i < 7; ++i) {
    EXPECT_TRUE(s.Add(100 + i));
  }
  EXPECT_FALSE(s.Add(999)) << "set should be full";
  s.Clear();
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.Contains(5));
  EXPECT_TRUE(s.Add(999));
}

TEST(MemoryBusStress, ConcurrentCasCountsExactly) {
  CostModel cost;
  MemoryBus bus(4096, &cost, 4, 64, 16);
  constexpr int kThreads = 4;
  constexpr int kIncr = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bus, t] {
      ThreadContext ctx(0, static_cast<uint32_t>(t), t + 1);
      for (int i = 0; i < kIncr; ++i) {
        while (true) {
          const uint64_t cur = bus.ReadU64(&ctx, 0);
          uint64_t obs;
          if (bus.CasU64(&ctx, 0, cur, cur + 1, &obs)) {
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  ThreadContext ctx(0, 0, 1);
  EXPECT_EQ(bus.ReadU64(&ctx, 0), static_cast<uint64_t>(kThreads * kIncr));
}

}  // namespace
}  // namespace drtmr::sim
