// Failure injection under load: kill a machine while replicated transfers are
// running, recover onto a survivor, and verify (a) no money leaks among
// transactions the system reported committed, modulo in-flight transfers, and
// (b) the re-hosted partition serves reads and writes.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/cluster/partition_map.h"
#include "src/rep/primary_backup.h"
#include "src/rep/recovery.h"
#include "src/store/record.h"
#include "src/txn/transaction.h"
#include "src/txn/txn_engine.h"

namespace drtmr::rep {
namespace {

struct Cell {
  int64_t value;
  uint64_t pad[6];
};

constexpr uint32_t kNodes = 4;
constexpr uint64_t kKeysPerNode = 10;

class RecoveryUnderLoadTest : public ::testing::Test {
 protected:
  RecoveryUnderLoadTest() {
    cfg_.num_nodes = kNodes;
    cfg_.workers_per_node = 3;
    cfg_.memory_bytes = 16 << 20;
    cfg_.log_bytes = 4 << 20;
    cluster_ = std::make_unique<cluster::Cluster>(cfg_);
    catalog_ = std::make_unique<store::Catalog>(cluster_.get());
    store::TableOptions opt;
    opt.value_size = sizeof(Cell);
    opt.hash_buckets = 256;
    table_ = catalog_->CreateTable(1, opt);
    coordinator_ = std::make_unique<cluster::Coordinator>();
    for (uint32_t i = 0; i < kNodes; ++i) {
      coordinator_->Join(i, 0, ~0ull >> 2);
    }
    rep::RepConfig rcfg;
    rcfg.replicas = 3;
    replicator_ = std::make_unique<PrimaryBackupReplicator>(cluster_.get(), rcfg);
    txn::TxnConfig tcfg;
    tcfg.replication = true;
    engine_ = std::make_unique<txn::TxnEngine>(cluster_.get(), catalog_.get(), tcfg,
                                               coordinator_.get(), replicator_.get());
    engine_->StartServices();
    pmap_ = std::make_unique<cluster::PartitionMap>(kNodes);
    for (uint32_t n = 0; n < kNodes; ++n) {
      for (uint64_t i = 0; i < kKeysPerNode; ++i) {
        Cell c{1000, {}};
        EXPECT_EQ(
            table_->hash(n)->Insert(cluster_->node(n)->context(0), KeyOf(n, i), &c, nullptr),
            Status::kOk);
        const uint64_t off = table_->hash(n)->Lookup(nullptr, KeyOf(n, i));
        std::vector<std::byte> img(table_->record_bytes());
        cluster_->node(n)->bus()->Read(nullptr, off, img.data(), img.size());
        for (uint32_t r = 1; r < 3; ++r) {
          replicator_->SeedBackup(cluster_->BackupOf(n, r), 1, n, KeyOf(n, i), img.data(),
                                  img.size());
        }
      }
    }
  }

  ~RecoveryUnderLoadTest() override { engine_->StopServices(); }

  static uint64_t KeyOf(uint32_t part, uint64_t i) {
    return (static_cast<uint64_t>(part) << 16) | (i + 1);
  }

  cluster::ClusterConfig cfg_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<store::Catalog> catalog_;
  store::Table* table_ = nullptr;
  std::unique_ptr<cluster::Coordinator> coordinator_;
  std::unique_ptr<PrimaryBackupReplicator> replicator_;
  std::unique_ptr<txn::TxnEngine> engine_;
  std::unique_ptr<cluster::PartitionMap> pmap_;
};

TEST_F(RecoveryUnderLoadTest, KillAndRecoverWhileTransferring) {
  constexpr uint32_t kDead = 1;
  constexpr uint32_t kHost = 2;
  std::atomic<bool> stop{false};

  std::vector<std::thread> workers;
  for (uint32_t n = 0; n < kNodes; ++n) {
    for (uint32_t w = 0; w < 2; ++w) {
      workers.emplace_back([&, n, w] {
        sim::ThreadContext* ctx = cluster_->node(n)->context(w);
        txn::Transaction txn(engine_.get(), ctx);
        FastRand rng(n * 11 + w + 1);
        while (!stop.load(std::memory_order_relaxed)) {
          if (cluster_->node(n)->killed()) {
            return;
          }
          const uint32_t fp = static_cast<uint32_t>(rng.Uniform(kNodes));
          const uint32_t tp = static_cast<uint32_t>(rng.Uniform(kNodes));
          const uint64_t from = KeyOf(fp, rng.Uniform(kKeysPerNode));
          const uint64_t to = KeyOf(tp, rng.Uniform(kKeysPerNode));
          if (from == to) {
            continue;
          }
          const uint32_t fn = pmap_->node_of(fp);
          const uint32_t tn = pmap_->node_of(tp);
          txn.Begin();
          Cell a{}, b{};
          if (txn.Read(table_, fn, from, &a) != Status::kOk ||
              txn.Read(table_, tn, to, &b) != Status::kOk) {
            txn.UserAbort();
            std::this_thread::yield();
            continue;
          }
          a.value -= 2;
          b.value += 2;
          if (txn.Write(table_, fn, from, &a) != Status::kOk ||
              txn.Write(table_, tn, to, &b) != Status::kOk) {
            txn.UserAbort();
            continue;
          }
          (void)txn.Commit();  // faults make aborts expected here
        }
      });
    }
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  cluster_->Kill(kDead);
  coordinator_->Remove(kDead);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  RecoveryManager rm(engine_.get(), replicator_.get(), coordinator_.get());
  const RecoveryReport report =
      rm.RecoverAfterFailure(cluster_->node(kHost)->tool_context(), kDead, kHost, pmap_.get());
  EXPECT_GE(report.records_rehosted, kKeysPerNode);
  EXPECT_EQ(pmap_->node_of(kDead), kHost);

  // Let the survivors keep running against the re-hosted partition.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  for (auto& t : workers) {
    t.join();
  }

  // All records across the current configuration are unlocked and
  // committable; every record of the dead partition is reachable on the host.
  for (uint32_t p = 0; p < kNodes; ++p) {
    const uint32_t n = pmap_->node_of(p);
    for (uint64_t i = 0; i < kKeysPerNode; ++i) {
      const uint64_t off = table_->hash(n)->Lookup(nullptr, KeyOf(p, i));
      ASSERT_NE(off, store::HashStore::kNoRecord) << "partition " << p << " key " << i;
      std::vector<std::byte> rec(table_->record_bytes());
      cluster_->node(n)->bus()->Read(nullptr, off, rec.data(), rec.size());
      const uint64_t lock = store::RecordLayout::GetLock(rec.data());
      // A lock owned by the dead machine may linger until touched (passive
      // release); anything else must be clean.
      if (lock != 0) {
        EXPECT_EQ(store::LockWord::OwnerNode(lock), kDead);
      }
    }
  }

  // New transactions against the re-hosted partition commit, and the passive
  // dangling-lock release clears any leftovers from the dead machine.
  sim::ThreadContext* ctx = cluster_->node(0)->context(2);
  txn::Transaction txn(engine_.get(), ctx);
  for (uint64_t i = 0; i < kKeysPerNode; ++i) {
    while (true) {
      txn.Begin();
      Cell c{};
      if (txn.Read(table_, kHost, KeyOf(kDead, i), &c) != Status::kOk) {
        txn.UserAbort();
        continue;
      }
      c.value += 0;
      if (txn.Write(table_, kHost, KeyOf(kDead, i), &c) != Status::kOk) {
        txn.UserAbort();
        continue;
      }
      if (txn.Commit() == Status::kOk) {
        break;
      }
    }
  }
  SUCCEED();
}

TEST_F(RecoveryUnderLoadTest, BackupsHoldCommittedStateAfterDrain) {
  // Run transfers, then drain and verify the backup copies match primaries.
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  txn::Transaction txn(engine_.get(), ctx);
  FastRand rng(5);
  for (int i = 0; i < 200; ++i) {
    const uint32_t p = static_cast<uint32_t>(rng.Uniform(kNodes));
    const uint64_t key = KeyOf(p, rng.Uniform(kKeysPerNode));
    while (true) {
      txn.Begin();
      Cell c{};
      if (txn.Read(table_, p, key, &c) != Status::kOk) {
        txn.UserAbort();
        continue;
      }
      c.value += 1;
      if (txn.Write(table_, p, key, &c) != Status::kOk) {
        txn.UserAbort();
        continue;
      }
      if (txn.Commit() == Status::kOk) {
        break;
      }
    }
  }
  for (uint32_t n = 0; n < kNodes; ++n) {
    replicator_->DrainNode(cluster_->node(n)->tool_context(), n);
  }
  uint32_t checked = 0;
  for (uint32_t p = 0; p < kNodes; ++p) {
    for (uint64_t i = 0; i < kKeysPerNode; ++i) {
      const uint64_t off = table_->hash(p)->Lookup(nullptr, KeyOf(p, i));
      std::vector<std::byte> rec(table_->record_bytes());
      cluster_->node(p)->bus()->Read(nullptr, off, rec.data(), rec.size());
      Cell primary{};
      store::RecordLayout::GatherValue(rec.data(), &primary, sizeof(primary));
      for (uint32_t r = 1; r < 3; ++r) {
        std::vector<std::byte> img;
        ASSERT_TRUE(replicator_->backup_store(cluster_->BackupOf(p, r))
                        ->Get(1, p, KeyOf(p, i), &img));
        Cell backup{};
        store::RecordLayout::GatherValue(img.data(), &backup, sizeof(backup));
        EXPECT_EQ(backup.value, primary.value) << "partition " << p << " key " << i;
        checked++;
      }
    }
  }
  EXPECT_EQ(checked, kNodes * kKeysPerNode * 2);
}

}  // namespace
}  // namespace drtmr::rep
