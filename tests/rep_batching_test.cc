// Replication batching battery (DESIGN.md §13): properties of the
// doorbell-batched log chains, the speculative slot lifecycle
// (speculative -> committed / tombstoned -> fenced), and the per-lane
// watermark that gates the backup pump — plus teeth tests that break each
// invariant through RepConfig::TestOverrides and show the same checks the
// property tests rely on would catch the corruption.
#include "src/rep/primary_backup.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/obs/metrics.h"
#include "src/store/record.h"
#include "src/txn/transaction.h"
#include "src/txn/txn_engine.h"

namespace drtmr::rep {
namespace {

using store::RecordLayout;

struct Cell {
  uint64_t value;
  uint64_t pad[9];  // 80 bytes: record spans 2 cache lines
};

constexpr uint32_t kTable = 1;
constexpr uint32_t kNodes = 3;
constexpr uint64_t kSeedValue = 100;

class RepBatchingTest : public ::testing::Test {
 protected:
  // Tests build the stack themselves so each can pick a RepConfig (window
  // size, teeth overrides).
  void Init(const RepConfig& rcfg) {
    cfg_.num_nodes = kNodes;
    cfg_.workers_per_node = 4;
    cfg_.memory_bytes = 16 << 20;
    cfg_.log_bytes = 4 << 20;
    cluster_ = std::make_unique<cluster::Cluster>(cfg_);
    catalog_ = std::make_unique<store::Catalog>(cluster_.get());
    store::TableOptions opt;
    opt.value_size = sizeof(Cell);
    opt.hash_buckets = 512;
    table_ = catalog_->CreateTable(kTable, opt);

    replicator_ = std::make_unique<PrimaryBackupReplicator>(cluster_.get(), rcfg);

    coordinator_ = std::make_unique<cluster::Coordinator>();
    for (uint32_t i = 0; i < kNodes; ++i) {
      coordinator_->Join(i, 0, 1000000);
    }

    txn::TxnConfig tcfg;
    tcfg.replication = true;
    tcfg.replicas = rcfg.replicas;
    engine_ = std::make_unique<txn::TxnEngine>(cluster_.get(), catalog_.get(), tcfg,
                                               coordinator_.get(), replicator_.get());
    engine_->StartServices();

    for (uint64_t k = 1; k <= 12; ++k) {
      LoadKey(k, kSeedValue);
    }
  }

  void TearDown() override {
    if (engine_ != nullptr) {
      engine_->StopServices();
    }
    obs::Registry::Global().Enable(false);
    obs::Registry::Global().Reset();
  }

  static uint32_t HomeOf(uint64_t k) { return static_cast<uint32_t>(k % kNodes); }

  void LoadKey(uint64_t k, uint64_t value) {
    Cell c{value, {}};
    const uint32_t node = HomeOf(k);
    uint64_t off = 0;
    ASSERT_EQ(table_->hash(node)->Insert(cluster_->node(node)->context(0), k, &c, &off),
              Status::kOk);
    std::vector<std::byte> image(table_->record_bytes());
    cluster_->node(node)->bus()->Read(nullptr, off, image.data(), image.size());
    for (uint32_t r = 1; r < kNodes; ++r) {
      replicator_->SeedBackup(cluster_->BackupOf(node, r), kTable, node, k, image.data(),
                              image.size());
    }
  }

  uint64_t CommitUpdate(uint32_t from_node, uint64_t key, uint64_t value) {
    sim::ThreadContext* ctx = cluster_->node(from_node)->context(0);
    txn::Transaction t(engine_.get(), ctx);
    while (true) {
      t.Begin();
      Cell c{};
      EXPECT_EQ(t.Read(table_, HomeOf(key), key, &c), Status::kOk);
      c.value = value;
      EXPECT_EQ(t.Write(table_, HomeOf(key), key, &c), Status::kOk);
      if (t.Commit() == Status::kOk) {
        return c.value;
      }
    }
  }

  uint64_t RecordOffset(uint64_t key) {
    return table_->hash(HomeOf(key))->Lookup(nullptr, key);
  }

  uint64_t RecordSeq(uint64_t key) {
    return cluster_->node(HomeOf(key))->bus()->ReadU64(nullptr,
                                                       RecordOffset(key) + RecordLayout::kSeqOff);
  }

  // A full record image carrying `value` at `seq`, as the transaction layer
  // would stage it.
  std::vector<std::byte> MakeImage(uint64_t key, uint64_t seq, uint64_t value) {
    std::vector<std::byte> image(table_->record_bytes());
    Cell c{value, {}};
    RecordLayout::Init(image.data(), key, /*incarnation=*/1, seq, &c, sizeof(c));
    return image;
  }

  // The value a backup node holds for `key`, or ~0 if it has no copy.
  uint64_t BackupValue(uint32_t backup_node, uint64_t key) {
    std::vector<std::byte> img;
    if (!replicator_->backup_store(backup_node)->Get(kTable, HomeOf(key), key, &img) ||
        img.size() < table_->record_bytes()) {
      return ~0ull;
    }
    Cell c{};
    RecordLayout::GatherValue(img.data(), &c, sizeof(c));
    return c.value;
  }

  // The invariant every property test (and recovery) leans on: a backup copy
  // only ever holds the image of a *decided, committed* transaction. The
  // teeth tests below run the same check and expect it to fail.
  ::testing::AssertionResult BackupHoldsCommittedValue(uint32_t backup_node, uint64_t key,
                                                       uint64_t committed) {
    const uint64_t got = BackupValue(backup_node, key);
    if (got == committed) {
      return ::testing::AssertionSuccess();
    }
    return ::testing::AssertionFailure()
           << "backup " << backup_node << " holds " << got << " for key " << key
           << ", committed value is " << committed
           << " (an undecided or aborted image leaked past the watermark)";
  }

  LogSlotHeader SlotHeader(uint32_t node, uint32_t lane, uint64_t index) {
    const RingGeometry ring = replicator_->Ring(lane);
    LogSlotHeader hdr;
    cluster_->node(node)->bus()->Read(nullptr, ring.slot_offset(index), &hdr, sizeof(hdr));
    return hdr;
  }

  uint64_t SlotValue(uint32_t node, uint32_t lane, uint64_t index) {
    const RingGeometry ring = replicator_->Ring(lane);
    std::vector<std::byte> img(table_->record_bytes());
    cluster_->node(node)->bus()->Read(nullptr, ring.slot_offset(index) + sizeof(LogSlotHeader),
                                      img.data(), img.size());
    Cell c{};
    RecordLayout::GatherValue(img.data(), &c, sizeof(c));
    return c.value;
  }

  uint64_t Watermark(uint32_t node, uint32_t lane) {
    const RingGeometry ring = replicator_->Ring(lane);
    return cluster_->node(node)->bus()->ReadU64(nullptr, ring.watermark_offset());
  }

  cluster::ClusterConfig cfg_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<store::Catalog> catalog_;
  store::Table* table_ = nullptr;
  std::unique_ptr<PrimaryBackupReplicator> replicator_;
  std::unique_ptr<cluster::Coordinator> coordinator_;
  std::unique_ptr<txn::TxnEngine> engine_;
};

// ---- properties ----

// One chained submission per backup delivers slots in stage order: ring
// indices are dense, stamps/txn ids ascend, and the pump applies them in that
// order (the backup converges to the *last* committed image).
TEST_F(RepBatchingTest, ChainDeliversSlotsInOrderPerBackup) {
  Init(RepConfig{});
  // Key 3 lives on node 0; its backups are nodes 1 and 2. Committing from
  // node 1 makes node 2 the one remote ring destination for the lane.
  const uint32_t writer_lane = replicator_->LaneOf(cluster_->node(1)->context(0));
  constexpr int kUpdates = 6;
  for (int i = 0; i < kUpdates; ++i) {
    CommitUpdate(/*from_node=*/1, /*key=*/3, 1000 + i);
  }
  uint64_t prev_txn = 0;
  for (uint64_t i = 0; i < kUpdates; ++i) {
    const LogSlotHeader hdr = SlotHeader(/*node=*/2, writer_lane, i);
    ASSERT_EQ(hdr.stamp, i + 1) << "slot " << i << " out of order";
    ASSERT_TRUE(LogSlotHeaderIntact(hdr));
    EXPECT_EQ(hdr.key, 3u);
    EXPECT_EQ(hdr.flags, kSlotCommitted);
    EXPECT_GT(hdr.txn_id, prev_txn) << "txn order must follow ring order";
    prev_txn = hdr.txn_id;
    EXPECT_EQ(SlotValue(2, writer_lane, i), 1000u + i);
  }
  EXPECT_EQ(Watermark(2, writer_lane), static_cast<uint64_t>(kUpdates))
      << "every decision advances the watermark past its slots";
  replicator_->DrainNode(cluster_->node(2)->tool_context(), 2);
  EXPECT_TRUE(BackupHoldsCommittedValue(2, 3, 1000 + kUpdates - 1));
}

// The watermark is the decided frontier: a staged-but-undecided slot is never
// applied by the pump, no matter how often it runs; the commit decision (one
// 8-byte chained append) makes it visible.
TEST_F(RepBatchingTest, WatermarkGatesThePumpUntilTheDecision) {
  Init(RepConfig{});
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  const uint32_t lane = replicator_->LaneOf(ctx);
  const uint64_t seq = RecordSeq(3);
  const std::vector<std::byte> img = MakeImage(3, seq + 2, 777);
  ASSERT_EQ(replicator_->StageUpdate(ctx, /*txn_id=*/4242, HomeOf(3), kTable, 3, RecordOffset(3),
                                     img.data(), img.size()),
            Status::kOk);
  EXPECT_EQ(Watermark(2, lane), 0u) << "staging must not move the decided frontier";

  const uint64_t applied_before = replicator_->entries_applied();
  for (int i = 0; i < 4; ++i) {
    replicator_->Pump(cluster_->node(2)->tool_context());
  }
  EXPECT_EQ(replicator_->entries_applied(), applied_before)
      << "pump consumed a speculative slot";
  EXPECT_TRUE(BackupHoldsCommittedValue(2, 3, kSeedValue));

  ASSERT_EQ(replicator_->CommitTxnLog(ctx, 4242), Status::kOk);
  replicator_->FlushLog(ctx);
  EXPECT_EQ(Watermark(2, lane), 1u);
  replicator_->DrainNode(cluster_->node(2)->tool_context(), 2);
  EXPECT_TRUE(BackupHoldsCommittedValue(2, 3, 777));
}

// An abort retires its speculative slots as tombstones: the pump consumes
// them without applying, the ring does not jam, and recovery (truncation +
// drain) never replays them.
TEST_F(RepBatchingTest, AbortedSlotsAreRetiredNotReplayed) {
  Init(RepConfig{});
  obs::Registry::Global().Enable(true);
  obs::Registry::Global().Reset();
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  const uint32_t lane = replicator_->LaneOf(ctx);
  const uint64_t seq = RecordSeq(3);
  const std::vector<std::byte> img = MakeImage(3, seq + 2, 777);
  ASSERT_EQ(replicator_->StageUpdate(ctx, 7001, HomeOf(3), kTable, 3, RecordOffset(3), img.data(),
                                     img.size()),
            Status::kOk);
  replicator_->AbortTxnLog(ctx, 7001);
  replicator_->FlushLog(ctx);

  EXPECT_EQ(SlotHeader(2, lane, 0).flags, kSlotTombstone);
  EXPECT_EQ(Watermark(2, lane), 1u) << "tombstones must stay consumable or aborts jam the ring";
  replicator_->DrainNode(cluster_->node(2)->tool_context(), 2);
  EXPECT_TRUE(BackupHoldsCommittedValue(1, 3, kSeedValue));
  EXPECT_TRUE(BackupHoldsCommittedValue(2, 3, kSeedValue));
  const obs::Snapshot snap = obs::Registry::Global().Collect();
  EXPECT_GE(snap.counter(obs::Counter::kRepSlotsRetired), 2u) << "one per backup copy";

  // The ring keeps flowing after the abort...
  CommitUpdate(0, 3, 500);
  replicator_->DrainNode(cluster_->node(2)->tool_context(), 2);
  EXPECT_TRUE(BackupHoldsCommittedValue(2, 3, 500));

  // ...and a speculative slot left by a *dead* writer is discarded by
  // recovery truncation, not replayed.
  const std::vector<std::byte> poison = MakeImage(3, RecordSeq(3) + 2, 666);
  ASSERT_EQ(replicator_->StageUpdate(ctx, 7002, HomeOf(3), kTable, 3, RecordOffset(3),
                                     poison.data(), poison.size()),
            Status::kOk);
  cluster_->Kill(0);
  EXPECT_GE(replicator_->TruncateTornTail(cluster_->node(2)->tool_context(), 2, /*writer=*/0), 1u);
  replicator_->DrainNode(cluster_->node(2)->tool_context(), 2);
  EXPECT_TRUE(BackupHoldsCommittedValue(2, 3, 500));
}

// End-to-end: early staging at lock-acquire time means a transaction that
// fails validation *after* locking has speculative slots in flight; the abort
// path must retire every one of them and leave the backups untouched.
TEST_F(RepBatchingTest, ValidationAbortAfterEarlyStagingLeavesBackupsClean) {
  Init(RepConfig{});
  obs::Registry::Global().Enable(true);
  obs::Registry::Global().Reset();
  // Force key 6 (node 0) uncommittable: writers lock it, then validation
  // fails — after StageReplicationEarly already ran.
  const uint64_t off = RecordOffset(6);
  sim::MemoryBus* bus = cluster_->node(0)->bus();
  const uint64_t seq = bus->ReadU64(nullptr, off + RecordLayout::kSeqOff);
  bus->WriteU64(nullptr, off + RecordLayout::kSeqOff, seq + 1);

  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  txn::Transaction t(engine_.get(), ctx);
  t.Begin();
  Cell c{};
  ASSERT_EQ(t.Read(table_, 0, 6, &c), Status::kOk);
  c.value = 31337;
  ASSERT_EQ(t.Write(table_, 0, 6, &c), Status::kOk);
  EXPECT_EQ(t.Commit(), Status::kAborted);

  const obs::Snapshot snap = obs::Registry::Global().Collect();
  EXPECT_GE(snap.counter(obs::Counter::kRepSlotsRetired), 1u)
      << "the aborted transaction staged early and must retire its slots";
  for (uint32_t n = 0; n < kNodes; ++n) {
    replicator_->DrainNode(cluster_->node(n)->tool_context(), n);
  }
  EXPECT_TRUE(BackupHoldsCommittedValue(1, 6, kSeedValue));
  EXPECT_TRUE(BackupHoldsCommittedValue(2, 6, kSeedValue));

  // Ring healthy afterwards: the next commit replicates normally.
  bus->WriteU64(nullptr, off + RecordLayout::kSeqOff, seq);
  CommitUpdate(1, 6, 900);
  for (uint32_t n = 0; n < kNodes; ++n) {
    replicator_->DrainNode(cluster_->node(n)->tool_context(), n);
  }
  EXPECT_TRUE(BackupHoldsCommittedValue(2, 6, 900));
}

// A mispredicted early image (blind write) is superseded: the stale slot is
// tombstoned, the corrected one restaged, and only the corrected image
// reaches the backup.
TEST_F(RepBatchingTest, SupersedeReplacesMispredictedImage) {
  Init(RepConfig{});
  obs::Registry::Global().Enable(true);
  obs::Registry::Global().Reset();
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  const uint32_t lane = replicator_->LaneOf(ctx);
  const uint64_t seq = RecordSeq(3);
  const std::vector<std::byte> wrong = MakeImage(3, seq + 2, 111);
  const std::vector<std::byte> right = MakeImage(3, seq + 2, 222);
  ASSERT_EQ(replicator_->StageUpdate(ctx, 9001, HomeOf(3), kTable, 3, RecordOffset(3),
                                     wrong.data(), wrong.size()),
            Status::kOk);
  ASSERT_EQ(replicator_->SupersedeUpdate(ctx, 9001, HomeOf(3), kTable, 3, RecordOffset(3),
                                         right.data(), right.size()),
            Status::kOk);
  ASSERT_EQ(replicator_->CommitTxnLog(ctx, 9001), Status::kOk);
  replicator_->FlushLog(ctx);

  EXPECT_EQ(SlotHeader(2, lane, 0).flags, kSlotTombstone) << "mispredicted slot retired";
  EXPECT_EQ(SlotHeader(2, lane, 1).flags, kSlotCommitted) << "corrected slot committed";
  EXPECT_EQ(Watermark(2, lane), 2u);
  replicator_->DrainNode(cluster_->node(2)->tool_context(), 2);
  EXPECT_TRUE(BackupHoldsCommittedValue(2, 3, 222));
  const obs::Snapshot snap = obs::Registry::Global().Collect();
  EXPECT_GE(snap.counter(obs::Counter::kRepSlotsSuperseded), 1u);
}

// Group commit amortizes the wire cost: many chained WQEs ride each doorbell,
// and one durability fence covers a window of decisions.
TEST_F(RepBatchingTest, GroupCommitAmortizesDoorbellsAndFences) {
  RepConfig rcfg;
  rcfg.group_commit_window = 8;
  Init(rcfg);
  obs::Registry::Global().Enable(true);
  obs::Registry::Global().Reset();
  sim::ThreadContext* ctx = cluster_->node(1)->context(0);
  constexpr int kUpdates = 32;
  for (int i = 0; i < kUpdates; ++i) {
    CommitUpdate(/*from_node=*/1, /*key=*/3, 2000 + i);
  }
  replicator_->FlushLog(ctx);  // close the partial window

  const obs::Snapshot snap = obs::Registry::Global().Collect();
  const uint64_t doorbells = snap.counter(obs::Counter::kFabricDoorbells);
  const uint64_t verbs = snap.counter(obs::Counter::kFabricChainedVerbs);
  const uint64_t flushes = snap.counter(obs::Counter::kRepWindowFlushes);
  const uint64_t window_txns = snap.counter(obs::Counter::kRepWindowTxns);
  ASSERT_GT(doorbells, 0u);
  EXPECT_GT(verbs, doorbells) << "chains must carry multiple WQEs per doorbell";
  ASSERT_GT(flushes, 0u);
  EXPECT_GE(window_txns, static_cast<uint64_t>(kUpdates));
  EXPECT_GE(window_txns, 2 * flushes)
      << "a window of 8 must average well above one decision per fence";

  replicator_->DrainNode(cluster_->node(2)->tool_context(), 2);
  EXPECT_TRUE(BackupHoldsCommittedValue(2, 3, 2000 + kUpdates - 1));
}

// ---- teeth: each override breaks one lifecycle invariant, and the same
// ---- checks the property tests use must detect the corruption.

// A pump that ignores the watermark applies a speculative slot; when the
// transaction aborts, the backup permanently diverges from the primary.
TEST_F(RepBatchingTest, TeethPumpIgnoringWatermarkIsCaught) {
  RepConfig rcfg;
  rcfg.test.pump_ignores_watermark = true;
  Init(rcfg);
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  const uint64_t seq = RecordSeq(3);
  const std::vector<std::byte> img = MakeImage(3, seq + 2, 777);
  ASSERT_EQ(replicator_->StageUpdate(ctx, 4242, HomeOf(3), kTable, 3, RecordOffset(3), img.data(),
                                     img.size()),
            Status::kOk);
  replicator_->FlushLog(ctx);
  replicator_->DrainNode(cluster_->node(2)->tool_context(), 2);
  // The battery's invariant check fires: an undecided image is visible.
  EXPECT_FALSE(BackupHoldsCommittedValue(2, 3, kSeedValue))
      << "teeth override had no effect — the watermark property test is toothless";
  replicator_->AbortTxnLog(ctx, 4242);
  replicator_->FlushLog(ctx);
  EXPECT_EQ(BackupValue(2, 3), 777u) << "aborted image stuck on the backup";
}

// A pump that applies tombstones revives an aborted image — and because the
// backup store is freshest-by-seq, the *real* commit at the same seq can
// never displace it: the divergence survives to recovery.
TEST_F(RepBatchingTest, TeethPumpApplyingTombstonesIsCaught) {
  RepConfig rcfg;
  rcfg.test.pump_applies_tombstones = true;
  Init(rcfg);
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  const uint64_t seq = RecordSeq(3);
  const std::vector<std::byte> img = MakeImage(3, seq + 2, 777);
  ASSERT_EQ(replicator_->StageUpdate(ctx, 7001, HomeOf(3), kTable, 3, RecordOffset(3), img.data(),
                                     img.size()),
            Status::kOk);
  replicator_->AbortTxnLog(ctx, 7001);
  replicator_->FlushLog(ctx);
  replicator_->DrainNode(cluster_->node(2)->tool_context(), 2);
  EXPECT_FALSE(BackupHoldsCommittedValue(2, 3, kSeedValue))
      << "teeth override had no effect — the abort property test is toothless";

  // The legitimate commit reuses the same seq (the abort never advanced it):
  // the poisoned backup copy blocks it.
  CommitUpdate(0, 3, 500);
  replicator_->DrainNode(cluster_->node(2)->tool_context(), 2);
  EXPECT_FALSE(BackupHoldsCommittedValue(2, 3, 500));
}

// Publishing the watermark at stage time makes recovery trust speculative
// slots: truncation keeps them, the drain applies them, and an in-flight
// transaction of a dead node reappears after recovery.
TEST_F(RepBatchingTest, TeethWatermarkAtStageIsCaught) {
  RepConfig rcfg;
  rcfg.test.watermark_at_stage = true;
  Init(rcfg);
  sim::ThreadContext* ctx = cluster_->node(0)->context(0);
  const uint64_t seq = RecordSeq(3);
  const std::vector<std::byte> img = MakeImage(3, seq + 2, 666);
  ASSERT_EQ(replicator_->StageUpdate(ctx, 7002, HomeOf(3), kTable, 3, RecordOffset(3), img.data(),
                                     img.size()),
            Status::kOk);
  replicator_->FlushLog(ctx);
  cluster_->Kill(0);
  // Truncation should drop the speculative slot (AbortedSlotsAreRetired...
  // proves it does); under the override the slot sits below the watermark and
  // survives as "decided".
  EXPECT_EQ(replicator_->TruncateTornTail(cluster_->node(2)->tool_context(), 2, /*writer=*/0), 0u)
      << "teeth override had no effect — truncation still dropped the slot";
  replicator_->DrainNode(cluster_->node(2)->tool_context(), 2);
  EXPECT_FALSE(BackupHoldsCommittedValue(2, 3, kSeedValue))
      << "an undecided transaction of the dead node was replayed";
}

}  // namespace
}  // namespace drtmr::rep
