// Unit tests for the fault-injection plan (sim/fault.h): per-rule semantics
// of delays, drops, partitions, kills, and forced HTM aborts, plus the
// fabric-level behavior of verbs issued against an installed plan.
#include <gtest/gtest.h>

#include "src/cluster/node.h"
#include "src/sim/fabric.h"
#include "src/sim/fault.h"

namespace drtmr::sim {
namespace {

class FaultPlanTest : public ::testing::Test {
 protected:
  FaultPlanTest() {
    cluster::ClusterConfig cfg;
    cfg.num_nodes = 3;
    cfg.workers_per_node = 1;
    cfg.memory_bytes = 1 << 20;
    cfg.log_bytes = 1 << 18;
    cluster_ = std::make_unique<cluster::Cluster>(cfg);
    ctx_ = cluster_->node(0)->context(0);
  }

  std::unique_ptr<cluster::Cluster> cluster_;
  ThreadContext* ctx_ = nullptr;
};

TEST_F(FaultPlanTest, EmptyPlanDeliversEverything) {
  FaultPlan plan(1);
  EXPECT_TRUE(plan.empty());
  uint64_t extra = 0, stall = 0;
  EXPECT_EQ(plan.OnVerb(ctx_, 0, 1, &extra, &stall), FaultPlan::VerbFate::kDeliver);
  EXPECT_EQ(extra, 0u);
  EXPECT_EQ(stall, 0u);
}

TEST_F(FaultPlanTest, CertainDelayAccumulates) {
  FaultPlan plan(1);
  plan.DelayVerbs(0, 1, {0, 0}, /*extra_ns=*/700);
  plan.DelayVerbs(FaultPlan::kAnyNode, FaultPlan::kAnyNode, {0, 0}, /*extra_ns=*/300);
  uint64_t extra = 0, stall = 0;
  EXPECT_EQ(plan.OnVerb(ctx_, 0, 1, &extra, &stall), FaultPlan::VerbFate::kDeliver);
  EXPECT_EQ(extra, 1000u);  // both matching rules contribute
  extra = 0;
  EXPECT_EQ(plan.OnVerb(ctx_, 2, 0, &extra, &stall), FaultPlan::VerbFate::kDeliver);
  EXPECT_EQ(extra, 300u);  // only the wildcard rule matches this pair
}

TEST_F(FaultPlanTest, CertainDropLosesTheVerb) {
  FaultPlan plan(1);
  plan.DropVerbs(0, 1, {0, 0}, FaultPlan::kPpmAlways);
  uint64_t extra = 0, stall = 0;
  EXPECT_EQ(plan.OnVerb(ctx_, 0, 1, &extra, &stall), FaultPlan::VerbFate::kDrop);
  EXPECT_EQ(plan.OnVerb(ctx_, 1, 0, &extra, &stall), FaultPlan::VerbFate::kDrop);  // symmetric
  EXPECT_EQ(plan.OnVerb(ctx_, 0, 2, &extra, &stall), FaultPlan::VerbFate::kDeliver);
}

TEST_F(FaultPlanTest, TransientPartitionStallsUntilWindowCloses) {
  FaultPlan plan(1);
  plan.Partition(0, 1, {1'000, 5'000});
  uint64_t extra = 0, stall = 0;
  // Before the window: delivered untouched.
  EXPECT_EQ(plan.OnVerb(ctx_, 0, 1, &extra, &stall), FaultPlan::VerbFate::kDeliver);
  EXPECT_EQ(stall, 0u);
  // Inside the window: delivered after a lossless stall to the window close.
  ctx_->clock.AdvanceTo(2'000);
  EXPECT_EQ(plan.OnVerb(ctx_, 0, 1, &extra, &stall), FaultPlan::VerbFate::kDeliver);
  EXPECT_EQ(stall, 5'000u);
  // An uninvolved pair is unaffected.
  stall = 0;
  EXPECT_EQ(plan.OnVerb(ctx_, 0, 2, &extra, &stall), FaultPlan::VerbFate::kDeliver);
  EXPECT_EQ(stall, 0u);
}

TEST_F(FaultPlanTest, PermanentPartitionIsUnreachable) {
  FaultPlan plan(1);
  plan.Partition(0, 1, {1'000, 0});
  uint64_t extra = 0, stall = 0;
  EXPECT_EQ(plan.OnVerb(ctx_, 0, 1, &extra, &stall), FaultPlan::VerbFate::kDeliver);
  ctx_->clock.AdvanceTo(1'500);
  EXPECT_EQ(plan.OnVerb(ctx_, 0, 1, &extra, &stall), FaultPlan::VerbFate::kUnreachable);
}

TEST_F(FaultPlanTest, FreezeIsolatesTheNodeAndReportsFrozenUntil) {
  FaultPlan plan(1);
  plan.Freeze(1, {100, 200});
  EXPECT_EQ(plan.FrozenUntil(1, 150), 200u);
  EXPECT_EQ(plan.FrozenUntil(1, 250), 0u);
  EXPECT_EQ(plan.FrozenUntil(0, 150), 0u);  // other nodes are not frozen
  uint64_t extra = 0, stall = 0;
  ctx_->clock.AdvanceTo(150);
  EXPECT_EQ(plan.OnVerb(ctx_, 0, 1, &extra, &stall), FaultPlan::VerbFate::kDeliver);
  EXPECT_EQ(stall, 200u);
  stall = 0;
  EXPECT_EQ(plan.OnVerb(ctx_, 0, 2, &extra, &stall), FaultPlan::VerbFate::kDeliver);
  EXPECT_EQ(stall, 0u);
}

TEST_F(FaultPlanTest, KillIsPermanentFromTheInstant) {
  FaultPlan plan(1);
  plan.KillAt(2, 3'000);
  EXPECT_EQ(plan.KillTimeOf(2), 3'000u);
  EXPECT_EQ(plan.KillTimeOf(0), ~0ull);
  uint64_t extra = 0, stall = 0;
  EXPECT_EQ(plan.OnVerb(ctx_, 0, 2, &extra, &stall), FaultPlan::VerbFate::kDeliver);
  ctx_->clock.AdvanceTo(3'000);
  EXPECT_EQ(plan.OnVerb(ctx_, 0, 2, &extra, &stall), FaultPlan::VerbFate::kUnreachable);
  EXPECT_EQ(plan.OnVerb(ctx_, 2, 1, &extra, &stall), FaultPlan::VerbFate::kUnreachable);
  EXPECT_EQ(plan.OnVerb(ctx_, 0, 1, &extra, &stall), FaultPlan::VerbFate::kDeliver);
}

TEST_F(FaultPlanTest, ForcedHtmAbortMatchesSiteAndWindow) {
  FaultPlan plan(1);
  plan.ForceHtmAbort(obs::HtmSite::kCommit, /*abort_code=*/2, FaultPlan::kPpmAlways,
                     {0, 10'000});
  EXPECT_EQ(plan.ForcedHtmAbort(ctx_, obs::HtmSite::kCommit, 5'000), 2u);
  EXPECT_EQ(plan.ForcedHtmAbort(ctx_, obs::HtmSite::kLocalRead, 5'000), 0u);
  EXPECT_EQ(plan.ForcedHtmAbort(ctx_, obs::HtmSite::kCommit, 20'000), 0u);
}

TEST_F(FaultPlanTest, WithoutRuleShrinksAndDescribeNamesRules) {
  FaultPlan plan(7);
  plan.DelayVerbs(0, 1, {0, 0}, 500).KillAt(2, 1'000);
  EXPECT_EQ(plan.num_rules(), 2u);
  const std::string desc = plan.Describe();
  EXPECT_NE(desc.find("delay"), std::string::npos);
  EXPECT_NE(desc.find("kill"), std::string::npos);
  const FaultPlan shrunk = plan.WithoutRule(1);
  EXPECT_EQ(shrunk.num_rules(), 1u);
  EXPECT_EQ(shrunk.KillTimeOf(2), ~0ull);
  EXPECT_EQ(shrunk.seed(), plan.seed());
}

TEST_F(FaultPlanTest, FabricChargesInjectedDelayAndStall) {
  FaultPlan plan(1);
  plan.DelayVerbs(0, 1, {0, 0}, /*extra_ns=*/50'000);
  cluster_->SetFaultPlan(&plan);
  uint64_t word = 0;
  const uint64_t before = ctx_->clock.now_ns();
  // Any remote offset works for a raw read of node 1's memory.
  ASSERT_EQ(cluster_->node(0)->nic()->Read(ctx_, 1, 0, &word, sizeof(word)), Status::kOk);
  EXPECT_GE(ctx_->clock.now_ns() - before, 50'000u);
  cluster_->SetFaultPlan(nullptr);
}

TEST_F(FaultPlanTest, FabricRefusesVerbsToKilledNode) {
  FaultPlan plan(1);
  plan.KillAt(1, 1'000);
  cluster_->SetFaultPlan(&plan);
  ctx_->clock.AdvanceTo(2'000);
  uint64_t word = 0;
  EXPECT_EQ(cluster_->node(0)->nic()->Read(ctx_, 1, 0, &word, sizeof(word)),
            Status::kUnavailable);
  EXPECT_EQ(cluster_->node(0)->nic()->Read(ctx_, 2, 0, &word, sizeof(word)), Status::kOk);
  cluster_->SetFaultPlan(nullptr);
}

}  // namespace
}  // namespace drtmr::sim
