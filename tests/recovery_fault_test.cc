// Recovery failure paths (§5.2): a torn in-flight log entry left by the dead
// writer must be discarded (not applied, not skipped past) during backup
// promotion, and recovery must be safe to run while surviving workers keep
// committing against the remaining partitions.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "src/cluster/partition_map.h"
#include "src/obs/metrics.h"
#include "src/rep/log.h"
#include "src/rep/primary_backup.h"
#include "src/rep/recovery.h"
#include "src/store/record.h"
#include "src/txn/transaction.h"
#include "src/txn/txn_engine.h"
#include "src/util/test_seed.h"

namespace drtmr::rep {
namespace {

using store::RecordLayout;

struct Cell {
  int64_t value;
  uint64_t pad[6];
};

constexpr uint32_t kTableId = 1;
constexpr int64_t kInitialBalance = 1000;

class RecoveryFaultTest : public ::testing::Test {
 protected:
  void Build(uint32_t nodes, uint64_t keys_per_node, uint32_t group_commit_window = 1) {
    nodes_ = nodes;
    keys_per_node_ = keys_per_node;
    cfg_.num_nodes = nodes;
    cfg_.workers_per_node = 3;
    cfg_.memory_bytes = 16 << 20;
    cfg_.log_bytes = 4 << 20;
    cluster_ = std::make_unique<cluster::Cluster>(cfg_);
    catalog_ = std::make_unique<store::Catalog>(cluster_.get());
    store::TableOptions opt;
    opt.value_size = sizeof(Cell);
    opt.hash_buckets = 256;
    table_ = catalog_->CreateTable(kTableId, opt);
    coordinator_ = std::make_unique<cluster::Coordinator>();
    for (uint32_t i = 0; i < nodes; ++i) {
      coordinator_->Join(i, 0, ~0ull >> 2);
    }
    RepConfig rcfg;
    rcfg.replicas = 3;
    rcfg.group_commit_window = group_commit_window;
    if (group_commit_window > 1) {
      // Mid-window kill tests need the window to stay open until the kill:
      // the age-based close would fence it behind the test's back.
      rcfg.group_commit_max_open_ns = ~0ull;
    }
    replicator_ = std::make_unique<PrimaryBackupReplicator>(cluster_.get(), rcfg);
    txn::TxnConfig tcfg;
    tcfg.replication = true;
    engine_ = std::make_unique<txn::TxnEngine>(cluster_.get(), catalog_.get(), tcfg,
                                               coordinator_.get(), replicator_.get());
    engine_->StartServices();
    pmap_ = std::make_unique<cluster::PartitionMap>(nodes);
    for (uint32_t n = 0; n < nodes; ++n) {
      for (uint64_t i = 0; i < keys_per_node; ++i) {
        Cell c{kInitialBalance, {}};
        ASSERT_EQ(
            table_->hash(n)->Insert(cluster_->node(n)->context(0), KeyOf(n, i), &c, nullptr),
            Status::kOk);
        const uint64_t off = table_->hash(n)->Lookup(nullptr, KeyOf(n, i));
        std::vector<std::byte> img(table_->record_bytes());
        cluster_->node(n)->bus()->Read(nullptr, off, img.data(), img.size());
        for (uint32_t r = 1; r < 3; ++r) {
          replicator_->SeedBackup(cluster_->BackupOf(n, r), kTableId, n, KeyOf(n, i),
                                  img.data(), img.size());
        }
      }
    }
  }

  ~RecoveryFaultTest() override {
    if (engine_ != nullptr) {
      engine_->StopServices();
    }
  }

  static uint64_t KeyOf(uint32_t part, uint64_t i) {
    return (static_cast<uint64_t>(part) << 16) | (i + 1);
  }

  // Forges a *decided* log slot at the head of one of `writer`'s lane rings
  // on `node` carrying `image` for `key` (primary = writer), with the lane's
  // watermark published past it — what a writer that died right after its
  // commit decision leaves behind. A torn caller passes an image whose
  // per-line versions are stale (inconsistent with its seqnum): the writer
  // died mid-slot-write after the decision word landed.
  void ForgeSlot(uint32_t node, uint32_t writer, uint64_t key, const std::byte* image,
                 size_t image_len) {
    const uint32_t lane = replicator_->LaneOf(cluster_->node(writer)->context(0));
    const RingGeometry ring = replicator_->Ring(lane);
    LogSlotHeader hdr{};
    hdr.stamp = 1;  // index 0
    hdr.txn_id = 0xf0f0;
    hdr.key = key;
    hdr.record_off = 0;
    hdr.table_id = kTableId;
    hdr.primary = writer;
    hdr.image_len = static_cast<uint32_t>(image_len);
    hdr.flags = kSlotCommitted;
    // An intact header fold: the torn-image case must be detected from the
    // payload lines disagreeing with the seqnum, not from a garbled header.
    hdr.check = FoldLogSlotHeader(hdr);
    std::vector<std::byte> slot(sizeof(LogSlotHeader) + image_len);
    std::memcpy(slot.data(), &hdr, sizeof(hdr));
    std::memcpy(slot.data() + sizeof(hdr), image, image_len);
    cluster_->node(node)->bus()->Write(nullptr, ring.slot_offset(0), slot.data(), slot.size());
    cluster_->node(node)->bus()->WriteU64(nullptr, ring.watermark_offset(), 1);
  }

  // Reads the record for partition `part`, key index `i` through the current
  // partition map.
  void ReadRecord(uint32_t part, uint64_t i, Cell* value, uint64_t* seq) {
    const uint32_t n = pmap_->node_of(part);
    const uint64_t off = table_->hash(n)->Lookup(nullptr, KeyOf(part, i));
    ASSERT_NE(off, store::HashStore::kNoRecord);
    std::vector<std::byte> rec(table_->record_bytes());
    cluster_->node(n)->bus()->Read(nullptr, off, rec.data(), rec.size());
    RecordLayout::GatherValue(rec.data(), value, sizeof(*value));
    *seq = store::SeqWord::Value(RecordLayout::GetSeq(rec.data()));
  }

  uint32_t nodes_ = 0;
  uint64_t keys_per_node_ = 0;
  cluster::ClusterConfig cfg_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<store::Catalog> catalog_;
  store::Table* table_ = nullptr;
  std::unique_ptr<cluster::Coordinator> coordinator_;
  std::unique_ptr<PrimaryBackupReplicator> replicator_;
  std::unique_ptr<txn::TxnEngine> engine_;
  std::unique_ptr<cluster::PartitionMap> pmap_;
};

// A writer that dies mid-slot leaves a stamped header whose payload lines
// disagree with the seqnum. Promotion must refuse to roll that entry forward
// (the transaction behind it never reached its commit point) while still
// applying the dead writer's complete entries.
TEST_F(RecoveryFaultTest, TornInFlightLogEntryIsDiscardedDuringPromotion) {
  Build(/*nodes=*/3, /*keys_per_node=*/6);
  constexpr uint32_t kDead = 1;
  constexpr uint32_t kHost = 2;
  const size_t rec_bytes = table_->record_bytes();
  ASSERT_GE(RecordLayout::LinesFor(sizeof(Cell)), 2u)
      << "the torn-image test needs a multi-line record";

  // Torn entry in kHost's ring: claims KeyOf(kDead, 0) jumped to seq 4 with a
  // huge balance, but the line versions still carry the old seq.
  {
    const uint64_t off = table_->hash(kDead)->Lookup(nullptr, KeyOf(kDead, 0));
    std::vector<std::byte> img(rec_bytes);
    cluster_->node(kDead)->bus()->Read(nullptr, off, img.data(), img.size());
    const uint64_t old_seq = RecordLayout::GetSeq(img.data());
    Cell forged{kInitialBalance + 7777, {}};
    RecordLayout::SetSeq(img.data(), old_seq + 2);
    RecordLayout::ScatterValue(img.data(), &forged, sizeof(forged));
    // Deliberately NOT SetVersions: lines 1+ still carry old_seq's version.
    ASSERT_FALSE(RecordLayout::ImageConsistent(img.data(), img.size()));
    ForgeSlot(kHost, kDead, KeyOf(kDead, 0), img.data(), img.size());
  }

  // Complete entry in node 0's ring: KeyOf(kDead, 1) legitimately advanced to
  // seq 4 before the writer died; this one MUST be rolled forward.
  const int64_t committed_value = kInitialBalance + 55;
  {
    const uint64_t off = table_->hash(kDead)->Lookup(nullptr, KeyOf(kDead, 1));
    std::vector<std::byte> img(rec_bytes);
    cluster_->node(kDead)->bus()->Read(nullptr, off, img.data(), img.size());
    const uint64_t old_seq = RecordLayout::GetSeq(img.data());
    Cell forged{committed_value, {}};
    RecordLayout::SetSeq(img.data(), old_seq + 2);
    RecordLayout::ScatterValue(img.data(), &forged, sizeof(forged));
    RecordLayout::SetVersions(img.data(), sizeof(Cell), old_seq + 2);
    ASSERT_TRUE(RecordLayout::ImageConsistent(img.data(), img.size()));
    ForgeSlot(0, kDead, KeyOf(kDead, 1), img.data(), img.size());
  }

  cluster_->Kill(kDead);
  coordinator_->Remove(kDead);

  RecoveryManager rm(engine_.get(), replicator_.get(), coordinator_.get());
  const RecoveryReport report =
      rm.RecoverAfterFailure(cluster_->node(kHost)->tool_context(), kDead, kHost, pmap_.get());
  EXPECT_GE(report.records_rehosted, keys_per_node_);
  EXPECT_EQ(report.torn_tail_truncated, 1u);
  EXPECT_GE(replicator_->torn_slots(), 1u);
  EXPECT_EQ(pmap_->node_of(kDead), kHost);

  // The torn entry was not applied: the re-hosted record carries the seeded
  // state, not the forged balance.
  Cell c{};
  uint64_t seq = 0;
  ReadRecord(kDead, 0, &c, &seq);
  EXPECT_EQ(c.value, kInitialBalance);
  // The complete entry was rolled forward into the promoted copy.
  ReadRecord(kDead, 1, &c, &seq);
  EXPECT_EQ(c.value, committed_value);

  // The ring is not wedged on the tear: transactions against the re-hosted
  // partition commit.
  sim::ThreadContext* ctx = cluster_->node(kHost)->context(0);
  txn::Transaction txn(engine_.get(), ctx);
  for (int attempt = 0; attempt < 100; ++attempt) {
    txn.Begin();
    Cell v{};
    if (txn.Read(table_, pmap_->node_of(kDead), KeyOf(kDead, 0), &v) != Status::kOk) {
      txn.UserAbort();
      continue;
    }
    v.value += 1;
    if (txn.Write(table_, pmap_->node_of(kDead), KeyOf(kDead, 0), &v) != Status::kOk) {
      txn.UserAbort();
      continue;
    }
    if (txn.Commit() == Status::kOk) {
      break;
    }
  }
  ReadRecord(kDead, 0, &c, &seq);
  EXPECT_EQ(c.value, kInitialBalance + 1);
}

// A kill in the middle of an open group-commit window (decisions made, fence
// never issued) must lose nothing: the per-lane watermark covers every
// decided slot the moment the decision lands, so promotion rolls all of them
// forward, while the one transaction still in flight at the kill — staged at
// lock time, never decided — is truncated and rolled back (§5.2, DESIGN.md
// §13 watermark contract).
TEST_F(RecoveryFaultTest, MidWindowKillLosesNoDecidedUpdates) {
  Build(/*nodes=*/3, /*keys_per_node=*/6, /*group_commit_window=*/64);
  constexpr uint32_t kDead = 1;
  constexpr uint32_t kHost = 2;
  constexpr uint64_t kCommitted = 5;  // decided inside the open window

  obs::Registry::Global().Enable(true);
  obs::Registry::Global().Reset();

  // kCommitted transactions from the doomed node, all inside one open window:
  // with a 64-txn window and the age-based close disabled, no fence runs
  // between the first decision and the kill.
  sim::ThreadContext* ctx = cluster_->node(kDead)->context(0);
  txn::Transaction txn(engine_.get(), ctx);
  for (uint64_t i = 0; i < kCommitted; ++i) {
    bool committed = false;
    for (int attempt = 0; attempt < 100 && !committed; ++attempt) {
      txn.Begin();
      Cell v{};
      if (txn.Read(table_, kDead, KeyOf(kDead, i), &v) != Status::kOk) {
        txn.UserAbort();
        continue;
      }
      v.value = kInitialBalance + 100 + static_cast<int64_t>(i);
      if (txn.Write(table_, kDead, KeyOf(kDead, i), &v) != Status::kOk) {
        txn.UserAbort();
        continue;
      }
      committed = txn.Commit() == Status::kOk;
    }
    ASSERT_TRUE(committed) << "key index " << i;
  }
  {
    const obs::Snapshot snap = obs::Registry::Global().Collect();
    ASSERT_EQ(snap.counter(obs::Counter::kRepWindowFlushes), 0u)
        << "window closed early — the kill would not land mid-window";
  }
  obs::Registry::Global().Enable(false);
  obs::Registry::Global().Reset();

  // ...plus one transaction still in flight at the kill: staged at lock time
  // (speculative slot past the watermark), never decided.
  {
    const uint64_t off = table_->hash(kDead)->Lookup(nullptr, KeyOf(kDead, 5));
    std::vector<std::byte> img(table_->record_bytes());
    cluster_->node(kDead)->bus()->Read(nullptr, off, img.data(), img.size());
    const uint64_t old_seq = RecordLayout::GetSeq(img.data());
    Cell spec{kInitialBalance + 999999, {}};
    RecordLayout::SetSeq(img.data(), old_seq + 2);
    RecordLayout::ScatterValue(img.data(), &spec, sizeof(spec));
    RecordLayout::SetVersions(img.data(), sizeof(Cell), old_seq + 2);
    ASSERT_TRUE(RecordLayout::ImageConsistent(img.data(), img.size()));
    ASSERT_EQ(replicator_->StageUpdate(ctx, /*txn_id=*/0xabcd, kDead, kTableId, KeyOf(kDead, 5),
                                       off, img.data(), img.size()),
              Status::kOk);
  }

  cluster_->Kill(kDead);
  coordinator_->Remove(kDead);

  RecoveryManager rm(engine_.get(), replicator_.get(), coordinator_.get());
  const RecoveryReport report =
      rm.RecoverAfterFailure(cluster_->node(kHost)->tool_context(), kDead, kHost, pmap_.get());
  EXPECT_GE(report.records_rehosted, keys_per_node_);
  EXPECT_EQ(pmap_->node_of(kDead), kHost);
  // The speculative slot (beyond the watermark) was discarded, not applied.
  EXPECT_GE(report.torn_tail_truncated, 1u);

  // Zero lost updates: every decided-but-unfenced commit is visible on the
  // promoted copy...
  Cell c{};
  uint64_t seq = 0;
  for (uint64_t i = 0; i < kCommitted; ++i) {
    ReadRecord(kDead, i, &c, &seq);
    EXPECT_EQ(c.value, kInitialBalance + 100 + static_cast<int64_t>(i)) << "key index " << i;
  }
  // ...and the in-flight transaction was rolled back.
  ReadRecord(kDead, 5, &c, &seq);
  EXPECT_EQ(c.value, kInitialBalance);
}

// Recovery is safe to run concurrently with surviving workers: promotion and
// primary patching race live commits, and at quiescence the money supply is
// conserved and every partition serves transactions.
TEST_F(RecoveryFaultTest, RecoveryRacesConcurrentWriters) {
  Build(/*nodes=*/4, /*keys_per_node=*/8);
  constexpr uint32_t kDead = 1;
  constexpr uint32_t kHost = 2;
  const int64_t total =
      static_cast<int64_t>(nodes_) * static_cast<int64_t>(keys_per_node_) * kInitialBalance;

  // Workers run only on survivors and transfer only among surviving
  // partitions: transactions in flight against the dead machine's records at
  // drain time are lease-expiry territory (the torture harness parks workers
  // at transaction boundaries for kills), while here the recovery/writer race
  // on the surviving primaries is under test — so the conservation oracle is
  // exact, including the untouched re-hosted partition.
  auto survivor = [&](FastRand& rng) {
    const uint32_t p = static_cast<uint32_t>(rng.Uniform(nodes_ - 1));
    return p >= kDead ? p + 1 : p;
  };
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (uint32_t n = 0; n < nodes_; ++n) {
    if (n == kDead) {
      continue;
    }
    for (uint32_t w = 0; w < 2; ++w) {
      workers.emplace_back([&, n, w] {
        sim::ThreadContext* ctx = cluster_->node(n)->context(w);
        txn::Transaction txn(engine_.get(), ctx);
        FastRand rng(util::TestSeed(3) * 97 + n * 13 + w);
        while (!stop.load(std::memory_order_relaxed)) {
          const uint32_t fp = survivor(rng);
          const uint32_t tp = survivor(rng);
          const uint64_t from = KeyOf(fp, rng.Uniform(keys_per_node_));
          const uint64_t to = KeyOf(tp, rng.Uniform(keys_per_node_));
          if (from == to) {
            continue;
          }
          txn.Begin();
          Cell a{}, b{};
          if (txn.Read(table_, pmap_->node_of(fp), from, &a) != Status::kOk ||
              txn.Read(table_, pmap_->node_of(tp), to, &b) != Status::kOk) {
            txn.UserAbort();
            std::this_thread::yield();
            continue;
          }
          a.value -= 5;
          b.value += 5;
          if (txn.Write(table_, pmap_->node_of(fp), from, &a) != Status::kOk ||
              txn.Write(table_, pmap_->node_of(tp), to, &b) != Status::kOk) {
            txn.UserAbort();
            continue;
          }
          (void)txn.Commit();  // faults make aborts expected here
        }
      });
    }
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  cluster_->Kill(kDead);
  coordinator_->Remove(kDead);

  // No settle: recovery drains, promotes, and patches while the survivors are
  // still committing.
  RecoveryManager rm(engine_.get(), replicator_.get(), coordinator_.get());
  const RecoveryReport report =
      rm.RecoverAfterFailure(cluster_->node(kHost)->tool_context(), kDead, kHost, pmap_.get());
  EXPECT_GE(report.records_rehosted, keys_per_node_);
  EXPECT_EQ(pmap_->node_of(kDead), kHost);

  // Keep the race going after promotion, then quiesce.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  stop.store(true);
  for (auto& t : workers) {
    t.join();
  }

  int64_t sum = 0;
  for (uint32_t p = 0; p < nodes_; ++p) {
    const uint32_t n = pmap_->node_of(p);
    EXPECT_NE(n, kDead);
    for (uint64_t i = 0; i < keys_per_node_; ++i) {
      const uint64_t off = table_->hash(n)->Lookup(nullptr, KeyOf(p, i));
      ASSERT_NE(off, store::HashStore::kNoRecord) << "partition " << p << " key " << i;
      std::vector<std::byte> rec(table_->record_bytes());
      cluster_->node(n)->bus()->Read(nullptr, off, rec.data(), rec.size());
      Cell c{};
      RecordLayout::GatherValue(rec.data(), &c, sizeof(c));
      sum += c.value;
      // The dead machine's workers were idle, so no lock anywhere may name it
      // — and survivors release their own locks on the way out.
      EXPECT_EQ(RecordLayout::GetLock(rec.data()), 0u)
          << "leaked lock on partition " << p << " key " << i;
      EXPECT_EQ(store::SeqWord::Value(RecordLayout::GetSeq(rec.data())) % 2, 0u)
          << "odd (uncommitted) seq on partition " << p << " key " << i;
    }
  }
  EXPECT_EQ(sum, total);
}

}  // namespace
}  // namespace drtmr::rep
