// Bank transfers across a 3-machine cluster: concurrent distributed
// read-write transactions plus a read-only auditor that verifies the
// conservation invariant on a strictly-serializable snapshot.
//
//   $ ./examples/bank_transfer
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "src/cluster/node.h"
#include "src/txn/transaction.h"
#include "src/txn/txn_engine.h"

using namespace drtmr;

struct Account {
  int64_t balance;
  uint64_t pad[4];
};

constexpr uint64_t kAccountsPerNode = 100;
constexpr int64_t kInitialBalance = 1000;

int main() {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.workers_per_node = 3;
  cfg.memory_bytes = 16 << 20;
  cfg.log_bytes = 1 << 20;
  cluster::Cluster cluster(cfg);
  store::Catalog catalog(&cluster);
  store::TableOptions opt;
  opt.value_size = sizeof(Account);
  opt.hash_buckets = 1024;
  store::Table* accounts = catalog.CreateTable(1, opt);
  txn::TxnConfig tcfg;
  txn::TxnEngine engine(&cluster, &catalog, tcfg);
  engine.StartServices();

  auto key_of = [](uint32_t node, uint64_t i) { return (static_cast<uint64_t>(node) << 32) | (i + 1); };
  for (uint32_t n = 0; n < 3; ++n) {
    for (uint64_t i = 0; i < kAccountsPerNode; ++i) {
      Account a{kInitialBalance, {}};
      if (accounts->hash(n)->Insert(cluster.node(n)->context(0), key_of(n, i), &a, nullptr) !=
          Status::kOk) {
        std::fprintf(stderr, "account load failed\n");
        return 1;
      }
    }
  }
  const int64_t total = 3 * static_cast<int64_t>(kAccountsPerNode) * kInitialBalance;

  std::vector<std::thread> workers;
  for (uint32_t n = 0; n < 3; ++n) {
    for (uint32_t w = 0; w < 2; ++w) {
      workers.emplace_back([&, n, w] {
        sim::ThreadContext* ctx = cluster.node(n)->context(w);
        txn::Transaction txn(&engine, ctx);
        FastRand rng(n * 10 + w + 1);
        for (int i = 0; i < 500; ++i) {
          const uint32_t from_node = static_cast<uint32_t>(rng.Uniform(3));
          const uint32_t to_node = static_cast<uint32_t>(rng.Uniform(3));
          const uint64_t from = key_of(from_node, rng.Uniform(kAccountsPerNode));
          uint64_t to = key_of(to_node, rng.Uniform(kAccountsPerNode));
          if (to == from) {
            continue;
          }
          while (true) {
            txn.Begin();
            Account a{}, b{};
            if (txn.Read(accounts, from_node, from, &a) != Status::kOk ||
                txn.Read(accounts, to_node, to, &b) != Status::kOk) {
              txn.UserAbort();
              continue;
            }
            const int64_t amount = static_cast<int64_t>(rng.Range(1, 50));
            if (a.balance < amount) {
              txn.UserAbort();
              break;
            }
            a.balance -= amount;
            b.balance += amount;
            if (txn.Write(accounts, from_node, from, &a) != Status::kOk ||
                txn.Write(accounts, to_node, to, &b) != Status::kOk) {
              txn.UserAbort();
              continue;
            }
            if (txn.Commit() == Status::kOk) {
              break;
            }
          }
        }
      });
    }
  }

  // Read-only auditor runs concurrently: any committed snapshot must add up.
  std::thread auditor([&] {
    sim::ThreadContext* ctx = cluster.node(0)->context(2);
    txn::Transaction ro(&engine, ctx);
    int audits = 0, consistent = 0;
    for (int round = 0; round < 50; ++round) {
      ro.Begin(/*read_only=*/true);
      int64_t sum = 0;
      bool ok = true;
      for (uint32_t n = 0; n < 3 && ok; ++n) {
        for (uint64_t i = 0; i < kAccountsPerNode && ok; ++i) {
          Account a{};
          ok = ro.Read(accounts, n, key_of(n, i), &a) == Status::kOk;
          sum += a.balance;
        }
      }
      if (!ok) {
        ro.UserAbort();
        continue;
      }
      if (ro.Commit() != Status::kOk) {
        continue;  // snapshot invalidated by concurrent writers: retry
      }
      audits++;
      if (sum == total) {
        consistent++;
      } else {
        std::printf("AUDIT VIOLATION: sum=%lld expected=%lld\n", (long long)sum,
                    (long long)total);
      }
    }
    std::printf("auditor: %d/%d committed snapshots consistent\n", consistent, audits);
  });

  for (auto& t : workers) {
    t.join();
  }
  auditor.join();

  int64_t final_total = 0;
  sim::ThreadContext* ctx = cluster.node(0)->context(0);
  txn::Transaction ro(&engine, ctx);
  while (true) {
    ro.Begin(true);
    final_total = 0;
    bool ok = true;
    for (uint32_t n = 0; n < 3 && ok; ++n) {
      for (uint64_t i = 0; i < kAccountsPerNode; ++i) {
        Account a{};
        ok = ro.Read(accounts, n, key_of(n, i), &a) == Status::kOk;
        final_total += a.balance;
      }
    }
    if (ok && ro.Commit() == Status::kOk) {
      break;
    }
  }
  std::printf("final total: %lld (expected %lld) — %s\n", (long long)final_total,
              (long long)total, final_total == total ? "conserved" : "VIOLATED");
  std::printf("commits=%llu validation-aborts=%llu lock-aborts=%llu fallbacks=%llu\n",
              (unsigned long long)engine.stats().commits.load(),
              (unsigned long long)engine.stats().aborts_validation.load(),
              (unsigned long long)engine.stats().aborts_lock.load(),
              (unsigned long long)engine.stats().fallbacks.load());
  engine.StopServices();
  return final_total == total ? 0 : 1;
}
