// Failover demo: 3-way replication, machine failures, and recovery — the §5
// machinery end to end, in two acts.
//
// Act 1 (scripted): machine 1 is killed and the demo itself removes it from
// the configuration and calls recovery by hand. Data written before the
// failure survives, the dead machine's partition is revived on a survivor,
// and new transactions keep running against the re-hosted records.
//
// Act 2 (automatic, DESIGN.md §10): a MembershipService is started and the
// machine now hosting those records is killed — and nobody is told. Lease
// heartbeats suspect it off virtual time, the driver fences the old epoch
// (stamped into each machine's registered memory), re-hosts from the backup
// copies recovery re-seeded in act 1, and the demo commits against the
// twice-migrated partition.
//
//   $ ./examples/failover_demo
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

#include "src/cluster/coordinator.h"
#include "src/cluster/membership.h"
#include "src/cluster/partition_map.h"
#include "src/rep/primary_backup.h"
#include "src/rep/recovery.h"
#include "src/txn/transaction.h"
#include "src/txn/txn_engine.h"
#include "src/util/time_gate.h"

using namespace drtmr;

struct Profile {
  uint64_t version;
  char name[40];
};

int main() {
  constexpr uint32_t kNodes = 4;
  cluster::ClusterConfig cfg;
  cfg.num_nodes = kNodes;
  cfg.workers_per_node = 2;
  cfg.memory_bytes = 16 << 20;
  cfg.log_bytes = 4 << 20;
  cluster::Cluster cluster(cfg);
  store::Catalog catalog(&cluster);
  store::TableOptions opt;
  opt.value_size = sizeof(Profile);
  opt.hash_buckets = 256;
  store::Table* profiles = catalog.CreateTable(1, opt);

  cluster::Coordinator coordinator;
  for (uint32_t i = 0; i < kNodes; ++i) {
    coordinator.Join(i, 0, /*lease_ms=*/1u << 30);
  }
  rep::RepConfig rcfg;
  rcfg.replicas = 3;
  rep::PrimaryBackupReplicator replicator(&cluster, rcfg);
  txn::TxnConfig tcfg;
  tcfg.replication = true;
  tcfg.replicas = 3;
  txn::TxnEngine engine(&cluster, &catalog, tcfg, &coordinator, &replicator);
  engine.StartServices();

  // Write profiles hosted on machine 1 (backups land on machines 2 and 3).
  sim::ThreadContext* ctx = cluster.node(0)->context(0);
  txn::Transaction txn(&engine, ctx);
  for (uint64_t k = 1; k <= 5; ++k) {
    Profile p{};
    std::snprintf(p.name, sizeof(p.name), "user-%llu", (unsigned long long)k);
    txn.Begin();
    (void)txn.Insert(profiles, /*node=*/1, k, &p);  // buffered; Commit reports the outcome
    if (txn.Commit() != Status::kOk) {
      return 1;
    }
    // Seed the backups for the freshly inserted record (inserts go through
    // the store, not the write-set path; production loaders do the same).
    const uint64_t off = profiles->hash(1)->Lookup(nullptr, k);
    std::vector<std::byte> image(profiles->record_bytes());
    cluster.node(1)->bus()->Read(nullptr, off, image.data(), image.size());
    for (uint32_t r = 1; r < 3; ++r) {
      replicator.SeedBackup(cluster.BackupOf(1, r), 1, 1, k, image.data(), image.size());
    }
    // An update through the transactional path replicates via the NVM logs.
    while (true) {
      txn.Begin();
      Profile cur{};
      if (txn.Read(profiles, 1, k, &cur) != Status::kOk) {
        txn.UserAbort();
        continue;
      }
      cur.version = 7;
      (void)txn.Write(profiles, 1, k, &cur);  // key was just read: buffers, cannot fail
      if (txn.Commit() == Status::kOk) {
        break;
      }
    }
  }
  std::printf("wrote 5 replicated profiles on machine 1\n");

  // Fail machine 1 and recover its partition onto machine 2.
  cluster::PartitionMap pmap(kNodes);
  cluster.Kill(1);
  coordinator.Remove(1);
  std::printf("machine 1 failed (fail-stop); configuration epoch is now %llu\n",
              (unsigned long long)coordinator.epoch());
  rep::RecoveryManager rm(&engine, &replicator, &coordinator);
  const rep::RecoveryReport report =
      rm.RecoverAfterFailure(cluster.node(2)->tool_context(), /*dead=*/1, /*host=*/2, &pmap);
  std::printf("recovery: %llu records re-hosted on machine 2, %llu log entries drained\n",
              (unsigned long long)report.records_rehosted,
              (unsigned long long)report.log_entries_drained);

  // The data survived, with the committed update.
  txn::Transaction ro(&engine, cluster.node(3)->context(0));
  int survivors = 0;
  for (uint64_t k = 1; k <= 5; ++k) {
    ro.Begin(/*read_only=*/true);
    Profile p{};
    if (ro.Read(profiles, /*node=*/2, k, &p) == Status::kOk && ro.Commit() == Status::kOk &&
        p.version == 7) {
      survivors++;
      std::printf("  %s survived (version %llu)\n", p.name, (unsigned long long)p.version);
    }
  }
  // And the re-hosted partition accepts new transactions.
  txn::Transaction w(&engine, cluster.node(0)->context(1));
  while (true) {
    w.Begin();
    Profile p{};
    if (w.Read(profiles, 2, 3, &p) != Status::kOk) {
      w.UserAbort();
      continue;
    }
    p.version = 8;
    (void)w.Write(profiles, 2, 3, &p);  // key was just read: buffers, cannot fail
    if (w.Commit() == Status::kOk) {
      break;
    }
  }
  std::printf("post-failure update committed on the re-hosted partition\n");

  // ---- Act 2: kill the host of the re-hosted records; tell no one. ----
  std::printf("\n-- act 2: automatic failover (no scripted Remove/recovery) --\n");
  cluster::MembershipConfig mcfg;  // 25us leases, 5us heartbeats (virtual)
  cluster::MembershipService membership(&cluster, &coordinator, &pmap, mcfg);
  membership.set_recovery_fn([&](uint32_t dead, uint32_t host) {
    const rep::RecoveryReport r = rm.RecoverAfterFailure(
        cluster.node(host)->tool_context(), dead, host, /*pmap=*/nullptr);
    std::printf("  auto-recovery: %llu records re-hosted on machine %u\n",
                (unsigned long long)r.records_rehosted, host);
  });
  TimeGate gate(/*window_ns=*/8'000);
  membership.set_time_gate(&gate);
  engine.set_membership(&membership);
  membership.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // leases active

  cluster.Kill(2);  // the machine the profiles migrated to in act 1
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (std::chrono::steady_clock::now() < deadline &&
         (membership.recoveries() < 1 || coordinator.view().Contains(2))) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  membership.Stop();
  const bool detected = membership.suspicions() >= 1 && membership.recoveries() >= 1 &&
                        !coordinator.view().Contains(2);
  std::printf("machine 2 failed; heartbeats suspected it on their own "
              "(%llu suspicion(s), epoch now %llu)\n",
              (unsigned long long)membership.suspicions(),
              (unsigned long long)coordinator.epoch());
  for (uint32_t n = 0; n < kNodes; ++n) {
    std::printf("  machine %u registered epoch word: %llu%s\n", n,
                (unsigned long long)cluster.fabric()->epoch_word(n),
                cluster.fabric()->epoch_word(n) < coordinator.epoch() ? "  (fenced out)" : "");
  }

  // The records moved a second time — the re-seeded backup ring from act 1's
  // recovery is what makes the cascaded failover lossless.
  const uint32_t home = pmap.node_of(1);
  int survivors2 = 0;
  for (uint64_t k = 1; k <= 5; ++k) {
    ro.Begin(/*read_only=*/true);
    Profile p{};
    if (ro.Read(profiles, home, k, &p) == Status::kOk && ro.Commit() == Status::kOk &&
        p.version >= 7) {
      survivors2++;
    }
  }
  std::printf("%d/5 profiles survived the second failure (now on machine %u)\n", survivors2,
              home);
  while (true) {
    w.Begin();
    Profile p{};
    if (w.Read(profiles, home, 3, &p) != Status::kOk) {
      w.UserAbort();
      continue;
    }
    p.version = 9;
    (void)w.Write(profiles, home, 3, &p);  // key was just read: buffers, cannot fail
    if (w.Commit() == Status::kOk) {
      break;
    }
  }
  std::printf("post-failure update committed against the twice-migrated partition\n");

  engine.StopServices();
  const bool ok = survivors == 5 && survivors2 == 5 && detected;
  std::printf(ok ? "FAILOVER OK: no committed data lost, no oracle needed\n"
                 : "FAILOVER INCOMPLETE: act1 %d/5, act2 %d/5, detected=%d\n",
              survivors, survivors2, (int)detected);
  return ok ? 0 : 1;
}
