// Quickstart: bring up a 2-machine DrTM+R cluster, create a table, and run
// distributed read-write and read-only transactions.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <memory>

#include "src/cluster/node.h"
#include "src/store/table.h"
#include "src/txn/transaction.h"
#include "src/txn/txn_engine.h"

using namespace drtmr;

struct Greeting {
  char text[48];
};

int main() {
  // 1) A simulated cluster: every "machine" gets registered memory, an HTM
  //    engine, and an RDMA NIC port on a shared fabric.
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.workers_per_node = 2;
  cfg.memory_bytes = 16 << 20;
  cfg.log_bytes = 1 << 20;
  cluster::Cluster cluster(cfg);

  // 2) A hash table (remote-accessible via one-sided RDMA), plus the
  //    transaction engine with the insert/delete RPC service.
  store::Catalog catalog(&cluster);
  store::TableOptions opt;
  opt.value_size = sizeof(Greeting);
  opt.hash_buckets = 256;
  store::Table* table = catalog.CreateTable(/*id=*/1, opt);

  txn::TxnConfig tcfg;
  txn::TxnEngine engine(&cluster, &catalog, tcfg);
  engine.StartServices();

  // 3) A transaction on machine 0 inserting a record hosted on machine 1.
  sim::ThreadContext* ctx = cluster.node(0)->context(0);
  txn::Transaction txn(&engine, ctx);
  txn.Begin();
  Greeting g{};
  std::snprintf(g.text, sizeof(g.text), "hello from machine 0");
  (void)txn.Insert(table, /*node=*/1, /*key=*/42, &g);  // buffered; Commit reports the outcome
  if (txn.Commit() != Status::kOk) {
    std::printf("insert aborted?!\n");
    return 1;
  }

  // 4) Read it back remotely (one-sided RDMA read + version check), update it
  //    through the full hybrid OCC commit (lock -> validate -> HTM -> write
  //    back -> unlock).
  txn.Begin();
  Greeting out{};
  if (txn.Read(table, 1, 42, &out) != Status::kOk) {
    std::printf("read failed\n");
    return 1;
  }
  std::printf("read remotely: \"%s\"\n", out.text);
  std::snprintf(out.text, sizeof(out.text), "updated by a distributed txn");
  (void)txn.Write(table, 1, 42, &out);  // key was just read: buffers, cannot fail
  while (txn.Commit() != Status::kOk) {
    txn.Begin();
    if (txn.Read(table, 1, 42, &out) != Status::kOk) {
      txn.UserAbort();
      continue;
    }
    std::snprintf(out.text, sizeof(out.text), "updated by a distributed txn");
    (void)txn.Write(table, 1, 42, &out);
  }

  // 5) A read-only transaction from machine 1 — no locks, no HTM (§4.5).
  txn::Transaction ro(&engine, cluster.node(1)->context(0));
  ro.Begin(/*read_only=*/true);
  const bool ro_read_ok = ro.Read(table, 1, 42, &out) == Status::kOk;
  if (ro.Commit() == Status::kOk && ro_read_ok) {
    std::printf("read-only snapshot: \"%s\"\n", out.text);
  }

  std::printf("virtual time spent on machine 0, worker 0: %.1f us\n",
              static_cast<double>(ctx->clock.now_ns()) / 1000.0);
  engine.StopServices();
  return 0;
}
