// Order-entry example: the TPC-C workload driving the public API on a
// 3-machine cluster, reporting per-type throughput and latency — a compact
// version of the paper's evaluation loop.
//
//   $ ./examples/order_entry
#include <cstdio>
#include <memory>

#include "src/cluster/partition_map.h"
#include "src/txn/transaction.h"
#include "src/workload/driver.h"
#include "src/workload/tpcc.h"

using namespace drtmr;

int main() {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.workers_per_node = 4;
  cfg.memory_bytes = 48 << 20;
  cfg.log_bytes = 4 << 20;
  cluster::Cluster cluster(cfg);
  store::Catalog catalog(&cluster);
  cluster::PartitionMap pmap(3);
  txn::TxnConfig tcfg;
  txn::TxnEngine engine(&cluster, &catalog, tcfg);

  workload::TpccConfig tc;
  tc.warehouses_per_node = 2;
  tc.customers_per_district = 300;
  tc.items = 5000;
  workload::TpccWorkload tpcc(&engine, &pmap, tc);
  tpcc.CreateTables();
  std::printf("loading %u warehouses...\n", tpcc.total_warehouses());
  tpcc.Load(nullptr);
  engine.StartServices();

  std::vector<std::unique_ptr<txn::Transaction>> txns;
  txn::Transaction* by_slot[3][4];
  for (uint32_t n = 0; n < 3; ++n) {
    for (uint32_t w = 0; w < 4; ++w) {
      txns.push_back(std::make_unique<txn::Transaction>(&engine, cluster.node(n)->context(w)));
      by_slot[n][w] = txns.back().get();
    }
  }
  workload::DriverOptions opt;
  opt.threads_per_node = 4;
  opt.txns_per_thread = 1000;
  opt.warmup_per_thread = 100;
  opt.max_txn_types = workload::kTpccTxnTypes;
  const workload::DriverResult r = workload::RunWorkload(
      &cluster, opt, [&](sim::ThreadContext* ctx, uint32_t n, uint32_t w, FastRand* rng) {
        return tpcc.RunOne(ctx, by_slot[n][w], rng);
      });

  static const char* kNames[] = {"new-order", "payment", "order-status", "delivery",
                                 "stock-level"};
  std::printf("\nTPC-C standard mix on 3 machines x 4 workers (virtual time):\n");
  std::printf("  total: %s txns/s, new-order: %s txns/s\n",
              workload::FormatTps(r.ThroughputTps()).c_str(),
              workload::FormatTps(r.ThroughputTps(workload::kNewOrder)).c_str());
  for (uint32_t t = 0; t < workload::kTpccTxnTypes; ++t) {
    std::printf("  %-12s  %6.1f%%  p50 %8.1fus  p99 %8.1fus\n", kNames[t],
                100.0 * static_cast<double>(r.committed_by_type[t]) /
                    static_cast<double>(r.committed),
                r.latency_by_type[t].Percentile(50) / 1000.0,
                r.latency_by_type[t].Percentile(99) / 1000.0);
  }
  engine.StopServices();
  return 0;
}
