#!/usr/bin/env python3
"""Perf regression gate over the committed BENCH_*.json baselines.

Compares a directory of freshly produced bench JSONs (bench_suite output, or
any --metrics-json= file written through bench::WriteBenchJson) against the
committed baselines and fails when a gated headline metric regresses past the
tolerance:

  * keys ending in `_tps`  are higher-is-better: fail if current falls more
    than --tolerance below baseline;
  * keys ending in `_ns`   are lower-is-better:  fail if current rises more
    than --tolerance above baseline;
  * `torture_ok` must not drop from 1 to 0 (correctness, not perf);
  * every other key is informational;
  * a baseline's "tolerances" object overrides the tolerance per key (for
    metrics with measured noise beyond the default, e.g. a bimodal p99).

For each failing entry the gate names the regressed *phase*: it diffs the
per-phase histograms (metrics.phases) between baseline and current, ranks
phases by growth in total virtual time (count x mean) and p99, and prints the
worst offender together with the slowest transactions from the current run's
flight recorder (dominant phase + abort trail), so a red gate points at the
protocol phase to look at rather than just a number.

Exit codes: 0 ok, 1 regression (or missing/corrupt current file), 2 usage.

Usage:
  scripts/bench_gate.py --baseline-dir=. --current-dir=out \
      [--profile=smoke|full] [--tolerance=0.05] [--report=gate_report.json]
"""

import argparse
import glob
import json
import os
import sys

GATED_SUFFIXES = ("_tps", "_ns")
# Correctness bits (1 = clean run): must never drop from 1 to 0.
CORRECTNESS_KEYS = ("torture_ok", "elastic_ok")
# The elastic entry's zero-downtime bar: the scale-out/in throughput dip is
# gated absolutely (must stay under this), not relative to the baseline.
DIP_PCT_MAX = 10.0


def is_gated(key):
    return (key.endswith(GATED_SUFFIXES) or key in CORRECTNESS_KEYS
            or key in ("dip_pct", "migration_ms"))


def load(path):
    with open(path) as f:
        return json.load(f)


def baseline_files(baseline_dir, profile):
    # Profiles map to file suffixes: full -> BENCH_x.json, smoke ->
    # BENCH_x.smoke.json, smoke-noglob -> BENCH_x.smoke.noglob.json (the
    # replicated entries re-run with the GLOB fused commit path disabled).
    suffixes = {
        "full": ".json",
        "smoke": ".smoke.json",
        "smoke-noglob": ".smoke.noglob.json",
    }
    suffix = suffixes[profile]
    out = []
    for path in sorted(glob.glob(os.path.join(baseline_dir, "BENCH_*.json"))):
        smoke = path.endswith(".smoke.json")
        noglob = path.endswith(".noglob.json")
        if profile == "smoke-noglob":
            matches = path.endswith(".smoke.noglob.json")
        elif profile == "smoke":
            matches = smoke and not noglob
        else:
            matches = not smoke and not noglob
        if matches:
            out.append(path)
    return out, suffix


def compare_results(base, cur, tolerance, overrides=None):
    """Returns (deltas, failures) for one entry's results dicts.

    `overrides` maps result keys to per-key tolerances declared by the suite
    in the *baseline* file ("tolerances" object) for metrics whose measured
    run-to-run noise exceeds the default — e.g. a bimodal p99 that flips
    between two latency modes. Only the committed baseline is trusted for
    overrides; a current run cannot loosen its own gate.
    """
    deltas = {}
    failures = []
    overrides = overrides or {}
    for key, bval in base.items():
        if key not in cur:
            deltas[key] = {"base": bval, "cur": None, "ok": not is_gated(key)}
            if is_gated(key):
                failures.append(f"{key}: missing from current run")
            continue
        cval = cur[key]
        delta_pct = ((cval - bval) / bval * 100.0) if bval else 0.0
        tol = overrides.get(key, tolerance)
        ok = True
        if key in CORRECTNESS_KEYS:
            ok = cval >= bval
        elif key == "dip_pct":
            ok = cval < DIP_PCT_MAX
        elif key == "migration_ms" and bval > 0:
            ok = cval <= bval * (1.0 + tol)
        elif key.endswith("_tps") and bval > 0:
            ok = cval >= bval * (1.0 - tol)
        elif key.endswith("_ns") and bval > 0:
            ok = cval <= bval * (1.0 + tol)
        deltas[key] = {
            "base": bval,
            "cur": cval,
            "delta_pct": round(delta_pct, 2),
            "gated": is_gated(key),
            "ok": ok,
        }
        if key in overrides:
            deltas[key]["tolerance"] = tol
        if not ok:
            if key == "dip_pct":
                failures.append(f"dip_pct {cval:.1f} breaches the absolute "
                                f"{DIP_PCT_MAX:.0f}% zero-downtime bar")
            elif key in CORRECTNESS_KEYS:
                failures.append(f"{key} dropped {bval:.0f} -> {cval:.0f}")
            else:
                direction = "fell" if key.endswith("_tps") else "rose"
                failures.append(f"{key} {direction} {abs(delta_pct):.1f}% "
                                f"({bval:.0f} -> {cval:.0f})")
    for key in cur:
        if key not in base:
            deltas[key] = {"base": None, "cur": cur[key], "ok": True, "new": True}
    return deltas, failures


def regressed_phases(base_metrics, cur_metrics):
    """Ranks phases by regression between two metrics.phases dicts."""
    base_phases = base_metrics.get("phases", {})
    cur_phases = cur_metrics.get("phases", {})
    ranked = []
    for name, cur in cur_phases.items():
        base = base_phases.get(name)
        if not base:
            continue
        base_total = base.get("sum_ns", base.get("count", 0) * base.get("mean_ns", 0))
        cur_total = cur.get("sum_ns", cur.get("count", 0) * cur.get("mean_ns", 0))
        total_growth = ((cur_total - base_total) / base_total * 100.0) if base_total else 0.0
        base_p99 = base.get("p99_ns", 0)
        cur_p99 = cur.get("p99_ns", 0)
        p99_growth = ((cur_p99 - base_p99) / base_p99 * 100.0) if base_p99 else 0.0
        ranked.append({
            "phase": name,
            "total_ns_growth_pct": round(total_growth, 1),
            "p99_ns_growth_pct": round(p99_growth, 1),
            "base_p99_ns": base_p99,
            "cur_p99_ns": cur_p99,
        })
    ranked.sort(key=lambda p: max(p["total_ns_growth_pct"], p["p99_ns_growth_pct"]),
                reverse=True)
    return ranked


def slowest_txns(doc, limit=3):
    out = []
    for rec in doc.get("flight_recorder", [])[:limit]:
        out.append({
            "rank": rec.get("rank"),
            "total_ns": rec.get("total_ns"),
            "dominant_phase": rec.get("dominant_phase"),
            "attempts": rec.get("attempts"),
            "aborts": rec.get("aborts"),
        })
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline-dir", required=True)
    ap.add_argument("--current-dir", required=True)
    ap.add_argument("--profile", choices=["smoke", "full", "smoke-noglob"],
                    default="smoke")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="relative tolerance on gated keys (default 0.05 = 5%%)")
    ap.add_argument("--report", help="write the machine-readable delta report here")
    args = ap.parse_args()

    files, _ = baseline_files(args.baseline_dir, args.profile)
    if not files:
        print(f"bench_gate: no {args.profile} baselines under {args.baseline_dir}",
              file=sys.stderr)
        return 2

    report = {
        "tolerance": args.tolerance,
        "profile": args.profile,
        "baseline_dir": args.baseline_dir,
        "current_dir": args.current_dir,
        "entries": [],
        "ok": True,
    }
    for base_path in files:
        name = os.path.basename(base_path)
        cur_path = os.path.join(args.current_dir, name)
        entry = {"file": name, "status": "ok"}
        report["entries"].append(entry)
        try:
            base_doc = load(base_path)
        except (OSError, json.JSONDecodeError) as e:
            entry.update(status="corrupt-baseline", error=str(e))
            report["ok"] = False
            print(f"FAIL {name}: corrupt baseline: {e}")
            continue
        if not os.path.exists(cur_path):
            entry.update(status="missing")
            report["ok"] = False
            print(f"FAIL {name}: not produced by the current run")
            continue
        try:
            cur_doc = load(cur_path)
        except (OSError, json.JSONDecodeError) as e:
            entry.update(status="corrupt-current", error=str(e))
            report["ok"] = False
            print(f"FAIL {name}: corrupt current file: {e}")
            continue

        base_schema = base_doc.get("schema_version")
        cur_schema = cur_doc.get("schema_version")
        if base_schema != cur_schema:
            entry.update(status="schema-mismatch",
                         base_schema=base_schema, cur_schema=cur_schema)
            report["ok"] = False
            print(f"FAIL {name}: schema_version {cur_schema} vs baseline {base_schema} "
                  f"— regenerate the baseline, the shapes are not comparable")
            continue

        entry["bench"] = cur_doc.get("run", {}).get("bench")
        deltas, failures = compare_results(base_doc.get("results", {}),
                                           cur_doc.get("results", {}),
                                           args.tolerance,
                                           base_doc.get("tolerances", {}))
        entry["deltas"] = deltas
        if failures:
            entry["status"] = "regression"
            report["ok"] = False
            phases = regressed_phases(base_doc.get("metrics", {}),
                                      cur_doc.get("metrics", {}))
            entry["regressed_phases"] = phases[:3]
            entry["slowest_txns"] = slowest_txns(cur_doc)
            print(f"FAIL {name}:")
            for f in failures:
                print(f"  {f}")
            if phases:
                worst = phases[0]
                print(f"  regressed phase: {worst['phase']} "
                      f"(total virtual time {worst['total_ns_growth_pct']:+.1f}%, "
                      f"p99 {worst['base_p99_ns']} -> {worst['cur_p99_ns']} ns)")
            for txn in entry["slowest_txns"]:
                print(f"  slow txn #{txn['rank']}: {txn['total_ns']} ns, "
                      f"dominant phase {txn['dominant_phase']}, "
                      f"{txn['attempts']} attempts")
        else:
            gated = {k: v for k, v in deltas.items() if v.get("gated")}
            summary = " ".join(f"{k}{v['delta_pct']:+.1f}%" for k, v in gated.items()
                               if v.get("delta_pct") is not None)
            print(f"ok   {name}: {summary}")

    if args.report:
        with open(args.report, "w") as f:
            json.dump(report, f, indent=1)
        print(f"report: {args.report}")
    if not report["ok"]:
        print("bench_gate: REGRESSION — see above (tolerance "
              f"{args.tolerance * 100:.0f}%)")
        return 1
    print(f"bench_gate: all {len(files)} entries within "
          f"{args.tolerance * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
