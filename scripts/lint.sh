#!/usr/bin/env bash
# Static half of the conformance wall (DESIGN.md §11):
#   1. a -Werror build (DRTMR_WERROR=ON) — [[nodiscard]] Status makes every
#      silently dropped error a hard build failure;
#   2. clang-tidy over src/ with the repo .clang-tidy, when the tool exists.
#      The gcc-only container skips this phase (CI's ubuntu image runs it);
#      the -Werror wall always runs, so phase 1 never silently disappears.
#
# Usage: scripts/lint.sh [--tidy-only|--werror-only]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || echo 4)
RUN_WERROR=1
RUN_TIDY=1
for arg in "$@"; do
  case "$arg" in
    --tidy-only) RUN_WERROR=0 ;;
    --werror-only) RUN_TIDY=0 ;;
    *) echo "usage: scripts/lint.sh [--tidy-only|--werror-only]" >&2; exit 2 ;;
  esac
done

if [[ "$RUN_WERROR" == 1 ]]; then
  echo "== lint: -Werror wall =="
  cmake -B build-lint -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDRTMR_WERROR=ON \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  cmake --build build-lint -j "$JOBS"
fi

if [[ "$RUN_TIDY" == 1 ]]; then
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "== lint: clang-tidy not installed; skipping tidy phase =="
  else
    echo "== lint: clang-tidy (src/) =="
    if [[ ! -f build-lint/compile_commands.json ]]; then
      cmake -B build-lint -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    fi
    # run-clang-tidy parallelizes when available; fall back to a plain loop.
    mapfile -t SOURCES < <(git ls-files 'src/**/*.cc')
    if command -v run-clang-tidy >/dev/null 2>&1; then
      run-clang-tidy -p build-lint -j "$JOBS" -quiet "${SOURCES[@]}"
    else
      for f in "${SOURCES[@]}"; do
        clang-tidy -p build-lint --quiet "$f"
      done
    fi
  fi
fi

echo "== lint passed =="
