#!/usr/bin/env bash
# Static half of the conformance wall (DESIGN.md §11, §15):
#   1. a -Werror build (DRTMR_WERROR=ON) — [[nodiscard]] Status makes every
#      silently dropped error a hard build failure;
#   2. clang-tidy over src/ with the repo .clang-tidy, when the tool exists.
#      The gcc-only container skips this phase (CI's ubuntu image runs it);
#      the -Werror wall always runs, so phase 1 never silently disappears;
#   3. the drtmr-lint plugin (tools/drtmr_lint): the six drtmr-* protocol
#      checks, built out-of-tree and loaded via `clang-tidy --load`. Skipped
#      with a notice when clang-tidy or the clang dev headers are absent.
#
# Usage: scripts/lint.sh [--tidy-only|--werror-only|--plugin-only]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || echo 4)
RUN_WERROR=1
RUN_TIDY=1
RUN_PLUGIN=1
for arg in "$@"; do
  case "$arg" in
    --tidy-only) RUN_WERROR=0; RUN_PLUGIN=0 ;;
    --werror-only) RUN_TIDY=0; RUN_PLUGIN=0 ;;
    --plugin-only) RUN_WERROR=0; RUN_TIDY=0 ;;
    *) echo "usage: scripts/lint.sh [--tidy-only|--werror-only|--plugin-only]" >&2; exit 2 ;;
  esac
done

ensure_compile_db() {
  if [[ ! -f build-lint/compile_commands.json ]]; then
    cmake -B build-lint -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
}

if [[ "$RUN_WERROR" == 1 ]]; then
  echo "== lint: -Werror wall =="
  cmake -B build-lint -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDRTMR_WERROR=ON \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  cmake --build build-lint -j "$JOBS"
fi

if [[ "$RUN_TIDY" == 1 ]]; then
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "== lint: clang-tidy not installed; skipping tidy phase =="
  else
    echo "== lint: clang-tidy (src/) =="
    ensure_compile_db
    # run-clang-tidy parallelizes when available; fall back to a plain loop.
    mapfile -t SOURCES < <(git ls-files 'src/**/*.cc')
    if command -v run-clang-tidy >/dev/null 2>&1; then
      run-clang-tidy -p build-lint -j "$JOBS" -quiet "${SOURCES[@]}"
    else
      for f in "${SOURCES[@]}"; do
        clang-tidy -p build-lint --quiet "$f"
      done
    fi
  fi
fi

if [[ "$RUN_PLUGIN" == 1 ]]; then
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "== lint: clang-tidy not installed; skipping drtmr-lint plugin phase =="
  else
    echo "== lint: drtmr-lint plugin (tools/drtmr_lint) =="
    cmake -B build-lint-plugin -S tools/drtmr_lint >/dev/null
    PLUGIN="build-lint-plugin/libdrtmr_lint.so"
    if ! cmake --build build-lint-plugin -j "$JOBS" || [[ ! -f "$PLUGIN" ]]; then
      echo "== lint: drtmr-lint plugin not buildable here (clang dev headers absent); skipping =="
    elif ! clang-tidy "--load=$PLUGIN" --list-checks --checks='-*,drtmr-*' \
        >/dev/null 2>&1; then
      echo "== lint: plugin does not load into this clang-tidy (LLVM skew); skipping =="
    else
      ensure_compile_db
      mapfile -t SOURCES < <(git ls-files 'src/**/*.cc')
      # .clang-tidy's WarningsAsErrors '*' turns any drtmr-* finding into a
      # non-zero exit; the fixture self-tests (ctest -L lint) keep the checks
      # themselves honest.
      if command -v run-clang-tidy >/dev/null 2>&1 &&
          run-clang-tidy --help 2>/dev/null | grep -q -- '-load'; then
        run-clang-tidy -p build-lint -j "$JOBS" -quiet \
          "-load=$PLUGIN" "-checks=-*,drtmr-*" "${SOURCES[@]}"
      else
        for f in "${SOURCES[@]}"; do
          clang-tidy -p build-lint --quiet "--load=$PLUGIN" \
            "--checks=-*,drtmr-*" "$f"
        done
      fi
    fi
  fi
fi

echo "== lint passed =="
