#!/usr/bin/env bash
# Runs the standard bench suite and gates the result against the committed
# BENCH_*.json baselines at the repo root (DESIGN.md §12).
#
# Usage: scripts/bench_suite.sh [smoke|full|smoke-noglob] [--regen] [--out-dir=DIR]
#
#   smoke (default) — CI profile: trimmed shapes, BENCH_<name>.smoke.json,
#                     whole run in well under a minute of wall time.
#   full            — the committed perf-trajectory profile (BENCH_<name>.json).
#   smoke-noglob    — smoke shapes with the GLOB fused commit path disabled,
#                     workload entries only (BENCH_<name>.smoke.noglob.json);
#                     keeps the fused_seq_lock=false path gated in CI.
#   --regen         — instead of gating, overwrite the baselines at the repo
#                     root with this run's output (commit the diff on purpose,
#                     with the perf change that explains it).
#   --out-dir=DIR   — where the fresh run lands (default build/bench_out).
set -euo pipefail
cd "$(dirname "$0")/.."

PROFILE=smoke
REGEN=0
OUT_DIR=build/bench_out
for arg in "$@"; do
  case "$arg" in
    smoke|full|smoke-noglob) PROFILE="$arg" ;;
    --regen) REGEN=1 ;;
    --out-dir=*) OUT_DIR="${arg#--out-dir=}" ;;
    *) echo "usage: scripts/bench_suite.sh [smoke|full|smoke-noglob] [--regen] [--out-dir=DIR]" >&2; exit 2 ;;
  esac
done

JOBS=$(nproc 2>/dev/null || echo 4)
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" --target bench_suite

mkdir -p "$OUT_DIR"
SUITE_FLAGS=""
case "$PROFILE" in
  smoke) SUITE_FLAGS="--smoke" ;;
  # The glob-off gate covers the workload entries (where the commit-path flag
  # changes the hot loop) plus their unreplicated peers for the rep_gap
  # metric; recovery/torture would double CI time for paths the glob-on gate
  # already covers.
  smoke-noglob) SUITE_FLAGS="--smoke --no-glob --only=smallbank_peak,smallbank_rep,tpcc_neworder,tpcc_rep" ;;
esac
./build/bench/bench_suite $SUITE_FLAGS --out-dir="$OUT_DIR"

if [[ "$REGEN" == 1 ]]; then
  case "$PROFILE" in
    smoke)
      for f in "$OUT_DIR"/BENCH_*.smoke.json; do
        [[ "$f" == *.noglob.json ]] && continue
        cp "$f" .
      done
      ;;
    smoke-noglob)
      cp "$OUT_DIR"/BENCH_*.smoke.noglob.json .
      ;;
    full)
      for f in "$OUT_DIR"/BENCH_*.json; do
        [[ "$f" == *.smoke.json || "$f" == *.noglob.json ]] && continue
        cp "$f" .
      done
      ;;
  esac
  echo "baselines regenerated from $OUT_DIR — review and commit the BENCH_*.json diff"
  exit 0
fi

python3 scripts/bench_gate.py --baseline-dir=. --current-dir="$OUT_DIR" \
  --profile="$PROFILE" --report="$OUT_DIR/gate_report.json"
