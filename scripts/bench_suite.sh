#!/usr/bin/env bash
# Runs the standard bench suite and gates the result against the committed
# BENCH_*.json baselines at the repo root (DESIGN.md §12).
#
# Usage: scripts/bench_suite.sh [smoke|full] [--regen] [--out-dir=DIR]
#
#   smoke (default) — CI profile: trimmed shapes, BENCH_<name>.smoke.json,
#                     whole run in well under a minute of wall time.
#   full            — the committed perf-trajectory profile (BENCH_<name>.json).
#   --regen         — instead of gating, overwrite the baselines at the repo
#                     root with this run's output (commit the diff on purpose,
#                     with the perf change that explains it).
#   --out-dir=DIR   — where the fresh run lands (default build/bench_out).
set -euo pipefail
cd "$(dirname "$0")/.."

PROFILE=smoke
REGEN=0
OUT_DIR=build/bench_out
for arg in "$@"; do
  case "$arg" in
    smoke|full) PROFILE="$arg" ;;
    --regen) REGEN=1 ;;
    --out-dir=*) OUT_DIR="${arg#--out-dir=}" ;;
    *) echo "usage: scripts/bench_suite.sh [smoke|full] [--regen] [--out-dir=DIR]" >&2; exit 2 ;;
  esac
done

JOBS=$(nproc 2>/dev/null || echo 4)
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" --target bench_suite

mkdir -p "$OUT_DIR"
SMOKE_FLAG=""
if [[ "$PROFILE" == smoke ]]; then
  SMOKE_FLAG="--smoke"
fi
./build/bench/bench_suite $SMOKE_FLAG --out-dir="$OUT_DIR"

if [[ "$REGEN" == 1 ]]; then
  if [[ "$PROFILE" == smoke ]]; then
    cp "$OUT_DIR"/BENCH_*.smoke.json .
  else
    for f in "$OUT_DIR"/BENCH_*.json; do
      [[ "$f" == *.smoke.json ]] && continue
      cp "$f" .
    done
  fi
  echo "baselines regenerated from $OUT_DIR — review and commit the BENCH_*.json diff"
  exit 0
fi

python3 scripts/bench_gate.py --baseline-dir=. --current-dir="$OUT_DIR" \
  --profile="$PROFILE" --report="$OUT_DIR/gate_report.json"
