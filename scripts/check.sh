#!/usr/bin/env bash
# Repo verification: the tier-1 build + test cycle, plus a ThreadSanitizer
# pass over the concurrency-sensitive observability and driver tests.
#
# Usage: scripts/check.sh [--no-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || echo 4)
RUN_TSAN=1
if [[ "${1:-}" == "--no-tsan" ]]; then
  RUN_TSAN=0
fi

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "$RUN_TSAN" == 1 ]]; then
  echo "== tsan: registry + driver tests under ThreadSanitizer =="
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -g" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  cmake --build build-tsan -j "$JOBS" --target \
    obs_test obs_harness_test virtual_time_test workload_test
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R 'Histogram|ObsRegistry|ObsHarness|VirtualTime|Workload'
fi

echo "== all checks passed =="
