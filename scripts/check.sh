#!/usr/bin/env bash
# Repo verification cycles, keyed off the ctest labels (tests/CMakeLists.txt):
#   tier1  — the correctness gate (every test carries it)
#   slow   — multi-second property/recovery suites
#   stress — seed-scalable torture sweeps (DRTMR_TORTURE_SEEDS widens them)
#   rep    — the replication battery (`ctest --test-dir build -L rep`)
#
# Usage: scripts/check.sh [fast|full] [--no-tsan] [--no-asan] [--no-ubsan]
#
#   fast (default) — build + `ctest -L tier1 -LE slow`: the inner-loop cycle,
#                    a couple of minutes.
#   full           — build + the whole tier-1 gate (slow suites included) +
#                    the lint wall (scripts/lint.sh) + the smoke bench suite
#                    gated against the committed BENCH_*.smoke.json baselines +
#                    a widened torture sweep (protocol analyzer on) +
#                    ThreadSanitizer, AddressSanitizer and UBSanitizer passes
#                    over the stress-labeled targets with a small seed budget.
#
# A failing randomized test prints its DRTMR_TEST_SEED; reproduce with
#   DRTMR_TEST_SEED=<seed> ctest --test-dir build -R <test> --output-on-failure
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || echo 4)
CYCLE=fast
RUN_TSAN=1
RUN_ASAN=1
RUN_UBSAN=1
for arg in "$@"; do
  case "$arg" in
    fast|full) CYCLE="$arg" ;;
    --no-tsan) RUN_TSAN=0 ;;
    --no-asan) RUN_ASAN=0 ;;
    --no-ubsan) RUN_UBSAN=0 ;;
    *) echo "usage: scripts/check.sh [fast|full] [--no-tsan] [--no-asan] [--no-ubsan]" >&2; exit 2 ;;
  esac
done

echo "== build =="
cmake -B build -S .
cmake --build build -j "$JOBS"

if [[ "$CYCLE" == fast ]]; then
  echo "== fast cycle: tier1 minus slow =="
  ctest --test-dir build --output-on-failure -j "$JOBS" -L tier1 -LE slow
  echo "== fast cycle passed =="
  exit 0
fi

echo "== full cycle: complete tier-1 gate =="
ctest --test-dir build --output-on-failure -j "$JOBS" -L tier1

echo "== full cycle: lint wall (scripts/lint.sh) =="
./scripts/lint.sh

echo "== full cycle: widened torture sweep (DRTMR_TORTURE_SEEDS=8) =="
DRTMR_TORTURE_SEEDS=8 ctest --test-dir build --output-on-failure -j "$JOBS" -L stress

echo "== full cycle: bench suite (smoke) against committed baselines =="
# The perf trajectory gate (DESIGN.md §12): runs the standard suite in its
# smoke profile and diffs the result against the committed
# BENCH_*.smoke.json baselines. A >5% virtual-time regression on a gated key
# fails the cycle; scripts/bench_suite.sh smoke --regen refreshes baselines
# when a perf change is intentional.
./scripts/bench_suite.sh smoke

echo "== full cycle: bench suite (smoke-noglob: classic two-verb commit path) =="
# Same smoke workload with the GLOB-fused lock+validate disabled, gated
# against the BENCH_*.smoke.noglob.json baselines: a regression hiding
# behind either flag value turns the cycle red.
./scripts/bench_suite.sh smoke-noglob

echo "== full cycle: no-oracle failover acceptance sweep (32 seeds, analyzer on) =="
# Nobody announces the faults: detection, fencing, re-hosting, and rejoin are
# the membership layer's job (DESIGN.md §10). --analyze layers the protocol
# conformance analyzer (DESIGN.md §11) on top; any typed violation fails the
# sweep. Exits non-zero on any violation.
./build/bench/torture --seeds=32 --plans=freeze,partition,kill \
  --shapes=3x2x3,4x2x3 --no-oracle --no-shrink --analyze

echo "== full cycle: mid-migration kill sweep (32 seeds, no oracle) =="
# A live shard migration is in flight on every seed (--migrate implies
# --no-oracle) when the kill lands: the migration must commit or roll back
# cleanly on its own, and the quiescence oracles judge whichever placement
# the commit-or-rollback machinery produced (DESIGN.md §14).
./build/bench/torture --seeds=32 --plans=kill --shapes=3x2x3 \
  --migrate --no-shrink

echo "== full cycle: group-commit torture sweep (32 seeds, window=8) =="
# Kills land inside an open group-commit window: every decided slot must
# survive through the per-lane watermark (zero lost updates) and every
# speculative slot must be truncated at promotion.
./build/bench/torture --seeds=32 --window=8 --plans=clean,delay,kill \
  --shapes=3x2x3 --no-shrink

if [[ "$RUN_TSAN" == 1 ]]; then
  echo "== tsan: stress + concurrency tests under ThreadSanitizer =="
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -g" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  cmake --build build-tsan -j "$JOBS" --target \
    obs_test obs_harness_test virtual_time_test workload_test torture_test
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R 'Histogram|ObsRegistry|ObsHarness|VirtualTime|Workload'
  # Sanitized runs are ~10x slower: keep the sweep to one seed per shape.
  DRTMR_TORTURE_SEEDS=1 ctest --test-dir build-tsan --output-on-failure -L stress
fi

if [[ "$RUN_ASAN" == 1 ]]; then
  echo "== asan: stress targets under AddressSanitizer =="
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address -fno-omit-frame-pointer -g" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address"
  cmake --build build-asan -j "$JOBS" --target torture_test recovery_fault_test fault_test
  DRTMR_TORTURE_SEEDS=1 ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
    -L stress
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
    -R 'RecoveryFault|FaultPlan'
fi

if [[ "$RUN_UBSAN" == 1 ]]; then
  echo "== ubsan: stress + protocol tests under UndefinedBehaviorSanitizer =="
  cmake -B build-ubsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=undefined -fno-sanitize-recover=all -g" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=undefined"
  cmake --build build-ubsan -j "$JOBS" --target \
    torture_test protocol_analyzer_test txn_protocol_test record_test
  DRTMR_TORTURE_SEEDS=1 ctest --test-dir build-ubsan --output-on-failure -j "$JOBS" \
    -L stress
  ctest --test-dir build-ubsan --output-on-failure -j "$JOBS" \
    -R 'ProtocolAnalyzer|TxnProtocol|Record'
fi

echo "== all checks passed =="
