#include "HtmRegionPurityCheck.h"

#include "DrtmrLintUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/ParentMapContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Lex/Lexer.h"

using namespace clang::ast_matchers;

namespace clang::tidy::drtmr {

namespace {

constexpr llvm::StringRef kAllowTag = "htm-purity";

// Container methods that may allocate; a capacity excursion or a malloc
// inside XBEGIN..XEND is a guaranteed abort on real RTM.
bool IsAllocatingContainerMethod(llvm::StringRef Class, llvm::StringRef Method) {
  static const llvm::StringRef Containers[] = {
      "std::vector",        "std::basic_string", "std::deque",
      "std::map",           "std::unordered_map", "std::set",
      "std::unordered_set", "std::list",          "std::multimap"};
  static const llvm::StringRef Methods[] = {
      "push_back", "emplace_back", "emplace", "insert",  "resize",
      "reserve",   "assign",       "append",  "push_front", "emplace_front"};
  bool ClassHit = false;
  for (llvm::StringRef C : Containers) {
    if (Class == C) {
      ClassHit = true;
      break;
    }
  }
  if (!ClassHit) {
    return false;
  }
  for (llvm::StringRef M : Methods) {
    if (Method == M) {
      return true;
    }
  }
  return false;
}

bool IsAllocFunction(llvm::StringRef Name) {
  return Name == "malloc" || Name == "calloc" || Name == "realloc" ||
         Name == "free" || Name == "aligned_alloc" ||
         Name == "posix_memalign" || Name == "strdup";
}

bool IsIoFunction(llvm::StringRef Name) {
  return Name == "printf" || Name == "fprintf" || Name == "vfprintf" ||
         Name == "puts" || Name == "fputs" || Name == "fwrite" ||
         Name == "putchar" || Name == "fflush" || Name == "fopen" ||
         Name == "fclose" || Name == "write";
}

// Strips a leading "std::" so <cstdio>-style std::fprintf matches too.
llvm::StringRef StripStd(llvm::StringRef Name) {
  if (Name.size() > 5 && Name.substr(0, 5) == "std::") {
    return Name.drop_front(5);
  }
  return Name;
}

// True iff `Loc` expands (at any macro level) through DRTMR_CHECK/DRTMR_DCHECK:
// the logging on the fatal path is fine — the process dies, the region's fate
// is moot.
bool InsideCheckMacro(SourceLocation Loc, const SourceManager &SM,
                      const LangOptions &LangOpts) {
  while (Loc.isMacroID()) {
    const llvm::StringRef Name = Lexer::getImmediateMacroName(Loc, SM, LangOpts);
    if (Name == "DRTMR_CHECK" || Name == "DRTMR_DCHECK") {
      return true;
    }
    Loc = SM.getImmediateMacroCallerLoc(Loc);
  }
  return false;
}

}  // namespace

void HtmRegionPurityCheck::registerMatchers(MatchFinder *Finder) {
  // `sim::HtmTxn* htm = <engine>->Begin(...)`: the guard declaration that
  // opens the lexical region.
  Finder->addMatcher(
      declStmt(containsDeclaration(
                   0, varDecl(hasType(pointerType(pointee(hasDeclaration(
                                  cxxRecordDecl(hasName("::drtmr::sim::HtmTxn")))))),
                              hasInitializer(expr()))
                          .bind("guard")))
          .bind("decl"),
      this);
}

void HtmRegionPurityCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *DS = Result.Nodes.getNodeAs<DeclStmt>("decl");
  const auto *Guard = Result.Nodes.getNodeAs<VarDecl>("guard");
  if (DS == nullptr || Guard == nullptr) {
    return;
  }
  const SourceManager &SM = *Result.SourceManager;
  // The simulator's own sources implement the machinery being modeled.
  if (FileMatches(SM, DS->getBeginLoc(), "src/sim/")) {
    return;
  }
  ASTContext &Ctx = *Result.Context;
  const auto Parents = Ctx.getParents(*DS);
  if (Parents.empty()) {
    return;
  }
  const auto *Block = Parents[0].get<CompoundStmt>();
  if (Block == nullptr) {
    return;
  }
  unsigned Idx = 0;
  for (const Stmt *Child : Block->body()) {
    ++Idx;
    if (Child == DS) {
      break;
    }
  }
  ScanBlock(Block, Idx, /*Active=*/true, Guard, Ctx);
}

void HtmRegionPurityCheck::ScanBlock(const CompoundStmt *Block,
                                     unsigned StartIdx, bool Active,
                                     const VarDecl *Guard, ASTContext &Ctx) {
  unsigned Idx = 0;
  for (const Stmt *Child : Block->body()) {
    if (Idx++ < StartIdx) {
      continue;
    }
    if (ScanStmt(Child, Active, Guard, Ctx)) {
      // Commit()/Abort() ran unconditionally: the remainder of THIS block is
      // outside the region.
      Active = false;
    }
  }
}

bool HtmRegionPurityCheck::ScanStmt(const Stmt *S, bool Active,
                                    const VarDecl *Guard, ASTContext &Ctx) {
  if (S == nullptr) {
    return false;
  }
  if (const auto *CS = dyn_cast<CompoundStmt>(S)) {
    ScanBlock(CS, 0, Active, Guard, Ctx);
    return false;  // a bare block's deactivation does not leak out (paranoia;
                   // an unconditional end call inside still silenced its own
                   // tail, which is where violations would sit)
  }
  if (const auto *If = dyn_cast<IfStmt>(S)) {
    const bool CondEnds = EndsRegion(If->getCond(), Guard);
    if (Active) {
      FlagForbidden(If->getCond(), Guard, Ctx);
    }
    // Branches run after the condition: if the condition itself ended the
    // region (e.g. `if (htm->Commit() == Status::kOk)`), they are clean.
    const bool BranchActive = Active && !CondEnds;
    ScanStmt(If->getThen(), BranchActive, Guard, Ctx);
    ScanStmt(If->getElse(), BranchActive, Guard, Ctx);
    return CondEnds;
  }
  if (const auto *W = dyn_cast<WhileStmt>(S)) {
    if (Active) {
      FlagForbidden(W->getCond(), Guard, Ctx);
    }
    ScanStmt(W->getBody(), Active, Guard, Ctx);
    return false;
  }
  if (const auto *F = dyn_cast<ForStmt>(S)) {
    if (Active) {
      FlagForbidden(F->getInit(), Guard, Ctx);
      FlagForbidden(F->getCond(), Guard, Ctx);
      FlagForbidden(F->getInc(), Guard, Ctx);
    }
    ScanStmt(F->getBody(), Active, Guard, Ctx);
    return false;
  }
  if (const auto *F = dyn_cast<CXXForRangeStmt>(S)) {
    if (Active) {
      FlagForbidden(F->getRangeInit(), Guard, Ctx);
    }
    ScanStmt(F->getBody(), Active, Guard, Ctx);
    return false;
  }
  if (const auto *D = dyn_cast<DoStmt>(S)) {
    ScanStmt(D->getBody(), Active, Guard, Ctx);
    if (Active) {
      FlagForbidden(D->getCond(), Guard, Ctx);
    }
    return false;
  }
  if (const auto *Sw = dyn_cast<SwitchStmt>(S)) {
    if (Active) {
      FlagForbidden(Sw->getCond(), Guard, Ctx);
    }
    ScanStmt(Sw->getBody(), Active, Guard, Ctx);
    return false;
  }
  // Plain statement (expression, decl, return, ...): flag its whole subtree,
  // then see whether it unconditionally ends the region.
  if (Active) {
    FlagForbidden(S, Guard, Ctx);
  }
  return EndsRegion(S, Guard);
}

bool HtmRegionPurityCheck::EndsRegion(const Stmt *S, const VarDecl *Guard) const {
  if (S == nullptr) {
    return false;
  }
  if (const auto *Call = dyn_cast<CXXMemberCallExpr>(S)) {
    const CXXMethodDecl *MD = Call->getMethodDecl();
    if (MD != nullptr &&
        (MD->getName() == "Commit" || MD->getName() == "Abort")) {
      const Expr *Obj = Call->getImplicitObjectArgument();
      if (Obj != nullptr) {
        Obj = Obj->IgnoreParenImpCasts();
        if (const auto *DRE = dyn_cast<DeclRefExpr>(Obj)) {
          if (DRE->getDecl() == Guard) {
            return true;
          }
        }
      }
    }
  }
  for (const Stmt *Child : S->children()) {
    if (EndsRegion(Child, Guard)) {
      return true;
    }
  }
  return false;
}

void HtmRegionPurityCheck::FlagForbidden(const Stmt *S, const VarDecl *Guard,
                                         ASTContext &Ctx) {
  if (S == nullptr) {
    return;
  }
  // Deferred work in a lambda body does not run inside the region.
  if (isa<LambdaExpr>(S)) {
    return;
  }
  const SourceManager &SM = Ctx.getSourceManager();
  const LangOptions &LO = Ctx.getLangOpts();

  const auto Report = [&](SourceLocation Loc, llvm::StringRef What,
                          llvm::StringRef Why) {
    if (Loc.isInvalid() || InsideCheckMacro(Loc, SM, LO) ||
        HasJustifiedAllow(SM, Loc, kAllowTag)) {
      return;
    }
    diag(Loc, "%0 inside an HTM region: %1; on real RTM this aborts the "
              "region (guaranteed fallback)")
        << What << Why;
  };

  if (const auto *New = dyn_cast<CXXNewExpr>(S)) {
    Report(New->getBeginLoc(), "heap allocation", "operator new");
  } else if (const auto *Del = dyn_cast<CXXDeleteExpr>(S)) {
    Report(Del->getBeginLoc(), "heap free", "operator delete");
  } else if (const auto *MC = dyn_cast<CXXMemberCallExpr>(S)) {
    const CXXMethodDecl *MD = MC->getMethodDecl();
    if (MD != nullptr && MD->getParent() != nullptr) {
      const std::string Class = MD->getParent()->getQualifiedNameAsString();
      const llvm::StringRef Method = MD->getName();
      if (Class == "drtmr::sim::Fabric" || Class == "drtmr::sim::RdmaNic") {
        Report(MC->getBeginLoc(), "fabric verb post",
               "the NIC doorbell is I/O");
      } else if (Class == "drtmr::sim::MemoryBus") {
        Report(MC->getBeginLoc(), "raw bus access",
               "non-transactional access bypasses the read/write sets");
      } else if ((Class == "drtmr::SimClock" || Class == "drtmr::sim::SimClock") &&
                 (Method == "Advance" || Method == "AdvanceTo" ||
                  Method == "Reset")) {
        Report(MC->getBeginLoc(), "virtual-clock mutation",
               "use ThreadContext::Charge, which books cost transactionally");
      } else if (IsAllocatingContainerMethod(Class, Method)) {
        Report(MC->getBeginLoc(), "potentially allocating container call",
               Method == "reserve" || Method == "resize" || Method == "assign"
                   ? "may call operator new"
                   : "may grow and call operator new");
      }
    }
  } else if (const auto *CE = dyn_cast<CallExpr>(S)) {
    if (const FunctionDecl *FD = CE->getDirectCallee()) {
      const llvm::StringRef Name =
          StripStd(llvm::StringRef(FD->getQualifiedNameAsString()));
      if (IsAllocFunction(Name)) {
        Report(CE->getBeginLoc(), "heap allocation", "libc allocator call");
      } else if (IsIoFunction(Name)) {
        Report(CE->getBeginLoc(), "I/O call", "stdio inside XBEGIN..XEND");
      }
    }
  } else if (const auto *CC = dyn_cast<CXXConstructExpr>(S)) {
    const CXXConstructorDecl *CD = CC->getConstructor();
    if (CD != nullptr && CD->getParent() != nullptr &&
        CD->getParent()->getQualifiedNameAsString() == "drtmr::LogMessage") {
      Report(CC->getBeginLoc(), "logging", "LogMessage writes to stderr");
    }
  }

  for (const Stmt *Child : S->children()) {
    FlagForbidden(Child, Guard, Ctx);
  }
}

}  // namespace clang::tidy::drtmr
