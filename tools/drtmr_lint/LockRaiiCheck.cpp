#include "LockRaiiCheck.h"

#include "DrtmrLintUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Analysis/CFG.h"
#include "clang/Lex/Lexer.h"
#include "llvm/ADT/DenseSet.h"
#include "llvm/ADT/SmallVector.h"

using namespace clang::ast_matchers;

namespace clang::tidy::drtmr {

namespace {

constexpr llvm::StringRef kAllowTag = "lock-raii";

// The object a lock/unlock/guard refers to, keyed by its spelling. Text
// matching is deliberate: `pump_mu_[i].lock()` and `pump_mu_[i].unlock()`
// pair up without alias analysis, and a renamed spelling on the unlock side
// is suspicious enough to flag anyway.
std::string ExprKey(const Expr *E, const SourceManager &SM,
                    const LangOptions &LO) {
  if (E == nullptr) {
    return std::string();
  }
  E = E->IgnoreParenImpCasts();
  // Strip an address-of / dereference so `mu.lock()` and `(&mu)->unlock()`
  // share a key.
  if (const auto *UO = dyn_cast<UnaryOperator>(E)) {
    if (UO->getOpcode() == UO_AddrOf || UO->getOpcode() == UO_Deref) {
      E = UO->getSubExpr()->IgnoreParenImpCasts();
    }
  }
  const CharSourceRange Range =
      CharSourceRange::getTokenRange(E->getSourceRange());
  return Lexer::getSourceText(Range, SM, LO).str();
}

bool IsLockableClass(const CXXRecordDecl *RD) {
  if (RD == nullptr) {
    return false;
  }
  const std::string Q = RD->getQualifiedNameAsString();
  return Q == "drtmr::Spinlock" || Q == "std::mutex" ||
         Q == "std::recursive_mutex" || Q == "std::shared_mutex" ||
         Q == "std::timed_mutex";
}

bool IsGuardClass(const CXXRecordDecl *RD) {
  if (RD == nullptr) {
    return false;
  }
  const std::string Q = RD->getQualifiedNameAsString();
  return Q == "std::lock_guard" || Q == "std::unique_lock" ||
         Q == "std::scoped_lock" || Q == "std::shared_lock";
}

// True iff the subtree releases (or adopts into RAII) the lock named `Key`:
// an unlock() member call on it, or a guard constructed over it.
bool SubtreeReleases(const Stmt *S, llvm::StringRef Key,
                     const SourceManager &SM, const LangOptions &LO) {
  if (S == nullptr) {
    return false;
  }
  if (const auto *MC = dyn_cast<CXXMemberCallExpr>(S)) {
    const CXXMethodDecl *MD = MC->getMethodDecl();
    if (MD != nullptr && MD->getName() == "unlock" &&
        IsLockableClass(MD->getParent()) &&
        ExprKey(MC->getImplicitObjectArgument(), SM, LO) == Key) {
      return true;
    }
  }
  if (const auto *CC = dyn_cast<CXXConstructExpr>(S)) {
    if (IsGuardClass(CC->getType()->getAsCXXRecordDecl()) &&
        CC->getNumArgs() >= 1 &&
        ExprKey(CC->getArg(0), SM, LO) == Key) {
      return true;
    }
  }
  for (const Stmt *Child : S->children()) {
    if (SubtreeReleases(Child, Key, SM, LO)) {
      return true;
    }
  }
  return false;
}

}  // namespace

void LockRaiiCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(hasName("lock"),
                               ofClass(anyOf(hasName("::drtmr::Spinlock"),
                                             hasName("::std::mutex"),
                                             hasName("::std::recursive_mutex"),
                                             hasName("::std::shared_mutex"),
                                             hasName("::std::timed_mutex"))))),
          forFunction(functionDecl(hasBody(compoundStmt())).bind("fn")))
          .bind("lock"),
      this);
}

void LockRaiiCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Lock = Result.Nodes.getNodeAs<CXXMemberCallExpr>("lock");
  const auto *Fn = Result.Nodes.getNodeAs<FunctionDecl>("fn");
  if (Lock == nullptr || Fn == nullptr) {
    return;
  }
  ASTContext &Ctx = *Result.Context;
  const SourceManager &SM = *Result.SourceManager;
  const LangOptions &LO = Ctx.getLangOpts();
  const SourceLocation Loc = Lock->getBeginLoc();
  // The simulator's striped bus engine does hand-ordered multi-stripe
  // locking; it is the machinery, not protocol code.
  if (FileMatches(SM, Loc, "src/sim/")) {
    return;
  }
  if (HasJustifiedAllow(SM, Loc, kAllowTag)) {
    return;
  }

  const std::string Key = ExprKey(Lock->getImplicitObjectArgument(), SM, LO);
  if (Key.empty()) {
    return;
  }

  const std::unique_ptr<CFG> TheCFG =
      CFG::buildCFG(Fn, Fn->getBody(), &Ctx, CFG::BuildOptions());
  if (TheCFG == nullptr) {
    return;
  }

  // Locate the block holding this lock call, and whether a release follows
  // later in the same block.
  const CFGBlock *LockBlock = nullptr;
  bool ReleasedInBlock = false;
  for (const CFGBlock *B : *TheCFG) {
    bool SeenLock = false;
    for (const CFGElement &El : *B) {
      const auto CS = El.getAs<CFGStmt>();
      if (!CS) {
        continue;
      }
      const Stmt *S = CS->getStmt();
      if (S == Lock) {
        SeenLock = true;
        LockBlock = B;
        continue;
      }
      if (SeenLock && SubtreeReleases(S, Key, SM, LO)) {
        ReleasedInBlock = true;
        break;
      }
    }
    if (LockBlock != nullptr) {
      break;
    }
  }
  if (LockBlock == nullptr || ReleasedInBlock) {
    return;
  }

  // BFS over successors; a block containing a release is a barrier. Reaching
  // the exit block means some path leaks the lock.
  llvm::DenseSet<const CFGBlock *> Visited;
  llvm::SmallVector<const CFGBlock *, 16> Work;
  const auto Push = [&](const CFGBlock *B) {
    if (B != nullptr && Visited.insert(B).second) {
      Work.push_back(B);
    }
  };
  for (const CFGBlock::AdjacentBlock &Succ : LockBlock->succs()) {
    Push(Succ.getReachableBlock());
  }
  while (!Work.empty()) {
    const CFGBlock *B = Work.pop_back_val();
    if (B == &TheCFG->getExit()) {
      diag(Loc,
           "lock acquired here can reach the end of %0 without an unlock or "
           "RAII guard on some path; use std::lock_guard / "
           "std::unique_lock(..., std::adopt_lock) so every exit releases it")
          << Fn;
      return;
    }
    bool Barrier = false;
    for (const CFGElement &El : *B) {
      const auto CS = El.getAs<CFGStmt>();
      if (CS && SubtreeReleases(CS->getStmt(), Key, SM, LO)) {
        Barrier = true;
        break;
      }
    }
    if (Barrier) {
      continue;
    }
    for (const CFGBlock::AdjacentBlock &Succ : B->succs()) {
      Push(Succ.getReachableBlock());
    }
  }
}

}  // namespace clang::tidy::drtmr
