// drtmr-htm-region-purity: no heap allocation, no fabric verb posts, no
// logging/IO, and no direct virtual-clock mutation lexically inside an HTM
// region (between `sim::HtmTxn* t = engine->Begin(...)` and the Commit()/
// Abort() that ends it).
//
// RTM aborts on illegal instructions, ring transitions, and capacity
// excursions ("Inherent Limitations of Hybrid Transactional Memory",
// PAPERS.md); a verb post inside XBEGIN..XEND is a guaranteed fallback on
// real hardware even though the simulator only dooms the region at runtime.
// The check is lexical and per-block: statements in the remainder of a block
// after a Commit()/Abort() on the guard are out of the region, but the
// region stays active after a conditional branch that ends it (the non-taken
// path is still transactional).
#ifndef DRTMR_LINT_HTM_REGION_PURITY_CHECK_H
#define DRTMR_LINT_HTM_REGION_PURITY_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::drtmr {

class HtmRegionPurityCheck : public ClangTidyCheck {
public:
  HtmRegionPurityCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;

private:
  void ScanBlock(const CompoundStmt *Block, unsigned StartIdx, bool Active,
                 const VarDecl *Guard, ASTContext &Ctx);
  // Scans one statement with the region `Active`; returns true if this
  // statement unconditionally ends the region for the rest of its block.
  bool ScanStmt(const Stmt *S, bool Active, const VarDecl *Guard,
                ASTContext &Ctx);
  void FlagForbidden(const Stmt *S, const VarDecl *Guard, ASTContext &Ctx);
  bool EndsRegion(const Stmt *S, const VarDecl *Guard) const;
};

}  // namespace clang::tidy::drtmr

#endif  // DRTMR_LINT_HTM_REGION_PURITY_CHECK_H
