// drtmr-status-flow: [[nodiscard]] on drtmr::Status catches a discarded
// direct call, but not a Status laundered through expression forms the
// attribute does not reach:
//   * the left operand of a comma expression,
//   * a ternary used as a statement (`ok ? DoA() : DoB();`),
//   * a local Status that is assigned and then never examined.
// A silently dropped Status here is a silently dropped kStaleEpoch /
// kMigrating / kConflict — i.e. an epoch-fencing or admission decision that
// never happened.
#ifndef DRTMR_LINT_STATUS_FLOW_CHECK_H
#define DRTMR_LINT_STATUS_FLOW_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::drtmr {

class StatusFlowCheck : public ClangTidyCheck {
public:
  StatusFlowCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::drtmr

#endif  // DRTMR_LINT_STATUS_FLOW_CHECK_H
