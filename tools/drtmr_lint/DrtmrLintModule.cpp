// drtmr-lint: out-of-tree clang-tidy module carrying the engine's protocol
// invariants as compile-time checks. Load with:
//   clang-tidy --load=libdrtmr_lint.so --checks='drtmr-*' ...
// Each check mirrors a violation class the runtime protocol analyzer hunts
// dynamically (DESIGN.md §15 maps them one-to-one).
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "HtmRegionPurityCheck.h"
#include "LockRaiiCheck.h"
#include "RegisteredMemoryCheck.h"
#include "SeqlockDisciplineCheck.h"
#include "StatusFlowCheck.h"
#include "WallclockDeterminismCheck.h"

namespace clang::tidy::drtmr {

class DrtmrLintModule : public ClangTidyModule {
public:
  void addCheckFactories(ClangTidyCheckFactories &Factories) override {
    Factories.registerCheck<HtmRegionPurityCheck>("drtmr-htm-region-purity");
    Factories.registerCheck<SeqlockDisciplineCheck>("drtmr-seqlock-discipline");
    Factories.registerCheck<WallclockDeterminismCheck>(
        "drtmr-wallclock-determinism");
    Factories.registerCheck<LockRaiiCheck>("drtmr-lock-raii");
    Factories.registerCheck<StatusFlowCheck>("drtmr-status-flow");
    Factories.registerCheck<RegisteredMemoryCheck>("drtmr-registered-memory");
  }
};

namespace {
ClangTidyModuleRegistry::Add<DrtmrLintModule>
    X("drtmr-lint-module", "Protocol invariants for the drtmr engine.");
}  // namespace

}  // namespace clang::tidy::drtmr

// Anchor so -load keeps the module object alive.
volatile int DrtmrLintModuleAnchorSource = 0;
