#include "SeqlockDisciplineCheck.h"

#include "DrtmrLintUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::drtmr {

namespace {
constexpr llvm::StringRef kAllowTag = "seqlock";

AST_MATCHER(VarDecl, isRecordMetaOffset) {
  const std::string Q = Node.getQualifiedNameAsString();
  return Q == "drtmr::store::RecordLayout::kLockOff" ||
         Q == "drtmr::store::RecordLayout::kSeqOff" ||
         Q == "drtmr::store::RecordLayout::kIncOff";
}
}  // namespace

void SeqlockDisciplineCheck::registerMatchers(MatchFinder *Finder) {
  const auto MetaOffsetRef =
      declRefExpr(to(varDecl(isRecordMetaOffset()))).bind("off");

  // Raw byte-level copy into/out of a metadata word: memcpy/memset/memmove
  // with any argument computed from a metadata offset. The sanctioned copies
  // live behind RecordLayout's accessors in store/ — passing
  // `image.data() + kSeqOff` into a bus/NIC/HTM verb is NOT matched here
  // (the callee is the instrumented operation, not memcpy).
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName("::memcpy", "::std::memcpy",
                                              "::memset", "::std::memset",
                                              "::memmove", "::std::memmove"))),
               hasAnyArgument(expr(hasDescendant(MetaOffsetRef))))
          .bind("raw"),
      this);

  // Direct dereference of a pointer computed from a metadata offset
  // (`*(uint64_t*)(rec + kLockOff)` and friends).
  Finder->addMatcher(
      unaryOperator(hasOperatorName("*"),
                    hasUnaryOperand(expr(hasDescendant(MetaOffsetRef))))
          .bind("raw"),
      this);

  // Any reinterpret_cast seeded from a metadata offset — the usual prelude
  // to a typed store that bypasses the accessors.
  Finder->addMatcher(
      cxxReinterpretCastExpr(hasDescendant(MetaOffsetRef)).bind("raw"), this);
}

void SeqlockDisciplineCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Raw = Result.Nodes.getNodeAs<Expr>("raw");
  if (Raw == nullptr) {
    return;
  }
  const SourceManager &SM = *Result.SourceManager;
  const SourceLocation Loc = Raw->getBeginLoc();
  // Sanctioned accessor set: RecordLayout itself (store/) and the analyzer's
  // shadow bookkeeping, which reads its own copies, never bus memory.
  if (FileMatches(SM, Loc, "src/store/") ||
      FileMatches(SM, Loc, "protocol_analyzer")) {
    return;
  }
  if (HasJustifiedAllow(SM, Loc, kAllowTag)) {
    return;
  }
  diag(Loc,
       "raw access to a record lock/seq/incarnation word outside the "
       "sanctioned accessors; go through RecordLayout or an instrumented "
       "bus/NIC/HTM operation so the seqlock protocol and the runtime "
       "analyzer can see it");
}

}  // namespace clang::tidy::drtmr
