// Positive fixture for drtmr-status-flow: Status values laundered past
// [[nodiscard]] through expression forms the attribute cannot reach.
#include "stubs.h"

using drtmr::Status;

Status Prepare();
Status Apply();
Status Rollback();
int Bump();

void CommaLaundersStatus() {
  (Prepare(), Bump());  // WANT: left of a comma expression
}

void TernaryAsStatement(bool ok) {
  ok ? Apply() : Rollback();  // WANT: ternary used as a statement
}

void StatusNeverExamined() {
  Status s = Prepare();  // WANT: never examined
  Bump();
}

void StatusOnlyReassigned() {
  Status s = Prepare();  // WANT: never examined
  s = Apply();
  Bump();
}
