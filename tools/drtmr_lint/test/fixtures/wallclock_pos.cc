// Positive fixture for drtmr-wallclock-determinism: wall clocks, libc time,
// OS entropy, and unseeded engines in engine code.
#include "stubs.h"

long ChronoClocks() {
  long a = std::chrono::steady_clock::now();           // WANT: wall-clock read
  long b = std::chrono::system_clock::now();           // WANT: wall-clock read
  long c = std::chrono::high_resolution_clock::now();  // WANT: wall-clock read
  return a + b + c;
}

long LibcTimeAndEntropy() {
  long t = time(nullptr);  // WANT: libc time/entropy call
  int r = rand();          // WANT: libc time/entropy call
  srand(42);               // WANT: libc time/entropy call
  return t + r;
}

unsigned OsEntropy() {
  std::random_device rd;  // WANT: std::random_device
  return rd();
}

unsigned UnseededEngine() {
  std::mt19937 eng;  // WANT: default-seeded random engine
  return eng();
}
