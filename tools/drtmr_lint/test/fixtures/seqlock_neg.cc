// Negative fixture for drtmr-seqlock-discipline: sanctioned uses of the
// metadata offsets — instrumented bus/NIC/HTM operations and the store/
// accessors — must stay silent.
#include "stubs.h"

using drtmr::store::RecordLayout;

// Passing an offset into an instrumented operation is the sanctioned path:
// the callee is the bus/HTM verb, which the runtime analyzer observes.
void OffsetIntoInstrumentedVerbs(drtmr::sim::MemoryBus *bus,
                                 drtmr::sim::ThreadContext *ctx,
                                 drtmr::sim::HtmTxn *htm,
                                 unsigned long rec_base) {
  (void)bus->ReadU64(ctx, rec_base + RecordLayout::kSeqOff);
  bus->WriteU64(ctx, rec_base + RecordLayout::kLockOff, 1);
  unsigned long inc = 0;
  (void)htm->ReadU64(rec_base + RecordLayout::kIncOff, &inc);
}

// The store/ accessor functions are the sanctioned CPU-side path.
void ThroughAccessors(unsigned char *rec) {
  const unsigned long seq = drtmr::store::LoadSeq(rec);
  drtmr::store::StoreSeq(rec, seq + 2);
}

// Arithmetic on the offsets without a raw load/store is fine (e.g. sizing).
unsigned long MetadataSpanBytes() {
  return RecordLayout::kSeqOff + 8 - RecordLayout::kLockOff;
}

// A justified allow-comment silences a finding.
void JustifiedRawPeek(const unsigned char *rec, unsigned long *out) {
  // drtmr-lint: allow(seqlock): read-only crash-dump formatter, no protocol effect
  memcpy(out, rec + RecordLayout::kSeqOff, 8);
}
