// Positive fixture for drtmr-seqlock-discipline: raw loads/stores of record
// metadata words, computed from RecordLayout offsets, outside store/.
#include "stubs.h"

using drtmr::store::RecordLayout;

void RawMemcpyOfSeqWord(unsigned char *rec, unsigned long *out) {
  memcpy(out, rec + RecordLayout::kSeqOff, 8);  // WANT: raw access to a record
}

void RawDerefStoreOfLockWord(unsigned char *rec) {
  *reinterpret_cast<unsigned long *>(rec + RecordLayout::kLockOff) = 1;  // WANT: raw access to a record
}

void RawCastOfIncarnationWord(unsigned char *rec) {
  auto *inc = reinterpret_cast<unsigned long *>(rec + RecordLayout::kIncOff);  // WANT: raw access to a record
  (void)inc;
}

void RawMemsetOverMetadata(unsigned char *rec) {
  memset(rec + RecordLayout::kLockOff, 0, 24);  // WANT: raw access to a record
}
