// Positive fixture for drtmr-htm-region-purity: every statement below sits
// lexically inside an open HTM region and must be flagged.
#include "stubs.h"

using drtmr::Status;
using drtmr::sim::HtmEngine;
using drtmr::sim::HtmTxn;

void AllocationsInsideRegion(HtmEngine *engine, drtmr::sim::ThreadContext *ctx,
                             std::vector<int> *scratch) {
  HtmTxn *htm = engine->Begin(ctx);
  int *leak = new int[8];          // WANT: heap allocation
  scratch->push_back(1);           // WANT: potentially allocating container call
  void *raw = malloc(64);          // WANT: heap allocation
  (void)leak;
  (void)raw;
  (void)htm->Commit();
}

void IoAndLoggingInsideRegion(HtmEngine *engine,
                              drtmr::sim::ThreadContext *ctx) {
  HtmTxn *htm = engine->Begin(ctx);
  printf("inside region\n");           // WANT: I/O call
  DRTMR_LOG(Info) << "inside region";  // WANT: logging
  (void)htm->Commit();
}

void VerbsAndClockInsideRegion(HtmEngine *engine,
                               drtmr::sim::ThreadContext *ctx,
                               drtmr::sim::Fabric *fabric,
                               drtmr::sim::MemoryBus *bus,
                               drtmr::SimClock *clock) {
  HtmTxn *htm = engine->Begin(ctx);
  fabric->PostWrite(1, 0, nullptr, 0);  // WANT: fabric verb post
  bus->WriteU64(ctx, 0, 7);             // WANT: raw bus access
  clock->Advance(100);                  // WANT: virtual-clock mutation
  (void)htm->Commit();
}

void ViolationAfterConditionalAbortStillInRegion(
    HtmEngine *engine, drtmr::sim::ThreadContext *ctx, bool doomed) {
  HtmTxn *htm = engine->Begin(ctx);
  if (doomed) {
    htm->Abort();
    return;
  }
  // The abort above was branch-local; this path is still inside the region.
  puts("still inside");  // WANT: I/O call
  (void)htm->Commit();
}
