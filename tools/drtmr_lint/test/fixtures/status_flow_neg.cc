// Negative fixture for drtmr-status-flow: properly examined Status values.
#include "stubs.h"

using drtmr::Status;

Status Prepare();
Status Apply();
Status Rollback();

// Compared: examined.
bool Checked() {
  Status s = Prepare();
  return s == Status::kOk;
}

// Reassigned in a retry loop but examined after.
bool RetryLoop(int tries) {
  Status s = Prepare();
  for (int i = 0; i < tries && s != Status::kOk; ++i) {
    s = Apply();
  }
  return s == Status::kOk;
}

// Ternary whose value is consumed.
Status Forwarded(bool ok) {
  return ok ? Apply() : Rollback();
}

// Ternary assigned into an examined local.
bool TernaryConsumed(bool ok) {
  const Status s = ok ? Apply() : Rollback();
  return s != Status::kAborted;
}

// Explicit void-cast is an examined (deliberate) discard — and a visible one,
// unlike a comma operand.
void DeliberateDiscard() {
  Status s = Rollback();
  (void)s;
}
