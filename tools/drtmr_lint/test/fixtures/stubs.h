// Self-contained declarations for drtmr-lint fixtures. The fixtures compile
// with -nostdinc++ so the self-tests do not depend on a system libstdc++;
// everything a check matches on is declared here with the exact qualified
// names the matchers look for. Signatures are shape-compatible with the real
// engine headers but deliberately minimal.
#ifndef DRTMR_LINT_TEST_STUBS_H
#define DRTMR_LINT_TEST_STUBS_H

using size_type = unsigned long;

extern "C" {
void *malloc(size_type);
void *calloc(size_type, size_type);
void free(void *);
int printf(const char *, ...);
int puts(const char *);
void *memcpy(void *, const void *, size_type);
void *memset(void *, int, size_type);
long time(long *);
int gettimeofday(void *, void *);
int clock_gettime(int, void *);
int rand(void);
void srand(unsigned);
}

namespace std {

template <class T>
class vector {
 public:
  vector();
  void push_back(const T &);
  void resize(size_type);
  void reserve(size_type);
  void assign(size_type, const T &);
  size_type size() const;
  T *data();
};

class mutex {
 public:
  void lock();
  void unlock();
  bool try_lock();
};

struct adopt_lock_t {};
inline constexpr adopt_lock_t adopt_lock{};

template <class M>
class lock_guard {
 public:
  explicit lock_guard(M &);
  lock_guard(M &, adopt_lock_t);
  ~lock_guard();
};

template <class M>
class unique_lock {
 public:
  unique_lock();
  explicit unique_lock(M &);
  unique_lock(M &, adopt_lock_t);
  ~unique_lock();
};

namespace chrono {
struct steady_clock {
  static long now();
};
struct system_clock {
  static long now();
};
struct high_resolution_clock {
  static long now();
};
}  // namespace chrono

class random_device {
 public:
  random_device();
  unsigned operator()();
};

template <class UIntType, int StateSize>
class mersenne_twister_engine {
 public:
  mersenne_twister_engine();
  explicit mersenne_twister_engine(UIntType seed);
  UIntType operator()();
};
using mt19937 = mersenne_twister_engine<unsigned, 624>;

}  // namespace std

namespace drtmr {

enum class [[nodiscard]] Status : unsigned char {
  kOk = 0,
  kConflict,
  kStaleEpoch,
  kMigrating,
  kAborted,
};

class Spinlock {
 public:
  void lock();
  void unlock();
  bool try_lock();
};

enum class LogLevel { Debug, Info, Warn, Error, Fatal };

class LogMessage {
 public:
  LogMessage(const char *file, int line, LogLevel lvl);
  ~LogMessage();
  LogMessage &operator<<(const char *);
  LogMessage &operator<<(long);
};

class SimClock {
 public:
  void Advance(unsigned long ticks);
  void AdvanceTo(unsigned long t);
  void Reset();
  unsigned long Now() const;
};

namespace store {
struct RecordLayout {
  static constexpr unsigned long kLockOff = 0;
  static constexpr unsigned long kIncOff = 8;
  static constexpr unsigned long kSeqOff = 16;
};
unsigned long LoadSeq(const unsigned char *rec);
void StoreSeq(unsigned char *rec, unsigned long seq);
}  // namespace store

namespace sim {

class ThreadContext {
 public:
  void Charge(unsigned long ticks);
};

class MemoryBus {
 public:
  unsigned char *raw();
  void Write(ThreadContext *ctx, unsigned long addr, const void *src,
             unsigned long len);
  void WriteU64(ThreadContext *ctx, unsigned long addr, unsigned long v);
  bool CasU64(ThreadContext *ctx, unsigned long addr, unsigned long expect,
              unsigned long desired);
  unsigned long FetchAddU64(ThreadContext *ctx, unsigned long addr,
                            unsigned long d);
  unsigned long ReadU64(ThreadContext *ctx, unsigned long addr);
  void Read(ThreadContext *ctx, unsigned long addr, void *dst,
            unsigned long len);
};

class HtmTxn {
 public:
  Status Read(unsigned long offset, void *dst, unsigned long len);
  Status Write(unsigned long offset, const void *src, unsigned long len);
  Status ReadU64(unsigned long offset, unsigned long *value);
  Status WriteU64(unsigned long offset, unsigned long value);
  Status Commit();
  void Abort();
};

class HtmEngine {
 public:
  HtmTxn *Begin(ThreadContext *ctx);
};

class Fabric {
 public:
  void PostWrite(int node, unsigned long addr, const void *src,
                 unsigned long len);
  void PostRead(int node, unsigned long addr, void *dst, unsigned long len);
};

class RdmaNic {
 public:
  void PostSend(int qp, const void *buf, unsigned long len);
};

}  // namespace sim
}  // namespace drtmr

#define DRTMR_LOG(lvl) \
  ::drtmr::LogMessage(__FILE__, __LINE__, ::drtmr::LogLevel::lvl)
#define DRTMR_CHECK(cond) \
  if (!(cond)) DRTMR_LOG(Fatal) << "check failed: " #cond

#endif  // DRTMR_LINT_TEST_STUBS_H
