// Negative fixture for drtmr-htm-region-purity: nothing here may be flagged.
#include "stubs.h"

using drtmr::Status;
using drtmr::sim::HtmEngine;
using drtmr::sim::HtmTxn;

// Transactional accessors and cost booking through the context are the
// sanctioned operations inside a region.
void CleanRegion(HtmEngine *engine, drtmr::sim::ThreadContext *ctx) {
  HtmTxn *htm = engine->Begin(ctx);
  unsigned long v = 0;
  if (htm->ReadU64(64, &v) != Status::kOk) {
    htm->Abort();
    return;
  }
  (void)htm->WriteU64(64, v + 1);
  ctx->Charge(12);
  (void)htm->Commit();
}

// Code after an unconditional Commit is outside the region.
void IoAfterCommit(HtmEngine *engine, drtmr::sim::ThreadContext *ctx) {
  HtmTxn *htm = engine->Begin(ctx);
  (void)htm->WriteU64(0, 1);
  (void)htm->Commit();
  printf("after commit: fine\n");
}

// A Commit in the if-condition ends the region before either branch runs.
void IoAfterCommitInCondition(HtmEngine *engine,
                              drtmr::sim::ThreadContext *ctx) {
  HtmTxn *htm = engine->Begin(ctx);
  if (htm->Commit() == Status::kOk) {
    printf("committed\n");
  } else {
    printf("aborted\n");
  }
}

// DRTMR_CHECK logs only on the fatal path, where the process dies anyway.
void CheckMacroInsideRegion(HtmEngine *engine, drtmr::sim::ThreadContext *ctx,
                            unsigned long v) {
  HtmTxn *htm = engine->Begin(ctx);
  DRTMR_CHECK(v != 0);
  (void)htm->WriteU64(0, v);
  (void)htm->Commit();
}

// Work captured in a lambda is deferred; it does not run inside the region.
void LambdaBodyIsDeferred(HtmEngine *engine, drtmr::sim::ThreadContext *ctx,
                          std::vector<int> *out) {
  HtmTxn *htm = engine->Begin(ctx);
  auto defer = [out]() { out->push_back(1); };
  (void)htm->Commit();
  defer();
}

// A justified allow-comment silences a finding.
void JustifiedException(HtmEngine *engine, drtmr::sim::ThreadContext *ctx) {
  HtmTxn *htm = engine->Begin(ctx);
  // drtmr-lint: allow(htm-purity): diagnostic-only build, stripped in release
  printf("probe\n");
  (void)htm->Commit();
}
