// Positive fixture for drtmr-lock-raii: manual lock() calls with at least one
// CFG path to the function exit that never releases.
#include "stubs.h"

int EarlyReturnLeaksSpinlock(drtmr::Spinlock &mu, bool fast_path) {
  mu.lock();  // WANT: without an unlock or RAII guard
  if (fast_path) {
    return 1;  // leaks mu
  }
  mu.unlock();
  return 0;
}

int BranchMissesUnlock(std::mutex &mu, int mode) {
  mu.lock();  // WANT: without an unlock or RAII guard
  if (mode == 0) {
    mu.unlock();
    return 0;
  }
  return mode;  // leaks mu
}

void NoReleaseAtAll(drtmr::Spinlock &mu, int *counter) {
  mu.lock();  // WANT: without an unlock or RAII guard
  ++*counter;
}
