// Negative fixture for drtmr-registered-memory: ctx-charged mutations and
// ctx-less READS are fine; a justified raw() is silenced.
#include "stubs.h"

using drtmr::sim::MemoryBus;
using drtmr::sim::ThreadContext;

void ChargedWrites(MemoryBus *bus, ThreadContext *ctx) {
  bus->WriteU64(ctx, 64, 7);
  (void)bus->CasU64(ctx, 64, 0, 1);
  (void)bus->FetchAddU64(ctx, 64, 1);
}

// Reads with no ctx are benign (dumps, assertions, bootstrap): not flagged.
unsigned long CtxLessReadIsFine(MemoryBus *bus) {
  return bus->ReadU64(nullptr, 64);
}

// A justified allow-comment silences the escape hatch.
unsigned char *JustifiedRaw(MemoryBus *bus) {
  // drtmr-lint: allow(registered-memory): startup checksum before any traffic
  return bus->raw();
}
