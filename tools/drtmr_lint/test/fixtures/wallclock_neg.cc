// Negative fixture for drtmr-wallclock-determinism: seed-derived streams and
// justified real-time watchdogs must stay silent.
#include "stubs.h"

// A stream seeded from the run seed is deterministic.
unsigned SeededEngine(unsigned run_seed) {
  std::mt19937 eng(run_seed);
  return eng();
}

// Virtual time is the sanctioned clock.
unsigned long VirtualTime(drtmr::SimClock *clock) {
  return clock->Now();
}

// Real-time watchdogs are allowed with a justification, same line...
long WatchdogSameLine() {
  return time(nullptr);  // drtmr-lint: allow(wallclock): hang watchdog, never feeds protocol state
}

// ...or on the preceding line.
long WatchdogPrevLine() {
  // drtmr-lint: allow(wallclock): wall-clock budget for the torture harness
  long now = std::chrono::steady_clock::now();
  return now;
}
