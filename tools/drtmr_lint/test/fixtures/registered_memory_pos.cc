// Positive fixture for drtmr-registered-memory: raw() escapes and ctx-less
// mutating bus calls outside the sanctioned writers.
#include "stubs.h"

using drtmr::sim::MemoryBus;

unsigned char *RawEscapeHatch(MemoryBus *bus) {
  return bus->raw();  // WANT: raw() bypasses cost charging
}

void CtxLessWrite(MemoryBus *bus) {
  bus->WriteU64(nullptr, 64, 7);  // WANT: nullptr ctx
}

void CtxLessCas(MemoryBus *bus) {
  (void)bus->CasU64(nullptr, 64, 0, 1);  // WANT: nullptr ctx
}

void CtxLessFetchAdd(MemoryBus *bus) {
  (void)bus->FetchAddU64(nullptr, 64, 1);  // WANT: nullptr ctx
}
