// Negative fixture for drtmr-lock-raii: every path releases, so the check
// must stay silent.
#include "stubs.h"

int StraightLine(drtmr::Spinlock &mu, int *counter) {
  mu.lock();
  const int v = ++*counter;
  mu.unlock();
  return v;
}

// Handing a manually acquired lock to an RAII guard covers every later exit.
int AdoptedIntoGuard(drtmr::Spinlock &mu, bool fast_path, int *counter) {
  mu.lock();
  std::unique_lock<drtmr::Spinlock> g(mu, std::adopt_lock);
  if (fast_path) {
    return 1;
  }
  return ++*counter;
}

// Unlock on both sides of a branch.
int BothBranchesRelease(std::mutex &mu, int mode) {
  mu.lock();
  if (mode == 0) {
    mu.unlock();
    return 0;
  }
  mu.unlock();
  return mode;
}

// Lock/unlock per loop iteration: the backedge never escapes with the lock.
void PerIterationLock(drtmr::Spinlock &mu, int *items, int n) {
  for (int i = 0; i < n; ++i) {
    mu.lock();
    ++items[i];
    mu.unlock();
  }
}

// Pure RAII (no manual lock()) is not even matched.
int GuardOnly(std::mutex &mu, int *counter) {
  std::lock_guard<std::mutex> g(mu);
  return ++*counter;
}

// try_lock-else-lock handoff into an adopting guard (the replication pump's
// shape after the RAII conversion).
void ConditionalAcquire(drtmr::Spinlock &mu, bool wait, int *counter) {
  if (wait) {
    mu.lock();
  } else if (!mu.try_lock()) {
    return;
  }
  std::unique_lock<drtmr::Spinlock> g(mu, std::adopt_lock);
  ++*counter;
}
