#!/usr/bin/env python3
"""Fixture driver for the drtmr-lint clang-tidy plugin.

Usage:
    run_check_test.py CLANG_TIDY PLUGIN CHECK FIXTURE [FIXTURE...]

For each fixture file:
  * run `CLANG_TIDY --load=PLUGIN --checks=-*,CHECK FIXTURE -- <flags>`,
  * collect `warning: ... [CHECK]` diagnostics,
  * compare against the fixture's `// WANT: <substr>` markers:
      - every WANT substring must appear in at least one diagnostic line,
      - every diagnostic line must be claimed by at least one WANT
        (so a fixture with no WANT markers asserts the check stays silent).

A hard compiler error in a fixture is always a failure (the fixture itself
is broken, not the check). Exit 0 on success, 1 on any mismatch.
"""

import os
import re
import subprocess
import sys


def parse_wants(fixture):
    wants = []
    with open(fixture, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            m = re.search(r"//\s*WANT:\s*(.+?)\s*$", line)
            if m:
                wants.append((lineno, m.group(1)))
    return wants


def run_clang_tidy(clang_tidy, plugin, check, fixture):
    fixture_dir = os.path.dirname(os.path.abspath(fixture))
    cmd = [
        clang_tidy,
        "--load=" + plugin,
        "--checks=-*," + check,
        "--quiet",
        fixture,
        "--",
        "-std=c++17",
        "-nostdinc++",
        "-I",
        fixture_dir,
    ]
    proc = subprocess.run(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
    )
    return proc.stdout


def check_fixture(clang_tidy, plugin, check, fixture):
    out = run_clang_tidy(clang_tidy, plugin, check, fixture)
    failures = []

    # A compile error means the fixture (or stubs.h) is broken.
    for line in out.splitlines():
        if " error: " in line:
            failures.append("compiler error in fixture: %s" % line.strip())

    diag_re = re.compile(r"warning: (.*) \[%s\]" % re.escape(check))
    diags = []
    for line in out.splitlines():
        m = diag_re.search(line)
        if m and os.path.basename(fixture) in line:
            diags.append(line.strip())

    wants = parse_wants(fixture)

    for lineno, want in wants:
        if not any(want in d for d in diags):
            failures.append(
                "line %d: expected a diagnostic containing %r, got none"
                % (lineno, want)
            )
    for d in diags:
        if not any(want in d for _, want in wants):
            failures.append("unexpected diagnostic: %s" % d)

    name = os.path.basename(fixture)
    if failures:
        print("FAIL %s (%d diagnostics, %d WANT markers)" % (name, len(diags), len(wants)))
        for f in failures:
            print("  " + f)
        if out.strip():
            print("  --- clang-tidy output ---")
            for line in out.splitlines():
                print("  " + line)
        return False
    print("PASS %s (%d diagnostics matched %d WANT markers)" % (name, len(diags), len(wants)))
    return True


def main(argv):
    if len(argv) < 5:
        print(__doc__)
        return 2
    clang_tidy, plugin, check = argv[1], argv[2], argv[3]
    fixtures = argv[4:]
    ok = True
    for fixture in fixtures:
        if not check_fixture(clang_tidy, plugin, check, fixture):
            ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
