#!/usr/bin/env bash
# Runs a drtmr-lint fixture test, or exits 77 (ctest's SKIP_RETURN_CODE)
# when the plugin toolchain is not available on this machine.
#
# Usage: lint_check_or_skip.sh CLANG_TIDY|MISSING PLUGIN|MISSING CHECK FIXTURE...
set -u

CLANG_TIDY="${1:-MISSING}"
PLUGIN="${2:-MISSING}"
shift 2 || true

if [ "${CLANG_TIDY}" = "MISSING" ] || ! command -v "${CLANG_TIDY}" >/dev/null 2>&1; then
  echo "SKIP: clang-tidy not available"
  exit 77
fi
if [ "${PLUGIN}" = "MISSING" ] || [ ! -f "${PLUGIN}" ]; then
  echo "SKIP: drtmr_lint plugin not built (clang dev headers absent?)"
  exit 77
fi
# The plugin must actually load into this clang-tidy (an LLVM version skew
# shows up here, not at build time).
if ! "${CLANG_TIDY}" "--load=${PLUGIN}" --list-checks --checks='-*,drtmr-*' \
    >/dev/null 2>&1; then
  echo "SKIP: plugin does not load into ${CLANG_TIDY} (LLVM version skew?)"
  exit 77
fi

exec python3 "$(dirname "$0")/run_check_test.py" "${CLANG_TIDY}" "${PLUGIN}" "$@"
