// drtmr-wallclock-determinism: the engine runs on virtual time (sim::SimClock
// / ThreadContext::Charge) and seeded FastRand streams; the torture harness,
// serializability checker, and bench gate all depend on runs being a pure
// function of the seed. Reading a wall clock or an OS entropy source from
// protocol code silently breaks that contract on exactly the runs a sweep
// cannot reproduce. Banned outside sim/: std::chrono::*_clock::now, libc
// time sources, rand/srand, std::random_device, and default-seeded random
// engines. Real-time *watchdogs* (bounding a wait on real threads) are legal
// but must carry a justified `// drtmr-lint: allow(wallclock): ...`.
#ifndef DRTMR_LINT_WALLCLOCK_DETERMINISM_CHECK_H
#define DRTMR_LINT_WALLCLOCK_DETERMINISM_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::drtmr {

class WallclockDeterminismCheck : public ClangTidyCheck {
public:
  WallclockDeterminismCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::drtmr

#endif  // DRTMR_LINT_WALLCLOCK_DETERMINISM_CHECK_H
