#include "RegisteredMemoryCheck.h"

#include "DrtmrLintUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::drtmr {

namespace {
constexpr llvm::StringRef kAllowTag = "registered-memory";
}

void RegisteredMemoryCheck::registerMatchers(MatchFinder *Finder) {
  const auto BusClass = cxxRecordDecl(hasName("::drtmr::sim::MemoryBus"));

  // raw(): the backing-array escape hatch. Reads through it are as invisible
  // to the analyzer as writes, so the bare call is the finding.
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(hasName("raw"), ofClass(BusClass))))
          .bind("raw"),
      this);

  // Mutating bus call with a nullptr ctx: the write itself is fine, the
  // missing provenance is not. Ctx-less READS are deliberately not flagged —
  // they are benign and widespread (dumps, assertions, bootstrap).
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(
              hasAnyName("Write", "WriteU64", "CasU64", "FetchAddU64"),
              ofClass(BusClass))),
          hasArgument(0, expr(ignoringParenImpCasts(cxxNullPtrLiteralExpr()))))
          .bind("mut"),
      this);
}

void RegisteredMemoryCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;
  const auto *Raw = Result.Nodes.getNodeAs<CXXMemberCallExpr>("raw");
  const auto *Mut = Result.Nodes.getNodeAs<CXXMemberCallExpr>("mut");
  const Expr *E = Raw != nullptr ? static_cast<const Expr *>(Raw)
                                 : static_cast<const Expr *>(Mut);
  if (E == nullptr) {
    return;
  }
  const SourceLocation Loc = E->getBeginLoc();
  // Sanctioned privileged writers: the bus itself, the checkers that verify
  // it, and recovery's log-replay path (which runs while the analyzer's
  // ownership map is being rebuilt).
  if (FileMatches(SM, Loc, "src/sim/") || FileMatches(SM, Loc, "src/chk/") ||
      FileMatches(SM, Loc, "src/rep/recovery.cc")) {
    return;
  }
  if (HasJustifiedAllow(SM, Loc, kAllowTag)) {
    return;
  }
  if (Raw != nullptr) {
    diag(Loc,
         "MemoryBus::raw() bypasses cost charging and the protocol "
         "analyzer's shadow state; use ctx-charged accessors or justify "
         "with '// drtmr-lint: allow(registered-memory): <reason>'");
  } else {
    diag(Loc,
         "mutating MemoryBus call with nullptr ctx: the write lands with no "
         "latency charge and no analyzer provenance; pass the real ctx or "
         "justify with '// drtmr-lint: allow(registered-memory): <reason>'");
  }
}

}  // namespace clang::tidy::drtmr
