#include "DrtmrLintUtils.h"

#include "llvm/ADT/SmallString.h"

namespace clang::tidy::drtmr {

namespace {

// Returns the text of the line containing `Offset` in `Buf`.
llvm::StringRef LineAt(llvm::StringRef Buf, size_t Offset) {
  if (Offset > Buf.size()) {
    return llvm::StringRef();
  }
  const size_t Begin = Buf.rfind('\n', Offset);
  const size_t Start = (Begin == llvm::StringRef::npos) ? 0 : Begin + 1;
  size_t End = Buf.find('\n', Offset);
  if (End == llvm::StringRef::npos) {
    End = Buf.size();
  }
  return Buf.slice(Start, End);
}

// Returns the text of the line preceding the one containing `Offset`.
llvm::StringRef PrevLineAt(llvm::StringRef Buf, size_t Offset) {
  if (Offset > Buf.size()) {
    return llvm::StringRef();
  }
  const size_t Begin = Buf.rfind('\n', Offset);
  if (Begin == llvm::StringRef::npos || Begin == 0) {
    return llvm::StringRef();
  }
  return LineAt(Buf, Begin - 1);
}

// True iff `Line` contains "drtmr-lint: allow(<Tag>):" followed by a
// non-whitespace justification.
bool LineHasJustifiedAllow(llvm::StringRef Line, llvm::StringRef Tag) {
  llvm::SmallString<64> Needle("drtmr-lint: allow(");
  Needle += Tag;
  Needle += ")";
  const size_t Pos = Line.find(Needle);
  if (Pos == llvm::StringRef::npos) {
    return false;
  }
  // StringRef::startswith was removed in LLVM 18; stay on the stable surface.
  llvm::StringRef Rest = Line.drop_front(Pos + Needle.size());
  if (Rest.empty() || Rest.front() != ':') {
    return false;
  }
  return !Rest.drop_front(1).trim().empty();
}

}  // namespace

bool HasJustifiedAllow(const SourceManager &SM, SourceLocation Loc,
                       llvm::StringRef Tag) {
  if (Loc.isInvalid()) {
    return false;
  }
  const SourceLocation FileLoc = SM.getFileLoc(Loc);
  const std::pair<FileID, unsigned> Decomposed = SM.getDecomposedLoc(FileLoc);
  bool Invalid = false;
  llvm::StringRef Buf = SM.getBufferData(Decomposed.first, &Invalid);
  if (Invalid) {
    return false;
  }
  return LineHasJustifiedAllow(LineAt(Buf, Decomposed.second), Tag) ||
         LineHasJustifiedAllow(PrevLineAt(Buf, Decomposed.second), Tag);
}

bool FileMatches(const SourceManager &SM, SourceLocation Loc,
                 llvm::StringRef Fragment) {
  if (Loc.isInvalid()) {
    return false;
  }
  const llvm::StringRef Name = SM.getFilename(SM.getFileLoc(Loc));
  return Name.contains(Fragment);
}

}  // namespace clang::tidy::drtmr
