#include "WallclockDeterminismCheck.h"

#include "DrtmrLintUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::drtmr {

namespace {
constexpr llvm::StringRef kAllowTag = "wallclock";
}

void WallclockDeterminismCheck::registerMatchers(MatchFinder *Finder) {
  // Wall clocks. hasName matches through inline namespaces, so the libstdc++
  // spellings resolve.
  Finder->addMatcher(
      callExpr(callee(functionDecl(
                   hasAnyName("::std::chrono::steady_clock::now",
                              "::std::chrono::system_clock::now",
                              "::std::chrono::high_resolution_clock::now"))))
          .bind("clock"),
      this);

  // libc time and entropy sources.
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName(
                   "::time", "::gettimeofday", "::clock_gettime", "::clock",
                   "::rand", "::srand", "::rand_r", "::random", "::srandom"))))
          .bind("libc"),
      this);

  // OS entropy: any std::random_device construction.
  Finder->addMatcher(
      cxxConstructExpr(hasType(cxxRecordDecl(hasName("::std::random_device"))))
          .bind("entropy"),
      this);

  // Default-constructed std random engines: an unseeded stream is a
  // different kind of nondeterminism bug (implementation-pinned but not
  // seed-derived); every stream must derive from the run seed
  // (util/test_seed.h, FastRand).
  Finder->addMatcher(
      cxxConstructExpr(
          hasType(hasUnqualifiedDesugaredType(recordType(hasDeclaration(
              namedDecl(hasAnyName("::std::mersenne_twister_engine",
                                   "::std::linear_congruential_engine",
                                   "::std::subtract_with_carry_engine")))))),
          argumentCountIs(0))
          .bind("unseeded"),
      this);
}

void WallclockDeterminismCheck::check(const MatchFinder::MatchResult &Result) {
  const Expr *E = Result.Nodes.getNodeAs<Expr>("clock");
  llvm::StringRef What = "wall-clock read";
  if (E == nullptr) {
    E = Result.Nodes.getNodeAs<Expr>("libc");
    What = "libc time/entropy call";
  }
  if (E == nullptr) {
    E = Result.Nodes.getNodeAs<Expr>("entropy");
    What = "std::random_device (OS entropy)";
  }
  if (E == nullptr) {
    E = Result.Nodes.getNodeAs<Expr>("unseeded");
    What = "default-seeded random engine";
  }
  if (E == nullptr) {
    return;
  }
  const SourceManager &SM = *Result.SourceManager;
  const SourceLocation Loc = E->getBeginLoc();
  // sim/ owns the boundary between real and virtual time.
  if (FileMatches(SM, Loc, "src/sim/")) {
    return;
  }
  if (HasJustifiedAllow(SM, Loc, kAllowTag)) {
    return;
  }
  diag(Loc,
       "%0 in engine code: behavior must be a pure function of the seed and "
       "virtual time (route through sim, derive from the run seed, or "
       "justify a real-time watchdog with "
       "'// drtmr-lint: allow(wallclock): <reason>')")
      << What;
}

}  // namespace clang::tidy::drtmr
