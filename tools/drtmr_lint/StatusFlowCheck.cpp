#include "StatusFlowCheck.h"

#include "DrtmrLintUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/ParentMapContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::drtmr {

namespace {

constexpr llvm::StringRef kAllowTag = "status-flow";

// Collects reads/writes of one variable inside a statement tree. A
// DeclRefExpr is a *write* only when it is exactly the LHS of an assignment;
// anything else (comparison, return, (void) cast, passing by reference)
// counts as examining the value.
void CollectUses(const Stmt *S, const VarDecl *Var, unsigned &Reads,
                 unsigned &Writes) {
  if (S == nullptr) {
    return;
  }
  if (const auto *BO = dyn_cast<BinaryOperator>(S)) {
    if (BO->isAssignmentOp()) {
      const Expr *LHS = BO->getLHS()->IgnoreParenImpCasts();
      if (const auto *DRE = dyn_cast<DeclRefExpr>(LHS)) {
        if (DRE->getDecl() == Var) {
          ++Writes;
          CollectUses(BO->getRHS(), Var, Reads, Writes);
          return;
        }
      }
    }
  }
  if (const auto *DRE = dyn_cast<DeclRefExpr>(S)) {
    if (DRE->getDecl() == Var) {
      ++Reads;
      return;
    }
  }
  for (const Stmt *Child : S->children()) {
    CollectUses(Child, Var, Reads, Writes);
  }
}

}  // namespace

void StatusFlowCheck::registerMatchers(MatchFinder *Finder) {
  const auto StatusType = hasType(hasCanonicalType(
      hasDeclaration(enumDecl(hasName("::drtmr::Status")))));

  // (1) Status on the left of a comma: evaluated, discarded, and outside
  // what compilers diagnose for [[nodiscard]].
  Finder->addMatcher(
      binaryOperator(hasOperatorName(","),
                     hasLHS(expr(ignoringParenImpCasts(
                         expr(StatusType, callExpr()).bind("comma")))))
          .bind("commaop"),
      this);

  // (2) A Status-typed ternary used as a statement.
  Finder->addMatcher(
      conditionalOperator(StatusType).bind("ternary"), this);

  // (3) A local Status that is written but never examined.
  Finder->addMatcher(
      varDecl(hasLocalStorage(), unless(parmVarDecl()), StatusType,
              hasInitializer(expr()),
              forFunction(functionDecl(hasBody(compoundStmt())).bind("fn")))
          .bind("var"),
      this);
}

void StatusFlowCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;
  ASTContext &Ctx = *Result.Context;

  if (const auto *Comma = Result.Nodes.getNodeAs<Expr>("comma")) {
    const SourceLocation Loc = Comma->getBeginLoc();
    if (!HasJustifiedAllow(SM, Loc, kAllowTag)) {
      diag(Loc, "Status discarded on the left of a comma expression; "
                "[[nodiscard]] cannot see it — handle it or cast to void "
                "with a reason");
    }
    return;
  }

  if (const auto *Tern = Result.Nodes.getNodeAs<ConditionalOperator>("ternary")) {
    // Only a ternary whose value is thrown away: climb through parens,
    // casts, and cleanups; flag iff the parent is a statement context.
    const Stmt *Node = Tern;
    while (true) {
      const auto Parents = Ctx.getParents(*Node);
      if (Parents.empty()) {
        return;
      }
      const Stmt *Parent = Parents[0].get<Stmt>();
      if (Parent == nullptr) {
        return;
      }
      if (isa<ParenExpr>(Parent) || isa<ExprWithCleanups>(Parent) ||
          isa<ImplicitCastExpr>(Parent) || isa<ConstantExpr>(Parent)) {
        Node = Parent;
        continue;
      }
      if (!isa<CompoundStmt>(Parent)) {
        return;  // the value is consumed
      }
      break;
    }
    const SourceLocation Loc = Tern->getBeginLoc();
    if (!HasJustifiedAllow(SM, Loc, kAllowTag)) {
      diag(Loc, "Status-valued ternary used as a statement discards both "
                "arms' results; [[nodiscard]] cannot see through ?:");
    }
    return;
  }

  const auto *Var = Result.Nodes.getNodeAs<VarDecl>("var");
  const auto *Fn = Result.Nodes.getNodeAs<FunctionDecl>("fn");
  if (Var == nullptr || Fn == nullptr) {
    return;
  }
  unsigned Reads = 0;
  unsigned Writes = 0;
  CollectUses(Fn->getBody(), Var, Reads, Writes);
  if (Reads > 0) {
    return;
  }
  const SourceLocation Loc = Var->getLocation();
  if (HasJustifiedAllow(SM, Loc, kAllowTag)) {
    return;
  }
  diag(Loc, "Status stored in %0 is never examined on any path; the error "
            "it carries is silently dropped")
      << Var;
}

}  // namespace clang::tidy::drtmr
