// drtmr-lock-raii: a manual lock() on a Spinlock / std::mutex must reach an
// unlock() (or hand ownership to an RAII guard, e.g.
// `std::unique_lock<Spinlock> g(mu, std::adopt_lock)`) on EVERY CFG path to
// the function's exit. An early return between lock and unlock leaks the
// lock; in this engine a leaked pump/stripe lock wedges a replication lane
// or the whole bus — failures the torture sweeps only catch if a fault
// window happens to drive the leaking path.
#ifndef DRTMR_LINT_LOCK_RAII_CHECK_H
#define DRTMR_LINT_LOCK_RAII_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::drtmr {

class LockRaiiCheck : public ClangTidyCheck {
public:
  LockRaiiCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::drtmr

#endif  // DRTMR_LINT_LOCK_RAII_CHECK_H
