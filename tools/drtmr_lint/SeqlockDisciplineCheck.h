// drtmr-seqlock-discipline: the record metadata words (lock / incarnation /
// seqnum at RecordLayout::kLockOff / kIncOff / kSeqOff) may only be touched
// through the sanctioned accessors in store/ (RecordLayout::Get*/Set*) or
// through the instrumented bus / NIC / HTM operations that the runtime
// protocol analyzer shadows. A raw memcpy or pointer dereference computed
// from those offsets is invisible to both the seqlock protocol and the
// analyzer — exactly the access the torn-read machinery (§4.3) cannot
// defend against.
#ifndef DRTMR_LINT_SEQLOCK_DISCIPLINE_CHECK_H
#define DRTMR_LINT_SEQLOCK_DISCIPLINE_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::drtmr {

class SeqlockDisciplineCheck : public ClangTidyCheck {
public:
  SeqlockDisciplineCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::drtmr

#endif  // DRTMR_LINT_SEQLOCK_DISCIPLINE_CHECK_H
