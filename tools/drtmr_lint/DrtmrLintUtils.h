// Shared helpers for the drtmr-* clang-tidy checks (DESIGN.md §15).
//
// The escape hatch: a finding is suppressed iff the flagged line (or the line
// directly above it) carries
//
//   // drtmr-lint: allow(<tag>): <justification>
//
// with a non-empty justification after the colon. An allow() without a reason
// does NOT suppress — the annotation is a reviewed, documented exemption, not
// a mute button.
#ifndef DRTMR_LINT_UTILS_H
#define DRTMR_LINT_UTILS_H

#include "clang/Basic/SourceLocation.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/StringRef.h"

namespace clang::tidy::drtmr {

// True iff `Loc`'s line or the preceding line has a justified allow(<Tag>).
bool HasJustifiedAllow(const SourceManager &SM, SourceLocation Loc,
                       llvm::StringRef Tag);

// True iff the file containing `Loc` has any path component sequence matching
// `Fragment` (e.g. "src/sim/" or "protocol_analyzer"). Used for the per-check
// sanctioned-directory exclusions.
bool FileMatches(const SourceManager &SM, SourceLocation Loc,
                 llvm::StringRef Fragment);

}  // namespace clang::tidy::drtmr

#endif  // DRTMR_LINT_UTILS_H
