// drtmr-registered-memory: engine code may only mutate simulated remote
// memory through context-charged MemoryBus calls (the ctx carries the cost
// model and the protocol analyzer's provenance). A mutating bus call with a
// nullptr ctx, or a raw() escape hatch, bypasses both — the write lands with
// no latency charge and no analyzer shadow, which is exactly the "unlocked
// write" class the runtime analyzer hunts. Confined to sim/ (the machinery),
// chk/ (the checkers themselves), and recovery's privileged writer.
#ifndef DRTMR_LINT_REGISTERED_MEMORY_CHECK_H
#define DRTMR_LINT_REGISTERED_MEMORY_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::drtmr {

class RegisteredMemoryCheck : public ClangTidyCheck {
public:
  RegisteredMemoryCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::drtmr

#endif  // DRTMR_LINT_REGISTERED_MEMORY_CHECK_H
