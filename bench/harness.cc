#include "bench/harness.h"

#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "src/baseline/calvin.h"
#include "src/baseline/drtm.h"
#include "src/chk/protocol_analyzer.h"
#include "src/baseline/silo.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"

namespace drtmr::bench {

using workload::DriverOptions;
using workload::DriverResult;
using workload::RunWorkload;

namespace {

struct TpccStack {
  explicit TpccStack(const TpccBenchConfig& cfg, uint32_t total_workers) {
    ccfg.num_nodes = cfg.machines * cfg.logical_per_machine;
    ccfg.workers_per_node = total_workers;
    ccfg.memory_bytes = cfg.memory_mb << 20;
    ccfg.log_bytes = cfg.log_mb << 20;
    ccfg.logical_per_machine = cfg.logical_per_machine;
    if (cfg.fused_seq_lock) {
      ccfg.atomicity = sim::AtomicityLevel::kGlob;
    }
    cluster = std::make_unique<cluster::Cluster>(ccfg);
    catalog = std::make_unique<store::Catalog>(cluster.get());
    pmap = std::make_unique<cluster::PartitionMap>(ccfg.num_nodes);
    coordinator = std::make_unique<cluster::Coordinator>();
    for (uint32_t i = 0; i < ccfg.num_nodes; ++i) {
      coordinator->Join(i, 0, ~0ull >> 2);
    }
    if (cfg.replication) {
      rep::RepConfig rcfg;
      rcfg.replicas = std::min<uint32_t>(3, ccfg.num_nodes);
      rcfg.group_commit_window = cfg.group_commit_window;
      replicator = std::make_unique<rep::PrimaryBackupReplicator>(cluster.get(), rcfg);
    }
    txn::TxnConfig tcfg;
    tcfg.replication = cfg.replication;
    tcfg.replicas = cfg.replication ? 3 : 1;
    tcfg.lock_remote_read_set = cfg.lock_remote_read_set;
    tcfg.message_passing_commit = cfg.message_passing_commit;
    tcfg.fused_seq_lock = cfg.fused_seq_lock;
    engine = std::make_unique<txn::TxnEngine>(cluster.get(), catalog.get(), tcfg,
                                              coordinator.get(), replicator.get());

    workload::TpccConfig tc;
    tc.warehouses_per_node = cfg.warehouses_per_node;
    tc.customers_per_district = cfg.customers_per_district;
    tc.items = cfg.items;
    tc.cross_warehouse_new_order_pct = cfg.cross_no_pct;
    tc.cross_warehouse_payment_pct = cfg.cross_pay_pct;
    tc.ptr_swap_local = cfg.ptr_swap_local_tables;
    tpcc = std::make_unique<workload::TpccWorkload>(engine.get(), pmap.get(), tc);
    tpcc->CreateTables();
    tpcc->Load(replicator.get());
    engine->StartServices();
  }

  ~TpccStack() { engine->StopServices(); }

  cluster::ClusterConfig ccfg;
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<store::Catalog> catalog;
  std::unique_ptr<cluster::PartitionMap> pmap;
  std::unique_ptr<cluster::Coordinator> coordinator;
  std::unique_ptr<rep::PrimaryBackupReplicator> replicator;
  std::unique_ptr<txn::TxnEngine> engine;
  std::unique_ptr<workload::TpccWorkload> tpcc;
};

DriverOptions MakeOptions(uint32_t threads, uint64_t txns, uint64_t warmup) {
  DriverOptions opt;
  opt.threads_per_node = threads;
  opt.txns_per_thread = txns;
  opt.warmup_per_thread = warmup;
  opt.max_txn_types = workload::kTpccTxnTypes;
  return opt;
}

void PrintEngineStats(const txn::TxnStats& st, const sim::HtmEngine::Stats& htm) {
  std::printf(
      "stats: commits=%llu aborts_lock=%llu aborts_validation=%llu user=%llu fallbacks=%llu "
      "htm_retries=%llu remote_reads=%llu local_reads=%llu htm[commits=%llu conflict=%llu "
      "capacity=%llu explicit=%llu io=%llu]\n",
      (unsigned long long)st.commits, (unsigned long long)st.aborts_lock,
      (unsigned long long)st.aborts_validation, (unsigned long long)st.aborts_user,
      (unsigned long long)st.fallbacks, (unsigned long long)st.htm_commit_retries,
      (unsigned long long)st.remote_reads, (unsigned long long)st.local_reads,
      (unsigned long long)htm.commits, (unsigned long long)htm.aborts_conflict,
      (unsigned long long)htm.aborts_capacity, (unsigned long long)htm.aborts_explicit,
      (unsigned long long)htm.aborts_io);
}

RunInfo g_run_info;

// Escapes `s` minimally for embedding in a JSON string literal.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

// Writes the self-describing bench JSON (DESIGN.md §12): schema_version, the
// run-config header, the merged metrics snapshot, and the slow-txn flight
// recorder. The gate (scripts/bench_gate.py) consumes exactly this shape.
bool WriteBenchJson(const std::string& path, const obs::Snapshot& snap,
                    const std::vector<std::pair<std::string, double>>& results,
                    const std::vector<std::pair<std::string, double>>& tolerances) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const RunInfo& run = g_run_info;
  std::fprintf(f,
               "{\n\"schema_version\": %u,\n\"run\": {\"bench\": \"%s\", \"workload\": "
               "\"%s\", \"profile\": \"%s\", \"machines\": %u, \"threads\": %u, "
               "\"logical_nodes\": %u, \"replication\": %s, \"seed\": %llu, \"git\": "
               "\"%s\", \"notes\": \"%s\"},\n\"results\": {",
               kBenchSchemaVersion, JsonEscape(run.bench).c_str(),
               JsonEscape(run.workload).c_str(), JsonEscape(run.profile).c_str(),
               run.machines, run.threads, run.logical_nodes,
               run.replication ? "true" : "false", (unsigned long long)run.seed,
               JsonEscape(GitDescribe()).c_str(), JsonEscape(run.notes).c_str());
  for (size_t i = 0; i < results.size(); ++i) {
    std::fprintf(f, "%s\"%s\": %.6f", i == 0 ? "" : ", ",
                 JsonEscape(results[i].first).c_str(), results[i].second);
  }
  std::fprintf(f, "},\n");
  if (!tolerances.empty()) {
    std::fprintf(f, "\"tolerances\": {");
    for (size_t i = 0; i < tolerances.size(); ++i) {
      std::fprintf(f, "%s\"%s\": %.6f", i == 0 ? "" : ", ",
                   JsonEscape(tolerances[i].first).c_str(), tolerances[i].second);
    }
    std::fprintf(f, "},\n");
  }
  std::fprintf(f, "\"metrics\": ");
  snap.WriteJson(f);
  std::fprintf(f, ",\n\"flight_recorder\": ");
  obs::FlightRecorder::Global().WriteJson(f);
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  return true;
}

DriverResult RunTpccDrtmR(const TpccBenchConfig& cfg) {
  TpccStack stack(cfg, cfg.threads);
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  std::vector<txn::Transaction*> by_slot(stack.ccfg.num_nodes * cfg.threads);
  for (uint32_t n = 0; n < stack.ccfg.num_nodes; ++n) {
    for (uint32_t w = 0; w < cfg.threads; ++w) {
      txns.push_back(std::make_unique<txn::Transaction>(stack.engine.get(),
                                                        stack.cluster->node(n)->context(w)));
      by_slot[n * cfg.threads + w] = txns.back().get();
    }
  }
  DriverOptions opt = MakeOptions(cfg.threads, cfg.txns_per_thread, cfg.warmup_per_thread);
  if (stack.replicator != nullptr) {
    rep::PrimaryBackupReplicator* rep = stack.replicator.get();
    opt.worker_done = [rep](sim::ThreadContext* ctx) { rep->FlushLog(ctx); };
  }
  DriverResult r = RunWorkload(stack.cluster.get(), opt,
                               [&](sim::ThreadContext* ctx, uint32_t n, uint32_t w,
                                   FastRand* rng) {
                                 return stack.tpcc->RunOne(ctx, by_slot[n * cfg.threads + w], rng);
                               });
  if (cfg.print_stats) {
    PrintEngineStats(stack.engine->stats(), stack.cluster->node(0)->htm()->stats());
  }
  return r;
}

DriverResult RunTpccDrTm(const TpccBenchConfig& cfg) {
  TpccStack stack(cfg, cfg.threads);
  baseline::DrTmConfig dcfg;
  baseline::DrTmEngine drtm(stack.engine.get(), dcfg);
  return RunWorkload(stack.cluster.get(), MakeOptions(cfg.threads, cfg.txns_per_thread,
                                                      cfg.warmup_per_thread),
                     [&](sim::ThreadContext* ctx, uint32_t, uint32_t, FastRand* rng) {
                       const uint64_t w = stack.tpcc->PickWarehouse(ctx, rng);
                       const uint32_t type = stack.tpcc->PickType(rng);
                       const FastRand snapshot = *rng;
                       while (true) {
                         if (drtm.Execute(ctx, [&](txn::TxnApi* api) {
                               FastRand body_rng = snapshot;
                               return stack.tpcc->RunType(type, ctx, api, &body_rng, w);
                             })) {
                           break;
                         }
                       }
                       rng->Next();
                       return type;
                     });
}

DriverResult RunTpccCalvin(const TpccBenchConfig& cfg) {
  TpccStack stack(cfg, cfg.threads);
  baseline::CalvinConfig ccfg;
  baseline::CalvinEngine calvin(stack.engine.get(), ccfg);
  std::vector<std::unique_ptr<baseline::CalvinTxn>> txns;
  std::vector<baseline::CalvinTxn*> by_slot(stack.ccfg.num_nodes * cfg.threads);
  for (uint32_t n = 0; n < stack.ccfg.num_nodes; ++n) {
    for (uint32_t w = 0; w < cfg.threads; ++w) {
      txns.push_back(std::make_unique<baseline::CalvinTxn>(&calvin,
                                                           stack.cluster->node(n)->context(w)));
      by_slot[n * cfg.threads + w] = txns.back().get();
    }
  }
  return RunWorkload(stack.cluster.get(), MakeOptions(cfg.threads, cfg.txns_per_thread,
                                                      cfg.warmup_per_thread),
                     [&](sim::ThreadContext* ctx, uint32_t n, uint32_t w, FastRand* rng) {
                       return stack.tpcc->RunOne(ctx, by_slot[n * cfg.threads + w], rng);
                     });
}

DriverResult RunTpccSilo(const TpccBenchConfig& config) {
  TpccBenchConfig cfg = config;
  cfg.machines = 1;
  cfg.logical_per_machine = 1;
  cfg.replication = false;
  TpccStack stack(cfg, cfg.threads);
  baseline::SiloEngine silo(stack.engine.get());
  std::vector<std::unique_ptr<baseline::SiloTxn>> txns;
  std::vector<baseline::SiloTxn*> by_slot(cfg.threads);
  for (uint32_t w = 0; w < cfg.threads; ++w) {
    txns.push_back(std::make_unique<baseline::SiloTxn>(&silo, stack.cluster->node(0)->context(w)));
    by_slot[w] = txns.back().get();
  }
  return RunWorkload(stack.cluster.get(), MakeOptions(cfg.threads, cfg.txns_per_thread,
                                                      cfg.warmup_per_thread),
                     [&](sim::ThreadContext* ctx, uint32_t, uint32_t w, FastRand* rng) {
                       return stack.tpcc->RunOne(ctx, by_slot[w], rng);
                     });
}

SmallBankStack::SmallBankStack(const SmallBankBenchConfig& cfg) {
  ccfg.num_nodes = cfg.machines;
  ccfg.workers_per_node = cfg.threads;
  ccfg.memory_bytes = cfg.memory_mb << 20;
  ccfg.log_bytes = cfg.log_mb << 20;
  if (cfg.fused_seq_lock) {
    ccfg.atomicity = sim::AtomicityLevel::kGlob;
  }
  cluster = std::make_unique<cluster::Cluster>(ccfg);
  catalog = std::make_unique<store::Catalog>(cluster.get());
  pmap = std::make_unique<cluster::PartitionMap>(cfg.machines);
  if (cfg.pre_load) {
    cfg.pre_load(pmap.get());
  }
  coordinator = std::make_unique<cluster::Coordinator>();
  for (uint32_t i = 0; i < cfg.machines; ++i) {
    coordinator->Join(i, 0, ~0ull >> 2);
  }
  if (cfg.replication) {
    rep::RepConfig rcfg;
    rcfg.replicas = std::min<uint32_t>(3, cfg.machines);
    rcfg.group_commit_window = cfg.group_commit_window;
    replicator = std::make_unique<rep::PrimaryBackupReplicator>(cluster.get(), rcfg);
  }
  txn::TxnConfig tcfg;
  tcfg.replication = cfg.replication;
  tcfg.replicas = cfg.replication ? 3 : 1;
  tcfg.fused_seq_lock = cfg.fused_seq_lock;
  engine = std::make_unique<txn::TxnEngine>(cluster.get(), catalog.get(), tcfg,
                                            coordinator.get(), replicator.get());

  workload::SmallBankConfig sc;
  sc.accounts_per_node = cfg.accounts_per_node;
  sc.hot_accounts = cfg.hot_accounts;
  sc.cross_machine_pct = cfg.cross_pct;
  bank = std::make_unique<workload::SmallBankWorkload>(engine.get(), pmap.get(), sc);
  bank->CreateTables();
  bank->Load(replicator.get());
  engine->StartServices();

  by_slot.resize(cfg.machines * cfg.threads);
  for (uint32_t n = 0; n < cfg.machines; ++n) {
    for (uint32_t w = 0; w < cfg.threads; ++w) {
      txns.push_back(std::make_unique<txn::Transaction>(engine.get(),
                                                        cluster->node(n)->context(w)));
      by_slot[n * cfg.threads + w] = txns.back().get();
    }
  }
}

SmallBankStack::~SmallBankStack() { engine->StopServices(); }

DriverResult SmallBankStack::Run(const SmallBankBenchConfig& cfg) {
  DriverOptions opt;
  opt.nodes = cfg.load_nodes;
  opt.threads_per_node = cfg.threads;
  opt.txns_per_thread = cfg.txns_per_thread;
  opt.warmup_per_thread = cfg.warmup_per_thread;
  opt.max_txn_types = workload::kSmallBankTxnTypes;
  if (replicator != nullptr) {
    rep::PrimaryBackupReplicator* rep = replicator.get();
    opt.worker_done = [rep](sim::ThreadContext* ctx) { rep->FlushLog(ctx); };
  }
  return RunWorkload(cluster.get(), opt,
                     [&](sim::ThreadContext* ctx, uint32_t n, uint32_t w, FastRand* rng) {
                       return bank->RunOne(ctx, by_slot[n * cfg.threads + w], rng);
                     });
}

DriverResult RunSmallBankDrtmR(const SmallBankBenchConfig& cfg) {
  SmallBankStack stack(cfg);
  DriverResult r = stack.Run(cfg);
  if (cfg.print_stats) {
    PrintEngineStats(stack.engine->stats(), stack.cluster->node(0)->htm()->stats());
  }
  return r;
}

void SetRunInfo(const RunInfo& info) { g_run_info = info; }

RunInfo& MutableRunInfo() { return g_run_info; }

std::string GitDescribe() {
  if (const char* env = std::getenv("DRTMR_GIT_DESCRIBE")) {
    return env;
  }
  std::string out = "unknown";
#if !defined(_WIN32)
  if (std::FILE* p = ::popen("git describe --always --dirty 2>/dev/null", "r")) {
    char buf[128];
    if (std::fgets(buf, sizeof(buf), p) != nullptr) {
      std::string s(buf);
      while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) {
        s.pop_back();
      }
      if (!s.empty()) {
        out = s;
      }
    }
    ::pclose(p);
  }
#endif
  return out;
}

ObsOptions ParseObsArgs(int argc, char** argv) {
  ObsOptions opt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return std::strncmp(a, prefix, n) == 0 ? a + n : nullptr;
    };
    if (const char* v = value_of("--metrics-json=")) {
      opt.metrics_json = v;
    } else if (const char* v = value_of("--trace-json=")) {
      opt.trace_json = v;
    } else if (const char* v = value_of("--trace-events=")) {
      opt.trace_events_per_thread = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--slow-txns=")) {
      opt.slow_txns = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (std::strcmp(a, "--print-stats") == 0) {
      opt.print_stats = true;
    } else if (std::strcmp(a, "--analyze") == 0) {
      opt.analyze = true;
    } else if (const char* v = value_of("--violations-json=")) {
      opt.violations_json = v;
      opt.analyze = true;
    }
  }
  if (opt.enabled()) {
    obs::Registry::Global().Enable(true);
    if (!opt.trace_json.empty()) {
      obs::Registry::Global().EnableTrace(opt.trace_events_per_thread);
    }
    obs::FlightRecorder::Global().Enable(opt.slow_txns);
  }
  if (opt.analyze) {
    chk::ProtocolAnalyzer::Global().Reset();
    chk::ProtocolAnalyzer::Global().Enable(true);
  }
  return opt;
}

void EmitObs(const ObsOptions& opt) {
  if (!opt.enabled()) {
    return;
  }
  obs::Registry& reg = obs::Registry::Global();
  const obs::Snapshot snap = reg.Collect();
  if (opt.print_stats) {
    std::printf("\n--- observability summary ---\n");
    std::printf("commits=%llu aborts[lock=%llu validation=%llu user=%llu] fallbacks=%llu "
                "htm_retries=%llu rep[entries=%llu bytes=%llu]\n",
                (unsigned long long)snap.counter(obs::Counter::kTxnCommit),
                (unsigned long long)snap.counter(obs::Counter::kTxnAbortLock),
                (unsigned long long)snap.counter(obs::Counter::kTxnAbortValidation),
                (unsigned long long)snap.counter(obs::Counter::kTxnAbortUser),
                (unsigned long long)snap.counter(obs::Counter::kTxnFallback),
                (unsigned long long)snap.counter(obs::Counter::kHtmCommitRetry),
                (unsigned long long)snap.counter(obs::Counter::kRepLogEntries),
                (unsigned long long)snap.counter(obs::Counter::kRepLogBytes));
    std::printf("%-12s %12s %10s %10s %10s %10s\n", "phase", "count", "mean_us", "p50_us",
                "p90_us", "p99_us");
    for (size_t i = 0; i < obs::kNumPhases; ++i) {
      const auto p = static_cast<obs::Phase>(i);
      const Histogram& h = snap.phase(p);
      if (h.empty()) {
        continue;
      }
      std::printf("%-12s %12llu %10.2f %10.2f %10.2f %10.2f\n", obs::PhaseName(p),
                  (unsigned long long)h.count(), h.Mean() / 1000.0, h.Percentile(50) / 1000.0,
                  h.Percentile(90) / 1000.0, h.Percentile(99) / 1000.0);
    }
    if (!snap.htm_aborts.empty()) {
      std::printf("htm aborts:");
      for (const auto& k : snap.htm_aborts) {
        std::printf(" %s/%s=%llu", obs::HtmAbortCodeName(static_cast<uint32_t>(k.key >> 16)),
                    obs::HtmSiteName(static_cast<obs::HtmSite>(k.key & 0xffff)),
                    (unsigned long long)k.ops);
      }
      std::printf("\n");
    }
    if (!snap.fabric.empty()) {
      // Aggregate the per-pair matrix per verb for the console; the full
      // matrix lives in the JSON output.
      uint64_t ops[static_cast<size_t>(obs::Verb::kCount)] = {};
      uint64_t bytes[static_cast<size_t>(obs::Verb::kCount)] = {};
      for (const auto& k : snap.fabric) {
        const auto verb = static_cast<size_t>((k.key >> 32) & 0xff);
        if (verb < static_cast<size_t>(obs::Verb::kCount)) {
          ops[verb] += k.ops;
          bytes[verb] += k.bytes;
        }
      }
      std::printf("fabric:");
      for (size_t v = 0; v < static_cast<size_t>(obs::Verb::kCount); ++v) {
        if (ops[v] != 0) {
          std::printf(" %s=%llu/%lluB", obs::VerbName(static_cast<obs::Verb>(v)),
                      (unsigned long long)ops[v], (unsigned long long)bytes[v]);
        }
      }
      std::printf("\n");
    }
  }
  if (!opt.metrics_json.empty()) {
    if (WriteBenchJson(opt.metrics_json, snap)) {
      std::printf("metrics json: %s\n", opt.metrics_json.c_str());
    } else {
      std::fprintf(stderr, "failed to write metrics json: %s\n", opt.metrics_json.c_str());
    }
  }
  if (!opt.trace_json.empty()) {
    if (reg.WriteChromeTrace(opt.trace_json)) {
      std::printf("trace json: %s (load at chrome://tracing)\n", opt.trace_json.c_str());
    } else {
      std::fprintf(stderr, "failed to write trace json: %s\n", opt.trace_json.c_str());
    }
  }
  if (opt.analyze) {
    chk::ProtocolAnalyzer& analyzer = chk::ProtocolAnalyzer::Global();
    analyzer.Enable(false);
    std::printf("protocol analyzer: %llu violation(s)",
                (unsigned long long)analyzer.total_violations());
    for (size_t i = 0; i < chk::kNumViolationClasses; ++i) {
      const auto c = static_cast<chk::ViolationClass>(i);
      std::printf(" %s=%llu", chk::ViolationClassName(c),
                  (unsigned long long)analyzer.violations(c));
    }
    std::printf("\n");
    if (!opt.violations_json.empty()) {
      if (analyzer.WriteViolationsJson(opt.violations_json)) {
        std::printf("violations json: %s\n", opt.violations_json.c_str());
      } else {
        std::fprintf(stderr, "failed to write violations json: %s\n",
                     opt.violations_json.c_str());
      }
    }
  }
}

int RunMain(int argc, char** argv, const BenchInfo& info,
            const std::function<int(int argc, char** argv)>& body) {
  RunInfo run;
  run.bench = info.name;
  run.workload = info.workload;
  SetRunInfo(run);
  const ObsOptions opt = ParseObsArgs(argc, argv);
  const int rc = body(argc, argv);
  EmitObs(opt);
  return rc;
}

void PrintHeader(const char* title, const char* columns) {
  std::printf("\n=== %s ===\n%s\n", title, columns);
}

void PrintTpccRow(const char* label, uint32_t x, const DriverResult& r) {
  std::printf("%-12s %4u  total %10s tps  new-order %10s tps  p50 %7.1fus  p99 %7.1fus\n", label,
              x, workload::FormatTps(r.ThroughputTps()).c_str(),
              workload::FormatTps(r.ThroughputTps(workload::kNewOrder)).c_str(),
              r.latency.Percentile(50) / 1000.0, r.latency.Percentile(99) / 1000.0);
}

void PrintSmallBankRow(const char* label, uint32_t x, const DriverResult& r) {
  std::printf("%-12s %4u  total %10s tps  p50 %7.1fus  p99 %7.1fus\n", label, x,
              workload::FormatTps(r.ThroughputTps()).c_str(),
              r.latency.Percentile(50) / 1000.0, r.latency.Percentile(99) / 1000.0);
}

}  // namespace drtmr::bench
