#include "bench/suite.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench/harness.h"
#include "src/chk/torture.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/rep/recovery.h"

namespace drtmr::bench {

namespace {

using Results = std::vector<std::pair<std::string, double>>;

void AddLatencyResults(const workload::DriverResult& r, Results* out) {
  out->emplace_back("total_tps", r.ThroughputTps());
  // Interpolated percentiles: the bucket-upper-bound Percentile() jumps a
  // whole log-bucket width when the tail straddles a boundary, which reads as
  // a fake 30% regression at the gate.
  out->emplace_back("p50_ns", r.latency.PercentileInterpolated(50));
  out->emplace_back("p99_ns", r.latency.PercentileInterpolated(99));
}

void RunSmallBankEntry(bool smoke, bool rep, bool no_glob, Results* out) {
  SmallBankBenchConfig cfg;
  cfg.fused_seq_lock = !no_glob;
  if (smoke) {
    // 4 machines so with 3-way replication no node backs up every other —
    // full backup fan-in (3 nodes, replicas=3) couples the tail latency to
    // host scheduling hard enough to flake the 5% gate on small hosts.
    cfg.machines = 4;
    cfg.threads = 2;
    cfg.accounts_per_node = 5000;
    cfg.txns_per_thread = 4000;
    cfg.warmup_per_thread = 200;
    cfg.memory_mb = 24;
    cfg.log_mb = 4;
  } else {
    cfg.machines = 6;
    cfg.threads = 16;  // the paper's peak point (Fig. 14/16 right edge)
    cfg.txns_per_thread = 3000;
  }
  cfg.replication = rep;
  RunInfo& info = MutableRunInfo();
  info.machines = cfg.machines;
  info.threads = cfg.threads;
  info.logical_nodes = cfg.machines;
  info.replication = rep;
  AddLatencyResults(RunSmallBankDrtmR(cfg), out);
}

void RunTpccEntry(bool smoke, bool rep, bool no_glob, Results* out) {
  TpccBenchConfig cfg;
  cfg.fused_seq_lock = !no_glob;
  if (smoke) {
    // Still CI-fast, but enough transactions that the log-bucketed p99 and
    // the throughput settle well inside the gate's 5% tolerance.
    cfg.machines = 4;
    cfg.threads = 4;
    cfg.txns_per_thread = 5000;
    cfg.warmup_per_thread = 250;
    cfg.customers_per_district = 100;
    cfg.items = 2000;
    cfg.memory_mb = 32;
    cfg.log_mb = 4;
  } else {
    cfg.txns_per_thread = 2000;  // 6 machines x 8 threads (Fig. 10 right edge)
  }
  cfg.replication = rep;
  RunInfo& info = MutableRunInfo();
  info.machines = cfg.machines;
  info.threads = cfg.threads;
  info.logical_nodes = cfg.machines * cfg.logical_per_machine;
  info.replication = rep;
  const workload::DriverResult r = RunTpccDrtmR(cfg);
  out->emplace_back("neworder_tps", r.ThroughputTps(workload::kNewOrder));
  AddLatencyResults(r, out);
}

// Fig. 20's recovery cost, but on the virtual clock so it is gateable: run a
// replicated SmallBank window to populate the backup logs, fail-stop one
// machine, and charge RecoverAfterFailure to a survivor's tool context.
void RunRecoveryEntry(bool smoke, Results* out) {
  SmallBankBenchConfig cfg;
  cfg.replication = true;
  if (smoke) {
    cfg.machines = 3;
    cfg.threads = 2;
    cfg.accounts_per_node = 2000;
    cfg.txns_per_thread = 100;
    cfg.warmup_per_thread = 10;
    cfg.memory_mb = 24;
    cfg.log_mb = 4;
  } else {
    cfg.machines = 6;
    cfg.threads = 4;
    cfg.accounts_per_node = 8000;
    cfg.txns_per_thread = 200;
    cfg.warmup_per_thread = 20;
  }
  RunInfo& info = MutableRunInfo();
  info.machines = cfg.machines;
  info.threads = cfg.threads;
  info.logical_nodes = cfg.machines;
  info.replication = true;

  SmallBankStack stack(cfg);
  (void)stack.Run(cfg);  // replicated traffic so the logs have entries to drain
  const uint32_t dead = cfg.machines - 1;
  const uint32_t host = 0;
  stack.cluster->Kill(dead);
  stack.coordinator->Remove(dead);
  rep::RecoveryManager rm(stack.engine.get(), stack.replicator.get(),
                          stack.coordinator.get());
  sim::ThreadContext* ctx = stack.cluster->node(host)->tool_context();
  const uint64_t t0 = ctx->clock.now_ns();
  const rep::RecoveryReport report = rm.RecoverAfterFailure(ctx, dead, host, stack.pmap.get());
  out->emplace_back("recovery_ns", static_cast<double>(ctx->clock.now_ns() - t0));
  out->emplace_back("records_rehosted", static_cast<double>(report.records_rehosted));
  out->emplace_back("log_entries_drained", static_cast<double>(report.log_entries_drained));
  out->emplace_back("primaries_patched", static_cast<double>(report.primaries_patched));
}

// Torture wall time: the only wall-clock entry; _ms keys are never gated, so
// this tracks checker throughput without flaking CI. torture_ok = 1 is
// required for the suite to pass.
bool RunTortureEntry(bool smoke, Results* out) {
  using Clock = std::chrono::steady_clock;
  chk::TortureOptions topt;
  topt.shape.nodes = smoke ? 3 : 4;
  topt.shape.workers = 2;
  topt.shape.replicas = 3;
  topt.shape.keys_per_node = 8;
  topt.shape.txns_per_worker = smoke ? 60 : 200;
  RunInfo& info = MutableRunInfo();
  info.machines = topt.shape.nodes;
  info.threads = topt.shape.workers;
  info.logical_nodes = topt.shape.nodes;
  info.replication = true;

  const chk::TorturePlanKind kinds[] = {chk::TorturePlanKind::kDelay,
                                        chk::TorturePlanKind::kKill};
  const auto t0 = Clock::now();
  uint64_t committed = 0;
  uint64_t runs = 0;
  bool all_ok = true;
  for (chk::TorturePlanKind kind : kinds) {
    for (uint64_t seed = 1; seed <= (smoke ? 1u : 2u); ++seed) {
      topt.seed = seed;
      topt.plan_kind = kind;
      const chk::TortureResult r = chk::RunTorture(topt);
      committed += r.committed;
      runs++;
      if (!r.ok) {
        std::fprintf(stderr, "[suite] torture FAILED (%s seed=%llu): %s\n",
                     chk::TorturePlanKindName(kind), (unsigned long long)seed,
                     r.Summary().c_str());
        all_ok = false;
      }
    }
  }
  const double wall_ms =
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0).count() /
      1000.0;
  out->emplace_back("torture_wall_ms", wall_ms);
  out->emplace_back("torture_runs", static_cast<double>(runs));
  out->emplace_back("torture_committed", static_cast<double>(committed));
  out->emplace_back("torture_ok", all_ok ? 1.0 : 0.0);
  return all_ok;
}

// Per-key median across repetitions of one entry. A single rep can be
// perturbed by host scheduling (replication ack waits couple virtual time to
// real interleavings); the median of three discards the outlier run, which is
// what keeps the committed baselines reproducible inside the gate tolerance.
Results MedianResults(const std::vector<Results>& reps) {
  Results out;
  for (size_t i = 0; i < reps[0].size(); ++i) {
    std::vector<double> vals;
    vals.reserve(reps.size());
    for (const Results& r : reps) {
      vals.push_back(r[i].second);
    }
    std::sort(vals.begin(), vals.end());
    out.emplace_back(reps[0][i].first, vals[vals.size() / 2]);
  }
  return out;
}

}  // namespace

std::vector<std::string> SuiteEntryNames() {
  return {"smallbank_peak", "smallbank_rep", "tpcc_neworder", "tpcc_rep",
          "recovery",       "torture"};
}

std::vector<SuiteEntryResult> RunSuite(const SuiteOptions& opt) {
  std::vector<SuiteEntryResult> out;
  for (const std::string& name : SuiteEntryNames()) {
    if (!opt.only.empty() &&
        std::find(opt.only.begin(), opt.only.end(), name) == opt.only.end()) {
      continue;
    }
    SuiteEntryResult er;
    er.name = name;
    er.file = opt.out_dir + "/BENCH_" + name + (opt.smoke ? ".smoke" : "") +
              (opt.no_glob ? ".noglob" : "") + ".json";

    // Fresh, self-contained telemetry per entry.
    obs::Registry::Global().Reset();
    obs::Registry::Global().Enable(true);
    obs::FlightRecorder::Global().Reset();
    obs::FlightRecorder::Global().Enable(opt.slow_txns);
    RunInfo info;
    info.bench = name;
    info.profile = opt.smoke ? "smoke" : "full";
    SetRunInfo(info);

    std::printf("[suite] %s (%s) ...\n", name.c_str(), info.profile.c_str());
    std::fflush(stdout);
    bool run_ok = true;
    if (name == "torture") {
      // Wall-clock entry: one rep; its gated key is torture_ok only.
      MutableRunInfo().workload = "transfer";
      run_ok = RunTortureEntry(opt.smoke, &er.results);
    } else {
      constexpr int kReps = 3;
      std::vector<Results> reps;
      for (int rep = 0; rep < kReps; ++rep) {
        Results one;
        if (name == "smallbank_peak") {
          MutableRunInfo().workload = "smallbank";
          RunSmallBankEntry(opt.smoke, /*rep=*/false, opt.no_glob, &one);
        } else if (name == "smallbank_rep") {
          MutableRunInfo().workload = "smallbank";
          RunSmallBankEntry(opt.smoke, /*rep=*/true, opt.no_glob, &one);
        } else if (name == "tpcc_neworder") {
          MutableRunInfo().workload = "tpcc";
          RunTpccEntry(opt.smoke, /*rep=*/false, opt.no_glob, &one);
        } else if (name == "tpcc_rep") {
          MutableRunInfo().workload = "tpcc";
          RunTpccEntry(opt.smoke, /*rep=*/true, opt.no_glob, &one);
        } else if (name == "recovery") {
          MutableRunInfo().workload = "smallbank";
          RunRecoveryEntry(opt.smoke, &one);
        }
        reps.push_back(std::move(one));
      }
      er.results = MedianResults(reps);
    }

    // Derived Table 6 metric for the replicated entries: the fractional
    // throughput gap to the unreplicated peer entry from this same
    // invocation (0.45 = replication costs 45% of peak). Informational key
    // (no _tps/_ns suffix) — the gate holds the line through total_tps; this
    // makes the overhead the paper tabulates directly readable from the
    // committed json. Skipped when --only leaves the peer out.
    if (name == "smallbank_rep" || name == "tpcc_rep") {
      const std::string peer = name == "smallbank_rep" ? "smallbank_peak" : "tpcc_neworder";
      double peak_tps = 0.0;
      for (const SuiteEntryResult& prev : out) {
        if (prev.name != peer) {
          continue;
        }
        for (const auto& kv : prev.results) {
          if (kv.first == "total_tps") {
            peak_tps = kv.second;
          }
        }
      }
      double rep_tps = 0.0;
      for (const auto& kv : er.results) {
        if (kv.first == "total_tps") {
          rep_tps = kv.second;
        }
      }
      if (peak_tps > 0.0 && rep_tps > 0.0) {
        er.results.emplace_back("rep_gap", 1.0 - rep_tps / peak_tps);
      }
    }

    // Per-key gate-tolerance overrides, written into the baseline so --regen
    // keeps them. smallbank_rep's p99 is bimodal (~3.4µs vs ~4.2µs across
    // runs, a ~30% jump): the replicated 1-read/1-write mix puts almost
    // exactly 1% of transactions into the NIC-queued replication tail, so the
    // p99 rank sits on the cliff between the fast mode and the queued mode
    // and flips between them run to run. Median-of-3 doesn't settle a 40/60
    // coin; a wider per-key tolerance is the honest gate.
    std::vector<std::pair<std::string, double>> tolerances;
    if (name == "smallbank_rep") {
      tolerances.emplace_back("p99_ns", 0.40);
      // Throughput at the full-profile shape (6x16, replicated) couples to
      // host scheduling through backup ack waits: measured run-to-run spread
      // is ~7% around the mode with occasional faster-mode outliers, while
      // p50/p99 stay within 1%. (The smoke shape sits near 2%.)
      tolerances.emplace_back("total_tps", 0.15);
    }

    const obs::Snapshot snap = obs::Registry::Global().Collect();
    const bool wrote = WriteBenchJson(er.file, snap, er.results, tolerances);
    if (!wrote) {
      std::fprintf(stderr, "[suite] failed to write %s\n", er.file.c_str());
    }
    er.ok = run_ok && wrote;
    std::printf("[suite] %-16s %s ", name.c_str(), er.ok ? "ok  " : "FAIL");
    for (const auto& kv : er.results) {
      std::printf(" %s=%.1f", kv.first.c_str(), kv.second);
    }
    std::printf("  -> %s\n", er.file.c_str());
    std::fflush(stdout);
    out.push_back(std::move(er));
  }
  obs::Registry::Global().Enable(false);
  obs::FlightRecorder::Global().Enable(0);
  return out;
}

}  // namespace drtmr::bench
