#include "bench/suite.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/harness.h"
#include "src/chk/checker.h"
#include "src/chk/history.h"
#include "src/chk/torture.h"
#include "src/cluster/membership.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/rep/migration.h"
#include "src/rep/recovery.h"

namespace drtmr::bench {

namespace {

using Results = std::vector<std::pair<std::string, double>>;

void AddLatencyResults(const workload::DriverResult& r, Results* out) {
  out->emplace_back("total_tps", r.ThroughputTps());
  // Interpolated percentiles: the bucket-upper-bound Percentile() jumps a
  // whole log-bucket width when the tail straddles a boundary, which reads as
  // a fake 30% regression at the gate.
  out->emplace_back("p50_ns", r.latency.PercentileInterpolated(50));
  out->emplace_back("p99_ns", r.latency.PercentileInterpolated(99));
}

void RunSmallBankEntry(bool smoke, bool rep, bool no_glob, Results* out) {
  SmallBankBenchConfig cfg;
  cfg.fused_seq_lock = !no_glob;
  if (smoke) {
    // 4 machines so with 3-way replication no node backs up every other —
    // full backup fan-in (3 nodes, replicas=3) couples the tail latency to
    // host scheduling hard enough to flake the 5% gate on small hosts.
    cfg.machines = 4;
    cfg.threads = 2;
    cfg.accounts_per_node = 5000;
    cfg.txns_per_thread = 4000;
    cfg.warmup_per_thread = 200;
    cfg.memory_mb = 24;
    cfg.log_mb = 4;
  } else {
    cfg.machines = 6;
    cfg.threads = 16;  // the paper's peak point (Fig. 14/16 right edge)
    cfg.txns_per_thread = 3000;
  }
  cfg.replication = rep;
  RunInfo& info = MutableRunInfo();
  info.machines = cfg.machines;
  info.threads = cfg.threads;
  info.logical_nodes = cfg.machines;
  info.replication = rep;
  AddLatencyResults(RunSmallBankDrtmR(cfg), out);
}

void RunTpccEntry(bool smoke, bool rep, bool no_glob, Results* out) {
  TpccBenchConfig cfg;
  cfg.fused_seq_lock = !no_glob;
  if (smoke) {
    // Still CI-fast, but enough transactions that the log-bucketed p99 and
    // the throughput settle well inside the gate's 5% tolerance.
    cfg.machines = 4;
    cfg.threads = 4;
    cfg.txns_per_thread = 5000;
    cfg.warmup_per_thread = 250;
    cfg.customers_per_district = 100;
    cfg.items = 2000;
    cfg.memory_mb = 32;
    cfg.log_mb = 4;
  } else {
    cfg.txns_per_thread = 2000;  // 6 machines x 8 threads (Fig. 10 right edge)
  }
  cfg.replication = rep;
  RunInfo& info = MutableRunInfo();
  info.machines = cfg.machines;
  info.threads = cfg.threads;
  info.logical_nodes = cfg.machines * cfg.logical_per_machine;
  info.replication = rep;
  const workload::DriverResult r = RunTpccDrtmR(cfg);
  out->emplace_back("neworder_tps", r.ThroughputTps(workload::kNewOrder));
  AddLatencyResults(r, out);
}

// Fig. 20's recovery cost, but on the virtual clock so it is gateable: run a
// replicated SmallBank window to populate the backup logs, fail-stop one
// machine, and charge RecoverAfterFailure to a survivor's tool context.
void RunRecoveryEntry(bool smoke, Results* out) {
  SmallBankBenchConfig cfg;
  cfg.replication = true;
  if (smoke) {
    cfg.machines = 3;
    cfg.threads = 2;
    cfg.accounts_per_node = 2000;
    cfg.txns_per_thread = 100;
    cfg.warmup_per_thread = 10;
    cfg.memory_mb = 24;
    cfg.log_mb = 4;
  } else {
    cfg.machines = 6;
    cfg.threads = 4;
    cfg.accounts_per_node = 8000;
    cfg.txns_per_thread = 200;
    cfg.warmup_per_thread = 20;
  }
  RunInfo& info = MutableRunInfo();
  info.machines = cfg.machines;
  info.threads = cfg.threads;
  info.logical_nodes = cfg.machines;
  info.replication = true;

  SmallBankStack stack(cfg);
  (void)stack.Run(cfg);  // replicated traffic so the logs have entries to drain
  const uint32_t dead = cfg.machines - 1;
  const uint32_t host = 0;
  stack.cluster->Kill(dead);
  stack.coordinator->Remove(dead);
  rep::RecoveryManager rm(stack.engine.get(), stack.replicator.get(),
                          stack.coordinator.get());
  sim::ThreadContext* ctx = stack.cluster->node(host)->tool_context();
  const uint64_t t0 = ctx->clock.now_ns();
  const rep::RecoveryReport report = rm.RecoverAfterFailure(ctx, dead, host, stack.pmap.get());
  out->emplace_back("recovery_ns", static_cast<double>(ctx->clock.now_ns() - t0));
  out->emplace_back("records_rehosted", static_cast<double>(report.records_rehosted));
  out->emplace_back("log_entries_drained", static_cast<double>(report.log_entries_drained));
  out->emplace_back("primaries_patched", static_cast<double>(report.primaries_patched));
}

// Torture wall time: the only wall-clock entry; _ms keys are never gated, so
// this tracks checker throughput without flaking CI. torture_ok = 1 is
// required for the suite to pass.
bool RunTortureEntry(bool smoke, Results* out) {
  using Clock = std::chrono::steady_clock;
  chk::TortureOptions topt;
  topt.shape.nodes = smoke ? 3 : 4;
  topt.shape.workers = 2;
  topt.shape.replicas = 3;
  topt.shape.keys_per_node = 8;
  topt.shape.txns_per_worker = smoke ? 60 : 200;
  RunInfo& info = MutableRunInfo();
  info.machines = topt.shape.nodes;
  info.threads = topt.shape.workers;
  info.logical_nodes = topt.shape.nodes;
  info.replication = true;

  const chk::TorturePlanKind kinds[] = {chk::TorturePlanKind::kDelay,
                                        chk::TorturePlanKind::kKill};
  const auto t0 = Clock::now();
  uint64_t committed = 0;
  uint64_t runs = 0;
  bool all_ok = true;
  for (chk::TorturePlanKind kind : kinds) {
    for (uint64_t seed = 1; seed <= (smoke ? 1u : 2u); ++seed) {
      topt.seed = seed;
      topt.plan_kind = kind;
      const chk::TortureResult r = chk::RunTorture(topt);
      committed += r.committed;
      runs++;
      if (!r.ok) {
        std::fprintf(stderr, "[suite] torture FAILED (%s seed=%llu): %s\n",
                     chk::TorturePlanKindName(kind), (unsigned long long)seed,
                     r.Summary().c_str());
        all_ok = false;
      }
    }
  }
  const double wall_ms =
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0).count() /
      1000.0;
  out->emplace_back("torture_wall_ms", wall_ms);
  out->emplace_back("torture_runs", static_cast<double>(runs));
  out->emplace_back("torture_committed", static_cast<double>(committed));
  out->emplace_back("torture_ok", all_ok ? 1.0 : 0.0);
  return all_ok;
}

// Elastic reconfiguration (DESIGN.md §14): SmallBank on a 6-machine cluster
// whose partitions are initially folded onto nodes 0-2 (the 3-node
// placement). Phase A measures steady-state throughput at that placement;
// phase B runs the identical load while a control thread live-migrates
// partitions 3-5 out to nodes 3-5 (scale-out to 6) and then back (scale-in
// to 3), both legs planned by MigrationManager::PlanRebalance. The whole run
// executes under the history recorder and the version-exact serializability
// checker. Gated keys:
//   elastic_ok    all six migrations commit, the placement round-trips, the
//                 balance-conservation invariant holds, and the recorded
//                 history is serializable;
//   dip_pct       phase-B throughput dip vs phase A, gated *absolutely*
//                 (< 10%, the zero-downtime bar) rather than vs baseline;
//   migration_ms  summed virtual duration of the six migrations
//                 (lower-is-better vs baseline).
bool RunElasticEntry(bool smoke, Results* out) {
  SmallBankBenchConfig cfg;
  cfg.machines = 6;
  cfg.replication = true;
  cfg.cross_pct = 20;  // meaningful remote traffic on the moving shards
  if (smoke) {
    cfg.threads = 2;
    cfg.accounts_per_node = 2000;
    cfg.txns_per_thread = 3000;
    cfg.warmup_per_thread = 150;
    cfg.memory_mb = 24;
    cfg.log_mb = 4;
  } else {
    cfg.threads = 8;
    cfg.accounts_per_node = 8000;
    cfg.txns_per_thread = 4000;
    cfg.warmup_per_thread = 200;
  }
  // Load generators run on all six machines in BOTH phases (workers on a
  // node that owns no partition run all-remote until a migration hands the
  // node a shard), so capacity is constant and dip_pct isolates the cost of
  // the transition itself rather than the remoteness of a placement.
  cfg.pre_load = [](cluster::PartitionMap* pmap) {
    for (uint32_t p = 3; p < 6; ++p) {
      pmap->Rehost(p, p % 3, /*epoch=*/1);
    }
  };
  RunInfo& info = MutableRunInfo();
  info.machines = cfg.machines;
  info.threads = cfg.threads;
  info.logical_nodes = cfg.machines;
  info.replication = true;

  SmallBankStack stack(cfg);

  // Epoch fencing on, but no membership threads: the armed service stamps
  // the current epoch once and the migration manager advances it itself —
  // exactly the frozen-coordinator-driver regime the protocol guarantees
  // progress under.
  rep::RecoveryManager recovery(stack.engine.get(), stack.replicator.get(),
                                stack.coordinator.get());
  cluster::MembershipConfig mcfg;
  mcfg.lease_ns = 1'000'000'000;  // commit admission never lease-bounces
  cluster::MembershipService membership(stack.cluster.get(), stack.coordinator.get(),
                                        stack.pmap.get(), mcfg);
  membership.set_recovery_fn([&](uint32_t dead, uint32_t host) {
    recovery.RecoverAfterFailure(stack.cluster->node(host)->tool_context(), dead, host,
                                 /*pmap=*/nullptr);
  });
  stack.engine->set_membership(&membership);
  membership.Arm();

  rep::MigrationSpec spec;
  spec.tables = {stack.bank->checking_table(), stack.bank->savings_table()};
  spec.partition_of = [](uint64_t key) { return static_cast<uint32_t>(key >> 40); };
  rep::MigrationManager migrator(stack.engine.get(), stack.replicator.get(),
                                 stack.coordinator.get(), stack.pmap.get(), spec);

  chk::HistoryRecorder::Global().Reset();
  chk::HistoryRecorder::Global().Enable(true);

  // Phase A: steady state at the folded placement.
  const workload::DriverResult base = stack.Run(cfg);

  // Phase B: the same load, with the 3->6 scale-out and 6->3 scale-in
  // landing mid-run. The control thread waits for the load to get underway
  // so every cutover happens under full commit traffic.
  workload::DriverOptions dopt;
  dopt.nodes = 0;  // all machines
  dopt.threads_per_node = cfg.threads;
  dopt.txns_per_thread = cfg.txns_per_thread;
  dopt.warmup_per_thread = cfg.warmup_per_thread;
  dopt.max_txn_types = workload::kSmallBankTxnTypes;
  rep::PrimaryBackupReplicator* repl = stack.replicator.get();
  dopt.worker_done = [repl](sim::ThreadContext* ctx) { repl->FlushLog(ctx); };

  std::atomic<uint64_t> executed{0};
  const uint64_t total_txns = static_cast<uint64_t>(cfg.machines) * cfg.threads *
                              (cfg.txns_per_thread + cfg.warmup_per_thread);
  std::vector<rep::MigrationReport> reports;
  std::thread control([&] {
    while (executed.load(std::memory_order_relaxed) < total_txns / 8) {
      std::this_thread::yield();
    }
    for (const uint32_t active : {6u, 3u}) {
      for (const auto& [part, dst] :
           rep::MigrationManager::PlanRebalance(*stack.pmap, active)) {
        reports.push_back(migrator.MigratePartition(part, dst));
      }
    }
  });
  const workload::DriverResult elastic = workload::RunWorkload(
      stack.cluster.get(), dopt,
      [&](sim::ThreadContext* ctx, uint32_t n, uint32_t w, FastRand* rng) {
        executed.fetch_add(1, std::memory_order_relaxed);
        return stack.bank->RunOne(ctx, stack.by_slot[n * cfg.threads + w], rng);
      });
  control.join();

  chk::HistoryRecorder::Global().Enable(false);
  const std::vector<chk::TxnRec> history = chk::HistoryRecorder::Global().Collect();
  chk::CheckOptions copts;
  copts.version_step = 2;  // replicated commit seq step
  const chk::CheckResult check = chk::CheckSerializability(history, copts);
  chk::HistoryRecorder::Global().Reset();

  bool ok = check.ok;
  if (!check.ok) {
    std::fprintf(stderr, "[suite] elastic: history NOT serializable: %s\n",
                 check.Summary().c_str());
  }
  uint64_t migration_ns = 0;
  for (const rep::MigrationReport& r : reports) {
    if (r.status != Status::kOk) {
      std::fprintf(stderr, "[suite] elastic: migration %u -> %u failed (status %d)\n",
                   r.partition, r.destination, static_cast<int>(r.status));
      ok = false;
    }
    migration_ns += r.duration_ns;
  }
  if (reports.size() != 6) {
    std::fprintf(stderr, "[suite] elastic: planner emitted %zu moves, expected 6\n",
                 reports.size());
    ok = false;
  }
  for (uint32_t p = 3; p < 6; ++p) {
    if (stack.pmap->node_of(p) != p % 3) {
      std::fprintf(stderr, "[suite] elastic: partition %u did not round-trip (owner %u)\n",
                   p, stack.pmap->node_of(p));
      ok = false;
    }
  }
  const int64_t want = stack.bank->initial_total() + stack.bank->external_delta();
  const int64_t have = stack.bank->TotalBalance();
  if (have != want) {
    std::fprintf(stderr,
                 "[suite] elastic: conservation violated: total %lld want %lld\n",
                 static_cast<long long>(have), static_cast<long long>(want));
    ok = false;
  }
  const double base_tps = base.ThroughputTps();
  const double elastic_tps = elastic.ThroughputTps();
  if (base_tps <= 0.0 || elastic_tps <= 0.0) {
    ok = false;
  }
  const double dip_pct =
      base_tps > 0.0 ? std::max(0.0, (base_tps - elastic_tps) / base_tps * 100.0) : 100.0;
  out->emplace_back("base_tps", base_tps);
  out->emplace_back("elastic_tps", elastic_tps);
  out->emplace_back("dip_pct", dip_pct);
  out->emplace_back("migration_ms", static_cast<double>(migration_ns) / 1e6);
  out->emplace_back("txns_checked", static_cast<double>(check.num_txns));
  out->emplace_back("elastic_ok", ok ? 1.0 : 0.0);

  // The membership service and the migration manager die before the stack
  // does; detach them from the engine first.
  membership.Stop();
  stack.engine->set_membership(nullptr);
  return ok;
}

// Per-key median across repetitions of one entry. A single rep can be
// perturbed by host scheduling (replication ack waits couple virtual time to
// real interleavings); the median of three discards the outlier run, which is
// what keeps the committed baselines reproducible inside the gate tolerance.
Results MedianResults(const std::vector<Results>& reps) {
  Results out;
  for (size_t i = 0; i < reps[0].size(); ++i) {
    std::vector<double> vals;
    vals.reserve(reps.size());
    for (const Results& r : reps) {
      vals.push_back(r[i].second);
    }
    std::sort(vals.begin(), vals.end());
    out.emplace_back(reps[0][i].first, vals[vals.size() / 2]);
  }
  return out;
}

}  // namespace

std::vector<std::string> SuiteEntryNames() {
  return {"smallbank_peak", "smallbank_rep", "tpcc_neworder", "tpcc_rep",
          "recovery",       "torture",       "elastic"};
}

std::vector<SuiteEntryResult> RunSuite(const SuiteOptions& opt) {
  std::vector<SuiteEntryResult> out;
  for (const std::string& name : SuiteEntryNames()) {
    if (!opt.only.empty() &&
        std::find(opt.only.begin(), opt.only.end(), name) == opt.only.end()) {
      continue;
    }
    SuiteEntryResult er;
    er.name = name;
    er.file = opt.out_dir + "/BENCH_" + name + (opt.smoke ? ".smoke" : "") +
              (opt.no_glob ? ".noglob" : "") + ".json";

    // Fresh, self-contained telemetry per entry.
    obs::Registry::Global().Reset();
    obs::Registry::Global().Enable(true);
    obs::FlightRecorder::Global().Reset();
    obs::FlightRecorder::Global().Enable(opt.slow_txns);
    RunInfo info;
    info.bench = name;
    info.profile = opt.smoke ? "smoke" : "full";
    SetRunInfo(info);

    std::printf("[suite] %s (%s) ...\n", name.c_str(), info.profile.c_str());
    std::fflush(stdout);
    bool run_ok = true;
    if (name == "torture") {
      // Wall-clock entry: one rep; its gated key is torture_ok only.
      MutableRunInfo().workload = "transfer";
      run_ok = RunTortureEntry(opt.smoke, &er.results);
    } else if (name == "elastic") {
      // One rep: the gate holds the line through elastic_ok and the absolute
      // dip_pct bar; the throughput keys carry wide tolerances below.
      MutableRunInfo().workload = "smallbank";
      run_ok = RunElasticEntry(opt.smoke, &er.results);
    } else {
      constexpr int kReps = 3;
      std::vector<Results> reps;
      for (int rep = 0; rep < kReps; ++rep) {
        Results one;
        if (name == "smallbank_peak") {
          MutableRunInfo().workload = "smallbank";
          RunSmallBankEntry(opt.smoke, /*rep=*/false, opt.no_glob, &one);
        } else if (name == "smallbank_rep") {
          MutableRunInfo().workload = "smallbank";
          RunSmallBankEntry(opt.smoke, /*rep=*/true, opt.no_glob, &one);
        } else if (name == "tpcc_neworder") {
          MutableRunInfo().workload = "tpcc";
          RunTpccEntry(opt.smoke, /*rep=*/false, opt.no_glob, &one);
        } else if (name == "tpcc_rep") {
          MutableRunInfo().workload = "tpcc";
          RunTpccEntry(opt.smoke, /*rep=*/true, opt.no_glob, &one);
        } else if (name == "recovery") {
          MutableRunInfo().workload = "smallbank";
          RunRecoveryEntry(opt.smoke, &one);
        }
        reps.push_back(std::move(one));
      }
      er.results = MedianResults(reps);
    }

    // Derived Table 6 metric for the replicated entries: the fractional
    // throughput gap to the unreplicated peer entry from this same
    // invocation (0.45 = replication costs 45% of peak). Informational key
    // (no _tps/_ns suffix) — the gate holds the line through total_tps; this
    // makes the overhead the paper tabulates directly readable from the
    // committed json. Skipped when --only leaves the peer out.
    if (name == "smallbank_rep" || name == "tpcc_rep") {
      const std::string peer = name == "smallbank_rep" ? "smallbank_peak" : "tpcc_neworder";
      double peak_tps = 0.0;
      for (const SuiteEntryResult& prev : out) {
        if (prev.name != peer) {
          continue;
        }
        for (const auto& kv : prev.results) {
          if (kv.first == "total_tps") {
            peak_tps = kv.second;
          }
        }
      }
      double rep_tps = 0.0;
      for (const auto& kv : er.results) {
        if (kv.first == "total_tps") {
          rep_tps = kv.second;
        }
      }
      if (peak_tps > 0.0 && rep_tps > 0.0) {
        er.results.emplace_back("rep_gap", 1.0 - rep_tps / peak_tps);
      }
    }

    // Per-key gate-tolerance overrides, written into the baseline so --regen
    // keeps them. smallbank_rep's p99 is bimodal (~3.4µs vs ~4.2µs across
    // runs, a ~30% jump): the replicated 1-read/1-write mix puts almost
    // exactly 1% of transactions into the NIC-queued replication tail, so the
    // p99 rank sits on the cliff between the fast mode and the queued mode
    // and flips between them run to run. Median-of-3 doesn't settle a 40/60
    // coin; a wider per-key tolerance is the honest gate.
    std::vector<std::pair<std::string, double>> tolerances;
    if (name == "smallbank_rep") {
      tolerances.emplace_back("p99_ns", 0.40);
      // Throughput at the full-profile shape (6x16, replicated) couples to
      // host scheduling through backup ack waits: measured run-to-run spread
      // is ~7% around the mode with occasional faster-mode outliers, while
      // p50/p99 stay within 1%. (The smoke shape sits near 2%.)
      tolerances.emplace_back("total_tps", 0.15);
    }
    if (name == "elastic") {
      // Single-rep throughput with a concurrent migration control thread:
      // run-to-run spread is wide, and the entry's real gates are elastic_ok
      // (correctness) and the absolute dip_pct bar. The _tps keys only catch
      // catastrophic collapses; migration_ms tracks the pump's virtual cost.
      tolerances.emplace_back("base_tps", 0.50);
      tolerances.emplace_back("elastic_tps", 0.50);
      tolerances.emplace_back("migration_ms", 1.00);
    }

    const obs::Snapshot snap = obs::Registry::Global().Collect();
    const bool wrote = WriteBenchJson(er.file, snap, er.results, tolerances);
    if (!wrote) {
      std::fprintf(stderr, "[suite] failed to write %s\n", er.file.c_str());
    }
    er.ok = run_ok && wrote;
    std::printf("[suite] %-16s %s ", name.c_str(), er.ok ? "ok  " : "FAIL");
    for (const auto& kv : er.results) {
      std::printf(" %s=%.1f", kv.first.c_str(), kv.second);
    }
    std::printf("  -> %s\n", er.file.c_str());
    std::fflush(stdout);
    out.push_back(std::move(er));
  }
  obs::Registry::Global().Enable(false);
  obs::FlightRecorder::Global().Enable(0);
  return out;
}

}  // namespace drtmr::bench
