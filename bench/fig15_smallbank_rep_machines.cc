// Fig. 15: SmallBank + 3-way replication vs machines (8 threads). Paper:
// scales with machines but the replication WRITEs dominate these tiny
// transactions (1 read + 1 write), so absolute throughput is far below
// Fig. 13.
#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace drtmr::bench;
  return RunMain(argc, argv, {"fig15_smallbank_rep_machines", "smallbank"}, [](int, char**) {
    PrintHeader("Fig.15  SmallBank (3-way replication) vs machines (8 threads)",
                "cross%      machines   throughput");
    for (uint32_t cross : {1u, 5u, 10u}) {
      for (uint32_t m = 3; m <= 6; ++m) {  // 3-way replication needs >= 3 machines
        SmallBankBenchConfig cfg;
        cfg.machines = m;
        cfg.threads = 8;
        cfg.cross_pct = cross;
        cfg.replication = true;
        cfg.txns_per_thread = 400;
        char label[16];
        std::snprintf(label, sizeof(label), "%u%%", cross);
        PrintSmallBankRow(label, m, RunSmallBankDrtmR(cfg));
      }
    }
    return 0;
  });
}
