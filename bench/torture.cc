// Torture sweep driver: runs the fault-injection harness (src/chk/torture.h)
// over seeds × fault-plan families × cluster shapes, and shrinks any failing
// plan to a minimal rule set before reporting it.
//
//   torture [--seeds=N] [--start-seed=S] [--plans=delay,kill,...]
//           [--shapes=3x2x3,4x2x3] [--txns=N] [--keys=N] [--no-shrink]
//           [--no-oracle] [--analyze] [--violations-json=PATH]
//
// Shapes are nodes x workers-per-node x replicas. Every failure line carries
// the (seed, plan, shape) triple that reproduces it:
//   torture --seeds=1 --start-seed=<seed> --plans=<plan> --shapes=<shape>
//
// --no-oracle hands failure handling to the membership layer
// (src/cluster/membership.h): the harness injects the faults but never tells
// anyone — detection, epoch fencing, re-hosting, and rejoin must all happen
// automatically before the quiescence oracles run. Requires replicas >= 2.
//
// --migrate (implies --no-oracle) additionally drives a live shard migration
// mid-run on every seed (src/rep/migration.h): a seed-derived partition moves
// to a seed-derived destination while the workers keep committing — and on
// odd seeds moves back — so faults land mid-flight and the quiescence oracles
// judge whatever placement the commit-or-rollback machinery produced.
//
// --analyze runs every seed under the protocol conformance analyzer
// (src/chk/protocol_analyzer.h); any typed protocol violation fails the run.
// --violations-json=PATH (implies --analyze) writes the first failing run's
// violation list as JSON (an empty list if the sweep is clean).
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/chk/protocol_analyzer.h"
#include "src/chk/torture.h"

namespace drtmr::chk {
namespace {

struct Shape {
  uint32_t nodes;
  uint32_t workers;
  uint32_t replicas;
};

bool ParseShape(const std::string& s, Shape* out) {
  return std::sscanf(s.c_str(), "%ux%ux%u", &out->nodes, &out->workers, &out->replicas) == 3;
}

bool ParsePlan(const std::string& s, TorturePlanKind* out) {
  for (uint32_t k = 0; k < static_cast<uint32_t>(TorturePlanKind::kNumKinds); ++k) {
    if (s == TorturePlanKindName(static_cast<TorturePlanKind>(k))) {
      *out = static_cast<TorturePlanKind>(k);
      return true;
    }
  }
  return false;
}

std::vector<std::string> SplitCommas(const char* s) {
  std::vector<std::string> out;
  std::string cur;
  for (; *s != '\0'; ++s) {
    if (*s == ',') {
      if (!cur.empty()) {
        out.push_back(cur);
      }
      cur.clear();
    } else {
      cur.push_back(*s);
    }
  }
  if (!cur.empty()) {
    out.push_back(cur);
  }
  return out;
}

// Greedily removes rules while the run keeps failing; returns a minimal plan
// (every remaining rule is necessary for this failure at this seed).
sim::FaultPlan ShrinkFailingPlan(TortureOptions opt, sim::FaultPlan plan) {
  bool shrunk = true;
  while (shrunk && plan.num_rules() > 0) {
    shrunk = false;
    for (size_t i = 0; i < plan.num_rules(); ++i) {
      sim::FaultPlan candidate = plan.WithoutRule(i);
      opt.plan_override = &candidate;
      if (!RunTorture(opt).ok) {
        plan = candidate;
        shrunk = true;
        break;
      }
    }
  }
  return plan;
}

int Main(int argc, char** argv) {
  uint64_t seeds = 64;
  uint64_t start_seed = 1;
  uint32_t txns = 120;
  uint32_t keys = 8;
  uint32_t window = 1;      // --window=8 sweeps with group commit open mid-kill
  double zipf_theta = 0.0;  // --zipf=0.9 for hot-key soak runs
  bool shrink = true;
  bool no_oracle = false;
  bool migrate = false;
  bool analyze = false;
  std::string violations_json;
  std::vector<TorturePlanKind> plans = {TorturePlanKind::kClean,    TorturePlanKind::kDelay,
                                        TorturePlanKind::kHtmAbort, TorturePlanKind::kFreeze,
                                        TorturePlanKind::kPartition, TorturePlanKind::kKill};
  std::vector<Shape> shapes = {{3, 2, 3}, {4, 2, 3}};

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--seeds=", 8) == 0) {
      seeds = std::strtoull(a + 8, nullptr, 0);
    } else if (std::strncmp(a, "--start-seed=", 13) == 0) {
      start_seed = std::strtoull(a + 13, nullptr, 0);
    } else if (std::strncmp(a, "--txns=", 7) == 0) {
      txns = static_cast<uint32_t>(std::strtoul(a + 7, nullptr, 0));
    } else if (std::strncmp(a, "--keys=", 7) == 0) {
      keys = static_cast<uint32_t>(std::strtoul(a + 7, nullptr, 0));
    } else if (std::strncmp(a, "--window=", 9) == 0) {
      window = static_cast<uint32_t>(std::strtoul(a + 9, nullptr, 0));
    } else if (std::strncmp(a, "--zipf=", 7) == 0) {
      zipf_theta = std::strtod(a + 7, nullptr);
    } else if (std::strcmp(a, "--no-shrink") == 0) {
      shrink = false;
    } else if (std::strcmp(a, "--no-oracle") == 0) {
      no_oracle = true;
    } else if (std::strcmp(a, "--migrate") == 0) {
      migrate = true;
      no_oracle = true;  // cutover runs on the epoch-fence substrate
    } else if (std::strcmp(a, "--analyze") == 0) {
      analyze = true;
    } else if (std::strncmp(a, "--violations-json=", 18) == 0) {
      violations_json = a + 18;
      analyze = true;
    } else if (std::strncmp(a, "--plans=", 8) == 0) {
      plans.clear();
      for (const std::string& name : SplitCommas(a + 8)) {
        TorturePlanKind kind;
        if (!ParsePlan(name, &kind)) {
          std::fprintf(stderr, "unknown plan '%s'\n", name.c_str());
          return 2;
        }
        plans.push_back(kind);
      }
    } else if (std::strncmp(a, "--shapes=", 9) == 0) {
      shapes.clear();
      for (const std::string& spec : SplitCommas(a + 9)) {
        Shape shape;
        if (!ParseShape(spec, &shape)) {
          std::fprintf(stderr, "bad shape '%s' (want NxWxR)\n", spec.c_str());
          return 2;
        }
        shapes.push_back(shape);
      }
    } else {
      std::fprintf(stderr,
                   "usage: torture [--seeds=N] [--start-seed=S] [--plans=a,b] "
                   "[--shapes=3x2x3] [--txns=N] [--keys=N] [--window=N] [--zipf=THETA] "
                   "[--no-shrink] [--no-oracle] [--migrate] [--analyze] "
                   "[--violations-json=PATH]\n");
      return 2;
    }
  }

  uint64_t runs = 0;
  uint64_t failures = 0;
  uint64_t violations = 0;
  bool violations_written = false;
  for (const Shape& shape : shapes) {
    for (const TorturePlanKind kind : plans) {
      if ((kind == TorturePlanKind::kKill || no_oracle) && shape.replicas < 2) {
        std::printf("shape %ux%ux%u plan %-9s SKIP (needs replication)\n", shape.nodes,
                    shape.workers, shape.replicas, TorturePlanKindName(kind));
        continue;
      }
      uint64_t pass = 0;
      uint64_t committed = 0;
      for (uint64_t s = 0; s < seeds; ++s) {
        TortureOptions opt;
        opt.shape.nodes = shape.nodes;
        opt.shape.workers = shape.workers;
        opt.shape.replicas = shape.replicas;
        opt.shape.keys_per_node = keys;
        opt.shape.txns_per_worker = txns;
        opt.shape.zipf_theta = zipf_theta;
        opt.shape.group_commit_window = window;
        opt.seed = start_seed + s;
        opt.plan_kind = kind;
        opt.no_oracle = no_oracle;
        opt.migrate = migrate;
        opt.analyze = analyze;
        const TortureResult r = RunTorture(opt);
        ++runs;
        committed += r.committed;
        violations += r.violations;
        if (r.violations != 0 && !violations_json.empty() && !violations_written) {
          // Capture the first failing run before the next run's Reset wipes it.
          violations_written = ProtocolAnalyzer::Global().WriteViolationsJson(violations_json);
        }
        if (r.ok) {
          ++pass;
          continue;
        }
        ++failures;
        std::printf("FAIL: seed=%" PRIu64 " plan=%s shape=%ux%ux%u\n%s\n", opt.seed,
                    TorturePlanKindName(kind), shape.nodes, shape.workers, shape.replicas,
                    r.Summary().c_str());
        sim::FaultPlan plan = MakeTorturePlan(kind, opt.seed, shape.nodes);
        std::printf("  plan:\n%s", plan.Describe().c_str());
        if (shrink && plan.num_rules() > 1) {
          const sim::FaultPlan minimal = ShrinkFailingPlan(opt, plan);
          std::printf("  minimal failing plan (%zu of %zu rules):\n%s",
                      minimal.num_rules(), plan.num_rules(), minimal.Describe().c_str());
        }
      }
      std::printf("shape %ux%ux%u plan %-9s %3" PRIu64 "/%" PRIu64
                  " seeds ok, %" PRIu64 " txns committed\n",
                  shape.nodes, shape.workers, shape.replicas, TorturePlanKindName(kind), pass,
                  seeds, committed);
      std::fflush(stdout);
    }
  }
  if (analyze) {
    std::printf("torture: analyzer flagged %" PRIu64 " protocol violation(s)\n", violations);
    if (!violations_json.empty() && !violations_written) {
      // Clean sweep: still leave an (empty) report so callers can rely on it.
      violations_written = ProtocolAnalyzer::Global().WriteViolationsJson(violations_json);
    }
    if (violations_written) {
      std::printf("violations json: %s\n", violations_json.c_str());
    }
  }
  std::printf("torture: %" PRIu64 " runs, %" PRIu64 " failure(s)\n", runs, failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace drtmr::chk

int main(int argc, char** argv) { return drtmr::chk::Main(argc, argv); }
