// Shared harness for the paper-reproduction benches: builds a fresh simulated
// cluster per data point, loads the workload, runs the virtual-time driver,
// and returns the aggregate result. One Run* function per (workload, system).
#ifndef DRTMR_BENCH_HARNESS_H_
#define DRTMR_BENCH_HARNESS_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "src/workload/driver.h"
#include "src/workload/smallbank.h"
#include "src/workload/tpcc.h"

namespace drtmr::bench {

struct TpccBenchConfig {
  uint32_t machines = 6;
  uint32_t threads = 8;
  uint32_t warehouses_per_node = 1;
  uint32_t customers_per_district = 300;  // trimmed (shape-preserving) scale
  uint32_t items = 20000;
  uint32_t cross_no_pct = 1;   // cross-warehouse probability per new-order item
  uint32_t cross_pay_pct = 15;
  bool replication = false;    // DrTM+R=3 when true (3-way)
  uint32_t logical_per_machine = 1;  // Fig. 12
  uint64_t txns_per_thread = 300;
  uint64_t warmup_per_thread = 30;
  size_t memory_mb = 48;
  size_t log_mb = 8;
  // Ablation switches (DESIGN.md §5); defaults are the paper's protocol.
  bool lock_remote_read_set = true;
  bool ptr_swap_local_tables = false;
  bool message_passing_commit = false;
  bool fused_seq_lock = false;  // §4.4 GLOB-atomicity variant
  // Diagnostics: print engine statistics (aborts, fallbacks) after the run.
  bool print_stats = false;
};

struct SmallBankBenchConfig {
  uint32_t machines = 6;
  uint32_t threads = 8;
  uint32_t cross_pct = 1;  // distributed probability for SP/AMG
  bool replication = false;
  uint64_t accounts_per_node = 20000;
  uint64_t hot_accounts = 800;
  uint64_t txns_per_thread = 500;
  uint64_t warmup_per_thread = 50;
  size_t memory_mb = 48;
  size_t log_mb = 8;
  // Diagnostics: print engine statistics (aborts, fallbacks) after the run.
  bool print_stats = false;
};

// Observability plumbing shared by every bench binary (DESIGN.md
// "Observability"). ParseObsArgs recognizes:
//   --metrics-json=<path>   write a merged metrics snapshot as JSON
//   --trace-json=<path>     write txn-lifecycle events as a Chrome
//                           trace_event array (load at chrome://tracing)
//   --trace-events=<n>      per-thread trace ring capacity (default 16384)
//   --print-stats           print the structured metrics summary to stdout
//   --analyze               run under the protocol conformance analyzer
//                           (src/chk/protocol_analyzer.h); violations are
//                           counted per class and printed after the run
//   --violations-json=<path> write the analyzer's violation list as JSON
//                           (implies --analyze)
// and enables the metrics registry iff any of them is present, so a plain run
// pays nothing. Unrecognized arguments are left alone for the bench's own
// parsing. EmitObs, called once after the runs, writes the requested files
// and summary.
struct ObsOptions {
  std::string metrics_json;
  std::string trace_json;
  uint32_t trace_events_per_thread = 1u << 14;
  bool print_stats = false;
  bool analyze = false;
  std::string violations_json;

  bool enabled() const {
    return print_stats || !metrics_json.empty() || !trace_json.empty() || analyze;
  }
};

ObsOptions ParseObsArgs(int argc, char** argv);
void EmitObs(const ObsOptions& opt);

// DrTM+R (optionally with 3-way replication).
workload::DriverResult RunTpccDrtmR(const TpccBenchConfig& config);
workload::DriverResult RunSmallBankDrtmR(const SmallBankBenchConfig& config);

// Baselines (TPC-C only; the paper's comparisons are TPC-C).
workload::DriverResult RunTpccDrTm(const TpccBenchConfig& config);
workload::DriverResult RunTpccCalvin(const TpccBenchConfig& config);
workload::DriverResult RunTpccSilo(const TpccBenchConfig& config);  // machines forced to 1

// Row formatting for the reproduction tables.
void PrintHeader(const char* title, const char* columns);
void PrintTpccRow(const char* label, uint32_t x, const workload::DriverResult& r);

}  // namespace drtmr::bench

#endif  // DRTMR_BENCH_HARNESS_H_
