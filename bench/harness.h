// Shared harness for the paper-reproduction benches: builds a fresh simulated
// cluster per data point, loads the workload, runs the virtual-time driver,
// and returns the aggregate result. One Run* function per (workload, system).
#ifndef DRTMR_BENCH_HARNESS_H_
#define DRTMR_BENCH_HARNESS_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "src/cluster/coordinator.h"
#include "src/obs/metrics.h"
#include "src/rep/primary_backup.h"
#include "src/txn/transaction.h"
#include "src/workload/driver.h"
#include "src/workload/smallbank.h"
#include "src/workload/tpcc.h"

namespace drtmr::bench {

struct TpccBenchConfig {
  uint32_t machines = 6;
  uint32_t threads = 8;
  uint32_t warehouses_per_node = 1;
  uint32_t customers_per_district = 300;  // trimmed (shape-preserving) scale
  uint32_t items = 20000;
  uint32_t cross_no_pct = 1;   // cross-warehouse probability per new-order item
  uint32_t cross_pay_pct = 15;
  bool replication = false;    // DrTM+R=3 when true (3-way)
  uint32_t logical_per_machine = 1;  // Fig. 12
  uint64_t txns_per_thread = 300;
  uint64_t warmup_per_thread = 30;
  size_t memory_mb = 48;
  size_t log_mb = 8;
  // Ablation switches (DESIGN.md §5); defaults are the paper's protocol.
  bool lock_remote_read_set = true;
  bool ptr_swap_local_tables = false;
  bool message_passing_commit = false;
  // §4.4 GLOB-atomicity fused lock+validate. Promoted to the bench default
  // (+24% at 50% distribution in the ablation); the library-level
  // TxnConfig default stays ConnectX-3 two-verb locking. false = the
  // pre-promotion commit path (CI gates both).
  bool fused_seq_lock = true;
  // Replication group-commit window (rep::RepConfig::group_commit_window):
  // decisions per worker lane between durability fences. 1 = fence per txn.
  uint32_t group_commit_window = 8;
  // Diagnostics: print engine statistics (aborts, fallbacks) after the run.
  bool print_stats = false;
};

struct SmallBankBenchConfig {
  uint32_t machines = 6;
  uint32_t threads = 8;
  uint32_t cross_pct = 1;  // distributed probability for SP/AMG
  bool replication = false;
  uint64_t accounts_per_node = 20000;
  uint64_t hot_accounts = 800;
  uint64_t txns_per_thread = 500;
  uint64_t warmup_per_thread = 50;
  size_t memory_mb = 48;
  size_t log_mb = 8;
  // §4.4 GLOB fused lock+validate, promoted to the bench default (see
  // TpccBenchConfig::fused_seq_lock).
  bool fused_seq_lock = true;
  // Replication group-commit window; 1 = fence per txn.
  uint32_t group_commit_window = 8;
  // Diagnostics: print engine statistics (aborts, fallbacks) after the run.
  bool print_stats = false;
  // Elasticity hooks (the suite's "elastic" entry). load_nodes restricts the
  // driver's load threads to the first N nodes (0 = all machines) so a
  // 6-machine cluster can run a 3-node placement without starving
  // PickLocalPartition. pre_load runs after the partition map is created and
  // before the workload loads, so it can re-shape the initial placement
  // (e.g. fold partitions 3-5 onto nodes 0-2) and the loader seeds records
  // at the re-shaped homes.
  uint32_t load_nodes = 0;
  std::function<void(cluster::PartitionMap*)> pre_load;
};

// Self-description header stamped into every --metrics-json file (DESIGN.md
// §12): what ran, at which shape, from which checkout — so a committed
// BENCH_*.json is comparable by the regression gate without out-of-band
// context. RunMain fills bench/workload; benches and the suite may overwrite
// the shape fields before EmitObs runs.
struct RunInfo {
  std::string bench;     // binary or suite-entry name
  std::string workload;  // tpcc | smallbank | transfer | mixed
  std::string profile;   // full | smoke (empty for ad-hoc runs)
  uint32_t machines = 0;
  uint32_t threads = 0;
  uint32_t logical_nodes = 0;
  bool replication = false;
  uint64_t seed = 0;
  std::string notes;
};

// Process-wide run info consumed by EmitObs. SetRunInfo replaces it wholesale.
void SetRunInfo(const RunInfo& info);
RunInfo& MutableRunInfo();

// `git describe --always --dirty` of the working tree, or "unknown" when git
// (or the repo) is unavailable. Override with DRTMR_GIT_DESCRIBE in the
// environment (CI stamps the exact ref this way).
std::string GitDescribe();

// Observability plumbing shared by every bench binary (DESIGN.md
// "Observability"). ParseObsArgs recognizes:
//   --metrics-json=<path>   write a merged metrics snapshot as JSON
//                           (schema_version + run header + metrics + the
//                           slow-txn flight recorder; DESIGN.md §12)
//   --trace-json=<path>     write txn-lifecycle events as a Chrome
//                           trace_event array (load at chrome://tracing)
//   --trace-events=<n>      per-thread trace ring capacity (default 16384)
//   --slow-txns=<k>         flight-recorder depth: keep the k slowest
//                           transactions with per-phase breakdown and abort
//                           trail (default 8; 0 disables)
//   --print-stats           print the structured metrics summary to stdout
//   --analyze               run under the protocol conformance analyzer
//                           (src/chk/protocol_analyzer.h); violations are
//                           counted per class and printed after the run
//   --violations-json=<path> write the analyzer's violation list as JSON
//                           (implies --analyze)
// and enables the metrics registry iff any of them is present, so a plain run
// pays nothing. Unrecognized arguments are left alone for the bench's own
// parsing. EmitObs, called once after the runs, writes the requested files
// and summary.
struct ObsOptions {
  std::string metrics_json;
  std::string trace_json;
  uint32_t trace_events_per_thread = 1u << 14;
  uint32_t slow_txns = 8;
  bool print_stats = false;
  bool analyze = false;
  std::string violations_json;

  bool enabled() const {
    return print_stats || !metrics_json.empty() || !trace_json.empty() || analyze;
  }
};

ObsOptions ParseObsArgs(int argc, char** argv);
void EmitObs(const ObsOptions& opt);

// Version of the bench/metrics JSON envelope written by WriteBenchJson; bump
// on any shape change so the gate refuses to compare across schemas.
inline constexpr uint32_t kBenchSchemaVersion = 2;

// Writes the full self-describing bench JSON envelope (run header + headline
// results + metrics snapshot + flight recorder) to `path`. Used by EmitObs
// for --metrics-json= and by the suite for each BENCH_<name>.json. `results`
// holds the gated scalars; by convention keys ending in `_tps` are
// higher-is-better and keys ending in `_ns` are lower-is-better — anything
// else is informational (scripts/bench_gate.py). `tolerances` holds per-key
// gate-tolerance overrides (fractional, e.g. 0.35) for results whose measured
// run-to-run noise exceeds the gate's default 5% — the suite declares them
// per entry so --regen keeps them in the committed baseline, and the gate
// reads them from the *baseline* file only.
bool WriteBenchJson(const std::string& path, const obs::Snapshot& snap,
                    const std::vector<std::pair<std::string, double>>& results = {},
                    const std::vector<std::pair<std::string, double>>& tolerances = {});

// Shared entry point that replaces the ParseObsArgs/EmitObs boilerplate in
// every bench main: parses the observability flags, stamps the run header,
// runs `body`, then emits the requested artifacts. The body receives the
// original argc/argv (obs flags included; positional parsers should skip
// arguments starting with "--").
struct BenchInfo {
  const char* name;      // RunInfo::bench
  const char* workload;  // RunInfo::workload
};
int RunMain(int argc, char** argv, const BenchInfo& info,
            const std::function<int(int argc, char** argv)>& body);

// A fully-wired SmallBank cluster (cluster, catalog, partition map,
// coordinator, optional 3-way replicator, engine, loaded workload) with one
// transaction slot per (node, worker). RunSmallBankDrtmR builds one per run;
// the suite's recovery benchmark keeps a stack alive across a kill/recover
// cycle (bench/suite.cc).
struct SmallBankStack {
  explicit SmallBankStack(const SmallBankBenchConfig& cfg);
  ~SmallBankStack();

  workload::DriverResult Run(const SmallBankBenchConfig& cfg);

  cluster::ClusterConfig ccfg;
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<store::Catalog> catalog;
  std::unique_ptr<cluster::PartitionMap> pmap;
  std::unique_ptr<cluster::Coordinator> coordinator;
  std::unique_ptr<rep::PrimaryBackupReplicator> replicator;
  std::unique_ptr<txn::TxnEngine> engine;
  std::unique_ptr<workload::SmallBankWorkload> bank;
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  std::vector<txn::Transaction*> by_slot;
};

// DrTM+R (optionally with 3-way replication).
workload::DriverResult RunTpccDrtmR(const TpccBenchConfig& config);
workload::DriverResult RunSmallBankDrtmR(const SmallBankBenchConfig& config);

// Baselines (TPC-C only; the paper's comparisons are TPC-C).
workload::DriverResult RunTpccDrTm(const TpccBenchConfig& config);
workload::DriverResult RunTpccCalvin(const TpccBenchConfig& config);
workload::DriverResult RunTpccSilo(const TpccBenchConfig& config);  // machines forced to 1

// Row formatting for the reproduction tables.
void PrintHeader(const char* title, const char* columns);
void PrintTpccRow(const char* label, uint32_t x, const workload::DriverResult& r);
void PrintSmallBankRow(const char* label, uint32_t x, const workload::DriverResult& r);

}  // namespace drtmr::bench

#endif  // DRTMR_BENCH_HARNESS_H_
