// Fig. 19: TPC-C new-order throughput vs database size (warehouses per
// machine up to 64; 6 machines x 8 threads). Paper shape: throughput is
// stable and even rises slightly with more warehouses — a larger database
// raises cache misses but lowers contention.
#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace drtmr::bench;
  return RunMain(argc, argv, {"fig19_tpcc_datasize", "tpcc"}, [](int, char**) {
    PrintHeader("Fig.19  TPC-C throughput vs warehouses/machine (6 machines x 8 threads)",
                "system      wh/node    throughput");
    for (uint32_t wpn : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      TpccBenchConfig cfg;
      cfg.warehouses_per_node = wpn;
      cfg.customers_per_district = 100;  // keep load time and memory in check
      cfg.items = 2000;
      cfg.memory_mb = wpn >= 32 ? 256 : 96;
      cfg.txns_per_thread = 200;
      PrintTpccRow("DrTM+R", wpn, RunTpccDrtmR(cfg));
    }
    for (uint32_t wpn : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      TpccBenchConfig cfg;
      cfg.warehouses_per_node = wpn;
      cfg.customers_per_district = 100;
      cfg.items = 2000;
      cfg.memory_mb = wpn >= 32 ? 256 : 96;
      cfg.log_mb = 8;
      cfg.txns_per_thread = 200;
      cfg.replication = true;
      PrintTpccRow("DrTM+R=3", wpn, RunTpccDrtmR(cfg));
    }
    return 0;
  });
}
