// Calibration tool: runs TPC-C on DrTM+R with explicit knobs, printing
// throughput plus protocol statistics. Used to attribute costs when tuning
// the virtual-time model (see EXPERIMENTS.md).
//
// Usage: calibrate [machines] [threads] [cross_no_pct] [cross_pay_pct] [rep:0|1]
#include <cstdlib>

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace drtmr::bench;
  const ObsOptions obs_opt = ParseObsArgs(argc, argv);
  TpccBenchConfig cfg;
  cfg.machines = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 6;
  cfg.threads = argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 8;
  cfg.cross_no_pct = argc > 3 ? static_cast<uint32_t>(std::atoi(argv[3])) : 1;
  cfg.cross_pay_pct = argc > 4 ? static_cast<uint32_t>(std::atoi(argv[4])) : 15;
  cfg.replication = argc > 5 && std::atoi(argv[5]) != 0;
  cfg.txns_per_thread = 300;
  cfg.print_stats = true;
  const drtmr::workload::DriverResult r = RunTpccDrtmR(cfg);
  PrintHeader("calibrate", "system      machines   throughput");
  PrintTpccRow("DrTM+R", cfg.machines, r);
  std::printf("per-machine total: %s tps\n",
              drtmr::workload::FormatTps(r.ThroughputTps() / cfg.machines).c_str());
  EmitObs(obs_opt);
  return 0;
}
