// Calibration tool: runs TPC-C on DrTM+R with explicit knobs, printing
// throughput plus protocol statistics. Used to attribute costs when tuning
// the virtual-time model (see EXPERIMENTS.md).
//
// Usage: calibrate [machines] [threads] [cross_no_pct] [cross_pay_pct] [rep:0|1]
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace drtmr::bench;
  return RunMain(argc, argv, {"calibrate", "tpcc"}, [](int argc, char** argv) {
    // Positional knobs; --flags are consumed by the harness.
    std::vector<const char*> pos;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        pos.push_back(argv[i]);
      }
    }
    TpccBenchConfig cfg;
    cfg.machines = pos.size() > 0 ? static_cast<uint32_t>(std::atoi(pos[0])) : 6;
    cfg.threads = pos.size() > 1 ? static_cast<uint32_t>(std::atoi(pos[1])) : 8;
    cfg.cross_no_pct = pos.size() > 2 ? static_cast<uint32_t>(std::atoi(pos[2])) : 1;
    cfg.cross_pay_pct = pos.size() > 3 ? static_cast<uint32_t>(std::atoi(pos[3])) : 15;
    cfg.replication = pos.size() > 4 && std::atoi(pos[4]) != 0;
    cfg.txns_per_thread = 300;
    cfg.print_stats = true;
    RunInfo& info = MutableRunInfo();
    info.machines = cfg.machines;
    info.threads = cfg.threads;
    info.replication = cfg.replication;
    const drtmr::workload::DriverResult r = RunTpccDrtmR(cfg);
    PrintHeader("calibrate", "system      machines   throughput");
    PrintTpccRow("DrTM+R", cfg.machines, r);
    std::printf("per-machine total: %s tps\n",
                drtmr::workload::FormatTps(r.ThroughputTps() / cfg.machines).c_str());
    return 0;
  });
}
