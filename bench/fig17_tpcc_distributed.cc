// Fig. 17: TPC-C new-order throughput vs probability of cross-warehouse
// accesses (6 machines, 8 threads). Paper shapes: 100% cross-warehouse costs
// 73.1% (with replication) / 81.7% (without) of throughput; 5% costs ~11%;
// the DrTM-vs-DrTM+R gap narrows as distribution grows (both use the same
// remote update mechanism).
#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace drtmr::bench;
  return RunMain(argc, argv, {"fig17_tpcc_distributed", "tpcc"}, [](int, char**) {
    const uint32_t kCross[] = {1, 5, 10, 25, 50, 75, 100};
    PrintHeader("Fig.17  TPC-C throughput vs cross-warehouse access % (6 machines x 8 threads)",
                "system      cross%     throughput");
    for (uint32_t c : kCross) {
      TpccBenchConfig cfg;
      cfg.cross_no_pct = c;
      cfg.txns_per_thread = 250;
      PrintTpccRow("DrTM+R", c, RunTpccDrtmR(cfg));
    }
    for (uint32_t c : kCross) {
      TpccBenchConfig cfg;
      cfg.cross_no_pct = c;
      cfg.txns_per_thread = 250;
      cfg.replication = true;
      PrintTpccRow("DrTM+R=3", c, RunTpccDrtmR(cfg));
    }
    for (uint32_t c : kCross) {
      TpccBenchConfig cfg;
      cfg.cross_no_pct = c;
      cfg.txns_per_thread = 150;
      PrintTpccRow("DrTM", c, RunTpccDrTm(cfg));
    }
    return 0;
  });
}
