// Runs the standard bench suite (bench/suite.h) and writes one
// BENCH_<name>[.smoke].json per entry. scripts/bench_suite.sh wraps this and
// scripts/bench_gate.py diffs the output against the committed baselines.
//
// Usage: bench_suite [--smoke] [--out-dir=DIR] [--only=a,b,...]
//                    [--slow-txns=K] [--list]
#include <cstdio>
#include <cstring>

#include "bench/suite.h"

int main(int argc, char** argv) {
  using namespace drtmr::bench;
  SuiteOptions opt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--smoke") == 0) {
      opt.smoke = true;
    } else if (std::strcmp(a, "--no-glob") == 0) {
      opt.no_glob = true;
    } else if (std::strncmp(a, "--out-dir=", 10) == 0) {
      opt.out_dir = a + 10;
    } else if (std::strncmp(a, "--only=", 7) == 0) {
      std::string list = a + 7;
      size_t pos = 0;
      while (pos <= list.size()) {
        const size_t comma = list.find(',', pos);
        const std::string item = list.substr(pos, comma == std::string::npos
                                                      ? std::string::npos
                                                      : comma - pos);
        if (!item.empty()) {
          opt.only.push_back(item);
        }
        if (comma == std::string::npos) {
          break;
        }
        pos = comma + 1;
      }
    } else if (std::strncmp(a, "--slow-txns=", 12) == 0) {
      opt.slow_txns = static_cast<uint32_t>(std::strtoul(a + 12, nullptr, 10));
    } else if (std::strcmp(a, "--list") == 0) {
      for (const std::string& name : SuiteEntryNames()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else {
      std::fprintf(stderr,
                   "usage: bench_suite [--smoke] [--no-glob] [--out-dir=DIR] [--only=a,b] "
                   "[--slow-txns=K] [--list]\n");
      return 2;
    }
  }
  int failures = 0;
  for (const SuiteEntryResult& er : RunSuite(opt)) {
    if (!er.ok) {
      failures++;
    }
  }
  if (failures != 0) {
    std::fprintf(stderr, "bench_suite: %d entr%s failed\n", failures,
                 failures == 1 ? "y" : "ies");
    return 1;
  }
  return 0;
}
