// Fig. 16: SmallBank + 3-way replication vs threads (6 machines). Paper: the
// single NIC saturates around 8 threads (~6.4M txns/s peak) — each tiny
// transaction issues several replication WRITEs, so the knee appears well
// before the 16-thread scaling of the unreplicated run (Fig. 14).
#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace drtmr::bench;
  const ObsOptions obs_opt = ParseObsArgs(argc, argv);
  PrintHeader("Fig.16  SmallBank (3-way replication) vs threads (6 machines)",
              "cross%      threads    throughput");
  for (uint32_t cross : {1u, 5u, 10u}) {
    for (uint32_t t : {1u, 2u, 4u, 8u, 12u, 16u}) {
      SmallBankBenchConfig cfg;
      cfg.threads = t;
      cfg.cross_pct = cross;
      cfg.replication = true;
      cfg.txns_per_thread = 400;
      char label[16];
      std::snprintf(label, sizeof(label), "%u%%", cross);
      const auto r = RunSmallBankDrtmR(cfg);
      std::printf("%-12s %4u  total %10s tps  p50 %7.1fus  p99 %7.1fus\n", label, t,
                  drtmr::workload::FormatTps(r.ThroughputTps()).c_str(),
                  r.latency.Percentile(50) / 1000.0, r.latency.Percentile(99) / 1000.0);
    }
  }
  EmitObs(obs_opt);
  return 0;
}
