// Fig. 16: SmallBank + 3-way replication vs threads (6 machines). Paper: the
// single NIC saturates around 8 threads (~6.4M txns/s peak) — each tiny
// transaction issues several replication WRITEs, so the knee appears well
// before the 16-thread scaling of the unreplicated run (Fig. 14).
#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace drtmr::bench;
  return RunMain(argc, argv, {"fig16_smallbank_rep_threads", "smallbank"}, [](int, char**) {
    PrintHeader("Fig.16  SmallBank (3-way replication) vs threads (6 machines)",
                "cross%      threads    throughput");
    for (uint32_t cross : {1u, 5u, 10u}) {
      for (uint32_t t : {1u, 2u, 4u, 8u, 12u, 16u}) {
        SmallBankBenchConfig cfg;
        cfg.threads = t;
        cfg.cross_pct = cross;
        cfg.replication = true;
        cfg.txns_per_thread = 400;
        char label[16];
        std::snprintf(label, sizeof(label), "%u%%", cross);
        PrintSmallBankRow(label, t, RunSmallBankDrtmR(cfg));
      }
    }
    return 0;
  });
}
