// Ablations of DrTM+R's design choices (DESIGN.md §5), all on TPC-C with
// 6 machines x 8 threads:
//  * read-set locking (C.1 locks remote *read* records; the paper's addition
//    over FaRM-style validate-only — required for strict serializability
//    given C.3/C.4 run later inside HTM) — cost of the extra CASes;
//  * one-sided commit vs message-passing commit (FaRM-style RPCs would also
//    interrupt target CPUs and abort HTM regions; here we charge only their
//    latency, so the printed gap is a *lower bound* on the real one);
//  * pointer-swap local updates (§6.4) — shrinks the HTM write cost for
//    always-local tables.
#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace drtmr::bench;
  return RunMain(argc, argv, {"ablate_protocol", "tpcc"}, [](int, char**) {
    PrintHeader("Ablations (TPC-C, 6 machines x 8 threads)", "variant     cross%     throughput");

    for (uint32_t cross : {1u, 10u, 50u}) {
      TpccBenchConfig cfg;
      cfg.cross_no_pct = cross;
      cfg.txns_per_thread = 250;
      PrintTpccRow("baseline", cross, RunTpccDrtmR(cfg));

      cfg.lock_remote_read_set = false;
      PrintTpccRow("no-rs-lock", cross, RunTpccDrtmR(cfg));
      cfg.lock_remote_read_set = true;

      cfg.message_passing_commit = true;
      PrintTpccRow("msg-commit", cross, RunTpccDrtmR(cfg));
      cfg.message_passing_commit = false;

      // §4.4: with IBV_ATOMIC_GLOB the lock is fused into the seqnum CAS.
      cfg.fused_seq_lock = true;
      PrintTpccRow("glob-fused", cross, RunTpccDrtmR(cfg));
      cfg.fused_seq_lock = false;
    }

    {
      TpccBenchConfig cfg;
      cfg.txns_per_thread = 250;
      PrintTpccRow("no-ptrswap", 1, RunTpccDrtmR(cfg));
      cfg.ptr_swap_local_tables = true;
      PrintTpccRow("ptrswap", 1, RunTpccDrtmR(cfg));
    }
    return 0;
  });
}
