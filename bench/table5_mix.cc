// Table 5: transaction mix ratios and access patterns for TPC-C and
// SmallBank. Runs both workloads and prints the generated mix next to the
// specification, plus the measured distributed fraction.
#include "bench/harness.h"

#include <memory>

#include "src/cluster/coordinator.h"
#include "src/txn/transaction.h"

using namespace drtmr;

int main(int argc, char** argv) {
  using namespace drtmr::bench;
  return RunMain(argc, argv, {"table5_mix", "tpcc+smallbank"}, [](int, char**) {
    {
      TpccBenchConfig cfg;
      cfg.machines = 3;
      cfg.threads = 4;
      cfg.txns_per_thread = 2000;
      const auto r = RunTpccDrtmR(cfg);
      PrintHeader("Table 5 (TPC-C): generated standard mix vs specification",
                  "type          spec   generated  pattern");
      static const char* kNames[] = {"new-order", "payment", "order-status", "delivery",
                                     "stock-level"};
      static const int kSpec[] = {45, 43, 4, 4, 4};
      static const char* kPattern[] = {"d/rw (1% cross items)", "d/rw (15% cross customer)",
                                       "l/ro", "l/rw", "l/ro"};
      for (uint32_t t = 0; t < workload::kTpccTxnTypes; ++t) {
        std::printf("%-12s  %3d%%   %6.1f%%   %s\n", kNames[t], kSpec[t],
                    100.0 * static_cast<double>(r.committed_by_type[t]) /
                        static_cast<double>(r.committed),
                    kPattern[t]);
      }
    }
    {
      SmallBankBenchConfig cfg;
      cfg.machines = 3;
      cfg.threads = 4;
      cfg.txns_per_thread = 2000;
      cfg.accounts_per_node = 5000;
      const auto r = RunSmallBankDrtmR(cfg);
      PrintHeader("Table 5 (SmallBank): generated mix vs specification",
                  "type          spec   generated  pattern");
      static const char* kNames[] = {"send-payment", "balance", "deposit-check",
                                     "withdraw-check", "transfer-save", "amalgamate"};
      static const int kSpec[] = {25, 15, 15, 15, 15, 15};
      static const char* kPattern[] = {"d/rw", "l/ro", "l/rw", "l/rw", "l/rw", "d/rw"};
      for (uint32_t t = 0; t < workload::kSmallBankTxnTypes; ++t) {
        std::printf("%-14s %3d%%   %6.1f%%   %s\n", kNames[t], kSpec[t],
                    100.0 * static_cast<double>(r.committed_by_type[t]) /
                        static_cast<double>(r.committed),
                    kPattern[t]);
      }
    }
    return 0;
  });
}
