// Microbenchmarks of the simulated substrates (google-benchmark): HTM
// begin/commit, conflict handling, one-sided verbs, and the memory stores.
// These measure the *host* cost of the simulation (wall time), which bounds
// how much virtual workload the benches can push per second.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/cluster/node.h"
#include "src/store/btree_store.h"
#include "src/store/hash_store.h"

namespace drtmr {
namespace {

struct Env {
  Env() {
    cluster::ClusterConfig cfg;
    cfg.num_nodes = 2;
    cfg.workers_per_node = 2;
    cfg.memory_bytes = 32 << 20;
    cfg.log_bytes = 1 << 20;
    cluster = std::make_unique<cluster::Cluster>(cfg);
  }
  std::unique_ptr<cluster::Cluster> cluster;
};

Env* env() {
  static Env e;
  return &e;
}

void BM_HtmBeginCommit(benchmark::State& state) {
  cluster::Node* node = env()->cluster->node(0);
  sim::ThreadContext* ctx = node->context(0);
  for (auto _ : state) {
    sim::HtmTxn* txn = node->htm()->Begin(ctx);
    uint64_t v;
    benchmark::DoNotOptimize(txn->ReadU64(4096, &v));
    benchmark::DoNotOptimize(txn->WriteU64(4096, v + 1));
    benchmark::DoNotOptimize(txn->Commit());
  }
}
BENCHMARK(BM_HtmBeginCommit);

void BM_BusRead64(benchmark::State& state) {
  cluster::Node* node = env()->cluster->node(0);
  sim::ThreadContext* ctx = node->context(0);
  std::byte buf[64];
  for (auto _ : state) {
    node->bus()->Read(ctx, 8192, buf, sizeof(buf));
    benchmark::DoNotOptimize(buf);
  }
}
BENCHMARK(BM_BusRead64);

void BM_RdmaRead(benchmark::State& state) {
  cluster::Node* node = env()->cluster->node(0);
  sim::ThreadContext* ctx = node->context(0);
  std::byte buf[128];
  for (auto _ : state) {
    benchmark::DoNotOptimize(node->nic()->Read(ctx, 1, 0, buf, sizeof(buf)));
  }
}
BENCHMARK(BM_RdmaRead);

void BM_RdmaCas(benchmark::State& state) {
  cluster::Node* node = env()->cluster->node(0);
  sim::ThreadContext* ctx = node->context(0);
  for (auto _ : state) {
    uint64_t obs;
    benchmark::DoNotOptimize(node->nic()->CompareSwap(ctx, 1, 64, 0, 0, &obs));
  }
}
BENCHMARK(BM_RdmaCas);

void BM_HashInsertLookup(benchmark::State& state) {
  static store::HashStore hs(env()->cluster->node(0), 1 << 14, 40);
  sim::ThreadContext* ctx = env()->cluster->node(0)->context(0);
  uint64_t key = 1;
  char value[40] = "v";
  for (auto _ : state) {
    benchmark::DoNotOptimize(hs.Insert(ctx, key, value, nullptr));
    benchmark::DoNotOptimize(hs.Lookup(ctx, key));
    key++;
  }
}
BENCHMARK(BM_HashInsertLookup);

void BM_BTreeInsertLookup(benchmark::State& state) {
  static store::BTreeStore bt;
  uint64_t key = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bt.Insert(nullptr, key, key));
    benchmark::DoNotOptimize(bt.Lookup(nullptr, key));
    key++;
  }
}
BENCHMARK(BM_BTreeInsertLookup);

}  // namespace
}  // namespace drtmr

BENCHMARK_MAIN();
