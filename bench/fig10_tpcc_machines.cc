// Fig. 10: TPC-C new-order throughput vs number of machines (8 worker
// threads each, 1 warehouse per machine). Paper shapes to reproduce:
//  * DrTM+R scales near-linearly to 6 machines (1.49M new-order/s there);
//  * DrTM is slightly (roughly 2-10%) faster than DrTM+R — no read/write
//    buffer maintenance — at the price of a-priori read/write sets;
//  * DrTM+R=3 (3-way replication) costs at most ~41% before NIC saturation;
//  * Calvin is more than an order of magnitude (26.8x+) slower.
#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace drtmr::bench;
  return RunMain(argc, argv, {"fig10_tpcc_machines", "tpcc"}, [](int, char**) {
    PrintHeader("Fig.10  TPC-C throughput vs machines (8 threads each)",
                "system      machines   throughput");
    for (uint32_t m = 1; m <= 6; ++m) {
      TpccBenchConfig cfg;
      cfg.machines = m;
      cfg.threads = 8;
      cfg.txns_per_thread = 250;
      PrintTpccRow("DrTM+R", m, RunTpccDrtmR(cfg));
    }
    for (uint32_t m = 1; m <= 6; ++m) {
      TpccBenchConfig cfg;
      cfg.machines = m;
      cfg.threads = 8;
      cfg.txns_per_thread = 250;
      cfg.replication = true;
      PrintTpccRow("DrTM+R=3", m, RunTpccDrtmR(cfg));
    }
    for (uint32_t m = 1; m <= 6; ++m) {
      TpccBenchConfig cfg;
      cfg.machines = m;
      cfg.threads = 8;
      cfg.txns_per_thread = 250;
      PrintTpccRow("DrTM", m, RunTpccDrTm(cfg));
    }
    for (uint32_t m = 1; m <= 6; ++m) {
      TpccBenchConfig cfg;
      cfg.machines = m;
      cfg.threads = 8;
      cfg.txns_per_thread = 60;  // Calvin is slow; fewer txns keep wall time sane
      PrintTpccRow("Calvin", m, RunTpccCalvin(cfg));
    }
    return 0;
  });
}
