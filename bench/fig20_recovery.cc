// Fig. 20: recovery timeline. TPC-C with 3-way replication on 6 machines;
// one machine is killed, its lease expires ("suspect"), the coordinator
// commits a new configuration ("config-commit"), and the dead machine's
// partition is revived on a survivor from backup copies ("recovery-done").
// Paper shape: throughput dips on failure, recovers in tens of milliseconds,
// and stabilizes at ~80% of peak (5 surviving machines serve 6 partitions).
//
// Unlike the other benches this one runs on the wall clock (lease expiry is a
// real-time mechanism); the reported series is committed transactions per 2ms
// bucket, normalized to the pre-failure rate.
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "src/cluster/coordinator.h"
#include "src/rep/recovery.h"
#include "src/txn/transaction.h"

using namespace drtmr;
using Clock = std::chrono::steady_clock;

int main(int argc, char** argv) {
  return bench::RunMain(argc, argv, {"fig20_recovery", "tpcc"}, [](int, char**) {
  constexpr uint32_t kNodes = 6;
  constexpr uint32_t kThreads = 4;
  constexpr uint32_t kDead = 2;
  constexpr uint32_t kHost = 3;
  constexpr uint64_t kLeaseMs = 10;
  constexpr int kBucketMs = 2;
  constexpr int kKillAtMs = 120;
  constexpr int kEndAtMs = 560;

  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = kNodes;
  ccfg.workers_per_node = kThreads;
  ccfg.memory_bytes = 48u << 20;
  ccfg.log_bytes = 8u << 20;
  cluster::Cluster cluster(ccfg);
  store::Catalog catalog(&cluster);
  cluster::PartitionMap pmap(kNodes);
  cluster::Coordinator coordinator;
  auto now_ms = [start = Clock::now()] {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - start).count());
  };
  rep::RepConfig rcfg;
  rcfg.replicas = 3;
  rep::PrimaryBackupReplicator replicator(&cluster, rcfg);
  txn::TxnConfig tcfg;
  tcfg.replication = true;
  tcfg.replicas = 3;
  txn::TxnEngine engine(&cluster, &catalog, tcfg, &coordinator, &replicator);
  workload::TpccConfig tc;
  tc.warehouses_per_node = 1;
  tc.customers_per_district = 100;
  tc.items = 1000;
  workload::TpccWorkload tpcc(&engine, &pmap, tc);
  tpcc.CreateTables();
  std::fprintf(stderr, "[fig20] loading...\n");
  tpcc.Load(&replicator);
  engine.StartServices();
  std::fprintf(stderr, "[fig20] loaded\n");

  // Machines join the configuration only after loading finishes, otherwise
  // their leases would already be expired by the time renewals start.
  for (uint32_t i = 0; i < kNodes; ++i) {
    coordinator.Join(i, now_ms(), kLeaseMs);
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> worker_alive{0};
  static std::atomic<uint32_t> stuck_where[kNodes * kThreads];

  // Worker threads: free-running standard mix.
  std::vector<std::thread> workers;
  for (uint32_t n = 0; n < kNodes; ++n) {
    for (uint32_t w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, n, w] {
        worker_alive.fetch_add(1);
        sim::ThreadContext* ctx = cluster.node(n)->context(w);
        txn::Transaction txn(&engine, ctx);
        FastRand rng(n * 100 + w + 1);
        while (!stop.load(std::memory_order_relaxed)) {
          if (cluster.node(n)->killed()) {
            break;
          }
          const uint64_t wh = tpcc.PickWarehouse(ctx, &rng);
          const uint32_t type = tpcc.PickType(&rng);
          bool bail = false;
          stuck_where[n * kThreads + w].store(type + 1);
          while (!tpcc.RunType(type, ctx, &txn, &rng, wh)) {
            if (stop.load(std::memory_order_relaxed) || cluster.node(n)->killed()) {
              bail = true;
              break;
            }
            std::this_thread::yield();
          }
          stuck_where[n * kThreads + w].store(0);
          if (bail) {
            break;
          }
          commits.fetch_add(1, std::memory_order_relaxed);
        }
        worker_alive.fetch_sub(1);
      });
    }
  }

  // Lease renewal threads (stop renewing when their machine dies).
  std::vector<std::thread> renewers;
  for (uint32_t n = 0; n < kNodes; ++n) {
    renewers.emplace_back([&, n] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (!cluster.node(n)->killed()) {
          coordinator.Renew(n, now_ms(), kLeaseMs);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  // Failure detector + recovery driver.
  std::atomic<int64_t> t_suspect{-1}, t_config{-1}, t_recovered{-1};
  std::thread monitor([&] {
    rep::RecoveryManager rm(&engine, &replicator, &coordinator);
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<uint32_t> suspected;
      if (coordinator.Reconfigure(now_ms(), &suspected)) {
        t_suspect.store(static_cast<int64_t>(now_ms()));
        // The new configuration is committed at all survivors (epoch bump).
        t_config.store(static_cast<int64_t>(now_ms()));
        for (uint32_t dead : suspected) {
          rm.RecoverAfterFailure(cluster.node(kHost)->tool_context(), dead, kHost, &pmap);
        }
        t_recovered.store(static_cast<int64_t>(now_ms()));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Sampler: commits per bucket.
  std::vector<uint64_t> series;
  std::thread sampler([&] {
    uint64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(kBucketMs));
      const uint64_t cur = commits.load(std::memory_order_relaxed);
      series.push_back(cur - last);
      last = cur;
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(kKillAtMs));
  const uint64_t kill_time = now_ms();
  std::fprintf(stderr, "[fig20] killing node %u at %llums (commits so far %llu)\n", kDead,
               (unsigned long long)kill_time, (unsigned long long)commits.load());
  cluster.Kill(kDead);
  std::this_thread::sleep_for(std::chrono::milliseconds(kEndAtMs - kKillAtMs));
  stop.store(true);
  std::fprintf(stderr, "[fig20] stopping (commits %llu, suspect=%lld, recovered=%lld)\n",
               (unsigned long long)commits.load(), (long long)t_suspect.load(),
               (long long)t_recovered.load());
  for (int i = 0; i < 50 && worker_alive.load() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (worker_alive.load() > 0) {
    for (uint32_t i = 0; i < kNodes * kThreads; ++i) {
      if (stuck_where[i].load() != 0) {
        std::fprintf(stderr, "[fig20] worker n=%u w=%u stuck in txn type %u\n", i / kThreads,
                     i % kThreads, stuck_where[i].load() - 1);
      }
    }
  }
  for (auto& t : workers) {
    t.join();
  }
  std::fprintf(stderr, "[fig20] workers joined\n");
  for (auto& t : renewers) {
    t.join();
  }
  monitor.join();
  sampler.join();
  engine.StopServices();

  // Report: normalize to the pre-failure average.
  double pre = 0;
  int pre_buckets = 0;
  for (size_t i = 10; i < series.size() && static_cast<int>(i) * kBucketMs < kKillAtMs - 10;
       ++i) {
    pre += static_cast<double>(series[i]);
    pre_buckets++;
  }
  pre = pre_buckets > 0 ? pre / pre_buckets : 1.0;
  double post = 0;
  int post_buckets = 0;
  for (size_t i = series.size() > 40 ? series.size() - 40 : 0; i < series.size(); ++i) {
    post += static_cast<double>(series[i]);
    post_buckets++;
  }
  post = post_buckets > 0 ? post / post_buckets : 0.0;

  std::printf("\n=== Fig.20  recovery timeline (2ms buckets, normalized to pre-failure) ===\n");
  std::printf("kill at %llums; suspect at %lldms; config-commit at %lldms; recovery-done at "
              "%lldms\n",
              (unsigned long long)kill_time, (long long)t_suspect.load(),
              (long long)t_config.load(), (long long)t_recovered.load());
  std::printf("time_ms  relative_tput\n");
  for (size_t i = 0; i < series.size(); ++i) {
    const int t = static_cast<int>(i + 1) * kBucketMs;
    std::printf("%6d   %6.2f%s%s%s\n", t, pre > 0 ? static_cast<double>(series[i]) / pre : 0.0,
                std::abs(t - static_cast<int>(kill_time)) < kBucketMs ? "   <- failure" : "",
                t_suspect.load() >= 0 && std::abs(t - t_suspect.load()) < kBucketMs
                    ? "   <- suspect/config-commit"
                    : "",
                t_recovered.load() >= 0 && std::abs(t - t_recovered.load()) < kBucketMs
                    ? "   <- recovery-done"
                    : "");
  }
  std::printf("pre-failure avg %.0f commits/bucket; steady-state after recovery %.0f (%.0f%% of "
              "peak; paper: ~80%%)\n",
              pre, post, pre > 0 ? 100.0 * post / pre : 0.0);
  return 0;
  });
}
