// Fig. 18: high contention — one warehouse per machine, increasing worker
// threads (6 machines). Paper shapes: DrTM+R outperforms DrTM below ~10
// threads (DrTM falls back to its locking slow path more often under
// contention); as threads grow, DrTM+R's optimistic scheme pays more
// read-write conflict aborts in the commit phase.
#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace drtmr::bench;
  return RunMain(argc, argv, {"fig18_tpcc_contention", "tpcc"}, [](int, char**) {
    const uint32_t kThreads[] = {1, 2, 4, 8, 10, 12, 16};
    PrintHeader("Fig.18  TPC-C high contention: 1 warehouse/machine (6 machines)",
                "system      threads    throughput");
    for (uint32_t t : kThreads) {
      TpccBenchConfig cfg;
      cfg.threads = t;
      cfg.warehouses_per_node = 1;  // contention grows with threads
      cfg.txns_per_thread = 200;
      PrintTpccRow("DrTM+R", t, RunTpccDrtmR(cfg));
    }
    for (uint32_t t : kThreads) {
      TpccBenchConfig cfg;
      cfg.threads = t;
      cfg.warehouses_per_node = 1;
      cfg.txns_per_thread = 200;
      PrintTpccRow("DrTM", t, RunTpccDrTm(cfg));
    }
    return 0;
  });
}
