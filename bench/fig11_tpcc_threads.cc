// Fig. 11: TPC-C throughput vs worker threads (6 machines, one warehouse per
// worker thread). Paper shapes:
//  * DrTM+R scales to 16 threads (9.21x speedup; 2.56M new-order / 5.69M
//    standard-mix at 16 threads) thanks to small HTM working sets;
//  * DrTM's throughput drops beyond 8 threads (one socket): whole-transaction
//    HTM regions suffer cross-socket coherence and conflict aborts;
//  * per-machine DrTM+R is comparable to or faster than single-machine Silo.
#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace drtmr::bench;
  return RunMain(argc, argv, {"fig11_tpcc_threads", "tpcc"}, [](int, char**) {
    const uint32_t kThreads[] = {1, 2, 4, 8, 10, 12, 16};
    PrintHeader("Fig.11  TPC-C throughput vs threads (6 machines)",
                "system      threads    throughput");
    auto scaled = [](uint32_t t) {
      TpccBenchConfig cfg;
      cfg.threads = t;
      cfg.warehouses_per_node = t;  // one warehouse per worker (low contention)
      cfg.customers_per_district = 100;
      cfg.items = 5000;
      cfg.memory_mb = 192;
      cfg.log_mb = 16;
      cfg.txns_per_thread = 200;
      return cfg;
    };
    for (uint32_t t : kThreads) {
      PrintTpccRow("DrTM+R", t, RunTpccDrtmR(scaled(t)));
    }
    for (uint32_t t : kThreads) {
      TpccBenchConfig cfg = scaled(t);
      cfg.replication = true;
      PrintTpccRow("DrTM+R=3", t, RunTpccDrtmR(cfg));
    }
    for (uint32_t t : kThreads) {
      PrintTpccRow("DrTM", t, RunTpccDrTm(scaled(t)));
    }
    // Per-machine comparison against single-machine Silo (logging disabled).
    for (uint32_t t : {8u, 16u}) {
      TpccBenchConfig cfg = scaled(t);
      cfg.txns_per_thread = 400;
      PrintTpccRow("Silo(1m)", t, RunTpccSilo(cfg));
      cfg.machines = 1;
      PrintTpccRow("DrTM+R(1m)", t, RunTpccDrtmR(cfg));
    }
    return 0;
  });
}
