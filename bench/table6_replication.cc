// Table 6: the cost of 3-way replication for TPC-C on 6 machines x 8
// threads: throughput plus per-type median/99th latency with and without
// replication. Paper: at most 41% throughput overhead before the NIC
// bottleneck; latency rises by the extra log-write round trips.
#include "bench/harness.h"

using namespace drtmr;

namespace {

void PrintLatencies(const char* label, const workload::DriverResult& r) {
  static const char* kNames[] = {"new-order", "payment", "order-status", "delivery",
                                 "stock-level"};
  std::printf("%s: total %s tps, new-order %s tps\n", label,
              workload::FormatTps(r.ThroughputTps()).c_str(),
              workload::FormatTps(r.ThroughputTps(workload::kNewOrder)).c_str());
  for (uint32_t t = 0; t < workload::kTpccTxnTypes; ++t) {
    std::printf("  %-12s p50 %8.1fus   p99 %8.1fus\n", kNames[t],
                r.latency_by_type[t].Percentile(50) / 1000.0,
                r.latency_by_type[t].Percentile(99) / 1000.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace drtmr::bench;
  return RunMain(argc, argv, {"table6_replication", "tpcc"}, [](int, char**) {
    PrintHeader("Table 6  impact of 3-way replication (TPC-C, 6 machines x 8 threads)", "");
    TpccBenchConfig cfg;
    cfg.txns_per_thread = 400;
    const auto base = RunTpccDrtmR(cfg);
    cfg.replication = true;
    const auto rep = RunTpccDrtmR(cfg);
    PrintLatencies("DrTM+R  ", base);
    PrintLatencies("DrTM+R=3", rep);
    std::printf("replication overhead: %.1f%%\n",
                100.0 * (1.0 - rep.ThroughputTps() / base.ThroughputTps()));
    return 0;
  });
}
