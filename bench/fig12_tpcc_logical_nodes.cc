// Fig. 12: TPC-C throughput scaling with *logical nodes* — several DrTM+R
// instances per physical machine sharing one NIC (the paper's methodology for
// projecting beyond its 6-machine cluster; 4 worker threads per logical
// node). Paper: scales to 24 logical nodes, 2.89M new-order / 6.43M
// standard-mix.
#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace drtmr::bench;
  return RunMain(argc, argv, {"fig12_tpcc_logical_nodes", "tpcc"}, [](int, char**) {
    PrintHeader("Fig.12  TPC-C throughput vs logical nodes (6 physical machines, 4 threads each)",
                "system      lnodes     throughput");
    for (uint32_t lpm = 1; lpm <= 4; ++lpm) {
      TpccBenchConfig cfg;
      cfg.machines = 6;
      cfg.logical_per_machine = lpm;
      cfg.threads = 4;
      cfg.txns_per_thread = 250;
      cfg.memory_mb = 32;
      cfg.log_mb = 4;
      PrintTpccRow("DrTM+R", 6 * lpm, RunTpccDrtmR(cfg));
    }
    return 0;
  });
}
