// Fig. 14: SmallBank throughput vs threads (6 machines, no replication) for
// cross-machine probabilities 1% / 5% / 10%. Paper: 9.2x speedup at 16
// threads with 1% distributed.
#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace drtmr::bench;
  return RunMain(argc, argv, {"fig14_smallbank_threads", "smallbank"}, [](int, char**) {
    PrintHeader("Fig.14  SmallBank throughput vs threads (6 machines)",
                "cross%      threads    throughput");
    for (uint32_t cross : {1u, 5u, 10u}) {
      for (uint32_t t : {1u, 2u, 4u, 8u, 12u, 16u}) {
        SmallBankBenchConfig cfg;
        cfg.threads = t;
        cfg.cross_pct = cross;
        cfg.txns_per_thread = 400;
        char label[16];
        std::snprintf(label, sizeof(label), "%u%%", cross);
        PrintSmallBankRow(label, t, RunSmallBankDrtmR(cfg));
      }
    }
    return 0;
  });
}
