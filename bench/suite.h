// The standard bench suite (DESIGN.md §12): the fixed set of workload points
// whose BENCH_<name>.json results are committed at the repo root and gated by
// scripts/bench_gate.py on every change. Entries cover the paper's headline
// numbers (SmallBank peak, TPC-C new-order, both replicated variants), the
// recovery path (Fig. 20's virtual-time cost), and a torture wall-time point
// so correctness-checking throughput is tracked too.
//
// Every entry runs on the virtual clock (deterministic up to scheduler
// interleavings; well inside the gate's 5% tolerance) except `torture`, whose
// wall_ms result is informational only — the gate never fails on it.
#ifndef DRTMR_BENCH_SUITE_H_
#define DRTMR_BENCH_SUITE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace drtmr::bench {

struct SuiteOptions {
  // smoke: trimmed shapes for CI (minutes, not hours); results land in
  // BENCH_<name>.smoke.json so full and smoke baselines never collide.
  bool smoke = false;
  // no_glob: run the workload entries with the §4.4 GLOB fused lock+validate
  // commit path disabled (the pre-promotion two-verb protocol). Results land
  // in BENCH_<name>[.smoke].noglob.json; CI gates the replicated entries
  // both ways so the flag's off-path cannot rot.
  bool no_glob = false;
  std::string out_dir = ".";
  std::vector<std::string> only;  // entry names to run; empty = all
  uint32_t slow_txns = 8;         // flight-recorder depth per entry
};

struct SuiteEntryResult {
  std::string name;
  std::string file;  // BENCH json written for this entry
  bool ok = false;   // run completed and the json was written
  // Headline scalars, also embedded in the json under "results". Keys ending
  // in _tps are higher-is-better, _ns lower-is-better; others informational.
  std::vector<std::pair<std::string, double>> results;
};

// Names of all suite entries, in run order.
std::vector<std::string> SuiteEntryNames();

// Runs the selected entries, writing one BENCH json per entry into
// opt.out_dir. Resets the metrics registry and flight recorder around each
// entry so the per-entry json is self-contained.
std::vector<SuiteEntryResult> RunSuite(const SuiteOptions& opt);

}  // namespace drtmr::bench

#endif  // DRTMR_BENCH_SUITE_H_
