// Fig. 13: SmallBank throughput vs machines (no replication, 16 threads) for
// cross-machine probabilities 1% / 5% / 10% on send-payment and amalgamate.
// Paper: ~94M txns/s at 6x16 with 1% distributed; stable growth with higher
// distributed fractions.
#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace drtmr::bench;
  return RunMain(argc, argv, {"fig13_smallbank_machines", "smallbank"}, [](int, char**) {
    PrintHeader("Fig.13  SmallBank throughput vs machines (16 threads)",
                "cross%      machines   throughput");
    for (uint32_t cross : {1u, 5u, 10u}) {
      for (uint32_t m = 1; m <= 6; ++m) {
        SmallBankBenchConfig cfg;
        cfg.machines = m;
        cfg.threads = 16;
        cfg.cross_pct = cross;
        cfg.txns_per_thread = 400;
        char label[16];
        std::snprintf(label, sizeof(label), "%u%%", cross);
        PrintSmallBankRow(label, m, RunSmallBankDrtmR(cfg));
      }
    }
    return 0;
  });
}
