// Virtual-time cost model. Every simulated hardware operation charges
// nanoseconds to the issuing worker thread's SimClock (src/util/sim_clock.h).
// Shared resources (each node's NIC) are reserved in simulated time, which is
// what produces the NIC-saturation knees of Figs. 11/15/16 in the paper.
//
// Defaults are calibrated against published numbers for the paper's testbed:
// ConnectX-3 56Gbps InfiniBand (one-sided READ latency ~1.5-2us, ~7GB/s),
// Haswell RTM (XBEGIN+XEND round trip ~70ns), and IPoIB RPC (~50-100us) for
// the Calvin baseline. Absolute throughput is not the reproduction target;
// the ratios between these costs are what shape the figures.
#ifndef DRTMR_SRC_SIM_COST_MODEL_H_
#define DRTMR_SRC_SIM_COST_MODEL_H_

#include <cstdint>

namespace drtmr::sim {

struct CostModel {
  // --- CPU / memory ---
  uint64_t line_access_ns = 5;       // one cache-line read/write by the CPU
  uint64_t record_logic_ns = 250;    // per record operation: index probe, copy, bookkeeping
  uint64_t byte_copy_hundredths_ns = 5;  // 0.05ns per byte for buffer maintenance copies

  // --- HTM (Intel RTM) ---
  uint64_t htm_begin_ns = 25;
  uint64_t htm_commit_ns = 15;
  uint64_t htm_abort_ns = 150;       // rollback + dispatch to abort handler

  // --- one-sided RDMA (ConnectX-3 56Gbps) ---
  uint64_t rdma_read_ns = 1600;      // end-to-end latency of a small READ
  uint64_t rdma_write_ns = 1400;     // end-to-end latency of a small WRITE
  uint64_t rdma_atomic_ns = 2100;    // CAS / FETCH_AND_ADD round trip
  uint64_t nic_verb_busy_ns = 45;    // NIC occupancy per verb (~22M verbs/s, message-rate bound)
  uint64_t nic_bytes_per_us = 7000;  // ~7 GB/s payload bandwidth per NIC
  // Doorbell batching: WQEs linked into one chained submission share a single
  // doorbell; the NIC walks the list by DMA instead of taking a MMIO write per
  // verb, so follow-on verbs cost a fraction of a standalone verb's
  // message-rate budget (the batched verbs/s ceiling of ConnectX-3 era NICs).
  uint64_t nic_chained_verb_busy_ns = 12;  // occupancy of each chained verb after the first
  uint64_t chain_wqe_build_ns = 10;        // CPU cost to link one WQE (no doorbell)
  // Both NICs (requester and responder) are occupied by a verb. When a node
  // runs several logical nodes (Fig. 12) they share one physical NIC.

  // --- two-sided messaging ---
  uint64_t send_recv_ns = 2600;      // SEND/RECV verb pair (used for insert/delete RPC)
  uint64_t ipoib_rpc_ns = 55000;     // TCP-over-IPoIB request/response (Calvin baseline)

  // --- contention / topology ---
  // Cross-socket penalty multiplier (x100) applied to HTM and line costs for
  // threads beyond one socket (the paper's machines have 10 cores/socket, and
  // DrTM's whole-transaction HTM regions suffer most; see Fig. 11).
  uint32_t cross_socket_pct = 135;   // 1.35x
  uint32_t cores_per_socket = 10;
  // When threads span sockets, HTM regions suffer extra aborts from remote
  // cache-line transfers and L1/L2 pressure; modeled as an abort probability
  // per tracked line (parts per million). Whole-transaction regions (DrTM)
  // track far more lines than DrTM+R's commit-only regions, reproducing
  // Fig. 11's DrTM drop beyond one socket.
  uint32_t cross_socket_htm_abort_ppm_per_line = 900;

  uint64_t TransferNs(uint64_t bytes) const {
    return bytes * 1000 / (nic_bytes_per_us == 0 ? 1 : nic_bytes_per_us);
  }

  uint64_t CopyNs(uint64_t bytes) const { return bytes * byte_copy_hundredths_ns / 100; }
};

}  // namespace drtmr::sim

#endif  // DRTMR_SRC_SIM_COST_MODEL_H_
