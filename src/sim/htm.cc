#include "src/sim/htm.h"

#include <algorithm>
#include <cstring>

#include "src/chk/protocol_analyzer.h"
#include "src/sim/fault.h"
#include "src/util/logging.h"

namespace drtmr::sim {

HtmEngine::HtmEngine(MemoryBus* bus, const CostModel* cost) : bus_(bus), cost_(cost) {
  txns_.reserve(bus->num_slots());
  for (uint32_t i = 0; i < bus->num_slots(); ++i) {
    txns_.push_back(new HtmTxn(this, bus, bus->desc(i)));
  }
}

HtmEngine::~HtmEngine() {
  for (HtmTxn* t : txns_) {
    delete t;
  }
}

HtmTxn* HtmEngine::Begin(ThreadContext* ctx, obs::HtmSite site) {
  if (ctx->current_htm != nullptr) {
    return nullptr;
  }
  DRTMR_CHECK(ctx->worker_id < txns_.size()) << "worker slot out of range";
  HtmTxn* txn = txns_[ctx->worker_id];
  txn->BeginInternal(ctx, site);
  return txn;
}

void HtmEngine::RecordAbort(HtmTxn::AbortCode code) {
  switch (code) {
    case HtmTxn::AbortCode::kConflict:
      stats_.aborts_conflict.fetch_add(1, std::memory_order_relaxed);
      break;
    case HtmTxn::AbortCode::kCapacity:
      stats_.aborts_capacity.fetch_add(1, std::memory_order_relaxed);
      break;
    case HtmTxn::AbortCode::kExplicit:
      stats_.aborts_explicit.fetch_add(1, std::memory_order_relaxed);
      break;
    case HtmTxn::AbortCode::kIo:
      stats_.aborts_io.fetch_add(1, std::memory_order_relaxed);
      break;
    case HtmTxn::AbortCode::kNone:
      break;
  }
}

void HtmTxn::BeginInternal(ThreadContext* ctx, obs::HtmSite site) {
  ctx_ = ctx;
  in_txn_ = true;
  site_ = site;
  last_abort_ = AbortCode::kNone;
  redo_.clear();
  desc_->doom_code.store(HtmDesc::kNone, std::memory_order_relaxed);
  desc_->state.store(HtmDesc::kActive, std::memory_order_release);
  ctx->current_htm = this;
  engine_->stats_.begins.fetch_add(1, std::memory_order_relaxed);
  ctx->Charge(engine_->cost_->htm_begin_ns * bus_->cost_scale_pct() / 100);
}

bool HtmTxn::active() const {
  return in_txn_ && desc_->state.load(std::memory_order_acquire) == HtmDesc::kActive;
}

void HtmTxn::End(bool committed) {
  if (!committed) {
    // Resolve the abort reason: an explicit Abort() already set last_abort_;
    // otherwise take the doom code planted by the conflicting access.
    if (last_abort_ == AbortCode::kNone) {
      last_abort_ = static_cast<AbortCode>(desc_->doom_code.load(std::memory_order_acquire));
      if (last_abort_ == AbortCode::kNone) {
        last_abort_ = AbortCode::kConflict;
      }
    }
    engine_->RecordAbort(last_abort_);
    if (obs::Enabled()) {
      obs::Registry& reg = obs::Registry::Global();
      reg.AddHtmAbort(static_cast<uint32_t>(last_abort_), site_);
      if (obs::TraceEnabled()) {
        reg.AddTrace(obs::TraceName::kHtmAbort, ctx_->node_id, ctx_->worker_id,
                     ctx_->clock.now_ns(), 0, static_cast<uint64_t>(last_abort_),
                     /*instant=*/true);
      }
    }
    ctx_->Charge(engine_->cost_->htm_abort_ns * bus_->cost_scale_pct() / 100);
  } else {
    engine_->stats_.commits.fetch_add(1, std::memory_order_relaxed);
    ctx_->Charge(engine_->cost_->htm_commit_ns * bus_->cost_scale_pct() / 100);
  }
  desc_->state.store(HtmDesc::kFree, std::memory_order_release);
  desc_->reads.Clear();
  desc_->writes.Clear();
  redo_.clear();
  ctx_->current_htm = nullptr;
  in_txn_ = false;
  ctx_ = nullptr;
}

void HtmTxn::OverlayRedo(uint64_t offset, void* dst, size_t len) const {
  auto* out = static_cast<std::byte*>(dst);
  for (const auto& e : redo_) {
    const uint64_t lo = std::max(offset, e.offset);
    const uint64_t hi = std::min(offset + len, e.offset + e.data.size());
    if (lo < hi) {
      std::memcpy(out + (lo - offset), e.data.data() + (lo - e.offset), hi - lo);
    }
  }
}

Status HtmTxn::Read(uint64_t offset, void* dst, size_t len) {
  if (!in_txn_) {
    return Status::kAborted;
  }
  if (!active()) {
    End(false);
    return Status::kAborted;
  }
  if (!bus_->TxRead(ctx_, desc_, offset, dst, len)) {
    End(false);
    return Status::kAborted;
  }
  if (CrossSocketEviction(offset, len)) {
    Abort(AbortCode::kCapacity);
    return Status::kAborted;
  }
  OverlayRedo(offset, dst, len);
  return Status::kOk;
}

bool HtmTxn::CrossSocketEviction(uint64_t offset, size_t len) {
  // Cross-socket runs add an eviction/conflict probability per tracked line
  // (see CostModel::cross_socket_htm_abort_ppm_per_line). Regions tracking
  // many lines — whole-transaction HTM as in DrTM — abort much more often
  // than DrTM+R's commit-only regions.
  if (bus_->cost_scale_pct() <= 100) {
    return false;
  }
  const uint64_t ppm = engine_->cost()->cross_socket_htm_abort_ppm_per_line;
  if (ppm == 0) {
    return false;
  }
  const uint64_t lines = LineEnd(offset, len) - LineOf(offset);
  return ctx_->rng.Uniform(1000000) < ppm * lines;
}

Status HtmTxn::Write(uint64_t offset, const void* src, size_t len) {
  if (!in_txn_) {
    return Status::kAborted;
  }
  if (!active()) {
    End(false);
    return Status::kAborted;
  }
  if (!bus_->TxRegisterWrite(ctx_, desc_, offset, len)) {
    End(false);
    return Status::kAborted;
  }
  if (CrossSocketEviction(offset, len)) {
    Abort(AbortCode::kCapacity);
    return Status::kAborted;
  }
  RedoEntry e;
  e.offset = offset;
  e.data.assign(static_cast<const std::byte*>(src), static_cast<const std::byte*>(src) + len);
  redo_.push_back(std::move(e));
  return Status::kOk;
}

Status HtmTxn::ReadU64(uint64_t offset, uint64_t* value) {
  return Read(offset, value, sizeof(*value));
}

Status HtmTxn::WriteU64(uint64_t offset, uint64_t value) {
  return Write(offset, &value, sizeof(value));
}

Status HtmTxn::Commit() {
  if (!in_txn_) {
    return Status::kInvalid;
  }
  if (active()) {
    if (const FaultPlan* plan = engine_->fault_plan()) {
      const uint32_t code = plan->ForcedHtmAbort(ctx_, site_, ctx_->clock.now_ns());
      if (code != 0) {
        Abort(static_cast<AbortCode>(code));
        return Status::kAborted;
      }
    }
  }
  const bool committed = bus_->TxCommitApply(ctx_, desc_, redo_);
  if (committed && chk::AnalyzerEnabled()) {
    // Fold the just-applied redo into the analyzer's record shadows; HTM
    // commits are protected by definition, so no unlocked-write check runs.
    chk::ProtocolAnalyzer::Global().OnTxCommitApply(bus_, ctx_, redo_);
  }
  End(committed);
  return committed ? Status::kOk : Status::kAborted;
}

void HtmTxn::Abort(AbortCode code) {
  if (!in_txn_) {
    return;
  }
  last_abort_ = code;
  End(false);
}

}  // namespace drtmr::sim
