// MemoryBus simulates one machine's coherent physical memory as seen by the
// CPU, by HTM transactions, and by the RDMA NIC. It is the single point where
// DrTM+R's two load-bearing hardware properties are enforced:
//
//  * Strong atomicity of HTM (§2.1): any non-transactional access — a local
//    CPU access or an incoming one-sided RDMA verb — that conflicts with an
//    active HTM transaction's read/write set unconditionally dooms that
//    transaction. Conflicts are tracked at cache-line granularity, exactly
//    like Intel RTM, so false sharing aborts transactions too.
//
//  * Strong consistency of RDMA (§2.1): RDMA verbs are routed through this
//    bus and are therefore cache-coherent with CPU accesses. A WRITE is
//    atomic only *within* a cache line: multi-line writes are applied line by
//    line under separate stripe locks, so a concurrent reader can observe a
//    torn record — the hazard Fig. 4 of the paper is about.
//
// All accesses charge virtual time (see src/sim/cost_model.h).
#ifndef DRTMR_SRC_SIM_MEMORY_BUS_H_
#define DRTMR_SRC_SIM_MEMORY_BUS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/cost_model.h"
#include "src/sim/thread_context.h"
#include "src/util/cacheline.h"
#include "src/util/spinlock.h"

namespace drtmr::sim {

// Set of cache-line indices owned by one HTM transaction. Single writer (the
// transaction's thread), concurrent readers (conflict scans from other
// threads). A 64-bit hash summary gives O(1) negative membership tests, the
// common case; real RTM uses a similar imprecise filter for its read set.
class LineSet {
 public:
  explicit LineSet(uint32_t capacity);

  // Returns false when the set is full (HTM capacity abort).
  bool Add(uint64_t line);
  bool Contains(uint64_t line) const;
  void Clear();

  uint32_t size() const { return size_.load(std::memory_order_acquire); }
  uint64_t entry(uint32_t i) const { return entries_[i].load(std::memory_order_relaxed); }
  uint32_t capacity() const { return capacity_; }

 private:
  static uint64_t SummaryBit(uint64_t line) { return 1ull << ((line * 0x9e3779b97f4a7c15ull) >> 58); }

  std::atomic<uint64_t> summary_{0};
  std::atomic<uint32_t> size_{0};
  uint32_t capacity_;
  std::vector<std::atomic<uint64_t>> entries_;
};

// Registry descriptor for one (potential) HTM transaction slot. One slot per
// worker thread per node; the descriptor is reused across transactions.
struct HtmDesc {
  enum State : uint32_t { kFree = 0, kActive = 1, kDoomed = 2 };
  // Doom reasons, mirrored by HtmTxn::AbortCode.
  enum DoomCode : uint32_t { kNone = 0, kConflict = 1, kCapacity = 2, kExplicit = 3, kIo = 4 };

  HtmDesc(uint32_t read_cap, uint32_t write_cap) : reads(read_cap), writes(write_cap) {}

  std::atomic<uint32_t> state{kFree};
  std::atomic<uint32_t> doom_code{kNone};
  LineSet reads;
  LineSet writes;

  bool Doom(uint32_t code) {
    uint32_t expect = kActive;
    if (state.compare_exchange_strong(expect, kDoomed, std::memory_order_acq_rel)) {
      doom_code.store(code, std::memory_order_release);
      return true;
    }
    return false;
  }
};

// A buffered transactional write awaiting commit.
struct RedoEntry {
  uint64_t offset;
  std::vector<std::byte> data;
};

class MemoryBus {
 public:
  // `size` bytes of registered memory; `slots` HTM descriptor slots (one per
  // thread that may run HTM transactions on this machine).
  MemoryBus(size_t size, const CostModel* cost, uint32_t slots, uint32_t htm_read_cap,
            uint32_t htm_write_cap);
  // Drops this bus's analyzer shadow (a later bus may reuse the address).
  ~MemoryBus();

  size_t size() const { return size_; }
  std::byte* raw() { return mem_.get(); }

  HtmDesc* desc(uint32_t slot) { return descs_[slot].get(); }
  uint32_t num_slots() const { return static_cast<uint32_t>(descs_.size()); }

  // Scales all local-memory and HTM costs (x100); used to model cross-socket
  // coherence overhead when a node runs threads on both sockets.
  void set_cost_scale_pct(uint32_t pct) { cost_scale_pct_.store(pct, std::memory_order_relaxed); }
  uint32_t cost_scale_pct() const { return cost_scale_pct_.load(std::memory_order_relaxed); }

  // ---- Non-transactional coherent accesses (local CPU and RDMA NIC). ----
  void Read(ThreadContext* ctx, uint64_t offset, void* dst, size_t len);
  void Write(ThreadContext* ctx, uint64_t offset, const void* src, size_t len);
  uint64_t ReadU64(ThreadContext* ctx, uint64_t offset);
  void WriteU64(ThreadContext* ctx, uint64_t offset, uint64_t value);
  // Atomic compare-and-swap on an 8-byte-aligned word. Returns true on swap;
  // *observed receives the pre-existing value either way.
  bool CasU64(ThreadContext* ctx, uint64_t offset, uint64_t expected, uint64_t desired,
              uint64_t* observed);
  uint64_t FetchAddU64(ThreadContext* ctx, uint64_t offset, uint64_t delta);

  // ---- Transactional accesses (called by HtmTxn only). ----
  // Reads committed memory into dst, registers the lines in self's read set,
  // and dooms conflicting writers. Returns false if self got doomed (capacity
  // or an earlier conflict); the caller must abort.
  bool TxRead(ThreadContext* ctx, HtmDesc* self, uint64_t offset, void* dst, size_t len);
  // Registers the write lines and dooms conflicting transactions (eager
  // write-conflict detection, like RTM ownership acquisition).
  bool TxRegisterWrite(ThreadContext* ctx, HtmDesc* self, uint64_t offset, size_t len);
  // Atomically applies the redo log if self is still active. All affected
  // stripes are held for the duration, making the commit atomic with respect
  // to any per-line access, exactly like an RTM commit.
  bool TxCommitApply(ThreadContext* ctx, HtmDesc* self, const std::vector<RedoEntry>& redo);

 private:
  static constexpr uint32_t kStripes = 1024;

  Spinlock& StripeFor(uint64_t line) { return stripes_[line & (kStripes - 1)]; }

  // Dooms every *other* active transaction in conflict with an access to
  // `line`: writers always conflict; readers conflict only with a write.
  // Caller must hold the stripe for `line`.
  void DoomConflicting(HtmDesc* self, uint64_t line, bool is_write);

  void ChargeLines(ThreadContext* ctx, uint64_t nlines);

  size_t size_;
  std::unique_ptr<std::byte[]> mem_;
  const CostModel* cost_;
  std::atomic<uint32_t> cost_scale_pct_{100};
  std::vector<std::unique_ptr<HtmDesc>> descs_;
  std::unique_ptr<Spinlock[]> stripes_;
};

}  // namespace drtmr::sim

#endif  // DRTMR_SRC_SIM_MEMORY_BUS_H_
