#include "src/sim/fabric.h"

#include "src/chk/protocol_analyzer.h"
#include "src/obs/metrics.h"
#include "src/sim/htm.h"
#include "src/util/logging.h"

namespace drtmr::sim {
namespace {

// Conformance check for epoch fencing (analyzer class 5), deliberately placed
// in each mutating verb *independently* of FenceCheck: a verb path that lost
// its fence call still trips the analyzer.
inline void AnalyzerVerbAdmitted(Fabric* fabric, uint32_t src, uint32_t dst) {
  if (chk::AnalyzerEnabled()) {
    chk::ProtocolAnalyzer::Global().OnVerbAdmitted(fabric->bus(src), fabric->bus(dst), src, dst,
                                                   fabric->epoch_fencing());
  }
}

}  // namespace

uint32_t Fabric::AddNode(MemoryBus* bus) {
  const uint32_t id = static_cast<uint32_t>(nodes_.size());
  auto port = std::make_unique<NodePort>();
  port->bus = bus;
  port->nic = std::make_unique<RdmaNic>(this, id, cost_);
  nodes_.push_back(std::move(port));
  return id;
}

bool RdmaNic::ChargeVerb(ThreadContext* ctx, RdmaNic* dst_nic, uint64_t latency_ns,
                         uint64_t bytes, bool posted, uint64_t* completion_ns) {
  // RTM forbids I/O: a verb issued inside an HTM region aborts the region and
  // the verb itself is not performed (the transaction layer must retry
  // outside, or restructure — which is exactly why DrTM+R's commit phase
  // keeps all RDMA steps outside the HTM-protected steps C.3/C.4).
  if (ctx->current_htm != nullptr) {
    ctx->current_htm->Abort(HtmTxn::AbortCode::kIo);
    if (chk::AnalyzerEnabled()) {
      chk::ProtocolAnalyzer::Global().OnVerbInRegion(ctx, /*aborted=*/true);
    }
    return false;
  }
  verbs_issued_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t busy = cost_->nic_verb_busy_ns + cost_->TransferNs(bytes);
  const uint64_t src_start = occupancy_->tx.Reserve(ctx->clock.now_ns(), busy);
  uint64_t done = src_start + busy;
  if (dst_nic->occupancy() != occupancy()) {
    const uint64_t dst_start = dst_nic->occupancy()->rx.Reserve(src_start, busy);
    done = dst_start + busy;
  }
  if (posted) {
    // Doorbell + WQE construction on the CPU; completion is awaited by Fence.
    ctx->Charge(kPostCpuNs);
    if (completion_ns != nullptr && done > *completion_ns) {
      *completion_ns = done;
    }
  } else {
    ctx->clock.AdvanceTo(done + latency_ns);
  }
  return true;
}

void RdmaNic::Fence(ThreadContext* ctx, uint64_t completion_ns, uint64_t latency_ns) {
  ctx->clock.AdvanceTo(completion_ns + latency_ns);
}

Status RdmaNic::ApplyFaults(ThreadContext* ctx, uint32_t dst, uint64_t* completion_ns) {
  if (!fabric_->alive(node_id_) || !fabric_->alive(dst)) {
    return Status::kUnavailable;
  }
  const FaultPlan* plan = fabric_->fault_plan();
  if (plan == nullptr) {
    return Status::kOk;
  }
  uint64_t extra_ns = 0;
  uint64_t stall_until_ns = 0;
  switch (plan->OnVerb(ctx, node_id_, dst, &extra_ns, &stall_until_ns)) {
    case FaultPlan::VerbFate::kUnreachable:
    case FaultPlan::VerbFate::kDrop:
      return Status::kUnavailable;
    case FaultPlan::VerbFate::kDeliver:
      break;
  }
  if (completion_ns != nullptr) {
    // Posted verb: its completion slides out; the caller observes the
    // stall/delay at Fence, so batched verbs still overlap.
    if (stall_until_ns > *completion_ns) {
      *completion_ns = stall_until_ns;
    }
    *completion_ns += extra_ns;
  } else {
    if (stall_until_ns > ctx->clock.now_ns()) {
      ctx->clock.AdvanceTo(stall_until_ns);
    }
    if (extra_ns > 0) {
      ctx->Charge(extra_ns);
    }
  }
  return Status::kOk;
}

Status RdmaNic::ApplyFaultsBounded(ThreadContext* ctx, uint32_t dst, uint64_t timeout_ns) {
  if (!fabric_->alive(node_id_) || !fabric_->alive(dst)) {
    return Status::kUnavailable;
  }
  const FaultPlan* plan = fabric_->fault_plan();
  if (plan == nullptr) {
    return Status::kOk;
  }
  uint64_t extra_ns = 0;
  uint64_t stall_until_ns = 0;
  switch (plan->OnVerb(ctx, node_id_, dst, &extra_ns, &stall_until_ns)) {
    case FaultPlan::VerbFate::kUnreachable:
    case FaultPlan::VerbFate::kDrop:
      return Status::kUnavailable;
    case FaultPlan::VerbFate::kDeliver:
      break;
  }
  const uint64_t now = ctx->clock.now_ns();
  if (stall_until_ns > now + timeout_ns) {
    // The stall outlasts the transport's retry budget: complete with an error
    // after the timeout instead of waiting the window out.
    ctx->Charge(timeout_ns);
    return Status::kUnavailable;
  }
  if (stall_until_ns > now) {
    ctx->clock.AdvanceTo(stall_until_ns);
  }
  if (extra_ns > 0) {
    ctx->Charge(extra_ns);
  }
  return Status::kOk;
}

Status RdmaNic::FenceCheck(uint32_t dst) {
  if (!fabric_->epoch_fencing()) {
    return Status::kOk;
  }
  // Reading the epoch words non-transactionally is HTM-safe: a plain bus read
  // only dooms regions that *write* the line, and nothing but the membership
  // stamp ever writes line 0.
  const uint64_t src_epoch = fabric_->bus(node_id_)->ReadU64(nullptr, Fabric::kEpochWordOff);
  const uint64_t dst_epoch = fabric_->bus(dst)->ReadU64(nullptr, Fabric::kEpochWordOff);
  if (src_epoch < dst_epoch) {
    obs::Count(obs::Counter::kFenceRejectedVerb);
    return Status::kStaleEpoch;
  }
  return Status::kOk;
}

Status RdmaNic::ReadPosted(ThreadContext* ctx, uint32_t dst, uint64_t offset, void* buf,
                           size_t len, uint64_t* completion_ns) {
  RdmaNic* dst_nic = fabric_->nic(dst);
  if (!ChargeVerb(ctx, dst_nic, cost_->rdma_read_ns, len, /*posted=*/true, completion_ns)) {
    return Status::kAborted;
  }
  obs::CountVerb(obs::Verb::kRead, node_id_, dst, len);
  if (Status s = ApplyFaults(ctx, dst, completion_ns); s != Status::kOk) {
    return s;
  }
  fabric_->bus(dst)->Read(/*ctx=*/nullptr, offset, buf, len);
  return Status::kOk;
}

Status RdmaNic::WritePosted(ThreadContext* ctx, uint32_t dst, uint64_t offset, const void* src,
                            size_t len, uint64_t* completion_ns) {
  RdmaNic* dst_nic = fabric_->nic(dst);
  if (!ChargeVerb(ctx, dst_nic, cost_->rdma_write_ns, len, /*posted=*/true, completion_ns)) {
    return Status::kAborted;
  }
  obs::CountVerb(obs::Verb::kWrite, node_id_, dst, len);
  if (Status s = ApplyFaults(ctx, dst, completion_ns); s != Status::kOk) {
    return s;
  }
  if (Status s = FenceCheck(dst); s != Status::kOk) {
    return s;
  }
  AnalyzerVerbAdmitted(fabric_, node_id_, dst);
  // The verb bypasses the remote CPU (ctx == nullptr below); pin the issuing
  // worker's identity so the analyzer can attribute the store.
  chk::ScopedActor actor(node_id_, ctx->worker_id);
  fabric_->bus(dst)->Write(/*ctx=*/nullptr, offset, src, len);
  return Status::kOk;
}

Status RdmaNic::ChainAppend(ThreadContext* ctx, VerbChain* chain, uint32_t dst, uint64_t offset,
                            const void* src, size_t len) {
  DRTMR_CHECK(!chain->open() || chain->dst == dst);
  if (ctx->current_htm != nullptr) {
    ctx->current_htm->Abort(HtmTxn::AbortCode::kIo);
    if (chk::AnalyzerEnabled()) {
      chk::ProtocolAnalyzer::Global().OnVerbInRegion(ctx, /*aborted=*/true);
    }
    return Status::kAborted;
  }
  // WQE link: CPU only. Occupancy for the wire work is reserved in one piece
  // by ChainRing, which is the whole point of the batch.
  verbs_issued_.fetch_add(1, std::memory_order_relaxed);
  ctx->Charge(cost_->chain_wqe_build_ns + cost_->CopyNs(len));
  obs::CountVerb(obs::Verb::kWrite, node_id_, dst, len);
  if (Status s = ApplyFaults(ctx, dst, &chain->fault_floor_ns); s != Status::kOk) {
    return s;
  }
  if (Status s = FenceCheck(dst); s != Status::kOk) {
    return s;
  }
  chain->dst = dst;
  chain->verbs++;
  chain->bytes += len;
  AnalyzerVerbAdmitted(fabric_, node_id_, dst);
  chk::ScopedActor actor(node_id_, ctx->worker_id);
  fabric_->bus(dst)->Write(/*ctx=*/nullptr, offset, src, len);
  return Status::kOk;
}

void RdmaNic::ChainRing(ThreadContext* ctx, VerbChain* chain, uint64_t* completion_ns) {
  if (!chain->open()) {
    return;
  }
  RdmaNic* dst_nic = fabric_->nic(chain->dst);
  const uint64_t busy = cost_->nic_verb_busy_ns +
                        (chain->verbs - 1) * cost_->nic_chained_verb_busy_ns +
                        cost_->TransferNs(chain->bytes);
  const uint64_t src_start = occupancy_->tx.Reserve(ctx->clock.now_ns(), busy);
  uint64_t done = src_start + busy;
  if (dst_nic->occupancy() != occupancy()) {
    const uint64_t dst_start = dst_nic->occupancy()->rx.Reserve(src_start, busy);
    done = dst_start + busy;
  }
  if (chain->fault_floor_ns > done) {
    done = chain->fault_floor_ns;
  }
  ctx->Charge(kPostCpuNs);  // one doorbell for the whole chain
  obs::Count(obs::Counter::kFabricDoorbells);
  obs::Count(obs::Counter::kFabricChainedVerbs, chain->verbs);
  if (completion_ns != nullptr && done > *completion_ns) {
    *completion_ns = done;
  }
  *chain = VerbChain{};
}

Status RdmaNic::CompareSwapPosted(ThreadContext* ctx, uint32_t dst, uint64_t offset,
                                  uint64_t expected, uint64_t desired, uint64_t* observed,
                                  uint64_t* completion_ns) {
  RdmaNic* dst_nic = fabric_->nic(dst);
  if (!ChargeVerb(ctx, dst_nic, cost_->rdma_atomic_ns, sizeof(uint64_t), /*posted=*/true,
                  completion_ns)) {
    return Status::kAborted;
  }
  obs::CountVerb(obs::Verb::kCas, node_id_, dst, sizeof(uint64_t));
  if (Status s = ApplyFaults(ctx, dst, completion_ns); s != Status::kOk) {
    return s;
  }
  if (Status s = FenceCheck(dst); s != Status::kOk) {
    return s;
  }
  AnalyzerVerbAdmitted(fabric_, node_id_, dst);
  chk::ScopedActor actor(node_id_, ctx->worker_id);
  const bool swapped = fabric_->bus(dst)->CasU64(/*ctx=*/nullptr, offset, expected, desired,
                                                 observed);
  return swapped ? Status::kOk : Status::kConflict;
}

Status RdmaNic::Read(ThreadContext* ctx, uint32_t dst, uint64_t offset, void* buf, size_t len) {
  RdmaNic* dst_nic = fabric_->nic(dst);
  if (!ChargeVerb(ctx, dst_nic, cost_->rdma_read_ns, len)) {
    return Status::kAborted;
  }
  obs::CountVerb(obs::Verb::kRead, node_id_, dst, len);
  if (Status s = ApplyFaults(ctx, dst); s != Status::kOk) {
    return s;
  }
  fabric_->bus(dst)->Read(/*ctx=*/nullptr, offset, buf, len);
  return Status::kOk;
}

Status RdmaNic::ReadTimeout(ThreadContext* ctx, uint32_t dst, uint64_t offset, void* buf,
                            size_t len, uint64_t timeout_ns) {
  RdmaNic* dst_nic = fabric_->nic(dst);
  if (!ChargeVerb(ctx, dst_nic, cost_->rdma_read_ns, len)) {
    return Status::kAborted;
  }
  obs::CountVerb(obs::Verb::kRead, node_id_, dst, len);
  if (Status s = ApplyFaultsBounded(ctx, dst, timeout_ns); s != Status::kOk) {
    return s;
  }
  fabric_->bus(dst)->Read(/*ctx=*/nullptr, offset, buf, len);
  return Status::kOk;
}

Status RdmaNic::Write(ThreadContext* ctx, uint32_t dst, uint64_t offset, const void* src,
                      size_t len) {
  RdmaNic* dst_nic = fabric_->nic(dst);
  if (!ChargeVerb(ctx, dst_nic, cost_->rdma_write_ns, len)) {
    return Status::kAborted;
  }
  obs::CountVerb(obs::Verb::kWrite, node_id_, dst, len);
  if (Status s = ApplyFaults(ctx, dst); s != Status::kOk) {
    return s;
  }
  if (Status s = FenceCheck(dst); s != Status::kOk) {
    return s;
  }
  AnalyzerVerbAdmitted(fabric_, node_id_, dst);
  chk::ScopedActor actor(node_id_, ctx->worker_id);
  fabric_->bus(dst)->Write(/*ctx=*/nullptr, offset, src, len);
  return Status::kOk;
}

Status RdmaNic::CompareSwap(ThreadContext* ctx, uint32_t dst, uint64_t offset, uint64_t expected,
                            uint64_t desired, uint64_t* observed) {
  RdmaNic* dst_nic = fabric_->nic(dst);
  if (!ChargeVerb(ctx, dst_nic, cost_->rdma_atomic_ns, sizeof(uint64_t))) {
    return Status::kAborted;
  }
  obs::CountVerb(obs::Verb::kCas, node_id_, dst, sizeof(uint64_t));
  if (Status s = ApplyFaults(ctx, dst); s != Status::kOk) {
    return s;
  }
  if (Status s = FenceCheck(dst); s != Status::kOk) {
    return s;
  }
  // Under IBV_ATOMIC_HCA, atomics are serialized by the target HCA rather
  // than by the host's coherence fabric: reserve the NIC's atomic unit in
  // virtual time. The actual memory update still goes through the bus so the
  // simulation stays race-free; see DESIGN.md §6 for the fidelity note.
  if (fabric_->atomicity() == AtomicityLevel::kHca) {
    const uint64_t start = dst_nic->atomic_unit_.Reserve(ctx->clock.now_ns(), 1);
    ctx->clock.AdvanceTo(start + 1);
  }
  AnalyzerVerbAdmitted(fabric_, node_id_, dst);
  chk::ScopedActor actor(node_id_, ctx->worker_id);
  const bool swapped = fabric_->bus(dst)->CasU64(/*ctx=*/nullptr, offset, expected, desired,
                                                 observed);
  return swapped ? Status::kOk : Status::kConflict;
}

Status RdmaNic::FetchAdd(ThreadContext* ctx, uint32_t dst, uint64_t offset, uint64_t delta,
                         uint64_t* old_value) {
  RdmaNic* dst_nic = fabric_->nic(dst);
  if (!ChargeVerb(ctx, dst_nic, cost_->rdma_atomic_ns, sizeof(uint64_t))) {
    return Status::kAborted;
  }
  obs::CountVerb(obs::Verb::kFaa, node_id_, dst, sizeof(uint64_t));
  if (Status s = ApplyFaults(ctx, dst); s != Status::kOk) {
    return s;
  }
  if (Status s = FenceCheck(dst); s != Status::kOk) {
    return s;
  }
  AnalyzerVerbAdmitted(fabric_, node_id_, dst);
  chk::ScopedActor actor(node_id_, ctx->worker_id);
  const uint64_t old = fabric_->bus(dst)->FetchAddU64(/*ctx=*/nullptr, offset, delta);
  if (old_value != nullptr) {
    *old_value = old;
  }
  return Status::kOk;
}

Status RdmaNic::Send(ThreadContext* ctx, uint32_t dst, std::vector<std::byte> payload,
                     uint32_t qp) {
  DRTMR_CHECK(qp < kRecvQueues);
  RdmaNic* dst_nic = fabric_->nic(dst);
  if (!ChargeVerb(ctx, dst_nic, cost_->send_recv_ns, payload.size())) {
    return Status::kAborted;
  }
  obs::CountVerb(obs::Verb::kSend, node_id_, dst, payload.size());
  if (Status s = ApplyFaults(ctx, dst); s != Status::kOk) {
    return s;
  }
  if (Status s = FenceCheck(dst); s != Status::kOk) {
    return s;
  }
  AnalyzerVerbAdmitted(fabric_, node_id_, dst);
  Message m;
  m.src_node = node_id_;
  m.payload = std::move(payload);
  std::lock_guard<std::mutex> g(dst_nic->recv_mu_[qp]);
  dst_nic->recv_queue_[qp].push_back(std::move(m));
  return Status::kOk;
}

bool RdmaNic::TryRecv(ThreadContext* ctx, Message* out, uint32_t qp) {
  DRTMR_CHECK(qp < kRecvQueues);
  std::lock_guard<std::mutex> g(recv_mu_[qp]);
  if (recv_queue_[qp].empty()) {
    return false;
  }
  *out = std::move(recv_queue_[qp].front());
  recv_queue_[qp].pop_front();
  if (ctx != nullptr) {
    ctx->Charge(cost_->line_access_ns);
  }
  return true;
}

}  // namespace drtmr::sim
