// Deterministic fault injection for the torture harness (DESIGN.md §9).
//
// A FaultPlan is an immutable set of rules, each scoped to a window of
// *virtual* time, that the simulated hardware consults on every RDMA verb and
// HTM commit. Decisions are functions of (the issuing thread's per-thread RNG,
// the thread's virtual clock, the rule parameters), so a run is reproducible
// from (workload seed, plan): thread interleaving in real time never changes
// which faults fire, only — as in any concurrent run — which transactions
// collide.
//
// Fault taxonomy (mapped onto the paper's failure model, §5):
//  * kDelay      — a verb between (src, dst) is charged extra latency with
//                  probability ppm/1e6. Posted verbs' completions are pushed
//                  out instead, which also reorders batch completion order.
//  * kDrop       — a verb between (src, dst) is LOST (returns kUnavailable
//                  without performing the remote access). Real lossless RDMA
//                  fabrics do not do this; drop rules exist to demonstrate
//                  that the serializability checker catches the resulting
//                  protocol violations (torture "teeth" tests), not to model
//                  sanctioned behavior.
//  * kPartition  — verbs crossing the (a, b) cut during the window stall (in
//                  virtual time) until the window closes, then deliver: the
//                  lossless-fabric rendering of a transient partition, per the
//                  paper's reliable-transport assumption. a == kAnyNode makes
//                  it a full freeze of b.
//  * kKill       — permanent fail-stop at a virtual instant: from `from_ns`
//                  on, every verb from or to the node returns kUnavailable.
//                  Recovery (rep::RecoveryManager) is the harness's job.
//  * kHtmAbort   — an HTM region opened at a matching call site aborts at
//                  commit with the given code (capacity/conflict), with
//                  probability ppm/1e6: drives the §6.1 fallback paths.
#ifndef DRTMR_SRC_SIM_FAULT_H_
#define DRTMR_SRC_SIM_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace drtmr::sim {

struct ThreadContext;

// [from_ns, until_ns) in virtual time; until_ns == 0 means "forever".
struct FaultWindow {
  uint64_t from_ns = 0;
  uint64_t until_ns = 0;

  bool Contains(uint64_t now_ns) const {
    return now_ns >= from_ns && (until_ns == 0 || now_ns < until_ns);
  }
};

class FaultPlan {
 public:
  static constexpr uint32_t kAnyNode = ~0u;
  static constexpr uint64_t kPpmAlways = 1000000;

  explicit FaultPlan(uint64_t seed = 0) : seed_(seed) {}

  // ---- builders (chainable) ----

  FaultPlan& DelayVerbs(uint32_t src, uint32_t dst, FaultWindow win, uint64_t extra_ns,
                        uint64_t ppm = kPpmAlways);
  FaultPlan& DropVerbs(uint32_t src, uint32_t dst, FaultWindow win, uint64_t ppm);
  // Symmetric: verbs in either direction across the (a, b) cut stall.
  FaultPlan& Partition(uint32_t a, uint32_t b, FaultWindow win);
  // Full isolation of `node` (network freeze) during the window.
  FaultPlan& Freeze(uint32_t node, FaultWindow win) { return Partition(kAnyNode, node, win); }
  // Permanent fail-stop of `node` at virtual time `at_ns`.
  FaultPlan& KillAt(uint32_t node, uint64_t at_ns);
  // Force HTM regions opened at `site` to abort at commit with `code`
  // (sim::HtmTxn::AbortCode numeric value) with probability ppm/1e6.
  FaultPlan& ForceHtmAbort(obs::HtmSite site, uint32_t abort_code, uint64_t ppm,
                           FaultWindow win = {});

  // ---- queries (hot path; plan is immutable while installed) ----

  enum class VerbFate : uint8_t { kDeliver = 0, kDrop, kUnreachable };

  // Decides the fate of one verb from src to dst issued at the caller's
  // current virtual time. On kDeliver, *extra_delay_ns accumulates injected
  // latency and *stall_until_ns is raised to the close of any partition
  // window the verb had to wait out (0 if none).
  VerbFate OnVerb(ThreadContext* ctx, uint32_t src, uint32_t dst, uint64_t* extra_delay_ns,
                  uint64_t* stall_until_ns) const;

  // Non-zero AbortCode value if a region at `site` must abort now.
  uint32_t ForcedHtmAbort(ThreadContext* ctx, obs::HtmSite site, uint64_t now_ns) const;

  // Virtual time of the permanent kill of `node`; ~0 if the plan never kills
  // it. Harness worker loops use this to park the victim's threads at a
  // transaction boundary.
  uint64_t KillTimeOf(uint32_t node) const;

  // End of the latest freeze/partition window covering `node` at `now_ns`
  // (0 if the node is not frozen). Harness loops advance the victim's clock
  // past it so "its machine was stalled" is reflected in virtual time.
  uint64_t FrozenUntil(uint32_t node, uint64_t now_ns) const;

  uint64_t seed() const { return seed_; }
  size_t num_rules() const { return rules_.size(); }
  bool empty() const { return rules_.empty(); }

  // Shrinking support: the same plan minus rule `index`.
  FaultPlan WithoutRule(size_t index) const;
  // One line per rule, for failure reproduction printouts.
  std::string Describe() const;

 private:
  enum class Kind : uint8_t { kDelay, kDrop, kPartition, kKill, kHtmAbort };

  struct Rule {
    Kind kind;
    uint32_t a = kAnyNode;  // src / partition side / victim
    uint32_t b = kAnyNode;  // dst / partition side
    FaultWindow win;
    uint64_t ppm = kPpmAlways;
    uint64_t extra_ns = 0;
    uint32_t abort_code = 0;
    obs::HtmSite site = obs::HtmSite::kOther;
  };

  static bool MatchesNode(uint32_t rule_node, uint32_t node) {
    return rule_node == kAnyNode || rule_node == node;
  }
  static bool MatchesPair(const Rule& r, uint32_t src, uint32_t dst) {
    return (MatchesNode(r.a, src) && MatchesNode(r.b, dst)) ||
           (MatchesNode(r.a, dst) && MatchesNode(r.b, src));
  }

  uint64_t seed_;
  std::vector<Rule> rules_;
};

}  // namespace drtmr::sim

#endif  // DRTMR_SRC_SIM_FAULT_H_
