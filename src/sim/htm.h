// Software simulation of Intel Restricted Transactional Memory (RTM).
//
// An HtmTxn corresponds to one XBEGIN..XEND region. Semantics reproduced:
//  * cache-line-granularity read/write sets with bounded capacity
//    (capacity aborts; the write set models the 32KB L1 budget, §6.4);
//  * eager conflict detection with strong atomicity — conflicting accesses
//    from outside the region (plain CPU ops or RDMA verbs) doom the region;
//  * buffered (speculative) writes invisible until an atomic commit;
//  * explicit aborts (XABORT), used by the protocol when a local read finds a
//    record locked by a remote committer (Fig. 5);
//  * best-effort only: no forward-progress guarantee, hence the transaction
//    layer's fallback handler (§6.1);
//  * no I/O: any RDMA verb issued while inside the region aborts it (the NIC
//    enforces this via ThreadContext::current_htm).
//
// Control flow is status-based rather than setjmp-based: every operation
// returns a Status, and callers bail out on kAborted. The enclosing retry
// loop lives in the transaction layer, as it would around XBEGIN.
#ifndef DRTMR_SRC_SIM_HTM_H_
#define DRTMR_SRC_SIM_HTM_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sim/memory_bus.h"
#include "src/sim/thread_context.h"
#include "src/util/status.h"

namespace drtmr::sim {

class FaultPlan;

struct HtmConfig {
  uint32_t read_lines_cap = 1024;  // lines trackable in the read set
  uint32_t write_lines_cap = 512;  // 32KB L1 / 64B lines
};

class HtmEngine;

class HtmTxn {
 public:
  enum class AbortCode : uint32_t {
    kNone = 0,
    kConflict = HtmDesc::kConflict,
    kCapacity = HtmDesc::kCapacity,
    kExplicit = HtmDesc::kExplicit,
    kIo = HtmDesc::kIo,
  };

  // All accessors return kOk, or kAborted once the region is doomed/ended.
  Status Read(uint64_t offset, void* dst, size_t len);
  Status Write(uint64_t offset, const void* src, size_t len);
  Status ReadU64(uint64_t offset, uint64_t* value);
  Status WriteU64(uint64_t offset, uint64_t value);

  // XEND. Returns kOk if the region committed atomically, kAborted otherwise.
  // Either way the region is over afterwards.
  Status Commit();
  // XABORT. Ends the region, discarding buffered writes.
  void Abort(AbortCode code = AbortCode::kExplicit);

  bool active() const;
  AbortCode abort_code() const { return last_abort_; }

 private:
  friend class HtmEngine;
  HtmTxn(HtmEngine* engine, MemoryBus* bus, HtmDesc* desc) : engine_(engine), bus_(bus), desc_(desc) {}

  void BeginInternal(ThreadContext* ctx, obs::HtmSite site);
  bool CrossSocketEviction(uint64_t offset, size_t len);
  // Ends the region: clears sets/redo and detaches from the thread context.
  void End(bool committed);
  // Copies buffered bytes overlapping [offset, offset+len) over dst.
  void OverlayRedo(uint64_t offset, void* dst, size_t len) const;

  HtmEngine* engine_;
  MemoryBus* bus_;
  HtmDesc* desc_;
  ThreadContext* ctx_ = nullptr;
  bool in_txn_ = false;
  AbortCode last_abort_ = AbortCode::kNone;
  obs::HtmSite site_ = obs::HtmSite::kOther;  // call site, keys the abort taxonomy
  std::vector<RedoEntry> redo_;
};

class HtmEngine {
 public:
  struct Stats {
    std::atomic<uint64_t> begins{0};
    std::atomic<uint64_t> commits{0};
    std::atomic<uint64_t> aborts_conflict{0};
    std::atomic<uint64_t> aborts_capacity{0};
    std::atomic<uint64_t> aborts_explicit{0};
    std::atomic<uint64_t> aborts_io{0};

    uint64_t TotalAborts() const {
      return aborts_conflict + aborts_capacity + aborts_explicit + aborts_io;
    }
  };

  HtmEngine(MemoryBus* bus, const CostModel* cost);
  HtmEngine(const HtmEngine&) = delete;
  HtmEngine& operator=(const HtmEngine&) = delete;
  ~HtmEngine();

  // XBEGIN on the calling thread (slot = ctx->worker_id). Returns nullptr if
  // the thread is already inside a region (we do not model flattened nesting).
  // `site` tags the region for the observability abort taxonomy (§6.4).
  HtmTxn* Begin(ThreadContext* ctx, obs::HtmSite site = obs::HtmSite::kOther);

  Stats& stats() { return stats_; }
  MemoryBus* bus() { return bus_; }
  const CostModel* cost() const { return cost_; }

  // Fault injection (sim/fault.h): regions whose call site matches a
  // ForceHtmAbort rule abort at XEND instead of committing, exercising the
  // fallback handler deterministically. nullptr clears.
  void set_fault_plan(const FaultPlan* plan) {
    fault_plan_.store(plan, std::memory_order_release);
  }
  const FaultPlan* fault_plan() const { return fault_plan_.load(std::memory_order_acquire); }

 private:
  friend class HtmTxn;
  void RecordAbort(HtmTxn::AbortCode code);

  MemoryBus* bus_;
  const CostModel* cost_;
  std::vector<HtmTxn*> txns_;  // one per descriptor slot
  Stats stats_;
  std::atomic<const FaultPlan*> fault_plan_{nullptr};
};

}  // namespace drtmr::sim

#endif  // DRTMR_SRC_SIM_HTM_H_
