#include "src/sim/memory_bus.h"

#include <algorithm>
#include <cstring>

#include "src/chk/protocol_analyzer.h"
#include "src/util/logging.h"

namespace drtmr::sim {

LineSet::LineSet(uint32_t capacity) : capacity_(capacity), entries_(capacity) {}

bool LineSet::Add(uint64_t line) {
  if (Contains(line)) {
    return true;
  }
  const uint32_t sz = size_.load(std::memory_order_relaxed);
  if (sz >= capacity_) {
    return false;
  }
  entries_[sz].store(line, std::memory_order_relaxed);
  summary_.store(summary_.load(std::memory_order_relaxed) | SummaryBit(line),
                 std::memory_order_relaxed);
  size_.store(sz + 1, std::memory_order_release);
  return true;
}

bool LineSet::Contains(uint64_t line) const {
  if ((summary_.load(std::memory_order_relaxed) & SummaryBit(line)) == 0) {
    return false;
  }
  const uint32_t sz = size_.load(std::memory_order_acquire);
  for (uint32_t i = 0; i < sz; ++i) {
    if (entries_[i].load(std::memory_order_relaxed) == line) {
      return true;
    }
  }
  return false;
}

void LineSet::Clear() {
  size_.store(0, std::memory_order_relaxed);
  summary_.store(0, std::memory_order_relaxed);
}

MemoryBus::MemoryBus(size_t size, const CostModel* cost, uint32_t slots, uint32_t htm_read_cap,
                     uint32_t htm_write_cap)
    : size_(size),
      mem_(new std::byte[size]),
      cost_(cost),
      stripes_(new Spinlock[kStripes]) {
  std::memset(mem_.get(), 0, size);
  descs_.reserve(slots);
  for (uint32_t i = 0; i < slots; ++i) {
    descs_.push_back(std::make_unique<HtmDesc>(htm_read_cap, htm_write_cap));
  }
}

MemoryBus::~MemoryBus() { chk::ProtocolAnalyzer::Global().ForgetBus(this); }

void MemoryBus::ChargeLines(ThreadContext* ctx, uint64_t nlines) {
  if (ctx != nullptr) {
    ctx->Charge(nlines * cost_->line_access_ns * cost_scale_pct_.load(std::memory_order_relaxed) /
                100);
  }
}

void MemoryBus::DoomConflicting(HtmDesc* self, uint64_t line, bool is_write) {
  for (auto& d : descs_) {
    HtmDesc* other = d.get();
    if (other == self || other->state.load(std::memory_order_acquire) != HtmDesc::kActive) {
      continue;
    }
    if (other->writes.Contains(line) || (is_write && other->reads.Contains(line))) {
      other->Doom(HtmDesc::kConflict);
    }
  }
}

void MemoryBus::Read(ThreadContext* ctx, uint64_t offset, void* dst, size_t len) {
  DRTMR_CHECK(offset + len <= size_) << offset << "+" << len;
  const uint64_t first = LineOf(offset);
  const uint64_t end = LineEnd(offset, len);
  auto* out = static_cast<std::byte*>(dst);
  for (uint64_t line = first; line < end; ++line) {
    const uint64_t lo = std::max<uint64_t>(offset, line * kCacheLineSize);
    const uint64_t hi = std::min<uint64_t>(offset + len, (line + 1) * kCacheLineSize);
    Spinlock& s = StripeFor(line);
    s.lock();
    std::memcpy(out + (lo - offset), mem_.get() + lo, hi - lo);
    DoomConflicting(nullptr, line, /*is_write=*/false);
    if (chk::AnalyzerEnabled()) {
      chk::ProtocolAnalyzer::Global().CheckStrongAtomicity(this, line, /*is_write=*/false,
                                                           nullptr);
    }
    s.unlock();
  }
  ChargeLines(ctx, end - first);
}

void MemoryBus::Write(ThreadContext* ctx, uint64_t offset, const void* src, size_t len) {
  DRTMR_CHECK(offset + len <= size_) << offset << "+" << len;
  if (chk::AnalyzerEnabled()) {
    // Pre-state evaluation: the conformance rules judge the store against the
    // record's protection *before* its bytes land (see DESIGN.md §11).
    chk::ProtocolAnalyzer::Global().OnPlainWrite(this, ctx, offset, src, len);
  }
  const uint64_t first = LineOf(offset);
  const uint64_t end = LineEnd(offset, len);
  const auto* in = static_cast<const std::byte*>(src);
  for (uint64_t line = first; line < end; ++line) {
    const uint64_t lo = std::max<uint64_t>(offset, line * kCacheLineSize);
    const uint64_t hi = std::min<uint64_t>(offset + len, (line + 1) * kCacheLineSize);
    Spinlock& s = StripeFor(line);
    s.lock();
    std::memcpy(mem_.get() + lo, in + (lo - offset), hi - lo);
    DoomConflicting(nullptr, line, /*is_write=*/true);
    if (chk::AnalyzerEnabled()) {
      chk::ProtocolAnalyzer::Global().CheckStrongAtomicity(this, line, /*is_write=*/true,
                                                           nullptr);
    }
    s.unlock();
  }
  ChargeLines(ctx, end - first);
}

uint64_t MemoryBus::ReadU64(ThreadContext* ctx, uint64_t offset) {
  uint64_t v = 0;
  Read(ctx, offset, &v, sizeof(v));
  return v;
}

void MemoryBus::WriteU64(ThreadContext* ctx, uint64_t offset, uint64_t value) {
  Write(ctx, offset, &value, sizeof(value));
}

bool MemoryBus::CasU64(ThreadContext* ctx, uint64_t offset, uint64_t expected, uint64_t desired,
                       uint64_t* observed) {
  DRTMR_CHECK(offset % 8 == 0 && offset + 8 <= size_) << offset;
  const uint64_t line = LineOf(offset);
  Spinlock& s = StripeFor(line);
  s.lock();
  uint64_t cur;
  std::memcpy(&cur, mem_.get() + offset, sizeof(cur));
  const bool swapped = (cur == expected);
  if (swapped) {
    std::memcpy(mem_.get() + offset, &desired, sizeof(desired));
  }
  // A successful CAS is a write for conflict purposes; a failed one is a read.
  DoomConflicting(nullptr, line, /*is_write=*/swapped);
  if (chk::AnalyzerEnabled()) {
    chk::ProtocolAnalyzer::Global().CheckStrongAtomicity(this, line, swapped, nullptr);
  }
  s.unlock();
  if (observed != nullptr) {
    *observed = cur;
  }
  if (chk::AnalyzerEnabled()) {
    chk::ProtocolAnalyzer::Global().OnCas(this, ctx, offset, expected, desired, cur, swapped);
  }
  ChargeLines(ctx, 1);
  return swapped;
}

uint64_t MemoryBus::FetchAddU64(ThreadContext* ctx, uint64_t offset, uint64_t delta) {
  DRTMR_CHECK(offset % 8 == 0 && offset + 8 <= size_) << offset;
  const uint64_t line = LineOf(offset);
  Spinlock& s = StripeFor(line);
  s.lock();
  uint64_t cur;
  std::memcpy(&cur, mem_.get() + offset, sizeof(cur));
  const uint64_t next = cur + delta;
  std::memcpy(mem_.get() + offset, &next, sizeof(next));
  DoomConflicting(nullptr, line, /*is_write=*/true);
  if (chk::AnalyzerEnabled()) {
    chk::ProtocolAnalyzer::Global().CheckStrongAtomicity(this, line, /*is_write=*/true, nullptr);
  }
  s.unlock();
  ChargeLines(ctx, 1);
  return cur;
}

bool MemoryBus::TxRead(ThreadContext* ctx, HtmDesc* self, uint64_t offset, void* dst, size_t len) {
  DRTMR_CHECK(offset + len <= size_) << offset << "+" << len;
  const uint64_t first = LineOf(offset);
  const uint64_t end = LineEnd(offset, len);
  auto* out = static_cast<std::byte*>(dst);
  for (uint64_t line = first; line < end; ++line) {
    const uint64_t lo = std::max<uint64_t>(offset, line * kCacheLineSize);
    const uint64_t hi = std::min<uint64_t>(offset + len, (line + 1) * kCacheLineSize);
    Spinlock& s = StripeFor(line);
    s.lock();
    if (self->state.load(std::memory_order_acquire) != HtmDesc::kActive) {
      s.unlock();
      return false;
    }
    std::memcpy(out + (lo - offset), mem_.get() + lo, hi - lo);
    // A transactional read conflicts with other transactions' speculative
    // writes; requester wins (the writer is doomed), matching RTM's
    // coherence-driven eager conflict resolution.
    DoomConflicting(self, line, /*is_write=*/false);
    if (!self->reads.Add(line)) {
      self->Doom(HtmDesc::kCapacity);
      s.unlock();
      return false;
    }
    s.unlock();
  }
  ChargeLines(ctx, end - first);
  return true;
}

bool MemoryBus::TxRegisterWrite(ThreadContext* ctx, HtmDesc* self, uint64_t offset, size_t len) {
  DRTMR_CHECK(offset + len <= size_) << offset << "+" << len;
  const uint64_t first = LineOf(offset);
  const uint64_t end = LineEnd(offset, len);
  for (uint64_t line = first; line < end; ++line) {
    Spinlock& s = StripeFor(line);
    s.lock();
    if (self->state.load(std::memory_order_acquire) != HtmDesc::kActive) {
      s.unlock();
      return false;
    }
    DoomConflicting(self, line, /*is_write=*/true);
    if (!self->writes.Add(line)) {
      self->Doom(HtmDesc::kCapacity);
      s.unlock();
      return false;
    }
    s.unlock();
  }
  ChargeLines(ctx, end - first);
  return true;
}

bool MemoryBus::TxCommitApply(ThreadContext* ctx, HtmDesc* self,
                              const std::vector<RedoEntry>& redo) {
  // Collect the distinct stripes covering every redo byte, lock them all in
  // sorted order (two concurrent commits therefore cannot deadlock), verify
  // the transaction is still alive, then apply. Holding every stripe for the
  // duration makes the commit atomic at line granularity, like real RTM.
  uint32_t stripe_ids[kStripes];
  uint32_t n_stripes = 0;
  bool seen[kStripes] = {};
  uint64_t nlines = 0;
  for (const auto& e : redo) {
    const uint64_t first = LineOf(e.offset);
    const uint64_t end = LineEnd(e.offset, e.data.size());
    nlines += end - first;
    for (uint64_t line = first; line < end; ++line) {
      const uint32_t sid = static_cast<uint32_t>(line & (kStripes - 1));
      if (!seen[sid]) {
        seen[sid] = true;
        stripe_ids[n_stripes++] = sid;
      }
    }
  }
  std::sort(stripe_ids, stripe_ids + n_stripes);
  for (uint32_t i = 0; i < n_stripes; ++i) {
    stripes_[stripe_ids[i]].lock();
  }
  const bool alive = self->state.load(std::memory_order_acquire) == HtmDesc::kActive;
  if (alive) {
    for (const auto& e : redo) {
      DRTMR_CHECK(e.offset + e.data.size() <= size_);
      std::memcpy(mem_.get() + e.offset, e.data.data(), e.data.size());
    }
    // Mark the descriptor free *before* releasing the stripes so a late
    // conflicting access cannot doom an already-committed transaction.
    self->state.store(HtmDesc::kFree, std::memory_order_release);
  }
  for (uint32_t i = n_stripes; i > 0; --i) {
    stripes_[stripe_ids[i - 1]].unlock();
  }
  ChargeLines(ctx, nlines);
  return alive;
}

}  // namespace drtmr::sim
