// Per-worker-thread context threaded through every simulated hardware
// operation: the thread's virtual clock, its RNG, its identity, and the HTM
// transaction it is currently inside of (if any). The NIC uses the latter to
// enforce RTM's no-I/O rule: issuing any RDMA verb inside an HTM region
// unconditionally aborts the region.
#ifndef DRTMR_SRC_SIM_THREAD_CONTEXT_H_
#define DRTMR_SRC_SIM_THREAD_CONTEXT_H_

#include <cstdint>

#include "src/util/rand.h"
#include "src/util/sim_clock.h"

namespace drtmr::sim {

class HtmTxn;

struct ThreadContext {
  ThreadContext(uint32_t node, uint32_t worker, uint64_t seed)
      : node_id(node), worker_id(worker), rng(seed) {}

  uint32_t node_id = 0;
  uint32_t worker_id = 0;  // index within the node, also the HTM descriptor slot
  SimClock clock;
  FastRand rng;
  HtmTxn* current_htm = nullptr;  // non-null while inside an HTM region

  void Charge(uint64_t ns) { clock.Advance(ns); }
};

}  // namespace drtmr::sim

#endif  // DRTMR_SRC_SIM_THREAD_CONTEXT_H_
