#include "src/sim/fault.h"

#include <cstdio>

#include "src/sim/thread_context.h"
#include "src/util/logging.h"

namespace drtmr::sim {

namespace {

// Bernoulli draw with probability ppm/1e6 from the issuing thread's RNG.
// Thread RNGs are seeded deterministically at node construction, so the draw
// sequence per thread is a pure function of the workload seed.
bool Draw(ThreadContext* ctx, uint64_t ppm) {
  if (ppm >= FaultPlan::kPpmAlways) {
    return true;
  }
  return ctx->rng.Uniform(FaultPlan::kPpmAlways) < ppm;
}

const char* SiteName(obs::HtmSite site) {
  switch (site) {
    case obs::HtmSite::kLocalRead:
      return "local_read";
    case obs::HtmSite::kCommit:
      return "commit";
    case obs::HtmSite::kStore:
      return "store";
    case obs::HtmSite::kBaseline:
      return "baseline";
    case obs::HtmSite::kOther:
    case obs::HtmSite::kCount:
      break;
  }
  return "other";
}

void AppendNode(std::string* out, uint32_t node) {
  if (node == FaultPlan::kAnyNode) {
    out->append("*");
  } else {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%u", node);
    out->append(buf);
  }
}

void AppendWindow(std::string* out, const FaultWindow& win) {
  char buf[64];
  if (win.until_ns == 0) {
    std::snprintf(buf, sizeof(buf), "[%llu, inf)", static_cast<unsigned long long>(win.from_ns));
  } else {
    std::snprintf(buf, sizeof(buf), "[%llu, %llu)", static_cast<unsigned long long>(win.from_ns),
                  static_cast<unsigned long long>(win.until_ns));
  }
  out->append(buf);
}

}  // namespace

FaultPlan& FaultPlan::DelayVerbs(uint32_t src, uint32_t dst, FaultWindow win, uint64_t extra_ns,
                                 uint64_t ppm) {
  Rule r;
  r.kind = Kind::kDelay;
  r.a = src;
  r.b = dst;
  r.win = win;
  r.ppm = ppm;
  r.extra_ns = extra_ns;
  rules_.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::DropVerbs(uint32_t src, uint32_t dst, FaultWindow win, uint64_t ppm) {
  Rule r;
  r.kind = Kind::kDrop;
  r.a = src;
  r.b = dst;
  r.win = win;
  r.ppm = ppm;
  rules_.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::Partition(uint32_t a, uint32_t b, FaultWindow win) {
  Rule r;
  r.kind = Kind::kPartition;
  r.a = a;
  r.b = b;
  r.win = win;
  rules_.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::KillAt(uint32_t node, uint64_t at_ns) {
  DRTMR_CHECK(node != kAnyNode) << "KillAt needs a concrete node";
  Rule r;
  r.kind = Kind::kKill;
  r.a = node;
  r.win = {at_ns, 0};
  rules_.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::ForceHtmAbort(obs::HtmSite site, uint32_t abort_code, uint64_t ppm,
                                    FaultWindow win) {
  Rule r;
  r.kind = Kind::kHtmAbort;
  r.win = win;
  r.ppm = ppm;
  r.abort_code = abort_code;
  r.site = site;
  rules_.push_back(r);
  return *this;
}

FaultPlan::VerbFate FaultPlan::OnVerb(ThreadContext* ctx, uint32_t src, uint32_t dst,
                                      uint64_t* extra_delay_ns, uint64_t* stall_until_ns) const {
  const uint64_t now = ctx->clock.now_ns();

  // Partitions first: a verb crossing an open cut waits (losslessly, in
  // virtual time) for every covering window to close. The scan repeats
  // because waiting out one window can land the verb inside another.
  uint64_t eff = now;
  for (bool moved = true; moved;) {
    moved = false;
    for (const Rule& r : rules_) {
      if (r.kind != Kind::kPartition || !MatchesPair(r, src, dst) || !r.win.Contains(eff)) {
        continue;
      }
      if (r.win.until_ns == 0) {
        return VerbFate::kUnreachable;  // permanent partition: like fail-stop
      }
      eff = r.win.until_ns;
      moved = true;
    }
  }
  if (eff > now && stall_until_ns != nullptr && eff > *stall_until_ns) {
    *stall_until_ns = eff;
  }

  for (const Rule& r : rules_) {
    switch (r.kind) {
      case Kind::kKill:
        // Evaluated at the post-stall instant: a verb that waited out a
        // partition and emerges after the kill finds the node gone.
        if ((r.a == src || r.a == dst) && eff >= r.win.from_ns) {
          return VerbFate::kUnreachable;
        }
        break;
      case Kind::kDrop:
        if (MatchesPair(r, src, dst) && r.win.Contains(now) && Draw(ctx, r.ppm)) {
          return VerbFate::kDrop;
        }
        break;
      case Kind::kDelay:
        if (MatchesPair(r, src, dst) && r.win.Contains(now) && Draw(ctx, r.ppm) &&
            extra_delay_ns != nullptr) {
          *extra_delay_ns += r.extra_ns;
        }
        break;
      case Kind::kPartition:
      case Kind::kHtmAbort:
        break;
    }
  }
  return VerbFate::kDeliver;
}

uint32_t FaultPlan::ForcedHtmAbort(ThreadContext* ctx, obs::HtmSite site, uint64_t now_ns) const {
  for (const Rule& r : rules_) {
    if (r.kind == Kind::kHtmAbort && r.site == site && r.win.Contains(now_ns) &&
        Draw(ctx, r.ppm)) {
      return r.abort_code;
    }
  }
  return 0;
}

uint64_t FaultPlan::KillTimeOf(uint32_t node) const {
  uint64_t earliest = ~0ull;
  for (const Rule& r : rules_) {
    if (r.kind == Kind::kKill && r.a == node && r.win.from_ns < earliest) {
      earliest = r.win.from_ns;
    }
  }
  return earliest;
}

uint64_t FaultPlan::FrozenUntil(uint32_t node, uint64_t now_ns) const {
  // Only full-isolation rules (one side == kAnyNode) freeze a node outright;
  // a pairwise partition still lets it talk to third parties.
  uint64_t until = 0;
  for (const Rule& r : rules_) {
    if (r.kind != Kind::kPartition || r.win.until_ns == 0) {
      continue;
    }
    const bool freezes = (r.a == kAnyNode && r.b == node) || (r.b == kAnyNode && r.a == node);
    if (freezes && r.win.Contains(now_ns) && r.win.until_ns > until) {
      until = r.win.until_ns;
    }
  }
  return until;
}

FaultPlan FaultPlan::WithoutRule(size_t index) const {
  FaultPlan out(seed_);
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (i != index) {
      out.rules_.push_back(rules_[i]);
    }
  }
  return out;
}

std::string FaultPlan::Describe() const {
  std::string out;
  char buf[96];
  for (size_t i = 0; i < rules_.size(); ++i) {
    const Rule& r = rules_[i];
    std::snprintf(buf, sizeof(buf), "  rule %zu: ", i);
    out.append(buf);
    switch (r.kind) {
      case Kind::kDelay:
        out.append("delay ");
        AppendNode(&out, r.a);
        out.append("<->");
        AppendNode(&out, r.b);
        std::snprintf(buf, sizeof(buf), " +%lluns ppm=%llu ",
                      static_cast<unsigned long long>(r.extra_ns),
                      static_cast<unsigned long long>(r.ppm));
        out.append(buf);
        AppendWindow(&out, r.win);
        break;
      case Kind::kDrop:
        out.append("drop ");
        AppendNode(&out, r.a);
        out.append("<->");
        AppendNode(&out, r.b);
        std::snprintf(buf, sizeof(buf), " ppm=%llu ", static_cast<unsigned long long>(r.ppm));
        out.append(buf);
        AppendWindow(&out, r.win);
        break;
      case Kind::kPartition:
        out.append("partition ");
        AppendNode(&out, r.a);
        out.append("<->");
        AppendNode(&out, r.b);
        out.append(" ");
        AppendWindow(&out, r.win);
        break;
      case Kind::kKill:
        out.append("kill ");
        AppendNode(&out, r.a);
        std::snprintf(buf, sizeof(buf), " at %lluns",
                      static_cast<unsigned long long>(r.win.from_ns));
        out.append(buf);
        break;
      case Kind::kHtmAbort:
        std::snprintf(buf, sizeof(buf), "htm-abort site=%s code=%u ppm=%llu ", SiteName(r.site),
                      r.abort_code, static_cast<unsigned long long>(r.ppm));
        out.append(buf);
        AppendWindow(&out, r.win);
        break;
    }
    out.append("\n");
  }
  if (out.empty()) {
    out = "  (no fault rules)\n";
  }
  return out;
}

}  // namespace drtmr::sim
