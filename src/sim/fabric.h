// Simulated RDMA fabric: one RdmaNic per machine, connected by a Fabric that
// routes one-sided verbs (READ / WRITE / CAS / FETCH_AND_ADD) and two-sided
// SEND/RECV messages into the target machine's MemoryBus.
//
// Properties preserved from real InfiniBand RDMA (§2.1 of the paper):
//  * verbs bypass the remote CPU entirely and are cache-coherent with it —
//    they go through the target MemoryBus, so they doom conflicting HTM
//    transactions (strong consistency meets strong atomicity);
//  * WRITE is atomic per cache line only (the bus applies it line by line);
//  * CAS atomicity level is configurable: IBV_ATOMIC_HCA (atomic only against
//    other RDMA atomics, the paper's ConnectX-3) or IBV_ATOMIC_GLOB (also
//    atomic against CPU atomics). Under kHca the NIC serializes atomics
//    through a per-target-NIC token, and mixing RDMA and local CAS on the
//    same word is counted as a diagnostic (the simulator cannot exhibit the
//    real silent corruption);
//  * issuing any verb inside an HTM region aborts the region (no I/O in RTM);
//  * each NIC is a shared resource with a message rate and bandwidth; verbs
//    reserve it in virtual time, which models NIC saturation (Figs. 15/16).
//
// Failure injection: Kill(node) makes a machine unreachable (fail-stop);
// verbs targeting it return kUnavailable after a timeout charge. Richer,
// deterministic fault schedules (delays, drops, partitions, timed kills) are
// installed via Fabric::set_fault_plan (see sim/fault.h); every verb consults
// the plan after charging its cost.
#ifndef DRTMR_SRC_SIM_FABRIC_H_
#define DRTMR_SRC_SIM_FABRIC_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "src/sim/cost_model.h"
#include "src/sim/fault.h"
#include "src/sim/memory_bus.h"
#include "src/sim/thread_context.h"
#include "src/util/sim_clock.h"
#include "src/util/status.h"

namespace drtmr::sim {

// Address in the partitioned global address space.
struct GlobalAddr {
  uint32_t node = 0;
  uint64_t offset = 0;

  bool operator==(const GlobalAddr&) const = default;
  // Total order used to sort lock acquisition (deadlock avoidance, §6.1).
  auto operator<=>(const GlobalAddr&) const = default;
};

struct Message {
  uint32_t src_node = 0;
  std::vector<std::byte> payload;
};

enum class AtomicityLevel { kHca, kGlob };

class Fabric;

class RdmaNic {
 public:
  static constexpr uint64_t kPostCpuNs = 40;  // WQE build + doorbell

  RdmaNic(Fabric* fabric, uint32_t node_id, const CostModel* cost)
      : fabric_(fabric), node_id_(node_id), cost_(cost) {}

  uint32_t node_id() const { return node_id_; }

  // One-sided verbs. All return kUnavailable if the target machine is dead
  // and kAborted (after dooming the region) if issued inside an HTM region.
  Status Read(ThreadContext* ctx, uint32_t dst, uint64_t offset, void* buf, size_t len);
  Status Write(ThreadContext* ctx, uint32_t dst, uint64_t offset, const void* src, size_t len);
  Status CompareSwap(ThreadContext* ctx, uint32_t dst, uint64_t offset, uint64_t expected,
                     uint64_t desired, uint64_t* observed);
  Status FetchAdd(ThreadContext* ctx, uint32_t dst, uint64_t offset, uint64_t delta,
                  uint64_t* old_value);
  // Read with a bounded transport-retry budget: if a partition/freeze window
  // would stall the verb more than `timeout_ns` past issue, the NIC gives up
  // after charging the timeout and completes with kUnavailable instead of
  // waiting the window out — RC retry_cnt exhaustion on real hardware. The
  // failure detector's probes use this so that probing a frozen peer costs a
  // bounded amount of the prober's own lease.
  Status ReadTimeout(ThreadContext* ctx, uint32_t dst, uint64_t offset, void* buf, size_t len,
                     uint64_t timeout_ns);

  // Posted (pipelined) variants: multiple verbs are pushed back-to-back and
  // their round-trip latencies overlap, as with real doorbell batching. Each
  // call reserves NIC occupancy and charges only the CPU posting cost;
  // `completion_ns` is raised to the verb's simulated completion. Call
  // Fence() once per batch to wait for the slowest verb (e.g. before
  // declaring log writes durable, §5.1).
  Status ReadPosted(ThreadContext* ctx, uint32_t dst, uint64_t offset, void* buf, size_t len,
                    uint64_t* completion_ns);
  Status WritePosted(ThreadContext* ctx, uint32_t dst, uint64_t offset, const void* src,
                     size_t len, uint64_t* completion_ns);
  Status CompareSwapPosted(ThreadContext* ctx, uint32_t dst, uint64_t offset, uint64_t expected,
                           uint64_t desired, uint64_t* observed, uint64_t* completion_ns);
  // Advances the caller past the batch completion plus one verb latency.
  void Fence(ThreadContext* ctx, uint64_t completion_ns, uint64_t latency_ns);

  // ---- doorbell-batched verb chains ----
  //
  // A VerbChain accumulates WRITE work-queue entries destined for one target
  // into a single chained submission: each ChainAppend links a WQE (CPU cost
  // only — no doorbell, no NIC occupancy) and applies the write's memory
  // effects; ChainRing rings one doorbell for the whole chain, reserving NIC
  // occupancy of one full verb plus a discounted per-chained-verb cost and
  // the aggregate payload transfer, and raises *completion_ns like the other
  // posted verbs (Fence() once per batch for durability).
  //
  // Memory effects land at append time, matching WritePosted: in the
  // simulator "posted" verbs take effect at issue and only their virtual-time
  // completion is deferred. The chain is therefore a cost/occupancy batching
  // construct; ordering per target is FIFO by construction (appends apply in
  // program order on the issuing thread).
  struct VerbChain {
    uint32_t dst = 0;
    uint32_t verbs = 0;         // WQEs linked since the last doorbell
    uint64_t bytes = 0;         // aggregate payload of those WQEs
    uint64_t fault_floor_ns = 0;  // injected-fault floor for the chain's completion
    bool open() const { return verbs > 0; }
  };

  // Links one WRITE WQE onto `chain` (which must be closed or already bound
  // to `dst`) and applies its memory effects. Same failure surface as Write:
  // kAborted inside an HTM region (region doomed, nothing written),
  // kUnavailable for dead/dropped, kStaleEpoch when fenced — in every failure
  // case the WQE is not linked and the chain stays valid.
  Status ChainAppend(ThreadContext* ctx, VerbChain* chain, uint32_t dst, uint64_t offset,
                     const void* src, size_t len);
  // Rings the doorbell for `chain`: charges one posting cost, reserves NIC
  // occupancy for the whole chain, raises *completion_ns, and resets the
  // chain. No-op on an empty chain.
  void ChainRing(ThreadContext* ctx, VerbChain* chain, uint64_t* completion_ns);

  // Two-sided messaging (SEND/RECV verbs) — used for insert/delete shipping
  // (§4.3) and by the Calvin baseline (at IPoIB cost, set by the caller).
  // `qp` selects the target receive queue: 0 is the node's service queue,
  // 1 + worker_id addresses a specific worker (RPC replies).
  Status Send(ThreadContext* ctx, uint32_t dst, std::vector<std::byte> payload, uint32_t qp = 0);
  bool TryRecv(ThreadContext* ctx, Message* out, uint32_t qp = 0);

  // Full-duplex DMA engines: independent transmit and receive occupancy.
  struct Occupancy {
    SimResource tx;
    SimResource rx;
    void Reset() {
      tx.Reset();
      rx.Reset();
    }
  };

  // Multiple logical nodes on one machine share a physical NIC (Fig. 12):
  // point this NIC's occupancy at a shared one.
  void ShareOccupancy(Occupancy* shared) { occupancy_ = shared; }
  Occupancy* occupancy() { return occupancy_; }

  uint64_t verbs_issued() const { return verbs_issued_.load(std::memory_order_relaxed); }

 private:
  friend class Fabric;

  // Charges virtual time for a verb of `bytes` payload between this NIC and
  // `dst_nic`, returning false if the HTM no-I/O rule fired. When `posted`,
  // only the CPU posting cost is charged and *completion_ns is raised to the
  // verb's completion; otherwise the caller's clock advances past completion
  // plus latency.
  bool ChargeVerb(ThreadContext* ctx, RdmaNic* dst_nic, uint64_t latency_ns, uint64_t bytes,
                  bool posted = false, uint64_t* completion_ns = nullptr);

  // Liveness check + installed-FaultPlan consultation for one verb to `dst`.
  // Returns kOk to proceed with the remote access, kUnavailable if the verb
  // is lost (dead node, permanent partition, drop rule). Injected delays and
  // partition stalls advance the caller's clock (or raise *completion_ns for
  // posted verbs) before returning.
  Status ApplyFaults(ThreadContext* ctx, uint32_t dst, uint64_t* completion_ns = nullptr);

  // ApplyFaults variant with a bounded stall budget (see ReadTimeout): a
  // partition stall that would exceed now + timeout_ns charges timeout_ns and
  // returns kUnavailable instead of advancing the clock to the window close.
  Status ApplyFaultsBounded(ThreadContext* ctx, uint32_t dst, uint64_t timeout_ns);

  // Epoch-fence admission check for a mutating verb (Fabric::kEpochWordOff):
  // kStaleEpoch if the issuer's stamped epoch lags the target's. Runs at
  // delivery, after ApplyFaults.
  Status FenceCheck(uint32_t dst);

  Fabric* fabric_;
  uint32_t node_id_;
  const CostModel* cost_;
  Occupancy own_occupancy_;
  Occupancy* occupancy_ = &own_occupancy_;
  SimResource atomic_unit_;  // serializes RDMA atomics targeting this NIC (kHca)
  std::atomic<uint64_t> verbs_issued_{0};

  static constexpr uint32_t kRecvQueues = 64;
  std::mutex recv_mu_[kRecvQueues];
  std::deque<Message> recv_queue_[kRecvQueues];
};

class Fabric {
 public:
  explicit Fabric(const CostModel* cost, AtomicityLevel atomicity = AtomicityLevel::kHca)
      : cost_(cost), atomicity_(atomicity) {}

  // Registers a machine's memory with the fabric; returns its node id.
  uint32_t AddNode(MemoryBus* bus);

  size_t num_nodes() const { return nodes_.size(); }
  RdmaNic* nic(uint32_t node) { return nodes_[node]->nic.get(); }
  MemoryBus* bus(uint32_t node) { return nodes_[node]->bus; }
  const CostModel* cost() const { return cost_; }
  AtomicityLevel atomicity() const { return atomicity_; }

  bool alive(uint32_t node) const { return nodes_[node]->alive.load(std::memory_order_acquire); }
  void Kill(uint32_t node) { nodes_[node]->alive.store(false, std::memory_order_release); }
  void Revive(uint32_t node) { nodes_[node]->alive.store(true, std::memory_order_release); }

  // Installs (or clears, with nullptr) the fault plan every verb consults.
  // The plan must outlive its installation and stay immutable while installed.
  void set_fault_plan(const FaultPlan* plan) {
    fault_plan_.store(plan, std::memory_order_release);
  }
  const FaultPlan* fault_plan() const { return fault_plan_.load(std::memory_order_acquire); }

  // ---- epoch fencing (§5.2; DESIGN.md §10) ----
  //
  // Each machine's registered memory reserves the word at kEpochWordOff (the
  // allocator never hands out line 0) for the committed configuration epoch,
  // stamped there by the membership layer. With fencing enabled, every
  // *mutating* verb (WRITE / CAS / FAA / SEND) compares the issuer's epoch
  // word against the target's before touching the target's memory: an issuer
  // whose epoch lags has been fenced out of the configuration and the verb is
  // refused with kStaleEpoch. READs stay exempt so a fenced node can still
  // fetch the current epoch and rejoin. Disabled (the default), the verb path
  // is bit-identical to the unfenced simulator.
  static constexpr uint64_t kEpochWordOff = 0;
  void set_epoch_fencing(bool on) { epoch_fencing_.store(on, std::memory_order_release); }
  bool epoch_fencing() const { return epoch_fencing_.load(std::memory_order_acquire); }
  uint64_t epoch_word(uint32_t node) { return bus(node)->ReadU64(nullptr, kEpochWordOff); }

 private:
  friend class RdmaNic;

  struct NodePort {
    MemoryBus* bus = nullptr;
    std::unique_ptr<RdmaNic> nic;
    std::atomic<bool> alive{true};
  };

  const CostModel* cost_;
  AtomicityLevel atomicity_;
  std::vector<std::unique_ptr<NodePort>> nodes_;
  std::atomic<const FaultPlan*> fault_plan_{nullptr};
  std::atomic<bool> epoch_fencing_{false};
};

}  // namespace drtmr::sim

#endif  // DRTMR_SRC_SIM_FABRIC_H_
