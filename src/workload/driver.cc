#include "src/workload/driver.h"

#include <cstdio>
#include <thread>

#include "src/obs/flight_recorder.h"
#include "src/util/logging.h"
#include "src/util/time_gate.h"

namespace drtmr::workload {

DriverResult RunWorkload(cluster::Cluster* cluster, const DriverOptions& options, const TxnFn& fn) {
  const uint32_t nodes = options.nodes == 0 ? cluster->num_nodes() : options.nodes;
  DRTMR_CHECK(nodes <= cluster->num_nodes());
  DRTMR_CHECK(options.threads_per_node <= cluster->config().workers_per_node);

  cluster->ResetSimTime();
  // Model cross-socket coherence overhead once a node's worker count exceeds
  // one socket (Fig. 11: DrTM's whole-txn HTM regions suffer most).
  const sim::CostModel* cost = cluster->cost();
  for (uint32_t n = 0; n < nodes; ++n) {
    cluster->node(n)->bus()->set_cost_scale_pct(
        options.threads_per_node > cost->cores_per_socket ? cost->cross_socket_pct : 100);
  }

  struct PerThread {
    uint64_t committed = 0;
    uint64_t window_ns = 0;
    std::vector<uint64_t> by_type;
    Histogram latency;
    std::vector<Histogram> latency_by_type;
  };
  std::vector<PerThread> results(nodes * options.threads_per_node);
  std::vector<std::thread> threads;
  threads.reserve(results.size());

  // Conservative time-window synchronization: the host has fewer physical
  // cores than simulated workers, so bound the virtual-clock skew to keep
  // retry behaviour faithful (see src/util/time_gate.h).
  TimeGate gate(/*window_ns=*/100000);
  std::vector<uint32_t> gate_ids(results.size());
  for (uint32_t n = 0; n < nodes; ++n) {
    for (uint32_t w = 0; w < options.threads_per_node; ++w) {
      gate_ids[n * options.threads_per_node + w] =
          gate.AddClock(&cluster->node(n)->context(w)->clock);
    }
  }
  cluster->set_time_gate(&gate);

  for (uint32_t n = 0; n < nodes; ++n) {
    for (uint32_t w = 0; w < options.threads_per_node; ++w) {
      PerThread& out = results[n * options.threads_per_node + w];
      const uint32_t gate_id = gate_ids[n * options.threads_per_node + w];
      out.by_type.assign(options.max_txn_types, 0);
      out.latency_by_type.assign(options.max_txn_types, Histogram());
      threads.emplace_back([cluster, &options, &fn, n, w, &out, &gate, gate_id] {
        sim::ThreadContext* ctx = cluster->node(n)->context(w);
        FastRand rng((static_cast<uint64_t>(n) << 20) + w * 7919 + 12345);
        for (uint64_t i = 0; i < options.warmup_per_thread; ++i) {
          if (cluster->node(n)->killed()) {
            gate.Done(gate_id);
            return;
          }
          fn(ctx, n, w, &rng);
        }
        const uint64_t window_start = ctx->clock.now_ns();
        for (uint64_t i = 0; i < options.txns_per_thread; ++i) {
          if (cluster->node(n)->killed()) {
            break;
          }
          const uint64_t t0 = ctx->clock.now_ns();
          const bool flight = obs::FlightEnabled();
          if (flight) {
            obs::FlightRecorder::Global().TxnBegin(n, w);
          }
          const uint32_t type = fn(ctx, n, w, &rng);
          const uint64_t dt = ctx->clock.now_ns() - t0;
          if (flight) {
            obs::FlightRecorder::Global().TxnEnd(type, t0, dt);
          }
          out.committed++;
          out.by_type[type]++;
          out.latency.Record(dt);
          out.latency_by_type[type].Record(dt);
        }
        if (options.worker_done && !cluster->node(n)->killed()) {
          options.worker_done(ctx);
        }
        out.window_ns = ctx->clock.now_ns() - window_start;
        gate.Done(gate_id);
      });
    }
  }
  for (auto& t : threads) {
    t.join();
  }
  cluster->set_time_gate(nullptr);

  DriverResult agg;
  agg.committed_by_type.assign(options.max_txn_types, 0);
  agg.latency_by_type.assign(options.max_txn_types, Histogram());
  for (const PerThread& r : results) {
    agg.committed += r.committed;
    if (r.window_ns > agg.elapsed_ns) {
      agg.elapsed_ns = r.window_ns;
    }
    agg.latency.Merge(r.latency);
    for (uint32_t t = 0; t < options.max_txn_types; ++t) {
      agg.committed_by_type[t] += r.by_type[t];
      agg.latency_by_type[t].Merge(r.latency_by_type[t]);
    }
  }
  return agg;
}

std::string FormatTps(double tps) {
  char buf[32];
  if (tps >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", tps / 1e6);
  } else if (tps >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fK", tps / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", tps);
  }
  return buf;
}

}  // namespace drtmr::workload
