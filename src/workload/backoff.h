#ifndef DRTMR_WORKLOAD_BACKOFF_H_
#define DRTMR_WORKLOAD_BACKOFF_H_

#include <cstdint>

#include "src/sim/thread_context.h"
#include "src/util/backoff.h"
#include "src/util/rand.h"

namespace drtmr::workload {

// Charged, escalating, randomized backoff for workload-level abort retries.
//
// The engine already randomizes its *internal* HTM-region retries, but a
// protocol abort (validation conflict, fallback lock CAS lost) surfaces to
// the workload, whose retry loop would otherwise re-run the whole
// transaction immediately. On a host with fewer cores than workers the
// competing retries stay in lockstep — e.g. four same-warehouse TPC-C
// delivery workers re-reading the same first-pending orders keep dooming
// each other's HTM regions indefinitely. Charging escalating virtual time
// here breaks the lockstep for real: the next Begin() syncs the charged
// clock against the cluster time gate, so a backed-off worker spins outside
// any HTM region while its competitors (whose clocks lag) get to finish.
class RetryBackoff {
 public:
  // Call after a failed attempt, before retrying. Charges between ~0.4µs
  // (first retry) and ~200µs (capped, past the 100µs gate window — the point
  // where the backoff becomes real descheduling, not just bookkeeping).
  void OnAbort(sim::ThreadContext* ctx, FastRand* rng) {
    ctx->Charge(backoff_.NextDelay(rng));
  }

 private:
  // Shape chosen to keep the historical charge sequence bit-for-bit: one
  // Range(400, 1600) draw per abort, shifted by min(attempt, 7).
  util::Backoff backoff_ = util::Backoff::Exponential(400, 1600, /*max_shift=*/7);
};

}  // namespace drtmr::workload

#endif  // DRTMR_WORKLOAD_BACKOFF_H_
