#include "src/workload/smallbank.h"

#include <thread>
#include <vector>

#include "src/util/logging.h"
#include "src/workload/backoff.h"

namespace drtmr::workload {

using txn::TxnApi;

SmallBankWorkload::SmallBankWorkload(txn::TxnEngine* engine, cluster::PartitionMap* pmap,
                                     const SmallBankConfig& config)
    : engine_(engine), pmap_(pmap), config_(config) {}

void SmallBankWorkload::CreateTables() {
  store::TableOptions opt;
  opt.kind = store::StoreKind::kHash;
  opt.value_size = sizeof(BankAccountRow);
  opt.hash_buckets = std::max<uint64_t>(1024, config_.accounts_per_node / 2);
  checking_ = engine_->catalog()->CreateTable(kCheckingTab, opt);
  savings_ = engine_->catalog()->CreateTable(kSavingsTab, opt);
}

void SmallBankWorkload::Load(rep::PrimaryBackupReplicator* replicator) {
  cluster::Cluster* cluster = engine_->cluster();
  const uint32_t replicas = replicator != nullptr ? replicator->config().replicas : 1;
  // One loader thread per *owning node*, loading all of that node's
  // partitions sequentially: a re-shaped partition map (bench/suite.cc's
  // elastic entry folds several partitions onto one node) must not put two
  // loader threads on the same ThreadContext/HTM slot.
  std::vector<std::vector<uint32_t>> parts_of_node(cluster->num_nodes());
  for (uint32_t part = 0; part < pmap_->num_partitions(); ++part) {
    parts_of_node[pmap_->node_of(part)].push_back(part);
  }
  std::vector<std::thread> loaders;
  for (uint32_t node = 0; node < cluster->num_nodes(); ++node) {
    if (parts_of_node[node].empty()) {
      continue;
    }
    loaders.emplace_back([&, node] {
      sim::ThreadContext* lctx = cluster->node(node)->context(0);
      auto put = [&](store::Table* table, uint64_t key, int64_t balance) {
        BankAccountRow row{balance, {}};
        uint64_t off = 0;
        DRTMR_CHECK(table->hash(node)->Insert(lctx, key, &row, &off) == Status::kOk);
        if (replicator != nullptr) {
          std::vector<std::byte> image(table->record_bytes());
          cluster->node(node)->bus()->Read(nullptr, off, image.data(), image.size());
          for (uint32_t r = 1; r < replicas; ++r) {
            replicator->SeedBackup(cluster->BackupOf(node, r), table->id(), node, key,
                                   image.data(), image.size());
          }
        }
      };
      for (const uint32_t part : parts_of_node[node]) {
        for (uint64_t i = 0; i < config_.accounts_per_node; ++i) {
          put(checking_, AccountKey(part, i), 10000);
          put(savings_, AccountKey(part, i), 10000);
        }
      }
    });
  }
  for (auto& t : loaders) {
    t.join();
  }
  initial_total_ =
      static_cast<int64_t>(pmap_->num_partitions() * config_.accounts_per_node) * 20000;
}

uint32_t SmallBankWorkload::PickLocalPartition(sim::ThreadContext* ctx, FastRand* rng) const {
  uint32_t owned[64];
  uint32_t n = 0;
  for (uint32_t p = 0; p < pmap_->num_partitions() && n < 64; ++p) {
    if (pmap_->node_of(p) == ctx->node_id) {
      owned[n++] = p;
    }
  }
  if (n == 0) {
    // A re-shaped placement (the elastic bench folds partitions onto a node
    // subset) can leave this worker's node without a local partition: fall
    // back to a uniform pick — all its traffic is remote until a migration
    // hands the node a shard.
    return static_cast<uint32_t>(rng->Uniform(pmap_->num_partitions()));
  }
  return owned[rng->Uniform(n)];
}

uint64_t SmallBankWorkload::PickAccount(sim::ThreadContext* ctx, FastRand* rng,
                                        bool allow_remote) const {
  uint32_t part;
  if (allow_remote && pmap_->num_partitions() > 1 && rng->Percent(config_.cross_machine_pct)) {
    part = static_cast<uint32_t>(rng->Uniform(pmap_->num_partitions()));
  } else {
    part = PickLocalPartition(ctx, rng);
  }
  const uint64_t idx = rng->Percent(config_.hot_pct)
                           ? rng->Uniform(std::min(config_.hot_accounts, config_.accounts_per_node))
                           : rng->Uniform(config_.accounts_per_node);
  return AccountKey(part, idx);
}

uint32_t SmallBankWorkload::RunOne(sim::ThreadContext* ctx, txn::TxnApi* txn, FastRand* rng) {
  const uint64_t roll = rng->Uniform(100);
  uint32_t type = kSendPayment;
  uint64_t acc = 0;
  for (uint32_t t = 0; t < kSmallBankTxnTypes; ++t) {
    acc += config_.mix[t];
    if (roll < acc) {
      type = t;
      break;
    }
  }
  const bool uses_a2 = type == kSendPayment || type == kAmalgamate;
  uint64_t a1 = 0;
  uint64_t a2 = 0;
  const auto pick = [&] {
    a1 = PickAccount(ctx, rng, /*allow_remote=*/false);
    a2 = PickAccount(ctx, rng, /*allow_remote=*/uses_a2);
    if (a2 == a1) {
      a2 = AccountKey(static_cast<uint32_t>(a1 >> 40),
                      (a1 & 0xffffffffffull) % config_.accounts_per_node);
      if (a2 == a1) {
        a2 = a1 == AccountKey(static_cast<uint32_t>(a1 >> 40), 0)
                 ? AccountKey(static_cast<uint32_t>(a1 >> 40), 1)
                 : AccountKey(static_cast<uint32_t>(a1 >> 40), 0);
      }
    }
  };
  pick();
  const int64_t v = static_cast<int64_t>(rng->Range(1, 100));

  RetryBackoff backoff;
  // Typed kMigrating/kStaleEpoch rejections get a bounded jittered backoff
  // and a *fresh account pick*: new requests steer away from a shard inside
  // its cutover drain window instead of hammering it (DESIGN.md §14). Never
  // drawn outside a migration window, so fault-free runs keep the historical
  // rng stream.
  util::Backoff route_backoff = util::Backoff::Exponential(400, 1600, /*max_shift=*/3);
  while (true) {
    bool done = false;
    Status commit_status = Status::kAborted;
    BankAccountRow c1{}, c2{}, s1{};
    // Routing resolves *after* Begin, against the transaction's begin epoch:
    // Route rejects a partition-map entry flipped by a newer epoch
    // (kStaleEpoch) instead of following it, and resolving any earlier would
    // let a transaction that began after a cutover's epoch stamp keep
    // writing the frozen old home — a lost update.
    txn->Begin(/*read_only=*/type == kBalance);
    uint32_t n1 = 0;
    uint32_t n2 = 0;
    const uint64_t be = engine_->fencing() ? txn->begin_epoch() : ~0ull;
    if (pmap_->Route(static_cast<uint32_t>(a1 >> 40), be,
                     /*for_write=*/type != kBalance, &n1) != Status::kOk ||
        (uses_a2 && pmap_->Route(static_cast<uint32_t>(a2 >> 40), be,
                                 /*for_write=*/true, &n2) != Status::kOk)) {
      txn->UserAbort();
      ctx->Charge(route_backoff.NextDelay(rng));
      pick();
      continue;
    }
    switch (type) {
      case kBalance: {
        if (txn->Read(checking_, n1, a1, &c1) != Status::kOk ||
            txn->Read(savings_, n1, a1, &s1) != Status::kOk) {
          txn->UserAbort();
          break;
        }
        commit_status = txn->Commit();
        done = commit_status == Status::kOk;
        break;
      }
      case kDepositChecking: {
        if (txn->Read(checking_, n1, a1, &c1) != Status::kOk) {
          txn->UserAbort();
          break;
        }
        c1.balance += v;
        if (txn->Write(checking_, n1, a1, &c1) != Status::kOk) {
          txn->UserAbort();
          break;
        }
        commit_status = txn->Commit();
        done = commit_status == Status::kOk;
        if (done) {
          external_delta_.fetch_add(v, std::memory_order_relaxed);
        }
        break;
      }
      case kTransferSavings: {
        if (txn->Read(savings_, n1, a1, &s1) != Status::kOk) {
          txn->UserAbort();
          break;
        }
        s1.balance += v;
        if (txn->Write(savings_, n1, a1, &s1) != Status::kOk) {
          txn->UserAbort();
          break;
        }
        commit_status = txn->Commit();
        done = commit_status == Status::kOk;
        if (done) {
          external_delta_.fetch_add(v, std::memory_order_relaxed);
        }
        break;
      }
      case kWithdrawChecking: {
        if (txn->Read(savings_, n1, a1, &s1) != Status::kOk ||
            txn->Read(checking_, n1, a1, &c1) != Status::kOk) {
          txn->UserAbort();
          break;
        }
        c1.balance -= v;  // cash leaves the bank
        if (txn->Write(checking_, n1, a1, &c1) != Status::kOk) {
          txn->UserAbort();
          break;
        }
        commit_status = txn->Commit();
        done = commit_status == Status::kOk;
        if (done) {
          external_delta_.fetch_sub(v, std::memory_order_relaxed);
        }
        break;
      }
      case kSendPayment: {
        if (txn->Read(checking_, n1, a1, &c1) != Status::kOk ||
            txn->Read(checking_, n2, a2, &c2) != Status::kOk) {
          txn->UserAbort();
          break;
        }
        if (c1.balance < v) {
          txn->UserAbort();
          done = true;  // business abort counts as an executed transaction
          break;
        }
        c1.balance -= v;
        c2.balance += v;
        if (txn->Write(checking_, n1, a1, &c1) != Status::kOk ||
            txn->Write(checking_, n2, a2, &c2) != Status::kOk) {
          txn->UserAbort();
          break;
        }
        commit_status = txn->Commit();
        done = commit_status == Status::kOk;
        break;
      }
      case kAmalgamate: {
        if (txn->Read(savings_, n1, a1, &s1) != Status::kOk ||
            txn->Read(checking_, n1, a1, &c1) != Status::kOk ||
            txn->Read(checking_, n2, a2, &c2) != Status::kOk) {
          txn->UserAbort();
          break;
        }
        c2.balance += s1.balance + c1.balance;
        s1.balance = 0;
        c1.balance = 0;
        if (txn->Write(savings_, n1, a1, &s1) != Status::kOk ||
            txn->Write(checking_, n1, a1, &c1) != Status::kOk ||
            txn->Write(checking_, n2, a2, &c2) != Status::kOk) {
          txn->UserAbort();
          break;
        }
        commit_status = txn->Commit();
        done = commit_status == Status::kOk;
        break;
      }
    }
    if (done) {
      return type;
    }
    if (commit_status == Status::kMigrating) {
      // The write set straddles a drain window; retrying the same account
      // would block until the cutover completes.
      ctx->Charge(route_backoff.NextDelay(rng));
      pick();
      continue;
    }
    backoff.OnAbort(ctx, rng);
  }
}

int64_t SmallBankWorkload::TotalBalance() {
  int64_t total = 0;
  for (uint32_t part = 0; part < pmap_->num_partitions(); ++part) {
    const uint32_t node = pmap_->node_of(part);
    for (uint64_t i = 0; i < config_.accounts_per_node; ++i) {
      for (store::Table* t : {checking_, savings_}) {
        const uint64_t off = t->hash(node)->Lookup(nullptr, AccountKey(part, i));
        DRTMR_CHECK(off != 0);
        std::vector<std::byte> rec(t->record_bytes());
        engine_->cluster()->node(node)->bus()->Read(nullptr, off, rec.data(), rec.size());
        BankAccountRow row;
        store::RecordLayout::GatherValue(rec.data(), &row, sizeof(row));
        total += row.balance;
      }
    }
  }
  return total;
}

}  // namespace drtmr::workload
