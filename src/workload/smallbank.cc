#include "src/workload/smallbank.h"

#include <thread>
#include <vector>

#include "src/util/logging.h"
#include "src/workload/backoff.h"

namespace drtmr::workload {

using txn::TxnApi;

SmallBankWorkload::SmallBankWorkload(txn::TxnEngine* engine, cluster::PartitionMap* pmap,
                                     const SmallBankConfig& config)
    : engine_(engine), pmap_(pmap), config_(config) {}

void SmallBankWorkload::CreateTables() {
  store::TableOptions opt;
  opt.kind = store::StoreKind::kHash;
  opt.value_size = sizeof(BankAccountRow);
  opt.hash_buckets = std::max<uint64_t>(1024, config_.accounts_per_node / 2);
  checking_ = engine_->catalog()->CreateTable(kCheckingTab, opt);
  savings_ = engine_->catalog()->CreateTable(kSavingsTab, opt);
}

void SmallBankWorkload::Load(rep::PrimaryBackupReplicator* replicator) {
  cluster::Cluster* cluster = engine_->cluster();
  const uint32_t replicas = replicator != nullptr ? replicator->config().replicas : 1;
  std::vector<std::thread> loaders;
  for (uint32_t part = 0; part < pmap_->num_partitions(); ++part) {
    loaders.emplace_back([&, part] {
      const uint32_t node = pmap_->node_of(part);
      sim::ThreadContext* lctx = cluster->node(node)->context(0);
      auto put = [&](store::Table* table, uint64_t key, int64_t balance) {
        BankAccountRow row{balance, {}};
        uint64_t off = 0;
        DRTMR_CHECK(table->hash(node)->Insert(lctx, key, &row, &off) == Status::kOk);
        if (replicator != nullptr) {
          std::vector<std::byte> image(table->record_bytes());
          cluster->node(node)->bus()->Read(nullptr, off, image.data(), image.size());
          for (uint32_t r = 1; r < replicas; ++r) {
            replicator->SeedBackup(cluster->BackupOf(node, r), table->id(), node, key,
                                   image.data(), image.size());
          }
        }
      };
      for (uint64_t i = 0; i < config_.accounts_per_node; ++i) {
        put(checking_, AccountKey(part, i), 10000);
        put(savings_, AccountKey(part, i), 10000);
      }
    });
  }
  for (auto& t : loaders) {
    t.join();
  }
  initial_total_ =
      static_cast<int64_t>(pmap_->num_partitions() * config_.accounts_per_node) * 20000;
}

uint32_t SmallBankWorkload::PickLocalPartition(sim::ThreadContext* ctx, FastRand* rng) const {
  uint32_t owned[64];
  uint32_t n = 0;
  for (uint32_t p = 0; p < pmap_->num_partitions() && n < 64; ++p) {
    if (pmap_->node_of(p) == ctx->node_id) {
      owned[n++] = p;
    }
  }
  DRTMR_CHECK(n > 0);
  return owned[rng->Uniform(n)];
}

uint64_t SmallBankWorkload::PickAccount(sim::ThreadContext* ctx, FastRand* rng,
                                        bool allow_remote) const {
  uint32_t part;
  if (allow_remote && pmap_->num_partitions() > 1 && rng->Percent(config_.cross_machine_pct)) {
    part = static_cast<uint32_t>(rng->Uniform(pmap_->num_partitions()));
  } else {
    part = PickLocalPartition(ctx, rng);
  }
  const uint64_t idx = rng->Percent(config_.hot_pct)
                           ? rng->Uniform(std::min(config_.hot_accounts, config_.accounts_per_node))
                           : rng->Uniform(config_.accounts_per_node);
  return AccountKey(part, idx);
}

uint32_t SmallBankWorkload::RunOne(sim::ThreadContext* ctx, txn::TxnApi* txn, FastRand* rng) {
  const uint64_t roll = rng->Uniform(100);
  uint32_t type = kSendPayment;
  uint64_t acc = 0;
  for (uint32_t t = 0; t < kSmallBankTxnTypes; ++t) {
    acc += config_.mix[t];
    if (roll < acc) {
      type = t;
      break;
    }
  }
  const uint64_t a1 = PickAccount(ctx, rng, /*allow_remote=*/false);
  uint64_t a2 = PickAccount(ctx, rng,
                            /*allow_remote=*/type == kSendPayment || type == kAmalgamate);
  if (a2 == a1) {
    a2 = AccountKey(static_cast<uint32_t>(a1 >> 40), (a1 & 0xffffffffffull) % config_.accounts_per_node);
    if (a2 == a1) {
      a2 = a1 == AccountKey(static_cast<uint32_t>(a1 >> 40), 0)
               ? AccountKey(static_cast<uint32_t>(a1 >> 40), 1)
               : AccountKey(static_cast<uint32_t>(a1 >> 40), 0);
    }
  }
  const uint32_t n1 = NodeOfAccount(a1);
  const uint32_t n2 = NodeOfAccount(a2);
  const int64_t v = static_cast<int64_t>(rng->Range(1, 100));

  RetryBackoff backoff;
  while (true) {
    bool done = false;
    BankAccountRow c1{}, c2{}, s1{};
    switch (type) {
      case kBalance: {
        txn->Begin(/*read_only=*/true);
        if (txn->Read(checking_, n1, a1, &c1) != Status::kOk ||
            txn->Read(savings_, n1, a1, &s1) != Status::kOk) {
          txn->UserAbort();
          break;
        }
        done = txn->Commit() == Status::kOk;
        break;
      }
      case kDepositChecking: {
        txn->Begin();
        if (txn->Read(checking_, n1, a1, &c1) != Status::kOk) {
          txn->UserAbort();
          break;
        }
        c1.balance += v;
        if (txn->Write(checking_, n1, a1, &c1) != Status::kOk) {
          txn->UserAbort();
          break;
        }
        done = txn->Commit() == Status::kOk;
        if (done) {
          external_delta_.fetch_add(v, std::memory_order_relaxed);
        }
        break;
      }
      case kTransferSavings: {
        txn->Begin();
        if (txn->Read(savings_, n1, a1, &s1) != Status::kOk) {
          txn->UserAbort();
          break;
        }
        s1.balance += v;
        if (txn->Write(savings_, n1, a1, &s1) != Status::kOk) {
          txn->UserAbort();
          break;
        }
        done = txn->Commit() == Status::kOk;
        if (done) {
          external_delta_.fetch_add(v, std::memory_order_relaxed);
        }
        break;
      }
      case kWithdrawChecking: {
        txn->Begin();
        if (txn->Read(savings_, n1, a1, &s1) != Status::kOk ||
            txn->Read(checking_, n1, a1, &c1) != Status::kOk) {
          txn->UserAbort();
          break;
        }
        c1.balance -= v;  // cash leaves the bank
        if (txn->Write(checking_, n1, a1, &c1) != Status::kOk) {
          txn->UserAbort();
          break;
        }
        done = txn->Commit() == Status::kOk;
        if (done) {
          external_delta_.fetch_sub(v, std::memory_order_relaxed);
        }
        break;
      }
      case kSendPayment: {
        txn->Begin();
        if (txn->Read(checking_, n1, a1, &c1) != Status::kOk ||
            txn->Read(checking_, n2, a2, &c2) != Status::kOk) {
          txn->UserAbort();
          break;
        }
        if (c1.balance < v) {
          txn->UserAbort();
          done = true;  // business abort counts as an executed transaction
          break;
        }
        c1.balance -= v;
        c2.balance += v;
        if (txn->Write(checking_, n1, a1, &c1) != Status::kOk ||
            txn->Write(checking_, n2, a2, &c2) != Status::kOk) {
          txn->UserAbort();
          break;
        }
        done = txn->Commit() == Status::kOk;
        break;
      }
      case kAmalgamate: {
        txn->Begin();
        if (txn->Read(savings_, n1, a1, &s1) != Status::kOk ||
            txn->Read(checking_, n1, a1, &c1) != Status::kOk ||
            txn->Read(checking_, n2, a2, &c2) != Status::kOk) {
          txn->UserAbort();
          break;
        }
        c2.balance += s1.balance + c1.balance;
        s1.balance = 0;
        c1.balance = 0;
        if (txn->Write(savings_, n1, a1, &s1) != Status::kOk ||
            txn->Write(checking_, n1, a1, &c1) != Status::kOk ||
            txn->Write(checking_, n2, a2, &c2) != Status::kOk) {
          txn->UserAbort();
          break;
        }
        done = txn->Commit() == Status::kOk;
        break;
      }
    }
    if (done) {
      return type;
    }
    backoff.OnAbort(ctx, rng);
  }
}

int64_t SmallBankWorkload::TotalBalance() {
  int64_t total = 0;
  for (uint32_t part = 0; part < pmap_->num_partitions(); ++part) {
    const uint32_t node = pmap_->node_of(part);
    for (uint64_t i = 0; i < config_.accounts_per_node; ++i) {
      for (store::Table* t : {checking_, savings_}) {
        const uint64_t off = t->hash(node)->Lookup(nullptr, AccountKey(part, i));
        DRTMR_CHECK(off != 0);
        std::vector<std::byte> rec(t->record_bytes());
        engine_->cluster()->node(node)->bus()->Read(nullptr, off, rec.data(), rec.size());
        BankAccountRow row;
        store::RecordLayout::GatherValue(rec.data(), &row, sizeof(row));
        total += row.balance;
      }
    }
  }
  return total;
}

}  // namespace drtmr::workload
