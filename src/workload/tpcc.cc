#include "src/workload/tpcc.h"

#include <cstring>
#include <thread>
#include <unordered_set>

#include "src/util/logging.h"
#include "src/workload/backoff.h"

namespace drtmr::workload {

using store::StoreKind;
using store::TableOptions;
using txn::TxnApi;

TpccWorkload::TpccWorkload(txn::TxnEngine* engine, cluster::PartitionMap* pmap,
                           const TpccConfig& config)
    : engine_(engine), pmap_(pmap), config_(config) {
  total_warehouses_ = pmap->num_partitions() * config.warehouses_per_node;
}

void TpccWorkload::CreateTables() {
  store::Catalog* catalog = engine_->catalog();
  auto hash = [&](uint32_t id, uint32_t value_size, uint64_t buckets) {
    TableOptions opt;
    opt.kind = StoreKind::kHash;
    opt.value_size = value_size;
    opt.hash_buckets = buckets;
    return catalog->CreateTable(id, opt);
  };
  auto btree = [&](uint32_t id, uint32_t value_size) {
    TableOptions opt;
    opt.kind = StoreKind::kBTree;
    opt.value_size = value_size;
    opt.ptr_swap = config_.ptr_swap_local;  // §6.4: local-only tables
    return catalog->CreateTable(id, opt);
  };
  const uint32_t wpn = config_.warehouses_per_node;
  warehouse_ = hash(kWarehouseTab, sizeof(WarehouseRow), 64);
  district_ = hash(kDistrictTab, sizeof(DistrictRow), 256);
  customer_ = hash(kCustomerTab, sizeof(CustomerRow),
                   std::max<uint64_t>(1024, wpn * config_.districts *
                                                config_.customers_per_district / 2));
  history_ = hash(kHistoryTab, sizeof(HistoryRow), 1 << 12);
  new_order_ = btree(kNewOrderTab, sizeof(NewOrderRow));
  order_ = btree(kOrderTab, sizeof(OrderRow));
  order_line_ = btree(kOrderLineTab, sizeof(OrderLineRow));
  item_ = hash(kItemTab, sizeof(ItemRow), std::max<uint64_t>(512, config_.items / 2));
  stock_ = hash(kStockTab, sizeof(StockRow), std::max<uint64_t>(1024, wpn * config_.items / 2));
  cust_last_order_ = hash(kCustLastOrderTab, sizeof(CustLastOrderRow),
                          std::max<uint64_t>(1024, wpn * config_.districts *
                                                       config_.customers_per_district / 2));
  cust_name_ = btree(kCustNameTab, sizeof(CustNameRow));
}

void TpccWorkload::Load(rep::PrimaryBackupReplicator* replicator) {
  cluster::Cluster* cluster = engine_->cluster();
  const uint32_t replicas = replicator != nullptr ? replicator->config().replicas : 1;

  auto seed = [&](store::Table* table, uint32_t node, uint64_t key, uint64_t off) {
    if (replicator == nullptr || table->kind() != StoreKind::kHash) {
      return;
    }
    std::vector<std::byte> image(table->record_bytes());
    cluster->node(node)->bus()->Read(nullptr, off, image.data(), image.size());
    for (uint32_t r = 1; r < replicas; ++r) {
      replicator->SeedBackup(cluster->BackupOf(node, r), table->id(), node, key, image.data(),
                             image.size());
    }
  };
  auto put = [&](sim::ThreadContext* lctx, store::Table* table, uint32_t node, uint64_t key,
                 const void* value) {
    uint64_t off = 0;
    const Status s = table->hash(node)->Insert(lctx, key, value, &off);
    DRTMR_CHECK(s == Status::kOk) << "load failed: " << StatusString(s) << " key " << key;
    seed(table, node, key, off);
  };

  std::vector<std::thread> loaders;
  for (uint32_t part = 0; part < pmap_->num_partitions(); ++part) {
    loaders.emplace_back([&, part] {
      const uint32_t node = pmap_->node_of(part);
      sim::ThreadContext* lctx = cluster->node(node)->context(0);
      FastRand rng(part + 999);
      // Items are replicated on every node (read-only).
      for (uint64_t i = 1; i <= config_.items; ++i) {
        ItemRow row{};
        row.price = rng.Range(100, 10000);
        row.im_id = static_cast<uint32_t>(rng.Range(1, 10000));
        std::snprintf(row.name, sizeof(row.name), "item-%llu",
                      static_cast<unsigned long long>(i));
        uint64_t off = 0;
        DRTMR_CHECK(item_->hash(node)->Insert(lctx, IKey(i), &row, &off) == Status::kOk);
      }
      for (uint32_t wi = 0; wi < config_.warehouses_per_node; ++wi) {
        const uint64_t w = static_cast<uint64_t>(part) * config_.warehouses_per_node + wi + 1;
        WarehouseRow wrow{};
        wrow.tax_pct = static_cast<uint32_t>(rng.Range(0, 2000));
        put(lctx, warehouse_, node, WKey(w), &wrow);
        for (uint64_t d = 1; d <= config_.districts; ++d) {
          DistrictRow drow{};
          drow.next_o_id = 1;
          drow.tax_pct = static_cast<uint32_t>(rng.Range(0, 2000));
          put(lctx, district_, node, DKey(w, d), &drow);
          for (uint64_t c = 1; c <= config_.customers_per_district; ++c) {
            CustomerRow crow{};
            crow.balance = -1000;  // spec: C_BALANCE = -10.00
            std::snprintf(crow.data, sizeof(crow.data), "customer-%llu-%llu-%llu",
                          static_cast<unsigned long long>(w), static_cast<unsigned long long>(d),
                          static_cast<unsigned long long>(c));
            put(lctx, customer_, node, CKey(w, d, c), &crow);
            CustLastOrderRow lo{0};
            put(lctx, cust_last_order_, node, CKey(w, d, c), &lo);
            // Secondary index for payment-by-last-name (spec: 60% of
            // payments select the customer by C_LAST).
            {
              const uint64_t name = LastNameOf(c, &rng);
              const uint64_t name_key = CNameKey(w, d, name, c);
              const uint64_t rec_bytes = cust_name_->record_bytes();
              const uint64_t roff = cluster->node(node)->allocator()->Alloc(rec_bytes);
              DRTMR_CHECK(roff != cluster::RegionAllocator::kInvalidOffset);
              CustNameRow nrow{c};
              std::vector<std::byte> image(rec_bytes);
              store::RecordLayout::Init(image.data(), name_key, 2, 2, &nrow, sizeof(nrow));
              // drtmr-lint: allow(registered-memory): initial-load bulk populate before any traffic
              cluster->node(node)->bus()->Write(nullptr, roff, image.data(), rec_bytes);
              DRTMR_CHECK(cust_name_->btree(node)->Insert(lctx, name_key, roff) == Status::kOk);
            }
          }
        }
        for (uint64_t i = 1; i <= config_.items; ++i) {
          StockRow srow{};
          srow.quantity = static_cast<uint32_t>(rng.Range(10, 100));
          put(lctx, stock_, node, SKey(w, i), &srow);
        }
      }
    });
  }
  for (auto& t : loaders) {
    t.join();
  }
}

uint64_t TpccWorkload::PickLocalWarehouse(sim::ThreadContext* ctx, FastRand* rng) const {
  // Partitions currently hosted by this node (usually exactly one; more after
  // recovery re-hosts a dead machine's partitions here).
  uint32_t owned[64];
  uint32_t n = 0;
  for (uint32_t p = 0; p < pmap_->num_partitions() && n < 64; ++p) {
    if (pmap_->node_of(p) == ctx->node_id) {
      owned[n++] = p;
    }
  }
  DRTMR_CHECK(n > 0) << "node " << ctx->node_id << " hosts no partition";
  const uint32_t part = owned[rng->Uniform(n)];
  return static_cast<uint64_t>(part) * config_.warehouses_per_node +
         rng->Range(1, config_.warehouses_per_node);
}

uint64_t TpccWorkload::PickRemoteWarehouse(FastRand* rng, uint64_t home) const {
  if (total_warehouses_ == 1) {
    return home;
  }
  uint64_t w = rng->Range(1, total_warehouses_);
  if (w == home) {
    w = w % total_warehouses_ + 1;
  }
  return w;
}

uint32_t TpccWorkload::PickType(FastRand* rng) const {
  const uint64_t roll = rng->Uniform(100);
  uint64_t acc = 0;
  for (uint32_t t = 0; t < kTpccTxnTypes; ++t) {
    acc += config_.mix[t];
    if (roll < acc) {
      return t;
    }
  }
  return kNewOrder;
}

bool TpccWorkload::RunType(uint32_t type, sim::ThreadContext* ctx, txn::TxnApi* txn,
                           FastRand* rng, uint64_t w) {
  switch (type) {
    case kNewOrder:
      return TxNewOrder(ctx, txn, rng, w);
    case kPayment:
      return TxPayment(ctx, txn, rng, w);
    case kOrderStatus:
      return TxOrderStatus(ctx, txn, rng, w);
    case kDelivery:
      return TxDelivery(ctx, txn, rng, w);
    case kStockLevel:
      return TxStockLevel(ctx, txn, rng, w);
  }
  return false;
}

uint32_t TpccWorkload::RunOne(sim::ThreadContext* ctx, txn::TxnApi* txn, FastRand* rng) {
  const uint64_t w = PickLocalWarehouse(ctx, rng);
  const uint32_t type = PickType(rng);
  RetryBackoff backoff;
  while (!RunType(type, ctx, txn, rng, w)) {
    backoff.OnAbort(ctx, rng);
  }
  return type;
}

bool TpccWorkload::TxNewOrder(sim::ThreadContext* ctx, txn::TxnApi* txn, FastRand* rng,
                              uint64_t w) {
  const uint32_t home = NodeOfWarehouse(w);
  const uint64_t d = rng->Range(1, config_.districts);
  const uint64_t c = rng->NuRand(1023, 1, config_.customers_per_district);
  const uint32_t ol_cnt = static_cast<uint32_t>(rng->Range(5, 15));

  struct Line {
    uint64_t i;
    uint64_t supply_w;
    uint32_t qty;
  };
  Line lines[15];
  for (uint32_t i = 0; i < ol_cnt; ++i) {
    lines[i].i = rng->NuRand(8191, 1, config_.items);
    lines[i].supply_w = rng->Percent(config_.cross_warehouse_new_order_pct)
                            ? PickRemoteWarehouse(rng, w)
                            : w;
    lines[i].qty = static_cast<uint32_t>(rng->Range(1, 10));
  }

  txn->Begin();
  WarehouseRow wrow;
  if (txn->Read(warehouse_, home, WKey(w), &wrow) != Status::kOk) {
    txn->UserAbort();
    return false;
  }
  DistrictRow drow;
  if (txn->Read(district_, home, DKey(w, d), &drow) != Status::kOk) {
    txn->UserAbort();
    return false;
  }
  const uint64_t o_id = drow.next_o_id;
  drow.next_o_id++;
  if (txn->Write(district_, home, DKey(w, d), &drow) != Status::kOk) {
    txn->UserAbort();
    return false;
  }
  CustomerRow crow;
  if (txn->Read(customer_, home, CKey(w, d, c), &crow) != Status::kOk) {
    txn->UserAbort();
    return false;
  }

  OrderRow orow{};
  orow.c_id = c;
  orow.entry_d = ctx->clock.now_ns();
  orow.ol_cnt = ol_cnt;
  (void)txn->Insert(order_, home, OKey(w, d, o_id), &orow);  // buffered until Commit
  NewOrderRow norow{1};
  (void)txn->Insert(new_order_, home, OKey(w, d, o_id), &norow);
  CustLastOrderRow lo{o_id};
  if (txn->Write(cust_last_order_, home, CKey(w, d, c), &lo) != Status::kOk) {
    txn->UserAbort();
    return false;
  }

  for (uint32_t i = 0; i < ol_cnt; ++i) {
    ItemRow irow;
    if (txn->Read(item_, ctx->node_id, IKey(lines[i].i), &irow) != Status::kOk) {
      txn->UserAbort();
      return false;
    }
    const uint32_t supply_node = NodeOfWarehouse(lines[i].supply_w);
    StockRow srow;
    if (txn->Read(stock_, supply_node, SKey(lines[i].supply_w, lines[i].i), &srow) !=
        Status::kOk) {
      txn->UserAbort();
      return false;
    }
    if (srow.quantity >= lines[i].qty + 10) {
      srow.quantity -= lines[i].qty;
    } else {
      srow.quantity = srow.quantity - lines[i].qty + 91;
    }
    srow.ytd += lines[i].qty;
    srow.order_cnt++;
    if (lines[i].supply_w != w) {
      srow.remote_cnt++;
    }
    if (txn->Write(stock_, supply_node, SKey(lines[i].supply_w, lines[i].i), &srow) !=
        Status::kOk) {
      txn->UserAbort();
      return false;
    }
    OrderLineRow olrow{};
    olrow.i_id = lines[i].i;
    olrow.supply_w = lines[i].supply_w;
    olrow.qty = lines[i].qty;
    olrow.amount = lines[i].qty * irow.price;
    (void)txn->Insert(order_line_, home, OLKey(w, d, o_id, i + 1), &olrow);
  }
  return txn->Commit() == Status::kOk;
}

bool TpccWorkload::TxPayment(sim::ThreadContext* ctx, txn::TxnApi* txn, FastRand* rng,
                             uint64_t w) {
  const uint32_t home = NodeOfWarehouse(w);
  const uint64_t d = rng->Range(1, config_.districts);
  uint64_t cw = w;
  uint64_t cd = d;
  if (rng->Percent(config_.cross_warehouse_payment_pct)) {
    cw = PickRemoteWarehouse(rng, w);
    cd = rng->Range(1, config_.districts);
  }
  const uint32_t cnode = NodeOfWarehouse(cw);
  uint64_t c = rng->NuRand(1023, 1, config_.customers_per_district);
  // Spec: 60% of payments identify the customer by last name. The name index
  // is local to the customer's machine (ordered stores are local-only), so
  // the by-name path applies to home-warehouse customers; remote customers
  // are paid by id (see DESIGN.md deviations).
  if (cnode == ctx->node_id && rng->Percent(60)) {
    const uint64_t name = rng->NuRand(255, 0, 999);
    std::vector<uint64_t> matches;
    cust_name_->btree(cnode)->Scan(ctx, CNameKey(cw, cd, name, 0),
                                   CNameKey(cw, cd, name, 0xfff),
                                   [&](uint64_t key, uint64_t) {
                                     matches.push_back(key & 0xfff);
                                     return true;
                                   });
    if (!matches.empty()) {
      c = matches[matches.size() / 2];  // spec: ceil(n/2)-th by first name
    }
  }
  const uint64_t amount = rng->Range(100, 500000);

  txn->Begin();
  WarehouseRow wrow;
  if (txn->Read(warehouse_, home, WKey(w), &wrow) != Status::kOk) {
    txn->UserAbort();
    return false;
  }
  wrow.ytd += amount;
  if (txn->Write(warehouse_, home, WKey(w), &wrow) != Status::kOk) {
    txn->UserAbort();
    return false;
  }
  DistrictRow drow;
  if (txn->Read(district_, home, DKey(w, d), &drow) != Status::kOk) {
    txn->UserAbort();
    return false;
  }
  drow.ytd += amount;
  if (txn->Write(district_, home, DKey(w, d), &drow) != Status::kOk) {
    txn->UserAbort();
    return false;
  }
  CustomerRow crow;
  if (txn->Read(customer_, cnode, CKey(cw, cd, c), &crow) != Status::kOk) {
    txn->UserAbort();
    return false;
  }
  crow.balance -= static_cast<int64_t>(amount);
  crow.ytd_payment += amount;
  crow.payment_cnt++;
  if (txn->Write(customer_, cnode, CKey(cw, cd, c), &crow) != Status::kOk) {
    txn->UserAbort();
    return false;
  }
  HistoryRow hrow{amount, w, d, c};
  const uint64_t hkey = (static_cast<uint64_t>(ctx->node_id) << 52) |
                        (static_cast<uint64_t>(ctx->worker_id) << 44) |
                        history_seq_.fetch_add(1, std::memory_order_relaxed);
  (void)txn->Insert(history_, home, hkey, &hrow);  // buffered until Commit
  return txn->Commit() == Status::kOk;
}

bool TpccWorkload::TxOrderStatus(sim::ThreadContext* ctx, txn::TxnApi* txn, FastRand* rng,
                                 uint64_t w) {
  const uint32_t home = NodeOfWarehouse(w);
  const uint64_t d = rng->Range(1, config_.districts);
  const uint64_t c = rng->NuRand(1023, 1, config_.customers_per_district);

  txn->Begin(/*read_only=*/true);
  CustomerRow crow;
  if (txn->Read(customer_, home, CKey(w, d, c), &crow) != Status::kOk) {
    txn->UserAbort();
    return false;
  }
  CustLastOrderRow lo;
  if (txn->Read(cust_last_order_, home, CKey(w, d, c), &lo) != Status::kOk) {
    txn->UserAbort();
    return false;
  }
  if (lo.o_id != 0) {
    OrderRow orow;
    if (txn->Read(order_, home, OKey(w, d, lo.o_id), &orow) == Status::kOk) {
      // Footprint-only scan; an abort surfaces at Commit via the read set.
      (void)txn->ScanLocal(order_line_, OLKey(w, d, lo.o_id, 0), OLKey(w, d, lo.o_id, 15),
                           [](uint64_t, const void*) { return true; });
    }
  }
  return txn->Commit() == Status::kOk;
}

bool TpccWorkload::TxDelivery(sim::ThreadContext* ctx, txn::TxnApi* txn, FastRand* rng,
                              uint64_t w) {
  const uint32_t home = NodeOfWarehouse(w);
  DRTMR_CHECK(home == ctx->node_id);
  txn->Begin();
  for (uint64_t d = 1; d <= config_.districts; ++d) {
    uint64_t no_key = 0, no_off = 0;
    if (!new_order_->btree(home)->FirstGreaterEqual(ctx, OKey(w, d, 1), OKey(w, d, ~0ull >> 28),
                                                    &no_key, &no_off)) {
      continue;  // no pending order in this district
    }
    const uint64_t o_id = no_key & 0xfffffffffull;
    NewOrderRow norow;
    if (txn->Read(new_order_, home, no_key, &norow) != Status::kOk) {
      continue;  // raced another delivery
    }
    norow.flag = 0;  // tombstone write: serializes competing deliveries
    if (txn->Write(new_order_, home, no_key, &norow) != Status::kOk) {
      txn->UserAbort();
      return false;
    }
    (void)txn->Remove(new_order_, home, no_key);  // buffered until Commit

    OrderRow orow;
    if (txn->Read(order_, home, OKey(w, d, o_id), &orow) != Status::kOk) {
      txn->UserAbort();
      return false;
    }
    orow.carrier_id = static_cast<uint32_t>(rng->Range(1, 10));
    if (txn->Write(order_, home, OKey(w, d, o_id), &orow) != Status::kOk) {
      txn->UserAbort();
      return false;
    }
    uint64_t total = 0;
    for (uint32_t ol = 1; ol <= orow.ol_cnt; ++ol) {
      OrderLineRow olrow;
      if (txn->Read(order_line_, home, OLKey(w, d, o_id, ol), &olrow) != Status::kOk) {
        continue;
      }
      total += olrow.amount;
      olrow.delivery_d = ctx->clock.now_ns();
      if (txn->Write(order_line_, home, OLKey(w, d, o_id, ol), &olrow) != Status::kOk) {
        txn->UserAbort();
        return false;
      }
    }
    CustomerRow crow;
    if (txn->Read(customer_, home, CKey(w, d, orow.c_id), &crow) != Status::kOk) {
      txn->UserAbort();
      return false;
    }
    crow.balance += static_cast<int64_t>(total);
    crow.delivery_cnt++;
    if (txn->Write(customer_, home, CKey(w, d, orow.c_id), &crow) != Status::kOk) {
      txn->UserAbort();
      return false;
    }
  }
  return txn->Commit() == Status::kOk;
}

bool TpccWorkload::TxStockLevel(sim::ThreadContext* ctx, txn::TxnApi* txn, FastRand* rng,
                                uint64_t w) {
  const uint32_t home = NodeOfWarehouse(w);
  const uint64_t d = rng->Range(1, config_.districts);
  const uint32_t threshold = static_cast<uint32_t>(rng->Range(10, 20));

  txn->Begin(/*read_only=*/true);
  DistrictRow drow;
  if (txn->Read(district_, home, DKey(w, d), &drow) != Status::kOk) {
    txn->UserAbort();
    return false;
  }
  const uint64_t hi_o = drow.next_o_id;
  const uint64_t lo_o = hi_o > 20 ? hi_o - 20 : 1;
  std::unordered_set<uint64_t> items;
  (void)txn->ScanLocal(order_line_, OLKey(w, d, lo_o, 0), OLKey(w, d, hi_o, 15),
                       [&](uint64_t, const void* value) {
                         OrderLineRow ol;
                         std::memcpy(&ol, value, sizeof(ol));
                         items.insert(ol.i_id);
                         return items.size() < 200;
                       });
  uint32_t low = 0;
  for (uint64_t i : items) {
    StockRow srow;
    if (txn->Read(stock_, home, SKey(w, i), &srow) != Status::kOk) {
      txn->UserAbort();
      return false;
    }
    if (srow.quantity < threshold) {
      low++;
    }
  }
  return txn->Commit() == Status::kOk;
}

uint64_t TpccWorkload::DistrictNextOrderId(uint32_t node, uint64_t w, uint64_t d) {
  const uint64_t off = district_->hash(node)->Lookup(nullptr, DKey(w, d));
  DRTMR_CHECK(off != 0);
  std::vector<std::byte> rec(district_->record_bytes());
  engine_->cluster()->node(node)->bus()->Read(nullptr, off, rec.data(), rec.size());
  DistrictRow row;
  store::RecordLayout::GatherValue(rec.data(), &row, sizeof(row));
  return row.next_o_id;
}

namespace {

template <typename Row>
bool ReadHashRow(cluster::Cluster* cluster, store::Table* table, uint32_t node, uint64_t key,
                 Row* out) {
  const uint64_t off = table->hash(node)->Lookup(nullptr, key);
  if (off == 0) {
    return false;
  }
  std::vector<std::byte> rec(table->record_bytes());
  cluster->node(node)->bus()->Read(nullptr, off, rec.data(), rec.size());
  store::RecordLayout::GatherValue(rec.data(), out, sizeof(*out));
  return true;
}

void Flag(TpccWorkload::ConsistencyReport* rep, std::string msg) {
  rep->ok = false;
  if (rep->violations.size() < 20) {
    rep->violations.push_back(std::move(msg));
  }
}

std::string FmtWd(const char* what, uint64_t w, uint64_t d, uint64_t got, uint64_t want) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s (w=%llu d=%llu): got %llu, want %llu", what,
                static_cast<unsigned long long>(w), static_cast<unsigned long long>(d),
                static_cast<unsigned long long>(got), static_cast<unsigned long long>(want));
  return buf;
}

}  // namespace

TpccWorkload::ConsistencyReport TpccWorkload::CheckConsistency() {
  ConsistencyReport rep;
  cluster::Cluster* cluster = engine_->cluster();
  for (uint64_t w = 1; w <= total_warehouses_; ++w) {
    const uint32_t node = NodeOfWarehouse(w);
    WarehouseRow wrow;
    if (!ReadHashRow(cluster, warehouse_, node, WKey(w), &wrow)) {
      Flag(&rep, FmtWd("warehouse row missing", w, 0, 0, 1));
      continue;
    }
    uint64_t district_ytd_sum = 0;
    for (uint64_t d = 1; d <= config_.districts; ++d) {
      DistrictRow drow;
      if (!ReadHashRow(cluster, district_, node, DKey(w, d), &drow)) {
        Flag(&rep, FmtWd("district row missing", w, d, 0, 1));
        continue;
      }
      district_ytd_sum += drow.ytd;

      // ORDER rows are never deleted: exactly next_o_id - 1 per district,
      // with o_ids 1..next_o_id-1 (A2 plus a completeness check on inserts).
      uint64_t order_count = 0;
      uint64_t order_max = 0;
      order_->btree(node)->Scan(nullptr, OKey(w, d, 1), OKey(w, d, ~0ull >> 28),
                                [&](uint64_t key, uint64_t) {
                                  ++order_count;
                                  order_max = key & 0xfffffffffull;
                                  return true;
                                });
      const uint64_t issued = drow.next_o_id - 1;
      if (order_count != issued) {
        Flag(&rep, FmtWd("A2: ORDER row count vs issued orders", w, d, order_count, issued));
      }
      if (issued > 0 && order_max != issued) {
        Flag(&rep, FmtWd("A2: max(O_ID) vs D_NEXT_O_ID-1", w, d, order_max, issued));
      }

      // Pending NEW-ORDER rows form a contiguous suffix ending at the newest
      // order (deliveries consume the oldest first).
      uint64_t no_count = 0;
      uint64_t no_min = ~0ull;
      uint64_t no_max = 0;
      new_order_->btree(node)->Scan(nullptr, OKey(w, d, 1), OKey(w, d, ~0ull >> 28),
                                    [&](uint64_t key, uint64_t) {
                                      const uint64_t o = key & 0xfffffffffull;
                                      ++no_count;
                                      no_min = std::min(no_min, o);
                                      no_max = std::max(no_max, o);
                                      return true;
                                    });
      if (no_count > 0) {
        if (no_max != issued) {
          Flag(&rep, FmtWd("A2: max(NO_O_ID) vs D_NEXT_O_ID-1", w, d, no_max, issued));
        }
        if (no_max - no_min + 1 != no_count) {
          Flag(&rep, FmtWd("A3: NEW-ORDER contiguity", w, d, no_count, no_max - no_min + 1));
        }
      }
    }
    if (wrow.ytd != district_ytd_sum) {
      Flag(&rep, FmtWd("A1: W_YTD vs sum(D_YTD)", w, 0, wrow.ytd, district_ytd_sum));
    }
  }
  return rep;
}

std::string TpccWorkload::ConsistencyReport::Summary() const {
  std::string out = ok ? "tpcc consistent" : "TPCC INCONSISTENT";
  for (const std::string& v : violations) {
    out += "\n  ";
    out += v;
  }
  return out;
}

}  // namespace drtmr::workload
