// TPC-C workload (§7.1): the five standard transaction types over a
// warehouse-partitioned schema, scaled across machines exactly as the paper
// runs it — each machine hosts a group of warehouses, worker threads generate
// requests against their own machine's warehouses, and cross-warehouse items
// in new-order (default 1%) / cross-warehouse customers in payment (default
// 15%) produce distributed transactions.
//
// Schema notes (trimmed payloads, same access pattern):
//  * WAREHOUSE/DISTRICT/CUSTOMER/STOCK/ITEM are hash tables (STOCK and
//    CUSTOMER are reached remotely in distributed transactions).
//  * ORDER/NEW_ORDER/ORDER_LINE are local B+-tree tables (range access for
//    delivery and stock-level).
//  * ITEM is read-only and replicated on every node (standard practice).
//  * Customer-by-last-name lookup is simplified to by-id; initial orders are
//    not preloaded (order-status handles "no orders yet"). See DESIGN.md.
#ifndef DRTMR_SRC_WORKLOAD_TPCC_H_
#define DRTMR_SRC_WORKLOAD_TPCC_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/partition_map.h"
#include "src/rep/primary_backup.h"
#include "src/txn/transaction.h"
#include "src/txn/txn_engine.h"

namespace drtmr::workload {

enum TpccTxnType : uint32_t {
  kNewOrder = 0,
  kPayment = 1,
  kOrderStatus = 2,
  kDelivery = 3,
  kStockLevel = 4,
  kTpccTxnTypes = 5,
};

struct TpccConfig {
  uint32_t warehouses_per_node = 1;
  uint32_t districts = 10;
  uint32_t customers_per_district = 3000;
  uint32_t items = 10000;
  // Probability (percent) that a new-order item is supplied by a remote
  // warehouse (Fig. 17 sweeps this; TPC-C spec default is 1%).
  uint32_t cross_warehouse_new_order_pct = 1;
  // Probability that payment pays a customer of a remote warehouse (15%).
  uint32_t cross_warehouse_payment_pct = 15;
  // §6.4 pointer-swap optimization for always-local tables.
  bool ptr_swap_local = false;
  // Standard mix (%): new-order 45, payment 43, order-status 4, delivery 4,
  // stock-level 4 (Table 5).
  uint32_t mix[kTpccTxnTypes] = {45, 43, 4, 4, 4};
};

// Row payloads (sizes chosen to exercise multi-line records).
struct WarehouseRow {
  uint64_t ytd;
  uint32_t tax_pct;  // basis points
  uint32_t pad[7];
};
struct DistrictRow {
  uint64_t next_o_id;
  uint64_t ytd;
  uint32_t tax_pct;
  uint32_t pad[5];
};
struct CustomerRow {
  int64_t balance;
  uint64_t ytd_payment;
  uint32_t payment_cnt;
  uint32_t delivery_cnt;
  char data[64];
};
struct HistoryRow {
  uint64_t amount;
  uint64_t w;
  uint64_t d;
  uint64_t c;
};
struct NewOrderRow {
  uint64_t flag;
};
struct OrderRow {
  uint64_t c_id;
  uint64_t entry_d;
  uint32_t carrier_id;
  uint32_t ol_cnt;
};
struct OrderLineRow {
  uint64_t i_id;
  uint64_t supply_w;
  uint32_t qty;
  uint32_t pad;
  uint64_t amount;
  uint64_t delivery_d;
};
struct ItemRow {
  uint64_t price;
  char name[24];
  uint32_t im_id;
  uint32_t pad;
};
struct StockRow {
  uint32_t quantity;
  uint32_t pad;
  uint64_t ytd;
  uint32_t order_cnt;
  uint32_t remote_cnt;
  char dist[24];
};
struct CustLastOrderRow {
  uint64_t o_id;
};
struct CustNameRow {
  uint64_t c_id;
};

class TpccWorkload {
 public:
  // Table ids (shared across the catalog).
  enum TableId : uint32_t {
    kWarehouseTab = 10,
    kDistrictTab,
    kCustomerTab,
    kHistoryTab,
    kNewOrderTab,
    kOrderTab,
    kOrderLineTab,
    kItemTab,
    kStockTab,
    kCustLastOrderTab,
    kCustNameTab,  // secondary index: (w, d, last-name) -> customer id
  };

  TpccWorkload(txn::TxnEngine* engine, cluster::PartitionMap* pmap, const TpccConfig& config);

  // Creates tables and loads the initial database; `replicator` (nullable)
  // receives backup seeds for hash-table records.
  void CreateTables();
  void Load(rep::PrimaryBackupReplicator* replicator);

  // Executes one standard-mix transaction to commit; returns its type.
  uint32_t RunOne(sim::ThreadContext* ctx, txn::TxnApi* txn, FastRand* rng);

  // Pieces for engines that drive retries themselves (baselines): pick a
  // type / home warehouse, then execute one attempt (true = committed).
  uint32_t PickType(FastRand* rng) const;
  uint64_t PickWarehouse(sim::ThreadContext* ctx, FastRand* rng) const {
    return PickLocalWarehouse(ctx, rng);
  }
  bool RunType(uint32_t type, sim::ThreadContext* ctx, txn::TxnApi* txn, FastRand* rng,
               uint64_t w);

  // Key helpers (exposed for tests).
  static uint64_t WKey(uint64_t w) { return w; }
  static uint64_t DKey(uint64_t w, uint64_t d) { return (w << 8) | d; }
  static uint64_t CKey(uint64_t w, uint64_t d, uint64_t c) { return (w << 24) | (d << 16) | c; }
  static uint64_t SKey(uint64_t w, uint64_t i) { return (w << 24) | i; }
  static uint64_t IKey(uint64_t i) { return i; }
  static uint64_t OKey(uint64_t w, uint64_t d, uint64_t o) { return (w << 40) | (d << 36) | o; }
  static uint64_t OLKey(uint64_t w, uint64_t d, uint64_t o, uint64_t ol) {
    return (w << 40) | (d << 36) | (o << 4) | ol;
  }
  // Last-name secondary index key: name ids are 0..999, customers <= 4095.
  static uint64_t CNameKey(uint64_t w, uint64_t d, uint64_t name, uint64_t c) {
    return (w << 40) | (d << 36) | (name << 12) | c;
  }
  // Spec 4.3.2.3-ish: the first 1000 customers get sequential last names, the
  // rest are drawn with NURand(255).
  static uint64_t LastNameOf(uint64_t c, FastRand* rng) {
    return c <= 1000 ? (c - 1) % 1000 : rng->NuRand(255, 0, 999);
  }

  uint32_t total_warehouses() const { return total_warehouses_; }
  uint32_t NodeOfWarehouse(uint64_t w) const {
    return pmap_->node_of(static_cast<uint32_t>((w - 1) / config_.warehouses_per_node));
  }

  const TpccConfig& config() const { return config_; }
  store::Table* table(TableId id) { return engine_->catalog()->table(id); }

  // Consistency checks for tests: warehouse/district YTD equals the sum of
  // customer payments recorded against it.
  uint64_t DistrictNextOrderId(uint32_t node, uint64_t w, uint64_t d);

  // TPC-C consistency conditions (spec §3.3.2), run offline at quiescence:
  //   A1  W_YTD = sum of the warehouse's D_YTD;
  //   A2  D_NEXT_O_ID - 1 = max(O_ID) in ORDER (and = max(NO_O_ID) in
  //       NEW-ORDER when any rows are pending), per district;
  //   A3  pending NEW-ORDER rows per district are contiguous:
  //       max(NO_O_ID) - min(NO_O_ID) + 1 = row count.
  // Also checks ORDER row count equals the orders ever issued (inserts are
  // never deleted). Walks tables directly through the partition map, so it
  // works after recovery re-hosts a dead node's warehouses.
  struct ConsistencyReport {
    bool ok = true;
    std::vector<std::string> violations;
    std::string Summary() const;
  };
  ConsistencyReport CheckConsistency();

 private:
  bool TxNewOrder(sim::ThreadContext* ctx, txn::TxnApi* txn, FastRand* rng, uint64_t w);
  bool TxPayment(sim::ThreadContext* ctx, txn::TxnApi* txn, FastRand* rng, uint64_t w);
  bool TxOrderStatus(sim::ThreadContext* ctx, txn::TxnApi* txn, FastRand* rng, uint64_t w);
  bool TxDelivery(sim::ThreadContext* ctx, txn::TxnApi* txn, FastRand* rng, uint64_t w);
  bool TxStockLevel(sim::ThreadContext* ctx, txn::TxnApi* txn, FastRand* rng, uint64_t w);

  // Picks a warehouse hosted on this worker's node (partition-map aware, so
  // re-hosted partitions are picked up after recovery).
  uint64_t PickLocalWarehouse(sim::ThreadContext* ctx, FastRand* rng) const;
  uint64_t PickRemoteWarehouse(FastRand* rng, uint64_t home) const;

  txn::TxnEngine* engine_;
  cluster::PartitionMap* pmap_;
  TpccConfig config_;
  uint32_t total_warehouses_;
  store::Table* warehouse_ = nullptr;
  store::Table* district_ = nullptr;
  store::Table* customer_ = nullptr;
  store::Table* history_ = nullptr;
  store::Table* new_order_ = nullptr;
  store::Table* order_ = nullptr;
  store::Table* order_line_ = nullptr;
  store::Table* item_ = nullptr;
  store::Table* stock_ = nullptr;
  store::Table* cust_last_order_ = nullptr;
  store::Table* cust_name_ = nullptr;
  std::atomic<uint64_t> history_seq_{1};
};

}  // namespace drtmr::workload

#endif  // DRTMR_SRC_WORKLOAD_TPCC_H_
