// SmallBank workload (§7.1): six transaction types over checking/savings
// account tables, with a skewed (hot-set) access pattern and a configurable
// probability of cross-machine accounts for send-payment and amalgamate
// (Figs. 13-16 sweep that probability).
#ifndef DRTMR_SRC_WORKLOAD_SMALLBANK_H_
#define DRTMR_SRC_WORKLOAD_SMALLBANK_H_

#include <atomic>
#include <cstdint>

#include "src/cluster/partition_map.h"
#include "src/rep/primary_backup.h"
#include "src/txn/transaction.h"
#include "src/txn/txn_engine.h"

namespace drtmr::workload {

enum SmallBankTxnType : uint32_t {
  kSendPayment = 0,   // 25%, read-write, possibly distributed
  kBalance = 1,       // 15%, read-only
  kDepositChecking = 2,
  kWithdrawChecking = 3,
  kTransferSavings = 4,
  kAmalgamate = 5,    // read-write, possibly distributed
  kSmallBankTxnTypes = 6,
};

struct SmallBankConfig {
  uint64_t accounts_per_node = 100000;
  uint64_t hot_accounts = 4000;   // per node
  uint32_t hot_pct = 90;          // probability an access hits the hot set
  // Probability (percent) that SP/AMG touch an account on another machine.
  uint32_t cross_machine_pct = 1;
  uint32_t mix[kSmallBankTxnTypes] = {25, 15, 15, 15, 15, 15};
};

struct BankAccountRow {
  int64_t balance;
  uint64_t pad[4];
};

class SmallBankWorkload {
 public:
  enum TableId : uint32_t { kCheckingTab = 30, kSavingsTab = 31 };

  SmallBankWorkload(txn::TxnEngine* engine, cluster::PartitionMap* pmap,
                    const SmallBankConfig& config);

  void CreateTables();
  void Load(rep::PrimaryBackupReplicator* replicator);

  uint32_t RunOne(sim::ThreadContext* ctx, txn::TxnApi* txn, FastRand* rng);

  // Account ids are partition-scoped: key = (partition << 40) | index.
  uint64_t AccountKey(uint32_t partition, uint64_t index) const {
    return (static_cast<uint64_t>(partition) << 40) | (index + 1);
  }
  uint32_t NodeOfAccount(uint64_t key) const {
    return pmap_->node_of(static_cast<uint32_t>(key >> 40));
  }

  // Sum of all balances (checking + savings). The conservation invariant is
  // TotalBalance() == initial_total() + external_delta(): deposits,
  // withdrawals, and savings transfers move money across the bank boundary
  // and are tallied per committed transaction.
  int64_t TotalBalance();
  int64_t initial_total() const { return initial_total_; }
  int64_t external_delta() const { return external_delta_.load(std::memory_order_relaxed); }

  const SmallBankConfig& config() const { return config_; }

  // For wiring a MigrationSpec: the tables that move with a partition.
  store::Table* checking_table() { return checking_; }
  store::Table* savings_table() { return savings_; }

 private:
  uint64_t PickAccount(sim::ThreadContext* ctx, FastRand* rng, bool allow_remote) const;
  uint32_t PickLocalPartition(sim::ThreadContext* ctx, FastRand* rng) const;

  txn::TxnEngine* engine_;
  cluster::PartitionMap* pmap_;
  SmallBankConfig config_;
  store::Table* checking_ = nullptr;
  store::Table* savings_ = nullptr;
  int64_t initial_total_ = 0;
  std::atomic<int64_t> external_delta_{0};
};

}  // namespace drtmr::workload

#endif  // DRTMR_SRC_WORKLOAD_SMALLBANK_H_
