// Benchmark driver: runs one workload function on every (node, worker) pair
// and aggregates committed counts, abort counts, and latency in *virtual
// time* (see DESIGN.md §1). Throughput = total commits / max per-thread
// simulated time, exactly the aggregate a real parallel run would report.
#ifndef DRTMR_SRC_WORKLOAD_DRIVER_H_
#define DRTMR_SRC_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/cluster/node.h"
#include "src/util/histogram.h"

namespace drtmr::workload {

struct DriverOptions {
  uint32_t nodes = 0;             // 0 = all nodes in the cluster
  uint32_t threads_per_node = 4;  // must be <= workers_per_node
  uint64_t txns_per_thread = 2000;
  uint64_t warmup_per_thread = 100;
  uint32_t max_txn_types = 8;
  // Called once per worker thread after its last transaction (not called for
  // killed nodes — fail-stop). Replicated runs use it to flush the worker's
  // group-commit window so no decided transaction is left unfenced; the time
  // it charges lands inside the measured window.
  std::function<void(sim::ThreadContext*)> worker_done;
};

struct DriverResult {
  uint64_t committed = 0;
  uint64_t elapsed_ns = 0;  // max per-thread simulated time (measured window)
  std::vector<uint64_t> committed_by_type;
  Histogram latency;                 // per-transaction, including retries
  std::vector<Histogram> latency_by_type;

  double ThroughputTps() const {
    return elapsed_ns == 0 ? 0.0 : committed * 1e9 / static_cast<double>(elapsed_ns);
  }
  double ThroughputTps(uint32_t type) const {
    return elapsed_ns == 0 ? 0.0
                           : committed_by_type[type] * 1e9 / static_cast<double>(elapsed_ns);
  }
};

// One call = one transaction executed to commit (retrying aborts internally).
// Returns the transaction type id in [0, max_txn_types).
using TxnFn = std::function<uint32_t(sim::ThreadContext* ctx, uint32_t node, uint32_t worker,
                                     FastRand* rng)>;

// Runs `fn` txns_per_thread times per worker thread across the cluster.
// Resets virtual time first; cross-socket cost scaling is applied when
// threads_per_node exceeds one socket (§7.1 topology).
DriverResult RunWorkload(cluster::Cluster* cluster, const DriverOptions& options,
                         const TxnFn& fn);

// Formats a throughput row for the bench tables.
std::string FormatTps(double tps);

}  // namespace drtmr::workload

#endif  // DRTMR_SRC_WORKLOAD_DRIVER_H_
