#include "src/obs/trace.h"

#include <algorithm>
#include <vector>

#include "src/obs/metrics.h"

namespace drtmr::obs {

const char* TraceNameString(TraceName name) {
  switch (name) {
    case TraceName::kTxn: return "txn";
    case TraceName::kTxnReadOnly: return "txn_ro";
    case TraceName::kExecution: return "execution";
    case TraceName::kLock: return "lock";
    case TraceName::kValidation: return "validation";
    case TraceName::kHtmCommit: return "htm_commit";
    case TraceName::kReplication: return "replication";
    case TraceName::kWriteBack: return "write_back";
    case TraceName::kFallback: return "fallback";
    case TraceName::kHtmAbort: return "htm_abort";
    case TraceName::kCount: break;
  }
  return "?";
}

void Registry::WriteChromeTrace(std::FILE* f) const {
  // Gather every ring (ring order is oldest-first once wrapped), then sort by
  // timestamp so the file streams nicely into chrome://tracing / Perfetto.
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> g(mu_);
    for (const auto& shard : all_) {
      const size_t cap = shard->trace.size();
      if (cap == 0 || shard->trace_next == 0) {
        continue;
      }
      const uint64_t n = shard->trace_next < cap ? shard->trace_next : cap;
      const uint64_t start = shard->trace_next < cap ? 0 : shard->trace_next % cap;
      for (uint64_t i = 0; i < n; ++i) {
        events.push_back(shard->trace[(start + i) % cap]);
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.ts_ns < b.ts_ns; });

  // The Chrome trace_event "JSON array format": a plain array of event
  // objects; ts/dur are microseconds (fractional allowed). pid = simulated
  // node, tid = worker slot on that node.
  std::fprintf(f, "[");
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (e.instant != 0) {
      std::fprintf(f,
                   "%s\n{\"name\":\"%s\",\"cat\":\"drtmr\",\"ph\":\"i\",\"s\":\"t\","
                   "\"pid\":%u,\"tid\":%u,\"ts\":%.3f,\"args\":{\"arg\":%llu}}",
                   i == 0 ? "" : ",", TraceNameString(e.name), e.node, e.worker,
                   static_cast<double>(e.ts_ns) / 1000.0, (unsigned long long)e.arg);
    } else {
      std::fprintf(f,
                   "%s\n{\"name\":\"%s\",\"cat\":\"drtmr\",\"ph\":\"X\",\"pid\":%u,"
                   "\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"arg\":%llu}}",
                   i == 0 ? "" : ",", TraceNameString(e.name), e.node, e.worker,
                   static_cast<double>(e.ts_ns) / 1000.0, static_cast<double>(e.dur_ns) / 1000.0,
                   (unsigned long long)e.arg);
    }
  }
  std::fprintf(f, "\n]\n");
}

bool Registry::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  WriteChromeTrace(f);
  std::fclose(f);
  return true;
}

}  // namespace drtmr::obs
