// Transaction-lifecycle trace events. Each obs::Registry shard owns a bounded
// ring of TraceEvent records (single writer — the owning worker thread); the
// Chrome trace_event exporter walks every ring at quiescence and emits a JSON
// array loadable by chrome://tracing / Perfetto. Timestamps are *virtual*
// nanoseconds from the per-thread SimClock, so a trace shows the simulated
// schedule, not host wall-clock.
#ifndef DRTMR_SRC_OBS_TRACE_H_
#define DRTMR_SRC_OBS_TRACE_H_

#include <cstdint>

namespace drtmr::obs {

enum class TraceName : uint8_t {
  kTxn = 0,        // whole read-write transaction attempt (Begin -> Commit result)
  kTxnReadOnly,    // whole read-only transaction attempt
  kExecution,      // execution phase (reads + buffered writes)
  kLock,           // C.1 remote lock acquisition
  kValidation,     // C.2 remote validation / read-only revalidation
  kHtmCommit,      // C.3+C.4 HTM region, including retries
  kReplication,    // R.1 log writes + fence, R.2 makeup
  kWriteBack,      // C.5 write-back, mutations, C.6 unlock
  kFallback,       // §6.1 fallback commit path
  kHtmAbort,       // instant: one HTM abort (arg = abort code)
  kCount
};

const char* TraceNameString(TraceName name);

struct TraceEvent {
  uint64_t ts_ns = 0;   // virtual-time start
  uint64_t dur_ns = 0;  // 0 for instant events
  uint64_t arg = 0;     // txn id, abort code, ... (meaning depends on name)
  uint16_t node = 0;    // Chrome "pid"
  uint16_t worker = 0;  // Chrome "tid"
  TraceName name = TraceName::kTxn;
  uint8_t instant = 0;  // 1 => "ph":"i", else "ph":"X"
};

}  // namespace drtmr::obs

#endif  // DRTMR_SRC_OBS_TRACE_H_
