#include "src/obs/metrics.h"

#include <algorithm>

#include "src/obs/flight_recorder.h"

namespace drtmr::obs {

const char* PhaseName(Phase p) {
  switch (p) {
    case Phase::kExecution: return "execution";
    case Phase::kLock: return "lock";
    case Phase::kValidation: return "validation";
    case Phase::kHtmCommit: return "htm_commit";
    case Phase::kReplication: return "replication";
    case Phase::kWriteBack: return "write_back";
    case Phase::kFallback: return "fallback";
    case Phase::kCount: break;
  }
  return "?";
}

const char* CounterName(Counter c) {
  switch (c) {
    case Counter::kTxnCommit: return "txn_commit";
    case Counter::kTxnAbortLock: return "txn_abort_lock";
    case Counter::kTxnAbortValidation: return "txn_abort_validation";
    case Counter::kTxnAbortUser: return "txn_abort_user";
    case Counter::kTxnFallback: return "txn_fallback";
    case Counter::kHtmCommitRetry: return "htm_commit_retry";
    case Counter::kRepLogEntries: return "rep_log_entries";
    case Counter::kRepLogBytes: return "rep_log_bytes";
    case Counter::kFabricDoorbells: return "fabric_doorbells";
    case Counter::kFabricChainedVerbs: return "fabric_chained_verbs";
    case Counter::kRepWindowFlushes: return "rep_window_flushes";
    case Counter::kRepWindowTxns: return "rep_window_txns";
    case Counter::kRepSlotsRetired: return "rep_slots_retired";
    case Counter::kRepSlotsSuperseded: return "rep_slots_superseded";
    case Counter::kKeyedOverflow: return "keyed_overflow";
    case Counter::kTraceDropped: return "trace_dropped";
    case Counter::kMembershipEpochChange: return "membership_epoch_change";
    case Counter::kMembershipSuspicion: return "membership_suspicion";
    case Counter::kMembershipRejoin: return "membership_rejoin";
    case Counter::kFenceRejectedVerb: return "fence_rejected_verb";
    case Counter::kFenceSelfAbort: return "fence_self_abort";
    case Counter::kAnalyzerUnlockedWrite: return "analyzer_unlocked_write";
    case Counter::kAnalyzerSeqlockViolation: return "analyzer_seqlock_violation";
    case Counter::kAnalyzerAtomicityViolation: return "analyzer_atomicity_violation";
    case Counter::kAnalyzerLockHygiene: return "analyzer_lock_hygiene";
    case Counter::kAnalyzerEpochViolation: return "analyzer_epoch_violation";
    case Counter::kCount: break;
  }
  return "?";
}

const char* VerbName(Verb v) {
  switch (v) {
    case Verb::kRead: return "read";
    case Verb::kWrite: return "write";
    case Verb::kCas: return "cas";
    case Verb::kFaa: return "faa";
    case Verb::kSend: return "send";
    case Verb::kCount: break;
  }
  return "?";
}

const char* HtmSiteName(HtmSite s) {
  switch (s) {
    case HtmSite::kOther: return "other";
    case HtmSite::kLocalRead: return "local_read";
    case HtmSite::kCommit: return "commit";
    case HtmSite::kStore: return "store";
    case HtmSite::kBaseline: return "baseline";
    case HtmSite::kCount: break;
  }
  return "?";
}

const char* HtmAbortCodeName(uint32_t code) {
  // Mirrors sim::HtmDesc::DoomCode.
  switch (code) {
    case 0: return "none";
    case 1: return "conflict";
    case 2: return "capacity";
    case 3: return "explicit";
    case 4: return "io";
  }
  return "?";
}

// ---- Shard ----

void Shard::AddPhase(Phase p, uint64_t ns) {
  PhaseCell& cell = phases[static_cast<size_t>(p)];
  const uint64_t prior = cell.count.load(std::memory_order_relaxed);
  if (prior == 0 || ns < cell.min.load(std::memory_order_relaxed)) {
    cell.min.store(ns, std::memory_order_relaxed);
  }
  if (ns > cell.max.load(std::memory_order_relaxed)) {
    cell.max.store(ns, std::memory_order_relaxed);
  }
  cell.count.store(prior + 1, std::memory_order_relaxed);
  cell.sum.fetch_add(ns, std::memory_order_relaxed);
  cell.buckets[Histogram::BucketFor(ns)].fetch_add(1, std::memory_order_relaxed);
}

void Shard::AddKeyed(uint64_t key, uint64_t ops, uint64_t bytes) {
  // Single-writer open addressing: the owning thread is the only inserter, so
  // a plain probe-and-claim is race-free; concurrent readers (Collect) pair
  // an acquire key load with the release key store below.
  size_t slot = (key * 0x9e3779b97f4a7c15ull) & (kKeyedCap - 1);
  for (size_t probe = 0; probe < kKeyedCap; ++probe) {
    KeyedCell& cell = keyed[slot];
    const uint64_t k = cell.key.load(std::memory_order_relaxed);
    if (k == key) {
      cell.ops.fetch_add(ops, std::memory_order_relaxed);
      cell.bytes.fetch_add(bytes, std::memory_order_relaxed);
      return;
    }
    if (k == 0) {
      cell.ops.store(ops, std::memory_order_relaxed);
      cell.bytes.store(bytes, std::memory_order_relaxed);
      cell.key.store(key, std::memory_order_release);
      return;
    }
    slot = (slot + 1) & (kKeyedCap - 1);
  }
  counters[static_cast<size_t>(Counter::kKeyedOverflow)].fetch_add(1, std::memory_order_relaxed);
}

void Shard::Zero() {
  for (auto& c : counters) {
    c.store(0, std::memory_order_relaxed);
  }
  for (auto& p : phases) {
    p.count.store(0, std::memory_order_relaxed);
    p.sum.store(0, std::memory_order_relaxed);
    p.min.store(0, std::memory_order_relaxed);
    p.max.store(0, std::memory_order_relaxed);
    for (auto& b : p.buckets) {
      b.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& cell : keyed) {
    cell.ops.store(0, std::memory_order_relaxed);
    cell.bytes.store(0, std::memory_order_relaxed);
    cell.key.store(0, std::memory_order_relaxed);
  }
  trace.clear();
  trace.shrink_to_fit();
  trace_next = 0;
}

// ---- Registry ----

Registry& Registry::Global() {
  static Registry* instance = new Registry();  // leaked by design
  return *instance;
}

void Registry::Enable(bool on) { detail::g_enabled.store(on, std::memory_order_relaxed); }

void Registry::EnableTrace(uint32_t events_per_thread) {
  trace_cap_.store(events_per_thread, std::memory_order_relaxed);
  detail::g_trace.store(events_per_thread > 0, std::memory_order_relaxed);
}

Registry::ShardHandle::~ShardHandle() {
  if (shard != nullptr) {
    Registry::Global().Release(shard);
  }
}

Shard* Registry::LocalShard() {
  static thread_local ShardHandle handle;
  if (handle.shard == nullptr) {
    handle.shard = Acquire();
  }
  return handle.shard;
}

Shard* Registry::Acquire() {
  std::lock_guard<std::mutex> g(mu_);
  if (!free_.empty()) {
    Shard* s = free_.back();
    free_.pop_back();
    return s;
  }
  all_.push_back(std::make_unique<Shard>());
  return all_.back().get();
}

void Registry::Release(Shard* shard) {
  // Keep the shard's data (it still contributes to Collect until Reset);
  // a later thread will reuse it, so peak memory tracks peak concurrency.
  std::lock_guard<std::mutex> g(mu_);
  free_.push_back(shard);
}

size_t Registry::num_shards() const {
  std::lock_guard<std::mutex> g(mu_);
  return all_.size();
}

void Registry::AddCount(Counter c, uint64_t delta) {
  LocalShard()->counters[static_cast<size_t>(c)].fetch_add(delta, std::memory_order_relaxed);
  FlightRecorder::NoteCounter(c, delta);
}

void Registry::AddPhase(Phase p, uint64_t ns) {
  LocalShard()->AddPhase(p, ns);
  FlightRecorder::NotePhase(p, ns);
}

void Registry::AddVerb(Verb v, uint32_t src, uint32_t dst, uint64_t bytes) {
  LocalShard()->AddKeyed(FabricKey(v, src, dst), 1, bytes);
}

void Registry::AddHtmAbort(uint32_t code, HtmSite site) {
  LocalShard()->AddKeyed(HtmAbortKey(code, site), 1, 0);
  FlightRecorder::NoteHtmAbort(code, site);
}

void Registry::AddTrace(TraceName name, uint32_t node, uint32_t worker, uint64_t ts_ns,
                        uint64_t dur_ns, uint64_t arg, bool instant) {
  const uint32_t cap = trace_cap_.load(std::memory_order_relaxed);
  if (cap == 0) {
    return;
  }
  Shard* s = LocalShard();
  if (s->trace.size() != cap) {
    s->trace.assign(cap, TraceEvent{});
    s->trace_next = 0;
  }
  if (s->trace_next >= cap) {
    s->counters[static_cast<size_t>(Counter::kTraceDropped)].fetch_add(
        1, std::memory_order_relaxed);
  }
  TraceEvent& e = s->trace[s->trace_next % cap];
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.arg = arg;
  e.node = static_cast<uint16_t>(node);
  e.worker = static_cast<uint16_t>(worker);
  e.name = name;
  e.instant = instant ? 1 : 0;
  s->trace_next++;
}

Snapshot Registry::Collect() const {
  Snapshot out;
  struct KeyedAgg {
    uint64_t ops = 0;
    uint64_t bytes = 0;
  };
  std::vector<std::pair<uint64_t, KeyedAgg>> agg;  // small domain; linear merge

  std::lock_guard<std::mutex> g(mu_);
  for (const auto& shard : all_) {
    for (size_t i = 0; i < kNumCounters; ++i) {
      out.counters[i] += shard->counters[i].load(std::memory_order_relaxed);
    }
    for (size_t i = 0; i < kNumPhases; ++i) {
      const Shard::PhaseCell& cell = shard->phases[i];
      const uint64_t count = cell.count.load(std::memory_order_relaxed);
      if (count == 0) {
        continue;
      }
      uint64_t buckets[Histogram::kNumBuckets];
      for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
        buckets[b] = cell.buckets[b].load(std::memory_order_relaxed);
      }
      out.phases[i].MergeFrom(buckets, count, cell.sum.load(std::memory_order_relaxed),
                              cell.min.load(std::memory_order_relaxed),
                              cell.max.load(std::memory_order_relaxed));
    }
    for (const Shard::KeyedCell& cell : shard->keyed) {
      const uint64_t key = cell.key.load(std::memory_order_acquire);
      if (key == 0) {
        continue;
      }
      KeyedAgg* found = nullptr;
      for (auto& [k, v] : agg) {
        if (k == key) {
          found = &v;
          break;
        }
      }
      if (found == nullptr) {
        agg.emplace_back(key, KeyedAgg{});
        found = &agg.back().second;
      }
      found->ops += cell.ops.load(std::memory_order_relaxed);
      found->bytes += cell.bytes.load(std::memory_order_relaxed);
    }
  }
  std::sort(agg.begin(), agg.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [key, v] : agg) {
    Snapshot::Keyed entry{key, v.ops, v.bytes};
    if (KeyDomain(key) == kDomainFabric) {
      out.fabric.push_back(entry);
    } else if (KeyDomain(key) == kDomainHtm) {
      out.htm_aborts.push_back(entry);
    }
  }
  return out;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> g(mu_);
  for (const auto& shard : all_) {
    shard->Zero();
  }
}

// ---- Snapshot ----

uint64_t Snapshot::PhaseSumNs() const {
  uint64_t total = 0;
  for (const Histogram& h : phases) {
    total += h.sum();
  }
  return total;
}

uint64_t Snapshot::FabricOps() const {
  uint64_t total = 0;
  for (const Keyed& k : fabric) {
    total += k.ops;
  }
  return total;
}

uint64_t Snapshot::FabricBytes() const {
  uint64_t total = 0;
  for (const Keyed& k : fabric) {
    total += k.bytes;
  }
  return total;
}

uint64_t Snapshot::HtmAborts() const {
  uint64_t total = 0;
  for (const Keyed& k : htm_aborts) {
    if (((k.key >> 16) & 0xffffffffull) != 0) {  // skip code "none"
      total += k.ops;
    }
  }
  return total;
}

namespace {

void WriteHistogramJson(std::FILE* f, const Histogram& h) {
  std::fprintf(f,
               "{\"count\":%llu,\"sum_ns\":%llu,\"mean_ns\":%.1f,\"min_ns\":%llu,"
               "\"max_ns\":%llu,\"p50_ns\":%llu,\"p90_ns\":%llu,\"p99_ns\":%llu,"
               "\"p999_ns\":%llu}",
               (unsigned long long)h.count(), (unsigned long long)h.sum(), h.Mean(),
               (unsigned long long)h.min(), (unsigned long long)h.max(),
               (unsigned long long)h.Percentile(50), (unsigned long long)h.Percentile(90),
               (unsigned long long)h.Percentile(99), (unsigned long long)h.Percentile(99.9));
}

}  // namespace

void Snapshot::WriteJson(std::FILE* f) const {
  std::fprintf(f, "{\n  \"counters\": {");
  for (size_t i = 0; i < kNumCounters; ++i) {
    std::fprintf(f, "%s\"%s\": %llu", i == 0 ? "" : ", ",
                 CounterName(static_cast<Counter>(i)), (unsigned long long)counters[i]);
  }
  std::fprintf(f, "},\n  \"phases\": {");
  for (size_t i = 0; i < kNumPhases; ++i) {
    std::fprintf(f, "%s\n    \"%s\": ", i == 0 ? "" : ",", PhaseName(static_cast<Phase>(i)));
    WriteHistogramJson(f, phases[i]);
  }
  std::fprintf(f, "\n  },\n  \"htm_aborts\": [");
  for (size_t i = 0; i < htm_aborts.size(); ++i) {
    const Keyed& k = htm_aborts[i];
    const uint32_t code = static_cast<uint32_t>((k.key >> 16) & 0xffffffffull);
    const HtmSite site = static_cast<HtmSite>(k.key & 0xffff);
    std::fprintf(f, "%s\n    {\"code\": \"%s\", \"site\": \"%s\", \"count\": %llu}",
                 i == 0 ? "" : ",", HtmAbortCodeName(code), HtmSiteName(site),
                 (unsigned long long)k.ops);
  }
  std::fprintf(f, "\n  ],\n  \"fabric\": [");
  for (size_t i = 0; i < fabric.size(); ++i) {
    const Keyed& k = fabric[i];
    const Verb verb = static_cast<Verb>((k.key >> 32) & 0xffffffull);
    const uint32_t src = static_cast<uint32_t>((k.key >> 16) & 0xffff);
    const uint32_t dst = static_cast<uint32_t>(k.key & 0xffff);
    std::fprintf(f,
                 "%s\n    {\"verb\": \"%s\", \"src\": %u, \"dst\": %u, \"ops\": %llu, "
                 "\"bytes\": %llu}",
                 i == 0 ? "" : ",", VerbName(verb), src, dst, (unsigned long long)k.ops,
                 (unsigned long long)k.bytes);
  }
  std::fprintf(f, "\n  ]\n}\n");
}

bool Snapshot::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  WriteJson(f);
  std::fclose(f);
  return true;
}

}  // namespace drtmr::obs
