// Engine-wide metrics registry: per-phase commit latency, HTM abort taxonomy
// (abort code × call-site), fabric verb/byte counters (verb × node pair), and
// scalar transaction counters.
//
// Design (DESIGN.md "Observability"):
//  * one Shard per OS thread, handed out from a free list on first use and
//    returned on thread exit — hot paths only ever touch their own shard, so
//    recording never contends on shared cache lines;
//  * shard cells are relaxed std::atomic<uint64_t> (plain loads/stores on
//    x86), which keeps concurrent Collect() racing a live writer well-defined
//    and the whole layer ThreadSanitizer-clean;
//  * everything is compile-in but runtime-toggled: with the registry disabled
//    (the default) every hook is a single relaxed bool load and branch, and
//    nothing is allocated;
//  * recording charges no *virtual* time, so simulated throughput/latency
//    results are bit-identical with observability on or off.
//
// Exact snapshots require writers to be quiescent (the benchmark driver joins
// its workers before reporting); a concurrent snapshot is safe but may miss
// in-flight increments.
#ifndef DRTMR_SRC_OBS_METRICS_H_
#define DRTMR_SRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/trace.h"
#include "src/util/histogram.h"

namespace drtmr::obs {

// ---- dimensions ----

// Commit-protocol phases (Fig. 7 steps; see DESIGN.md "Observability" for the
// exact begin/end points). Phases are disjoint: summed across a run they
// account for ≈ the whole per-transaction latency.
enum class Phase : uint32_t {
  kExecution = 0,   // Begin() -> Commit() entry: reads, buffered writes, backoff
  kLock,            // C.1 remote lock acquisition (RDMA CAS)
  kValidation,      // C.2 remote validation / read-only revalidation
  kHtmCommit,       // C.3+C.4 HTM region including retries
  kReplication,     // R.1 log replication wait + R.2 makeup
  kWriteBack,       // C.5 write-back, insert/delete shipping, C.6 unlock
  kFallback,        // §6.1 fallback commit (opaque; replaces the phases above)
  kCount
};
inline constexpr size_t kNumPhases = static_cast<size_t>(Phase::kCount);
const char* PhaseName(Phase p);

// Scalar counters mirrored from the transaction/replication layers so a
// metrics snapshot is self-contained.
enum class Counter : uint32_t {
  kTxnCommit = 0,
  kTxnAbortLock,        // C.1 lock acquisition failed
  kTxnAbortValidation,  // C.2/C.3 seq or incarnation mismatch
  kTxnAbortUser,
  kTxnFallback,         // commit took the fallback handler
  kHtmCommitRetry,      // HTM commit region retried
  kRepLogEntries,       // replication log slots pushed
  kRepLogBytes,         // replication log bytes pushed
  kFabricDoorbells,     // chained submissions rung (one doorbell each)
  kFabricChainedVerbs,  // WQEs carried by those chains
  kRepWindowFlushes,    // group-commit windows fenced
  kRepWindowTxns,       // transactions closed across those windows (occupancy)
  kRepSlotsRetired,     // speculative slots tombstoned by an abort
  kRepSlotsSuperseded,  // speculative slots re-staged with a corrected image
  kKeyedOverflow,       // keyed-table slots exhausted (taxonomy truncated)
  kTraceDropped,        // trace ring overwrites
  kMembershipEpochChange,  // committed configuration epoch advanced
  kMembershipSuspicion,    // failure detector suspected a node
  kMembershipRejoin,       // fenced node rejoined in a later epoch
  kFenceRejectedVerb,      // mutating verb refused: issuer's epoch is stale
  kFenceSelfAbort,         // commit self-fenced (stale epoch / expired lease)
  // Protocol analyzer violations (src/chk/protocol_analyzer.h), one per class.
  kAnalyzerUnlockedWrite,      // data store with no lock/HTM/seqlock protection
  kAnalyzerSeqlockViolation,   // stale versions at window close / torn read accepted
  kAnalyzerAtomicityViolation, // conflicting access or in-region verb missed abort
  kAnalyzerLockHygiene,        // cross-thread release, double release, leaked lock
  kAnalyzerEpochViolation,     // mutating verb admitted with a stale epoch
  kCount
};
inline constexpr size_t kNumCounters = static_cast<size_t>(Counter::kCount);
const char* CounterName(Counter c);

// One-sided / two-sided fabric verbs, counted per (src, dst) node pair.
enum class Verb : uint32_t { kRead = 0, kWrite, kCas, kFaa, kSend, kCount };
const char* VerbName(Verb v);

// Call sites that open HTM regions; keys the abort taxonomy together with the
// abort code (§6.4's conflict/capacity/IO breakdown, per site).
enum class HtmSite : uint32_t {
  kOther = 0,
  kLocalRead,   // execution-phase local record read (Fig. 5)
  kCommit,      // commit step C.3/C.4 region
  kStore,       // HTM-protected store structure operations
  kBaseline,    // baseline engines (whole-transaction DrTM regions etc.)
  kCount
};
const char* HtmSiteName(HtmSite s);

// Abort-code names mirror sim::HtmTxn::AbortCode / HtmDesc::DoomCode values
// (obs sits below sim and cannot include it).
const char* HtmAbortCodeName(uint32_t code);

// ---- keyed-counter key packing ----

inline constexpr uint64_t kDomainFabric = 1;
inline constexpr uint64_t kDomainHtm = 2;

inline constexpr uint64_t FabricKey(Verb v, uint32_t src, uint32_t dst) {
  return (kDomainFabric << 56) | (static_cast<uint64_t>(v) << 32) |
         (static_cast<uint64_t>(src & 0xffff) << 16) | (dst & 0xffff);
}
inline constexpr uint64_t HtmAbortKey(uint32_t code, HtmSite site) {
  return (kDomainHtm << 56) | (static_cast<uint64_t>(code) << 16) |
         static_cast<uint64_t>(site);
}
inline constexpr uint64_t KeyDomain(uint64_t key) { return key >> 56; }

// ---- shards ----

struct Shard {
  struct PhaseCell {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{0};  // valid only when count > 0
    std::atomic<uint64_t> max{0};
    std::array<std::atomic<uint64_t>, Histogram::kNumBuckets> buckets{};
  };
  struct KeyedCell {
    std::atomic<uint64_t> key{0};  // 0 = empty
    std::atomic<uint64_t> ops{0};
    std::atomic<uint64_t> bytes{0};
  };
  static constexpr size_t kKeyedCap = 2048;  // power of two

  std::array<std::atomic<uint64_t>, kNumCounters> counters{};
  std::array<PhaseCell, kNumPhases> phases{};
  std::array<KeyedCell, kKeyedCap> keyed{};
  // Trace ring: single-writer, allocated lazily when tracing is enabled.
  std::vector<TraceEvent> trace;
  uint64_t trace_next = 0;  // total events ever written (ring wraps at size)

  void AddPhase(Phase p, uint64_t ns);
  void AddKeyed(uint64_t key, uint64_t ops, uint64_t bytes);
  void Zero();
};

// ---- merged snapshot ----

struct Snapshot {
  struct Keyed {
    uint64_t key = 0;
    uint64_t ops = 0;
    uint64_t bytes = 0;
  };

  std::array<uint64_t, kNumCounters> counters{};
  std::array<Histogram, kNumPhases> phases{};
  std::vector<Keyed> fabric;      // sorted by key (verb, src, dst)
  std::vector<Keyed> htm_aborts;  // sorted by key (code, site)

  uint64_t counter(Counter c) const { return counters[static_cast<size_t>(c)]; }
  const Histogram& phase(Phase p) const { return phases[static_cast<size_t>(p)]; }
  // Total virtual nanoseconds attributed across all phases (execution
  // included): for a quiesced run this approximates the end-to-end latency sum.
  uint64_t PhaseSumNs() const;
  uint64_t FabricOps() const;
  uint64_t FabricBytes() const;
  uint64_t HtmAborts() const;

  // Serializes the snapshot as a single JSON object (counters, per-phase
  // percentiles, abort taxonomy, fabric matrix).
  void WriteJson(std::FILE* f) const;
  bool WriteJson(const std::string& path) const;
};

// ---- registry ----

class Registry {
 public:
  // Process-wide instance (intentionally leaked: shard handles in
  // thread-local storage may be released after static destructors run).
  static Registry& Global();

  void Enable(bool on);
  // Enables per-thread trace rings of `events_per_thread` events (0 disables
  // tracing). Implies nothing about Enable(); both are normally turned on
  // together by the bench harness.
  void EnableTrace(uint32_t events_per_thread);

  // Hot-path recording (callers should gate on obs::Enabled()).
  void AddCount(Counter c, uint64_t delta = 1);
  void AddPhase(Phase p, uint64_t ns);
  void AddVerb(Verb v, uint32_t src, uint32_t dst, uint64_t bytes);
  void AddHtmAbort(uint32_t code, HtmSite site);
  void AddTrace(TraceName name, uint32_t node, uint32_t worker, uint64_t ts_ns, uint64_t dur_ns,
                uint64_t arg, bool instant = false);

  // Merges every shard (live and released) into one snapshot.
  Snapshot Collect() const;
  // Writes all trace rings as one Chrome trace_event JSON array, sorted by
  // timestamp. Call at quiescence. Implemented in trace.cc.
  void WriteChromeTrace(std::FILE* f) const;
  bool WriteChromeTrace(const std::string& path) const;

  // Zeroes all shards (counters, phases, taxonomy, trace rings). Callers must
  // be quiesced.
  void Reset();

  uint32_t trace_capacity() const { return trace_cap_.load(std::memory_order_relaxed); }
  size_t num_shards() const;

 private:
  Registry() = default;
  Shard* LocalShard();
  Shard* Acquire();
  void Release(Shard* shard);

  struct ShardHandle {
    Shard* shard = nullptr;
    ~ShardHandle();
  };

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Shard>> all_;
  std::vector<Shard*> free_;
  std::atomic<uint32_t> trace_cap_{0};
};

namespace detail {
// Fast-path flags, written only by Registry::Enable/EnableTrace.
inline std::atomic<bool> g_enabled{false};
inline std::atomic<bool> g_trace{false};
}  // namespace detail

inline bool Enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }
inline bool TraceEnabled() { return detail::g_trace.load(std::memory_order_relaxed); }

// No-op-when-disabled convenience hooks used throughout sim/txn/rep.
inline void Count(Counter c, uint64_t delta = 1) {
  if (Enabled()) {
    Registry::Global().AddCount(c, delta);
  }
}
inline void PhaseSample(Phase p, uint64_t ns) {
  if (Enabled()) {
    Registry::Global().AddPhase(p, ns);
  }
}
inline void CountVerb(Verb v, uint32_t src, uint32_t dst, uint64_t bytes) {
  if (Enabled()) {
    Registry::Global().AddVerb(v, src, dst, bytes);
  }
}
inline void CountHtmAbort(uint32_t code, HtmSite site) {
  if (Enabled()) {
    Registry::Global().AddHtmAbort(code, site);
  }
}

}  // namespace drtmr::obs

#endif  // DRTMR_SRC_OBS_METRICS_H_
