#include "src/obs/flight_recorder.h"

#include <algorithm>

namespace drtmr::obs {

Phase SlowTxn::DominantPhase() const {
  size_t best = 0;
  for (size_t i = 1; i < kNumPhases; ++i) {
    if (phase_ns[i] > phase_ns[best]) {
      best = i;
    }
  }
  return static_cast<Phase>(best);
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* instance = new FlightRecorder();  // leaked by design
  return *instance;
}

void FlightRecorder::Enable(uint32_t k) {
  std::lock_guard<std::mutex> g(mu_);
  cap_.store(k, std::memory_order_relaxed);
  detail::g_flight_enabled.store(k > 0, std::memory_order_relaxed);
  top_.clear();
  top_.reserve(k);
  floor_ns_.store(0, std::memory_order_relaxed);
}

void FlightRecorder::Reset() {
  std::lock_guard<std::mutex> g(mu_);
  top_.clear();
  floor_ns_.store(0, std::memory_order_relaxed);
}

void FlightRecorder::TxnBegin(uint32_t node, uint32_t worker) {
  static thread_local SlowTxn scratch;
  scratch = SlowTxn{};
  scratch.node = node;
  scratch.worker = worker;
  detail::g_flight_active = &scratch;
}

void FlightRecorder::TxnEnd(uint32_t type, uint64_t start_ns, uint64_t total_ns) {
  SlowTxn* s = detail::g_flight_active;
  detail::g_flight_active = nullptr;
  if (s == nullptr) {
    return;
  }
  const uint32_t cap = cap_.load(std::memory_order_relaxed);
  if (cap == 0) {
    return;
  }
  // Fast reject: a full top-K set with a slower floor means this transaction
  // cannot place. The floor only ever rises, so a stale read merely admits a
  // transaction the locked path below will discard.
  if (total_ns <= floor_ns_.load(std::memory_order_relaxed)) {
    return;
  }
  s->type = type;
  s->start_ns = start_ns;
  s->total_ns = total_ns;
  std::lock_guard<std::mutex> g(mu_);
  if (top_.size() < cap) {
    top_.push_back(*s);
  } else {
    auto slowest_floor = std::min_element(
        top_.begin(), top_.end(),
        [](const SlowTxn& a, const SlowTxn& b) { return a.total_ns < b.total_ns; });
    if (slowest_floor->total_ns >= total_ns) {
      return;
    }
    *slowest_floor = *s;
  }
  if (top_.size() == cap) {
    uint64_t floor = ~0ull;
    for (const SlowTxn& t : top_) {
      floor = std::min(floor, t.total_ns);
    }
    floor_ns_.store(floor, std::memory_order_relaxed);
  }
}

void FlightRecorder::NotePhase(Phase p, uint64_t ns) {
  SlowTxn* s = detail::g_flight_active;
  if (s == nullptr) {
    return;
  }
  s->phase_ns[static_cast<size_t>(p)] += ns;
  s->phase_count[static_cast<size_t>(p)]++;
}

void FlightRecorder::NoteCounter(Counter c, uint64_t delta) {
  SlowTxn* s = detail::g_flight_active;
  if (s == nullptr) {
    return;
  }
  const uint32_t d = static_cast<uint32_t>(delta);
  switch (c) {
    case Counter::kTxnAbortLock: s->aborts_lock += d; break;
    case Counter::kTxnAbortValidation: s->aborts_validation += d; break;
    case Counter::kTxnAbortUser: s->aborts_user += d; break;
    case Counter::kTxnFallback: s->fallbacks += d; break;
    case Counter::kHtmCommitRetry: s->htm_retries += d; break;
    default: break;  // only the per-transaction abort trail is recorded
  }
}

void FlightRecorder::NoteHtmAbort(uint32_t code, HtmSite site) {
  SlowTxn* s = detail::g_flight_active;
  if (s == nullptr) {
    return;
  }
  for (uint32_t i = 0; i < s->htm_trail_len; ++i) {
    SlowTxn::HtmAbort& e = s->htm_trail[i];
    if (e.code == code && e.site == static_cast<uint16_t>(site)) {
      e.count++;
      return;
    }
  }
  if (s->htm_trail_len < SlowTxn::kTrailCap) {
    s->htm_trail[s->htm_trail_len++] =
        SlowTxn::HtmAbort{static_cast<uint16_t>(code), static_cast<uint16_t>(site), 1};
  }
}

std::vector<SlowTxn> FlightRecorder::Snapshot() const {
  std::vector<SlowTxn> out;
  {
    std::lock_guard<std::mutex> g(mu_);
    out = top_;
  }
  std::sort(out.begin(), out.end(),
            [](const SlowTxn& a, const SlowTxn& b) { return a.total_ns > b.total_ns; });
  return out;
}

void FlightRecorder::WriteJson(std::FILE* f) const {
  const std::vector<SlowTxn> slow = Snapshot();
  std::fprintf(f, "[");
  for (size_t i = 0; i < slow.size(); ++i) {
    const SlowTxn& t = slow[i];
    std::fprintf(f,
                 "%s\n    {\"rank\": %zu, \"total_ns\": %llu, \"start_ns\": %llu, "
                 "\"node\": %u, \"worker\": %u, \"type\": %u, \"attempts\": %u, "
                 "\"dominant_phase\": \"%s\",\n     \"phases\": {",
                 i == 0 ? "" : ",", i, (unsigned long long)t.total_ns,
                 (unsigned long long)t.start_ns, t.node, t.worker, t.type, t.Attempts(),
                 PhaseName(t.DominantPhase()));
    bool first = true;
    for (size_t p = 0; p < kNumPhases; ++p) {
      if (t.phase_count[p] == 0) {
        continue;
      }
      std::fprintf(f, "%s\"%s\": {\"ns\": %llu, \"count\": %u}", first ? "" : ", ",
                   PhaseName(static_cast<Phase>(p)), (unsigned long long)t.phase_ns[p],
                   t.phase_count[p]);
      first = false;
    }
    std::fprintf(f,
                 "},\n     \"aborts\": {\"lock\": %u, \"validation\": %u, \"user\": %u, "
                 "\"fallback\": %u, \"htm_retry\": %u},\n     \"htm_trail\": [",
                 t.aborts_lock, t.aborts_validation, t.aborts_user, t.fallbacks,
                 t.htm_retries);
    for (uint32_t e = 0; e < t.htm_trail_len; ++e) {
      std::fprintf(f, "%s{\"code\": \"%s\", \"site\": \"%s\", \"count\": %u}",
                   e == 0 ? "" : ", ", HtmAbortCodeName(t.htm_trail[e].code),
                   HtmSiteName(static_cast<HtmSite>(t.htm_trail[e].site)),
                   t.htm_trail[e].count);
    }
    std::fprintf(f, "]}");
  }
  std::fprintf(f, slow.empty() ? "]" : "\n  ]");
}

}  // namespace drtmr::obs
