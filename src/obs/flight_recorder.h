// Slow-transaction flight recorder: a bounded top-K structure that keeps the
// K slowest transactions of a run together with their full per-phase
// virtual-time breakdown, abort counters, and HTM-abort trail. When a
// benchmark regresses, the flight recorder in the emitted BENCH json already
// says *which phase* moved and what the transaction was aborting on — the
// regression is attributable without a rerun.
//
// Wiring (no transaction-layer changes required):
//  * the workload driver brackets each measured transaction with
//    TxnBegin/TxnEnd on the worker thread, which arms a thread-local scratch
//    record;
//  * obs::Registry forwards every phase sample, abort counter, and HTM-abort
//    taxonomy event to the armed scratch record of the recording thread;
//  * TxnEnd offers the scratch to the global top-K: a relaxed floor check
//    keeps the common case (txn faster than the current K-th slowest) free of
//    any shared-state access.
//
// Like the rest of src/obs, recording charges no *virtual* time, so simulated
// results are identical with the recorder on or off. The recorder is only fed
// while the metrics registry is enabled (the hooks live inside Registry).
#ifndef DRTMR_SRC_OBS_FLIGHT_RECORDER_H_
#define DRTMR_SRC_OBS_FLIGHT_RECORDER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace drtmr::obs {

struct SlowTxn {
  uint64_t start_ns = 0;  // virtual time of the measured iteration's begin
  uint64_t total_ns = 0;  // end-to-end virtual latency, retries included
  uint32_t node = 0;
  uint32_t worker = 0;
  uint32_t type = 0;  // workload transaction type id
  // Per-phase virtual time and sample count, summed across retries.
  std::array<uint64_t, kNumPhases> phase_ns{};
  std::array<uint32_t, kNumPhases> phase_count{};
  // Abort trail: why the retries happened.
  uint32_t aborts_lock = 0;
  uint32_t aborts_validation = 0;
  uint32_t aborts_user = 0;
  uint32_t fallbacks = 0;
  uint32_t htm_retries = 0;
  // HTM abort taxonomy (code x site), deduplicated with counts.
  struct HtmAbort {
    uint16_t code = 0;
    uint16_t site = 0;
    uint32_t count = 0;
  };
  static constexpr size_t kTrailCap = 8;
  std::array<HtmAbort, kTrailCap> htm_trail{};
  uint32_t htm_trail_len = 0;

  uint32_t Attempts() const { return 1 + aborts_lock + aborts_validation + aborts_user; }
  // The phase carrying the most virtual time — the gate's attribution handle.
  Phase DominantPhase() const;
};

class FlightRecorder {
 public:
  // Process-wide instance (leaked, like obs::Registry, so thread-local
  // scratch teardown can never outlive it).
  static FlightRecorder& Global();

  // Keeps the `k` slowest transactions; 0 disables. Callers must be quiesced
  // (no transaction in flight on any thread).
  void Enable(uint32_t k);
  void Reset();
  uint32_t capacity() const { return cap_.load(std::memory_order_relaxed); }

  // Transaction scope, called by the workload driver on the worker thread.
  // TxnBegin arms the thread's scratch record; TxnEnd disarms it and offers
  // the record to the top-K set.
  void TxnBegin(uint32_t node, uint32_t worker);
  void TxnEnd(uint32_t type, uint64_t start_ns, uint64_t total_ns);

  // Recording hooks, forwarded by obs::Registry on the recording thread.
  // No-ops unless the calling thread is inside a TxnBegin/TxnEnd bracket.
  static void NotePhase(Phase p, uint64_t ns);
  static void NoteCounter(Counter c, uint64_t delta);
  static void NoteHtmAbort(uint32_t code, HtmSite site);

  // The captured transactions, slowest first. Call at quiescence.
  std::vector<SlowTxn> Snapshot() const;
  // Serializes Snapshot() as a JSON array (schema in DESIGN.md §12).
  void WriteJson(std::FILE* f) const;

 private:
  FlightRecorder() = default;

  mutable std::mutex mu_;
  std::vector<SlowTxn> top_;           // bounded by cap_, unsorted
  std::atomic<uint32_t> cap_{0};
  std::atomic<uint64_t> floor_ns_{0};  // min total_ns in a full top_ set
};

namespace detail {
// Armed scratch record of the current thread; non-null only between
// TxnBegin and TxnEnd on a driver worker.
inline thread_local SlowTxn* g_flight_active = nullptr;
inline std::atomic<bool> g_flight_enabled{false};
}  // namespace detail

inline bool FlightEnabled() {
  return detail::g_flight_enabled.load(std::memory_order_relaxed);
}

}  // namespace drtmr::obs

#endif  // DRTMR_SRC_OBS_FLIGHT_RECORDER_H_
