// RAII per-phase timer driven by the virtual clock. Construction snapshots
// the calling worker's SimClock; Stop() (or destruction) attributes the
// elapsed virtual nanoseconds to the phase histogram and, when tracing is on,
// emits a matching trace span. When the registry is disabled the constructor
// is a single relaxed load and the timer is inert.
#ifndef DRTMR_SRC_OBS_PHASE_TIMER_H_
#define DRTMR_SRC_OBS_PHASE_TIMER_H_

#include "src/obs/metrics.h"
#include "src/sim/thread_context.h"

namespace drtmr::obs {

class PhaseTimer {
 public:
  PhaseTimer(sim::ThreadContext* ctx, Phase phase) {
    if (Enabled()) {
      ctx_ = ctx;
      phase_ = phase;
      start_ns_ = ctx->clock.now_ns();
    }
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
  ~PhaseTimer() { Stop(); }

  // Ends the phase early (idempotent); the destructor is then a no-op.
  void Stop() {
    if (ctx_ == nullptr) {
      return;
    }
    const uint64_t end_ns = ctx_->clock.now_ns();
    Registry& reg = Registry::Global();
    reg.AddPhase(phase_, end_ns - start_ns_);
    if (TraceEnabled()) {
      reg.AddTrace(TraceNameForPhase(phase_), ctx_->node_id, ctx_->worker_id, start_ns_,
                   end_ns - start_ns_, 0);
    }
    ctx_ = nullptr;
  }

  static TraceName TraceNameForPhase(Phase p) {
    switch (p) {
      case Phase::kExecution: return TraceName::kExecution;
      case Phase::kLock: return TraceName::kLock;
      case Phase::kValidation: return TraceName::kValidation;
      case Phase::kHtmCommit: return TraceName::kHtmCommit;
      case Phase::kReplication: return TraceName::kReplication;
      case Phase::kWriteBack: return TraceName::kWriteBack;
      case Phase::kFallback: return TraceName::kFallback;
      case Phase::kCount: break;
    }
    return TraceName::kExecution;
  }

 private:
  sim::ThreadContext* ctx_ = nullptr;
  Phase phase_ = Phase::kExecution;
  uint64_t start_ns_ = 0;
};

}  // namespace drtmr::obs

#endif  // DRTMR_SRC_OBS_PHASE_TIMER_H_
