// Partition -> hosting-node map. Workloads shard by partition (e.g. one
// TPC-C warehouse group per partition); after a failure, recovery re-hosts
// the dead machine's partitions on survivors, and live migration re-hosts
// them proactively during scale-out/in. Lock-free reads on the hot path.
//
// Each entry packs (epoch, migrating, owner) into one 64-bit word so a
// routing read observes a *consistent* pair — the stale-routing hole of the
// old two-field design was that a reader could pick up the new owner but
// route under its old begin epoch (or vice versa) and land a mutating verb
// on the pre-migration home after cutover. Rehost is a monotone CAS: a flip
// carrying an epoch older than the installed one is refused, which resolves
// concurrent migration-vs-recovery races in whichever order they land.
//
// Word layout: bits[31:0] owner node, bit[32] migrating (write-drain window
// open), bits[63:33] epoch of the flip that installed this owner.
#ifndef DRTMR_SRC_CLUSTER_PARTITION_MAP_H_
#define DRTMR_SRC_CLUSTER_PARTITION_MAP_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/util/status.h"

namespace drtmr::cluster {

class PartitionMap {
 public:
  explicit PartitionMap(uint32_t num_partitions) : entry_(num_partitions) {
    for (uint32_t i = 0; i < num_partitions; ++i) {
      entry_[i].store(Pack(i, /*migrating=*/false, /*epoch=*/0), std::memory_order_relaxed);
    }
  }

  uint32_t node_of(uint32_t partition) const {
    return OwnerOf(entry_[partition].load(std::memory_order_acquire));
  }

  uint64_t entry_epoch(uint32_t partition) const {
    return EpochOf(entry_[partition].load(std::memory_order_acquire));
  }

  bool migrating(uint32_t partition) const {
    return MigratingOf(entry_[partition].load(std::memory_order_acquire));
  }

  // Routing read with staleness rejection. `begin_epoch` is the reader's
  // transaction begin epoch (pass ~0ull to accept any entry — legacy
  // non-fenced runs). Returns:
  //   kOk          — *owner filled, safe to route.
  //   kStaleEpoch  — the entry was flipped by an epoch newer than the
  //                  reader's begin epoch; the reader must re-begin.
  //   kMigrating   — for_write and the partition is in its write-drain
  //                  window; back off and retry.
  Status Route(uint32_t partition, uint64_t begin_epoch, bool for_write,
               uint32_t* owner) const {
    const uint64_t e = entry_[partition].load(std::memory_order_acquire);
    if (EpochOf(e) > begin_epoch) {
      return Status::kStaleEpoch;
    }
    if (for_write && MigratingOf(e)) {
      return Status::kMigrating;
    }
    *owner = OwnerOf(e);
    return Status::kOk;
  }

  // Installs (node, epoch) and clears the migrating flag. Monotone: refuses
  // (returns false) when the installed entry already carries a newer epoch —
  // the caller lost a race against another reconfiguration and must treat
  // its flip as not having happened.
  bool Rehost(uint32_t partition, uint32_t node, uint64_t epoch) {
    uint64_t cur = entry_[partition].load(std::memory_order_acquire);
    const uint64_t next = Pack(node, /*migrating=*/false, epoch);
    while (true) {
      if (EpochOf(cur) > epoch) {
        return false;
      }
      if (entry_[partition].compare_exchange_weak(cur, next, std::memory_order_acq_rel,
                                                  std::memory_order_acquire)) {
        return true;
      }
    }
  }

  // Opens/closes the write-drain window without changing owner or epoch.
  void SetMigrating(uint32_t partition, bool on) {
    uint64_t cur = entry_[partition].load(std::memory_order_acquire);
    while (true) {
      const uint64_t next = on ? (cur | kMigratingBit) : (cur & ~kMigratingBit);
      if (cur == next ||
          entry_[partition].compare_exchange_weak(cur, next, std::memory_order_acq_rel,
                                                  std::memory_order_acquire)) {
        return;
      }
    }
  }

  uint32_t num_partitions() const { return static_cast<uint32_t>(entry_.size()); }

 private:
  static constexpr uint64_t kMigratingBit = 1ull << 32;
  static constexpr uint32_t kEpochShift = 33;

  static constexpr uint64_t Pack(uint32_t owner, bool migrating, uint64_t epoch) {
    return static_cast<uint64_t>(owner) | (migrating ? kMigratingBit : 0) |
           (epoch << kEpochShift);
  }
  static constexpr uint32_t OwnerOf(uint64_t e) { return static_cast<uint32_t>(e); }
  static constexpr bool MigratingOf(uint64_t e) { return (e & kMigratingBit) != 0; }
  static constexpr uint64_t EpochOf(uint64_t e) { return e >> kEpochShift; }

  std::vector<std::atomic<uint64_t>> entry_;
};

}  // namespace drtmr::cluster

#endif  // DRTMR_SRC_CLUSTER_PARTITION_MAP_H_
