// Partition -> hosting-node map. Workloads shard by partition (e.g. one
// TPC-C warehouse group per partition); after a failure, recovery re-hosts
// the dead machine's partitions on survivors and updates this map (§5.2:
// "the instance on failed machine will be recovered on one of the surviving
// machines"). Lock-free reads on the hot path.
#ifndef DRTMR_SRC_CLUSTER_PARTITION_MAP_H_
#define DRTMR_SRC_CLUSTER_PARTITION_MAP_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace drtmr::cluster {

class PartitionMap {
 public:
  explicit PartitionMap(uint32_t num_partitions) : owner_(num_partitions) {
    for (uint32_t i = 0; i < num_partitions; ++i) {
      owner_[i].store(i, std::memory_order_relaxed);
    }
  }

  uint32_t node_of(uint32_t partition) const {
    return owner_[partition].load(std::memory_order_acquire);
  }

  void Rehost(uint32_t partition, uint32_t node) {
    owner_[partition].store(node, std::memory_order_release);
  }

  uint32_t num_partitions() const { return static_cast<uint32_t>(owner_.size()); }

 private:
  std::vector<std::atomic<uint32_t>> owner_;
};

}  // namespace drtmr::cluster

#endif  // DRTMR_SRC_CLUSTER_PARTITION_MAP_H_
