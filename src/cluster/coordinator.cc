#include "src/cluster/coordinator.h"

#include <algorithm>
#include <cassert>

namespace drtmr::cluster {

void Coordinator::RemoveLocked(uint32_t node, uint64_t tombstone_deadline) {
  for (auto it = members_.begin(); it != members_.end(); ++it) {
    if (it->node == node) {
      members_.erase(it);
      epoch_++;
      break;
    }
  }
  for (auto& t : tombstones_) {
    if (t.node == node) {
      t.deadline = tombstone_deadline;
      return;
    }
  }
  tombstones_.push_back({node, tombstone_deadline});
}

void Coordinator::Join(uint32_t node, uint64_t now, uint64_t lease) {
  std::lock_guard<std::mutex> g(mu_);
  for (auto& m : members_) {
    if (m.node == node) {
      if (m.lease_deadline >= now) {
        // Live member re-joining: refresh the lease, no new configuration.
        m.lease_deadline = now + lease;
        return;
      }
      // Expired but not yet reconfigured away: the old incarnation is fenced
      // out (epoch bump) and the node re-admitted with a fresh lease — never
      // resurrect the stale deadline.
      RemoveLocked(node, m.lease_deadline);
      break;
    }
  }
  members_.push_back({node, now + lease});
  std::sort(members_.begin(), members_.end(),
            [](const Member& a, const Member& b) { return a.node < b.node; });
  epoch_++;
  // Re-admission supersedes any prior tombstone: the new incarnation holds a
  // valid lease, so its locks are no longer dangling.
  for (auto it = tombstones_.begin(); it != tombstones_.end(); ++it) {
    if (it->node == node) {
      tombstones_.erase(it);
      break;
    }
  }
}

RenewResult Coordinator::Renew(uint32_t node, uint64_t now, uint64_t lease) {
  std::lock_guard<std::mutex> g(mu_);
  for (auto& m : members_) {
    if (m.node == node) {
      if (now > m.lease_deadline) {
        // Too late: survivors may already act on a view without this node.
        RemoveLocked(node, m.lease_deadline);
        return RenewResult::kExpired;
      }
      m.lease_deadline = now + lease;
      return RenewResult::kRenewed;
    }
  }
  return RenewResult::kExpired;
}

bool Coordinator::Reconfigure(uint64_t now, std::vector<uint32_t>* suspected) {
  std::lock_guard<std::mutex> g(mu_);
  assert(now >= last_reconfigure_now_ && "reconfiguration time moved backwards");
  last_reconfigure_now_ = now;
  const uint64_t epoch_before = epoch_;
  bool changed = false;
  for (auto it = members_.begin(); it != members_.end();) {
    if (it->lease_deadline < now) {
      if (suspected != nullptr) {
        suspected->push_back(it->node);
      }
      const uint32_t node = it->node;
      const uint64_t deadline = it->lease_deadline;
      it = members_.erase(it);
      bool had = false;
      for (auto& t : tombstones_) {
        if (t.node == node) {
          t.deadline = deadline;
          had = true;
          break;
        }
      }
      if (!had) {
        tombstones_.push_back({node, deadline});
      }
      changed = true;
    } else {
      ++it;
    }
  }
  if (changed) {
    epoch_++;
  }
  assert(epoch_ >= epoch_before && "configuration epoch moved backwards");
  (void)epoch_before;
  return changed;
}

void Coordinator::Remove(uint32_t node) {
  std::lock_guard<std::mutex> g(mu_);
  for (auto it = members_.begin(); it != members_.end(); ++it) {
    if (it->node == node) {
      members_.erase(it);
      epoch_++;
      break;
    }
  }
  // Explicit removal means "declared dead now": tombstone 0 makes the node's
  // locks immediately stealable regardless of grace.
  for (auto& t : tombstones_) {
    if (t.node == node) {
      t.deadline = 0;
      return;
    }
  }
  tombstones_.push_back({node, 0});
}

ClusterView Coordinator::view() const {
  std::lock_guard<std::mutex> g(mu_);
  ClusterView v;
  v.epoch = epoch_;
  v.members.reserve(members_.size());
  for (const auto& m : members_) {
    v.members.push_back(m.node);
  }
  return v;
}

uint64_t Coordinator::epoch() const {
  std::lock_guard<std::mutex> g(mu_);
  return epoch_;
}

uint64_t Coordinator::BumpEpoch() {
  std::lock_guard<std::mutex> g(mu_);
  return ++epoch_;
}

bool Coordinator::SafeToStealLocksOf(uint32_t node, uint64_t now) const {
  std::lock_guard<std::mutex> g(mu_);
  for (const auto& m : members_) {
    if (m.node == node) {
      return false;  // live member — its locks are owned, not dangling
    }
  }
  for (const auto& t : tombstones_) {
    if (t.node == node) {
      return t.deadline == 0 || now > t.deadline + steal_grace_;
    }
  }
  return true;  // never configured — cannot hold a lease, locks are dangling
}

uint64_t Coordinator::LeaseDeadline(uint32_t node) const {
  std::lock_guard<std::mutex> g(mu_);
  for (const auto& m : members_) {
    if (m.node == node) {
      return m.lease_deadline;
    }
  }
  return 0;
}

}  // namespace drtmr::cluster
