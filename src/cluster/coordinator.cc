#include "src/cluster/coordinator.h"

#include <algorithm>

namespace drtmr::cluster {

void Coordinator::Join(uint32_t node, uint64_t now_ms, uint64_t lease_ms) {
  std::lock_guard<std::mutex> g(mu_);
  for (auto& m : members_) {
    if (m.node == node) {
      m.lease_deadline_ms = now_ms + lease_ms;
      return;
    }
  }
  members_.push_back({node, now_ms + lease_ms});
  std::sort(members_.begin(), members_.end(),
            [](const Member& a, const Member& b) { return a.node < b.node; });
  epoch_++;
}

void Coordinator::Renew(uint32_t node, uint64_t now_ms, uint64_t lease_ms) {
  std::lock_guard<std::mutex> g(mu_);
  for (auto& m : members_) {
    if (m.node == node) {
      m.lease_deadline_ms = now_ms + lease_ms;
      return;
    }
  }
}

bool Coordinator::Reconfigure(uint64_t now_ms, std::vector<uint32_t>* suspected) {
  std::lock_guard<std::mutex> g(mu_);
  bool changed = false;
  for (auto it = members_.begin(); it != members_.end();) {
    if (it->lease_deadline_ms < now_ms) {
      if (suspected != nullptr) {
        suspected->push_back(it->node);
      }
      it = members_.erase(it);
      changed = true;
    } else {
      ++it;
    }
  }
  if (changed) {
    epoch_++;
  }
  return changed;
}

void Coordinator::Remove(uint32_t node) {
  std::lock_guard<std::mutex> g(mu_);
  for (auto it = members_.begin(); it != members_.end(); ++it) {
    if (it->node == node) {
      members_.erase(it);
      epoch_++;
      return;
    }
  }
}

ClusterView Coordinator::view() const {
  std::lock_guard<std::mutex> g(mu_);
  ClusterView v;
  v.epoch = epoch_;
  v.members.reserve(members_.size());
  for (const auto& m : members_) {
    v.members.push_back(m.node);
  }
  return v;
}

uint64_t Coordinator::epoch() const {
  std::lock_guard<std::mutex> g(mu_);
  return epoch_;
}

}  // namespace drtmr::cluster
