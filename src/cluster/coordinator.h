// Configuration service standing in for ZooKeeper + the FaRM-style lease
// protocol (§3, §5.2). Machines join the configuration, renew leases, and a
// reconfiguration pass removes machines whose lease expired (fail-stop
// suspicion), atomically committing a new configuration epoch that survivors
// observe. Only agreement on "the current configuration" is required by the
// paper, so a linearizable in-process service suffices (DESIGN.md §1).
//
// Time base: leases use a millisecond virtual timestamp supplied by the
// caller (the recovery benchmark drives it from a wall-clock thread), keeping
// the module deterministic under test.
#ifndef DRTMR_SRC_CLUSTER_COORDINATOR_H_
#define DRTMR_SRC_CLUSTER_COORDINATOR_H_

#include <cstdint>
#include <mutex>
#include <vector>

namespace drtmr::cluster {

struct ClusterView {
  uint64_t epoch = 0;
  std::vector<uint32_t> members;  // node ids, sorted

  bool Contains(uint32_t node) const {
    for (uint32_t m : members) {
      if (m == node) {
        return true;
      }
    }
    return false;
  }
};

class Coordinator {
 public:
  // Adds a machine to the configuration (bumps the epoch).
  void Join(uint32_t node, uint64_t now_ms, uint64_t lease_ms);

  // Lease renewal; a machine that stops renewing will be suspected.
  void Renew(uint32_t node, uint64_t now_ms, uint64_t lease_ms);

  // Scans leases; if any member expired, commits a new configuration without
  // it and returns true. `suspected` receives the removed nodes.
  bool Reconfigure(uint64_t now_ms, std::vector<uint32_t>* suspected);

  // Explicitly removes a node (e.g. the failure injector announcing a kill in
  // tests that do not drive lease time).
  void Remove(uint32_t node);

  ClusterView view() const;
  uint64_t epoch() const;

 private:
  struct Member {
    uint32_t node;
    uint64_t lease_deadline_ms;
  };

  mutable std::mutex mu_;
  uint64_t epoch_ = 0;
  std::vector<Member> members_;
};

}  // namespace drtmr::cluster

#endif  // DRTMR_SRC_CLUSTER_COORDINATOR_H_
