// Configuration service standing in for ZooKeeper + the FaRM-style lease
// protocol (§3, §5.2). Machines join the configuration, renew leases, and a
// reconfiguration pass removes machines whose lease expired (fail-stop
// suspicion), atomically committing a new configuration epoch that survivors
// observe. Only agreement on "the current configuration" is required by the
// paper, so a linearizable in-process service suffices (DESIGN.md §1).
//
// Time base: leases use a virtual timestamp supplied by the caller in
// whatever unit the caller drives consistently (the recovery benchmark uses
// milliseconds from a wall-clock thread; the membership layer passes raw
// virtual nanoseconds), keeping the module deterministic under test.
#ifndef DRTMR_SRC_CLUSTER_COORDINATOR_H_
#define DRTMR_SRC_CLUSTER_COORDINATOR_H_

#include <cstdint>
#include <mutex>
#include <vector>

namespace drtmr::cluster {

struct ClusterView {
  uint64_t epoch = 0;
  std::vector<uint32_t> members;  // node ids, sorted

  bool Contains(uint32_t node) const {
    for (uint32_t m : members) {
      if (m == node) {
        return true;
      }
    }
    return false;
  }
};

// Outcome of a lease renewal. A renewal that arrives after the lease deadline
// is refused: by then survivors may already act on a view without the node,
// so extending the lease would re-admit a zombie. The node must rejoin
// through Join (which commits a new epoch) instead.
enum class RenewResult : uint8_t { kRenewed, kExpired };

class Coordinator {
 public:
  // Adds a machine to the configuration (bumps the epoch). Joining while
  // already a live member just refreshes the lease; joining after removal or
  // expiry commits a new epoch with a fresh lease — the old deadline is never
  // resurrected.
  void Join(uint32_t node, uint64_t now, uint64_t lease);

  // Lease renewal; a machine that stops renewing will be suspected. Renewal
  // past the deadline is refused and removes the node (epoch bump) — the
  // caller learns it has been fenced out and must Join to return.
  RenewResult Renew(uint32_t node, uint64_t now, uint64_t lease);

  // Scans leases; if any member expired, commits a new configuration without
  // it and returns true. `suspected` receives the removed nodes.
  bool Reconfigure(uint64_t now, std::vector<uint32_t>* suspected);

  // Explicitly removes a node (e.g. the failure injector announcing a kill in
  // tests that do not drive lease time). The removal tombstone is 0: the
  // node is declared dead outright, its locks may be stolen immediately.
  void Remove(uint32_t node);

  ClusterView view() const;
  uint64_t epoch() const;

  // Commits a new configuration epoch with an unchanged member set. Planned
  // reconfiguration (live shard migration cutover) uses this to fence
  // in-flight transactions begun under the pre-cutover partition placement.
  uint64_t BumpEpoch();

  // Lease-expiry removals record the lease deadline as a tombstone; a
  // survivor may steal the removed owner's locks only after
  // deadline + steal grace has passed on the survivor's clock, bounding the
  // window where a suspected-but-live node is still mid-commit. Explicit
  // Remove records tombstone 0 (immediately stealable). A current member is
  // never stealable; a node with no tombstone (never configured) is — it
  // cannot hold a lease, so its locks are dangling by definition.
  void set_steal_grace(uint64_t grace) { steal_grace_ = grace; }
  bool SafeToStealLocksOf(uint32_t node, uint64_t now) const;

  // Deadline of a live member's lease; 0 if not a member. Test/diagnostic
  // accessor.
  uint64_t LeaseDeadline(uint32_t node) const;

 private:
  struct Member {
    uint32_t node;
    uint64_t lease_deadline;
  };
  struct Tombstone {
    uint32_t node;
    uint64_t deadline;  // lease deadline at removal; 0 = explicit Remove
  };

  // Callers hold mu_.
  void RemoveLocked(uint32_t node, uint64_t tombstone_deadline);

  mutable std::mutex mu_;
  uint64_t epoch_ = 0;
  uint64_t last_reconfigure_now_ = 0;
  uint64_t steal_grace_ = 0;
  std::vector<Member> members_;
  std::vector<Tombstone> tombstones_;
};

}  // namespace drtmr::cluster

#endif  // DRTMR_SRC_CLUSTER_COORDINATOR_H_
