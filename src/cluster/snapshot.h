// Full-cluster-failure durability (§5.2: "can provide durability even under
// a complete cluster failure"). The paper's model keeps all records and logs
// in battery-backed DRAM, so a power failure preserves every node's
// registered region; this module serializes those regions (plus the
// allocator watermark) to files and restores them into a freshly constructed
// cluster.
//
// Restore protocol: build a Cluster with the same configuration, recreate
// the catalog/tables in the same order (table creation is deterministic, so
// bucket arrays land at identical offsets), then LoadClusterSnapshot. Local
// heap indices (B+-trees, backup stores) are *not* part of NVRAM and are
// rebuilt: backup stores by draining the restored NVM log rings, ordered
// indices by rescanning (left to the application, as in real recovery).
#ifndef DRTMR_SRC_CLUSTER_SNAPSHOT_H_
#define DRTMR_SRC_CLUSTER_SNAPSHOT_H_

#include <string>

#include "src/cluster/node.h"
#include "src/util/status.h"

namespace drtmr::cluster {

// Writes one file per node under `dir` (created if missing).
Status SaveClusterSnapshot(Cluster* cluster, const std::string& dir);

// Restores regions saved by SaveClusterSnapshot into `cluster`, which must
// have the same node count and memory size. Overwrites all registered
// memory; call after table creation and before starting workers.
Status LoadClusterSnapshot(Cluster* cluster, const std::string& dir);

}  // namespace drtmr::cluster

#endif  // DRTMR_SRC_CLUSTER_SNAPSHOT_H_
