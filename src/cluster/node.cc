#include "src/cluster/node.h"

#include "src/util/logging.h"

namespace drtmr::cluster {

Node::Node(uint32_t id, size_t memory_bytes, size_t log_bytes, const sim::CostModel* cost,
           uint32_t slots, const sim::HtmConfig& htm_cfg)
    : id_(id),
      bus_(std::make_unique<sim::MemoryBus>(memory_bytes, cost, slots, htm_cfg.read_lines_cap,
                                            htm_cfg.write_lines_cap)),
      htm_(std::make_unique<sim::HtmEngine>(bus_.get(), cost)),
      log_begin_(memory_bytes - log_bytes),
      log_size_(log_bytes) {
  DRTMR_CHECK(log_bytes < memory_bytes);
  // Offset 0 is reserved so stores can use 0 as a null record offset.
  alloc_ = std::make_unique<RegionAllocator>(kCacheLineSize, log_begin_);
  contexts_.reserve(slots);
  for (uint32_t i = 0; i < slots; ++i) {
    contexts_.push_back(std::make_unique<sim::ThreadContext>(
        id, i, /*seed=*/(static_cast<uint64_t>(id) << 32) | (i + 1)));
  }
}

Node::~Node() { StopService(); }

void Node::StartService(MessageHandler handler, IdleFn idle, uint32_t slot) {
  DRTMR_CHECK(!service_running_.load());
  service_stop_.store(false);
  service_running_.store(true);
  if (slot == kAutoSlot) {
    slot = static_cast<uint32_t>(contexts_.size()) - 2;
  }
  sim::ThreadContext* ctx = contexts_[slot].get();
  service_thread_ = std::thread([this, ctx, handler = std::move(handler),
                                 idle = std::move(idle)] {
    sim::Message msg;
    while (!service_stop_.load(std::memory_order_acquire)) {
      bool busy = false;
      if (!killed() && nic_ != nullptr) {
        while (nic_->TryRecv(ctx, &msg)) {
          busy = true;
          handler(ctx, msg);
        }
        if (idle) {
          idle(ctx);
        }
      }
      if (!busy) {
        std::this_thread::yield();
      }
    }
  });
}

void Node::StopService() {
  if (service_running_.load()) {
    service_stop_.store(true, std::memory_order_release);
    service_thread_.join();
    service_running_.store(false);
  }
}

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  fabric_ = std::make_unique<sim::Fabric>(&config_.cost, config_.atomicity);
  const uint32_t slots = config_.workers_per_node + config_.aux_threads + 1;
  const uint32_t machines =
      (config_.num_nodes + config_.logical_per_machine - 1) / config_.logical_per_machine;
  machine_nics_.reserve(machines);
  for (uint32_t m = 0; m < machines; ++m) {
    machine_nics_.push_back(std::make_unique<sim::RdmaNic::Occupancy>());
  }
  for (uint32_t i = 0; i < config_.num_nodes; ++i) {
    auto node = std::make_unique<Node>(i, config_.memory_bytes, config_.log_bytes, &config_.cost,
                                       slots, config_.htm);
    const uint32_t nid = fabric_->AddNode(node->bus());
    DRTMR_CHECK(nid == i);
    sim::RdmaNic* nic = fabric_->nic(i);
    if (config_.logical_per_machine > 1) {
      nic->ShareOccupancy(machine_nics_[i / config_.logical_per_machine].get());
    }
    node->AttachNic(nic);
    nodes_.push_back(std::move(node));
  }
}

Cluster::~Cluster() {
  for (auto& n : nodes_) {
    n->StopService();
  }
}

void Cluster::Kill(uint32_t id) {
  nodes_[id]->Kill();
  fabric_->Kill(id);
}

void Cluster::Revive(uint32_t id) {
  fabric_->Revive(id);
  nodes_[id]->Revive();
}

void Cluster::SetFaultPlan(const sim::FaultPlan* plan) {
  fabric_->set_fault_plan(plan);
  for (auto& n : nodes_) {
    n->htm()->set_fault_plan(plan);
  }
}

void Cluster::ResetSimTime() {
  for (auto& n : nodes_) {
    for (uint32_t s = 0; s < n->num_slots(); ++s) {
      n->context(s)->clock.Reset();
    }
    n->nic()->occupancy()->Reset();
  }
  for (auto& r : machine_nics_) {
    r->Reset();
  }
}

}  // namespace drtmr::cluster
