#include "src/cluster/snapshot.h"

#include <cstdio>
#include <filesystem>
#include <memory>

#include "src/util/logging.h"

namespace drtmr::cluster {

namespace {

struct SnapshotHeader {
  uint64_t magic;
  uint64_t memory_bytes;
  uint64_t alloc_watermark;
};

constexpr uint64_t kMagic = 0x44725452534e4150ull;  // "DrTRSNAP"

std::string NodeFile(const std::string& dir, uint32_t node) {
  return dir + "/node" + std::to_string(node) + ".nvram";
}

}  // namespace

Status SaveClusterSnapshot(Cluster* cluster, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::kInvalid;
  }
  for (uint32_t n = 0; n < cluster->num_nodes(); ++n) {
    Node* node = cluster->node(n);
    std::FILE* f = std::fopen(NodeFile(dir, n).c_str(), "wb");
    if (f == nullptr) {
      return Status::kInvalid;
    }
    SnapshotHeader hdr{kMagic, node->bus()->size(), node->allocator()->bytes_used()};
    bool ok = std::fwrite(&hdr, sizeof(hdr), 1, f) == 1 &&
              // drtmr-lint: allow(registered-memory): whole-memory snapshot of a quiesced cluster
              std::fwrite(node->bus()->raw(), 1, node->bus()->size(), f) == node->bus()->size();
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
      return Status::kInvalid;
    }
  }
  return Status::kOk;
}

Status LoadClusterSnapshot(Cluster* cluster, const std::string& dir) {
  for (uint32_t n = 0; n < cluster->num_nodes(); ++n) {
    Node* node = cluster->node(n);
    std::FILE* f = std::fopen(NodeFile(dir, n).c_str(), "rb");
    if (f == nullptr) {
      return Status::kNotFound;
    }
    SnapshotHeader hdr{};
    if (std::fread(&hdr, sizeof(hdr), 1, f) != 1 || hdr.magic != kMagic ||
        hdr.memory_bytes != node->bus()->size()) {
      std::fclose(f);
      DRTMR_LOG(Error) << "snapshot mismatch for node " << n;
      return Status::kInvalid;
    }
    const bool ok =
        // drtmr-lint: allow(registered-memory): whole-memory restore of a quiesced cluster
        std::fread(node->bus()->raw(), 1, node->bus()->size(), f) == node->bus()->size();
    std::fclose(f);
    if (!ok) {
      return Status::kInvalid;
    }
    node->allocator()->RestoreWatermark(hdr.alloc_watermark);
  }
  return Status::kOk;
}

}  // namespace drtmr::cluster
