// Autonomous availability layer (§5.2; DESIGN.md §10): failure detector,
// epoch fencing, and the reconfiguration → recovery driver.
//
// Components, all driven off virtual time through the simulated fabric:
//
//  * Per-node lease heartbeats. Each node runs a heartbeat thread that proves
//    connectivity by RDMA-READing the configuration epoch word of a current
//    view member (the lowest-numbered member first, itself only as a last
//    resort) and then renews its lease with the coordinator at its own
//    virtual timestamp. A node that is frozen or partitioned sees its
//    heartbeat verb stall past the fault window, so the renewal arrives late
//    and is refused — genuine suspicion, not test-scripted knowledge. A
//    refused renewal (or a lease observed expired) self-fences the node into
//    degraded mode: it stops committing until it rejoins in a later epoch.
//
//  * Epoch stamping. The committed ClusterView epoch is written into every
//    *member*'s registered memory at sim::Fabric::kEpochWordOff by the driver
//    (simulating the new configuration's fencing write to registered memory —
//    see the deviation note in DESIGN.md §10). A removed node's word is
//    deliberately left behind: that is what fences it — the fabric rejects
//    mutating verbs whose issuer's stamp lags the target's
//    (Fabric::FenceCheck), so a zombie's lock CAS, log append, and write-back
//    all bounce off survivors. The stamp is a plain bus CAS, so it also dooms
//    any HTM commit region that read the word.
//
//  * Reconfiguration driver. A single control thread periodically runs
//    Coordinator::Reconfigure as the expiry backstop and processes every
//    committed view change in order: re-host the removed node's partitions
//    onto the deterministically chosen survivor (next view member in ring
//    order), stamp the new epoch into every node's registered memory, drain
//    in-flight commits that entered before the stamp (Node::EnterCommit
//    counters), run the injected recovery callback, then grant all surviving
//    members a fresh lease so real-time recovery work cannot cascade into
//    further suspicions.
//
//  * Rejoin. A degraded node's heartbeat keeps ticking; once its reads go
//    through again (READs are exempt from fencing) and recovery for its old
//    incarnation has finished, it re-Joins — the coordinator bumps the epoch
//    and issues a fresh lease, never resurrecting the old one — and leaves
//    degraded mode. Its former partitions stay where recovery moved them.
#ifndef DRTMR_SRC_CLUSTER_MEMBERSHIP_H_
#define DRTMR_SRC_CLUSTER_MEMBERSHIP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/cluster/coordinator.h"
#include "src/cluster/node.h"
#include "src/cluster/partition_map.h"
#include "src/util/time_gate.h"

namespace drtmr::cluster {

struct MembershipConfig {
  // All durations are virtual nanoseconds; the coordinator is driven with
  // raw ns timestamps. Defaults suit the torture harness's microsecond-scale
  // fault windows: lease < shortest freeze (so freezes are detected), and
  // lease > heartbeat period + gate window + slack (so healthy nodes are
  // never suspected).
  uint64_t lease_ns = 25'000;
  uint64_t heartbeat_ns = 5'000;
  uint64_t driver_tick_ns = 2'000;
  // Transport-retry budget for one heartbeat probe (RdmaNic::ReadTimeout): a
  // probe into a freeze/partition window gives up after this long instead of
  // stalling until the window closes, so a healthy node probing a frozen peer
  // loses a bounded slice of its own lease and moves on to the next member.
  // Must satisfy heartbeat_ns + (nodes - 1) * probe_timeout_ns < lease_ns or
  // a cluster-wide fault makes healthy nodes suspect themselves.
  uint64_t probe_timeout_ns = 6'000;
  // Added to a committer's clock when checking its lease at commit entry;
  // must exceed the TimeGate window so that once a node's lease expires, no
  // straggler commit (at most a window behind) can still pass the check.
  uint64_t commit_guard_ns = 12'000;
  // Survivors may steal a lease-expired owner's dangling locks only this long
  // (virtual) after the expired deadline, bounding the race with a suspected
  // owner's in-flight unlock.
  uint64_t steal_grace_ns = 10'000;
  uint64_t seed = 1;
};

class MembershipService {
 public:
  // Runs recovery for `dead`, re-hosting onto `host`; injected by the harness
  // (normally rep::RecoveryManager::RecoverAfterFailure with a null pmap —
  // the driver flips the partition map itself, before stamping).
  using RecoveryFn = std::function<void(uint32_t dead, uint32_t host)>;

  // `pmap` may be null (no partition re-hosting). The coordinator must
  // already hold the initial membership (Join'ed by the harness).
  MembershipService(Cluster* cluster, Coordinator* coordinator, PartitionMap* pmap,
                    const MembershipConfig& config);
  ~MembershipService();

  void set_recovery_fn(RecoveryFn fn) { recovery_fn_ = std::move(fn); }

  // Registers the heartbeat/driver clocks with the gate (call before Start
  // and before gate-synced workers run; TimeGate registration is not
  // thread-safe).
  void set_time_gate(TimeGate* gate);

  // Enables fabric fencing, stamps the current epoch everywhere, and records
  // the initial view — without spawning threads. Deterministic unit tests
  // call this and then drive TickHeartbeat/TickDriver by hand.
  void Arm();
  // Arm() + spawn the heartbeat and driver threads.
  void Start();
  // Stops the threads and marks their gate clocks done.
  void Stop();

  // ---- state queried by the transaction layer ----

  // The epoch stamped in `node`'s registered memory.
  uint64_t NodeEpoch(uint32_t node);
  bool degraded(uint32_t node) const {
    return degraded_[node].load(std::memory_order_acquire);
  }
  // True if `node` was ever removed by a view change (even if it rejoined).
  // Quiescence sweeps use this to distinguish locks leaked by a healthy node
  // (a bug) from locks a fenced zombie could not release (expected; released
  // passively on next touch).
  bool was_suspected(uint32_t node) const {
    return ever_suspected_[node].load(std::memory_order_acquire);
  }
  uint64_t lease_deadline_ns(uint32_t node) const {
    return lease_deadline_[node].load(std::memory_order_acquire);
  }
  // Full commit-entry admission check (DESIGN.md §10): not degraded, lease
  // valid beyond the commit guard, and the stamped epoch still equals the
  // transaction's begin epoch.
  bool CommitAllowed(uint32_t node, uint64_t now_ns, uint64_t begin_epoch);

  const MembershipConfig& config() const { return config_; }

  // ---- counters (also mirrored into obs) ----
  uint64_t suspicions() const { return suspicions_.load(std::memory_order_relaxed); }
  uint64_t epoch_changes() const { return epoch_changes_.load(std::memory_order_relaxed); }
  uint64_t rejoins() const { return rejoins_.load(std::memory_order_relaxed); }
  uint64_t recoveries() const { return recoveries_.load(std::memory_order_relaxed); }

  // ---- deterministic single-step hooks (unit tests; threads not running) ----
  void TickHeartbeat(uint32_t node);
  void TickDriver();

 private:
  void HeartbeatOnce(uint32_t node, sim::ThreadContext* ctx);
  void DriverOnce(sim::ThreadContext* ctx);
  void ProcessViewChange(const ClusterView& view, sim::ThreadContext* ctx);
  // Monotone raise of `node`'s epoch word to at least `epoch` (direct bus
  // CAS: control-plane write, reaches partitioned nodes, dooms HTM readers).
  void StampEpoch(uint32_t node, uint64_t epoch);
  // Stamps the view's epoch into the view's *members* only; a removed node's
  // word stays at its old epoch — that lag is what fences its verbs.
  void StampMembers(const ClusterView& view);
  // Deterministic re-host target for `dead` under `view`: the next member in
  // ring order (smallest member id greater than `dead`, wrapping around).
  static uint32_t PickHost(const ClusterView& view, uint32_t dead);

  Cluster* cluster_;
  Coordinator* coordinator_;
  PartitionMap* pmap_;
  MembershipConfig config_;
  RecoveryFn recovery_fn_;

  // Private contexts: heartbeat thread per node + one driver thread. Workers'
  // slots on the Node are untouched.
  std::vector<std::unique_ptr<sim::ThreadContext>> hb_ctx_;
  std::unique_ptr<sim::ThreadContext> driver_ctx_;

  std::vector<std::atomic<bool>> degraded_;
  std::vector<std::atomic<bool>> ever_suspected_;
  std::vector<std::atomic<uint64_t>> lease_deadline_;
  // Blocks a removed node's rejoin until recovery of its old incarnation has
  // completed (a Join mid-recovery would race RecoveryManager's view checks).
  std::vector<std::atomic<bool>> pending_recovery_;

  // Driver-private view tracking (driver thread / manual ticks only).
  uint64_t last_epoch_ = 0;
  std::vector<uint32_t> last_members_;

  TimeGate* gate_ = nullptr;
  std::vector<uint32_t> gate_ids_;  // heartbeat clocks, then driver clock

  std::atomic<uint64_t> suspicions_{0};
  std::atomic<uint64_t> epoch_changes_{0};
  std::atomic<uint64_t> rejoins_{0};
  std::atomic<uint64_t> recoveries_{0};

  std::atomic<bool> stop_{false};
  bool armed_ = false;
  bool running_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace drtmr::cluster

#endif  // DRTMR_SRC_CLUSTER_MEMBERSHIP_H_
