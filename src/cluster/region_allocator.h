// Cache-line-aligned allocator over one node's registered memory region.
// Records must start at line boundaries (§4.2, to avoid HTM false sharing),
// and every node must lay out its tables identically so that remote nodes can
// compute bucket offsets without coordination: allocation is deterministic
// (a bump pointer plus size-class free lists), so nodes that perform the same
// table-creation sequence end up with the same offsets.
#ifndef DRTMR_SRC_CLUSTER_REGION_ALLOCATOR_H_
#define DRTMR_SRC_CLUSTER_REGION_ALLOCATOR_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/util/cacheline.h"
#include "src/util/logging.h"
#include "src/util/spinlock.h"

namespace drtmr::cluster {

class RegionAllocator {
 public:
  // Manages offsets in [begin, end) of the node's registered region.
  RegionAllocator(uint64_t begin, uint64_t end) : next_(AlignUpToLine(begin)), end_(end) {}
  RegionAllocator(const RegionAllocator&) = delete;
  RegionAllocator& operator=(const RegionAllocator&) = delete;

  // Returns a line-aligned offset, or kInvalidOffset when out of space.
  uint64_t Alloc(uint64_t size) {
    const uint64_t rounded = AlignUpToLine(size);
    const std::lock_guard<Spinlock> g(mu_);
    auto it = free_lists_.find(rounded);
    if (it != free_lists_.end() && !it->second.empty()) {
      const uint64_t off = it->second.back();
      it->second.pop_back();
      return off;
    }
    if (next_ + rounded > end_) {
      return kInvalidOffset;
    }
    const uint64_t off = next_;
    next_ += rounded;
    return off;
  }

  void Free(uint64_t offset, uint64_t size) {
    const uint64_t rounded = AlignUpToLine(size);
    const std::lock_guard<Spinlock> g(mu_);
    free_lists_[rounded].push_back(offset);
  }

  uint64_t bytes_used() const { return next_; }

  // Snapshot restore: resume allocation at a saved watermark. Free lists are
  // not persisted (blocks freed before the snapshot stay unused — a bounded
  // leak, as after real NVRAM recovery without a heap walk).
  void RestoreWatermark(uint64_t next) {
    const std::lock_guard<Spinlock> g(mu_);
    next_ = next;
    free_lists_.clear();
  }

  static constexpr uint64_t kInvalidOffset = ~0ull;

 private:
  Spinlock mu_;
  uint64_t next_;
  uint64_t end_;
  std::unordered_map<uint64_t, std::vector<uint64_t>> free_lists_;
};

}  // namespace drtmr::cluster

#endif  // DRTMR_SRC_CLUSTER_REGION_ALLOCATOR_H_
