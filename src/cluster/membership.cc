#include "src/cluster/membership.h"

#include <algorithm>

#include "src/obs/metrics.h"
#include "src/sim/fabric.h"
#include "src/util/logging.h"

namespace drtmr::cluster {

MembershipService::MembershipService(Cluster* cluster, Coordinator* coordinator,
                                     PartitionMap* pmap, const MembershipConfig& config)
    : cluster_(cluster),
      coordinator_(coordinator),
      pmap_(pmap),
      config_(config),
      degraded_(cluster->num_nodes()),
      ever_suspected_(cluster->num_nodes()),
      lease_deadline_(cluster->num_nodes()),
      pending_recovery_(cluster->num_nodes()) {
  const uint32_t n = cluster_->num_nodes();
  hb_ctx_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    // Private contexts on label-only worker slots past the node's real ones.
    hb_ctx_.push_back(std::make_unique<sim::ThreadContext>(
        i, cluster_->node(i)->num_slots(),
        (config_.seed << 16) ^ (static_cast<uint64_t>(i) + 1)));
  }
  driver_ctx_ = std::make_unique<sim::ThreadContext>(
      0, cluster_->node(0)->num_slots() + 1, (config_.seed << 16) ^ 0xd1ull);
}

MembershipService::~MembershipService() { Stop(); }

void MembershipService::set_time_gate(TimeGate* gate) {
  gate_ = gate;
  gate_ids_.clear();
  for (auto& ctx : hb_ctx_) {
    gate_ids_.push_back(gate_->AddClock(&ctx->clock));
  }
  gate_ids_.push_back(gate_->AddClock(&driver_ctx_->clock));
}

uint64_t MembershipService::NodeEpoch(uint32_t node) {
  return cluster_->fabric()->bus(node)->ReadU64(nullptr, sim::Fabric::kEpochWordOff);
}

bool MembershipService::CommitAllowed(uint32_t node, uint64_t now_ns, uint64_t begin_epoch) {
  if (degraded(node)) {
    return false;
  }
  if (now_ns + config_.commit_guard_ns > lease_deadline_ns(node)) {
    return false;
  }
  return NodeEpoch(node) == begin_epoch;
}

void MembershipService::StampEpoch(uint32_t node, uint64_t epoch) {
  sim::MemoryBus* bus = cluster_->fabric()->bus(node);
  uint64_t cur = bus->ReadU64(nullptr, sim::Fabric::kEpochWordOff);
  while (cur < epoch) {
    uint64_t observed = 0;
    // drtmr-lint: allow(registered-memory): control-plane epoch stamp, deliberately unpaced
    if (bus->CasU64(nullptr, sim::Fabric::kEpochWordOff, cur, epoch, &observed)) {
      break;
    }
    cur = observed;  // concurrent stamp raced us; retry unless already >= epoch
  }
}

void MembershipService::StampMembers(const ClusterView& view) {
  for (uint32_t m : view.members) {
    StampEpoch(m, view.epoch);
  }
}

uint32_t MembershipService::PickHost(const ClusterView& view, uint32_t dead) {
  uint32_t best = ~0u;      // smallest member > dead
  uint32_t smallest = ~0u;  // wraparound fallback
  for (uint32_t m : view.members) {
    if (m < smallest) {
      smallest = m;
    }
    if (m > dead && m < best) {
      best = m;
    }
  }
  return best != ~0u ? best : smallest;
}

void MembershipService::Arm() {
  if (armed_) {
    return;
  }
  armed_ = true;
  cluster_->fabric()->set_epoch_fencing(true);
  coordinator_->set_steal_grace(config_.steal_grace_ns);
  const ClusterView v = coordinator_->view();
  last_epoch_ = v.epoch;
  last_members_ = v.members;
  for (uint32_t m : v.members) {
    lease_deadline_[m].store(coordinator_->LeaseDeadline(m), std::memory_order_release);
  }
  StampMembers(v);
}

void MembershipService::Start() {
  DRTMR_CHECK(!running_);
  Arm();
  stop_.store(false, std::memory_order_release);
  running_ = true;
  // Heartbeats only for current members: a node outside the initial
  // configuration must not self-admit. (Removed members keep their heartbeat
  // running — it is the rejoin path.)
  // Gate clocks of nodes that get no heartbeat thread would otherwise sit
  // frozen at zero and block every Sync forever.
  if (gate_ != nullptr) {
    for (uint32_t i = 0; i < cluster_->num_nodes(); ++i) {
      const ClusterView v = coordinator_->view();
      if (!v.Contains(i)) {
        gate_->Done(gate_ids_[i]);
      }
    }
  }
  for (uint32_t m : last_members_) {
    sim::ThreadContext* ctx = hb_ctx_[m].get();
    threads_.emplace_back([this, m, ctx] {
      while (!stop_.load(std::memory_order_acquire)) {
        HeartbeatOnce(m, ctx);
        if (gate_ != nullptr) {
          gate_->Sync(&ctx->clock);
        }
      }
      // Mark our clock done before exiting: peers may still be blocked in
      // Sync against it (Done is idempotent; Stop() repeats it for safety).
      if (gate_ != nullptr) {
        gate_->Done(gate_ids_[m]);
      }
    });
  }
  sim::ThreadContext* dctx = driver_ctx_.get();
  threads_.emplace_back([this, dctx] {
    while (!stop_.load(std::memory_order_acquire)) {
      DriverOnce(dctx);
      if (gate_ != nullptr) {
        gate_->Sync(&dctx->clock);
      }
    }
    if (gate_ != nullptr) {
      gate_->Done(gate_ids_.back());
    }
  });
}

void MembershipService::Stop() {
  if (!running_) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  for (auto& t : threads_) {
    t.join();
  }
  threads_.clear();
  if (gate_ != nullptr) {
    for (uint32_t id : gate_ids_) {
      gate_->Done(id);
    }
  }
  running_ = false;
}

void MembershipService::TickHeartbeat(uint32_t node) {
  HeartbeatOnce(node, hb_ctx_[node].get());
}

void MembershipService::TickDriver() { DriverOnce(driver_ctx_.get()); }

void MembershipService::HeartbeatOnce(uint32_t node, sim::ThreadContext* ctx) {
  ctx->Charge(config_.heartbeat_ns);
  const ClusterView v = coordinator_->view();

  // Connectivity probe: RDMA READ of a member's registered epoch word (READs
  // are fence-exempt, so a fenced node can still learn the current epoch).
  // Other members are tried in ascending order; only a singleton view falls
  // back to the loopback probe. Probes carry a bounded transport-retry budget
  // (ReadTimeout): a frozen/partitioned node burns through it on every
  // member, so its renewal below arrives too late and is refused — that *is*
  // the failure detector — while a healthy node probing a frozen peer loses
  // only the budget and reaches the next member with its lease intact.
  sim::RdmaNic* nic = cluster_->fabric()->nic(node);
  bool reached = false;
  uint64_t observed_epoch = 0;
  for (uint32_t m : v.members) {
    if (m == node) {
      continue;
    }
    uint64_t word = 0;
    if (nic->ReadTimeout(ctx, m, sim::Fabric::kEpochWordOff, &word, sizeof(word),
                         config_.probe_timeout_ns) == Status::kOk) {
      reached = true;
      observed_epoch = word;
      break;
    }
  }
  if (!reached && (v.members.empty() || (v.members.size() == 1 && v.members[0] == node))) {
    // No *other* member to probe: a singleton view (this node is the lone
    // member) or an empty one (every lease expired at once — total collapse).
    // The loopback probe stands in for coordinator reachability; without it an
    // empty configuration would be absorbing, since no node could ever prove
    // connectivity against zero probe targets and rejoin.
    uint64_t word = 0;
    if (nic->ReadTimeout(ctx, node, sim::Fabric::kEpochWordOff, &word, sizeof(word),
                         config_.probe_timeout_ns) == Status::kOk) {
      reached = true;
      observed_epoch = word;
    }
  }

  const uint64_t now = ctx->clock.now_ns();
  if (!reached) {
    // Cannot prove connectivity. Once the last granted lease runs out the
    // node must stop serving (FaRM's lease rule) even though nobody told it
    // it was removed.
    if (!degraded(node) && now > lease_deadline_ns(node)) {
      degraded_[node].store(true, std::memory_order_release);
    }
    return;
  }

  if (degraded(node)) {
    // Rejoin: allowed only after recovery of the old incarnation finished.
    if (!pending_recovery_[node].load(std::memory_order_acquire)) {
      StampEpoch(node, observed_epoch);
      coordinator_->Join(node, now, config_.lease_ns);
      lease_deadline_[node].store(now + config_.lease_ns, std::memory_order_release);
      degraded_[node].store(false, std::memory_order_release);
      rejoins_.fetch_add(1, std::memory_order_relaxed);
      obs::Count(obs::Counter::kMembershipRejoin);
    }
    return;
  }

  switch (coordinator_->Renew(node, now, config_.lease_ns)) {
    case RenewResult::kRenewed:
      lease_deadline_[node].store(now + config_.lease_ns, std::memory_order_release);
      break;
    case RenewResult::kExpired:
      // Fenced out: the coordinator refused the late renewal (and removed the
      // node). Stop committing; the rejoin path above takes over.
      degraded_[node].store(true, std::memory_order_release);
      break;
  }
}

void MembershipService::DriverOnce(sim::ThreadContext* ctx) {
  ctx->Charge(config_.driver_tick_ns);
  coordinator_->Reconfigure(ctx->clock.now_ns(), nullptr);
  const ClusterView v = coordinator_->view();
  if (v.epoch != last_epoch_) {
    ProcessViewChange(v, ctx);
  }
}

void MembershipService::ProcessViewChange(const ClusterView& view, sim::ThreadContext* ctx) {
  epoch_changes_.fetch_add(1, std::memory_order_relaxed);
  obs::Count(obs::Counter::kMembershipEpochChange);

  std::vector<uint32_t> removed;
  for (uint32_t m : last_members_) {
    if (!view.Contains(m)) {
      removed.push_back(m);
    }
  }
  for (uint32_t d : removed) {
    suspicions_.fetch_add(1, std::memory_order_relaxed);
    obs::Count(obs::Counter::kMembershipSuspicion);
    ever_suspected_[d].store(true, std::memory_order_release);
    pending_recovery_[d].store(true, std::memory_order_release);
  }

  // 1. Re-route first: once the partition map points at the survivor, new
  //    transactions go there, and any still routed at the dead node abort on
  //    the epoch check below (flip-before-stamp closes the split-brain hole
  //    where a pre-flip read could pair with a post-re-host commit).
  if (pmap_ != nullptr && !view.members.empty()) {
    for (uint32_t d : removed) {
      const uint32_t host = PickHost(view, d);
      for (uint32_t p = 0; p < pmap_->num_partitions(); ++p) {
        if (pmap_->node_of(p) == d) {
          // Carry the committed view's epoch: a racing migration cutover with
          // a newer epoch wins the CAS and its flip stands.
          pmap_->Rehost(p, host, view.epoch);
        }
      }
    }
  }

  // 2. Stamp the committed epoch into every *member*'s registered memory; a
  //    removed node's word stays behind, so from here on the fabric rejects
  //    its mutating verbs (issuer stamp < target stamp), and on survivors the
  //    commit entry checks and HTM epoch reads reject transactions that began
  //    in the older epoch.
  StampMembers(view);

  // 3. Drain commits that entered before the stamp (their replication log
  //    appends have already landed, so recovery's log drain below observes
  //    them). Post-stamp entrants self-fence immediately, so this terminates.
  for (uint32_t i = 0; i < cluster_->num_nodes(); ++i) {
    while (cluster_->node(i)->inflight_commits() != 0) {
      std::this_thread::yield();
    }
  }

  // 4. Recover: re-host the removed node's data from backups.
  for (uint32_t d : removed) {
    if (recovery_fn_ && !view.members.empty()) {
      recovery_fn_(d, PickHost(view, d));
      recoveries_.fetch_add(1, std::memory_order_relaxed);
    } else if (view.members.empty()) {
      // Total collapse: every lease expired in one sweep, so there is no
      // survivor to re-host d's data on — and nobody to serve it to, since
      // every issuer is fenced by the stamp above. The partition map was
      // likewise left untouched (step 1 skipped), so d's data sits intact
      // with its fenced incarnation and comes back verbatim when the node
      // rejoins through the loopback-probe path. The suspicion is therefore
      // resolved vacuously; leaving it dangling would wedge the
      // suspicions==recoveries settle invariant forever.
      recoveries_.fetch_add(1, std::memory_order_relaxed);
    }
    pending_recovery_[d].store(false, std::memory_order_release);
  }

  // 5. Fresh leases for the survivors: recovery ran in real time while the
  //    driver's virtual clock stood still, so heartbeats may have been
  //    gate-blocked the whole time — renew everyone so that pause cannot
  //    cascade into new suspicions.
  const uint64_t now = ctx->clock.now_ns();
  for (uint32_t m : view.members) {
    if (coordinator_->Renew(m, now, config_.lease_ns) == RenewResult::kRenewed) {
      lease_deadline_[m].store(now + config_.lease_ns, std::memory_order_release);
    }
  }

  last_epoch_ = view.epoch;
  last_members_ = view.members;
}

}  // namespace drtmr::cluster
