// One simulated machine: registered memory (MemoryBus), HTM engine, RDMA NIC
// port, a region allocator over its data area, an NVM log area, and thread
// contexts for its worker and auxiliary threads (§3: n worker threads atop n
// cores, plus auxiliary threads for log truncation and insert/delete RPCs).
#ifndef DRTMR_SRC_CLUSTER_NODE_H_
#define DRTMR_SRC_CLUSTER_NODE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/cluster/region_allocator.h"
#include "src/sim/fabric.h"
#include "src/sim/htm.h"
#include "src/sim/memory_bus.h"
#include "src/util/time_gate.h"

namespace drtmr::cluster {

class Node {
 public:
  // `slots` = worker threads + auxiliary threads that may run HTM regions.
  Node(uint32_t id, size_t memory_bytes, size_t log_bytes, const sim::CostModel* cost,
       uint32_t slots, const sim::HtmConfig& htm_cfg);
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;
  ~Node();

  uint32_t id() const { return id_; }
  sim::MemoryBus* bus() { return bus_.get(); }
  sim::HtmEngine* htm() { return htm_.get(); }
  RegionAllocator* allocator() { return alloc_.get(); }

  // Set by Cluster once the node is attached to the fabric.
  void AttachNic(sim::RdmaNic* nic) { nic_ = nic; }
  sim::RdmaNic* nic() { return nic_; }

  // NVM log area: the top `log_bytes` of the registered region, RDMA-writable
  // by remote primaries (R.1) and readable by recovery.
  uint64_t log_begin() const { return log_begin_; }
  uint64_t log_size() const { return log_size_; }

  // Fail-stop flag: worker loops poll this and exit when set.
  bool killed() const { return killed_.load(std::memory_order_acquire); }
  void Kill() { killed_.store(true, std::memory_order_release); }
  void Revive() { killed_.store(false, std::memory_order_release); }

  // In-flight commit tracking: Transaction::Commit brackets its commit phase
  // with Enter/Exit so the reconfiguration driver can drain commits that
  // entered before an epoch stamp (DESIGN.md §10) before re-hosting data.
  void EnterCommit() { inflight_commits_.fetch_add(1, std::memory_order_acq_rel); }
  void ExitCommit() { inflight_commits_.fetch_sub(1, std::memory_order_acq_rel); }
  uint32_t inflight_commits() const { return inflight_commits_.load(std::memory_order_acquire); }

  // Contexts. Worker i uses slot i; auxiliary thread j uses slot workers+j.
  sim::ThreadContext* context(uint32_t slot) { return contexts_[slot].get(); }
  uint32_t num_slots() const { return static_cast<uint32_t>(contexts_.size()); }

  // Auxiliary service thread: polls the NIC receive queue, dispatching each
  // message to `handler`, and invokes `idle` between polls (log truncation
  // lives there). Runs on the last context slot.
  using MessageHandler = std::function<void(sim::ThreadContext*, const sim::Message&)>;
  using IdleFn = std::function<void(sim::ThreadContext*)>;
  // `slot` selects the context the service thread runs on; the default is the
  // first auxiliary slot (workers occupy [0, workers); the last slot is a
  // spare reserved for tools such as recovery).
  void StartService(MessageHandler handler, IdleFn idle, uint32_t slot = kAutoSlot);
  static constexpr uint32_t kAutoSlot = ~0u;

  // Spare context for management operations (recovery, loaders) that must
  // not collide with worker or service slots.
  sim::ThreadContext* tool_context() { return contexts_.back().get(); }
  void StopService();
  bool service_running() const { return service_running_.load(std::memory_order_acquire); }

 private:
  uint32_t id_;
  std::unique_ptr<sim::MemoryBus> bus_;
  std::unique_ptr<sim::HtmEngine> htm_;
  std::unique_ptr<RegionAllocator> alloc_;
  sim::RdmaNic* nic_ = nullptr;
  uint64_t log_begin_;
  uint64_t log_size_;
  std::atomic<bool> killed_{false};
  std::atomic<uint32_t> inflight_commits_{0};
  std::vector<std::unique_ptr<sim::ThreadContext>> contexts_;

  std::atomic<bool> service_running_{false};
  std::atomic<bool> service_stop_{false};
  std::thread service_thread_;
};

struct ClusterConfig {
  uint32_t num_nodes = 2;
  uint32_t workers_per_node = 4;
  uint32_t aux_threads = 1;
  uint32_t replicas = 1;  // f+1 copies per record; 1 disables replication
  size_t memory_bytes = 48ull << 20;
  size_t log_bytes = 8ull << 20;
  // Logical nodes per physical machine (Fig. 12); logical nodes on the same
  // machine share one physical NIC's occupancy.
  uint32_t logical_per_machine = 1;
  sim::CostModel cost;
  sim::AtomicityLevel atomicity = sim::AtomicityLevel::kHca;
  sim::HtmConfig htm;
};

// Builds N nodes wired to one fabric. Owns everything.
class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);
  ~Cluster();

  const ClusterConfig& config() const { return config_; }
  uint32_t num_nodes() const { return static_cast<uint32_t>(nodes_.size()); }
  Node* node(uint32_t id) { return nodes_[id].get(); }
  sim::Fabric* fabric() { return fabric_.get(); }
  const sim::CostModel* cost() const { return &config_.cost; }

  // Fail-stop a machine: unreachable on the fabric, worker loops told to exit.
  void Kill(uint32_t id);
  void Revive(uint32_t id);

  // Installs a deterministic fault schedule (sim/fault.h) on the fabric and
  // on every node's HTM engine; nullptr clears it. The plan must outlive its
  // installation and stay immutable while installed.
  void SetFaultPlan(const sim::FaultPlan* plan);

  // Rewinds all virtual clocks and NIC occupancy resources to zero so that
  // benchmark runs over the same cluster start from a clean time base.
  void ResetSimTime();

  // Optional conservative time-window gate (set by the benchmark driver);
  // transaction Begin() paths call Sync() through it. May be null.
  void set_time_gate(TimeGate* gate) { time_gate_.store(gate, std::memory_order_release); }
  TimeGate* time_gate() const { return time_gate_.load(std::memory_order_acquire); }
  void SyncGate(const SimClock* clock) const {
    TimeGate* g = time_gate();
    if (g != nullptr) {
      g->Sync(clock);
    }
  }

  // Replica placement: primary + (replicas-1) backups at successive nodes.
  uint32_t BackupOf(uint32_t primary, uint32_t replica_index) const {
    return (primary + replica_index) % num_nodes();
  }

 private:
  ClusterConfig config_;
  std::atomic<TimeGate*> time_gate_{nullptr};
  std::unique_ptr<sim::Fabric> fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<sim::RdmaNic::Occupancy>> machine_nics_;
};

}  // namespace drtmr::cluster

#endif  // DRTMR_SRC_CLUSTER_NODE_H_
