// DrTM baseline (Wei et al., SOSP'15): the paper's closest prior system,
// combining HTM with 2PL over RDMA. Unlike DrTM+R it must know a
// transaction's remote read/write sets *before* execution (it uses
// transaction chopping for TPC-C), locks and fetches every remote record up
// front, and then runs the entire transaction body inside ONE large HTM
// region — local reads/writes are direct memory accesses, remote accesses hit
// the pre-fetched copies. After XEND, dirty remote copies are written back
// and unlocked. There is no replication and no separate read-only protocol.
//
// A-priori knowledge is emulated by a reconnaissance pass: the transaction
// body runs once against a recording context (free of charge — this models
// the static knowledge chopping provides), producing the remote access list;
// the body is then re-run for real with a snapshotted RNG so it takes the
// same path. If the replay touches a remote record outside the recorded set
// (a dependent transaction whose footprint shifted), the attempt aborts and
// restarts from reconnaissance — the cost DrTM pays for generality.
//
// Fallback (per the DrTM paper): when the big HTM region cannot make
// progress, every recorded record (local ones included) is locked via RDMA
// CAS in address order and the body is replayed with direct memory accesses.
#ifndef DRTMR_SRC_BASELINE_DRTM_H_
#define DRTMR_SRC_BASELINE_DRTM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/txn/txn_api.h"
#include "src/txn/txn_engine.h"
#include "src/txn/types.h"

namespace drtmr::baseline {

struct DrTmConfig {
  uint32_t htm_retry_threshold = 8;
  uint32_t max_attempts = 200000;  // reconnaissance restarts before giving up
};

class DrTmEngine {
 public:
  DrTmEngine(txn::TxnEngine* base, const DrTmConfig& config) : base_(base), config_(config) {}

  txn::TxnEngine* base() { return base_; }
  const DrTmConfig& config() const { return config_; }
  txn::TxnStats& stats() { return stats_; }

  // Executes one transaction to completion. `body` runs the transaction logic
  // against the supplied TxnApi and must behave identically across calls
  // (snapshot your RNG). Returns false only if the body persistently fails
  // (e.g. not-found): the caller treats that as a business abort.
  bool Execute(sim::ThreadContext* ctx, const std::function<bool(txn::TxnApi*)>& body);

 private:
  txn::TxnEngine* base_;
  DrTmConfig config_;
  txn::TxnStats stats_;
};

namespace drtm_internal {

struct RemoteAccess {
  store::Table* table;
  uint32_t node;
  uint64_t key;
  uint64_t offset = 0;
  bool written = false;
  std::vector<std::byte> image;     // working copy mutated by the body
  std::vector<std::byte> pristine;  // fetched copy; image is reset from this
                                    // before every replay attempt so an
                                    // aborted attempt cannot leak its writes
};

// Pass 1: collects the remote access set with free-of-charge dirty reads.
class RecordingTxn : public txn::TxnApi {
 public:
  RecordingTxn(DrTmEngine* engine, sim::ThreadContext* ctx) : engine_(engine), ctx_(ctx) {}

  void Begin(bool read_only = false) override {}
  Status Read(store::Table* table, uint32_t node, uint64_t key, void* value_out) override;
  Status Write(store::Table* table, uint32_t node, uint64_t key, const void* value) override;
  Status Insert(store::Table*, uint32_t, uint64_t, const void*) override { return Status::kOk; }
  Status Remove(store::Table*, uint32_t, uint64_t) override { return Status::kOk; }
  Status ScanLocal(store::Table* table, uint64_t lo, uint64_t hi,
                   const std::function<bool(uint64_t, const void*)>& fn) override;
  Status Commit() override { return Status::kOk; }
  void UserAbort() override {}

  std::vector<RemoteAccess>& remote() { return remote_; }
  std::vector<std::pair<store::Table*, uint64_t>>& local() { return local_; }

 private:
  RemoteAccess* FindRemote(store::Table* table, uint32_t node, uint64_t key);

  DrTmEngine* engine_;
  sim::ThreadContext* ctx_;
  std::vector<RemoteAccess> remote_;
  std::vector<std::pair<store::Table*, uint64_t>> local_;  // (table, key)
};

// Pass 2: real execution. Local accesses run inside the enclosing HTM region
// (owned by DrTmEngine::Execute); remote accesses are served from the locked,
// pre-fetched copies. In fallback mode (htm == nullptr) local accesses go
// directly to memory — legal because every record is locked.
class ExecTxn : public txn::TxnApi {
 public:
  ExecTxn(DrTmEngine* engine, sim::ThreadContext* ctx, std::vector<RemoteAccess>* remote,
          sim::HtmTxn* htm)
      : engine_(engine), ctx_(ctx), remote_(remote), htm_(htm) {}

  void Begin(bool read_only = false) override {}
  Status Read(store::Table* table, uint32_t node, uint64_t key, void* value_out) override;
  Status Write(store::Table* table, uint32_t node, uint64_t key, const void* value) override;
  Status Insert(store::Table* table, uint32_t node, uint64_t key, const void* value) override;
  Status Remove(store::Table* table, uint32_t node, uint64_t key) override;
  Status ScanLocal(store::Table* table, uint64_t lo, uint64_t hi,
                   const std::function<bool(uint64_t, const void*)>& fn) override;
  Status Commit() override { return Status::kOk; }
  void UserAbort() override { user_abort_ = true; }

  bool diverged() const { return diverged_; }
  bool user_abort() const { return user_abort_; }
  std::vector<txn::MutationEntry>& mutations() { return mutations_; }

 private:
  RemoteAccess* FindRemote(store::Table* table, uint32_t node, uint64_t key);
  Status LocalRead(store::Table* table, uint64_t key, void* value_out);
  Status LocalWrite(store::Table* table, uint64_t key, const void* value);

  DrTmEngine* engine_;
  sim::ThreadContext* ctx_;
  std::vector<RemoteAccess>* remote_;
  sim::HtmTxn* htm_;  // nullptr in fallback mode
  bool diverged_ = false;
  bool user_abort_ = false;
  std::vector<txn::MutationEntry> mutations_;
};

}  // namespace drtm_internal
}  // namespace drtmr::baseline

#endif  // DRTMR_SRC_BASELINE_DRTM_H_
