#include "src/baseline/drtm.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/store/record.h"
#include "src/util/logging.h"

namespace drtmr::baseline {
namespace drtm_internal {

using store::LockWord;
using store::RecordLayout;

// ---------------- RecordingTxn ----------------

RemoteAccess* RecordingTxn::FindRemote(store::Table* table, uint32_t node, uint64_t key) {
  for (auto& a : remote_) {
    if (a.table == table && a.node == node && a.key == key) {
      return &a;
    }
  }
  return nullptr;
}

Status RecordingTxn::Read(store::Table* table, uint32_t node, uint64_t key, void* value_out) {
  cluster::Cluster* cluster = engine_->base()->cluster();
  if (node == ctx_->node_id) {
    local_.emplace_back(table, key);
    const uint64_t off = table->Lookup(nullptr, node, key);
    if (off == 0) {
      return Status::kNotFound;
    }
    if (value_out != nullptr) {
      std::vector<std::byte> rec(table->record_bytes());
      cluster->node(node)->bus()->Read(nullptr, off, rec.data(), rec.size());
      RecordLayout::GatherValue(rec.data(), value_out, table->value_size());
    }
    return Status::kOk;
  }
  RemoteAccess* a = FindRemote(table, node, key);
  if (a == nullptr) {
    const uint64_t off = table->hash(node)->Lookup(nullptr, key);
    if (off == 0) {
      return Status::kNotFound;
    }
    remote_.push_back(RemoteAccess{table, node, key, off, false, {}, {}});
    a = &remote_.back();
  }
  if (value_out != nullptr) {
    std::vector<std::byte> rec(table->record_bytes());
    cluster->node(node)->bus()->Read(nullptr, a->offset, rec.data(), rec.size());
    RecordLayout::GatherValue(rec.data(), value_out, table->value_size());
  }
  return Status::kOk;
}

Status RecordingTxn::Write(store::Table* table, uint32_t node, uint64_t key, const void* value) {
  if (node == ctx_->node_id) {
    local_.emplace_back(table, key);
    return table->Lookup(nullptr, node, key) != 0 ? Status::kOk : Status::kNotFound;
  }
  RemoteAccess* a = FindRemote(table, node, key);
  if (a == nullptr) {
    const uint64_t off = table->hash(node)->Lookup(nullptr, key);
    if (off == 0) {
      return Status::kNotFound;
    }
    remote_.push_back(RemoteAccess{table, node, key, off, true, {}, {}});
  } else {
    a->written = true;
  }
  return Status::kOk;
}

Status RecordingTxn::ScanLocal(store::Table* table, uint64_t lo, uint64_t hi,
                               const std::function<bool(uint64_t, const void*)>& fn) {
  std::vector<uint64_t> keys;
  table->btree(ctx_->node_id)->Scan(nullptr, lo, hi, [&](uint64_t key, uint64_t) {
    keys.push_back(key);
    return true;
  });
  std::vector<std::byte> value(table->value_size());
  for (uint64_t key : keys) {
    if (Read(table, ctx_->node_id, key, value.data()) != Status::kOk) {
      continue;
    }
    if (!fn(key, value.data())) {
      break;
    }
  }
  return Status::kOk;
}

// ---------------- ExecTxn ----------------

RemoteAccess* ExecTxn::FindRemote(store::Table* table, uint32_t node, uint64_t key) {
  for (auto& a : *remote_) {
    if (a.table == table && a.node == node && a.key == key) {
      return &a;
    }
  }
  return nullptr;
}

Status ExecTxn::LocalRead(store::Table* table, uint64_t key, void* value_out) {
  const uint64_t off = table->Lookup(ctx_, ctx_->node_id, key);
  if (off == 0) {
    return Status::kNotFound;
  }
  ctx_->Charge(engine_->base()->cost()->record_logic_ns);
  sim::MemoryBus* bus = engine_->base()->cluster()->node(ctx_->node_id)->bus();
  std::vector<std::byte> rec(table->record_bytes());
  if (htm_ != nullptr) {
    if (htm_->Read(off, rec.data(), rec.size()) != Status::kOk) {
      return Status::kAborted;
    }
    if (LockWord::IsLocked(RecordLayout::GetLock(rec.data()))) {
      // A remote committer (or fallback) holds this record: abort the region.
      htm_->Abort();
      return Status::kConflict;
    }
  } else {
    bus->Read(ctx_, off, rec.data(), rec.size());
  }
  if (value_out != nullptr) {
    RecordLayout::GatherValue(rec.data(), value_out, table->value_size());
  }
  return Status::kOk;
}

Status ExecTxn::LocalWrite(store::Table* table, uint64_t key, const void* value) {
  const uint64_t off = table->Lookup(ctx_, ctx_->node_id, key);
  if (off == 0) {
    return Status::kNotFound;
  }
  sim::MemoryBus* bus = engine_->base()->cluster()->node(ctx_->node_id)->bus();
  std::vector<std::byte> image(table->record_bytes());
  uint64_t meta[3];  // lock, inc, seq
  if (htm_ != nullptr) {
    if (htm_->Read(off, meta, sizeof(meta)) != Status::kOk) {
      return Status::kAborted;
    }
    if (LockWord::IsLocked(meta[0])) {
      htm_->Abort();
      return Status::kConflict;
    }
    RecordLayout::Init(image.data(), key, meta[1], meta[2] + 2, value, table->value_size());
    if (htm_->Write(off + RecordLayout::kSeqOff, image.data() + RecordLayout::kSeqOff,
                    image.size() - RecordLayout::kSeqOff) != Status::kOk) {
      return Status::kAborted;
    }
  } else {
    bus->Read(ctx_, off, meta, sizeof(meta));
    RecordLayout::Init(image.data(), key, meta[1], meta[2] + 2, value, table->value_size());
    bus->Write(ctx_, off + RecordLayout::kSeqOff, image.data() + RecordLayout::kSeqOff,
               image.size() - RecordLayout::kSeqOff);
  }
  return Status::kOk;
}

Status ExecTxn::Read(store::Table* table, uint32_t node, uint64_t key, void* value_out) {
  if (node == ctx_->node_id) {
    return LocalRead(table, key, value_out);
  }
  RemoteAccess* a = FindRemote(table, node, key);
  if (a == nullptr) {
    diverged_ = true;
    if (htm_ != nullptr) {
      htm_->Abort();
    }
    return Status::kAborted;
  }
  ctx_->Charge(engine_->base()->cost()->record_logic_ns / 4);
  if (value_out != nullptr) {
    RecordLayout::GatherValue(a->image.data(), value_out, table->value_size());
  }
  return Status::kOk;
}

Status ExecTxn::Write(store::Table* table, uint32_t node, uint64_t key, const void* value) {
  if (node == ctx_->node_id) {
    return LocalWrite(table, key, value);
  }
  RemoteAccess* a = FindRemote(table, node, key);
  if (a == nullptr) {
    diverged_ = true;
    if (htm_ != nullptr) {
      htm_->Abort();
    }
    return Status::kAborted;
  }
  RecordLayout::ScatterValue(a->image.data(), value, table->value_size());
  a->written = true;
  ctx_->Charge(engine_->base()->cost()->CopyNs(table->value_size()));
  return Status::kOk;
}

Status ExecTxn::Insert(store::Table* table, uint32_t node, uint64_t key, const void* value) {
  txn::MutationEntry m;
  m.op = txn::MutationEntry::Op::kInsert;
  m.table = table;
  m.node = node;
  m.key = key;
  m.value.assign(static_cast<const std::byte*>(value),
                 static_cast<const std::byte*>(value) + table->value_size());
  mutations_.push_back(std::move(m));
  return Status::kOk;
}

Status ExecTxn::Remove(store::Table* table, uint32_t node, uint64_t key) {
  txn::MutationEntry m;
  m.op = txn::MutationEntry::Op::kRemove;
  m.table = table;
  m.node = node;
  m.key = key;
  mutations_.push_back(std::move(m));
  return Status::kOk;
}

Status ExecTxn::ScanLocal(store::Table* table, uint64_t lo, uint64_t hi,
                          const std::function<bool(uint64_t, const void*)>& fn) {
  std::vector<uint64_t> keys;
  table->btree(ctx_->node_id)->Scan(ctx_, lo, hi, [&](uint64_t key, uint64_t) {
    keys.push_back(key);
    return true;
  });
  std::vector<std::byte> value(table->value_size());
  for (uint64_t key : keys) {
    const Status s = LocalRead(table, key, value.data());
    if (s == Status::kNotFound) {
      continue;
    }
    if (s != Status::kOk) {
      return s;
    }
    if (!fn(key, value.data())) {
      break;
    }
  }
  return Status::kOk;
}

}  // namespace drtm_internal

// ---------------- DrTmEngine ----------------

using drtm_internal::ExecTxn;
using drtm_internal::RecordingTxn;
using drtm_internal::RemoteAccess;
using store::LockWord;
using store::RecordLayout;

bool DrTmEngine::Execute(sim::ThreadContext* ctx, const std::function<bool(txn::TxnApi*)>& body) {
  cluster::Cluster* cluster = base_->cluster();
  cluster::Node* self = cluster->node(ctx->node_id);
  sim::RdmaNic* nic = self->nic();
  const uint64_t lock_word = LockWord::Make(ctx->node_id, ctx->worker_id);

  struct Target {
    uint32_t node;
    uint64_t offset;
    auto operator<=>(const Target&) const = default;
  };

  for (uint32_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
    cluster->SyncGate(&ctx->clock);
    // Pass 1: reconnaissance (models chopping's a-priori knowledge; free).
    RecordingTxn rec(this, ctx);
    if (!body(&rec)) {
      return false;  // business abort / transient not-found: caller decides
    }

    // Lock + fetch the remote set in address order (2PL growing phase).
    std::vector<RemoteAccess> remote = std::move(rec.remote());
    std::sort(remote.begin(), remote.end(), [](const RemoteAccess& a, const RemoteAccess& b) {
      return std::tie(a.node, a.offset) < std::tie(b.node, b.offset);
    });
    std::vector<Target> held;
    bool lock_failed = false;
    for (auto& a : remote) {
      if (!held.empty() && held.back().node == a.node && held.back().offset == a.offset) {
        continue;  // duplicate record
      }
      uint64_t obs = 0;
      if (nic->CompareSwap(ctx, a.node, a.offset + RecordLayout::kLockOff, 0, lock_word, &obs) !=
          Status::kOk) {
        lock_failed = true;
        break;
      }
      held.push_back({a.node, a.offset});
    }
    auto unlock_all = [&] {
      for (const Target& t : held) {
        // Fire-and-forget unlock: nobody waits on the CAS outcome.
        (void)nic->CompareSwap(ctx, t.node, t.offset + RecordLayout::kLockOff, lock_word, 0,
                               nullptr);
      }
      held.clear();
    };
    if (lock_failed) {
      unlock_all();
      stats_.IncAbortLock();
      const uint64_t backoff = ctx->rng.Range(200, 2000);
      ctx->Charge(backoff);
      if ((attempt & 0xff) == 0xff) {
        // The lock holder may be descheduled on an oversubscribed host; give
        // it real time rather than burning retries.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      } else {
        std::this_thread::yield();
      }
      continue;
    }
    bool fetch_failed = false;
    for (auto& a : remote) {
      a.pristine.resize(a.table->record_bytes());
      if (nic->Read(ctx, a.node, a.offset, a.pristine.data(), a.pristine.size()) != Status::kOk ||
          RecordLayout::GetKey(a.pristine.data()) != a.key) {
        fetch_failed = true;
        break;
      }
    }
    if (fetch_failed) {
      unlock_all();
      continue;
    }

    // Pass 2: one big HTM region over the whole transaction body.
    bool committed = false;
    bool restart = false;
    for (uint32_t htm_try = 0; htm_try <= config_.htm_retry_threshold; ++htm_try) {
      if (htm_try == config_.htm_retry_threshold) {
        // Fallback: additionally lock every recorded local record (via
        // loopback RDMA CAS, uniform atomicity) and run without HTM.
        stats_.IncFallback();
        std::vector<Target> local_targets;
        for (const auto& [table, key] : rec.local()) {
          const uint64_t off = table->Lookup(ctx, ctx->node_id, key);
          if (off == 0) {
            continue;
          }
          local_targets.push_back({ctx->node_id, off});
        }
        std::sort(local_targets.begin(), local_targets.end());
        local_targets.erase(std::unique(local_targets.begin(), local_targets.end()),
                            local_targets.end());
        bool local_lock_failed = false;
        for (const Target& t : local_targets) {
          uint64_t obs = 0;
          int spins = 0;
          while (nic->CompareSwap(ctx, t.node, t.offset + RecordLayout::kLockOff, 0, lock_word,
                                  &obs) != Status::kOk) {
            if (obs == lock_word) {
              break;  // ours (remote set overlaps: loopback-local record)
            }
            if (++spins > 64) {
              // Bounded wait avoids hold-and-wait deadlock across fallbacks.
              local_lock_failed = true;
              break;
            }
            std::this_thread::yield();
          }
          if (local_lock_failed) {
            break;
          }
          held.push_back({t.node, t.offset});
        }
        if (local_lock_failed) {
          restart = true;
          break;
        }
        for (auto& a : remote) {
          a.image = a.pristine;
          a.written = false;
        }
        ExecTxn exec(this, ctx, &remote, /*htm=*/nullptr);
        const bool ok = body(&exec);
        if (ok && !exec.diverged()) {
          for (auto& m : exec.mutations()) {
            (void)base_->Mutate(ctx, m);  // past the commit point: idempotent
          }
          committed = true;
        } else {
          restart = true;  // diverged or failed: retry from reconnaissance
        }
        break;
      }
      for (auto& a : remote) {
        a.image = a.pristine;
        a.written = false;
      }
      sim::HtmTxn* htm = self->htm()->Begin(ctx, obs::HtmSite::kBaseline);
      DRTMR_CHECK(htm != nullptr);
      ExecTxn exec(this, ctx, &remote, htm);
      const bool ok = body(&exec);
      if (exec.diverged()) {
        if (ctx->current_htm != nullptr) {
          htm->Abort();
        }
        restart = true;
        break;
      }
      if (!ok) {
        // Covers both HTM/lock conflicts surfaced through the body and
        // transient not-found races; retry the region.
        if (ctx->current_htm != nullptr) {
          htm->Abort();
        }
        continue;  // HTM conflict or locked record: retry the region
      }
      if (htm->Commit() == Status::kOk) {
        for (auto& m : exec.mutations()) {
          (void)base_->Mutate(ctx, m);  // past the commit point: idempotent
        }
        committed = true;
        break;
      }
      stats_.IncHtmCommitRetry();
    }

    if (committed) {
      // Write back dirty remote copies (+ seq bump) and unlock everything.
      uint64_t completion = 0;
      bool any = false;
      for (auto& a : remote) {
        if (!a.written) {
          continue;
        }
        const uint64_t new_seq = RecordLayout::GetSeq(a.image.data()) + 2;
        RecordLayout::SetSeq(a.image.data(), new_seq);
        RecordLayout::SetVersions(a.image.data(), a.table->value_size(), new_seq);
        // Posted write-back: failures surface through the completion fence.
        (void)nic->WritePosted(ctx, a.node, a.offset + RecordLayout::kSeqOff,
                               a.image.data() + RecordLayout::kSeqOff,
                               a.image.size() - RecordLayout::kSeqOff, &completion);
        any = true;
      }
      if (any) {
        nic->Fence(ctx, completion, base_->cost()->rdma_write_ns);
      }
      unlock_all();
      stats_.IncCommit();
      return true;
    }
    unlock_all();
    if (!restart) {
      stats_.IncAbortValidation();
    }
  }
  DRTMR_LOG(Warning) << "DrTM transaction exceeded max attempts";
  return false;
}

}  // namespace drtmr::baseline
