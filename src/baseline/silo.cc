#include "src/baseline/silo.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "src/store/record.h"
#include "src/util/logging.h"

namespace drtmr::baseline {

using store::LockWord;
using store::RecordLayout;

SiloTxn::SiloTxn(SiloEngine* engine, sim::ThreadContext* ctx)
    : engine_(engine),
      ctx_(ctx),
      self_(engine->base()->cluster()->node(ctx->node_id)),
      lock_word_(LockWord::Make(ctx->node_id, ctx->worker_id)) {}

void SiloTxn::Begin(bool read_only) {
  engine_->base()->cluster()->SyncGate(&ctx_->clock);
  read_only_ = read_only;
  read_set_.clear();
  write_set_.clear();
  mutations_.clear();
}

Status SiloTxn::SeqlockRead(store::Table* table, uint64_t key, void* value_out,
                            txn::AccessEntry* entry) {
  const uint64_t off = table->Lookup(ctx_, ctx_->node_id, key);
  if (off == 0) {
    return Status::kNotFound;
  }
  ctx_->Charge(engine_->base()->cost()->record_logic_ns);
  const size_t rec_bytes = table->record_bytes();
  std::vector<std::byte> buf(rec_bytes);
  std::vector<std::byte> buf2(rec_bytes);
  while (true) {
    self_->bus()->Read(ctx_, off, buf.data(), rec_bytes);
    if (LockWord::IsLocked(RecordLayout::GetLock(buf.data()))) {
      std::this_thread::yield();
      continue;
    }
    self_->bus()->Read(ctx_, off, buf2.data(), rec_bytes);
    if (RecordLayout::GetLock(buf2.data()) == 0 &&
        RecordLayout::GetSeq(buf.data()) == RecordLayout::GetSeq(buf2.data())) {
      break;
    }
  }
  entry->table = table;
  entry->node = ctx_->node_id;
  entry->key = key;
  entry->offset = off;
  entry->seq = RecordLayout::GetSeq(buf.data());
  entry->incarnation = RecordLayout::GetIncarnation(buf.data());
  if (value_out != nullptr) {
    RecordLayout::GatherValue(buf.data(), value_out, table->value_size());
  }
  return Status::kOk;
}

Status SiloTxn::Read(store::Table* table, uint32_t node, uint64_t key, void* value_out) {
  DRTMR_CHECK(node == ctx_->node_id) << "Silo is single-machine";
  for (const auto& w : write_set_) {
    if (w.access.table == table && w.access.key == key) {
      if (value_out != nullptr) {
        std::memcpy(value_out, w.value.data(), table->value_size());
      }
      return Status::kOk;
    }
  }
  txn::AccessEntry e;
  const Status s = SeqlockRead(table, key, value_out, &e);
  if (s != Status::kOk) {
    return s;
  }
  read_set_.push_back(e);
  return Status::kOk;
}

Status SiloTxn::Write(store::Table* table, uint32_t node, uint64_t key, const void* value) {
  DRTMR_CHECK(node == ctx_->node_id);
  ctx_->Charge(engine_->base()->cost()->CopyNs(table->value_size()));
  for (auto& w : write_set_) {
    if (w.access.table == table && w.access.key == key) {
      std::memcpy(w.value.data(), value, table->value_size());
      return Status::kOk;
    }
  }
  txn::WriteEntry w;
  w.value.assign(static_cast<const std::byte*>(value),
                 static_cast<const std::byte*>(value) + table->value_size());
  bool found = false;
  for (const auto& e : read_set_) {
    if (e.table == table && e.key == key) {
      w.access = e;
      found = true;
      break;
    }
  }
  if (!found) {
    txn::AccessEntry e;
    const Status s = SeqlockRead(table, key, nullptr, &e);
    if (s != Status::kOk) {
      return s;
    }
    w.access = e;
    w.blind = true;
  }
  write_set_.push_back(std::move(w));
  return Status::kOk;
}

Status SiloTxn::Insert(store::Table* table, uint32_t node, uint64_t key, const void* value) {
  DRTMR_CHECK(node == ctx_->node_id);
  txn::MutationEntry m;
  m.op = txn::MutationEntry::Op::kInsert;
  m.table = table;
  m.node = node;
  m.key = key;
  m.value.assign(static_cast<const std::byte*>(value),
                 static_cast<const std::byte*>(value) + table->value_size());
  mutations_.push_back(std::move(m));
  return Status::kOk;
}

Status SiloTxn::Remove(store::Table* table, uint32_t node, uint64_t key) {
  DRTMR_CHECK(node == ctx_->node_id);
  txn::MutationEntry m;
  m.op = txn::MutationEntry::Op::kRemove;
  m.table = table;
  m.node = node;
  m.key = key;
  mutations_.push_back(std::move(m));
  return Status::kOk;
}

Status SiloTxn::ScanLocal(store::Table* table, uint64_t lo, uint64_t hi,
                          const std::function<bool(uint64_t, const void*)>& fn) {
  std::vector<uint64_t> keys;
  table->btree(ctx_->node_id)->Scan(ctx_, lo, hi, [&](uint64_t key, uint64_t) {
    keys.push_back(key);
    return true;
  });
  std::vector<std::byte> value(table->value_size());
  for (uint64_t key : keys) {
    const Status s = Read(table, ctx_->node_id, key, value.data());
    if (s == Status::kNotFound) {
      continue;
    }
    if (s != Status::kOk) {
      return s;
    }
    if (!fn(key, value.data())) {
      break;
    }
  }
  return Status::kOk;
}

Status SiloTxn::Commit() {
  txn::TxnStats& stats = engine_->stats();
  // Phase 1: lock the write set in address order (no-wait: fail -> abort).
  std::vector<size_t> order(write_set_.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return write_set_[a].access.offset < write_set_[b].access.offset;
  });
  size_t locked = 0;
  Status result = Status::kOk;
  for (; locked < order.size(); ++locked) {
    const auto& w = write_set_[order[locked]];
    // Skip duplicate offsets (already locked by us).
    if (locked > 0 && write_set_[order[locked - 1]].access.offset == w.access.offset) {
      continue;
    }
    uint64_t obs;
    if (!self_->bus()->CasU64(ctx_, w.access.offset + RecordLayout::kLockOff, 0, lock_word_,
                              &obs)) {
      result = Status::kAborted;
      break;
    }
  }
  // Phase 2: validate the read set (seq unchanged, not locked by others).
  if (result == Status::kOk) {
    for (const auto& e : read_set_) {
      uint64_t meta[3];  // lock, inc, seq
      self_->bus()->Read(ctx_, e.offset, meta, sizeof(meta));
      if ((meta[0] != 0 && meta[0] != lock_word_) || meta[1] != e.incarnation ||
          meta[2] != e.seq) {
        result = Status::kAborted;
        break;
      }
    }
  }
  // Phase 3: apply + unlock.
  if (result == Status::kOk) {
    std::vector<std::byte> image;
    for (const auto& w : write_set_) {
      image.assign(w.access.table->record_bytes(), std::byte{0});
      uint64_t cur_seq = self_->bus()->ReadU64(ctx_, w.access.offset + RecordLayout::kSeqOff);
      RecordLayout::Init(image.data(), w.access.key, w.access.incarnation, cur_seq + 2,
                         w.value.data(), w.access.table->value_size());
      self_->bus()->Write(ctx_, w.access.offset + RecordLayout::kSeqOff,
                          image.data() + RecordLayout::kSeqOff,
                          image.size() - RecordLayout::kSeqOff);
    }
    for (auto& m : mutations_) {
      // Past the commit point: kExists/kNotFound mean the mutation was already
      // applied (idempotent re-execution), so the status carries no new info.
      (void)engine_->base()->Mutate(ctx_, m);
    }
    stats.IncCommit();
  } else {
    stats.IncAbortValidation();
  }
  for (size_t i = 0; i < locked; ++i) {
    const auto& w = write_set_[order[i]];
    if (i > 0 && write_set_[order[i - 1]].access.offset == w.access.offset) {
      continue;
    }
    uint64_t obs;
    self_->bus()->CasU64(ctx_, w.access.offset + RecordLayout::kLockOff, lock_word_, 0, &obs);
  }
  return result;
}

void SiloTxn::UserAbort() {
  engine_->stats().IncAbortUser();
}

}  // namespace drtmr::baseline
