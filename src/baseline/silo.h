// Silo baseline (Tu et al., SOSP'13; §7.1 runs it with logging disabled):
// single-machine OCC with per-record locks and sequence-number validation —
// no HTM, no RDMA, no distribution. Used for the per-machine comparison in
// Fig. 11's discussion. Operates over the same memory-store substrate as
// DrTM+R so per-record costs are comparable.
#ifndef DRTMR_SRC_BASELINE_SILO_H_
#define DRTMR_SRC_BASELINE_SILO_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/txn/txn_api.h"
#include "src/txn/txn_engine.h"
#include "src/txn/types.h"

namespace drtmr::baseline {

class SiloEngine {
 public:
  explicit SiloEngine(txn::TxnEngine* base) : base_(base) {}

  txn::TxnEngine* base() { return base_; }
  txn::TxnStats& stats() { return stats_; }

 private:
  txn::TxnEngine* base_;
  txn::TxnStats stats_;
};

class SiloTxn : public txn::TxnApi {
 public:
  SiloTxn(SiloEngine* engine, sim::ThreadContext* ctx);

  void Begin(bool read_only = false) override;
  Status Read(store::Table* table, uint32_t node, uint64_t key, void* value_out) override;
  Status Write(store::Table* table, uint32_t node, uint64_t key, const void* value) override;
  Status Insert(store::Table* table, uint32_t node, uint64_t key, const void* value) override;
  Status Remove(store::Table* table, uint32_t node, uint64_t key) override;
  Status ScanLocal(store::Table* table, uint64_t lo, uint64_t hi,
                   const std::function<bool(uint64_t, const void*)>& fn) override;
  Status Commit() override;
  void UserAbort() override;

 private:
  // Consistent local read without HTM: two stable lock-free snapshots.
  Status SeqlockRead(store::Table* table, uint64_t key, void* value_out,
                     txn::AccessEntry* entry);

  SiloEngine* engine_;
  sim::ThreadContext* ctx_;
  cluster::Node* self_;
  uint64_t lock_word_;
  bool read_only_ = false;
  std::vector<txn::AccessEntry> read_set_;
  std::vector<txn::WriteEntry> write_set_;
  std::vector<txn::MutationEntry> mutations_;
};

}  // namespace drtmr::baseline

#endif  // DRTMR_SRC_BASELINE_SILO_H_
