// Calvin baseline (Thomson et al., SIGMOD'12; §7.1 compares against the
// March-2015 release, run over IPoIB with no logging/replication).
//
// Architectural stand-in (see DESIGN.md §6): a global sequencer assigns every
// transaction a slot in the serial order and charges the batched dispatch
// cost; per-record locks (striped, acquired no-wait and retried, which
// approximates the deterministic lock manager without global stalls) provide
// 2PL isolation; every access to a remote partition pays a TCP-over-IPoIB
// round trip, since Calvin neither uses one-sided RDMA nor HTM. Writes are
// buffered and applied at commit while all locks are held.
#ifndef DRTMR_SRC_BASELINE_CALVIN_H_
#define DRTMR_SRC_BASELINE_CALVIN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/txn/txn_api.h"
#include "src/txn/txn_engine.h"
#include "src/txn/types.h"
#include "src/util/spinlock.h"

namespace drtmr::baseline {

struct CalvinConfig {
  // Per-transaction sequencing + deterministic scheduling overhead (epoch
  // batching amortizes the sequencer RPC; the released code uses 10ms epochs).
  uint64_t sequencing_ns = 420000;
  // Extra cost per distinct remote partition touched (read-result broadcast
  // over IPoIB).
  uint64_t remote_partition_ns = 150000;
};

class CalvinEngine {
 public:
  CalvinEngine(txn::TxnEngine* base, const CalvinConfig& config);

  txn::TxnEngine* base() { return base_; }
  const CalvinConfig& config() const { return config_; }
  txn::TxnStats& stats() { return stats_; }

  uint64_t NextSeq() { return sequencer_.fetch_add(1, std::memory_order_relaxed); }

  static constexpr uint32_t kStripes = 4096;
  Spinlock* stripe(uint32_t node, uint32_t idx) { return &locks_[node][idx]; }

  static uint32_t StripeOf(const store::Table* table, uint64_t key) {
    uint64_t z = key * 0x9e3779b97f4a7c15ull + table->id();
    z ^= z >> 29;
    return static_cast<uint32_t>(z & (kStripes - 1));
  }

 private:
  txn::TxnEngine* base_;
  CalvinConfig config_;
  txn::TxnStats stats_;
  std::atomic<uint64_t> sequencer_{0};
  std::vector<std::unique_ptr<Spinlock[]>> locks_;  // per node
};

class CalvinTxn : public txn::TxnApi {
 public:
  CalvinTxn(CalvinEngine* engine, sim::ThreadContext* ctx);

  void Begin(bool read_only = false) override;
  Status Read(store::Table* table, uint32_t node, uint64_t key, void* value_out) override;
  Status Write(store::Table* table, uint32_t node, uint64_t key, const void* value) override;
  Status Insert(store::Table* table, uint32_t node, uint64_t key, const void* value) override;
  Status Remove(store::Table* table, uint32_t node, uint64_t key) override;
  Status ScanLocal(store::Table* table, uint64_t lo, uint64_t hi,
                   const std::function<bool(uint64_t, const void*)>& fn) override;
  Status Commit() override;
  void UserAbort() override;

 private:
  struct Held {
    uint32_t node;
    uint32_t stripe;
    bool operator==(const Held&) const = default;
  };

  // Acquires the record's stripe lock no-wait; kConflict releases everything.
  Status Lock(store::Table* table, uint32_t node, uint64_t key);
  void ReleaseAll();
  void ChargeRemote(uint32_t node);

  CalvinEngine* engine_;
  sim::ThreadContext* ctx_;
  std::vector<Held> held_;
  std::vector<uint32_t> remote_nodes_;
  std::vector<txn::WriteEntry> write_set_;
  std::vector<txn::MutationEntry> mutations_;
};

}  // namespace drtmr::baseline

#endif  // DRTMR_SRC_BASELINE_CALVIN_H_
