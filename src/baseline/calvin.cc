#include "src/baseline/calvin.h"

#include <algorithm>
#include <cstring>

#include "src/store/record.h"
#include "src/util/logging.h"

namespace drtmr::baseline {

using store::RecordLayout;

CalvinEngine::CalvinEngine(txn::TxnEngine* base, const CalvinConfig& config)
    : base_(base), config_(config) {
  locks_.reserve(base->cluster()->num_nodes());
  for (uint32_t i = 0; i < base->cluster()->num_nodes(); ++i) {
    locks_.push_back(std::unique_ptr<Spinlock[]>(new Spinlock[kStripes]));
  }
}

CalvinTxn::CalvinTxn(CalvinEngine* engine, sim::ThreadContext* ctx)
    : engine_(engine), ctx_(ctx) {}

void CalvinTxn::Begin(bool read_only) {
  engine_->base()->cluster()->SyncGate(&ctx_->clock);
  held_.clear();
  remote_nodes_.clear();
  write_set_.clear();
  mutations_.clear();
  engine_->NextSeq();
  ctx_->Charge(engine_->config().sequencing_ns);
}

void CalvinTxn::ChargeRemote(uint32_t node) {
  if (node == ctx_->node_id) {
    return;
  }
  for (uint32_t n : remote_nodes_) {
    if (n == node) {
      return;
    }
  }
  remote_nodes_.push_back(node);
  ctx_->Charge(engine_->config().remote_partition_ns);
}

Status CalvinTxn::Lock(store::Table* table, uint32_t node, uint64_t key) {
  const Held h{node, CalvinEngine::StripeOf(table, key)};
  for (const Held& held : held_) {
    if (held == h) {
      return Status::kOk;
    }
  }
  if (!engine_->stripe(h.node, h.stripe)->try_lock()) {
    ReleaseAll();
    return Status::kConflict;
  }
  held_.push_back(h);
  return Status::kOk;
}

void CalvinTxn::ReleaseAll() {
  for (const Held& h : held_) {
    engine_->stripe(h.node, h.stripe)->unlock();
  }
  held_.clear();
}

Status CalvinTxn::Read(store::Table* table, uint32_t node, uint64_t key, void* value_out) {
  for (const auto& w : write_set_) {
    if (w.access.table == table && w.access.node == node && w.access.key == key) {
      if (value_out != nullptr) {
        std::memcpy(value_out, w.value.data(), table->value_size());
      }
      return Status::kOk;
    }
  }
  Status s = Lock(table, node, key);
  if (s != Status::kOk) {
    return Status::kAborted;
  }
  ChargeRemote(node);
  const uint64_t off = table->Lookup(ctx_, node, key);
  if (off == 0) {
    return Status::kNotFound;
  }
  ctx_->Charge(engine_->base()->cost()->record_logic_ns);
  if (value_out != nullptr) {
    std::vector<std::byte> rec(table->record_bytes());
    engine_->base()->cluster()->node(node)->bus()->Read(ctx_, off, rec.data(), rec.size());
    RecordLayout::GatherValue(rec.data(), value_out, table->value_size());
  }
  return Status::kOk;
}

Status CalvinTxn::Write(store::Table* table, uint32_t node, uint64_t key, const void* value) {
  const Status s = Lock(table, node, key);
  if (s != Status::kOk) {
    return Status::kAborted;
  }
  ChargeRemote(node);
  const uint64_t off = table->Lookup(ctx_, node, key);
  if (off == 0) {
    return Status::kNotFound;
  }
  for (auto& w : write_set_) {
    if (w.access.table == table && w.access.node == node && w.access.key == key) {
      std::memcpy(w.value.data(), value, table->value_size());
      return Status::kOk;
    }
  }
  txn::WriteEntry w;
  w.access.table = table;
  w.access.node = node;
  w.access.key = key;
  w.access.offset = off;
  w.value.assign(static_cast<const std::byte*>(value),
                 static_cast<const std::byte*>(value) + table->value_size());
  write_set_.push_back(std::move(w));
  ctx_->Charge(engine_->base()->cost()->CopyNs(table->value_size()));
  return Status::kOk;
}

Status CalvinTxn::Insert(store::Table* table, uint32_t node, uint64_t key, const void* value) {
  ChargeRemote(node);
  txn::MutationEntry m;
  m.op = txn::MutationEntry::Op::kInsert;
  m.table = table;
  m.node = node;
  m.key = key;
  m.value.assign(static_cast<const std::byte*>(value),
                 static_cast<const std::byte*>(value) + table->value_size());
  mutations_.push_back(std::move(m));
  return Status::kOk;
}

Status CalvinTxn::Remove(store::Table* table, uint32_t node, uint64_t key) {
  ChargeRemote(node);
  txn::MutationEntry m;
  m.op = txn::MutationEntry::Op::kRemove;
  m.table = table;
  m.node = node;
  m.key = key;
  mutations_.push_back(std::move(m));
  return Status::kOk;
}

Status CalvinTxn::ScanLocal(store::Table* table, uint64_t lo, uint64_t hi,
                            const std::function<bool(uint64_t, const void*)>& fn) {
  std::vector<uint64_t> keys;
  table->btree(ctx_->node_id)->Scan(ctx_, lo, hi, [&](uint64_t key, uint64_t) {
    keys.push_back(key);
    return true;
  });
  std::vector<std::byte> value(table->value_size());
  for (uint64_t key : keys) {
    const Status s = Read(table, ctx_->node_id, key, value.data());
    if (s == Status::kNotFound) {
      continue;
    }
    if (s != Status::kOk) {
      return s;
    }
    if (!fn(key, value.data())) {
      break;
    }
  }
  return Status::kOk;
}

Status CalvinTxn::Commit() {
  // 2PL: all locks held; apply buffered writes, then mutations, then release.
  std::vector<std::byte> image;
  for (const auto& w : write_set_) {
    sim::MemoryBus* bus = engine_->base()->cluster()->node(w.access.node)->bus();
    const uint64_t inc = bus->ReadU64(ctx_, w.access.offset + RecordLayout::kIncOff);
    const uint64_t seq = bus->ReadU64(ctx_, w.access.offset + RecordLayout::kSeqOff);
    image.assign(w.access.table->record_bytes(), std::byte{0});
    RecordLayout::Init(image.data(), w.access.key, inc, seq + 2, w.value.data(),
                       w.access.table->value_size());
    bus->Write(ctx_, w.access.offset + RecordLayout::kSeqOff,
               image.data() + RecordLayout::kSeqOff, image.size() - RecordLayout::kSeqOff);
  }
  for (auto& m : mutations_) {
    // Past the commit point: kExists/kNotFound mean the mutation was already
    // applied (idempotent re-execution), so the status carries no new info.
    (void)engine_->base()->Mutate(ctx_, m);
  }
  ReleaseAll();
  engine_->stats().IncCommit();
  return Status::kOk;
}

void CalvinTxn::UserAbort() {
  ReleaseAll();
  engine_->stats().IncAbortUser();
}

}  // namespace drtmr::baseline
