// Interface between the commit protocol and the replication layer (§5;
// DESIGN.md §13). The transaction layer *stages* a speculative log slot per
// written record as early as lock-acquire time (so the log write overlaps
// execution/validation), then closes the transaction's log with exactly one
// decision call: CommitTxnLog on success or AbortTxnLog on any abort after
// staging. Durability is group-committed: the decision calls only advance the
// writer's watermark; the fence that makes the window's slots durable is
// amortized across the group-commit window and forced by FlushLog.
// src/rep provides the primary-backup implementation; tests may inject fakes.
#ifndef DRTMR_SRC_TXN_REPLICATOR_H_
#define DRTMR_SRC_TXN_REPLICATOR_H_

#include <cstddef>
#include <cstdint>

#include "src/sim/thread_context.h"
#include "src/util/status.h"

namespace drtmr::txn {

class Replicator {
 public:
  virtual ~Replicator() = default;

  // Stages a speculative log slot for record `key` (hosted on `primary`,
  // table `table_id`) on each of that node's backups, appended onto the
  // per-backup doorbell chain. `image` is the full record image including
  // metadata, carrying the seq the record will hold if the transaction
  // commits. Must be called outside any HTM region. The slot stays
  // speculative (never applied, never replayed) until CommitTxnLog moves the
  // watermark past it.
  virtual Status StageUpdate(sim::ThreadContext* ctx, uint64_t txn_id, uint32_t primary,
                             uint32_t table_id, uint64_t key, uint64_t record_offset,
                             const std::byte* image, size_t image_len) = 0;

  // Replaces the image staged earlier in this transaction for the same record
  // (blind writes whose predicted commit seq turned out wrong): tombstones
  // the old slot and stages a fresh one with the corrected image.
  virtual Status SupersedeUpdate(sim::ThreadContext* ctx, uint64_t txn_id, uint32_t primary,
                                 uint32_t table_id, uint64_t key, uint64_t record_offset,
                                 const std::byte* image, size_t image_len) = 0;

  // Decision point, success: marks every slot staged since the last decision
  // committed and publishes the watermark past them, making them eligible for
  // the backup pump and trusted by recovery. Closes one transaction in the
  // group-commit window; when the window fills, rings all open chains and
  // fences (the amortized durability point).
  virtual Status CommitTxnLog(sim::ThreadContext* ctx, uint64_t txn_id) = 0;

  // Decision point, failure: tombstones every slot staged since the last
  // decision and publishes the watermark past the tombstones (so aborted
  // slots cannot jam the ring; the pump consumes and skips them). Safe to
  // call with nothing staged.
  virtual void AbortTxnLog(sim::ThreadContext* ctx, uint64_t txn_id) = 0;

  // Rings all open doorbell chains and fences the caller's group-commit
  // window now, regardless of occupancy. Drivers call this at end-of-run (and
  // before parking a worker) so no decided transaction is left unfenced.
  virtual void FlushLog(sim::ThreadContext* ctx) = 0;

  // Marks the transaction fully committed so backups may truncate its log
  // entries (done by auxiliary threads, §5.1).
  virtual void EndTransaction(sim::ThreadContext* ctx, uint64_t txn_id) = 0;

  // Auxiliary-thread hook: consume pending log entries addressed to this
  // node, applying them to the backup copies and truncating the rings. Wired
  // into each node's service loop (§7.1: "auxiliary threads for log
  // truncation").
  virtual void Pump(sim::ThreadContext* ctx) {}
};

}  // namespace drtmr::txn

#endif  // DRTMR_SRC_TXN_REPLICATOR_H_
