// Interface between the commit protocol and the replication layer (§5). The
// transaction layer calls ReplicateUpdate for every written record after the
// HTM step (R.1) and EndTransaction once the transaction reports committed
// (enabling log truncation). src/rep provides the primary-backup
// implementation; tests may inject fakes.
#ifndef DRTMR_SRC_TXN_REPLICATOR_H_
#define DRTMR_SRC_TXN_REPLICATOR_H_

#include <cstddef>
#include <cstdint>

#include "src/sim/thread_context.h"
#include "src/util/status.h"

namespace drtmr::txn {

class Replicator {
 public:
  virtual ~Replicator() = default;

  // R.1: makes the new image of record `key` (hosted on `primary`, table
  // `table_id`) durable on that node's backups. `image` is the full record
  // image including metadata, already carrying the final (even) seq.
  // Must be called outside any HTM region. Log writes are posted (pipelined);
  // *completion_ns is raised to the slowest write's completion, and the
  // caller must FenceReplication() once per transaction before treating the
  // logs as durable.
  virtual Status ReplicateUpdate(sim::ThreadContext* ctx, uint64_t txn_id, uint32_t primary,
                                 uint32_t table_id, uint64_t key, uint64_t record_offset,
                                 const std::byte* image, size_t image_len,
                                 uint64_t* completion_ns) = 0;

  // Waits (in virtual time) for all log writes posted with completion up to
  // `completion_ns` to be durable.
  virtual void FenceReplication(sim::ThreadContext* ctx, uint64_t completion_ns) = 0;

  // Marks the transaction fully committed so backups may truncate its log
  // entries (done by auxiliary threads, §5.1).
  virtual void EndTransaction(sim::ThreadContext* ctx, uint64_t txn_id) = 0;

  // Auxiliary-thread hook: consume pending log entries addressed to this
  // node, applying them to the backup copies and truncating the rings. Wired
  // into each node's service loop (§7.1: "auxiliary threads for log
  // truncation").
  virtual void Pump(sim::ThreadContext* ctx) {}
};

}  // namespace drtmr::txn

#endif  // DRTMR_SRC_TXN_REPLICATOR_H_
