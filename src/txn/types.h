// Shared transaction-layer types: read/write-set entries tracked during the
// execution phase (§4.3, Fig. 2), the per-engine configuration, and the
// statistics the evaluation section reports (commit/abort counts, HTM
// fallback rate, lock conflicts).
#ifndef DRTMR_SRC_TXN_TYPES_H_
#define DRTMR_SRC_TXN_TYPES_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/obs/metrics.h"
#include "src/store/table.h"

namespace drtmr::txn {

// One tracked record access. Local and remote entries share the shape; the
// commit phase partitions them by `node` (§4.4): remote entries are locked
// with RDMA CAS and validated with RDMA READ, local entries are validated and
// updated inside the HTM region.
struct AccessEntry {
  store::Table* table = nullptr;
  uint32_t node = 0;
  uint64_t key = 0;
  uint64_t offset = 0;       // record offset in the hosting node's region
  uint64_t seq = 0;          // sequence number observed at read time
  uint64_t incarnation = 0;  // incarnation observed at read time
};

// A buffered update awaiting the commit phase. `value` holds the full new
// payload (DrTM+R buffers all writes locally during execution, §4.3).
struct WriteEntry {
  AccessEntry access;
  std::vector<std::byte> value;
  bool blind = false;  // write without a prior read in this transaction
};

// A buffered insert or remove, applied at commit: locally inside an HTM
// region, remotely by shipping to the hosting machine via SEND/RECV (§4.3).
struct MutationEntry {
  enum class Op : uint8_t { kInsert, kRemove };
  Op op = Op::kInsert;
  store::Table* table = nullptr;
  uint32_t node = 0;
  uint64_t key = 0;
  std::vector<std::byte> value;  // inserts only
};

struct TxnConfig {
  // Enables optimistic replication (§5): seqnum parity protocol per Table 4,
  // log writes to backups before completing commit.
  bool replication = false;
  uint32_t replicas = 1;  // f+1 copies including the primary

  // HTM retries in the commit phase before taking the fallback handler (§6.1).
  uint32_t htm_retry_threshold = 8;
  // Retries of a locked local record in the execution phase before the
  // seqlock fallback read path.
  uint32_t local_read_retry_threshold = 16;
  // Max consistency retries for a remote versioned read.
  uint32_t remote_read_retry_threshold = 64;
  // Spins of the seqlock fallback read before giving up with kConflict. A
  // healthy committer clears the lock within a handful of spins; a lock that
  // outlives this budget is leaked (its owner died or its unlock verb was
  // lost) and only a configuration change can release it, so the read must
  // abort rather than wait (DESIGN.md §9).
  uint32_t seqlock_read_spin_threshold = 256;

  // Ablation (DESIGN.md §5): when false, remote read-set records are only
  // validated (FaRM-style), not locked, during commit. This sacrifices the
  // strict-serializability argument of §4.6 and exists to measure the cost of
  // read-set locking.
  bool lock_remote_read_set = true;

  // §4.4's IBV_ATOMIC_GLOB optimization: fuse C.1 locking and C.2 validation
  // into one RDMA CAS per remote record by encoding the lock in the seqnum
  // (store::SeqWord); C.5 write-backs then implicitly unlock written records.
  // Requires the fabric to run at AtomicityLevel::kGlob. Dangling-lock
  // recovery is unavailable in this mode (the seq bit carries no owner id).
  bool fused_seq_lock = false;

  // Ablation (DESIGN.md §5): charges every commit-phase remote operation an
  // additional SEND/RECV round trip, approximating a FaRM-style
  // message-passing commit (which would also interrupt target worker threads
  // and abort their HTM regions — the reason §4.4 insists on one-sided
  // verbs).
  bool message_passing_commit = false;

  // Torture-harness teeth (DESIGN.md §9): skips the commit-time read-set
  // seqnum re-check (C.2/C.3), deliberately breaking serializability. Exists
  // only to prove the chk::SerializabilityChecker detects the resulting
  // anomalies; never enable outside that test.
  bool unsafe_skip_read_validation = false;

  // Bounded retry for the C.1 remote-lock CAS (DESIGN.md §10): a CAS that
  // keeps observing a dangling lock (owner absent from the configuration)
  // releases it and retries at most this many times, with jittered
  // exponential backoff between attempts, before surfacing kTimeout. Live
  // conflicts still abort immediately (the paper's no-wait rule).
  uint32_t lock_retry_threshold = 6;
  uint64_t lock_backoff_base_ns = 200;
  uint64_t lock_backoff_cap_ns = 12'800;

  // Virtual-time budget a mutation RPC waits for its reply before surfacing
  // kTimeout (the host may be partitioned rather than dead, in which case the
  // fabric's alive() check alone would spin forever).
  uint64_t mutate_reply_budget_ns = 200'000;
};

struct TxnStats {
  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> aborts_lock{0};        // C.1 lock acquisition failed
  std::atomic<uint64_t> aborts_validation{0};  // C.2/C.3 seq or incarnation mismatch
  std::atomic<uint64_t> aborts_user{0};
  std::atomic<uint64_t> aborts_stale_epoch{0};  // fenced: configuration epoch moved
  std::atomic<uint64_t> aborts_timeout{0};      // bounded retry/poll budget exhausted
  std::atomic<uint64_t> aborts_migrating{0};    // write hit a partition's drain window
  std::atomic<uint64_t> fallbacks{0};          // commit took the fallback handler
  std::atomic<uint64_t> htm_commit_retries{0};
  std::atomic<uint64_t> dangling_locks_released{0};
  std::atomic<uint64_t> remote_reads{0};
  std::atomic<uint64_t> local_reads{0};

  // Aborts caused by the commit protocol itself (lock conflicts, validation
  // failures, epoch fencing, retry timeouts). Excludes user-requested aborts.
  uint64_t ProtocolAborts() const {
    return aborts_lock + aborts_validation + aborts_stale_epoch + aborts_timeout +
           aborts_migrating;
  }
  // Every aborted transaction attempt, including explicit user aborts.
  uint64_t TotalAborts() const { return ProtocolAborts() + aborts_user; }

  // Increment helpers: bump the local counter and mirror it into the
  // observability registry (no-ops there when obs is disabled), so a metrics
  // snapshot is self-contained without re-walking every engine.
  void IncCommit() {
    commits.fetch_add(1, std::memory_order_relaxed);
    obs::Count(obs::Counter::kTxnCommit);
  }
  void IncAbortLock() {
    aborts_lock.fetch_add(1, std::memory_order_relaxed);
    obs::Count(obs::Counter::kTxnAbortLock);
  }
  void IncAbortValidation() {
    aborts_validation.fetch_add(1, std::memory_order_relaxed);
    obs::Count(obs::Counter::kTxnAbortValidation);
  }
  void IncAbortUser() {
    aborts_user.fetch_add(1, std::memory_order_relaxed);
    obs::Count(obs::Counter::kTxnAbortUser);
  }
  void IncAbortStaleEpoch() {
    aborts_stale_epoch.fetch_add(1, std::memory_order_relaxed);
    obs::Count(obs::Counter::kFenceSelfAbort);
  }
  void IncAbortTimeout() { aborts_timeout.fetch_add(1, std::memory_order_relaxed); }
  void IncAbortMigrating() { aborts_migrating.fetch_add(1, std::memory_order_relaxed); }
  void IncFallback() {
    fallbacks.fetch_add(1, std::memory_order_relaxed);
    obs::Count(obs::Counter::kTxnFallback);
  }
  void IncHtmCommitRetry(uint64_t n = 1) {
    htm_commit_retries.fetch_add(n, std::memory_order_relaxed);
    obs::Count(obs::Counter::kHtmCommitRetry, n);
  }

  void Reset() {
    commits = 0;
    aborts_lock = 0;
    aborts_validation = 0;
    aborts_user = 0;
    aborts_stale_epoch = 0;
    aborts_timeout = 0;
    aborts_migrating = 0;
    fallbacks = 0;
    htm_commit_retries = 0;
    dangling_locks_released = 0;
    remote_reads = 0;
    local_reads = 0;
  }
};

// Sequence-number arithmetic of Table 4. With optimistic replication (OR) an
// update moves seq from even (committable) through odd (committed locally,
// not yet replicated) to the next even value; without OR it just increments.
struct SeqRules {
  bool replication;
  // Mirrors TxnConfig::unsafe_skip_read_validation (torture teeth only).
  bool skip_read_validation = false;

  // Validation for read-set entries: the current seq must equal the closest
  // committable value at or after the observed one.
  bool ReadValid(uint64_t observed, uint64_t current) const {
    if (skip_read_validation) {
      return true;
    }
    if (!replication) {
      return observed == current;
    }
    return ((observed + 1) & ~1ull) == current;
  }

  // Validation for write-set entries: the record must be committable.
  bool WriteValid(uint64_t current) const {
    return !replication || (current & 1ull) == 0;
  }

  // Seq stored by the HTM update of a local primary (C.4).
  uint64_t LocalCommitSeq(uint64_t current) const { return current + 1; }
  // Seq stored by the post-replication makeup of a local primary (R.2).
  uint64_t MakeupSeq(uint64_t current) const { return current + 2; }
  // Seq stored on remote primaries (C.5) and on backups (R.1).
  uint64_t RemoteCommitSeq(uint64_t current) const { return replication ? current + 2 : current + 1; }
};

}  // namespace drtmr::txn

#endif  // DRTMR_SRC_TXN_TYPES_H_
