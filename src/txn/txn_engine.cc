#include "src/txn/txn_engine.h"

#include <cstring>
#include <thread>

#include "src/chk/protocol_analyzer.h"
#include "src/cluster/membership.h"
#include "src/store/record.h"
#include "src/util/backoff.h"
#include "src/util/logging.h"

namespace drtmr::txn {

using store::LockWord;
using store::RecordLayout;

struct TxnEngine::RpcMsg {
  enum Op : uint32_t { kInsert = 1, kRemove = 2, kReply = 3 };
  uint32_t op;
  uint32_t table_id;
  uint32_t reply_qp;
  uint32_t status;
  uint64_t key;
  uint64_t token;
  uint32_t value_len;
  uint32_t pad;
  // followed by value_len payload bytes
};

TxnEngine::TxnEngine(cluster::Cluster* cluster, store::Catalog* catalog, const TxnConfig& config,
                     cluster::Coordinator* coordinator, Replicator* replicator)
    : cluster_(cluster),
      catalog_(catalog),
      config_(config),
      coordinator_(coordinator),
      replicator_(replicator) {
  DRTMR_CHECK(!config_.replication || replicator_ != nullptr)
      << "replication enabled without a Replicator";
  DRTMR_CHECK(!config_.fused_seq_lock ||
              cluster->fabric()->atomicity() == sim::AtomicityLevel::kGlob)
      << "fused seq locking (Â§4.4) requires IBV_ATOMIC_GLOB";
  workers_per_node_ = cluster->config().workers_per_node;
  caches_.reserve(cluster->num_nodes() * workers_per_node_);
  for (uint32_t n = 0; n < cluster->num_nodes(); ++n) {
    for (uint32_t w = 0; w < workers_per_node_; ++w) {
      caches_.push_back(std::make_unique<store::LocationCache>());
    }
  }
}

TxnEngine::~TxnEngine() { StopServices(); }

bool TxnEngine::OwnerAbsent(const sim::ThreadContext* ctx, uint64_t lock_word) const {
  if (coordinator_ == nullptr || !LockWord::IsLocked(lock_word)) {
    return false;
  }
  const uint32_t owner = LockWord::OwnerNode(lock_word);
  if (coordinator_->view().Contains(owner)) {
    return false;
  }
  // Tombstone grace (§5.2): a lease-expired owner may still have an unlock
  // verb in flight; survivors wait out the grace window before stealing.
  return coordinator_->SafeToStealLocksOf(owner, ctx->clock.now_ns());
}

// ---------------- execution-phase reads ----------------

Status TxnEngine::ReadLocalRecord(sim::ThreadContext* ctx, store::Table* table, uint64_t key,
                                  void* value_out, AccessEntry* entry) {
  cluster::Node* node = cluster_->node(ctx->node_id);
  if (node->killed()) {
    return Status::kUnavailable;  // fail-stop: wind the thread down
  }
  const uint64_t off = table->Lookup(ctx, ctx->node_id, key);
  if (off == 0) {
    return Status::kNotFound;
  }
  ctx->Charge(cost()->record_logic_ns);
  stats_.local_reads.fetch_add(1, std::memory_order_relaxed);

  const size_t rec_bytes = table->record_bytes();
  std::vector<std::byte> buf(rec_bytes);

  // Fig. 5: copy the record inside a small HTM region after checking that no
  // remote committer holds the lock; a locked record is about to change, so
  // abort and retry with randomized backoff rather than read a doomed value.
  for (uint32_t attempt = 0; attempt < config_.local_read_retry_threshold; ++attempt) {
    sim::HtmTxn* htm = node->htm()->Begin(ctx, obs::HtmSite::kLocalRead);
    if (htm == nullptr) {
      return Status::kInvalid;  // nested inside another HTM region
    }
    if (htm->Read(off, buf.data(), rec_bytes) != Status::kOk) {
      continue;  // conflict abort: immediately retry
    }
    if (LockWord::IsLocked(RecordLayout::GetLock(buf.data())) ||
        store::SeqWord::Locked(RecordLayout::GetSeq(buf.data()))) {
      const uint64_t lock_word = RecordLayout::GetLock(buf.data());
      htm->Abort();
      if (OwnerAbsent(ctx, lock_word)) {
        // Passive dangling-lock release (§5.2): the owner machine crashed.
        if (chk::AnalyzerEnabled()) {
          chk::ProtocolAnalyzer::Global().NoteDanglingSteal(node->bus(), off, lock_word);
        }
        uint64_t obs;
        node->bus()->CasU64(ctx, off + RecordLayout::kLockOff, lock_word, 0, &obs);
        stats_.dangling_locks_released.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      // Linear jitter keyed to the loop's own attempt index (bit-identical to
      // the historical Range(50, 400) * (attempt + 1) charge sequence).
      ctx->Charge(util::Backoff::Linear(50, 400).DelayAt(attempt, &ctx->rng));
      std::this_thread::yield();
      continue;
    }
    if (htm->Commit() != Status::kOk) {
      continue;
    }
    entry->table = table;
    entry->node = ctx->node_id;
    entry->key = key;
    entry->offset = off;
    entry->seq = store::SeqWord::Value(RecordLayout::GetSeq(buf.data()));
    entry->incarnation = RecordLayout::GetIncarnation(buf.data());
    if (value_out != nullptr) {
      RecordLayout::GatherValue(buf.data(), value_out, table->value_size());
    }
    return Status::kOk;
  }

  // Seqlock-style fallback read: two stable snapshots with equal seq and no
  // lock imply a consistent copy (the HTM path had no forward progress). The
  // wait is bounded: a lock held past the spin budget is leaked — its owner
  // failed mid-commit or the unlock verb was lost — and waiting for it would
  // hang the reader until a configuration change releases it, so abort the
  // read and let the transaction retry instead.
  std::vector<std::byte> buf2(rec_bytes);
  bool stable = false;
  for (uint32_t spin = 0; spin < config_.seqlock_read_spin_threshold; ++spin) {
    if (node->killed()) {
      return Status::kUnavailable;
    }
    node->bus()->Read(ctx, off, buf.data(), rec_bytes);
    if (LockWord::IsLocked(RecordLayout::GetLock(buf.data())) ||
        store::SeqWord::Locked(RecordLayout::GetSeq(buf.data()))) {
      const uint64_t lock_word = RecordLayout::GetLock(buf.data());
      if (OwnerAbsent(ctx, lock_word)) {
        if (chk::AnalyzerEnabled()) {
          chk::ProtocolAnalyzer::Global().NoteDanglingSteal(node->bus(), off, lock_word);
        }
        uint64_t obs;
        node->bus()->CasU64(ctx, off + RecordLayout::kLockOff, lock_word, 0, &obs);
        stats_.dangling_locks_released.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      std::this_thread::yield();
      continue;
    }
    node->bus()->Read(ctx, off, buf2.data(), rec_bytes);
    if (RecordLayout::GetLock(buf2.data()) == 0 &&
        RecordLayout::GetSeq(buf.data()) == RecordLayout::GetSeq(buf2.data()) &&
        std::memcmp(buf.data(), buf2.data(), rec_bytes) == 0) {
      stable = true;
      break;
    }
  }
  if (!stable) {
    return Status::kConflict;  // leaked lock or livelock: abort, do not hang
  }
  if (chk::AnalyzerEnabled()) {
    chk::ProtocolAnalyzer::Global().OnSnapshotAccepted(
        node->bus(), off, RecordLayout::GetSeq(buf.data()), RecordLayout::GetLock(buf.data()),
        RecordLayout::VersionsConsistent(buf.data(), table->value_size()),
        /*lock_checked=*/true);
  }
  entry->table = table;
  entry->node = ctx->node_id;
  entry->key = key;
  entry->offset = off;
  entry->seq = store::SeqWord::Value(RecordLayout::GetSeq(buf.data()));
  entry->incarnation = RecordLayout::GetIncarnation(buf.data());
  if (value_out != nullptr) {
    RecordLayout::GatherValue(buf.data(), value_out, table->value_size());
  }
  return Status::kOk;
}

Status TxnEngine::ReadRemoteRecord(sim::ThreadContext* ctx, store::Table* table, uint32_t node,
                                   uint64_t key, void* value_out, AccessEntry* entry,
                                   bool check_lock) {
  DRTMR_CHECK(table->remote_accessible()) << "ordered tables are local-only";
  cluster::Node* self = cluster_->node(ctx->node_id);
  store::LocationCache* cache = this->cache(ctx->node_id, ctx->worker_id);
  stats_.remote_reads.fetch_add(1, std::memory_order_relaxed);

  uint64_t off = cache->Get(table->id(), node, key);
  bool from_cache = off != 0;
  if (off == 0) {
    off = table->hash(node)->RemoteLookup(ctx, self->nic(), node, key);
    if (off == 0) {
      return Status::kNotFound;
    }
    cache->Put(table->id(), node, key, off);
  }

  const size_t rec_bytes = table->record_bytes();
  std::vector<std::byte> buf(rec_bytes);
  for (uint32_t attempt = 0; attempt < config_.remote_read_retry_threshold; ++attempt) {
    const Status s = self->nic()->Read(ctx, node, off, buf.data(), rec_bytes);
    if (s != Status::kOk) {
      return s;
    }
    if (RecordLayout::GetKey(buf.data()) != key) {
      // Stale location-cache hint (record freed/reused): invalidate, re-look.
      if (!from_cache) {
        return Status::kNotFound;
      }
      cache->Invalidate(table->id(), node, key);
      off = table->hash(node)->RemoteLookup(ctx, self->nic(), node, key);
      if (off == 0) {
        return Status::kNotFound;
      }
      cache->Put(table->id(), node, key, off);
      from_cache = false;
      continue;
    }
    // Fig. 6: versions at every line must match the seqnum's low 16 bits or
    // the one-sided READ raced a multi-line write.
    if (!RecordLayout::VersionsConsistent(buf.data(), table->value_size())) {
      continue;
    }
    // Fig. 8: read-only transactions refuse locked records (the lock means a
    // commit is in flight; an uncommitted value must not be returned).
    if (check_lock && (LockWord::IsLocked(RecordLayout::GetLock(buf.data())) ||
                       store::SeqWord::Locked(RecordLayout::GetSeq(buf.data())))) {
      const uint64_t lock_word = RecordLayout::GetLock(buf.data());
      if (OwnerAbsent(ctx, lock_word)) {
        if (chk::AnalyzerEnabled()) {
          chk::ProtocolAnalyzer::Global().NoteDanglingSteal(cluster_->node(node)->bus(), off,
                                                            lock_word);
        }
        uint64_t obs;
        // Best-effort steal: losing the race means another survivor freed it.
        (void)self->nic()->CompareSwap(ctx, node, off + RecordLayout::kLockOff, lock_word, 0,
                                       &obs);
        stats_.dangling_locks_released.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::yield();
      continue;
    }
    if (chk::AnalyzerEnabled()) {
      // Re-derives the torn/locked verdicts from the accepted bytes rather
      // than trusting the checks above, so a regression there is caught here.
      chk::ProtocolAnalyzer::Global().OnSnapshotAccepted(
          cluster_->node(node)->bus(), off, RecordLayout::GetSeq(buf.data()),
          RecordLayout::GetLock(buf.data()),
          RecordLayout::VersionsConsistent(buf.data(), table->value_size()), check_lock);
    }
    entry->table = table;
    entry->node = node;
    entry->key = key;
    entry->offset = off;
    entry->seq = store::SeqWord::Value(RecordLayout::GetSeq(buf.data()));
    entry->incarnation = RecordLayout::GetIncarnation(buf.data());
    if (value_out != nullptr) {
      RecordLayout::GatherValue(buf.data(), value_out, table->value_size());
    }
    return Status::kOk;
  }
  return Status::kAborted;
}

void TxnEngine::ReadMetaLocal(sim::ThreadContext* ctx, const AccessEntry& e, uint64_t* inc,
                              uint64_t* seq) {
  uint64_t meta[2];
  cluster_->node(ctx->node_id)
      ->bus()
      ->Read(ctx, e.offset + RecordLayout::kIncOff, meta, sizeof(meta));
  *inc = meta[0];
  *seq = meta[1];
}

Status TxnEngine::ReadMetaRemote(sim::ThreadContext* ctx, const AccessEntry& e, uint64_t* inc,
                                 uint64_t* seq) {
  uint64_t meta[2];
  const Status s = cluster_->node(ctx->node_id)
                       ->nic()
                       ->Read(ctx, e.node, e.offset + RecordLayout::kIncOff, meta, sizeof(meta));
  if (s != Status::kOk) {
    return s;
  }
  *inc = meta[0];
  *seq = meta[1];
  return Status::kOk;
}

// ---------------- insert/delete shipping ----------------

Status TxnEngine::ApplyMutation(sim::ThreadContext* ctx, MutationEntry::Op op, uint32_t table_id,
                                uint64_t key, const std::byte* value, size_t value_len) {
  store::Table* table = catalog_->table(table_id);
  DRTMR_CHECK(table != nullptr) << "unknown table " << table_id;
  cluster::Node* node = cluster_->node(ctx->node_id);
  ctx->Charge(cost()->record_logic_ns);
  if (table->kind() == store::StoreKind::kHash) {
    if (op == MutationEntry::Op::kInsert) {
      return table->hash(ctx->node_id)->Insert(ctx, key, value, nullptr);
    }
    return table->hash(ctx->node_id)->Remove(ctx, key);
  }
  // Ordered store: allocate/initialize the record, then index it.
  if (op == MutationEntry::Op::kInsert) {
    const size_t rec_bytes = table->record_bytes();
    const uint64_t off = node->allocator()->Alloc(rec_bytes);
    if (off == cluster::RegionAllocator::kInvalidOffset) {
      return Status::kCapacity;
    }
    std::vector<std::byte> image(rec_bytes);
    RecordLayout::Init(image.data(), key, 2, 2, value, table->value_size());
    node->bus()->Write(ctx, off, image.data(), rec_bytes);
    const Status s = table->btree(ctx->node_id)->Insert(ctx, key, off);
    if (s != Status::kOk) {
      node->allocator()->Free(off, rec_bytes);
    } else if (chk::AnalyzerEnabled()) {
      chk::ProtocolAnalyzer::Global().RegisterRecord(node->bus(), off, table->value_size(),
                                                     image.data());
    }
    return s;
  }
  const uint64_t off = table->btree(ctx->node_id)->Lookup(ctx, key);
  if (off == 0) {
    return Status::kNotFound;
  }
  // Invalidate concurrent readers before unlinking (§4.3 incarnation rule).
  node->bus()->FetchAddU64(ctx, off + RecordLayout::kIncOff, 1);
  const Status s = table->btree(ctx->node_id)->Remove(ctx, key);
  if (s == Status::kOk) {
    if (chk::AnalyzerEnabled()) {
      chk::ProtocolAnalyzer::Global().UnregisterRecord(node->bus(), off);
    }
    node->allocator()->Free(off, table->record_bytes());
  }
  return s;
}

Status TxnEngine::Mutate(sim::ThreadContext* ctx, const MutationEntry& m) {
  if (m.node == ctx->node_id) {
    return ApplyMutation(ctx, m.op, m.table->id(), m.key, m.value.data(), m.value.size());
  }
  // Ship to the hosting machine via SEND/RECV (§4.3) and wait for the reply
  // on this worker's queue pair.
  const uint64_t token = next_rpc_token_.fetch_add(1, std::memory_order_relaxed);
  RpcMsg header;
  header.op = m.op == MutationEntry::Op::kInsert ? RpcMsg::kInsert : RpcMsg::kRemove;
  header.table_id = m.table->id();
  header.reply_qp = 1 + ctx->worker_id;
  header.status = 0;
  header.key = m.key;
  header.token = token;
  header.value_len = static_cast<uint32_t>(m.value.size());
  header.pad = 0;
  std::vector<std::byte> payload(sizeof(header) + m.value.size());
  std::memcpy(payload.data(), &header, sizeof(header));
  if (!m.value.empty()) {
    std::memcpy(payload.data() + sizeof(header), m.value.data(), m.value.size());
  }
  sim::RdmaNic* nic = cluster_->node(ctx->node_id)->nic();
  Status s = nic->Send(ctx, m.node, std::move(payload));
  if (s != Status::kOk) {
    return s;
  }
  // Poll for the matching reply; bail out if the target machine dies or the
  // virtual-time budget runs out (a partitioned host never replies, and only
  // a configuration change will say so — don't hang the worker until then).
  const uint64_t deadline_ns = ctx->clock.now_ns() + config_.mutate_reply_budget_ns;
  sim::Message reply;
  while (true) {
    if (nic->TryRecv(ctx, &reply, 1 + ctx->worker_id)) {
      RpcMsg r;
      DRTMR_CHECK(reply.payload.size() >= sizeof(r));
      std::memcpy(&r, reply.payload.data(), sizeof(r));
      if (r.token == token) {
        return static_cast<Status>(r.status);
      }
      continue;  // stale reply from an earlier timed-out RPC
    }
    if (!cluster_->fabric()->alive(m.node)) {
      return Status::kUnavailable;
    }
    if (ctx->clock.now_ns() >= deadline_ns) {
      stats_.IncAbortTimeout();
      return Status::kTimeout;
    }
    ctx->Charge(cost()->line_access_ns);
    std::this_thread::yield();
  }
}

void TxnEngine::HandleRpc(sim::ThreadContext* ctx, const sim::Message& msg) {
  RpcMsg m;
  DRTMR_CHECK(msg.payload.size() >= sizeof(m));
  std::memcpy(&m, msg.payload.data(), sizeof(m));
  const std::byte* value = msg.payload.data() + sizeof(m);
  const Status s = ApplyMutation(
      ctx, m.op == RpcMsg::kInsert ? MutationEntry::Op::kInsert : MutationEntry::Op::kRemove,
      m.table_id, m.key, value, m.value_len);
  RpcMsg reply = m;
  reply.op = RpcMsg::kReply;
  reply.status = static_cast<uint32_t>(s);
  reply.value_len = 0;
  std::vector<std::byte> payload(sizeof(reply));
  std::memcpy(payload.data(), &reply, sizeof(reply));
  // A failed reply SEND means the requester died; it can never consume it.
  (void)cluster_->node(ctx->node_id)->nic()->Send(ctx, msg.src_node, std::move(payload),
                                                  m.reply_qp);
}

void TxnEngine::StartServices() {
  DRTMR_CHECK(!services_running_);
  for (uint32_t i = 0; i < cluster_->num_nodes(); ++i) {
    cluster::Node::IdleFn idle;
    if (replicator_ != nullptr) {
      Replicator* rep = replicator_;
      idle = [rep](sim::ThreadContext* ctx) { rep->Pump(ctx); };
    }
    cluster_->node(i)->StartService(
        [this](sim::ThreadContext* ctx, const sim::Message& msg) { HandleRpc(ctx, msg); },
        std::move(idle));
  }
  services_running_ = true;
}

void TxnEngine::StopServices() {
  if (services_running_) {
    for (uint32_t i = 0; i < cluster_->num_nodes(); ++i) {
      cluster_->node(i)->StopService();
    }
    services_running_ = false;
  }
}

}  // namespace drtmr::txn
