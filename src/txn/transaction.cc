#include "src/txn/transaction.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "src/chk/history.h"
#include "src/chk/protocol_analyzer.h"
#include "src/cluster/membership.h"
#include "src/obs/phase_timer.h"
#include "src/store/record.h"
#include "src/util/backoff.h"
#include "src/util/logging.h"

namespace drtmr::txn {

using store::LockWord;
using store::RecordLayout;

Transaction::Transaction(TxnEngine* engine, sim::ThreadContext* ctx)
    : engine_(engine),
      ctx_(ctx),
      self_(engine->cluster()->node(ctx->node_id)),
      rules_(engine->seq_rules()),
      lock_word_(LockWord::Make(ctx->node_id, ctx->worker_id)) {}

void Transaction::Begin(bool read_only) {
  DRTMR_CHECK(!active_) << "Begin inside an active transaction";
  engine_->cluster()->SyncGate(&ctx_->clock);
  begin_ns_ = ctx_->clock.now_ns();
  if (engine_->fencing()) {
    // Snapshot the configuration epoch stamped in our registered memory; the
    // commit path aborts if it has moved by then (DESIGN.md §10).
    begin_epoch_ = engine_->membership()->NodeEpoch(ctx_->node_id);
  }
  active_ = true;
  read_only_ = read_only;
  txn_id_ = engine_->NextTxnId();
  read_set_.clear();
  write_set_.clear();
  mutations_.clear();
  held_locks_.clear();
  commit_seq_.clear();
}

AccessEntry* Transaction::FindRead(store::Table* table, uint32_t node, uint64_t key) {
  for (auto& e : read_set_) {
    if (e.table == table && e.node == node && e.key == key) {
      return &e;
    }
  }
  return nullptr;
}

WriteEntry* Transaction::FindWrite(store::Table* table, uint32_t node, uint64_t key) {
  for (auto& w : write_set_) {
    if (w.access.table == table && w.access.node == node && w.access.key == key) {
      return &w;
    }
  }
  return nullptr;
}

Status Transaction::Read(store::Table* table, uint32_t node, uint64_t key, void* value_out) {
  DRTMR_CHECK(active_);
  // Read-your-own-write within the transaction.
  if (WriteEntry* w = FindWrite(table, node, key); w != nullptr) {
    if (value_out != nullptr) {
      std::memcpy(value_out, w->value.data(), table->value_size());
    }
    return Status::kOk;
  }
  if (AccessEntry* e = FindRead(table, node, key); e != nullptr && value_out == nullptr) {
    return Status::kOk;  // already tracked, version-only read
  }
  AccessEntry entry;
  Status s;
  if (IsLocal(node)) {
    s = engine_->ReadLocalRecord(ctx_, table, key, value_out, &entry);
  } else {
    s = engine_->ReadRemoteRecord(ctx_, table, node, key, value_out, &entry,
                                  /*check_lock=*/read_only_);
  }
  if (s != Status::kOk) {
    return s;
  }
  if (FindRead(table, node, key) == nullptr) {
    read_set_.push_back(entry);
  }
  return Status::kOk;
}

Status Transaction::Write(store::Table* table, uint32_t node, uint64_t key, const void* value) {
  DRTMR_CHECK(active_ && !read_only_);
  ctx_->Charge(engine_->cost()->CopyNs(table->value_size()) +
               engine_->cost()->record_logic_ns / 8);
  if (WriteEntry* w = FindWrite(table, node, key); w != nullptr) {
    std::memcpy(w->value.data(), value, table->value_size());
    return Status::kOk;
  }
  WriteEntry w;
  w.value.assign(static_cast<const std::byte*>(value),
                 static_cast<const std::byte*>(value) + table->value_size());
  if (AccessEntry* e = FindRead(table, node, key); e != nullptr) {
    w.access = *e;
    w.blind = false;
  } else {
    // Blind write: fetch the record's location and metadata now so the commit
    // phase can lock and validate committability.
    AccessEntry entry;
    Status s;
    if (IsLocal(node)) {
      s = engine_->ReadLocalRecord(ctx_, table, key, nullptr, &entry);
    } else {
      s = engine_->ReadRemoteRecord(ctx_, table, node, key, nullptr, &entry, false);
    }
    if (s != Status::kOk) {
      return s;
    }
    w.access = entry;
    w.blind = true;
  }
  write_set_.push_back(std::move(w));
  return Status::kOk;
}

Status Transaction::Insert(store::Table* table, uint32_t node, uint64_t key, const void* value) {
  DRTMR_CHECK(active_ && !read_only_);
  MutationEntry m;
  m.op = MutationEntry::Op::kInsert;
  m.table = table;
  m.node = node;
  m.key = key;
  m.value.assign(static_cast<const std::byte*>(value),
                 static_cast<const std::byte*>(value) + table->value_size());
  mutations_.push_back(std::move(m));
  return Status::kOk;
}

Status Transaction::Remove(store::Table* table, uint32_t node, uint64_t key) {
  DRTMR_CHECK(active_ && !read_only_);
  MutationEntry m;
  m.op = MutationEntry::Op::kRemove;
  m.table = table;
  m.node = node;
  m.key = key;
  mutations_.push_back(std::move(m));
  return Status::kOk;
}

Status Transaction::ScanLocal(store::Table* table, uint64_t lo, uint64_t hi,
                              const std::function<bool(uint64_t, const void*)>& fn) {
  DRTMR_CHECK(active_);
  DRTMR_CHECK(table->kind() == store::StoreKind::kBTree) << "ScanLocal is for ordered tables";
  // Collect matches from the index first, then read each record through the
  // consistent local-read path so it lands in the read set.
  std::vector<uint64_t> keys;
  table->btree(ctx_->node_id)->Scan(ctx_, lo, hi, [&](uint64_t key, uint64_t) {
    keys.push_back(key);
    return true;
  });
  std::vector<std::byte> value(table->value_size());
  for (uint64_t key : keys) {
    const Status s = Read(table, ctx_->node_id, key, value.data());
    if (s == Status::kNotFound) {
      continue;  // removed between index scan and record read
    }
    if (s != Status::kOk) {
      return s;
    }
    if (!fn(key, value.data())) {
      break;
    }
  }
  return Status::kOk;
}

void Transaction::UserAbort() {
  DRTMR_CHECK(active_);
  active_ = false;
  engine_->stats().IncAbortUser();
  // The attempt still spent execution-phase time; account for it so phase
  // sums cover user-aborted (business-abort) transactions too.
  obs::PhaseSample(obs::Phase::kExecution, ctx_->clock.now_ns() - begin_ns_);
  if (obs::TraceEnabled()) {
    obs::Registry::Global().AddTrace(read_only_ ? obs::TraceName::kTxnReadOnly
                                                : obs::TraceName::kTxn,
                                     ctx_->node_id, ctx_->worker_id, begin_ns_,
                                     ctx_->clock.now_ns() - begin_ns_, /*arg=*/0);
  }
}

// ---------------- commit protocol ----------------

void Transaction::BuildImage(const WriteEntry& w, uint64_t seq, std::vector<std::byte>* image) const {
  const store::Table* table = w.access.table;
  image->assign(table->record_bytes(), std::byte{0});
  RecordLayout::Init(image->data(), w.access.key, w.access.incarnation, seq, w.value.data(),
                     table->value_size());
}

Status Transaction::AcquireLock(const LockTarget& t) {
  // Lock both local and remote records uniformly with RDMA CAS (§6.2): our
  // ConnectX-3-level atomicity means RDMA atomics only pair with RDMA
  // atomics, so the lock word is only ever CASed through the NIC. A live
  // conflict aborts immediately (no-wait); only the dangling-owner path
  // retries, bounded and with jittered exponential backoff so that survivors
  // racing to steal the same dead owner's locks spread out instead of
  // spinning forever (DESIGN.md §10).
  sim::RdmaNic* nic = self_->nic();
  const TxnConfig& cfg = engine_->config();
  util::Backoff backoff = util::Backoff::Exponential(
      cfg.lock_backoff_base_ns, cfg.lock_backoff_base_ns * 2,
      /*max_shift=*/16, cfg.lock_backoff_cap_ns);
  while (true) {
    uint64_t observed = 0;
    const Status s = nic->CompareSwap(ctx_, t.node, t.offset + RecordLayout::kLockOff,
                                      LockWord::kUnlocked, lock_word_, &observed);
    if (engine_->config().message_passing_commit) {
      ctx_->Charge(engine_->cost()->send_recv_ns);
    }
    if (s == Status::kOk) {
      return Status::kOk;
    }
    if (s == Status::kUnavailable || s == Status::kStaleEpoch) {
      return s;
    }
    if (engine_->OwnerAbsent(ctx_, observed)) {
      // §5.2: the lock owner crashed; release the dangling lock and retry.
      if (backoff.attempts() >= cfg.lock_retry_threshold) {
        return Status::kTimeout;
      }
      if (chk::AnalyzerEnabled()) {
        chk::ProtocolAnalyzer::Global().NoteDanglingSteal(
            engine_->cluster()->node(t.node)->bus(), t.offset, observed);
      }
      // Best-effort steal: losing the race means another survivor freed it.
      (void)nic->CompareSwap(ctx_, t.node, t.offset + RecordLayout::kLockOff, observed,
                             LockWord::kUnlocked, nullptr);
      engine_->stats().dangling_locks_released.fetch_add(1, std::memory_order_relaxed);
      ctx_->Charge(backoff.NextDelay(&ctx_->rng));
      continue;
    }
    return Status::kConflict;
  }
}

void Transaction::ReleaseLocks(const std::vector<LockTarget>& targets, size_t count) {
  // Unlocks are fire-and-forget: posted CASes whose completions nobody waits
  // on (the transaction has already reported its outcome).
  sim::RdmaNic* nic = self_->nic();
  uint64_t completion = 0;
  for (size_t i = 0; i < count; ++i) {
    (void)nic->CompareSwapPosted(ctx_, targets[i].node,
                                 targets[i].offset + RecordLayout::kLockOff, lock_word_,
                                 LockWord::kUnlocked, nullptr, &completion);
  }
}

Status Transaction::LockRemoteSets(const std::vector<LockTarget>& targets) {
  for (size_t i = 0; i < targets.size(); ++i) {
    const Status s = AcquireLock(targets[i]);
    if (s != Status::kOk) {
      ReleaseLocks(targets, i);
      return s;
    }
  }
  return Status::kOk;
}

Status Transaction::ValidateRemote(uint64_t* /*unused*/) {
  // C.2: validate remote read-set records; under replication also check that
  // remote write-set records are committable (Table 4). Record the current
  // seq of every remote write entry as the base for its increments. All the
  // metadata READs are posted back-to-back (their latencies overlap) and one
  // fence awaits the batch.
  sim::RdmaNic* nic = self_->nic();
  struct Pending {
    const AccessEntry* entry;
    size_t ws_index;  // ~0 for read-set entries
    uint64_t meta[2];
  };
  std::vector<Pending> pending;
  uint64_t completion = 0;
  for (const AccessEntry& e : read_set_) {
    if (IsLocal(e.node)) {
      continue;
    }
    pending.push_back(Pending{&e, ~0ull, {}});
  }
  for (size_t i = 0; i < write_set_.size(); ++i) {
    if (IsLocal(write_set_[i].access.node)) {
      continue;
    }
    pending.push_back(Pending{&write_set_[i].access, i, {}});
  }
  for (Pending& p : pending) {
    const Status s = nic->ReadPosted(ctx_, p.entry->node,
                                     p.entry->offset + RecordLayout::kIncOff, p.meta,
                                     sizeof(p.meta), &completion);
    if (s != Status::kOk) {
      return s;
    }
  }
  if (!pending.empty()) {
    nic->Fence(ctx_, completion, engine_->cost()->rdma_read_ns);
    if (engine_->config().message_passing_commit) {
      ctx_->Charge(engine_->cost()->send_recv_ns * pending.size());
    }
  }
  for (const Pending& p : pending) {
    if (p.meta[0] != p.entry->incarnation) {
      return Status::kConflict;
    }
    if (p.ws_index == ~0ull) {
      if (!rules_.ReadValid(p.entry->seq, p.meta[1])) {
        return Status::kConflict;
      }
    } else {
      if (!rules_.WriteValid(p.meta[1])) {
        return Status::kConflict;
      }
      commit_seq_[p.ws_index] = p.meta[1];
    }
  }
  return Status::kOk;
}

Status Transaction::HtmValidateAndApply() {
  const TxnConfig& cfg = engine_->config();
  std::vector<std::byte> image;
  // Pre-size to the largest local record so BuildImage's assign() never
  // allocates inside the HTM region below — on real RTM a malloc inside
  // XBEGIN..XEND is a guaranteed abort (drtmr-htm-region-purity).
  uint64_t max_record_bytes = 0;
  for (const WriteEntry& w : write_set_) {
    if (IsLocal(w.access.node) && w.access.table->record_bytes() > max_record_bytes) {
      max_record_bytes = w.access.table->record_bytes();
    }
  }
  image.reserve(max_record_bytes);
  for (uint32_t attempt = 0;; ++attempt) {
    if (attempt >= cfg.htm_retry_threshold) {
      return Status::kAborted;  // no forward progress: take the fallback
    }
    if (attempt > 0) {
      engine_->stats().IncHtmCommitRetry();
    }
    sim::HtmTxn* htm = self_->htm()->Begin(ctx_, obs::HtmSite::kCommit);
    DRTMR_CHECK(htm != nullptr);
    bool conflict = false;
    bool htm_failed = false;
    bool dangling = false;
    uint64_t dangling_word = 0;
    uint64_t dangling_off = 0;

    // Fencing (DESIGN.md §10): pull the stamped epoch word into the HTM read
    // set. A membership stamp is a plain bus CAS on that line, so it dooms
    // this region if it lands mid-commit, and a region starting after the
    // stamp sees the mismatch here — either way no fenced-epoch write can
    // reach committed state through HTM.
    if (engine_->fencing()) {
      uint64_t epoch_word = 0;
      if (htm->Read(sim::Fabric::kEpochWordOff, &epoch_word, sizeof(epoch_word)) !=
          Status::kOk) {
        continue;  // doomed (likely by a concurrent stamp): retry and re-check
      }
      if (epoch_word != begin_epoch_) {
        htm->Abort();
        return Status::kStaleEpoch;
      }
    }

    // C.3: validate the local read set.
    for (const AccessEntry& e : read_set_) {
      if (!IsLocal(e.node)) {
        continue;
      }
      uint64_t meta[2];
      if (htm->Read(e.offset + RecordLayout::kIncOff, meta, sizeof(meta)) != Status::kOk) {
        htm_failed = true;
        break;
      }
      if (meta[0] != e.incarnation || !rules_.ReadValid(e.seq, meta[1])) {
        conflict = true;
        break;
      }
    }

    // C.4: check and update the local write set.
    if (!conflict && !htm_failed) {
      for (size_t i = 0; i < write_set_.size(); ++i) {
        WriteEntry& w = write_set_[i];
        if (!IsLocal(w.access.node)) {
          continue;
        }
        uint64_t meta[3];  // lock, incarnation, seq
        if (htm->Read(w.access.offset, meta, sizeof(meta)) != Status::kOk) {
          htm_failed = true;
          break;
        }
        if (LockWord::IsLocked(meta[0])) {
          // A remote transaction locked this record before our HTM region
          // began (§4.4 C.4's "additional check"). If the owner is gone,
          // release the lock outside the region and retry.
          if (engine_->OwnerAbsent(ctx_, meta[0])) {
            dangling = true;
            dangling_word = meta[0];
            dangling_off = w.access.offset;
          } else {
            conflict = true;
          }
          break;
        }
        if (store::SeqWord::Locked(meta[2])) {
          conflict = true;  // fused-locked by a remote committer (§4.4)
          break;
        }
        if (meta[1] != w.access.incarnation || !rules_.WriteValid(meta[2]) ||
            (!w.blind && !rules_.ReadValid(w.access.seq, meta[2]))) {
          conflict = true;
          break;
        }
        commit_seq_[i] = meta[2];
        const uint64_t new_seq = rules_.LocalCommitSeq(meta[2]);
        BuildImage(w, new_seq, &image);
        // Write everything after the lock+incarnation words: seq, key,
        // payload, and per-line versions.
        if (htm->Write(w.access.offset + RecordLayout::kSeqOff,
                       image.data() + RecordLayout::kSeqOff,
                       image.size() - RecordLayout::kSeqOff) != Status::kOk) {
          htm_failed = true;
          break;
        }
        // §6.4: pointer-swap tables shrink the HTM write cost to one line.
        if (w.access.table->ptr_swap()) {
          ctx_->Charge(engine_->cost()->line_access_ns);
        } else {
          ctx_->Charge(engine_->cost()->CopyNs(image.size()));
        }
      }
    }

    if (conflict) {
      htm->Abort();
      return Status::kConflict;
    }
    if (dangling) {
      htm->Abort();
      if (chk::AnalyzerEnabled()) {
        chk::ProtocolAnalyzer::Global().NoteDanglingSteal(self_->bus(), dangling_off,
                                                          dangling_word);
      }
      // Best-effort steal: losing the race means another survivor freed it.
      (void)self_->nic()->CompareSwap(ctx_, ctx_->node_id,
                                      dangling_off + RecordLayout::kLockOff, dangling_word,
                                      LockWord::kUnlocked, nullptr);
      engine_->stats().dangling_locks_released.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (htm_failed) {
      continue;
    }
    if (htm->Commit() == Status::kOk) {
      return Status::kOk;
    }
  }
}

void Transaction::StageReplicationEarly() {
  // R.1 issued early (Fig. 9 moved left): the slots ride the per-backup
  // doorbell chains while C.2–C.4 run, so by decision time the log images
  // are already on the wire. The staged seq is a *prediction* — the
  // RemoteCommitSeq this write installs if every validation passes. For
  // non-blind writes validation enforces exactly that base seq on every
  // committing path, so the prediction only misses for blind writes (whose
  // observed seq may be stale); those are superseded at decision time.
  Replicator* rep = engine_->replicator();
  std::vector<std::byte> image;
  for (size_t i = 0; i < write_set_.size(); ++i) {
    const WriteEntry& w = write_set_[i];
    const uint64_t base =
        rules_.replication ? ((w.access.seq + 1) & ~1ull) : w.access.seq;
    const uint64_t predicted = rules_.RemoteCommitSeq(base);
    BuildImage(w, predicted, &image);
    const Status s = rep->StageUpdate(ctx_, txn_id_, w.access.node, w.access.table->id(),
                                      w.access.key, w.access.offset, image.data(),
                                      image.size());
    if (s == Status::kOk || s == Status::kUnavailable) {
      // A dead backup is tolerated: the configuration service reconfigures
      // and recovery rebuilds redundancy (vertical Paxos, §5.1).
      staged_seq_[i] = predicted;
      rep_staged_ = true;
    }
    // Other failures (fenced mid-stage): leave the entry unstaged; the
    // decision path re-attempts or the abort path retires what did land.
  }
}

Status Transaction::FinishReplication() {
  Replicator* rep = engine_->replicator();
  std::vector<std::byte> image;
  Status worst = Status::kOk;
  for (size_t i = 0; i < write_set_.size(); ++i) {
    const WriteEntry& w = write_set_[i];
    const uint64_t final_seq = rules_.RemoteCommitSeq(commit_seq_[i]);
    if (staged_seq_[i] == final_seq) {
      continue;  // the early slot already carries the committed image
    }
    BuildImage(w, final_seq, &image);
    const Status s =
        staged_seq_[i] == kNotStaged
            ? rep->StageUpdate(ctx_, txn_id_, w.access.node, w.access.table->id(),
                               w.access.key, w.access.offset, image.data(), image.size())
            : rep->SupersedeUpdate(ctx_, txn_id_, w.access.node, w.access.table->id(),
                                   w.access.key, w.access.offset, image.data(), image.size());
    if (s == Status::kOk || s == Status::kUnavailable) {
      staged_seq_[i] = final_seq;
      rep_staged_ = true;
    } else if (worst == Status::kOk) {
      worst = s;
    }
  }
  if (worst != Status::kOk && engine_->fencing()) {
    // Fenced mid-replication: the caller aborts, and Commit() tombstones the
    // slots that did land (AbortTxnLog) so they never reach a backup copy.
    return worst;
  }
  // Commit decision: watermark past the staged slots and close one
  // transaction in the group-commit window. In non-fenced mode a partial
  // staging still commits (old behavior: warn and proceed; recovery
  // reconciles via seq comparison), so the decision must still be published.
  (void)rep->CommitTxnLog(ctx_, txn_id_);
  rep_staged_ = false;
  return worst;
}

void Transaction::MakeupLocal() {
  // R.2: flip local written records from odd (uncommittable) to even.
  for (size_t i = 0; i < write_set_.size(); ++i) {
    const WriteEntry& w = write_set_[i];
    if (!IsLocal(w.access.node)) {
      continue;
    }
    const uint64_t final_seq = rules_.MakeupSeq(commit_seq_[i]);
    const uint16_t v = static_cast<uint16_t>(final_seq);
    const uint32_t lines = RecordLayout::LinesFor(w.access.table->value_size());
    for (uint32_t line = 1; line < lines; ++line) {
      self_->bus()->Write(ctx_, w.access.offset + line * kCacheLineSize, &v, sizeof(v));
    }
    self_->bus()->WriteU64(ctx_, w.access.offset + RecordLayout::kSeqOff, final_seq);
  }
}

Status Transaction::WriteBackRemote() {
  // C.5: push buffered updates to remote primaries with posted one-sided
  // WRITEs; one fence before reporting commit.
  std::vector<std::byte> image;
  uint64_t completion = 0;
  bool any = false;
  for (size_t i = 0; i < write_set_.size(); ++i) {
    const WriteEntry& w = write_set_[i];
    if (IsLocal(w.access.node)) {
      continue;
    }
    const uint64_t final_seq = rules_.RemoteCommitSeq(commit_seq_[i]);
    BuildImage(w, final_seq, &image);
    // Posted write-back: failures surface through the completion fence, and a
    // dead target's record is re-hosted from the replication logs anyway.
    (void)self_->nic()->WritePosted(ctx_, w.access.node,
                                    w.access.offset + RecordLayout::kSeqOff,
                                    image.data() + RecordLayout::kSeqOff,
                                    image.size() - RecordLayout::kSeqOff, &completion);
    any = true;
  }
  if (any) {
    self_->nic()->Fence(ctx_, completion, engine_->cost()->rdma_write_ns);
    if (engine_->config().message_passing_commit) {
      ctx_->Charge(engine_->cost()->send_recv_ns);
    }
  }
  return Status::kOk;
}

Status Transaction::CommitReadOnly() {
  // §4.5: validate sequence numbers only; no HTM, no locks.
  obs::PhaseTimer timer(ctx_, obs::Phase::kValidation);
  // Fencing: a read-only transaction spanning a configuration change may have
  // read copies that recovery has since re-hosted; validating against the
  // abandoned copies would wrongly succeed. On a survivor the epoch word
  // catches that. On a fenced node the word never moves, so the lease check
  // is what refuses the snapshot (FaRM's rule: an expired node must not
  // vouch for its local copies — a thawed zombie's clock sits past its stale
  // deadline deterministically). Reads themselves stay allowed in degraded
  // mode; only the serializable-snapshot claim is refused.
  if (engine_->fencing()) {
    const auto& mcfg = engine_->membership()->config();
    if (engine_->membership()->NodeEpoch(ctx_->node_id) != begin_epoch_ ||
        ctx_->clock.now_ns() + mcfg.commit_guard_ns >
            engine_->membership()->lease_deadline_ns(ctx_->node_id)) {
      engine_->stats().IncAbortStaleEpoch();
      return Status::kStaleEpoch;
    }
  }
  for (const AccessEntry& e : read_set_) {
    uint64_t inc, seq;
    if (IsLocal(e.node)) {
      engine_->ReadMetaLocal(ctx_, e, &inc, &seq);
    } else {
      const Status s = engine_->ReadMetaRemote(ctx_, e, &inc, &seq);
      if (s != Status::kOk) {
        engine_->stats().IncAbortValidation();
        return Status::kAborted;
      }
    }
    if (inc != e.incarnation || !rules_.ReadValid(e.seq, seq)) {
      engine_->stats().IncAbortValidation();
      return Status::kAborted;
    }
  }
  engine_->stats().IncCommit();
  return Status::kOk;
}

Status Transaction::FallbackCommit(const std::vector<LockTarget>& remote_targets) {
  engine_->stats().IncFallback();
  // §6.1: release held remote locks, then lock *all* records — local ones via
  // loopback RDMA CAS (§6.2) — in global address order to avoid deadlock.
  ReleaseLocks(held_locks_, held_locks_.size());
  held_locks_.clear();

  std::vector<LockTarget> all = remote_targets;
  for (const AccessEntry& e : read_set_) {
    if (IsLocal(e.node)) {
      all.push_back({e.node, e.offset});
    }
  }
  for (const WriteEntry& w : write_set_) {
    if (IsLocal(w.access.node)) {
      all.push_back({w.access.node, w.access.offset});
    }
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());

  const Status lock_status = LockRemoteSets(all);
  if (lock_status == Status::kStaleEpoch) {
    engine_->stats().IncAbortStaleEpoch();
    return Status::kStaleEpoch;
  }
  if (lock_status == Status::kTimeout) {
    engine_->stats().IncAbortTimeout();
    return Status::kTimeout;
  }
  if (lock_status != Status::kOk) {
    engine_->stats().IncAbortLock();
    return Status::kAborted;
  }
  held_locks_ = all;

  // Validate everything (read set + committability of the write set).
  bool valid = true;
  for (const AccessEntry& e : read_set_) {
    uint64_t inc, seq;
    if (IsLocal(e.node)) {
      engine_->ReadMetaLocal(ctx_, e, &inc, &seq);
    } else if (engine_->ReadMetaRemote(ctx_, e, &inc, &seq) != Status::kOk) {
      valid = false;
      break;
    }
    if (inc != e.incarnation || !rules_.ReadValid(e.seq, seq)) {
      valid = false;
      break;
    }
  }
  if (valid) {
    for (size_t i = 0; i < write_set_.size(); ++i) {
      WriteEntry& w = write_set_[i];
      uint64_t inc, seq;
      if (IsLocal(w.access.node)) {
        engine_->ReadMetaLocal(ctx_, w.access, &inc, &seq);
      } else if (engine_->ReadMetaRemote(ctx_, w.access, &inc, &seq) != Status::kOk) {
        valid = false;
        break;
      }
      if (inc != w.access.incarnation || !rules_.WriteValid(seq) ||
          (!w.blind && !rules_.ReadValid(w.access.seq, seq))) {
        valid = false;
        break;
      }
      commit_seq_[i] = seq;
    }
  }
  if (!valid) {
    ReleaseLocks(held_locks_, held_locks_.size());
    held_locks_.clear();
    engine_->stats().IncAbortValidation();
    return Status::kAborted;
  }

  // Fencing re-check before applying: the fallback runs without HTM, so the
  // stamp cannot doom it — check the epoch explicitly while holding every
  // lock (DESIGN.md §10).
  if (engine_->fencing() &&
      !engine_->membership()->CommitAllowed(ctx_->node_id, ctx_->clock.now_ns(), begin_epoch_)) {
    ReleaseLocks(held_locks_, held_locks_.size());
    held_locks_.clear();
    engine_->stats().IncAbortStaleEpoch();
    return Status::kStaleEpoch;
  }

  // Apply local updates without HTM — safe because every record is locked and
  // local readers honor the lock (Fig. 5). Under replication, go through the
  // same odd -> replicate -> even sequence as the fast path.
  std::vector<std::byte> image;
  for (size_t i = 0; i < write_set_.size(); ++i) {
    const WriteEntry& w = write_set_[i];
    if (!IsLocal(w.access.node)) {
      continue;
    }
    BuildImage(w, rules_.LocalCommitSeq(commit_seq_[i]), &image);
    self_->bus()->Write(ctx_, w.access.offset + RecordLayout::kSeqOff,
                        image.data() + RecordLayout::kSeqOff,
                        image.size() - RecordLayout::kSeqOff);
  }
  if (engine_->config().replication) {
    const Status s = FinishReplication();
    if (s != Status::kOk) {
      if (engine_->fencing()) {
        // Same rule as the fast path: a fenced primary must not report
        // commit on partial replication (DESIGN.md §10).
        ReleaseLocks(held_locks_, held_locks_.size());
        held_locks_.clear();
        engine_->stats().IncAbortStaleEpoch();
        return Status::kStaleEpoch;
      }
      // Logs partially written; recovery reconciles via seq comparison.
      DRTMR_LOG(Warning) << "replication failed in fallback: " << StatusString(s);
    }
    MakeupLocal();
  }
  (void)WriteBackRemote();  // past the commit point: recovery patches misses
  for (MutationEntry& m : mutations_) {
    (void)engine_->Mutate(ctx_, m);  // past the commit point: idempotent
  }
  if (engine_->config().replication) {
    engine_->replicator()->EndTransaction(ctx_, txn_id_);
  }
  engine_->stats().IncCommit();
  ReleaseLocks(held_locks_, held_locks_.size());
  held_locks_.clear();
  return Status::kOk;
}

Status Transaction::CommitReadWrite() {
  // Fencing admission (DESIGN.md §10): a degraded node, an expiring lease, or
  // a moved epoch all mean this node may no longer act as a primary — abort
  // before taking any lock.
  if (engine_->fencing() &&
      !engine_->membership()->CommitAllowed(ctx_->node_id, ctx_->clock.now_ns(), begin_epoch_)) {
    engine_->stats().IncAbortStaleEpoch();
    return Status::kStaleEpoch;
  }
  commit_seq_.assign(write_set_.size(), 0);
  staged_seq_.assign(write_set_.size(), kNotStaged);
  rep_staged_ = false;

  // C.1: lock remote read and write sets (sorted, deduplicated).
  std::vector<LockTarget> remote_targets;
  if (engine_->config().lock_remote_read_set) {
    for (const AccessEntry& e : read_set_) {
      if (!IsLocal(e.node)) {
        remote_targets.push_back({e.node, e.offset});
      }
    }
  }
  for (const WriteEntry& w : write_set_) {
    if (!IsLocal(w.access.node)) {
      remote_targets.push_back({w.access.node, w.access.offset});
    }
  }
  std::sort(remote_targets.begin(), remote_targets.end());
  remote_targets.erase(std::unique(remote_targets.begin(), remote_targets.end()),
                       remote_targets.end());

  Status s;
  {
    obs::PhaseTimer timer(ctx_, obs::Phase::kLock);
    s = LockRemoteSets(remote_targets);
  }
  if (s == Status::kStaleEpoch) {
    engine_->stats().IncAbortStaleEpoch();
    return Status::kStaleEpoch;
  }
  if (s == Status::kTimeout) {
    engine_->stats().IncAbortTimeout();
    return Status::kTimeout;
  }
  if (s != Status::kOk) {
    engine_->stats().IncAbortLock();
    return Status::kAborted;
  }
  held_locks_ = remote_targets;

  // R.1 issued early: stage speculative log slots onto the doorbell chains
  // now, so the log writes overlap C.2–C.4 instead of serializing after them.
  if (engine_->config().replication) {
    obs::PhaseTimer timer(ctx_, obs::Phase::kReplication);
    StageReplicationEarly();
  }

  // C.2: validate the remote read set (and remote write committability).
  {
    obs::PhaseTimer timer(ctx_, obs::Phase::kValidation);
    s = ValidateRemote(nullptr);
  }
  if (s != Status::kOk) {
    ReleaseLocks(held_locks_, held_locks_.size());
    held_locks_.clear();
    engine_->stats().IncAbortValidation();
    return Status::kAborted;
  }

  // Fencing re-check before entering HTM: C.1/C.2 verbs may have stalled
  // across a fault window, during which the epoch can have moved.
  if (engine_->fencing() &&
      !engine_->membership()->CommitAllowed(ctx_->node_id, ctx_->clock.now_ns(), begin_epoch_)) {
    ReleaseLocks(held_locks_, held_locks_.size());
    held_locks_.clear();
    engine_->stats().IncAbortStaleEpoch();
    return Status::kStaleEpoch;
  }

  // C.3 + C.4 inside one HTM region.
  {
    obs::PhaseTimer timer(ctx_, obs::Phase::kHtmCommit);
    s = HtmValidateAndApply();
  }
  if (s == Status::kStaleEpoch) {
    ReleaseLocks(held_locks_, held_locks_.size());
    held_locks_.clear();
    engine_->stats().IncAbortStaleEpoch();
    return Status::kStaleEpoch;
  }
  if (s == Status::kConflict) {
    ReleaseLocks(held_locks_, held_locks_.size());
    held_locks_.clear();
    engine_->stats().IncAbortValidation();
    return Status::kAborted;
  }
  if (s == Status::kAborted) {
    // The fallback is timed as one opaque phase — its internal re-lock /
    // validate / apply steps are not re-attributed to the phases above.
    obs::PhaseTimer timer(ctx_, obs::Phase::kFallback);
    return FallbackCommit(remote_targets);
  }

  // R.1 decision + R.2 (replication), C.5 (remote write-back).
  if (engine_->config().replication) {
    obs::PhaseTimer timer(ctx_, obs::Phase::kReplication);
    const Status rs = FinishReplication();
    if (rs != Status::kOk) {
      if (engine_->fencing()) {
        // Fenced mid-replication: this primary may be cut off and about to be
        // re-hosted from its backups — reporting commit here would lose the
        // update. Abort instead; the local records stay odd (uncommittable)
        // until recovery reconciles them (DESIGN.md §10).
        ReleaseLocks(held_locks_, held_locks_.size());
        held_locks_.clear();
        engine_->stats().IncAbortStaleEpoch();
        return Status::kStaleEpoch;
      }
      DRTMR_LOG(Warning) << "replication failed: " << StatusString(rs);
    }
    MakeupLocal();
  }
  obs::PhaseTimer wb_timer(ctx_, obs::Phase::kWriteBack);
  (void)WriteBackRemote();  // past the commit point: recovery patches misses

  // Apply queued inserts/removes (validated transaction; see DESIGN.md on
  // phantom handling).
  for (MutationEntry& m : mutations_) {
    (void)engine_->Mutate(ctx_, m);  // past the commit point: idempotent
  }

  // Transaction reports committed before unlocking (Fig. 7).
  if (engine_->config().replication) {
    engine_->replicator()->EndTransaction(ctx_, txn_id_);
  }
  engine_->stats().IncCommit();

  // C.6: unlock remote records.
  ReleaseLocks(held_locks_, held_locks_.size());
  held_locks_.clear();
  return Status::kOk;
}

Status Transaction::Commit() {
  DRTMR_CHECK(active_);
  active_ = false;
  // Everything since Begin() is the execution phase: reads, buffered writes,
  // and application logic between them.
  obs::PhaseSample(obs::Phase::kExecution, ctx_->clock.now_ns() - begin_ns_);
  const bool read_only = read_only_ || (write_set_.empty() && mutations_.empty());
  // Migration write admission (DESIGN.md §14): while a partition's cutover
  // drain window is open, refuse read-write transactions touching it — on
  // either home — before entering the commit protocol. Reads keep flowing
  // (dual-home window); the caller retries with jittered backoff and its
  // next Begin() routes to the new home after the flip.
  if (!read_only) {
    const MigrationBlock* block = engine_->migration_block();
    if (block != nullptr && block->active()) {
      bool blocked = false;
      for (const WriteEntry& w : write_set_) {
        if (block->Blocks(w.access.key)) {
          blocked = true;
          break;
        }
      }
      for (size_t i = 0; !blocked && i < mutations_.size(); ++i) {
        blocked = block->Blocks(mutations_[i].key);
      }
      if (blocked) {
        engine_->stats().IncAbortMigrating();
        return Status::kMigrating;
      }
    }
  }
  // Bracket the commit phase so the reconfiguration driver can drain commits
  // that entered before an epoch stamp before it re-hosts data (DESIGN.md
  // §10; post-stamp entrants self-fence, so the drain terminates).
  self_->EnterCommit();
  Status s;
  if (read_only) {
    s = CommitReadOnly();
  } else if (engine_->config().fused_seq_lock) {
    s = CommitReadWriteFused();
  } else {
    s = CommitReadWrite();
  }
  if (engine_->config().replication && rep_staged_) {
    // Speculative slots were staged but no commit decision was published
    // (abort on any path after C.1): tombstone them and move the watermark
    // past, so the backup pump and recovery never replay them and the ring
    // cannot jam on an undecided tail.
    engine_->replicator()->AbortTxnLog(ctx_, txn_id_);
    rep_staged_ = false;
  }
  self_->ExitCommit();
  if (obs::TraceEnabled()) {
    const uint64_t end_ns = ctx_->clock.now_ns();
    obs::Registry::Global().AddTrace(
        read_only ? obs::TraceName::kTxnReadOnly : obs::TraceName::kTxn, ctx_->node_id,
        ctx_->worker_id, begin_ns_, end_ns - begin_ns_,
        /*arg=*/s == Status::kOk ? 1 : 0);
  }
  if (s == Status::kOk && chk::Enabled()) {
    RecordHistory(read_only);
  }
  return s;
}

void Transaction::RecordHistory(bool read_only) {
  chk::TxnRec rec;
  rec.txn_id = txn_id_;
  rec.node = ctx_->node_id;
  rec.worker = ctx_->worker_id;
  rec.begin_ns = begin_ns_;
  rec.commit_ns = ctx_->clock.now_ns();
  rec.read_only = read_only;
  rec.reads.reserve(read_set_.size());
  for (const AccessEntry& e : read_set_) {
    // Normalize to the committable version the commit-time re-check validated
    // against — the final seq of the write that produced the observed payload.
    const uint64_t v = rules_.replication ? ((e.seq + 1) & ~1ull) : e.seq;
    rec.reads.push_back({e.table->id(), e.key, v});
  }
  rec.writes.reserve(write_set_.size());
  for (size_t i = 0; i < write_set_.size(); ++i) {
    // commit_seq_ is index-aligned with write_set_ on every committed path
    // (fast, fallback, fused); RemoteCommitSeq gives the final installed seq.
    rec.writes.push_back({write_set_[i].access.table->id(), write_set_[i].access.key,
                          rules_.RemoteCommitSeq(commit_seq_[i])});
  }
  chk::HistoryRecorder::Global().Record(std::move(rec));
}

Status Transaction::CommitReadWriteFused() {
  // §4.4's GLOB-atomicity variant. For every remote record, one RDMA CAS on
  // the seqnum both locks it (top bit) and validates it (the expected value
  // is the closest committable seq at or after the one observed during
  // execution — exactly the Table 4 read condition). Write-set records are
  // unlocked implicitly by the C.5 write-back of the new seqnum; read-only
  // records are unlocked by restoring the expected value.
  if (engine_->fencing() &&
      !engine_->membership()->CommitAllowed(ctx_->node_id, ctx_->clock.now_ns(), begin_epoch_)) {
    engine_->stats().IncAbortStaleEpoch();
    return Status::kStaleEpoch;
  }
  commit_seq_.assign(write_set_.size(), 0);
  staged_seq_.assign(write_set_.size(), kNotStaged);
  rep_staged_ = false;

  struct FusedTarget {
    uint32_t node;
    uint64_t offset;
    uint64_t expected;   // committable seq the CAS expects
    bool written;
  };
  std::vector<FusedTarget> targets;
  auto expected_of = [&](uint64_t observed_seq) {
    return rules_.replication ? ((observed_seq + 1) & ~1ull) : observed_seq;
  };
  auto add_target = [&](uint32_t node, uint64_t offset, uint64_t seq, bool written) {
    for (auto& t : targets) {
      if (t.node == node && t.offset == offset) {
        t.written = t.written || written;
        return;
      }
    }
    targets.push_back({node, offset, expected_of(seq), written});
  };
  for (const AccessEntry& e : read_set_) {
    if (!IsLocal(e.node)) {
      add_target(e.node, e.offset, e.seq, false);
    }
  }
  for (size_t i = 0; i < write_set_.size(); ++i) {
    const WriteEntry& w = write_set_[i];
    if (!IsLocal(w.access.node)) {
      add_target(w.access.node, w.access.offset, w.access.seq, true);
    }
  }
  std::sort(targets.begin(), targets.end(), [](const FusedTarget& a, const FusedTarget& b) {
    return std::tie(a.node, a.offset) < std::tie(b.node, b.offset);
  });

  // Fused C.1+C.2: lock-and-validate with one CAS per record. The fused CAS
  // does both jobs at once, so the whole loop is attributed to kLock.
  sim::RdmaNic* nic = self_->nic();
  size_t locked = 0;
  bool failed = false;
  {
    obs::PhaseTimer timer(ctx_, obs::Phase::kLock);
    for (; locked < targets.size(); ++locked) {
      const FusedTarget& t = targets[locked];
      uint64_t observed = 0;
      const Status cs =
          nic->CompareSwap(ctx_, t.node, t.offset + RecordLayout::kSeqOff, t.expected,
                           store::SeqWord::WithLock(t.expected), &observed);
      if (cs != Status::kOk) {
        failed = true;
        break;
      }
    }
  }
  auto unlock_range = [&](size_t count, bool written_too) {
    uint64_t completion = 0;
    for (size_t i = 0; i < count; ++i) {
      const FusedTarget& t = targets[i];
      if (t.written && !written_too) {
        continue;  // implicitly unlocked by the write-back
      }
      (void)nic->CompareSwapPosted(ctx_, t.node, t.offset + RecordLayout::kSeqOff,
                                   store::SeqWord::WithLock(t.expected), t.expected, nullptr,
                                   &completion);
    }
  };
  if (failed) {
    unlock_range(locked, /*written_too=*/true);
    engine_->stats().IncAbortValidation();
    return Status::kAborted;
  }
  // Record the commit-base seq of remote write entries.
  for (size_t i = 0; i < write_set_.size(); ++i) {
    const WriteEntry& w = write_set_[i];
    if (!IsLocal(w.access.node)) {
      commit_seq_[i] = expected_of(w.access.seq);
    }
  }

  // R.1 issued early, right after the fused lock+validate: the staged slots
  // overlap the HTM step and any fallback work.
  if (engine_->config().replication) {
    obs::PhaseTimer timer(ctx_, obs::Phase::kReplication);
    StageReplicationEarly();
  }

  // C.3 + C.4 inside one HTM region (unchanged; local records are never
  // fused-locked by this transaction).
  Status s;
  {
    obs::PhaseTimer timer(ctx_, obs::Phase::kHtmCommit);
    s = HtmValidateAndApply();
  }
  if (s == Status::kStaleEpoch) {
    unlock_range(targets.size(), true);
    engine_->stats().IncAbortStaleEpoch();
    return Status::kStaleEpoch;
  }
  if (s == Status::kConflict) {
    unlock_range(targets.size(), true);
    engine_->stats().IncAbortValidation();
    return Status::kAborted;
  }
  if (s == Status::kAborted) {
    // Fallback (Â§6.1 under the fused scheme). The remote records stay fused-
    // locked the whole time, so their validation keeps holding; first give
    // the HTM region more attempts, then lock the local read/write sets with
    // loopback fused CASes and apply without HTM. One opaque kFallback phase.
    obs::PhaseTimer fallback_timer(ctx_, obs::Phase::kFallback);
    engine_->stats().IncFallback();
    for (int attempt = 0; attempt < 16 && s == Status::kAborted; ++attempt) {
      std::this_thread::yield();
      s = HtmValidateAndApply();
    }
    if (s == Status::kStaleEpoch) {
      unlock_range(targets.size(), true);
      engine_->stats().IncAbortStaleEpoch();
      return Status::kStaleEpoch;
    }
    if (s == Status::kConflict) {
      unlock_range(targets.size(), true);
      engine_->stats().IncAbortValidation();
      return Status::kAborted;
    }
    if (s == Status::kAborted) {
      // Lock local records (sorted) with the validation fused into the CAS.
      struct LocalTarget {
        uint64_t offset;
        uint64_t expected;
        size_t ws_index;  // ~0 for read-only
        bool blind;
      };
      std::vector<LocalTarget> locals;
      auto add_local = [&](uint64_t offset, uint64_t seq, size_t ws_index, bool blind) {
        for (auto& t : locals) {
          if (t.offset == offset) {
            if (ws_index != ~0ull) {
              t.ws_index = ws_index;
            }
            return;
          }
        }
        locals.push_back({offset, expected_of(seq), ws_index, blind});
      };
      for (const AccessEntry& e : read_set_) {
        if (IsLocal(e.node)) {
          add_local(e.offset, e.seq, ~0ull, false);
        }
      }
      for (size_t i = 0; i < write_set_.size(); ++i) {
        if (IsLocal(write_set_[i].access.node)) {
          add_local(write_set_[i].access.offset, write_set_[i].access.seq, i,
                    write_set_[i].blind);
        }
      }
      std::sort(locals.begin(), locals.end(),
                [](const LocalTarget& a, const LocalTarget& b) { return a.offset < b.offset; });
      size_t llocked = 0;
      bool lfail = false;
      for (; llocked < locals.size(); ++llocked) {
        LocalTarget& t = locals[llocked];
        if (t.blind) {
          // A blind write only needs committability: refresh the expected seq
          // from the live record before fusing the lock.
          const uint64_t cur = store::SeqWord::Value(
              self_->bus()->ReadU64(ctx_, t.offset + RecordLayout::kSeqOff));
          if (rules_.WriteValid(cur)) {
            t.expected = cur;
          }
        }
        uint64_t observed = 0;
        if (nic->CompareSwap(ctx_, ctx_->node_id, t.offset + RecordLayout::kSeqOff, t.expected,
                             store::SeqWord::WithLock(t.expected), &observed) != Status::kOk) {
          lfail = true;
          break;
        }
      }
      auto unlock_locals = [&](size_t count, bool written_too) {
        uint64_t completion = 0;
        for (size_t i = 0; i < count; ++i) {
          const LocalTarget& t = locals[i];
          if (t.ws_index != ~0ull && !written_too) {
            continue;  // written records get their final seq below
          }
          (void)nic->CompareSwapPosted(ctx_, ctx_->node_id, t.offset + RecordLayout::kSeqOff,
                                       store::SeqWord::WithLock(t.expected), t.expected,
                                       nullptr, &completion);
        }
      };
      if (lfail) {
        unlock_locals(llocked, true);
        unlock_range(targets.size(), true);
        engine_->stats().IncAbortValidation();
        return Status::kAborted;
      }
      // Everything is locked and validated; apply local writes without HTM.
      // The records' seq fields carry the lock bit, which the image write
      // replaces with the new (unlocked) value — an implicit local unlock.
      std::vector<std::byte> image;
      for (const LocalTarget& t : locals) {
        if (t.ws_index == ~0ull) {
          continue;
        }
        const WriteEntry& w = write_set_[t.ws_index];
        commit_seq_[t.ws_index] = t.expected;
        BuildImage(w, rules_.LocalCommitSeq(t.expected), &image);
        self_->bus()->Write(ctx_, w.access.offset + RecordLayout::kSeqOff,
                            image.data() + RecordLayout::kSeqOff,
                            image.size() - RecordLayout::kSeqOff);
      }
      unlock_locals(locals.size(), /*written_too=*/false);
    }
  }

  if (engine_->config().replication) {
    obs::PhaseTimer timer(ctx_, obs::Phase::kReplication);
    const Status rs = FinishReplication();
    if (rs != Status::kOk) {
      if (engine_->fencing()) {
        // A fenced primary must not report commit on partial replication.
        unlock_range(targets.size(), /*written_too=*/true);
        engine_->stats().IncAbortStaleEpoch();
        return Status::kStaleEpoch;
      }
      DRTMR_LOG(Warning) << "replication failed: " << StatusString(rs);
    }
    MakeupLocal();
  }
  obs::PhaseTimer wb_timer(ctx_, obs::Phase::kWriteBack);
  // Clears the lock bit of written records (new seq); past the commit point.
  (void)WriteBackRemote();
  for (MutationEntry& m : mutations_) {
    (void)engine_->Mutate(ctx_, m);  // past the commit point: idempotent
  }
  if (engine_->config().replication) {
    engine_->replicator()->EndTransaction(ctx_, txn_id_);
  }
  engine_->stats().IncCommit();
  // C.6: unlock read-only remote records (one posted CAS each).
  unlock_range(targets.size(), /*written_too=*/false);
  return Status::kOk;
}

}  // namespace drtmr::txn
