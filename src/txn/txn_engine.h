// TxnEngine: per-cluster runtime of the DrTM+R transaction layer. Owns the
// protocol configuration, statistics, per-worker location caches, the
// insert/delete RPC service (§4.3: mutations are shipped to the hosting
// machine over SEND/RECV and executed there inside HTM regions), and the
// record-read helpers shared by read-write and read-only transactions.
#ifndef DRTMR_SRC_TXN_TXN_ENGINE_H_
#define DRTMR_SRC_TXN_TXN_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/cluster/coordinator.h"
#include "src/cluster/node.h"
#include "src/store/table.h"
#include "src/txn/replicator.h"
#include "src/txn/types.h"

namespace drtmr::cluster {
class MembershipService;
}  // namespace drtmr::cluster

namespace drtmr::txn {

// Live-migration write admission (DESIGN.md §14). During a partition's
// cutover the migration manager opens a drain window by activating a block
// naming the partition; Transaction::Commit then refuses read-write
// transactions that touch that partition — on ANY home — with kMigrating
// *before* entering the commit protocol, so the source quiesces while reads
// keep flowing. The block is deliberately partition-wide rather than keyed
// to the source node: after the map flips, writes route to the destination,
// and a destination write committing while a reader of the frozen source
// copy is still admissible (same epoch, not yet stamped) would let that
// reader validate a stale snapshot — the source record never changes again,
// so seq re-checks cannot catch it. Holding both homes blocked until the
// epoch stamp + drain close the window restores the fence's guarantee. One
// partition migrates at a time, so a single word suffices; the blocked
// writer retries with jittered backoff and lands after cutover (routed to
// the new home by its next Begin()).
struct MigrationBlock {
  static constexpr uint64_t kNone = ~0ull;

  // Maps a key to its partition (workload sharding function). Set once
  // before any Activate; read concurrently by committing workers.
  std::function<uint32_t(uint64_t key)> partition_of;
  std::atomic<uint64_t> target{kNone};

  void Activate(uint32_t partition) {
    target.store(partition, std::memory_order_release);
  }
  void Deactivate() { target.store(kNone, std::memory_order_release); }
  bool active() const { return target.load(std::memory_order_acquire) != kNone; }

  bool Blocks(uint64_t key) const {
    const uint64_t t = target.load(std::memory_order_acquire);
    if (t == kNone) {
      return false;
    }
    return partition_of(key) == static_cast<uint32_t>(t);
  }
};

class TxnEngine {
 public:
  // `coordinator` (optional) supplies the current configuration for passive
  // dangling-lock release (§5.2); `replicator` (optional) is required when
  // config.replication is on.
  TxnEngine(cluster::Cluster* cluster, store::Catalog* catalog, const TxnConfig& config,
            cluster::Coordinator* coordinator = nullptr, Replicator* replicator = nullptr);
  ~TxnEngine();

  cluster::Cluster* cluster() { return cluster_; }
  store::Catalog* catalog() { return catalog_; }
  const TxnConfig& config() const { return config_; }
  SeqRules seq_rules() const {
    return SeqRules{config_.replication, config_.unsafe_skip_read_validation};
  }
  Replicator* replicator() { return replicator_; }
  TxnStats& stats() { return stats_; }
  const sim::CostModel* cost() const { return cluster_->cost(); }

  uint64_t NextTxnId() { return next_txn_id_.fetch_add(1, std::memory_order_relaxed); }

  store::LocationCache* cache(uint32_t node, uint32_t worker) {
    return caches_[node * workers_per_node_ + worker].get();
  }

  // Optional availability layer (DESIGN.md §10). When set, transactions
  // snapshot their begin epoch, check commit admission against it, and treat
  // replication failures as fatal (a cut-off primary must not report commit).
  void set_membership(cluster::MembershipService* m) { membership_ = m; }
  cluster::MembershipService* membership() const { return membership_; }
  bool fencing() const { return membership_ != nullptr; }

  // Optional live-migration write admission (DESIGN.md §14). When set,
  // Transaction::Commit consults it before running the commit protocol.
  void set_migration_block(MigrationBlock* b) { migration_block_ = b; }
  MigrationBlock* migration_block() const { return migration_block_; }

  // True when the lock word's owner machine is absent from the current
  // configuration — the survivor may release the dangling lock (§5.2). With a
  // coordinator that tracks lease tombstones, release is additionally gated on
  // the steal grace having elapsed past the absent owner's last lease deadline
  // (`ctx` supplies the caller's virtual time).
  bool OwnerAbsent(const sim::ThreadContext* ctx, uint64_t lock_word) const;

  // ---- execution-phase record reads (Figs. 5, 6, 8) ----

  // Local read: lock-checked copy inside a small HTM region, retried with
  // randomized backoff while the record is remote-locked; falls back to a
  // seqlock-style read after the retry threshold. Fills `entry` and, if
  // value_out != nullptr, the payload.
  Status ReadLocalRecord(sim::ThreadContext* ctx, store::Table* table, uint64_t key,
                         void* value_out, AccessEntry* entry);

  // Remote read: location-cache + one-sided RDMA READ with per-line version
  // consistency check. `check_lock` is the read-only-transaction variant that
  // refuses records currently locked by a committing transaction (§4.5).
  Status ReadRemoteRecord(sim::ThreadContext* ctx, store::Table* table, uint32_t node,
                          uint64_t key, void* value_out, AccessEntry* entry, bool check_lock);

  // Re-reads (incarnation, seq) of a record for commit-time validation.
  void ReadMetaLocal(sim::ThreadContext* ctx, const AccessEntry& e, uint64_t* inc, uint64_t* seq);
  Status ReadMetaRemote(sim::ThreadContext* ctx, const AccessEntry& e, uint64_t* inc,
                        uint64_t* seq);

  // ---- mutation RPC (§4.3) ----

  // Applies an insert/remove on the hosting node. Local mutations run
  // directly; remote ones are shipped via SEND/RECV and executed by the
  // target's service thread.
  Status Mutate(sim::ThreadContext* ctx, const MutationEntry& m);

  // Starts the per-node service threads (RPC handling; `idle` hooks such as
  // log truncation may be chained by the replication layer).
  void StartServices();
  void StopServices();

 private:
  struct RpcMsg;
  void HandleRpc(sim::ThreadContext* ctx, const sim::Message& msg);
  Status ApplyMutation(sim::ThreadContext* ctx, MutationEntry::Op op, uint32_t table_id,
                       uint64_t key, const std::byte* value, size_t value_len);

  cluster::Cluster* cluster_;
  store::Catalog* catalog_;
  TxnConfig config_;
  cluster::Coordinator* coordinator_;
  cluster::MembershipService* membership_ = nullptr;
  MigrationBlock* migration_block_ = nullptr;
  Replicator* replicator_;
  TxnStats stats_;
  std::atomic<uint64_t> next_txn_id_{1};
  std::atomic<uint64_t> next_rpc_token_{1};
  uint32_t workers_per_node_;
  std::vector<std::unique_ptr<store::LocationCache>> caches_;
  bool services_running_ = false;
};

}  // namespace drtmr::txn

#endif  // DRTMR_SRC_TXN_TXN_ENGINE_H_
