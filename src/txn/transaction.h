// Transaction: the DrTM+R hybrid OCC + remote-locking protocol (§4, §5).
//
// Execution phase (Fig. 2 left): reads are tracked in local/remote read sets
// with the observed (seq, incarnation); writes are buffered locally; inserts
// and removes are queued. No a-priori knowledge of the read/write sets is
// needed — they are complete once execution finishes (the paper's key
// generality claim over DrTM).
//
// Commit phase (Fig. 7, plus Table 4 / Fig. 9 when replication is on):
//   C.1 lock remote read+write sets with one-sided RDMA CAS (sorted; the
//       owner machine id is encoded for dangling-lock recovery),
//   C.2 validate the remote read set with RDMA READs,
//   HTM region { C.3 validate local read set; check local write set unlocked
//       and committable; C.4 apply buffered local writes, seq := seq+1 },
//   R.1 replicate every written record to its backups' NVM logs,
//   R.2 makeup: bump local written seqs to the next even value,
//   C.5 write back remote records (seq := seq+2) with RDMA WRITEs,
//   report committed,
//   C.6 unlock remote records with RDMA CAS.
//
// Read-only transactions (§4.5, Fig. 8) skip HTM and locking entirely:
// execution-phase remote reads additionally check the lock, and commit just
// re-validates sequence numbers.
//
// The fallback handler (§6.1-6.2) takes over when the HTM step cannot make
// progress: it releases held remote locks, re-locks *all* records (local ones
// via loopback RDMA CAS, for atomicity uniformity with remote CAS) in global
// address order, validates, applies without HTM, and unlocks.
#ifndef DRTMR_SRC_TXN_TRANSACTION_H_
#define DRTMR_SRC_TXN_TRANSACTION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/txn/txn_api.h"
#include "src/txn/txn_engine.h"
#include "src/txn/types.h"

namespace drtmr::txn {

class Transaction : public TxnApi {
 public:
  // One Transaction object per worker thread, reused across transactions.
  Transaction(TxnEngine* engine, sim::ThreadContext* ctx);

  // Starts a new transaction. `read_only` selects the §4.5 protocol.
  void Begin(bool read_only = false) override;

  // Reads table[key] hosted on `node` into value_out (nullable to read for
  // the version only). Adds the record to the read set.
  Status Read(store::Table* table, uint32_t node, uint64_t key, void* value_out) override;

  // Buffers a full-payload update. If the record was not read earlier in this
  // transaction, its metadata is fetched first (blind write).
  Status Write(store::Table* table, uint32_t node, uint64_t key, const void* value) override;

  // Queues an insert/remove, applied at commit (locally inside an HTM region,
  // remotely via SEND/RECV shipping, §4.3).
  Status Insert(store::Table* table, uint32_t node, uint64_t key, const void* value) override;
  Status Remove(store::Table* table, uint32_t node, uint64_t key) override;

  // Local ordered-table range read: visits records with lo <= key <= hi,
  // adding each to the read set. `fn` receives (key, payload). Stops early
  // when fn returns false. Local node only.
  Status ScanLocal(store::Table* table, uint64_t lo, uint64_t hi,
                   const std::function<bool(uint64_t key, const void* value)>& fn) override;

  // Runs the commit protocol. kOk on commit; on failure all effects are
  // discarded and the caller is expected to retry: kAborted on a
  // validation/lock conflict, kStaleEpoch when the configuration epoch moved
  // past the transaction's begin epoch (fencing, DESIGN.md §10), kTimeout
  // when a bounded retry budget ran out, kMigrating when a write-set record
  // lives on a partition inside its cutover drain window (DESIGN.md §14 —
  // back off and retry; the post-flip Begin() routes to the new home).
  Status Commit() override;

  // User abort: discards all buffered effects.
  void UserAbort() override;

  bool read_only() const { return read_only_; }
  uint64_t id() const { return txn_id_; }
  // Configuration epoch snapshotted at Begin() (0 when fencing is off).
  // Routers pass this to PartitionMap::Route to reject entries flipped by a
  // newer epoch than the one this transaction began under.
  uint64_t begin_epoch() const override { return begin_epoch_; }

 private:
  struct LockTarget {
    uint32_t node;
    uint64_t offset;
    auto operator<=>(const LockTarget&) const = default;
  };

  Status CommitReadOnly();
  Status CommitReadWrite();
  // §4.4 IBV_ATOMIC_GLOB variant: one CAS per remote record fuses C.1+C.2
  // (lock bit in the seqnum); C.5 write-backs unlock written records.
  Status CommitReadWriteFused();

  // C.1. Returns kOk with all targets locked, or releases everything.
  Status LockRemoteSets(const std::vector<LockTarget>& targets);
  // Acquires one lock, handling dangling owners (§5.2). `via_nic` uses
  // loopback CAS for local records in the fallback path (§6.2).
  Status AcquireLock(const LockTarget& t);
  void ReleaseLocks(const std::vector<LockTarget>& targets, size_t count);

  // C.2 (+ committable check of remote write-set records under replication).
  Status ValidateRemote(uint64_t* remote_ws_seq);
  // HTM step C.3/C.4. Returns kOk, kConflict (validation failed — abort the
  // transaction), kStaleEpoch (the configuration epoch moved — fenced), or
  // kAborted (HTM kept aborting — take the fallback).
  Status HtmValidateAndApply();
  // §6.1 fallback: lock everything (local via loopback CAS), validate, apply.
  Status FallbackCommit(const std::vector<LockTarget>& remote_targets);

  // R.1, early half: stages one speculative log slot per write-set entry on
  // each backup (doorbell-chained, no fence) right after C.1, carrying the
  // predicted final seq — RemoteCommitSeq of the closest committable seq at
  // or after the one observed during execution. The prediction is
  // validation-enforced for non-blind writes; blind writes may need a
  // supersede at decision time. Overlaps the log writes with C.2–C.4.
  void StageReplicationEarly();
  // R.1, decision half: reconciles staged slots against the now-known final
  // seqs (supersede on mismatch, stage anything unstaged) and publishes the
  // commit decision via CommitTxnLog — entering it into the group-commit
  // window. Returns the worst non-tolerated staging status; under fencing a
  // failure returns *before* the commit decision so the caller can abort
  // (Commit() then retires the speculative slots via AbortTxnLog).
  Status FinishReplication();
  // R.2: local written records become committable (even seq).
  void MakeupLocal();
  // C.5: write back remote records.
  Status WriteBackRemote();

  // Builds the full record image for write_set_[i] carrying `seq`.
  void BuildImage(const WriteEntry& w, uint64_t seq, std::vector<std::byte>* image) const;

  // Appends this committed transaction's read/write versions to the global
  // chk::HistoryRecorder (no-op unless recording is enabled).
  void RecordHistory(bool read_only);

  WriteEntry* FindWrite(store::Table* table, uint32_t node, uint64_t key);
  AccessEntry* FindRead(store::Table* table, uint32_t node, uint64_t key);
  bool IsLocal(uint32_t node) const { return node == ctx_->node_id; }

  TxnEngine* engine_;
  sim::ThreadContext* ctx_;
  cluster::Node* self_;
  SeqRules rules_;
  uint64_t txn_id_ = 0;
  uint64_t begin_ns_ = 0;     // virtual time at Begin(), for phase/trace spans
  uint64_t begin_epoch_ = 0;  // epoch stamped in our registered memory at Begin()
  uint64_t lock_word_;
  bool read_only_ = false;
  bool active_ = false;

  std::vector<AccessEntry> read_set_;
  std::vector<WriteEntry> write_set_;
  std::vector<MutationEntry> mutations_;
  // Commit-time scratch: remote lock targets actually acquired.
  std::vector<LockTarget> held_locks_;
  // Current seq observed at commit time for each write entry (index-aligned
  // with write_set_); becomes the base for the Table 4 increments.
  std::vector<uint64_t> commit_seq_;
  // Final seq carried by the log slot staged early for each write entry
  // (index-aligned with write_set_); kNotStaged when no slot was staged.
  static constexpr uint64_t kNotStaged = ~0ull;
  std::vector<uint64_t> staged_seq_;
  // True while this transaction has staged speculative log slots without a
  // decision call yet; Commit() retires them on any non-commit outcome.
  bool rep_staged_ = false;
};

}  // namespace drtmr::txn

#endif  // DRTMR_SRC_TXN_TRANSACTION_H_
