// Engine-agnostic transaction interface. The workloads (TPC-C, SmallBank)
// are written against this API so the same transaction logic drives DrTM+R
// and every baseline engine (DrTM, Calvin, Silo) in the evaluation benches.
#ifndef DRTMR_SRC_TXN_TXN_API_H_
#define DRTMR_SRC_TXN_TXN_API_H_

#include <cstdint>
#include <functional>

#include "src/store/table.h"
#include "src/util/status.h"

namespace drtmr::txn {

class TxnApi {
 public:
  virtual ~TxnApi() = default;

  virtual void Begin(bool read_only = false) = 0;
  virtual Status Read(store::Table* table, uint32_t node, uint64_t key, void* value_out) = 0;
  virtual Status Write(store::Table* table, uint32_t node, uint64_t key, const void* value) = 0;
  virtual Status Insert(store::Table* table, uint32_t node, uint64_t key, const void* value) = 0;
  virtual Status Remove(store::Table* table, uint32_t node, uint64_t key) = 0;
  virtual Status ScanLocal(store::Table* table, uint64_t lo, uint64_t hi,
                           const std::function<bool(uint64_t key, const void* value)>& fn) = 0;
  virtual Status Commit() = 0;
  virtual void UserAbort() = 0;

  // Configuration epoch snapshotted at Begin(), for epoch-checked routing
  // (cluster::PartitionMap::Route). Engines without epoch fencing keep the
  // default, which Route treats as "accept any entry" (legacy semantics).
  virtual uint64_t begin_epoch() const { return ~0ull; }
};

}  // namespace drtmr::txn

#endif  // DRTMR_SRC_TXN_TXN_API_H_
