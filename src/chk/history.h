// Transaction history recording for offline serializability checking
// (DESIGN.md §9).
//
// The recorder captures, for every *committed* transaction, its read set
// (observed record versions) and write set (final installed versions). Like
// the obs layer it is compile-in but runtime-toggled: disabled (the default),
// the commit-path hook is one relaxed bool load; enabled, recording appends
// to a per-thread shard under an uncontended mutex. Recording charges no
// virtual time, so torture runs measure the same simulated timings as
// production runs.
//
// Version convention (ties the history to SeqRules, src/txn/types.h):
//  * a read is logged with its observed seq normalized to the *committable*
//    value — under replication `(seq+1) & ~1`, else `seq` — which equals the
//    final seq of the write that produced the observed payload;
//  * a write is logged with the final stable seq it installs,
//    `SeqRules::RemoteCommitSeq(commit_seq)`, uniform across the fast,
//    fallback, and fused commit paths;
//  * versions <= 2 are the pre-history seed state (stores install records at
//    seq 2).
// The checker (chk/checker.h) rebuilds WR/WW/RW dependencies from exactly
// these values.
#ifndef DRTMR_SRC_CHK_HISTORY_H_
#define DRTMR_SRC_CHK_HISTORY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace drtmr::chk {

struct AccessRec {
  uint32_t table_id = 0;
  uint64_t key = 0;
  // Reads: normalized observed version. Writes: final installed version.
  uint64_t version = 0;
};

struct TxnRec {
  uint64_t txn_id = 0;
  uint32_t node = 0;
  uint32_t worker = 0;
  uint64_t begin_ns = 0;
  uint64_t commit_ns = 0;  // virtual time at commit completion
  bool read_only = false;
  std::vector<AccessRec> reads;
  std::vector<AccessRec> writes;
};

class HistoryRecorder {
 public:
  // Process-wide instance (leaked, like obs::Registry: thread-local shard
  // handles may be released after static destructors run).
  static HistoryRecorder& Global();

  void Enable(bool on);

  // Appends one committed transaction to the calling thread's shard.
  // Callers gate on Enabled().
  void Record(TxnRec&& rec);

  // Merges every shard into one vector, ordered by (commit_ns, txn_id).
  // Writers must be quiescent for an exact history.
  std::vector<TxnRec> Collect() const;

  // Drops all recorded transactions (shards stay allocated). Callers must be
  // quiesced.
  void Reset();

  size_t size() const;

 private:
  HistoryRecorder() = default;

  struct Shard {
    mutable std::mutex mu;  // uncontended on the hot path (single writer)
    std::vector<TxnRec> recs;
  };
  struct ShardHandle {
    Shard* shard = nullptr;
    ~ShardHandle();
  };

  Shard* LocalShard();
  Shard* Acquire();
  void Release(Shard* shard);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Shard>> all_;
  std::vector<Shard*> free_;
};

namespace detail {
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

inline bool Enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

}  // namespace drtmr::chk

#endif  // DRTMR_SRC_CHK_HISTORY_H_
