#include "src/chk/checker.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

namespace drtmr::chk {

namespace {

struct PerKey {
  // (version, txn index); writers carry final installed versions, readers the
  // normalized observed version.
  std::vector<std::pair<uint64_t, size_t>> writers;
  std::vector<std::pair<uint64_t, size_t>> readers;
};

void AddViolation(CheckResult* res, const CheckOptions& opts, std::string msg) {
  res->ok = false;
  if (res->violations.size() < opts.max_violations) {
    res->violations.push_back(std::move(msg));
  }
}

std::string Fmt(const char* fmt, uint32_t table, uint64_t key, uint64_t version,
                uint64_t a = 0, uint64_t b = 0) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), fmt, table, static_cast<unsigned long long>(key),
                static_cast<unsigned long long>(version), static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  return buf;
}

}  // namespace

CheckResult CheckSerializability(const std::vector<TxnRec>& history, const CheckOptions& opts) {
  CheckResult res;
  res.num_txns = history.size();

  std::map<std::pair<uint32_t, uint64_t>, PerKey> keys;
  for (size_t i = 0; i < history.size(); ++i) {
    for (const AccessRec& r : history[i].reads) {
      keys[{r.table_id, r.key}].readers.emplace_back(r.version, i);
    }
    for (const AccessRec& w : history[i].writes) {
      keys[{w.table_id, w.key}].writers.emplace_back(w.version, i);
    }
  }
  res.num_keys = keys.size();

  // adjacency[i] = txn indices that must serialize after txn i.
  std::vector<std::vector<size_t>> adj(history.size());
  auto add_edge = [&](size_t from, size_t to) {
    if (from == to) {
      return;  // intra-transaction read-modify-write
    }
    adj[from].push_back(to);
    ++res.num_edges;
  };

  for (auto& [id, pk] : keys) {
    const uint32_t table = id.first;
    const uint64_t key = id.second;
    std::sort(pk.writers.begin(), pk.writers.end());

    // Duplicate installed versions: two commits grew the same snapshot — a
    // lost update regardless of history completeness.
    for (size_t w = 0; w + 1 < pk.writers.size(); ++w) {
      if (pk.writers[w].first == pk.writers[w + 1].first) {
        AddViolation(&res, opts,
                     Fmt("lost update: table %u key %llu version %llu installed by two "
                         "transactions (ids %llu and %llu)",
                         table, key, pk.writers[w].first, history[pk.writers[w].second].txn_id,
                         history[pk.writers[w + 1].second].txn_id));
      }
    }
    // Write-chain continuity: versions advance by exactly the seq step.
    if (opts.expect_complete) {
      for (size_t w = 0; w + 1 < pk.writers.size(); ++w) {
        const uint64_t cur = pk.writers[w].first;
        const uint64_t nxt = pk.writers[w + 1].first;
        if (nxt != cur && nxt != cur + opts.version_step) {
          AddViolation(&res, opts,
                       Fmt("write gap: table %u key %llu jumps from version %llu to %llu "
                           "(a committed write is missing)",
                           table, key, cur, nxt));
        }
      }
    }

    // WW edges between consecutive distinct versions.
    for (size_t w = 0; w + 1 < pk.writers.size(); ++w) {
      if (pk.writers[w].first != pk.writers[w + 1].first) {
        add_edge(pk.writers[w].second, pk.writers[w + 1].second);
      }
    }

    for (const auto& [version, reader] : pk.readers) {
      // Locate the writer that produced the observed version.
      auto it = std::lower_bound(pk.writers.begin(), pk.writers.end(),
                                 std::make_pair(version, size_t{0}));
      const bool known = it != pk.writers.end() && it->first == version;
      if (!known && version > opts.seed_version_max) {
        if (opts.expect_complete) {
          AddViolation(&res, opts,
                       Fmt("dirty/lost read: table %u key %llu version %llu observed by txn "
                           "%llu but never installed by a committed write",
                           table, key, version, history[reader].txn_id));
        }
        continue;  // no anchor for edges
      }
      if (known) {
        add_edge(it->second, reader);  // WR
        ++it;
      } else {
        it = pk.writers.begin();  // read of the seed state: RW to first writer
      }
      // RW anti-dependency to the next version's writer (skip duplicates of
      // the observed version, if any).
      while (it != pk.writers.end() && it->first == version) {
        ++it;
      }
      if (it != pk.writers.end()) {
        add_edge(reader, it->second);
      }
    }
  }

  // Cycle search: iterative 3-color DFS, reconstructing one cycle via the
  // parent chain.
  enum : uint8_t { kWhite = 0, kGray, kBlack };
  std::vector<uint8_t> color(history.size(), kWhite);
  std::vector<size_t> parent(history.size(), ~size_t{0});
  for (size_t root = 0; root < history.size() && res.cycle.empty(); ++root) {
    if (color[root] != kWhite) {
      continue;
    }
    // Stack of (node, next child index).
    std::vector<std::pair<size_t, size_t>> stack;
    stack.emplace_back(root, 0);
    color[root] = kGray;
    while (!stack.empty() && res.cycle.empty()) {
      auto& [node, child] = stack.back();
      if (child >= adj[node].size()) {
        color[node] = kBlack;
        stack.pop_back();
        continue;
      }
      const size_t next = adj[node][child++];
      if (color[next] == kWhite) {
        color[next] = kGray;
        parent[next] = node;
        stack.emplace_back(next, 0);
      } else if (color[next] == kGray) {
        // Back edge node -> next closes a cycle next -> ... -> node -> next.
        std::vector<size_t> path;
        for (size_t v = node;; v = parent[v]) {
          path.push_back(v);
          if (v == next) {
            break;
          }
        }
        std::reverse(path.begin(), path.end());
        for (size_t v : path) {
          res.cycle.push_back(history[v].txn_id);
        }
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "dependency cycle of %zu transactions (first id %llu, node %u worker %u, "
                      "commit at %lluns)",
                      path.size(), static_cast<unsigned long long>(history[path[0]].txn_id),
                      history[path[0]].node, history[path[0]].worker,
                      static_cast<unsigned long long>(history[path[0]].commit_ns));
        AddViolation(&res, opts, buf);
      }
    }
  }

  return res;
}

std::string CheckResult::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s: %zu txns, %zu keys, %zu edges, %zu violation(s)",
                ok ? "serializable" : "NOT SERIALIZABLE", num_txns, num_keys, num_edges,
                violations.size());
  std::string out = buf;
  for (const std::string& v : violations) {
    out += "\n  ";
    out += v;
  }
  return out;
}

}  // namespace drtmr::chk
