// Offline serializability checker (DESIGN.md §9).
//
// Rebuilds the direct serialization graph from a recorded history
// (chk/history.h) and fails on cycles. Because every record carries a
// versioned seqnum and the recorder logs exact versions, dependency edges are
// derived from data, not timing:
//   WR  writer of version v        -> each reader that observed v
//   WW  writer of version v        -> writer of the next version of the key
//   RW  reader that observed v     -> writer of the next version after v
// A committed history is serializable iff this graph is acyclic (the
// classical DSG condition; reads here are "committed reads" so the graph is
// exact, not approximate).
//
// Structural invariants checked before the cycle search:
//  * no two committed transactions install the same version of a key
//    (a duplicate means a lost update — two commits based on one snapshot);
//  * every observed read version was produced by a recorded write or is the
//    seed state (version <= 2, the seq stores install records at);
//  * a key's write chain advances by exactly the seq step (2 under
//    replication, 1 without) — a gap means a committed write vanished.
// The last two are downgraded to tolerated when `expect_complete` is false
// (histories that legitimately lose a crashed node's tail records).
#ifndef DRTMR_SRC_CHK_CHECKER_H_
#define DRTMR_SRC_CHK_CHECKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/chk/history.h"

namespace drtmr::chk {

struct CheckOptions {
  // Seq distance between consecutive versions of one record:
  // SeqRules::RemoteCommitSeq step — 2 with replication, 1 without.
  uint64_t version_step = 2;
  // Records are installed at seq 2 by store inserts/loaders, so an observed
  // version <= 2 with no recorded writer is the pre-history seed state, not a
  // violation; every committed write installs a version > 2.
  uint64_t seed_version_max = 2;
  // When false (a node was killed mid-run, so its latest commits may be
  // missing from the history), unknown read versions and write-chain gaps are
  // tolerated; cycles and duplicate versions are always failures.
  bool expect_complete = true;
  size_t max_violations = 20;  // cap on recorded messages
};

struct CheckResult {
  bool ok = true;
  size_t num_txns = 0;
  size_t num_keys = 0;
  size_t num_edges = 0;
  // Structural violations + cycle description, human-readable.
  std::vector<std::string> violations;
  // txn_ids of one dependency cycle, in order, if found.
  std::vector<uint64_t> cycle;

  std::string Summary() const;
};

CheckResult CheckSerializability(const std::vector<TxnRec>& history,
                                 const CheckOptions& opts = {});

}  // namespace drtmr::chk

#endif  // DRTMR_SRC_CHK_CHECKER_H_
