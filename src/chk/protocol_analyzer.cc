#include "src/chk/protocol_analyzer.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "src/obs/metrics.h"
#include "src/sim/fabric.h"
#include "src/sim/memory_bus.h"
#include "src/sim/thread_context.h"
#include "src/store/record.h"

namespace drtmr::chk {
namespace {

using store::LockWord;
using store::RecordLayout;
using store::SeqWord;

thread_local Actor t_actor{};
thread_local uint32_t t_privileged = 0;

Actor CurrentActor(const sim::ThreadContext* ctx) {
  if (t_actor.known()) {
    return t_actor;
  }
  if (ctx != nullptr) {
    return Actor{ctx->node_id, ctx->worker_id};
  }
  return Actor{};
}

obs::Counter CounterFor(ViolationClass cls) {
  switch (cls) {
    case ViolationClass::kUnlockedWrite:
      return obs::Counter::kAnalyzerUnlockedWrite;
    case ViolationClass::kSeqlockDiscipline:
      return obs::Counter::kAnalyzerSeqlockViolation;
    case ViolationClass::kStrongAtomicity:
      return obs::Counter::kAnalyzerAtomicityViolation;
    case ViolationClass::kLockHygiene:
      return obs::Counter::kAnalyzerLockHygiene;
    case ViolationClass::kEpochFencing:
    case ViolationClass::kCount:
      break;
  }
  return obs::Counter::kAnalyzerEpochViolation;
}

std::string ActorString(const Actor& a) {
  if (!a.known()) {
    return "actor ?";
  }
  return "node " + std::to_string(a.node) + " worker " + std::to_string(a.worker);
}

}  // namespace

const char* ViolationClassName(ViolationClass c) {
  switch (c) {
    case ViolationClass::kUnlockedWrite:
      return "unlocked-write";
    case ViolationClass::kSeqlockDiscipline:
      return "seqlock-discipline";
    case ViolationClass::kStrongAtomicity:
      return "strong-atomicity";
    case ViolationClass::kLockHygiene:
      return "lock-hygiene";
    case ViolationClass::kEpochFencing:
      return "epoch-fencing";
    case ViolationClass::kCount:
      break;
  }
  return "unknown";
}

ScopedActor::ScopedActor(uint32_t node, uint32_t worker) {
  if (AnalyzerEnabled()) {
    saved_ = t_actor;
    t_actor = Actor{node, worker};
    engaged_ = true;
  }
}
ScopedActor::~ScopedActor() {
  if (engaged_) {
    t_actor = saved_;
  }
}

ScopedPrivilegedWriter::ScopedPrivilegedWriter() { ++t_privileged; }
ScopedPrivilegedWriter::~ScopedPrivilegedWriter() { --t_privileged; }

ProtocolAnalyzer& ProtocolAnalyzer::Global() {
  static ProtocolAnalyzer* g = new ProtocolAnalyzer();
  return *g;
}

void ProtocolAnalyzer::Enable(bool on) {
  detail::g_analyze.store(on, std::memory_order_release);
}

void ProtocolAnalyzer::Reset() {
  {
    std::unique_lock lk(buses_mu_);
    buses_.clear();
  }
  {
    std::lock_guard lk(v_mu_);
    violations_.clear();
  }
  for (auto& c : counts_) {
    c.store(0, std::memory_order_relaxed);
  }
}

ProtocolAnalyzer::BusShadow* ProtocolAnalyzer::FindBus(const sim::MemoryBus* bus) const {
  std::shared_lock lk(buses_mu_);
  auto it = buses_.find(bus);
  return it == buses_.end() ? nullptr : it->second.get();
}

ProtocolAnalyzer::BusShadow* ProtocolAnalyzer::GetOrCreateBus(const sim::MemoryBus* bus) {
  if (BusShadow* bs = FindBus(bus)) {
    return bs;
  }
  std::unique_lock lk(buses_mu_);
  auto& slot = buses_[bus];
  if (slot == nullptr) {
    slot = std::make_unique<BusShadow>();
  }
  return slot.get();
}

ProtocolAnalyzer::RecordShadow* ProtocolAnalyzer::FindRecord(BusShadow* shard, uint64_t offset) {
  auto it = shard->records.upper_bound(offset);
  if (it == shard->records.begin()) {
    return nullptr;
  }
  --it;
  RecordShadow* rec = it->second.get();
  return offset < rec->start + rec->bytes ? rec : nullptr;
}

void ProtocolAnalyzer::Report(ViolationClass cls, const Actor& actor, uint64_t offset,
                              std::string detail) {
  counts_[static_cast<size_t>(cls)].fetch_add(1, std::memory_order_relaxed);
  obs::Count(CounterFor(cls));
  std::lock_guard lk(v_mu_);
  if (violations_.size() < kMaxStoredViolations) {
    violations_.push_back(
        Violation{cls, actor.node, actor.worker, offset, std::move(detail)});
  }
}

void ProtocolAnalyzer::RegisterRecord(const sim::MemoryBus* bus, uint64_t offset,
                                      size_t value_size, const std::byte* image) {
  BusShadow* bs = GetOrCreateBus(bus);
  auto rec = std::make_unique<RecordShadow>();
  rec->start = offset;
  rec->value_size = value_size;
  rec->bytes = RecordLayout::BytesFor(value_size);
  rec->lines = RecordLayout::LinesFor(value_size);
  rec->versions.assign(rec->lines > 0 ? rec->lines - 1 : 0, 0);
  if (image != nullptr) {
    rec->lock = RecordLayout::GetLock(image);
    rec->seq = RecordLayout::GetSeq(image);
    for (uint32_t line = 1; line < rec->lines; ++line) {
      std::memcpy(&rec->versions[line - 1], image + line * kCacheLineSize, sizeof(uint16_t));
    }
  }
  std::unique_lock lk(bs->map_mu);
  bs->records[offset] = std::move(rec);
}

void ProtocolAnalyzer::UnregisterRecord(const sim::MemoryBus* bus, uint64_t offset) {
  BusShadow* bs = FindBus(bus);
  if (bs == nullptr) {
    return;
  }
  std::unique_lock lk(bs->map_mu);
  bs->records.erase(offset);
}

void ProtocolAnalyzer::MarkBusDead(const sim::MemoryBus* bus) {
  GetOrCreateBus(bus)->dead.store(true, std::memory_order_release);
}

void ProtocolAnalyzer::ForgetBus(const sim::MemoryBus* bus) {
  std::unique_lock lk(buses_mu_);
  buses_.erase(bus);
}

void ProtocolAnalyzer::NoteDanglingSteal(const sim::MemoryBus* bus, uint64_t offset,
                                         uint64_t stolen_word) {
  BusShadow* bs = FindBus(bus);
  if (bs == nullptr) {
    return;
  }
  std::shared_lock lk(bs->map_mu);
  RecordShadow* rec = FindRecord(bs, offset);
  if (rec == nullptr) {
    return;
  }
  std::lock_guard rl(rec->mu);
  rec->pending_steal = stolen_word;
}

bool ProtocolAnalyzer::WriteProtected(const RecordShadow* rec, const Actor& actor) const {
  if (t_privileged > 0) {
    return true;
  }
  if (SeqWord::Locked(rec->seq)) {
    return true;  // fused seq-lock held (§4.4)
  }
  if (seq_parity_.load(std::memory_order_relaxed) && (SeqWord::Value(rec->seq) & 1ull) != 0) {
    return true;  // odd-seq makeup window (§5.1)
  }
  if (rec->lock != 0) {
    // The lock protects only its owner's stores; an unattributable actor is
    // given the benefit of the doubt.
    return !actor.known() || rec->lock == LockWord::Make(actor.node, actor.worker);
  }
  return false;
}

void ProtocolAnalyzer::MaybeCloseCheck(RecordShadow* rec, const Actor& actor) {
  if (rec->lines <= 1 || rec->lock != 0 || SeqWord::Locked(rec->seq)) {
    return;
  }
  if (seq_parity_.load(std::memory_order_relaxed) && (SeqWord::Value(rec->seq) & 1ull) != 0) {
    return;  // odd window still open; makeup will close it
  }
  const uint16_t expect = static_cast<uint16_t>(SeqWord::Value(rec->seq));
  for (uint32_t line = 1; line < rec->lines; ++line) {
    if (rec->versions[line - 1] != expect) {
      Report(ViolationClass::kSeqlockDiscipline, actor, rec->start,
             "protection window closed with stale line versions: record at offset " +
                 std::to_string(rec->start) + " line " + std::to_string(line) + " version " +
                 std::to_string(rec->versions[line - 1]) + " != seq low16 " +
                 std::to_string(expect) + " (" + ActorString(actor) + ")");
      return;
    }
  }
}

void ProtocolAnalyzer::FoldBytes(RecordShadow* rec, uint64_t offset, const std::byte* src,
                                 size_t len) {
  const uint64_t lo = std::max(offset, rec->start);
  const uint64_t hi = std::min(offset + len, rec->start + rec->bytes);
  auto covers = [&](uint64_t word_off, size_t word_len) {
    return lo <= rec->start + word_off && rec->start + word_off + word_len <= hi;
  };
  if (covers(RecordLayout::kLockOff, 8)) {
    std::memcpy(&rec->lock, src + (rec->start + RecordLayout::kLockOff - offset), 8);
  }
  if (covers(RecordLayout::kSeqOff, 8)) {
    std::memcpy(&rec->seq, src + (rec->start + RecordLayout::kSeqOff - offset), 8);
  }
  for (uint32_t line = 1; line < rec->lines; ++line) {
    const uint64_t voff = static_cast<uint64_t>(line) * kCacheLineSize;
    if (covers(voff, sizeof(uint16_t))) {
      std::memcpy(&rec->versions[line - 1], src + (rec->start + voff - offset),
                  sizeof(uint16_t));
    }
  }
}

void ProtocolAnalyzer::ApplyStore(RecordShadow* rec, const Actor& actor, uint64_t offset,
                                  const std::byte* src, size_t len, bool transactional) {
  std::lock_guard lk(rec->mu);
  const uint64_t hi = std::min(offset + len, rec->start + rec->bytes);
  // Stores past the metadata words (seq onward: key, payload, versions) are
  // the guarded range; lock/incarnation words have their own mechanisms.
  const bool guarded = hi > rec->start + RecordLayout::kSeqOff;
  if (!transactional && guarded && !WriteProtected(rec, actor)) {
    Report(ViolationClass::kUnlockedWrite, actor, offset,
           "plain store to record at offset " + std::to_string(rec->start) +
               " without lock, HTM region, or seqlock window (" + ActorString(actor) +
               ", store [" + std::to_string(offset) + "," + std::to_string(offset + len) + "))");
  }
  FoldBytes(rec, offset, src, len);
  MaybeCloseCheck(rec, actor);
}

void ProtocolAnalyzer::OnPlainWrite(const sim::MemoryBus* bus, const sim::ThreadContext* ctx,
                                    uint64_t offset, const void* src, size_t len) {
  BusShadow* bs = FindBus(bus);
  if (bs == nullptr) {
    return;
  }
  const Actor actor = CurrentActor(ctx);
  const auto* bytes = static_cast<const std::byte*>(src);
  std::shared_lock lk(bs->map_mu);
  // Records never straddle each other; walk every record the store overlaps.
  auto it = bs->records.upper_bound(offset);
  if (it != bs->records.begin()) {
    --it;
  }
  for (; it != bs->records.end() && it->second->start < offset + len; ++it) {
    RecordShadow* rec = it->second.get();
    if (offset < rec->start + rec->bytes) {
      ApplyStore(rec, actor, offset, bytes, len, /*transactional=*/false);
    }
  }
}

void ProtocolAnalyzer::HandleLockCas(RecordShadow* rec, const Actor& actor, uint64_t offset,
                                     uint64_t expected, uint64_t desired, uint64_t observed,
                                     bool swapped) {
  std::lock_guard lk(rec->mu);
  if (!swapped) {
    if (rec->pending_steal == expected && expected != 0) {
      // The announced steal raced with the owner's own release: benign.
      rec->pending_steal = 0;
    } else if (desired == LockWord::kUnlocked && expected != 0 && observed == 0 &&
               rec->stolen_from != expected) {
      Report(ViolationClass::kLockHygiene, actor, offset,
             "double release: unlock CAS found the lock already free (expected owner word " +
                 std::to_string(expected) + ", " + ActorString(actor) + ")");
    }
    return;
  }
  if (expected == LockWord::kUnlocked && desired != 0) {
    // Plain acquire.
    rec->lock = desired;
    return;
  }
  // Release (desired == 0) or steal-acquire (both non-zero): either way the
  // word `expected` is being taken away from its owner.
  if (rec->pending_steal == expected) {
    rec->stolen_from = expected;
    rec->pending_steal = 0;
  } else if (actor.known() && expected != LockWord::Make(actor.node, actor.worker)) {
    Report(ViolationClass::kLockHygiene, actor, offset,
           "cross-thread release: " + ActorString(actor) + " released lock word " +
               std::to_string(expected) + " it does not own (record offset " +
               std::to_string(rec->start) + ")");
  }
  rec->lock = desired;
  if (desired == LockWord::kUnlocked) {
    MaybeCloseCheck(rec, actor);
  }
}

void ProtocolAnalyzer::HandleFusedCas(RecordShadow* rec, const Actor& actor, uint64_t offset,
                                      uint64_t expected, uint64_t desired, bool swapped) {
  std::lock_guard lk(rec->mu);
  if (!swapped) {
    return;  // failed fused lock/validate; the protocol retries or aborts
  }
  const bool was_locked = SeqWord::Locked(expected);
  rec->seq = desired;
  if (was_locked && !SeqWord::Locked(desired)) {
    MaybeCloseCheck(rec, actor);  // fused unlock (§4.4)
  }
}

void ProtocolAnalyzer::OnCas(const sim::MemoryBus* bus, const sim::ThreadContext* ctx,
                             uint64_t offset, uint64_t expected, uint64_t desired,
                             uint64_t observed, bool swapped) {
  if (offset == sim::Fabric::kEpochWordOff) {
    // Membership stamps the configuration epoch with a bus CAS; shadow it for
    // the epoch-fencing admission check.
    if (swapped) {
      BusShadow* bs = GetOrCreateBus(bus);
      uint64_t cur = bs->epoch.load(std::memory_order_relaxed);
      while (cur < desired &&
             !bs->epoch.compare_exchange_weak(cur, desired, std::memory_order_relaxed)) {
      }
    }
    return;
  }
  BusShadow* bs = FindBus(bus);
  if (bs == nullptr) {
    return;
  }
  const Actor actor = CurrentActor(ctx);
  std::shared_lock lk(bs->map_mu);
  RecordShadow* rec = FindRecord(bs, offset);
  if (rec == nullptr) {
    return;
  }
  const uint64_t rel = offset - rec->start;
  if (rel == RecordLayout::kLockOff) {
    HandleLockCas(rec, actor, offset, expected, desired, observed, swapped);
  } else if (rel == RecordLayout::kSeqOff) {
    HandleFusedCas(rec, actor, offset, expected, desired, swapped);
  }
}

void ProtocolAnalyzer::OnTxCommitApply(const sim::MemoryBus* bus, const sim::ThreadContext* ctx,
                                       const std::vector<sim::RedoEntry>& redo) {
  BusShadow* bs = FindBus(bus);
  if (bs == nullptr) {
    return;
  }
  const Actor actor = CurrentActor(ctx);
  std::shared_lock lk(bs->map_mu);
  for (const auto& e : redo) {
    auto it = bs->records.upper_bound(e.offset);
    if (it != bs->records.begin()) {
      --it;
    }
    for (; it != bs->records.end() && it->second->start < e.offset + e.data.size(); ++it) {
      RecordShadow* rec = it->second.get();
      if (e.offset < rec->start + rec->bytes) {
        ApplyStore(rec, actor, e.offset, e.data.data(), e.data.size(), /*transactional=*/true);
      }
    }
  }
}

void ProtocolAnalyzer::CheckStrongAtomicity(sim::MemoryBus* bus, uint64_t line, bool is_write,
                                            const sim::HtmDesc* self) {
  for (uint32_t i = 0; i < bus->num_slots(); ++i) {
    sim::HtmDesc* d = bus->desc(i);
    if (d == self || d->state.load(std::memory_order_acquire) != sim::HtmDesc::kActive) {
      continue;
    }
    if (d->writes.Contains(line) || (is_write && d->reads.Contains(line))) {
      Report(ViolationClass::kStrongAtomicity, Actor{}, line * kCacheLineSize,
             "non-transactional " + std::string(is_write ? "write" : "read") + " to line " +
                 std::to_string(line) + " left a conflicting HTM region active (slot " +
                 std::to_string(i) + ")");
    }
  }
}

void ProtocolAnalyzer::OnVerbInRegion(const sim::ThreadContext* ctx, bool aborted) {
  if (aborted) {
    return;  // the no-I/O rule fired, as required
  }
  Report(ViolationClass::kStrongAtomicity, CurrentActor(ctx), 0,
         "fabric verb issued inside an HTM region did not abort it (" +
             ActorString(CurrentActor(ctx)) + ")");
}

void ProtocolAnalyzer::OnVerbAdmitted(const sim::MemoryBus* src_bus,
                                      const sim::MemoryBus* dst_bus, uint32_t src_node,
                                      uint32_t dst_node, bool fencing_enabled) {
  if (!fencing_enabled) {
    return;  // without fencing, stale-epoch admission is the configured policy
  }
  BusShadow* sb = FindBus(src_bus);
  BusShadow* db = FindBus(dst_bus);
  const uint64_t se = sb != nullptr ? sb->epoch.load(std::memory_order_relaxed) : 0;
  const uint64_t de = db != nullptr ? db->epoch.load(std::memory_order_relaxed) : 0;
  if (se < de) {
    Report(ViolationClass::kEpochFencing, Actor{src_node, Actor::kUnknown}, 0,
           "mutating verb admitted from node " + std::to_string(src_node) + " (epoch " +
               std::to_string(se) + ") to node " + std::to_string(dst_node) + " (epoch " +
               std::to_string(de) + "): issuer should have been fenced");
  }
}

void ProtocolAnalyzer::OnSnapshotAccepted(const sim::MemoryBus* bus, uint64_t offset,
                                          uint64_t seq, uint64_t lock_word, bool versions_ok,
                                          bool lock_checked) {
  if (!versions_ok) {
    Report(ViolationClass::kSeqlockDiscipline, t_actor, offset,
           "torn snapshot accepted without retry: record at offset " + std::to_string(offset) +
               " line versions disagree with seq " + std::to_string(seq));
    return;
  }
  if (lock_checked && LockWord::IsLocked(lock_word)) {
    Report(ViolationClass::kSeqlockDiscipline, t_actor, offset,
           "locked snapshot accepted without retry: record at offset " + std::to_string(offset) +
               " lock word " + std::to_string(lock_word));
  }
  (void)bus;
}

bool ProtocolAnalyzer::QuiescentLockLeaked(uint64_t lock_word, const LockExempt& exempt) {
  if (!LockWord::IsLocked(lock_word)) {
    return false;
  }
  return !(exempt && exempt(LockWord::OwnerNode(lock_word)));
}

uint64_t ProtocolAnalyzer::SweepLocks(const LockExempt& exempt) {
  uint64_t leaks = 0;
  std::shared_lock bl(buses_mu_);
  for (auto& [bus, bs] : buses_) {
    if (bs->dead.load(std::memory_order_acquire)) {
      continue;
    }
    std::shared_lock ml(bs->map_mu);
    for (auto& [start, rec] : bs->records) {
      std::lock_guard rl(rec->mu);
      if (QuiescentLockLeaked(rec->lock, exempt)) {
        ++leaks;
        Report(ViolationClass::kLockHygiene, Actor{}, start,
               "leaked lock at quiescence: record at offset " + std::to_string(start) +
                   " still holds lock word " + std::to_string(rec->lock) + " (owner node " +
                   std::to_string(LockWord::OwnerNode(rec->lock)) + ")");
      }
    }
  }
  return leaks;
}

uint64_t ProtocolAnalyzer::total_violations() const {
  uint64_t total = 0;
  for (const auto& c : counts_) {
    total += c.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<Violation> ProtocolAnalyzer::CollectViolations() const {
  std::lock_guard lk(v_mu_);
  return violations_;
}

bool ProtocolAnalyzer::WriteViolationsJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::fputs("[\n", f);
  {
    std::lock_guard lk(v_mu_);
    for (size_t i = 0; i < violations_.size(); ++i) {
      const Violation& v = violations_[i];
      std::string detail;
      detail.reserve(v.detail.size());
      for (char c : v.detail) {
        if (c == '"' || c == '\\') {
          detail.push_back('\\');
        }
        detail.push_back(c);
      }
      std::fprintf(f,
                   "  {\"class\": \"%s\", \"actor_node\": %d, \"actor_worker\": %d, "
                   "\"offset\": %llu, \"detail\": \"%s\"}%s\n",
                   ViolationClassName(v.cls),
                   v.actor_node == Actor::kUnknown ? -1 : static_cast<int>(v.actor_node),
                   v.actor_worker == Actor::kUnknown ? -1 : static_cast<int>(v.actor_worker),
                   static_cast<unsigned long long>(v.offset), detail.c_str(),
                   i + 1 < violations_.size() ? "," : "");
    }
  }
  std::fputs("]\n", f);
  std::fclose(f);
  return true;
}

}  // namespace drtmr::chk
