#include "src/chk/history.h"

#include <algorithm>

namespace drtmr::chk {

HistoryRecorder& HistoryRecorder::Global() {
  static HistoryRecorder* instance = new HistoryRecorder();  // leaked by design
  return *instance;
}

void HistoryRecorder::Enable(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

HistoryRecorder::ShardHandle::~ShardHandle() {
  if (shard != nullptr) {
    HistoryRecorder::Global().Release(shard);
  }
}

HistoryRecorder::Shard* HistoryRecorder::LocalShard() {
  static thread_local ShardHandle handle;
  if (handle.shard == nullptr) {
    handle.shard = Acquire();
  }
  return handle.shard;
}

HistoryRecorder::Shard* HistoryRecorder::Acquire() {
  std::lock_guard<std::mutex> g(mu_);
  if (!free_.empty()) {
    Shard* s = free_.back();
    free_.pop_back();
    return s;
  }
  all_.push_back(std::make_unique<Shard>());
  return all_.back().get();
}

void HistoryRecorder::Release(Shard* shard) {
  // Released shards keep their records (they contribute to Collect until
  // Reset); a later thread reuses the shard, so memory tracks concurrency.
  std::lock_guard<std::mutex> g(mu_);
  free_.push_back(shard);
}

void HistoryRecorder::Record(TxnRec&& rec) {
  Shard* s = LocalShard();
  std::lock_guard<std::mutex> g(s->mu);
  s->recs.push_back(std::move(rec));
}

std::vector<TxnRec> HistoryRecorder::Collect() const {
  std::vector<TxnRec> out;
  {
    std::lock_guard<std::mutex> g(mu_);
    for (const auto& s : all_) {
      std::lock_guard<std::mutex> sg(s->mu);
      out.insert(out.end(), s->recs.begin(), s->recs.end());
    }
  }
  std::sort(out.begin(), out.end(), [](const TxnRec& a, const TxnRec& b) {
    if (a.commit_ns != b.commit_ns) {
      return a.commit_ns < b.commit_ns;
    }
    return a.txn_id < b.txn_id;
  });
  return out;
}

void HistoryRecorder::Reset() {
  std::lock_guard<std::mutex> g(mu_);
  for (const auto& s : all_) {
    std::lock_guard<std::mutex> sg(s->mu);
    s->recs.clear();
  }
}

size_t HistoryRecorder::size() const {
  std::lock_guard<std::mutex> g(mu_);
  size_t n = 0;
  for (const auto& s : all_) {
    std::lock_guard<std::mutex> sg(s->mu);
    n += s->recs.size();
  }
  return n;
}

}  // namespace drtmr::chk
