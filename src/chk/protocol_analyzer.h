// Protocol conformance analyzer (DESIGN.md §11): a runtime-toggled checker
// for the invariants DrTM+R's correctness rests on but the end-state oracles
// only probe indirectly. Hooked into every sim::MemoryBus access, every
// sim::Fabric verb, and HTM region commit, it maintains a *shadow* of each
// registered record's protocol words (lock, seqnum, per-line versions) and
// flags typed violations with the offending site:
//
//   1. unlocked write      — a data-line store outside an HTM region without
//                            holding that record's lock (or another sanctioned
//                            protection: fused seq-lock bit, odd-seq makeup
//                            window, recovery's privileged writer).
//   2. seqlock discipline  — a protection window closed (lock released,
//                            odd seq made even, fused bit cleared) while the
//                            per-line versions disagree with the seqnum, i.e.
//                            a mutation a one-sided READ could not detect; or
//                            a remote READ that accepted a torn/locked
//                            snapshot without retry.
//   3. strong atomicity    — a conflicting non-transactional access that did
//                            NOT doom the overlapping HTM region, or a fabric
//                            verb issued inside a region that did not abort it.
//   4. lock hygiene        — cross-thread release, double release, leaked
//                            locks at quiescence (shares one leak rule with
//                            the torture oracle's sweep).
//   5. epoch fencing       — a mutating verb admitted while the issuer's
//                            stamped epoch lags the target's.
//
// Design notes. The analyzer never reads bus memory: shadow state is updated
// exclusively from hook-delivered bytes, so it is race-free under TSan by
// construction. Unlike classic Eraser, the protection relation is evaluated
// per access (mask non-empty), not as a lifetime lockset intersection — the
// protocol legitimately rotates protection mechanisms over a record's life
// (HTM region -> remote lock -> odd-seq window). Disabled (the default), the
// only cost at every hook site is one relaxed atomic load.
#ifndef DRTMR_SRC_CHK_PROTOCOL_ANALYZER_H_
#define DRTMR_SRC_CHK_PROTOCOL_ANALYZER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace drtmr::sim {
class MemoryBus;
struct HtmDesc;
struct RedoEntry;
struct ThreadContext;
}  // namespace drtmr::sim

namespace drtmr::chk {

enum class ViolationClass : uint32_t {
  kUnlockedWrite = 0,
  kSeqlockDiscipline,
  kStrongAtomicity,
  kLockHygiene,
  kEpochFencing,
  kCount,
};
inline constexpr size_t kNumViolationClasses = static_cast<size_t>(ViolationClass::kCount);

const char* ViolationClassName(ViolationClass c);

struct Violation {
  ViolationClass cls = ViolationClass::kCount;
  uint32_t actor_node = ~0u;    // ~0u: attribution unknown
  uint32_t actor_worker = ~0u;
  uint64_t offset = 0;          // offending offset on the target bus (0: n/a)
  std::string detail;
};

// Identity of the thread performing a bus access, for attribution. RDMA verbs
// reach the target bus with ctx == nullptr (they bypass the remote CPU), so
// the fabric — and the recovery patch path, whose driver context does not
// match the lock words it manipulates — pin the logical actor in TLS with
// ScopedActor; a plain local access falls back to its ThreadContext.
struct Actor {
  static constexpr uint32_t kUnknown = ~0u;
  uint32_t node = kUnknown;
  uint32_t worker = kUnknown;
  bool known() const { return node != kUnknown; }
};

class ScopedActor {
 public:
  // No-op (one relaxed load) while the analyzer is disabled.
  ScopedActor(uint32_t node, uint32_t worker);
  ~ScopedActor();
  ScopedActor(const ScopedActor&) = delete;
  ScopedActor& operator=(const ScopedActor&) = delete;

 private:
  Actor saved_;
  bool engaged_ = false;
};

// Marks the current thread as a sanctioned whole-image writer (store bootstrap
// and recovery re-hosting write fresh images over quiescent records without
// taking the record lock). Suppresses the unlocked-write rule only.
class ScopedPrivilegedWriter {
 public:
  ScopedPrivilegedWriter();
  ~ScopedPrivilegedWriter();
  ScopedPrivilegedWriter(const ScopedPrivilegedWriter&) = delete;
  ScopedPrivilegedWriter& operator=(const ScopedPrivilegedWriter&) = delete;
};

namespace detail {
// Fast-path toggle, mirroring obs::detail::g_enabled: hook sites pay one
// relaxed load when the analyzer is off.
inline std::atomic<bool> g_analyze{false};
}  // namespace detail

inline bool AnalyzerEnabled() { return detail::g_analyze.load(std::memory_order_relaxed); }

class ProtocolAnalyzer {
 public:
  static ProtocolAnalyzer& Global();

  // Toggling does not clear state; call Reset() between independent runs.
  void Enable(bool on);
  static bool Enabled() { return AnalyzerEnabled(); }
  void Reset();

  // Whether an odd seqnum marks a committed-but-unreplicated window that
  // legitimately protects in-place makeup writes (§5.1). True matches
  // replicated deployments; without replication the seqnum has no parity
  // meaning, but the protocol then never relies on odd-seq protection either,
  // so true is safe (merely looser) everywhere. Default: true.
  void set_seq_parity(bool on) { seq_parity_.store(on, std::memory_order_relaxed); }

  // ---- shadow registration (store layer) ----
  // Register after the record's image is fully written and the record is
  // about to become reachable; unregister before the allocator frees it.
  void RegisterRecord(const sim::MemoryBus* bus, uint64_t offset, size_t value_size,
                      const std::byte* image);
  void UnregisterRecord(const sim::MemoryBus* bus, uint64_t offset);
  // Excludes a killed machine's records from the quiescence sweep (its locks
  // and windows are expected debris, matching the torture oracle).
  void MarkBusDead(const sim::MemoryBus* bus);
  // Drops every shadow keyed by `bus` (called from ~MemoryBus: a later bus
  // may be allocated at the same address).
  void ForgetBus(const sim::MemoryBus* bus);
  // Announces an intentional dangling-lock steal/release of `stolen_word`
  // (§5.2 passive recovery) so the following CAS is not a hygiene violation
  // and the previous owner's late release is recognized as debris.
  void NoteDanglingSteal(const sim::MemoryBus* bus, uint64_t offset, uint64_t stolen_word);

  // ---- sim-layer hooks ----
  void OnPlainWrite(const sim::MemoryBus* bus, const sim::ThreadContext* ctx, uint64_t offset,
                    const void* src, size_t len);
  void OnCas(const sim::MemoryBus* bus, const sim::ThreadContext* ctx, uint64_t offset,
             uint64_t expected, uint64_t desired, uint64_t observed, bool swapped);
  void OnTxCommitApply(const sim::MemoryBus* bus, const sim::ThreadContext* ctx,
                       const std::vector<sim::RedoEntry>& redo);
  // Called after a non-transactional access to `line` has doomed conflicting
  // regions: any still-active conflicting region is a strong-atomicity breach.
  // Runs under the bus stripe; touches only HtmDesc atomics.
  void CheckStrongAtomicity(sim::MemoryBus* bus, uint64_t line, bool is_write,
                            const sim::HtmDesc* self);
  // A fabric verb was issued inside an HTM region; `aborted` reports whether
  // the no-I/O rule fired. Not aborting is a strong-atomicity breach.
  void OnVerbInRegion(const sim::ThreadContext* ctx, bool aborted);
  // A mutating verb passed admission; flags it if the issuer's stamped epoch
  // (shadowed from the epoch-word CASes) lags the target's. Deliberately
  // separate from Fabric::FenceCheck so a verb path that forgot its fence
  // still trips the analyzer.
  void OnVerbAdmitted(const sim::MemoryBus* src_bus, const sim::MemoryBus* dst_bus,
                      uint32_t src_node, uint32_t dst_node, bool fencing_enabled);

  // ---- engine-layer hooks (txn) ----
  // A remote/seqlock read was accepted as a snapshot. versions_ok is the
  // engine's own torn-read verdict; lock_checked says the protocol required
  // the record unlocked at acceptance.
  void OnSnapshotAccepted(const sim::MemoryBus* bus, uint64_t offset, uint64_t seq,
                          uint64_t lock_word, bool versions_ok, bool lock_checked);

  // ---- quiescence (lock hygiene) ----
  using LockExempt = std::function<bool(uint32_t owner_node)>;
  // THE leak rule, shared with the torture oracle's real-memory sweep: a held
  // lock leaks unless its owner is exempt (dead/ever-suspected — its release
  // was fenced or lost and is passively recovered on next touch, §5.2).
  static bool QuiescentLockLeaked(uint64_t lock_word, const LockExempt& exempt);
  // Sweeps every registered record's shadow on non-dead buses; records a
  // kLockHygiene violation per leak and returns the number found.
  uint64_t SweepLocks(const LockExempt& exempt);

  // ---- results ----
  uint64_t violations(ViolationClass c) const {
    return counts_[static_cast<size_t>(c)].load(std::memory_order_relaxed);
  }
  uint64_t total_violations() const;
  std::vector<Violation> CollectViolations() const;
  bool WriteViolationsJson(const std::string& path) const;

 private:
  struct RecordShadow {
    std::mutex mu;
    uint64_t start = 0;
    size_t value_size = 0;
    size_t bytes = 0;
    uint32_t lines = 1;
    uint64_t lock = 0;               // shadow of the word at start + kLockOff
    uint64_t seq = 0;                // shadow of the word at start + kSeqOff
    std::vector<uint16_t> versions;  // line k >= 1 head words
    uint64_t pending_steal = 0;      // word an announced steal will replace
    uint64_t stolen_from = 0;        // last word forcibly stolen (debris key)
  };

  struct BusShadow {
    mutable std::shared_mutex map_mu;
    std::map<uint64_t, std::unique_ptr<RecordShadow>> records;  // by start offset
    std::atomic<uint64_t> epoch{0};
    std::atomic<bool> dead{false};
  };

  BusShadow* FindBus(const sim::MemoryBus* bus) const;
  BusShadow* GetOrCreateBus(const sim::MemoryBus* bus);
  // Caller must hold shard->map_mu (shared).
  static RecordShadow* FindRecord(BusShadow* shard, uint64_t offset);

  void Report(ViolationClass cls, const Actor& actor, uint64_t offset, std::string detail);
  // Pre-state protection mask for a plain store by `actor` (rec->mu held).
  bool WriteProtected(const RecordShadow* rec, const Actor& actor) const;
  // If no protection remains on rec, the line versions must match the seqnum
  // (a window just closed; any surviving mismatch is invisible to READers).
  void MaybeCloseCheck(RecordShadow* rec, const Actor& actor);
  // Folds `src` bytes at [offset, offset+len) into rec's shadow words.
  static void FoldBytes(RecordShadow* rec, uint64_t offset, const std::byte* src, size_t len);
  void ApplyStore(RecordShadow* rec, const Actor& actor, uint64_t offset, const std::byte* src,
                  size_t len, bool transactional);
  void HandleLockCas(RecordShadow* rec, const Actor& actor, uint64_t offset, uint64_t expected,
                     uint64_t desired, uint64_t observed, bool swapped);
  void HandleFusedCas(RecordShadow* rec, const Actor& actor, uint64_t offset, uint64_t expected,
                      uint64_t desired, bool swapped);

  std::atomic<bool> seq_parity_{true};

  mutable std::shared_mutex buses_mu_;
  std::unordered_map<const sim::MemoryBus*, std::unique_ptr<BusShadow>> buses_;

  static constexpr size_t kMaxStoredViolations = 4096;
  mutable std::mutex v_mu_;
  std::vector<Violation> violations_;
  std::atomic<uint64_t> counts_[kNumViolationClasses] = {};
};

}  // namespace drtmr::chk

#endif  // DRTMR_SRC_CHK_PROTOCOL_ANALYZER_H_
