// Torture harness (DESIGN.md §9): one self-contained run of a replicated
// transfer workload on a simulated cluster under a deterministic fault plan,
// checked three ways at quiescence:
//   1. the serializability checker (chk/checker.h) over the recorded history;
//   2. a balance-conservation oracle — read-only auditor snapshots during the
//      run plus a direct sweep of every record at the end;
//   3. structural invariants — no leaked lock words, committed (even under
//      replication) sequence numbers, and, after a kill, a recovered
//      partition that serves new transactions.
//
// A run is parameterized by (shape, seed, plan kind); the fault plan is a
// pure function of (kind, seed, nodes), so any failure reproduces from the
// three numbers a test or the bench prints. bench/torture.cc sweeps seeds ×
// plans × shapes and shrinks a failing plan to a minimal rule set.
#ifndef DRTMR_SRC_CHK_TORTURE_H_
#define DRTMR_SRC_CHK_TORTURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/chk/checker.h"
#include "src/rep/primary_backup.h"
#include "src/sim/fault.h"

namespace drtmr::chk {

// The canned fault-plan families the sweep draws from. Concrete rule
// parameters (victims, windows, probabilities) are derived from the seed.
enum class TorturePlanKind : uint32_t {
  kClean = 0,     // no faults: baseline sanity
  kDelay,         // random verb latency inflation (reorders posted batches)
  kHtmAbort,      // forced HTM aborts at commit/read sites (fallback paths)
  kFreeze,        // transient full isolation of one node (lossless stall)
  kPartition,     // transient pairwise partition (lossless stall)
  kKill,          // permanent fail-stop mid-run + recovery onto a survivor
  kNumKinds,
};

const char* TorturePlanKindName(TorturePlanKind kind);

// Deterministically builds the plan for (kind, seed) on an n-node cluster.
sim::FaultPlan MakeTorturePlan(TorturePlanKind kind, uint64_t seed, uint32_t nodes);

struct TortureShape {
  uint32_t nodes = 3;
  uint32_t workers = 2;    // transfer workers per node (one extra slot runs the auditor)
  uint32_t replicas = 3;   // clamped to nodes; 1 disables replication
  uint32_t keys_per_node = 8;
  uint32_t txns_per_worker = 120;  // committed-transfer target per worker
  // Zipfian skew over the per-node key index (0 = uniform, the default for
  // every existing seed/test). theta ≈ 0.9 reproduces YCSB-style hot-key
  // contention; the nightly soak runs large shapes with this set so the
  // conflict/fallback paths see sustained same-key pressure.
  double zipf_theta = 0.0;
  // Group-commit window (rep::RepConfig::group_commit_window): decisions per
  // worker lane between durability fences. > 1 exercises mid-window kills —
  // the recovery watermark contract must still show zero lost updates.
  uint32_t group_commit_window = 1;
};

struct TortureOptions {
  TortureShape shape;
  uint64_t seed = 1;
  TorturePlanKind plan_kind = TorturePlanKind::kClean;
  // Shrinking support: run this exact plan instead of MakeTorturePlan's.
  // Must stay alive for the duration of RunTorture.
  const sim::FaultPlan* plan_override = nullptr;
  // Teeth: disable commit-time read validation in the engine. The run is
  // expected to FAIL the checker — this proves the oracle has teeth.
  bool unsafe_skip_read_validation = false;
  // Teeth: replication slot-lifecycle overrides (RepConfig::TestOverrides),
  // passed straight to the replicator. Runs with one of these set are
  // expected to FAIL the quiescence oracles (typically via a kKill plan:
  // recovery reads the corrupted backup copies).
  rep::RepConfig::TestOverrides rep_test{};
  // Run under the protocol conformance analyzer (protocol_analyzer.h): shadow
  // lockset/seqlock/atomicity/epoch checking on every bus access, plus the
  // analyzer's quiescent lock sweep (the same leak rule as the harness's own
  // real-memory sweep). Any violation fails the run.
  bool analyze = false;
  // No-oracle failover: instead of the harness scripting Remove + recovery
  // after the run (oracle knowledge of the fault plan), a MembershipService
  // (src/cluster/membership.h) runs *during* the run — lease heartbeats
  // suspect the victim off virtual time, the driver fences the old epoch,
  // flips the partition map, and runs recovery automatically; transient
  // victims (freeze/partition) rejoin in a later epoch. The quiescence
  // oracles then check the result with no scripted help. Requires
  // replicas >= 2 (recovery needs backups).
  bool no_oracle = false;
  // Live migration (DESIGN.md §14): a control thread moves a seed-derived
  // partition to a seed-derived destination mid-run via rep::MigrationManager
  // while the workers keep committing, and on odd seeds moves it back.
  // Composes with any plan kind — a kill plan landing mid-flight is the
  // point: the migration must commit or roll back cleanly on its own, and
  // the quiescence oracles judge whatever placement results. Requires
  // no_oracle (the cutover runs on the epoch-fence substrate).
  bool migrate = false;
};

struct TortureResult {
  bool ok = false;           // check.ok && errors.empty()
  CheckResult check;         // serializability verdict over the history
  uint64_t committed = 0;    // transfers the workers got to commit
  uint64_t audits = 0;       // read-only conservation snapshots that committed
  bool killed = false;       // plan killed a node (recovery ran)
  uint64_t recovered_records = 0;
  // No-oracle mode: what the membership layer did on its own.
  uint64_t suspicions = 0;
  uint64_t epoch_changes = 0;
  uint64_t rejoins = 0;
  uint64_t recoveries = 0;
  uint64_t violations = 0;   // protocol-analyzer violations (analyze mode)
  // Migrate mode: what the migration control thread drove.
  uint64_t migrations = 0;
  uint64_t migrations_committed = 0;
  uint64_t migrations_rolled_back = 0;
  std::vector<std::string> errors;  // oracle/invariant failures (non-checker)
  std::string Summary() const;
};

TortureResult RunTorture(const TortureOptions& opt);

}  // namespace drtmr::chk

#endif  // DRTMR_SRC_CHK_TORTURE_H_
